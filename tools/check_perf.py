#!/usr/bin/env python3
"""Compare a fresh `bench_micro --perf` report against the checked-in baseline.

Usage: check_perf.py CURRENT.json [BASELINE.json] [--max-slowdown X]

The baseline (bench/BENCH_perf.json) records per-scheme wall time on the
machine that produced it. CI runners differ wildly from dev boxes, so the
gate is deliberately generous: a scheme only fails if its wall time exceeds
the baseline by more than --max-slowdown (default 2.0x). The point is to
catch order-of-magnitude hot-path regressions (an accidental O(n) scan in
the scheduler loop, a lost fast path), not single-digit-percent noise.

Exit status: 0 = within budget, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "bench" / "BENCH_perf.json"


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def by_scheme(report):
    return {s["scheme"]: s for s in report.get("schemes", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly produced BENCH_perf.json")
    ap.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    ap.add_argument("--max-slowdown", type=float, default=2.0,
                    help="fail if wall time exceeds baseline by this factor")
    ap.add_argument("--min-shard-speedup", type=float, default=3.0,
                    help="fail if sharded.speedup falls below this (only "
                         "checked when the baseline carries a sharded lane; "
                         "0 disables, for reports from trace-mode runs that "
                         "skip the sharded lane)")
    ap.add_argument("--max-selfprof-overhead", type=float, default=0.0,
                    help="fail if the current report's self_profile.overhead "
                         "(profiler-on wall / profiler-off wall, a same-run "
                         "same-machine ratio) exceeds this; 0 disables")
    args = ap.parse_args()

    cur_report = load(args.current)
    base_report = load(args.baseline)
    cur = by_scheme(cur_report)
    base = by_scheme(base_report)
    if not cur or not base:
        print("check_perf: report has no schemes[]", file=sys.stderr)
        sys.exit(2)

    failed = []
    print(f"{'scheme':<16} {'base(s)':>9} {'current(s)':>11} {'ratio':>7}")
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            print(f"{name:<16} {'-':>9} {'missing':>11} {'-':>7}")
            failed.append(name)
            continue
        ratio = c["wall_seconds"] / b["wall_seconds"] if b["wall_seconds"] > 0 else 0.0
        verdict = ""
        if ratio > args.max_slowdown:
            failed.append(name)
            verdict = f"  REGRESSION (> {args.max_slowdown:.1f}x)"
        print(f"{name:<16} {b['wall_seconds']:>9.3f} {c['wall_seconds']:>11.3f} "
              f"{ratio:>6.2f}x{verdict}")

    # Sharded-lane gate: the event-wheel + worker-lane driver must keep its
    # wall-clock edge over the per-tick loop. The speedup is a same-machine
    # same-run ratio (legacy wall / sharded wall from ONE report), so unlike
    # the absolute wall times above it is robust to runner speed — a single
    # core still clears the bar because the gain comes from the wheel's idle
    # skipping, not lane parallelism. Only enforced when the baseline carries
    # a sharded lane, so trace-mode reports (which skip it) stay gateable.
    base_shard = base_report.get("sharded")
    if base_shard is not None and args.min_shard_speedup > 0:
        cur_shard = cur_report.get("sharded")
        if cur_shard is None:
            print("check_perf: current report lacks the sharded lane",
                  file=sys.stderr)
            failed.append("sharded")
        else:
            speedup = cur_shard.get("speedup", 0.0)
            verdict = ""
            if speedup < args.min_shard_speedup:
                failed.append("sharded")
                verdict = f"  REGRESSION (< {args.min_shard_speedup:.1f}x)"
            print(f"{'sharded':<16} {base_shard.get('speedup', 0.0):>8.2f}x "
                  f"{speedup:>10.2f}x {'':>7}{verdict}")

    # Self-profiler overhead gate: like the sharded speedup, this is a
    # same-run same-machine ratio (on-wall / off-wall from ONE report), so it
    # is robust to runner speed and gets a tight bound (CI uses 1.05 = 5%).
    # Only checked against the current report — older baselines may predate
    # the self_profile lane.
    if args.max_selfprof_overhead > 0:
        cur_sp = cur_report.get("self_profile")
        if cur_sp is None:
            print("check_perf: current report lacks the self_profile lane",
                  file=sys.stderr)
            failed.append("self_profile")
        else:
            overhead = cur_sp.get("overhead", 0.0)
            verdict = ""
            if overhead > args.max_selfprof_overhead:
                failed.append("self_profile")
                verdict = f"  REGRESSION (> {args.max_selfprof_overhead:.2f}x)"
            print(f"{'selfprof':<16} {'-':>9} {overhead:>10.3f}x {'':>6}{verdict}")

    if failed:
        print(f"check_perf: FAILED for {', '.join(failed)}", file=sys.stderr)
        sys.exit(1)
    print("check_perf: all schemes within budget")


if __name__ == "__main__":
    main()
