// diffcheck: differential verification of the optimized simulator against
// the golden reference model (see src/check/golden.hpp for the split between
// re-derived and replayed state).
//
// For each (workload, scheme) pair it runs the full simulator with stream
// recording + the runtime protocol checker in log mode, replays every
// channel through the golden model, and diffs the per-request timelines.
// Exit status is non-zero if any pair diverges (or the checker found
// violations), and the first divergence is printed with full context so CI
// can publish it as a failure artifact.
//
// Usage:
//   diffcheck [--workloads A,B,C] [--schemes Baseline,Dyn-DMS,...] [--list]
//   diffcheck --policy frfcfs [--workloads A,B,C]
//   diffcheck --shard N [...]
//
// `--shard N` runs the live simulation under the sharded driver (N worker
// lanes; 1 = serial event wheel) instead of the legacy loop, diffing ITS
// request timelines against the golden model — the differential proof that
// sharding is an execution strategy, not a model change. Stream recording
// pins every cycle (next_event defers to the recorder), so this exercises
// the lane partitioning and barrier drain, not the idle skipping.
//
// Defaults: three workloads spanning the paper's behavior groups, all seven
// schemes. `--policy` switches to the registry-policy lane: each workload runs
// under the named scheduler policy (baseline scheme spec) and diffs against
// the golden model. The golden model replays FR-FCFS arbitration, so only
// FR-FCFS-equivalent policies are expected to match — CI uses this lane with
// "frfcfs" to pin the registry construction path itself.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "sim/diff.hpp"
#include "workloads/registry.hpp"

namespace {

using lazydram::core::SchemeKind;

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return "";
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<SchemeKind> all = lazydram::core::all_schemes();

  if (has_flag(argc, argv, "--list")) {
    std::printf("workloads:");
    for (const std::string& n : lazydram::workloads::all_workload_names())
      std::printf(" %s", n.c_str());
    std::printf("\nschemes:");
    for (SchemeKind k : all) std::printf(" %s", lazydram::core::scheme_name(k));
    std::printf("\n");
    return 0;
  }

  // Default workloads: one streaming (SCP), one irregular/approximate
  // (inversek2j), one stencil (CONS) — small enough for CI, diverse enough
  // to exercise hits, misses, drops and write-backs.
  std::vector<std::string> workload_names = {"SCP", "inversek2j", "CONS"};
  if (const std::string w = arg_value(argc, argv, "--workloads"); !w.empty())
    workload_names = split_csv(w);

  std::vector<SchemeKind> schemes = all;
  if (const std::string s = arg_value(argc, argv, "--schemes"); !s.empty()) {
    schemes.clear();
    for (const std::string& name : split_csv(s)) {
      bool found = false;
      for (SchemeKind k : all) {
        if (name == lazydram::core::scheme_name(k)) {
          schemes.push_back(k);
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "diffcheck: unknown scheme '%s' (try --list)\n",
                     name.c_str());
        return 2;
      }
    }
  }

  lazydram::GpuConfig cfg;
  if (const std::string sh = arg_value(argc, argv, "--shard"); !sh.empty()) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(sh.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v > 64) {
      std::fprintf(stderr, "diffcheck: bad --shard '%s' (want 0..64)\n", sh.c_str());
      return 2;
    }
    cfg.shard_threads = static_cast<unsigned>(v);
  }
  lazydram::sim::DiffHarness harness(cfg);
  unsigned failures = 0;

  if (const std::string policy = arg_value(argc, argv, "--policy"); !policy.empty()) {
    for (const std::string& workload : workload_names) {
      const lazydram::sim::DiffResult result = harness.run_policy(workload, policy);
      if (result.ok()) {
        std::printf("PASS  %-12s %-12s %8llu requests match golden timeline\n",
                    result.workload.c_str(), result.scheme.c_str(),
                    static_cast<unsigned long long>(result.requests));
      } else {
        ++failures;
        std::printf("FAIL  %-12s %-12s\n%s", result.workload.c_str(),
                    result.scheme.c_str(),
                    lazydram::sim::DiffHarness::format_divergence(result).c_str());
      }
      std::fflush(stdout);
    }
    if (failures > 0) {
      std::fprintf(stderr, "diffcheck: %u (workload, policy) pair(s) diverged\n",
                   failures);
      return 1;
    }
    std::printf("diffcheck: all %zu workload(s) under policy '%s' match the "
                "golden timeline\n",
                workload_names.size(), policy.c_str());
    return 0;
  }

  for (const std::string& workload : workload_names) {
    for (SchemeKind kind : schemes) {
      const lazydram::core::SchemeSpec spec =
          lazydram::core::make_scheme_spec(kind, lazydram::GpuConfig{}.scheme);
      const lazydram::sim::DiffResult result = harness.run(workload, spec);
      if (result.ok()) {
        std::printf("PASS  %-12s %-12s %8llu requests match golden timeline\n",
                    result.workload.c_str(), result.scheme.c_str(),
                    static_cast<unsigned long long>(result.requests));
      } else {
        ++failures;
        std::printf("FAIL  %-12s %-12s\n%s", result.workload.c_str(),
                    result.scheme.c_str(),
                    lazydram::sim::DiffHarness::format_divergence(result).c_str());
      }
      std::fflush(stdout);
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "diffcheck: %u (workload, scheme) pair(s) diverged\n",
                 failures);
    return 1;
  }
  std::printf("diffcheck: all %zu workload(s) x %zu scheme(s) match the golden "
              "timeline\n",
              workload_names.size(), schemes.size());
  return 0;
}
