#!/usr/bin/env python3
"""Per-phase latency attribution from lazydram request-lifecycle traces.

Usage: trace_summary.py [--check] TRACE [TRACE ...]

Accepts both trace formats the simulator writes:
  * JSONL (LAZYDRAM_TRACE_FORMAT=jsonl, the default): one JSON object per
    line; request lifecycles are the {"type":"req",...} lines.
  * Chrome Trace Event Format (LAZYDRAM_TRACE_FORMAT=chrome): a JSON array
    of events; request lifecycles are the async "b"/"e" spans with
    cat == "req".

For each file (one file per run/scheme) it prints an attribution table:
count, mean and p95 duration per lifecycle phase. Core-clock phases
(icnt_request, partition_wait, reply_return) are reported in core cycles,
memory-side phases in memory cycles for JSONL traces; chrome traces are
entirely on the memory-cycle axis (1 mem cycle = 1 us).

With --check nothing is printed on success; the files are instead validated
(JSON parses; every async "b" has a matching "e"; spans nest as a stack with
monotonic timestamps) and the exit status reports the result.

Exit status: 0 = ok, 1 = validation/parse failure, 2 = bad invocation.
"""

import argparse
import json
import math
import sys
from pathlib import Path


def percentile(values, p):
    """Nearest-rank percentile (matches Histogram::percentile in C++)."""
    if not values:
        return 0.0
    rank = max(1, min(len(values), math.ceil(p * len(values) - 1e-9)))
    return sorted(values)[rank - 1]


class TraceError(Exception):
    pass


def load_jsonl_phases(path):
    """Phase durations from a JSONL trace's {"type":"req"} lines."""
    phases = {}

    def add(name, duration):
        if duration < 0:
            raise TraceError(f"negative {name} duration {duration}")
        phases.setdefault(name, []).append(duration)

    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise TraceError(f"line {lineno}: {e}") from e
            if rec.get("type") != "req":
                continue
            gated = rec["gated"]
            enq = rec["enq"]
            # Core-side stamps are 0 when the trace came from a bare
            # controller harness (no GPU front end) — skip those phases.
            if rec["inject"] and rec["eject"]:
                add("icnt_request", rec["eject"] - rec["inject"])
            if rec["eject"] and rec["enq_core"]:
                add("partition_wait", rec["enq_core"] - rec["eject"])
            if rec["dropped"]:
                add("drop_wait", rec["drop"] - enq - gated)
                add("drop_gated", gated)
                add("vp_serve", 0)
                add("req", rec["drop"] - enq)
            else:
                add("queue_wait", rec["cas"] - enq - gated)
                add("dms_gated", gated)
                add("service", rec["done"] - rec["cas"])
                add("req", rec["done"] - enq)
            if rec["reply"] and rec["wakeup"]:
                add("reply_return", rec["wakeup"] - rec["reply"])
    return phases


def load_chrome_phases(path):
    """Phase durations from a chrome trace's async req spans, validating
    b/e pairing and stack nesting along the way."""
    with open(path) as f:
        try:
            events = json.load(f)
        except json.JSONDecodeError as e:
            raise TraceError(str(e)) from e
    if not isinstance(events, list):
        raise TraceError("top-level JSON value is not an array")

    phases = {}
    stacks = {}  # (pid, id) -> [(name, ts), ...]
    for i, ev in enumerate(events):
        if ev.get("cat") != "req" or ev.get("ph") not in ("b", "e"):
            continue
        key = (ev.get("pid"), ev.get("id"))
        ts = ev["ts"]
        stack = stacks.setdefault(key, [])
        if ev["ph"] == "b":
            if stack and ts < stack[-1][1]:
                raise TraceError(
                    f"event {i}: span '{ev.get('name')}' begins at {ts} before "
                    f"its parent '{stack[-1][0]}' began at {stack[-1][1]}")
            stack.append((ev["name"], ts))
        else:
            if not stack:
                raise TraceError(f"event {i}: 'e' for req id {key[1]} with no open span")
            name, begin = stack.pop()
            if ts < begin:
                raise TraceError(
                    f"event {i}: span '{name}' ends at {ts} before it began at {begin}")
            phases.setdefault(name, []).append(ts - begin)
    dangling = {k: s for k, s in stacks.items() if s}
    if dangling:
        key, stack = next(iter(dangling.items()))
        raise TraceError(
            f"{sum(len(s) for s in dangling.values())} unclosed span(s); "
            f"e.g. req id {key[1]} still has '{stack[-1][0]}' open")
    return phases


# Fixed display order: end-to-end first, then the served path in pipeline
# order, then the dropped path, so tables from different runs line up.
PHASE_ORDER = [
    "req", "icnt_request", "partition_wait", "queue_wait", "dms_gated",
    "service", "reply_return", "drop_wait", "drop_gated", "vp_serve",
]


def print_table(label, phases):
    total = len(phases.get("req", []))
    print(f"\n{label}: {total} sampled request(s)")
    print(f"{'phase':<16} {'count':>8} {'mean':>12} {'p95':>10}")
    names = [p for p in PHASE_ORDER if p in phases]
    names += sorted(set(phases) - set(names))
    for name in names:
        vals = phases[name]
        mean = sum(vals) / len(vals)
        print(f"{name:<16} {len(vals):>8} {mean:>12.2f} {percentile(vals, 0.95):>10.0f}")


def looks_like_chrome(path):
    with open(path) as f:
        head = f.read(64).lstrip()
    return head.startswith("[")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", help="trace files (JSONL or chrome)")
    ap.add_argument("--check", action="store_true",
                    help="validate only; print nothing on success")
    args = ap.parse_args()

    failed = False
    for path in args.traces:
        p = Path(path)
        try:
            if looks_like_chrome(p):
                phases = load_chrome_phases(p)
            else:
                phases = load_jsonl_phases(p)
        except (OSError, TraceError, KeyError, TypeError) as e:
            print(f"trace_summary: {path}: {e}", file=sys.stderr)
            failed = True
            continue
        if args.check:
            if not phases:
                print(f"trace_summary: {path}: no request lifecycles found",
                      file=sys.stderr)
                failed = True
        else:
            print_table(p.stem, phases)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
