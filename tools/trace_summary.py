#!/usr/bin/env python3
"""Per-phase latency and per-window energy attribution from lazydram traces.

Usage: trace_summary.py [--check] TRACE [TRACE ...]

Accepts both trace formats the simulator writes:
  * JSONL (LAZYDRAM_TRACE_FORMAT=jsonl, the default): one JSON object per
    line; request lifecycles are the {"type":"req",...} lines, window
    samples (with their e_row/e_access/e_bg/e_ref energy split, power_w,
    and per-bank energy_nj) are the {"type":"window",...} lines.
  * Chrome Trace Event Format (LAZYDRAM_TRACE_FORMAT=chrome): a JSON array
    of events; request lifecycles are the async "b"/"e" spans with
    cat == "req", and the power timeline is the "C" counter tracks named
    "power" (component watts), "energy" (cumulative component nJ) and
    "bank.energy" (per-window per-bank nJ).

For each file (one file per run/scheme) it prints a latency attribution
table — count, mean and p95 duration per lifecycle phase — and, when the
trace carries power data, an energy attribution table: per-channel component
energies with mean/peak window power, and the per-bank energy split.
Core-clock phases (icnt_request, partition_wait, reply_return) are reported
in core cycles, memory-side phases in memory cycles for JSONL traces; chrome
traces are entirely on the memory-cycle axis (1 mem cycle = 1 us).

With --check nothing is printed on success; the files are instead validated
(JSON parses; every async "b" has a matching "e"; spans nest as a stack with
monotonic timestamps; window energies are non-negative; the cumulative
"energy" counter track is monotone non-decreasing per channel/component) and
the exit status reports the result.

Exit status: 0 = ok, 1 = validation/parse failure, 2 = bad invocation.
"""

import argparse
import json
import math
import sys
from pathlib import Path


def percentile(values, p):
    """Nearest-rank percentile (matches Histogram::percentile in C++)."""
    if not values:
        return 0.0
    rank = max(1, min(len(values), math.ceil(p * len(values) - 1e-9)))
    return sorted(values)[rank - 1]


class TraceError(Exception):
    pass


def load_jsonl_phases(path):
    """Phase durations from a JSONL trace's {"type":"req"} lines."""
    phases = {}

    def add(name, duration):
        if duration < 0:
            raise TraceError(f"negative {name} duration {duration}")
        phases.setdefault(name, []).append(duration)

    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise TraceError(f"line {lineno}: {e}") from e
            if rec.get("type") != "req":
                continue
            gated = rec["gated"]
            enq = rec["enq"]
            # Core-side stamps are 0 when the trace came from a bare
            # controller harness (no GPU front end) — skip those phases.
            if rec["inject"] and rec["eject"]:
                add("icnt_request", rec["eject"] - rec["inject"])
            if rec["eject"] and rec["enq_core"]:
                add("partition_wait", rec["enq_core"] - rec["eject"])
            if rec["dropped"]:
                add("drop_wait", rec["drop"] - enq - gated)
                add("drop_gated", gated)
                add("vp_serve", 0)
                add("req", rec["drop"] - enq)
            else:
                add("queue_wait", rec["cas"] - enq - gated)
                add("dms_gated", gated)
                add("service", rec["done"] - rec["cas"])
                add("req", rec["done"] - enq)
            if rec["reply"] and rec["wakeup"]:
                add("reply_return", rec["wakeup"] - rec["reply"])
    return phases


def load_chrome_phases(path):
    """Phase durations from a chrome trace's async req spans, validating
    b/e pairing and stack nesting along the way."""
    with open(path) as f:
        try:
            events = json.load(f)
        except json.JSONDecodeError as e:
            raise TraceError(str(e)) from e
    if not isinstance(events, list):
        raise TraceError("top-level JSON value is not an array")

    phases = {}
    stacks = {}  # (pid, id) -> [(name, ts), ...]
    for i, ev in enumerate(events):
        if ev.get("cat") != "req" or ev.get("ph") not in ("b", "e"):
            continue
        key = (ev.get("pid"), ev.get("id"))
        ts = ev["ts"]
        stack = stacks.setdefault(key, [])
        if ev["ph"] == "b":
            if stack and ts < stack[-1][1]:
                raise TraceError(
                    f"event {i}: span '{ev.get('name')}' begins at {ts} before "
                    f"its parent '{stack[-1][0]}' began at {stack[-1][1]}")
            stack.append((ev["name"], ts))
        else:
            if not stack:
                raise TraceError(f"event {i}: 'e' for req id {key[1]} with no open span")
            name, begin = stack.pop()
            if ts < begin:
                raise TraceError(
                    f"event {i}: span '{name}' ends at {ts} before it began at {begin}")
            phases.setdefault(name, []).append(ts - begin)
    dangling = {k: s for k, s in stacks.items() if s}
    if dangling:
        key, stack = next(iter(dangling.items()))
        raise TraceError(
            f"{sum(len(s) for s in dangling.values())} unclosed span(s); "
            f"e.g. req id {key[1]} still has '{stack[-1][0]}' open")
    return phases


SELFPROF_PID = 9999  # ChromeTraceSink::kSelfProfPid — the self-time process.


def load_chrome_selfprof(path):
    """Self-time aggregation from a chrome trace's "selfprof" process
    (written by --self-profile runs): per-zone count, inclusive and
    exclusive wall microseconds, summed over threads. Validates that the
    sync "B"/"E" events nest as a per-thread stack with monotonic
    timestamps along the way; zones still open at the end of the trace are
    legal (the snapshot ran before they closed) and contribute nothing.
    Returns {} when the trace has no selfprof process."""
    with open(path) as f:
        try:
            events = json.load(f)
        except json.JSONDecodeError as e:
            raise TraceError(str(e)) from e
    if not isinstance(events, list):
        raise TraceError("top-level JSON value is not an array")

    zones = {}  # name -> {"count": n, "inclusive": us, "exclusive": us}
    stacks = {}  # tid -> [[name, begin_ts, child_time], ...]
    for i, ev in enumerate(events):
        if ev.get("pid") != SELFPROF_PID or ev.get("ph") not in ("B", "E"):
            continue
        if ev.get("cat") != "selfprof":
            raise TraceError(f"event {i}: pid {SELFPROF_PID} span without "
                             f"cat 'selfprof'")
        tid, ts = ev.get("tid"), ev["ts"]
        stack = stacks.setdefault(tid, [])
        if ev["ph"] == "B":
            if stack and ts < stack[-1][1]:
                raise TraceError(
                    f"event {i}: selfprof zone '{ev.get('name')}' begins at "
                    f"{ts} before its parent '{stack[-1][0]}' began at "
                    f"{stack[-1][1]}")
            stack.append([ev["name"], ts, 0.0])
        else:
            if not stack:
                raise TraceError(
                    f"event {i}: selfprof 'E' on tid {tid} with no open zone")
            name, begin, child = stack.pop()
            if ts < begin:
                raise TraceError(
                    f"event {i}: selfprof zone '{name}' ends at {ts} before "
                    f"it began at {begin}")
            dur = ts - begin
            z = zones.setdefault(name,
                                 {"count": 0, "inclusive": 0.0, "exclusive": 0.0})
            z["count"] += 1
            z["inclusive"] += dur
            z["exclusive"] += dur - child
            if stack:
                stack[-1][2] += dur
    return zones


def print_selfprof_table(zones):
    """Self-time attribution: where the simulator's own wall time went."""
    print("\nself-time attribution (wall ms):")
    print(f"{'zone':<24} {'count':>8} {'inclusive':>12} {'self':>12}")
    for name in sorted(zones, key=lambda n: -zones[n]["inclusive"]):
        z = zones[name]
        print(f"{name:<24} {z['count']:>8} {z['inclusive'] / 1000.0:>12.3f} "
              f"{z['exclusive'] / 1000.0:>12.3f}")


# Energy components, in the display/validation order used everywhere below.
COMPONENTS = ("row", "access", "background", "refresh")


def _power_channel(chans, pid):
    return chans.setdefault(pid, {
        "windows": 0,
        "energy": dict.fromkeys(COMPONENTS, 0.0),
        "power": [],   # per-window total watts
        "banks": [],   # per-bank total nJ, index = bank id
    })


def load_jsonl_power(path):
    """Per-channel energy/power aggregation from a JSONL trace's window
    lines. Returns {} when the trace has no windows or no energy data
    (sampling or the power accountant disabled)."""
    chans = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise TraceError(f"line {lineno}: {e}") from e
            if rec.get("type") != "window":
                continue
            ch = _power_channel(chans, rec["ch"])
            ch["windows"] += 1
            for comp, key in zip(COMPONENTS, ("e_row", "e_access", "e_bg", "e_ref")):
                v = rec.get(key, 0.0)
                if v < 0:
                    raise TraceError(f"line {lineno}: negative {key} {v}")
                ch["energy"][comp] += v
            power = rec.get("power_w", 0.0)
            if power < 0:
                raise TraceError(f"line {lineno}: negative power_w {power}")
            ch["power"].append(power)
            for b, bank in enumerate(rec.get("banks", [])):
                while b >= len(ch["banks"]):
                    ch["banks"].append(0.0)
                ch["banks"][b] += bank.get("energy_nj", 0.0)
    return {pid: ch for pid, ch in chans.items() if sum(ch["energy"].values()) > 0}


def load_chrome_power(path):
    """Per-channel energy/power aggregation from a chrome trace's counter
    tracks, validating that the cumulative "energy" track is monotone
    non-decreasing per channel/component along the way."""
    with open(path) as f:
        try:
            events = json.load(f)
        except json.JSONDecodeError as e:
            raise TraceError(str(e)) from e
    if not isinstance(events, list):
        raise TraceError("top-level JSON value is not an array")

    chans = {}
    for i, ev in enumerate(events):
        if ev.get("ph") != "C":
            continue
        name, pid, args = ev.get("name"), ev.get("pid"), ev.get("args", {})
        if name == "power":
            ch = _power_channel(chans, pid)
            ch["windows"] += 1
            ch["power"].append(sum(args.get(c, 0.0) for c in COMPONENTS))
        elif name == "energy":
            ch = _power_channel(chans, pid)
            for comp in COMPONENTS:
                v = args.get(comp, 0.0)
                prev = ch["energy"][comp]
                if v < prev:
                    raise TraceError(
                        f"event {i}: cumulative {comp} energy on channel {pid} "
                        f"decreases from {prev:.10g} to {v:.10g}")
                ch["energy"][comp] = v  # Track carries the running total.
        elif name == "bank.energy":
            ch = _power_channel(chans, pid)
            for key, v in args.items():
                b = int(key[1:])  # "b3" -> 3
                while b >= len(ch["banks"]):
                    ch["banks"].append(0.0)
                ch["banks"][b] += v
    return {pid: ch for pid, ch in chans.items() if sum(ch["energy"].values()) > 0}


def print_power_table(chans):
    """Energy attribution: per-channel component totals + window power, then
    the per-bank energy split."""
    hdr = (f"{'ch':>3} {'windows':>8} {'row_nj':>13} {'access_nj':>13} "
           f"{'bg_nj':>13} {'ref_nj':>13} {'total_nj':>13} {'mean_w':>8} {'peak_w':>8}")
    print("\nenergy attribution:")
    print(hdr)
    for pid in sorted(chans):
        ch = chans[pid]
        e = ch["energy"]
        power = ch["power"]
        mean_w = sum(power) / len(power) if power else 0.0
        peak_w = max(power) if power else 0.0
        print(f"{pid:>3} {ch['windows']:>8} {e['row']:>13.1f} {e['access']:>13.1f} "
              f"{e['background']:>13.1f} {e['refresh']:>13.1f} "
              f"{sum(e.values()):>13.1f} {mean_w:>8.3f} {peak_w:>8.3f}")
    for pid in sorted(chans):
        banks = chans[pid]["banks"]
        total = sum(banks)
        if total <= 0:
            continue
        print(f"\nch {pid} per-bank energy:")
        print(f"{'bank':>5} {'energy_nj':>13} {'share':>7}")
        for b, v in enumerate(banks):
            print(f"{b:>5} {v:>13.1f} {v / total:>7.1%}")


# Fixed display order: end-to-end first, then the served path in pipeline
# order, then the dropped path, so tables from different runs line up.
PHASE_ORDER = [
    "req", "icnt_request", "partition_wait", "queue_wait", "dms_gated",
    "service", "reply_return", "drop_wait", "drop_gated", "vp_serve",
]


def print_table(label, phases):
    total = len(phases.get("req", []))
    print(f"\n{label}: {total} sampled request(s)")
    print(f"{'phase':<16} {'count':>8} {'mean':>12} {'p95':>10}")
    names = [p for p in PHASE_ORDER if p in phases]
    names += sorted(set(phases) - set(names))
    for name in names:
        vals = phases[name]
        mean = sum(vals) / len(vals)
        print(f"{name:<16} {len(vals):>8} {mean:>12.2f} {percentile(vals, 0.95):>10.0f}")


def looks_like_chrome(path):
    with open(path) as f:
        head = f.read(64).lstrip()
    return head.startswith("[")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", help="trace files (JSONL or chrome)")
    ap.add_argument("--check", action="store_true",
                    help="validate only; print nothing on success")
    args = ap.parse_args()

    failed = False
    for path in args.traces:
        p = Path(path)
        try:
            if looks_like_chrome(p):
                phases = load_chrome_phases(p)
                power = load_chrome_power(p)
                selfprof = load_chrome_selfprof(p)
            else:
                phases = load_jsonl_phases(p)
                power = load_jsonl_power(p)
                selfprof = {}
        except (OSError, TraceError, KeyError, TypeError, ValueError) as e:
            print(f"trace_summary: {path}: {e}", file=sys.stderr)
            failed = True
            continue
        if args.check:
            # Power and self-time data are optional (sampling, the
            # accountant, or the self-profiler may be off); when present
            # their invariants were validated on load.
            if not phases:
                print(f"trace_summary: {path}: no request lifecycles found",
                      file=sys.stderr)
                failed = True
        else:
            print_table(p.stem, phases)
            if power:
                print_power_table(power)
            if selfprof:
                print_selfprof_table(selfprof)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
