// Policy-conformance fuzzer: every registered scheduler policy is driven
// through a seeded synthetic request stream by a mirror harness that enforces
// the decide() contract the controller's fast paths rely on (see
// src/mem/scheduler.hpp):
//
//   * decide() is side-effect-free — the controller may call it twice per
//     (bank, cycle) (drop pass + command pass); a mirror instance fed the
//     identical notification stream but double-called must never diverge
//     from the single-called primary;
//   * kNone answers carry the kInvalidRequest sentinel, never a live id;
//   * none_until horizons are sound for decide_memo_safe() policies: the
//     answer stays kNone until the horizon unless the bank's pending set or
//     the policy's delay/threshold knobs change;
//   * may_drop()/drops_possible() are consistent with actual kDrop answers;
//   * bank_draining() banks retire their drains (liveness), and the whole
//     stream drains — the batch-cap RR PRE/ACT livelock regression lives
//     here;
//   * the same seed reproduces the same decision log (determinism).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/lazy_scheduler.hpp"
#include "core/scheduler_registry.hpp"
#include "mem/pending_queue.hpp"
#include "mem/scheduler.hpp"
#include "telemetry/window_sampler.hpp"

namespace lazydram {
namespace {

struct PolicyCase {
  std::string name;         ///< Test label.
  std::string spec_text;    ///< parse_policy_spec input ("" = lazy).
  core::SchemeKind scheme = core::SchemeKind::kBaseline;  ///< For lazy only.
};

std::vector<PolicyCase> conformance_cases() {
  return {
      {"frfcfs", "frfcfs"},
      {"fcfs", "fcfs"},
      {"bliss", "bliss:threshold=3,interval=512"},
      {"batch-rr", "batch-rr:cap=2"},
      {"autotune", "autotune:min=0,max=256,step=32,window=256"},
      {"lazy-baseline", "", core::SchemeKind::kBaseline},
      {"lazy-static-dms", "", core::SchemeKind::kStaticDms},
      {"lazy-static-combo", "", core::SchemeKind::kStaticCombo},
      {"lazy-dyn-combo", "", core::SchemeKind::kDynCombo},
  };
}

std::unique_ptr<Scheduler> build(const PolicyCase& pc, const GpuConfig& cfg) {
  const core::SchemeSpec spec = pc.spec_text.empty()
                                    ? core::make_scheme_spec(pc.scheme, cfg.scheme)
                                    : core::SchemeSpec{};
  std::unique_ptr<Scheduler> s = core::make_scheduler(cfg, spec);
  // The AMS-capable lazy schemes need the L2-warm-up gate released, as the
  // GpuTop wiring would after warm-up.
  if (auto* lazy = dynamic_cast<core::LazyScheduler*>(s.get())) lazy->set_ams_ready(true);
  return s;
}

bool same_decision(const Decision& a, const Decision& b) {
  return a.action == b.action && a.req_id == b.req_id && a.none_until == b.none_until;
}

/// Drives the primary instance (decide() once per visited bank-cycle) and a
/// mirror (decide() twice) through one seeded stream; returns an FNV-1a hash
/// of the primary's applied decision log for the determinism check.
std::uint64_t run_stream(const PolicyCase& pc, std::uint64_t seed) {
  GpuConfig cfg;
  if (!pc.spec_text.empty()) {
    std::string err;
    EXPECT_TRUE(core::parse_policy_spec(pc.spec_text, cfg, &err)) << err;
  }
  cfg.validate();
  const unsigned kBanks = cfg.banks_per_channel;
  constexpr RowId kRows = 6;
  constexpr Cycle kStreamCycles = 60'000;
  constexpr Cycle kMaxCycles = 400'000;

  std::unique_ptr<Scheduler> primary = build(pc, cfg);
  std::unique_ptr<Scheduler> mirror = build(pc, cfg);

  PendingQueue queue(cfg.pending_queue_size, kBanks);
  std::vector<BankView> banks(kBanks);
  for (BankId b = 0; b < kBanks; ++b) banks[b].bank = b;
  std::vector<Cycle> busy_until(kBanks, 0);
  std::vector<Cycle> horizon(kBanks, 0);  ///< Active none_until per bank.

  Rng rng(seed);
  RequestId next_id = 1;
  std::uint64_t bus_busy = 0;
  Cycle last_delay = 0;
  unsigned last_th_rbl = 0;
  std::uint64_t log_hash = 1469598103934665603ull;  // FNV-1a offset basis.
  const auto log = [&](std::uint64_t v) {
    log_hash = (log_hash ^ v) * 1099511628211ull;
  };
  const bool memo_safe = primary->decide_memo_safe();
  EXPECT_EQ(memo_safe, mirror->decide_memo_safe());
  EXPECT_EQ(primary->hit_first(), mirror->hit_first());
  EXPECT_EQ(primary->drops_possible(), mirror->drops_possible());

  bool drained = false;
  for (Cycle now = 0; now < kMaxCycles; ++now) {
    // Stream phase: Bernoulli arrivals, skewed across banks/rows/SMs so row
    // hits, conflicts, blacklist streaks and batch rotations all occur.
    if (now < kStreamCycles && !queue.full() && rng.next_bool(0.25)) {
      MemRequest r;
      r.id = next_id++;
      r.kind = rng.next_bool(0.15) ? AccessKind::kWrite : AccessKind::kRead;
      r.approximable = r.is_read() && rng.next_bool(0.7);
      r.src_sm = r.is_read() ? static_cast<SmId>(rng.next_below(4)) : MemRequest::kNoSm;
      r.enqueue_cycle = now;
      r.loc.bank = static_cast<BankId>(rng.next_below(kBanks));
      // Skew: row 0 is hot, the rest uniform — sustains streaks and hits.
      r.loc.row = rng.next_bool(0.4) ? 0 : 1 + rng.next_below(kRows - 1);
      r.line_addr = static_cast<Addr>(r.id) * kLineBytes;
      queue.push(r);
      primary->on_enqueue(r);
      mirror->on_enqueue(r);
      horizon[r.loc.bank] = 0;  // Pending set changed: horizon void.
    }

    primary->tick(now, bus_busy);
    mirror->tick(now, bus_busy);

    // Delay/threshold knob edges invalidate every none_until horizon, exactly
    // as the controller's memo layer does.
    telemetry::WindowProbe pp{}, mp{};
    primary->fill_probe(pp);
    mirror->fill_probe(mp);
    EXPECT_EQ(pp.dms_delay, mp.dms_delay) << pc.name << " cycle " << now;
    EXPECT_EQ(pp.th_rbl, mp.th_rbl) << pc.name << " cycle " << now;
    if (pp.dms_delay != last_delay || pp.th_rbl != last_th_rbl) {
      last_delay = pp.dms_delay;
      last_th_rbl = pp.th_rbl;
      for (BankId b = 0; b < kBanks; ++b) horizon[b] = 0;
    }

    EXPECT_EQ(primary->may_drop(), mirror->may_drop()) << pc.name;
    if (primary->may_drop()) {
      EXPECT_TRUE(primary->drops_possible()) << pc.name;
    }

    for (BankId b = 0; b < kBanks; ++b) {
      if (busy_until[b] > now) continue;  // Command engine busy: no decide.
      const bool draining = primary->bank_draining(b);
      EXPECT_EQ(draining, mirror->bank_draining(b)) << pc.name;
      // The controller skips banks with neither pending work nor a drain.
      if (queue.bank_size(b) == 0 && !draining) continue;

      const Decision d = primary->decide(queue, banks[b], now);
      const Decision m1 = mirror->decide(queue, banks[b], now);
      const Decision m2 = mirror->decide(queue, banks[b], now);
      EXPECT_TRUE(same_decision(m1, m2))
          << pc.name << ": double-called decide diverged on bank "
          << static_cast<int>(b) << " at cycle " << now;
      EXPECT_TRUE(same_decision(d, m1))
          << pc.name << ": mirror diverged from primary on bank "
          << static_cast<int>(b) << " at cycle " << now;

      if (horizon[b] > now) {
        EXPECT_EQ(d.action, Decision::Action::kNone)
            << pc.name << ": bank " << static_cast<int>(b) << " promised kNone until "
            << horizon[b] << " but answered otherwise at " << now;
      }

      switch (d.action) {
        case Decision::Action::kNone: {
          EXPECT_EQ(d.req_id, kInvalidRequest) << pc.name;
          if (memo_safe && d.none_until > now) horizon[b] = d.none_until;
          break;
        }
        case Decision::Action::kServe: {
          const MemRequest* found = queue.find(d.req_id);
          EXPECT_NE(found, nullptr) << pc.name << ": served unknown id " << d.req_id;
          if (found == nullptr) return log_hash;
          EXPECT_EQ(found->loc.bank, b) << pc.name;
          const bool hit = banks[b].row_open && banks[b].open_row == found->loc.row;
          busy_until[b] = now + (hit ? 4 : 24);  // CAS vs PRE+ACT+CAS, roughly.
          banks[b].row_open = true;
          banks[b].open_row = found->loc.row;
          const MemRequest r = queue.erase(d.req_id);
          primary->on_serve(r);
          mirror->on_serve(r);
          horizon[b] = 0;
          bus_busy += 2;  // One burst on the shared data bus.
          log(0x5eull);
          log(d.req_id);
          break;
        }
        case Decision::Action::kDrop: {
          EXPECT_TRUE(primary->may_drop()) << pc.name;
          EXPECT_TRUE(primary->drops_possible()) << pc.name;
          const MemRequest* found = queue.find(d.req_id);
          EXPECT_NE(found, nullptr) << pc.name << ": dropped unknown id " << d.req_id;
          if (found == nullptr) return log_hash;
          EXPECT_EQ(found->loc.bank, b) << pc.name;
          EXPECT_TRUE(found->approximable) << pc.name << ": dropped a precise read";
          const MemRequest r = queue.erase(d.req_id);
          primary->on_drop(r);
          mirror->on_drop(r);
          horizon[b] = 0;
          log(0xd0ull);
          log(d.req_id);
          break;
        }
      }
      log(static_cast<std::uint64_t>(b));
      log(now);
    }

    if (now >= kStreamCycles && queue.empty()) {
      bool any_draining = false;
      for (BankId b = 0; b < kBanks; ++b) any_draining |= primary->bank_draining(b);
      if (!any_draining) {
        drained = true;
        break;
      }
    }
  }
  // Liveness: every policy must drain the stream well before the bound —
  // batch-cap RR's rotation must not PRE/ACT-livelock a closed capped row,
  // DMS gates must expire, AMS drains must retire their banks.
  EXPECT_TRUE(drained) << pc.name << ": stream failed to drain (livelock?)";
  EXPECT_TRUE(queue.empty()) << pc.name;
  return log_hash;
}

class PolicyConformance : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyConformance, ContractHoldsUnderSeededFuzzStream) {
  const PolicyCase& pc = GetParam();
  const std::uint64_t h1 = run_stream(pc, 0xC0FFEEull);
  const std::uint64_t h2 = run_stream(pc, 0xC0FFEEull);
  EXPECT_EQ(h1, h2) << pc.name << ": same seed produced different decision logs";
  // A different seed exercises a different stream (and, overwhelmingly
  // likely, a different log) — run it for coverage, not for inequality.
  run_stream(pc, 0xBEEFull);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyConformance,
                         ::testing::ValuesIn(conformance_cases()),
                         [](const ::testing::TestParamInfo<PolicyCase>& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace lazydram
