// End-to-end GpuTop integration tests: completion, conservation, determinism,
// scheme invariants (coverage cap, baseline equivalence) on a small custom
// workload plus spot checks on registry apps.
#include <gtest/gtest.h>

#include "core/scheduler_registry.hpp"
#include "gpu/gpu_top.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "workloads/patterns.hpp"
#include "workloads/registry.hpp"

namespace lazydram {
namespace {

using workloads::AddrRange;
using workloads::Level;

/// Small deterministic workload: strided tile reads + scattered reads +
/// stores, sized to finish in ~50k cycles.
class MiniWorkload final : public workloads::Workload {
 public:
  std::string name() const override { return "mini"; }
  std::string description() const override { return "test workload"; }
  unsigned group() const override { return 1; }
  workloads::FeatureTargets targets() const override { return {}; }
  unsigned num_warps() const override { return 120; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    constexpr unsigned kIters = 24;
    if (step >= kIters * 4) return false;
    const unsigned iter = step / 4;
    const Addr base = workloads::MiB(16) +
                      (static_cast<Addr>(warp) * kIters + iter) * 8 * kLineBytes;
    switch (step % 4) {
      case 0:
        op = workloads::wide_load(base, 8, true);
        return true;
      case 1:
        op = gpu::WarpOp::load_line(
            workloads::MiB(512) +
                (workloads::mix64(warp * 131 + iter) % 4096) * kLineBytes,
            true);
        return true;
      case 2:
        op = gpu::WarpOp::compute(12);
        return true;
      default:
        op = gpu::WarpOp::store_line(workloads::MiB(768) +
                                     static_cast<Addr>(warp) * kLineBytes);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    workloads::fill_smooth(image, workloads::MiB(16), 4096, 1.0, 3.0, 2.0);
    workloads::fill_smooth(image, workloads::MiB(512), 4096 * 32, 0.5, 5.0, 1.0);
  }
  void compute_output(gpu::MemView& view) const override {
    double acc = 0.0;
    for (unsigned i = 0; i < 4096; ++i)
      acc += view.read_f32(workloads::f32_addr(workloads::MiB(16), i));
    view.write_f32(workloads::MiB(896), static_cast<float>(acc));
  }
  std::vector<AddrRange> output_ranges() const override {
    return {{workloads::MiB(896), 4}};
  }
  std::vector<AddrRange> approximable_ranges() const override {
    return {{workloads::MiB(16), workloads::MiB(256)},
            {workloads::MiB(512), workloads::MiB(4)}};
  }
};

gpu::GpuTop::SchedulerFactory lazy_factory(const GpuConfig& cfg,
                                           const core::SchemeSpec& spec) {
  return core::make_scheduler_factory(cfg, spec);
}

TEST(GpuTop, BaselineRunCompletesAndConserves) {
  MiniWorkload wl;
  GpuConfig cfg;
  const core::SchemeSpec spec;
  gpu::GpuTop top(cfg, wl, lazy_factory(cfg, spec));
  ASSERT_TRUE(top.run(20'000'000));
  EXPECT_TRUE(top.finished());
  EXPECT_GT(top.instructions(), 0u);

  // Conservation: every read received by every controller was served or
  // dropped; every write received was served.
  for (ChannelId ch = 0; ch < top.num_channels(); ++ch) {
    const MemoryController& mc = top.controller(ch);
    EXPECT_EQ(mc.reads_received(), mc.reads_served() + mc.reads_dropped());
    EXPECT_EQ(mc.writes_received(), mc.writes_served());
    EXPECT_EQ(mc.reads_dropped(), 0u);  // No AMS in baseline.
  }
  EXPECT_TRUE(top.fmem().overlay().empty());
}

TEST(GpuTop, DeterministicAcrossRuns) {
  MiniWorkload wl;
  GpuConfig cfg;
  const core::SchemeSpec spec =
      core::make_scheme_spec(core::SchemeKind::kDynCombo, cfg.scheme);
  auto run_once = [&] {
    gpu::GpuTop top(cfg, wl, lazy_factory(cfg, spec));
    top.run(20'000'000);
    return sim::collect_metrics(top, wl, "x", false);
  };
  const sim::RunMetrics a = run_once();
  const sim::RunMetrics b = run_once();
  EXPECT_EQ(a.core_cycles, b.core_cycles);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.instructions, b.instructions);
}

TEST(GpuTop, BaselineLazyMatchesPlainFrFcfs) {
  MiniWorkload wl;
  GpuConfig cfg;
  const core::SchemeSpec spec;
  gpu::GpuTop lazy_top(cfg, wl, lazy_factory(cfg, spec));
  lazy_top.run(20'000'000);
  GpuConfig fr_cfg = cfg;
  fr_cfg.policy.name = "frfcfs";
  gpu::GpuTop fr_top(fr_cfg, wl,
                     core::make_scheduler_factory(fr_cfg, core::SchemeSpec{}));
  fr_top.run(20'000'000);
  EXPECT_EQ(lazy_top.core_cycles(), fr_top.core_cycles());
  sim::RunMetrics a = sim::collect_metrics(lazy_top, wl, "a", false);
  sim::RunMetrics b = sim::collect_metrics(fr_top, wl, "b", false);
  EXPECT_EQ(a.activations, b.activations);
}

TEST(GpuTop, AmsCoverageRespectsCap) {
  MiniWorkload wl;
  GpuConfig cfg;
  const core::SchemeSpec spec =
      core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg.scheme);
  gpu::GpuTop top(cfg, wl, lazy_factory(cfg, spec));
  ASSERT_TRUE(top.run(20'000'000));
  const sim::RunMetrics m = sim::collect_metrics(top, wl, "ams", false);
  EXPECT_GT(m.drops, 0u);
  // Row-group drains may overshoot the cap by at most Th_RBL per channel.
  const double slack =
      static_cast<double>(cfg.scheme.static_th_rbl * cfg.num_channels) /
      static_cast<double>(m.reads_received);
  EXPECT_LE(m.coverage, cfg.scheme.coverage_cap + slack);
  EXPECT_FALSE(top.fmem().overlay().empty());
}

TEST(GpuTop, DmsReducesActivationsOnMini) {
  MiniWorkload wl;
  GpuConfig cfg;
  gpu::GpuTop base(cfg, wl, lazy_factory(cfg, core::SchemeSpec{}));
  base.run(20'000'000);
  const core::SchemeSpec dms = core::make_static_dms_spec(512, cfg.scheme);
  gpu::GpuTop delayed(cfg, wl, lazy_factory(cfg, dms));
  delayed.run(20'000'000);
  const auto acts = [](const gpu::GpuTop& t) {
    std::uint64_t n = 0;
    for (ChannelId ch = 0; ch < t.num_channels(); ++ch)
      n += t.controller(ch).channel().activations();
    return n;
  };
  EXPECT_LT(acts(delayed), acts(base));
}

TEST(GpuTop, MetricsIdentities) {
  MiniWorkload wl;
  GpuConfig cfg;
  gpu::GpuTop top(cfg, wl, lazy_factory(cfg, core::SchemeSpec{}));
  top.run(20'000'000);
  const sim::RunMetrics m = sim::collect_metrics(top, wl, "base", false);
  // Avg-RBL identity: column accesses / activations.
  EXPECT_NEAR(m.avg_rbl,
              static_cast<double>(m.dram_reads + m.dram_writes) /
                  static_cast<double>(m.activations),
              1e-9);
  // The RBL histogram accounts for every activation and every access.
  std::uint64_t acts = 0, accesses = 0;
  for (std::uint64_t k = 1; k <= m.rbl_hist.max_key(); ++k) {
    acts += m.rbl_hist.at(k);
    accesses += k * m.rbl_hist.at(k);
  }
  EXPECT_EQ(acts + m.rbl_hist.overflow(), m.activations);
  EXPECT_LE(accesses, m.dram_reads + m.dram_writes);
  EXPECT_GT(m.ipc, 0.0);
  EXPECT_GT(m.bwutil, 0.0);
  EXPECT_LE(m.bwutil, 1.0);
}

TEST(Simulator, EndToEndSchemeOrderingOnScp) {
  // The paper's headline ordering on one real app: combo <= AMS < baseline
  // activations, and AMS must not hurt IPC.
  const auto wl = workloads::make_workload("SCP");
  GpuConfig cfg;
  const sim::RunMetrics base = sim::simulate_scheme(*wl, core::SchemeKind::kBaseline, cfg);
  const sim::RunMetrics ams = sim::simulate_scheme(*wl, core::SchemeKind::kStaticAms, cfg);
  const sim::RunMetrics combo =
      sim::simulate_scheme(*wl, core::SchemeKind::kStaticCombo, cfg);
  EXPECT_LT(ams.activations, base.activations);
  EXPECT_LT(combo.activations, ams.activations);
  EXPECT_GE(ams.ipc, base.ipc);
  EXPECT_GT(ams.coverage, 0.05);
  EXPECT_GT(ams.app_error, 0.0);
  EXPECT_LT(ams.app_error, 0.25);
}

}  // namespace
}  // namespace lazydram
