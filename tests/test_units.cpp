// DmsUnit / AmsUnit state-machine tests: window accounting, the Dyn-DMS
// search (warm-up, sampling, up/down stepping, fall-back, restart) and the
// Dyn-AMS Th_RBL walk.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "core/ams.hpp"
#include "core/dms.hpp"
#include "dram/address.hpp"
#include "mem/pending_queue.hpp"

namespace lazydram::core {
namespace {

SchemeParams params() {
  SchemeParams p;
  p.profile_window = 64;  // Small windows keep the tests fast.
  return p;
}

/// Feeds `windows` whole profiling windows at the given per-window BWUTIL.
void feed(DmsUnit& dms, Cycle& now, std::uint64_t& busy_total, double bwutil,
          unsigned windows, const SchemeParams& p) {
  for (unsigned w = 0; w < windows; ++w) {
    for (Cycle c = 0; c < p.profile_window; ++c) {
      busy_total += static_cast<std::uint64_t>(bwutil * 1000);
      dms.tick(++now, busy_total / 1000);
    }
  }
}

TEST(DmsUnit, StaticHoldsFixedDelay) {
  const SchemeParams p = params();
  DmsUnit dms(p, /*dynamic=*/false, 256);
  EXPECT_EQ(dms.current_delay(), 256u);
  Cycle now = 0;
  std::uint64_t busy = 0;
  feed(dms, now, busy, 0.9, 10, p);
  EXPECT_EQ(dms.current_delay(), 256u);
  EXPECT_FALSE(dms.sampling());
}

TEST(DmsUnit, AgeGate) {
  DmsUnit dms(params(), false, 100);
  EXPECT_FALSE(dms.allows(/*enqueue=*/50, /*now=*/149));
  EXPECT_TRUE(dms.allows(50, 150));
}

TEST(DynDms, SearchesUpWhileBwutilHolds) {
  const SchemeParams p = params();
  DmsUnit dms(p, /*dynamic=*/true, 0);
  Cycle now = 0;
  std::uint64_t busy = 0;
  EXPECT_TRUE(dms.sampling());       // Warm-up window.
  feed(dms, now, busy, 0.5, 1, p);   // Warm-up done -> sampling.
  EXPECT_TRUE(dms.sampling());
  feed(dms, now, busy, 0.5, 1, p);   // Baseline sampled at 0.5.
  EXPECT_EQ(dms.current_delay(), p.static_delay);  // Search starts at 128.
  feed(dms, now, busy, 0.5, 3, p);   // Three passing windows.
  EXPECT_EQ(dms.current_delay(), p.static_delay + 3 * p.delay_step);
}

TEST(DynDms, FallsBackToLastGoodDelayOnViolation) {
  const SchemeParams p = params();
  DmsUnit dms(p, true, 0);
  Cycle now = 0;
  std::uint64_t busy = 0;
  feed(dms, now, busy, 0.5, 2, p);  // Warm-up + baseline 0.5.
  feed(dms, now, busy, 0.5, 2, p);  // 128, 256 pass.
  feed(dms, now, busy, 0.2, 1, p);  // 384 violates (<95% of 0.5).
  // Falls back to the last passing value (256) and holds.
  EXPECT_EQ(dms.current_delay(), 256u);
  feed(dms, now, busy, 0.2, 3, p);
  EXPECT_EQ(dms.current_delay(), 256u);
}

TEST(DynDms, SearchesDownWhenSeededValueViolates) {
  const SchemeParams p = params();
  DmsUnit dms(p, true, 0);
  Cycle now = 0;
  std::uint64_t busy = 0;
  feed(dms, now, busy, 0.5, 2, p);   // Warm-up + baseline 0.5, delay -> 128.
  feed(dms, now, busy, 0.5, 15, p);  // Climbs to the 2048 cap and holds
  EXPECT_EQ(dms.current_delay(), p.max_delay);  // (recorded delay = 2048).
  feed(dms, now, busy, 0.5, 15, p);  // Window 32: restart -> sampling.
  feed(dms, now, busy, 0.9, 1, p);   // New baseline 0.9; seeded at 2048.
  EXPECT_EQ(dms.current_delay(), p.max_delay);
  feed(dms, now, busy, 0.3, 3, p);   // Every window violates: walk down.
  EXPECT_EQ(dms.current_delay(), p.max_delay - 3 * p.delay_step);
}

TEST(DynDms, CapsAtMaxDelay) {
  const SchemeParams p = params();
  DmsUnit dms(p, true, 0);
  Cycle now = 0;
  std::uint64_t busy = 0;
  feed(dms, now, busy, 0.5, 30, p);
  EXPECT_LE(dms.current_delay(), p.max_delay);
}

TEST(DynDms, WindowBoundariesStayOnProfileGridWhenObservedLate) {
  // A controller that isn't ticked on the exact boundary cycle observes the
  // boundary late. The window start must still advance by whole
  // profile_window multiples — snapping it to the observation cycle would
  // drift the schedule off the grid that WindowSampler and Dyn-AMS share.
  const SchemeParams p = params();  // profile_window = 64.
  DmsUnit dms(p, /*dynamic=*/true, 0);
  std::uint64_t busy = 0;
  for (Cycle now = 10; now <= 700; now += 10) {
    dms.tick(now, busy += 5);
    EXPECT_EQ(dms.window_start() % p.profile_window, 0u) << "at cycle " << now;
  }
  // Boundaries were observed at 70, 130, 200, ...; the grid still lands on
  // exact multiples, finishing the window that started at 640.
  EXPECT_EQ(dms.window_start(), 640u);
}

TEST(DynAms, LowersThRblWhenCoverageAchieved) {
  const SchemeParams p = params();
  AmsUnit ams(p, /*dynamic=*/true, 8);
  EXPECT_EQ(ams.th_rbl(), 8u);
  Cycle now = 0;
  // Window with coverage 20% (>= 10% target): Th_RBL drops.
  for (unsigned w = 0; w < 3; ++w) {
    for (unsigned i = 0; i < 10; ++i) {
      ams.on_read_received();
      if (i < 2) ams.on_drop();
    }
    for (Cycle c = 0; c < p.profile_window; ++c) ams.tick(++now, false);
  }
  EXPECT_EQ(ams.th_rbl(), 5u);
}

TEST(DynAms, RaisesThRblWhenCoverageShort) {
  const SchemeParams p = params();
  AmsUnit ams(p, true, 8);
  Cycle now = 0;
  // Drive Th down to 6, then feed drop-less windows: Th recovers to 8.
  for (unsigned w = 0; w < 2; ++w) {
    for (unsigned i = 0; i < 10; ++i) {
      ams.on_read_received();
      if (i < 3) ams.on_drop();
    }
    for (Cycle c = 0; c < p.profile_window; ++c) ams.tick(++now, false);
  }
  EXPECT_EQ(ams.th_rbl(), 6u);
  for (unsigned w = 0; w < 4; ++w) {
    for (unsigned i = 0; i < 10; ++i) ams.on_read_received();
    for (Cycle c = 0; c < p.profile_window; ++c) ams.tick(++now, false);
  }
  EXPECT_EQ(ams.th_rbl(), 8u);
}

TEST(DynAms, ThRblStaysWithinRange) {
  const SchemeParams p = params();
  AmsUnit ams(p, true, 8);
  Cycle now = 0;
  for (unsigned w = 0; w < 20; ++w) {
    for (unsigned i = 0; i < 10; ++i) {
      ams.on_read_received();
      if (i < 5) ams.on_drop();
    }
    for (Cycle c = 0; c < p.profile_window; ++c) ams.tick(++now, false);
  }
  EXPECT_EQ(ams.th_rbl(), p.min_th_rbl);
}

TEST(AmsUnit, CumulativeCoverage) {
  AmsUnit ams(params(), false, 8);
  for (int i = 0; i < 9; ++i) ams.on_read_received();
  ams.on_drop();
  ams.on_read_received();
  EXPECT_DOUBLE_EQ(ams.coverage(), 0.1);
}

TEST(AmsUnit, DropsAtExactThRblBoundary) {
  // Boundary audit: the paper drops rows with a low access count, i.e. RBL
  // <= Th_RBL — a group of exactly Th_RBL pending reads still qualifies, one
  // more does not. Pins the strict `>` refusal in AmsUnit::should_drop.
  const SchemeParams p = params();
  const unsigned th = 4;
  AmsUnit ams(p, /*dynamic=*/false, th);
  ams.set_ready(true);

  GpuConfig cfg;
  cfg.validate();
  AddressMapper mapper(cfg);
  PendingQueue queue(32, cfg.banks_per_channel);
  const auto push_read = [&](RequestId id, std::uint32_t col) {
    MemRequest r;
    r.id = id;
    r.line_addr = mapper.compose(0, /*bank=*/1, /*row=*/2, col * kLineBytes);
    r.kind = AccessKind::kRead;
    r.approximable = true;
    r.loc = mapper.map(r.line_addr);
    queue.push(r);
    ams.on_read_received();
  };

  for (RequestId id = 1; id <= th; ++id)
    push_read(id, static_cast<std::uint32_t>(id - 1));
  const MemRequest* cand = queue.oldest_for_bank(1);
  ASSERT_NE(cand, nullptr);
  EXPECT_TRUE(ams.should_drop(queue, *cand));  // RBL == Th_RBL: drops.

  push_read(th + 1, th);  // RBL == Th_RBL + 1: too hot to drop.
  EXPECT_FALSE(ams.should_drop(queue, *queue.oldest_for_bank(1)));
}

TEST(AmsUnit, HaltedWhileDmsSamples) {
  const SchemeParams p = params();
  AmsUnit ams(p, false, 8);
  ams.set_ready(true);
  ams.tick(0, /*halted=*/true);
  EXPECT_FALSE(ams.may_drop());
  ams.tick(1, /*halted=*/false);
  EXPECT_TRUE(ams.may_drop());
}

}  // namespace
}  // namespace lazydram::core
