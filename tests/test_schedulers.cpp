// Scheduler policy tests: FR-FCFS ordering, FCFS ordering, the lazy
// scheduler's DMS gate, AMS criteria and row-group drain behaviour, and the
// Dyn-DMS search edge cases the scheduler's age gate depends on.
#include <gtest/gtest.h>

#include <vector>

#include "common/config.hpp"
#include "core/dms.hpp"
#include "core/lazy_scheduler.hpp"
#include "dram/address.hpp"
#include "mem/fcfs.hpp"
#include "mem/frfcfs.hpp"
#include "telemetry/trace.hpp"

namespace lazydram {
namespace {

/// In-memory trace sink for asserting on emitted event sequences.
struct CaptureSink final : telemetry::TraceSink {
  std::vector<telemetry::TraceEvent> events;
  void on_event(const telemetry::TraceEvent& e) override { events.push_back(e); }
  void on_window(const telemetry::WindowSample&) override {}
  unsigned count(telemetry::EventKind k) const {
    unsigned n = 0;
    for (const telemetry::TraceEvent& e : events) n += e.kind == k ? 1u : 0u;
    return n;
  }
};

SchemeParams dms_params() {
  SchemeParams p;
  p.profile_window = 64;  // Small windows keep the tests fast.
  return p;
}

/// Feeds `windows` whole profiling windows at the given per-window BWUTIL.
void feed_windows(core::DmsUnit& dms, Cycle& now, std::uint64_t& busy_total,
                  double bwutil, unsigned windows, const SchemeParams& p) {
  for (unsigned w = 0; w < windows; ++w) {
    for (Cycle c = 0; c < p.profile_window; ++c) {
      busy_total += static_cast<std::uint64_t>(bwutil * 1000);
      dms.tick(++now, busy_total / 1000);
    }
  }
}

TEST(DynDmsSearch, DownwardSearchCommitsFirstPassingDelayAndHolds) {
  // After a restart the search is seeded with the previously settled delay.
  // When that seed violates the 95% threshold under the new baseline, the
  // search walks downward — and the first window that passes again must
  // commit (recorded + holding), not keep walking.
  const SchemeParams p = dms_params();
  core::DmsUnit dms(p, /*dynamic=*/true, 0);
  Cycle now = 0;
  std::uint64_t busy = 0;
  feed_windows(dms, now, busy, 0.5, 2, p);   // Warm-up + baseline 0.5.
  feed_windows(dms, now, busy, 0.5, 15, p);  // Climbs to the 2048 cap.
  ASSERT_EQ(dms.current_delay(), p.max_delay);
  feed_windows(dms, now, busy, 0.5, 15, p);  // Window 32: restart -> sampling.
  feed_windows(dms, now, busy, 0.9, 1, p);   // New baseline 0.9; seeded at 2048.
  feed_windows(dms, now, busy, 0.3, 3, p);   // Three violating windows: walk down.
  ASSERT_EQ(dms.current_delay(), p.max_delay - 3 * p.delay_step);
  feed_windows(dms, now, busy, 0.9, 1, p);   // Passes: commit and hold here.
  EXPECT_EQ(dms.current_delay(), p.max_delay - 3 * p.delay_step);
  EXPECT_FALSE(dms.sampling());
  feed_windows(dms, now, busy, 0.2, 5, p);   // Holding: later windows can't move it.
  EXPECT_EQ(dms.current_delay(), p.max_delay - 3 * p.delay_step);
}

TEST(DynDmsSearch, DownwardSearchBottomsOutAtMinDelay) {
  const SchemeParams p = dms_params();
  core::DmsUnit dms(p, /*dynamic=*/true, 0);
  Cycle now = 0;
  std::uint64_t busy = 0;
  feed_windows(dms, now, busy, 0.5, 17, p);  // Settle at the 2048 cap.
  feed_windows(dms, now, busy, 0.5, 15, p);  // Window 32: restart -> sampling.
  feed_windows(dms, now, busy, 0.9, 1, p);   // New baseline; seeded at 2048.
  feed_windows(dms, now, busy, 0.3, 20, p);  // Nothing ever passes again.
  EXPECT_EQ(dms.current_delay(), p.min_delay);  // Fallback floor, held.
  feed_windows(dms, now, busy, 0.3, 2, p);
  EXPECT_EQ(dms.current_delay(), p.min_delay);
}

TEST(DynDmsSearch, RestartMidSearchSeedsFromLastGoodDelay) {
  // With a huge max_delay the upward search is still running when the
  // 32-window restart fires. The best delay seen so far is the freshest
  // settled value, so the next search must be seeded from it — not from the
  // stale recorded_delay_ of the previous phase.
  SchemeParams p = dms_params();
  p.max_delay = 1u << 20;
  core::DmsUnit dms(p, /*dynamic=*/true, 0);
  Cycle now = 0;
  std::uint64_t busy = 0;
  feed_windows(dms, now, busy, 0.5, 31, p);  // Warm-up, baseline, 29 passing steps.
  EXPECT_EQ(dms.current_delay(), 30 * p.delay_step);  // Still searching upward.
  feed_windows(dms, now, busy, 0.5, 1, p);   // Window 32: restart mid-search.
  EXPECT_TRUE(dms.sampling());
  EXPECT_EQ(dms.current_delay(), 0u);        // Sampling window runs at delay 0.
  feed_windows(dms, now, busy, 0.5, 1, p);   // Baseline resampled; search reseeded.
  EXPECT_EQ(dms.current_delay(), 29 * p.delay_step);  // Last good delay, not 128.
  feed_windows(dms, now, busy, 0.5, 1, p);   // And the climb resumes from there.
  EXPECT_EQ(dms.current_delay(), 30 * p.delay_step);
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : mapper_(cfg_), queue_(cfg_.pending_queue_size, cfg_.banks_per_channel) {
    cfg_.validate();
  }

  MemRequest push(RequestId id, BankId bank, RowId row, std::uint32_t col,
                  AccessKind kind = AccessKind::kRead, bool approx = true,
                  Cycle enq = 0) {
    MemRequest r;
    r.id = id;
    r.line_addr = mapper_.compose(0, bank, row, col * kLineBytes);
    r.kind = kind;
    r.approximable = approx && kind == AccessKind::kRead;
    r.loc = mapper_.map(r.line_addr);
    r.enqueue_cycle = enq;
    queue_.push(r);
    return r;
  }

  core::LazyScheduler make_lazy(const core::SchemeSpec& spec) {
    return core::LazyScheduler(cfg_.scheme, spec, cfg_.banks_per_channel);
  }

  GpuConfig cfg_;
  AddressMapper mapper_;
  PendingQueue queue_;
};

TEST_F(SchedulerTest, FrFcfsPrefersRowHitOverOlderRequest) {
  FrFcfsScheduler sched;
  push(1, 0, 5, 0);  // Older, row 5.
  push(2, 0, 9, 0);  // Younger, row 9 == open row.
  const Decision d = sched.decide(queue_, BankView{0, true, 9}, 100);
  EXPECT_EQ(d.action, Decision::Action::kServe);
  EXPECT_EQ(d.req_id, 2u);
}

TEST_F(SchedulerTest, FrFcfsFallsBackToOldest) {
  FrFcfsScheduler sched;
  push(1, 0, 5, 0);
  push(2, 0, 9, 0);
  const Decision d = sched.decide(queue_, BankView{0, true, 7}, 100);
  EXPECT_EQ(d.req_id, 1u);
}

TEST_F(SchedulerTest, FcfsIgnoresRowHits) {
  FcfsScheduler sched;
  push(1, 0, 5, 0);
  push(2, 0, 9, 0);  // Row hit for open row 9, but younger.
  const Decision d = sched.decide(queue_, BankView{0, true, 9}, 100);
  EXPECT_EQ(d.req_id, 1u);
}

TEST_F(SchedulerTest, BaselineLazyMatchesFrFcfs) {
  FrFcfsScheduler fr;
  core::LazyScheduler lazy = make_lazy(core::SchemeSpec{});
  push(1, 0, 5, 0);
  push(2, 0, 9, 0);
  push(3, 1, 2, 0);
  for (const BankView view :
       {BankView{0, true, 9}, BankView{0, true, 7}, BankView{0, false, kInvalidRow},
        BankView{1, false, kInvalidRow}}) {
    const Decision a = fr.decide(queue_, view, 50);
    const Decision b = lazy.decide(queue_, view, 50);
    EXPECT_EQ(a.action, b.action);
    EXPECT_EQ(a.req_id, b.req_id);
  }
}

TEST_F(SchedulerTest, DmsGatesYoungRowMisses) {
  core::SchemeSpec spec = core::make_static_dms_spec(100, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  push(1, 0, 5, 0, AccessKind::kRead, true, /*enq=*/50);
  // Age 49 at cycle 99: gated.
  EXPECT_EQ(lazy.decide(queue_, BankView{0, false, kInvalidRow}, 99).action,
            Decision::Action::kNone);
  // Age 100 at cycle 150: allowed.
  EXPECT_EQ(lazy.decide(queue_, BankView{0, false, kInvalidRow}, 150).action,
            Decision::Action::kServe);
}

TEST_F(SchedulerTest, GatedDecisionReportsStabilityHorizon) {
  core::SchemeSpec spec = core::make_static_dms_spec(100, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  push(1, 0, 5, 0, AccessKind::kRead, true, /*enq=*/40);
  const Decision d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 99);
  EXPECT_EQ(d.action, Decision::Action::kNone);
  EXPECT_EQ(d.none_until, 140u);  // enqueue 40 + delay 100.
  // One cycle before the horizon the answer is still kNone; exactly at the
  // horizon the age gate opens.
  EXPECT_EQ(lazy.decide(queue_, BankView{0, false, kInvalidRow}, 139).action,
            Decision::Action::kNone);
  EXPECT_EQ(lazy.decide(queue_, BankView{0, false, kInvalidRow}, 140).action,
            Decision::Action::kServe);
}

TEST_F(SchedulerTest, StallClosedWhenStalledRequestLeavesWithoutDecide) {
  // A DMS stall opens when decide() gates a request. The request can then
  // leave the queue through the serve/drop notification without another
  // decide() on its bank (a drain swallows it; it becomes a row hit after a
  // drain re-opens its row). The stall must close from the notification
  // itself, or the trace leaks an open interval forever.
  core::SchemeSpec spec = core::make_static_dms_spec(100, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  CaptureSink sink;
  telemetry::Tracer tracer;
  tracer.set_sink(&sink);
  lazy.set_telemetry(&tracer, 0);
  lazy.tick(10, 0);

  // Bank 0: stalled request leaves via on_drop.
  const MemRequest r1 = push(1, 0, 5, 0, AccessKind::kRead, true, /*enq=*/0);
  EXPECT_EQ(lazy.decide(queue_, BankView{0, false, kInvalidRow}, 50).action,
            Decision::Action::kNone);
  EXPECT_EQ(sink.count(telemetry::EventKind::kDmsStallBegin), 1u);
  EXPECT_EQ(sink.count(telemetry::EventKind::kDmsStallEnd), 0u);
  queue_.erase(1);
  lazy.on_drop(r1);
  EXPECT_EQ(sink.count(telemetry::EventKind::kDmsStallEnd), 1u);

  // Bank 1: stalled request leaves via on_serve.
  const MemRequest r2 = push(2, 1, 3, 0, AccessKind::kRead, true, /*enq=*/0);
  EXPECT_EQ(lazy.decide(queue_, BankView{1, false, kInvalidRow}, 60).action,
            Decision::Action::kNone);
  EXPECT_EQ(sink.count(telemetry::EventKind::kDmsStallBegin), 2u);
  queue_.erase(2);
  lazy.on_serve(r2);
  EXPECT_EQ(sink.count(telemetry::EventKind::kDmsStallEnd), 2u);

  // Notifications for unstalled requests must not emit spurious ends.
  const MemRequest r3 = push(3, 2, 4, 0, AccessKind::kRead, true, /*enq=*/0);
  queue_.erase(3);
  lazy.on_serve(r3);
  EXPECT_EQ(sink.count(telemetry::EventKind::kDmsStallEnd), 2u);
}

TEST_F(SchedulerTest, DmsNeverGatesRowHits) {
  core::SchemeSpec spec = core::make_static_dms_spec(1000, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  push(1, 0, 9, 0, AccessKind::kRead, true, /*enq=*/90);
  const Decision d = lazy.decide(queue_, BankView{0, true, 9}, 100);
  EXPECT_EQ(d.action, Decision::Action::kServe);  // Hit despite age 10 < 1000.
}

TEST_F(SchedulerTest, DelayAllAblationGatesHitsToo) {
  core::SchemeSpec spec = core::make_static_dms_spec(1000, cfg_.scheme);
  spec.dms_delay_row_hits = true;
  core::LazyScheduler lazy = make_lazy(spec);
  push(1, 0, 9, 0, AccessKind::kRead, true, /*enq=*/90);
  EXPECT_EQ(lazy.decide(queue_, BankView{0, true, 9}, 100).action,
            Decision::Action::kNone);
}

TEST_F(SchedulerTest, AmsDropsQualifyingLowRblGroup) {
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  lazy.set_ams_ready(true);
  const MemRequest r = push(1, 0, 5, 0);
  lazy.on_enqueue(r);
  const Decision d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 100);
  EXPECT_EQ(d.action, Decision::Action::kDrop);
  EXPECT_EQ(d.req_id, 1u);
}

TEST_F(SchedulerTest, AmsNeverDropsBeforeL2Warmup) {
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);  // set_ams_ready not called.
  const MemRequest r = push(1, 0, 5, 0);
  lazy.on_enqueue(r);
  EXPECT_EQ(lazy.decide(queue_, BankView{0, false, kInvalidRow}, 100).action,
            Decision::Action::kServe);
  EXPECT_FALSE(lazy.may_drop());
}

TEST_F(SchedulerTest, AmsRespectsThRblThreshold) {
  core::SchemeSpec spec = core::make_static_ams_spec(2, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  lazy.set_ams_ready(true);
  // Three pending requests to the row: RBL 3 > Th_RBL 2 -> serve.
  for (RequestId i = 1; i <= 3; ++i) lazy.on_enqueue(push(i, 0, 5, i - 1));
  EXPECT_EQ(lazy.decide(queue_, BankView{0, false, kInvalidRow}, 100).action,
            Decision::Action::kServe);
}

TEST_F(SchedulerTest, AmsRefusesRowsWithPendingWrites) {
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  lazy.set_ams_ready(true);
  lazy.on_enqueue(push(1, 0, 5, 0));
  lazy.on_enqueue(push(2, 0, 5, 1, AccessKind::kWrite));
  EXPECT_EQ(lazy.decide(queue_, BankView{0, false, kInvalidRow}, 100).action,
            Decision::Action::kServe);
}

TEST_F(SchedulerTest, AmsRefusesNonApproximableReads) {
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  lazy.set_ams_ready(true);
  lazy.on_enqueue(push(1, 0, 5, 0, AccessKind::kRead, /*approx=*/false));
  EXPECT_EQ(lazy.decide(queue_, BankView{0, false, kInvalidRow}, 100).action,
            Decision::Action::kServe);
}

TEST_F(SchedulerTest, DrainDropsWholeRowGroupThenStops) {
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  lazy.set_ams_ready(true);
  for (RequestId i = 1; i <= 3; ++i) lazy.on_enqueue(push(i, 0, 5, i - 1));
  lazy.on_enqueue(push(4, 0, 6, 0));

  // First drop admits the group; on_drop arms the drain.
  Decision d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 100);
  ASSERT_EQ(d.action, Decision::Action::kDrop);
  lazy.on_drop(queue_.erase(d.req_id));

  // Remaining group members drain regardless of age.
  d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 101);
  ASSERT_EQ(d.action, Decision::Action::kDrop);
  EXPECT_EQ(queue_.find(d.req_id)->loc.row, 5u);
  lazy.on_drop(queue_.erase(d.req_id));
  d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 102);
  ASSERT_EQ(d.action, Decision::Action::kDrop);
  lazy.on_drop(queue_.erase(d.req_id));

  // Group exhausted: the row-6 request is next and may be dropped afresh or
  // served, but the drain for row 5 must be finished.
  d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 103);
  EXPECT_NE(queue_.find(d.req_id), nullptr);
  EXPECT_EQ(queue_.find(d.req_id)->loc.row, 6u);
}

TEST_F(SchedulerTest, PreciseReadArrivingMidDrainEndsTheDrain) {
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  lazy.set_ams_ready(true);
  lazy.on_enqueue(push(1, 0, 5, 0));
  lazy.on_enqueue(push(2, 0, 5, 1));
  const Decision first = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 100);
  ASSERT_EQ(first.action, Decision::Action::kDrop);
  lazy.on_drop(queue_.erase(first.req_id));

  // A precise (non-approximable) read for the draining row arrives: dropping
  // it would hand a precise read a predicted value. The drain must end and
  // the remaining approximable reads are served normally alongside it.
  lazy.on_enqueue(push(3, 0, 5, 2, AccessKind::kRead, /*approx=*/false));
  const Decision next = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 101);
  EXPECT_EQ(next.action, Decision::Action::kServe);
  EXPECT_EQ(next.req_id, 2u);
}

TEST_F(SchedulerTest, ApproximableArrivalJoinsTheDrain) {
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme);
  core::LazyScheduler lazy = make_lazy(spec);
  lazy.set_ams_ready(true);
  lazy.on_enqueue(push(1, 0, 5, 0));
  lazy.on_enqueue(push(2, 0, 5, 1));
  const Decision first = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 100);
  ASSERT_EQ(first.action, Decision::Action::kDrop);
  lazy.on_drop(queue_.erase(first.req_id));

  // An approximable read arriving for the still-draining row joins the
  // admitted group and drains with it (no fresh age/coverage gating).
  lazy.on_enqueue(push(3, 0, 5, 2));
  Decision d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 101);
  ASSERT_EQ(d.action, Decision::Action::kDrop);
  EXPECT_EQ(d.req_id, 2u);
  lazy.on_drop(queue_.erase(d.req_id));
  d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 102);
  ASSERT_EQ(d.action, Decision::Action::kDrop);
  EXPECT_EQ(d.req_id, 3u);
}

TEST_F(SchedulerTest, CoverageCapStopsFreshDrops) {
  GpuConfig cfg = cfg_;
  cfg.scheme.coverage_cap = 0.5;
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg.scheme);
  core::LazyScheduler lazy(cfg.scheme, spec, cfg.banks_per_channel);
  lazy.set_ams_ready(true);
  lazy.on_enqueue(push(1, 0, 5, 0));
  lazy.on_enqueue(push(2, 0, 6, 0));

  Decision d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 10);
  ASSERT_EQ(d.action, Decision::Action::kDrop);
  lazy.on_drop(queue_.erase(d.req_id));
  // Coverage now 1/2 = cap: next candidate must be served, not dropped.
  d = lazy.decide(queue_, BankView{0, false, kInvalidRow}, 11);
  EXPECT_EQ(d.action, Decision::Action::kServe);
}

}  // namespace
}  // namespace lazydram
