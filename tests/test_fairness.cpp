// Fairness-reporting tests: Jain-index fixtures with hand-computed values,
// slowdown arithmetic reconciled against the shared and alone runs it is
// derived from, per-tenant latency percentiles reconciled against the
// aggregate histograms, and byte-identical multi-tenant JSON for --jobs 1
// vs --jobs 2 (the parallel alone-run lanes must not leak nondeterminism).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "gpu/tenant.hpp"
#include "sim/multitenant.hpp"

namespace lazydram {
namespace {

sim::RunConfig small_run_config() {
  sim::RunConfig rc;
  rc.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, rc.gpu.scheme);
  rc.compute_error = false;
  rc.ignore_env_outputs = true;  // Keep CI env knobs out of unit tests.
  return rc;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// ---------------------------------------------------------------------------
// Jain index fixtures (hand-computed).
// ---------------------------------------------------------------------------

TEST(JainIndex, HandComputedFixtures) {
  // Equal allocations are perfectly fair.
  EXPECT_DOUBLE_EQ(sim::jain_index({1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(sim::jain_index({2.5, 2.5}), 1.0);
  // {2, 4}: (2+4)^2 / (2 * (4+16)) = 36/40 = 0.9 exactly.
  EXPECT_DOUBLE_EQ(sim::jain_index({2.0, 4.0}), 0.9);
  // {1, 0, 0}: 1 / (3 * 1) = 1/3 — one tenant absorbs everything.
  EXPECT_DOUBLE_EQ(sim::jain_index({1.0, 0.0, 0.0}), 1.0 / 3.0);
  // {1, 2, 3}: 36 / (3 * 14) = 6/7.
  EXPECT_DOUBLE_EQ(sim::jain_index({1.0, 2.0, 3.0}), 6.0 / 7.0);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(sim::jain_index({}), 0.0);
  EXPECT_DOUBLE_EQ(sim::jain_index({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(sim::jain_index({7.0}), 1.0);
  // Scale invariance: index depends only on the ratio.
  EXPECT_DOUBLE_EQ(sim::jain_index({20.0, 40.0}), sim::jain_index({2.0, 4.0}));
}

// ---------------------------------------------------------------------------
// Slowdown arithmetic against a real two-tenant run.
// ---------------------------------------------------------------------------

TEST(Fairness, IdenticalTenantsSlowDownEquallyAndFormulaReconciles) {
  gpu::TenantSet set(gpu::parse_tenant_specs("SCP:warps=60;SCP:warps=60"), 3);
  const sim::RunConfig rc = small_run_config();
  const sim::MultitenantResult r = sim::run_multitenant(set, rc, 1);
  const sim::RunMetrics& m = r.shared.metrics;

  ASSERT_TRUE(m.finished);
  ASSERT_EQ(m.tenants.size(), 2u);
  ASSERT_EQ(r.alone.size(), 2u);

  for (const sim::TenantMetrics& t : m.tenants) {
    ASSERT_TRUE(r.alone[t.id].finished);
    // Slowdown is exactly shared finish over alone finish — both ends warp
    // retirement, so the formula is re-derivable from the reported fields.
    ASSERT_GT(r.alone[t.id].warps_finish_core_cycle, 0u);
    EXPECT_DOUBLE_EQ(t.slowdown,
                     static_cast<double>(t.finish_core_cycle) /
                         static_cast<double>(r.alone[t.id].warps_finish_core_cycle));
    // Sharing the machine cannot speed a client up (beyond timing noise from
    // interleaving; allow a hair below 1).
    EXPECT_GE(t.slowdown, 0.99);
  }

  // Two byte-identical clients must experience near-identical slowdowns:
  // the only asymmetry is their address windows' channel interleaving.
  const double s0 = m.tenants[0].slowdown;
  const double s1 = m.tenants[1].slowdown;
  EXPECT_NEAR(s0, s1, 0.05 * s0);
  EXPECT_GT(m.jain_fairness, 0.999);
  EXPECT_LE(m.jain_fairness, 1.0 + 1e-12);

  // Jain index over the reported slowdowns matches the reported index.
  EXPECT_DOUBLE_EQ(m.jain_fairness, sim::jain_index({s0, s1}));

  // The alone baselines really ran alone: one tenant each.
  for (const sim::RunMetrics& a : r.alone) EXPECT_TRUE(a.tenants.empty());
}

// ---------------------------------------------------------------------------
// Per-tenant percentiles reconcile with the aggregate histogram.
// ---------------------------------------------------------------------------

TEST(Fairness, PerTenantLatencyReconcilesWithAggregate) {
  gpu::TenantSet set(
      gpu::parse_tenant_specs("SCP:warps=60;CONS:warps=60;MVT:warps=60,approx=0"), 9);
  sim::RunConfig rc = small_run_config();
  set.apply_qos(rc.gpu);
  const sim::MultitenantResult r = sim::run_multitenant(set, rc, 1);
  const sim::RunMetrics& m = r.shared.metrics;
  ASSERT_TRUE(m.finished);
  ASSERT_EQ(m.tenants.size(), 3u);

  // Counts: per-tenant reads partition the aggregate.
  std::uint64_t recv = 0, served = 0, drops = 0, hist_total = 0;
  double weighted_mean = 0.0;
  for (const sim::TenantMetrics& t : m.tenants) {
    EXPECT_GT(t.reads_received, 0u) << t.name;
    EXPECT_GT(t.instructions, 0u) << t.name;
    recv += t.reads_received;
    served += t.reads_served;
    drops += t.drops;
    hist_total += t.read_latency_hist.total();
    weighted_mean += t.avg_read_latency_mem_cycles *
                     static_cast<double>(t.read_latency_hist.total());
    // Percentiles come from the tenant's own histogram and must be ordered.
    EXPECT_LE(t.read_latency_p50, t.read_latency_p95);
    EXPECT_LE(t.read_latency_p95, t.read_latency_p99);
    EXPECT_EQ(t.read_latency_p50, t.read_latency_hist.percentile(0.50));
    EXPECT_EQ(t.read_latency_p95, t.read_latency_hist.percentile(0.95));
    EXPECT_EQ(t.read_latency_p99, t.read_latency_hist.percentile(0.99));
  }
  EXPECT_EQ(recv, m.reads_received);
  EXPECT_EQ(drops, m.drops);
  // Served latency samples: every tenant sample is an aggregate sample.
  EXPECT_EQ(hist_total, served);
  ASSERT_GT(hist_total, 0u);
  // The tenant-weighted mean equals the aggregate mean to rounding.
  weighted_mean /= static_cast<double>(hist_total);
  EXPECT_NEAR(weighted_mean, m.avg_read_latency_mem_cycles,
              1e-9 * m.avg_read_latency_mem_cycles);

  // The precise-only tenant never dropped; only approx tenants carry coverage.
  EXPECT_EQ(m.tenants[2].drops, 0u);
  EXPECT_DOUBLE_EQ(m.tenants[2].coverage, 0.0);
}

// ---------------------------------------------------------------------------
// Determinism: --jobs must not change a byte of the report.
// ---------------------------------------------------------------------------

TEST(Fairness, ParallelBaselinesAreByteIdenticalToSerial) {
  const sim::RunConfig rc = small_run_config();

  gpu::TenantSet serial_set(
      gpu::parse_tenant_specs("SCP:warps=60,cap=0.05;CONS:warps=60;MVT:warps=60,approx=0"),
      7);
  sim::RunConfig serial_rc = rc;
  serial_set.apply_qos(serial_rc.gpu);
  const sim::MultitenantResult serial = sim::run_multitenant(serial_set, serial_rc, 1);

  gpu::TenantSet parallel_set(
      gpu::parse_tenant_specs("SCP:warps=60,cap=0.05;CONS:warps=60;MVT:warps=60,approx=0"),
      7);
  sim::RunConfig parallel_rc = rc;
  parallel_set.apply_qos(parallel_rc.gpu);
  const sim::MultitenantResult parallel = sim::run_multitenant(parallel_set, parallel_rc, 2);

  const std::string p1 = temp_path("mt_serial.json");
  const std::string p2 = temp_path("mt_parallel.json");
  ASSERT_TRUE(sim::write_multitenant_report(p1, serial));
  ASSERT_TRUE(sim::write_multitenant_report(p2, parallel));
  const std::string a = read_file(p1);
  const std::string b = read_file(p2);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "multi-tenant report differs between --jobs 1 and --jobs 2";
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

}  // namespace
}  // namespace lazydram
