// Table III classifier threshold tests and RunMetrics helpers.
#include <gtest/gtest.h>

#include "sim/characterize.hpp"
#include "sim/metrics.hpp"

namespace lazydram::sim {
namespace {

using workloads::Level;

TEST(Classifiers, ThrashingBands) {
  EXPECT_EQ(classify_thrashing(0.0), Level::kLow);
  EXPECT_EQ(classify_thrashing(0.029), Level::kLow);
  EXPECT_EQ(classify_thrashing(0.03), Level::kMedium);
  EXPECT_EQ(classify_thrashing(0.099), Level::kMedium);
  EXPECT_EQ(classify_thrashing(0.10), Level::kHigh);
  EXPECT_EQ(classify_thrashing(1.0), Level::kHigh);
}

TEST(Classifiers, DelayToleranceBands) {
  EXPECT_EQ(classify_delay_tolerance(0), Level::kLow);
  EXPECT_EQ(classify_delay_tolerance(255), Level::kLow);
  EXPECT_EQ(classify_delay_tolerance(256), Level::kMedium);
  EXPECT_EQ(classify_delay_tolerance(1023), Level::kMedium);
  EXPECT_EQ(classify_delay_tolerance(1024), Level::kHigh);
}

TEST(Classifiers, ActivationSensitivityBands) {
  EXPECT_EQ(classify_act_sensitivity(0.05), Level::kLow);
  EXPECT_EQ(classify_act_sensitivity(0.10), Level::kMedium);
  EXPECT_EQ(classify_act_sensitivity(0.199), Level::kMedium);
  EXPECT_EQ(classify_act_sensitivity(0.20), Level::kHigh);
}

TEST(Classifiers, ThSensitivityThreshold) {
  EXPECT_FALSE(classify_th_sensitivity(0.049));
  EXPECT_TRUE(classify_th_sensitivity(0.05));
}

TEST(Classifiers, ErrorToleranceBandsAreInverted) {
  // Table III: High tolerance = LOW error.
  EXPECT_EQ(classify_error_tolerance(0.01), Level::kHigh);
  EXPECT_EQ(classify_error_tolerance(0.05), Level::kMedium);
  EXPECT_EQ(classify_error_tolerance(0.199), Level::kMedium);
  EXPECT_EQ(classify_error_tolerance(0.20), Level::kLow);
}

TEST(RunMetricsHelpers, RequestShareWithRbl) {
  RunMetrics m;
  m.dram_reads = 90;
  m.dram_writes = 10;
  m.rbl_hist.add(1, 20);  // 20 requests in RBL(1) rows.
  m.rbl_hist.add(2, 10);  // 20 requests in RBL(2) rows.
  m.rbl_hist.add(12, 5);  // 60 requests in RBL(12) rows.
  EXPECT_DOUBLE_EQ(m.request_share_with_rbl(1, 1), 0.20);
  EXPECT_DOUBLE_EQ(m.request_share_with_rbl(1, 8), 0.40);
  EXPECT_DOUBLE_EQ(m.request_share_with_rbl(1, 64), 1.0);
}

}  // namespace
}  // namespace lazydram::sim
