// Address-mapping tests: map/compose inversion (property sweep), geometry,
// and the swizzle's resonance-breaking behaviour.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "dram/address.hpp"

namespace lazydram {
namespace {

GpuConfig config() {
  GpuConfig cfg;
  cfg.validate();
  return cfg;
}

TEST(AddressMapper, FieldsWithinBounds) {
  const GpuConfig cfg = config();
  AddressMapper mapper(cfg);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    const Addr a = rng.next_below(1ull << 34);
    const DramLocation loc = mapper.map(a);
    EXPECT_LT(loc.channel, cfg.num_channels);
    EXPECT_LT(loc.bank, cfg.banks_per_channel);
    EXPECT_LT(loc.col_byte, cfg.row_bytes);
    EXPECT_EQ(loc.bank_group, loc.bank % cfg.bank_groups_per_channel);
  }
}

TEST(AddressMapper, ComposeInvertsMap) {
  AddressMapper mapper(config());
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    const Addr a = rng.next_below(1ull << 34);
    const DramLocation loc = mapper.map(a);
    EXPECT_EQ(mapper.compose(loc.channel, loc.bank, loc.row, loc.col_byte), a);
  }
}

TEST(AddressMapper, MapInvertsCompose) {
  const GpuConfig cfg = config();
  AddressMapper mapper(cfg);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const ChannelId ch = static_cast<ChannelId>(rng.next_below(cfg.num_channels));
    const BankId bank = static_cast<BankId>(rng.next_below(cfg.banks_per_channel));
    const RowId row = rng.next_below(1u << 16);
    const std::uint32_t col = static_cast<std::uint32_t>(rng.next_below(cfg.row_bytes));
    const DramLocation loc = mapper.map(mapper.compose(ch, bank, row, col));
    EXPECT_EQ(loc.channel, ch);
    EXPECT_EQ(loc.bank, bank);
    EXPECT_EQ(loc.row, row);
    EXPECT_EQ(loc.col_byte, col);
  }
}

TEST(AddressMapper, SameChunkSameRow) {
  // Two lines within one 256B interleave chunk always share channel, bank
  // and row (the basis of intra-tile row locality).
  const GpuConfig cfg = config();
  AddressMapper mapper(cfg);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const Addr chunk = rng.next_below(1ull << 24) * cfg.channel_interleave_bytes;
    const DramLocation a = mapper.map(chunk);
    const DramLocation b = mapper.map(chunk + kLineBytes);
    EXPECT_TRUE(a.same_row(b));
  }
}

TEST(AddressMapper, ChannelOfMatchesMap) {
  AddressMapper mapper(config());
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    const Addr a = rng.next_below(1ull << 34);
    EXPECT_EQ(mapper.channel_of(a), mapper.map(a).channel);
  }
}

TEST(AddressMapper, SwizzleBreaksStrideResonance) {
  // Power-of-two / channel-period strides must not collapse onto a single
  // channel. (A 6KB stride is congruent to 0 modulo the 1536B channel
  // period; without swizzling every access would land on one channel.)
  const GpuConfig cfg = config();
  AddressMapper mapper(cfg);
  for (const Addr stride : {Addr{6144}, Addr{1536}, Addr{12288}, Addr{1 << 20}}) {
    std::vector<unsigned> per_channel(cfg.num_channels, 0);
    for (Addr i = 0; i < 600; ++i) ++per_channel[mapper.map(16 * 1024 * 1024 + i * stride).channel];
    for (const unsigned n : per_channel) {
      EXPECT_GT(n, 600u / cfg.num_channels / 4) << "stride " << stride;
      EXPECT_LT(n, 600u / cfg.num_channels * 4) << "stride " << stride;
    }
  }
}

TEST(AddressMapper, SequentialStreamTouchesAllChannels) {
  const GpuConfig cfg = config();
  AddressMapper mapper(cfg);
  std::set<ChannelId> seen;
  for (Addr a = 0; a < 6 * cfg.channel_interleave_bytes; a += cfg.channel_interleave_bytes)
    seen.insert(mapper.map(a).channel);
  EXPECT_EQ(seen.size(), cfg.num_channels);
}

TEST(AddressMapper, DistinctAddressesDistinctCoordinates) {
  // The mapping must be injective: distinct line addresses never alias to
  // the same (channel, bank, row, column).
  AddressMapper mapper(config());
  std::set<std::tuple<ChannelId, BankId, RowId, std::uint32_t>> seen;
  for (Addr line = 0; line < 20000; ++line) {
    const DramLocation loc = mapper.map(line * kLineBytes);
    EXPECT_TRUE(seen.insert({loc.channel, loc.bank, loc.row, loc.col_byte}).second);
  }
}

}  // namespace
}  // namespace lazydram
