// PendingQueue unit tests: arrival ordering, per-bank indexing, row-group
// queries, erase semantics and capacity behaviour.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "dram/address.hpp"
#include "mem/pending_queue.hpp"

namespace lazydram {
namespace {

class QueueTest : public ::testing::Test {
 protected:
  QueueTest() : mapper_(cfg()), queue_(8, 16) {}

  static GpuConfig cfg() {
    GpuConfig c;
    c.validate();
    return c;
  }

  MemRequest make(RequestId id, BankId bank, RowId row, std::uint32_t col,
                  AccessKind kind = AccessKind::kRead, bool approx = false) {
    MemRequest r;
    r.id = id;
    r.line_addr = mapper_.compose(0, bank, row, col * kLineBytes);
    r.kind = kind;
    r.approximable = approx;
    r.loc = mapper_.map(r.line_addr);
    return r;
  }

  AddressMapper mapper_;
  PendingQueue queue_;
};

TEST_F(QueueTest, OldestForBankFollowsArrivalOrder) {
  queue_.push(make(1, 3, 5, 0));
  queue_.push(make(2, 3, 9, 0));
  queue_.push(make(3, 4, 2, 0));
  EXPECT_EQ(queue_.oldest_for_bank(3)->id, 1u);
  EXPECT_EQ(queue_.oldest_for_bank(4)->id, 3u);
  EXPECT_EQ(queue_.oldest_for_bank(5), nullptr);
  EXPECT_EQ(queue_.oldest()->id, 1u);
}

TEST_F(QueueTest, OldestForRowSkipsOtherRows) {
  queue_.push(make(1, 2, 7, 0));
  queue_.push(make(2, 2, 8, 0));
  queue_.push(make(3, 2, 8, 1));
  EXPECT_EQ(queue_.oldest_for_row(2, 8)->id, 2u);
  EXPECT_EQ(queue_.oldest_for_row(2, 1), nullptr);
}

TEST_F(QueueTest, RowGroupQueries) {
  queue_.push(make(1, 1, 4, 0, AccessKind::kRead, true));
  queue_.push(make(2, 1, 4, 1, AccessKind::kRead, true));
  queue_.push(make(3, 1, 4, 2, AccessKind::kWrite));
  queue_.push(make(4, 1, 5, 0, AccessKind::kRead, false));

  EXPECT_EQ(queue_.row_group_size(1, 4), 3u);
  EXPECT_FALSE(queue_.row_group_all_reads(1, 4));
  EXPECT_FALSE(queue_.row_group_all_approximable(1, 4));
  EXPECT_TRUE(queue_.row_group_all_reads(1, 5));
  EXPECT_FALSE(queue_.row_group_all_approximable(1, 5));  // Not annotated.
}

TEST_F(QueueTest, EraseRemovesFromAllIndexes) {
  queue_.push(make(1, 6, 1, 0));
  queue_.push(make(2, 6, 1, 1));
  const MemRequest erased = queue_.erase(1);
  EXPECT_EQ(erased.id, 1u);
  EXPECT_EQ(queue_.size(), 1u);
  EXPECT_EQ(queue_.oldest_for_bank(6)->id, 2u);
  EXPECT_EQ(queue_.row_group_size(6, 1), 1u);
  EXPECT_EQ(queue_.find(1), nullptr);
  EXPECT_NE(queue_.find(2), nullptr);
}

TEST_F(QueueTest, CapacityAndFull) {
  for (RequestId i = 1; i <= 8; ++i) queue_.push(make(i, 0, i, 0));
  EXPECT_TRUE(queue_.full());
  queue_.erase(4);
  EXPECT_FALSE(queue_.full());
  EXPECT_EQ(queue_.size(), 7u);
}

TEST_F(QueueTest, IterationIsArrivalOrdered) {
  queue_.push(make(5, 0, 1, 0));
  queue_.push(make(6, 9, 2, 0));
  queue_.push(make(7, 3, 3, 0));
  RequestId expected = 5;
  for (const MemRequest& r : queue_) EXPECT_EQ(r.id, expected++);
}

}  // namespace
}  // namespace lazydram
