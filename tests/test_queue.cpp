// PendingQueue unit tests: arrival ordering, per-bank indexing, row-group
// queries, erase semantics and capacity behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "dram/address.hpp"
#include "mem/pending_queue.hpp"

namespace lazydram {
namespace {

class QueueTest : public ::testing::Test {
 protected:
  QueueTest() : mapper_(cfg()), queue_(8, 16) {}

  static GpuConfig cfg() {
    GpuConfig c;
    c.validate();
    return c;
  }

  MemRequest make(RequestId id, BankId bank, RowId row, std::uint32_t col,
                  AccessKind kind = AccessKind::kRead, bool approx = false) {
    MemRequest r;
    r.id = id;
    r.line_addr = mapper_.compose(0, bank, row, col * kLineBytes);
    r.kind = kind;
    r.approximable = approx;
    r.loc = mapper_.map(r.line_addr);
    return r;
  }

  AddressMapper mapper_;
  PendingQueue queue_;
};

TEST_F(QueueTest, OldestForBankFollowsArrivalOrder) {
  queue_.push(make(1, 3, 5, 0));
  queue_.push(make(2, 3, 9, 0));
  queue_.push(make(3, 4, 2, 0));
  EXPECT_EQ(queue_.oldest_for_bank(3)->id, 1u);
  EXPECT_EQ(queue_.oldest_for_bank(4)->id, 3u);
  EXPECT_EQ(queue_.oldest_for_bank(5), nullptr);
  EXPECT_EQ(queue_.oldest()->id, 1u);
}

TEST_F(QueueTest, OldestForRowSkipsOtherRows) {
  queue_.push(make(1, 2, 7, 0));
  queue_.push(make(2, 2, 8, 0));
  queue_.push(make(3, 2, 8, 1));
  EXPECT_EQ(queue_.oldest_for_row(2, 8)->id, 2u);
  EXPECT_EQ(queue_.oldest_for_row(2, 1), nullptr);
}

TEST_F(QueueTest, RowGroupQueries) {
  queue_.push(make(1, 1, 4, 0, AccessKind::kRead, true));
  queue_.push(make(2, 1, 4, 1, AccessKind::kRead, true));
  queue_.push(make(3, 1, 4, 2, AccessKind::kWrite));
  queue_.push(make(4, 1, 5, 0, AccessKind::kRead, false));

  EXPECT_EQ(queue_.row_group_size(1, 4), 3u);
  EXPECT_FALSE(queue_.row_group_all_reads(1, 4));
  EXPECT_FALSE(queue_.row_group_all_approximable(1, 4));
  EXPECT_TRUE(queue_.row_group_all_reads(1, 5));
  EXPECT_FALSE(queue_.row_group_all_approximable(1, 5));  // Not annotated.
}

TEST_F(QueueTest, EraseRemovesFromAllIndexes) {
  queue_.push(make(1, 6, 1, 0));
  queue_.push(make(2, 6, 1, 1));
  const MemRequest erased = queue_.erase(1);
  EXPECT_EQ(erased.id, 1u);
  EXPECT_EQ(queue_.size(), 1u);
  EXPECT_EQ(queue_.oldest_for_bank(6)->id, 2u);
  EXPECT_EQ(queue_.row_group_size(6, 1), 1u);
  EXPECT_EQ(queue_.find(1), nullptr);
  EXPECT_NE(queue_.find(2), nullptr);
}

TEST_F(QueueTest, CapacityAndFull) {
  for (RequestId i = 1; i <= 8; ++i) queue_.push(make(i, 0, i, 0));
  EXPECT_TRUE(queue_.full());
  queue_.erase(4);
  EXPECT_FALSE(queue_.full());
  EXPECT_EQ(queue_.size(), 7u);
}

TEST_F(QueueTest, IterationIsArrivalOrdered) {
  queue_.push(make(5, 0, 1, 0));
  queue_.push(make(6, 9, 2, 0));
  queue_.push(make(7, 3, 3, 0));
  RequestId expected = 5;
  for (const MemRequest& r : queue_) EXPECT_EQ(r.id, expected++);
}

// Property test: the indexed queue must agree with a naive arrival-ordered
// vector model on every query, across a long random stream of pushes and
// erases. Seeded (common/rng), so a failure reproduces bit-for-bit.
TEST(QueueFuzz, MatchesNaiveModelOverRandomOps) {
  GpuConfig cfg;
  cfg.validate();
  AddressMapper mapper(cfg);
  const unsigned kBanks = cfg.banks_per_channel;
  const RowId kRows = 8;
  PendingQueue queue(64, kBanks);
  std::vector<MemRequest> model;  // Arrival order, like the queue.
  Rng rng(0xC0FFEEu);
  RequestId next_id = 1;

  const auto model_oldest_for_bank = [&](BankId bank) -> const MemRequest* {
    for (const MemRequest& r : model)
      if (r.loc.bank == bank) return &r;
    return nullptr;
  };
  const auto model_oldest_for_row = [&](BankId bank, RowId row) -> const MemRequest* {
    for (const MemRequest& r : model)
      if (r.loc.bank == bank && r.loc.row == row) return &r;
    return nullptr;
  };
  const auto model_bank_size = [&](BankId bank) {
    unsigned n = 0;
    for (const MemRequest& r : model) n += r.loc.bank == bank ? 1u : 0u;
    return n;
  };
  // Audits every incrementally maintained aggregate of one (bank, row) pair
  // against the naive model. The hot loop samples a random pair per op; a
  // periodic exhaustive sweep covers all pairs so a corrupted aggregate
  // cannot hide on a never-sampled group.
  const auto audit_group = [&](BankId bank, RowId row) {
    unsigned size = 0;
    bool all_reads = true;
    bool all_approx = true;
    for (const MemRequest& r : model) {
      if (r.loc.bank != bank || r.loc.row != row) continue;
      ++size;
      all_reads = all_reads && r.is_read();
      all_approx = all_approx && r.is_read() && r.approximable;
    }
    ASSERT_EQ(queue.row_group_size(bank, row), size);
    // Both predicates are vacuously true for an empty group.
    EXPECT_EQ(queue.row_group_all_reads(bank, row), all_reads);
    EXPECT_EQ(queue.row_group_all_approximable(bank, row), all_approx);

    const MemRequest* qr = queue.oldest_for_row(bank, row);
    const MemRequest* mr = model_oldest_for_row(bank, row);
    ASSERT_EQ(qr == nullptr, mr == nullptr);
    if (qr != nullptr) {
      EXPECT_EQ(qr->id, mr->id);
    }
  };

  for (unsigned op = 0; op < 12000; ++op) {
    const std::uint64_t roll = rng.next_below(10);
    if (roll < 5 && !queue.full()) {
      MemRequest r;
      r.id = next_id++;
      const BankId bank = static_cast<BankId>(rng.next_below(kBanks));
      const RowId row = rng.next_below(kRows);
      const std::uint32_t col = static_cast<std::uint32_t>(rng.next_below(16));
      r.line_addr = mapper.compose(0, bank, row, col * kLineBytes);
      r.kind = rng.next_bool(0.25) ? AccessKind::kWrite : AccessKind::kRead;
      r.approximable = r.kind == AccessKind::kRead && rng.next_bool(0.5);
      r.loc = mapper.map(r.line_addr);
      queue.push(r);
      model.push_back(r);
    } else if (roll < 8 && !model.empty()) {
      const std::size_t idx = rng.next_below(model.size());
      const RequestId id = model[idx].id;
      const MemRequest erased = queue.erase(id);
      EXPECT_EQ(erased.id, id);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    // Invariants, checked every iteration against the model.
    ASSERT_EQ(queue.size(), model.size());
    const MemRequest* oldest = queue.oldest();
    if (model.empty()) {
      EXPECT_EQ(oldest, nullptr);
    } else {
      ASSERT_NE(oldest, nullptr);
      EXPECT_EQ(oldest->id, model.front().id);
    }

    const BankId bank = static_cast<BankId>(rng.next_below(kBanks));
    const RowId row = rng.next_below(kRows);

    const MemRequest* qb = queue.oldest_for_bank(bank);
    const MemRequest* mb = model_oldest_for_bank(bank);
    ASSERT_EQ(qb == nullptr, mb == nullptr);
    if (qb != nullptr) {
      EXPECT_EQ(qb->id, mb->id);
    }
    EXPECT_EQ(queue.bank_size(bank), model_bank_size(bank));

    audit_group(bank, row);

    // Exhaustive aggregate sweep: every bank count and every row group.
    if (op % 500 == 0) {
      for (BankId b = 0; b < kBanks; ++b) {
        EXPECT_EQ(queue.bank_size(b), model_bank_size(b));
        for (RowId rw = 0; rw < kRows; ++rw) audit_group(b, rw);
      }
    }

    // find(): a live id resolves, a retired one does not.
    if (!model.empty()) {
      const MemRequest& probe = model[rng.next_below(model.size())];
      const MemRequest* found = queue.find(probe.id);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found->line_addr, probe.line_addr);
    }
    EXPECT_EQ(queue.find(next_id), nullptr);  // Never-issued id.
  }
}

}  // namespace
}  // namespace lazydram
