// GDDR5 timing-model tests: every command respects the Table I constraints,
// the channel enforces cross-bank/bus rules, and RBL/energy bookkeeping is
// exact.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "dram/bank.hpp"
#include "dram/channel.hpp"
#include "dram/power.hpp"

namespace lazydram::dram {
namespace {

DramTiming timing() { return GpuConfig{}.timing; }

TEST(Bank, ActivateThenReadRespectsTrcd) {
  Bank bank(timing());
  bank.activate(5, 100);
  EXPECT_FALSE(bank.can_read(100 + timing().tRCD - 1));
  EXPECT_TRUE(bank.can_read(100 + timing().tRCD));
}

TEST(Bank, PrechargeRespectsTras) {
  Bank bank(timing());
  bank.activate(5, 100);
  EXPECT_FALSE(bank.can_precharge(100 + timing().tRAS - 1));
  EXPECT_TRUE(bank.can_precharge(100 + timing().tRAS));
}

TEST(Bank, ActivateToActivateRespectsTrcAndTrp) {
  const DramTiming t = timing();
  Bank bank(t);
  bank.activate(1, 0);
  bank.read(t.tRCD);
  bank.precharge(t.tRAS);
  // tRP after PRE and tRC after ACT both gate the next ACT.
  const Cycle earliest = std::max<Cycle>(t.tRAS + t.tRP, t.tRC);
  EXPECT_FALSE(bank.can_activate(earliest - 1));
  EXPECT_TRUE(bank.can_activate(earliest));
}

TEST(Bank, ConsecutiveReadsRespectTccd) {
  const DramTiming t = timing();
  Bank bank(t);
  bank.activate(1, 0);
  bank.read(t.tRCD);
  EXPECT_FALSE(bank.can_read(t.tRCD + t.tCCD - 1));
  EXPECT_TRUE(bank.can_read(t.tRCD + t.tCCD));
}

TEST(Bank, WriteToReadRespectsTcdlr) {
  const DramTiming t = timing();
  Bank bank(t);
  bank.activate(1, 0);
  const Cycle data_end = bank.write(t.tRCD);
  EXPECT_EQ(data_end, t.tRCD + t.tWL + t.tBURST);
  EXPECT_FALSE(bank.can_read(data_end + t.tCDLR - 1));
  EXPECT_TRUE(bank.can_read(data_end + t.tCDLR));
}

TEST(Bank, WriteRecoveryGatesPrecharge) {
  const DramTiming t = timing();
  Bank bank(t);
  bank.activate(1, 0);
  const Cycle data_end = bank.write(t.tRCD);
  EXPECT_FALSE(bank.can_precharge(data_end + t.tWR - 1));
  EXPECT_TRUE(bank.can_precharge(data_end + t.tWR));
}

TEST(Bank, PrechargeReportsRblAndReadOnly) {
  const DramTiming t = timing();
  Bank bank(t);
  bank.activate(7, 0);
  bank.read(t.tRCD);
  bank.read(t.tRCD + t.tCCD);
  const Bank::ClosedRow closed = bank.precharge(t.tRAS + t.tBURST);
  EXPECT_EQ(closed.accesses, 2u);
  EXPECT_TRUE(closed.read_only);
  EXPECT_EQ(closed.row, 7u);
}

TEST(Bank, WriteClearsReadOnlyFlag) {
  const DramTiming t = timing();
  Bank bank(t);
  bank.activate(3, 0);
  bank.read(t.tRCD);
  bank.write(t.tRCD + t.tCCD);
  EXPECT_FALSE(bank.open_row_read_only());
}

TEST(Bank, FlushReturnsOpenRowTally) {
  const DramTiming t = timing();
  Bank bank(t);
  bank.activate(9, 0);
  bank.read(t.tRCD);
  const Bank::ClosedRow closed = bank.flush();
  EXPECT_EQ(closed.accesses, 1u);
  EXPECT_FALSE(bank.row_open());
  EXPECT_EQ(bank.flush().accesses, 0u);  // Idempotent on a closed bank.
}

// --- Channel-scope constraints -------------------------------------------

GpuConfig config() {
  GpuConfig cfg;
  cfg.validate();
  return cfg;
}

TEST(Channel, TrrdGatesActsAcrossBanks) {
  const GpuConfig cfg = config();
  DramChannel ch(cfg, 0);
  ch.issue(CommandKind::kActivate, 0, 1, 100);
  EXPECT_FALSE(ch.can_issue(CommandKind::kActivate, 1, 100 + cfg.timing.tRRD - 1));
  EXPECT_TRUE(ch.can_issue(CommandKind::kActivate, 1, 100 + cfg.timing.tRRD));
}

TEST(Channel, TccdGatesSameBankGroupCas) {
  const GpuConfig cfg = config();
  DramChannel ch(cfg, 0);
  // Banks 0 and 4 share bank group 0 (group = bank % 4).
  ch.issue(CommandKind::kActivate, 0, 1, 0);
  ch.issue(CommandKind::kActivate, 4, 1, cfg.timing.tRRD);
  const Cycle rd = cfg.timing.tRCD + cfg.timing.tRRD;
  ch.issue(CommandKind::kRead, 0, 1, rd);
  EXPECT_FALSE(ch.can_issue(CommandKind::kRead, 4, rd + cfg.timing.tCCD - 1));
}

TEST(Channel, DataBusSerializesBursts) {
  const GpuConfig cfg = config();
  DramChannel ch(cfg, 0);
  // Banks 0 and 1 are in different groups, so only the bus constrains them.
  ch.issue(CommandKind::kActivate, 0, 1, 0);
  ch.issue(CommandKind::kActivate, 1, 1, cfg.timing.tRRD);
  const Cycle rd0 = 40;
  const Cycle done0 = ch.issue(CommandKind::kRead, 0, 1, rd0);
  EXPECT_EQ(done0, rd0 + cfg.timing.tCL + cfg.timing.tBURST);
  // A read on bank 1 issued immediately after would overlap the bus.
  EXPECT_FALSE(ch.can_issue(CommandKind::kRead, 1, rd0 + 1));
  EXPECT_TRUE(ch.can_issue(CommandKind::kRead, 1, rd0 + cfg.timing.tBURST));
}

TEST(Channel, CountsEnergyEvents) {
  const GpuConfig cfg = config();
  DramChannel ch(cfg, 0);
  ch.issue(CommandKind::kActivate, 2, 9, 0);
  ch.issue(CommandKind::kRead, 2, 9, cfg.timing.tRCD);
  ch.issue(CommandKind::kWrite, 2, 9, cfg.timing.tRCD + 5 * cfg.timing.tBURST);
  EXPECT_EQ(ch.energy().activations(), 1u);
  EXPECT_EQ(ch.energy().read_accesses(), 1u);
  EXPECT_EQ(ch.energy().write_accesses(), 1u);
  EXPECT_GT(ch.energy().row_energy_nj(), 0.0);
  EXPECT_EQ(ch.bus_busy_cycles(), 2u * cfg.timing.tBURST);
}

TEST(Channel, RblHistogramsSplitReadOnlyRows) {
  const GpuConfig cfg = config();
  DramChannel ch(cfg, 0);
  const DramTiming& t = cfg.timing;
  // Row 1 on bank 0 serves two reads then closes; row 2 on bank 1 serves
  // one read and one write and is left open for the flush. Commands are
  // interleaved in global cycle order, as the controller issues them.
  ch.issue(CommandKind::kActivate, 0, 1, 0);
  ch.issue(CommandKind::kActivate, 1, 2, t.tRRD);
  ch.issue(CommandKind::kRead, 0, 1, t.tRCD);
  ch.issue(CommandKind::kRead, 0, 1, t.tRCD + t.tBURST);
  ch.issue(CommandKind::kRead, 1, 2, 3 * t.tRCD);
  ch.issue(CommandKind::kWrite, 1, 2, 3 * t.tRCD + 5 * t.tBURST);
  ch.issue(CommandKind::kPrecharge, 0, kInvalidRow, 100);
  ch.flush_open_rows();

  EXPECT_EQ(ch.rbl_histogram().at(2), 2u);  // Both rows achieved RBL 2.
  EXPECT_EQ(ch.rbl_readonly_histogram().total(), 1u);  // Only row 1 was read-only.
}

TEST(EnergyMeter, RowEnergyProportionalToActivations) {
  const EnergyParams p;
  EnergyMeter m(p);
  for (int i = 0; i < 10; ++i) m.on_activation();
  EXPECT_DOUBLE_EQ(m.row_energy_nj(), 10 * p.row_energy_per_act_nj());
  m.on_read_access();
  m.on_write_access();
  EXPECT_DOUBLE_EQ(m.access_energy_nj(), p.rd_access_nj + p.wr_access_nj);
  EXPECT_DOUBLE_EQ(m.total_energy_nj(), m.row_energy_nj() + m.access_energy_nj());
}

TEST(EnergyProjection, MatchesPaperArithmetic) {
  // 44% row-energy reduction -> 22% on HBM1 (50% share), 11% on HBM2 (25%).
  EXPECT_DOUBLE_EQ(project_memory_energy_reduction(0.44, 0.50), 0.22);
  EXPECT_DOUBLE_EQ(project_memory_energy_reduction(0.44, 0.25), 0.11);
}

}  // namespace
}  // namespace lazydram::dram
