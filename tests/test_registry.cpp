// SchedulerRegistry tests: built-in policy catalog, capability flags of the
// constructed schedulers, the policy-spec grammar, label resolution, and —
// the regression for the old duplicated construction switches — equality of
// every construction route (legacy PolicyKind, cfg.policy.name, and the
// $LAZYDRAM_POLICY environment override) on a real workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "core/lazy_scheduler.hpp"
#include "core/scheduler_registry.hpp"
#include "mem/scheduler.hpp"
#include "sim/simulator.hpp"
#include "workloads/registry.hpp"

namespace lazydram {
namespace {

using core::SchedulerRegistry;

GpuConfig cfg_for(const std::string& policy) {
  GpuConfig cfg;
  cfg.policy.name = policy;
  cfg.validate();
  return cfg;
}

TEST(SchedulerRegistry, BuiltinsAreRegistered) {
  SchedulerRegistry& reg = SchedulerRegistry::instance();
  for (const char* name : {"lazy", "frfcfs", "fcfs", "bliss", "batch-rr", "autotune"}) {
    EXPECT_TRUE(reg.known(name)) << name;
    EXPECT_FALSE(reg.description(name).empty()) << name;
  }
  EXPECT_FALSE(reg.known("nonesuch"));
  const std::vector<std::string> names = reg.names();
  EXPECT_GE(names.size(), 6u);
  EXPECT_NE(std::find(names.begin(), names.end(), "bliss"), names.end());
}

TEST(SchedulerRegistry, LabelsMatchReportConventions) {
  SchedulerRegistry& reg = SchedulerRegistry::instance();
  EXPECT_EQ(reg.label("frfcfs"), "FR-FCFS");
  EXPECT_EQ(reg.label("fcfs"), "FCFS");
  EXPECT_EQ(reg.label("bliss"), "BLISS");
  EXPECT_EQ(reg.label("batch-rr"), "Batch-RR");
  EXPECT_EQ(reg.label("autotune"), "Autotune-DMS");

  // Lazy runs keep their scheme-derived labels so existing reports and the
  // fig-12 sweep keys stay stable.
  GpuConfig cfg;
  const core::SchemeSpec dyn =
      core::make_scheme_spec(core::SchemeKind::kDynCombo, cfg.scheme);
  EXPECT_EQ(core::run_label(cfg, dyn), core::scheme_name(dyn.kind));
  EXPECT_EQ(core::run_label(cfg_for("frfcfs"), core::SchemeSpec{}), "FR-FCFS");
  EXPECT_EQ(core::policy_name(GpuConfig{}), "lazy");
}

// The capability flags the controller caches at construction are what make
// the fast paths sound per policy; pin them per built-in.
TEST(SchedulerRegistry, ConstructedSchedulersReportExpectedCapabilities) {
  const core::SchemeSpec base;
  struct Expect {
    const char* name;
    bool hit_first;
    bool memo_safe;
  };
  for (const Expect& e : {Expect{"frfcfs", true, true}, Expect{"fcfs", false, true},
                          Expect{"bliss", false, false}, Expect{"batch-rr", false, true},
                          Expect{"autotune", true, true}, Expect{"lazy", true, true}}) {
    const std::unique_ptr<Scheduler> s = core::make_scheduler(cfg_for(e.name), base);
    ASSERT_NE(s, nullptr) << e.name;
    EXPECT_EQ(s->hit_first(), e.hit_first) << e.name;
    EXPECT_EQ(s->decide_memo_safe(), e.memo_safe) << e.name;
    EXPECT_FALSE(s->drops_possible()) << e.name;  // Only lazy+AMS can drop.
  }
  // Lazy resolves to the LazyScheduler (scheme configured by the spec).
  const std::unique_ptr<Scheduler> lazy = core::make_scheduler(GpuConfig{}, base);
  EXPECT_NE(dynamic_cast<core::LazyScheduler*>(lazy.get()), nullptr);
}

TEST(SchedulerRegistry, DecisionSentinelsNeverAliasLiveRequests) {
  // Request ids start at 1 but 0 is representable; the kNone sentinel must be
  // the all-ones pattern so a stale dereference trips immediately.
  EXPECT_EQ(Decision::none().req_id, kInvalidRequest);
  EXPECT_EQ(Decision::gated(123).req_id, kInvalidRequest);
  EXPECT_EQ(Decision::gated(123).none_until, 123u);
  EXPECT_NE(kInvalidRequest, RequestId{0});
}

TEST(PolicySpec, ParsesNamesAndKeys) {
  GpuConfig cfg;
  std::string err;
  ASSERT_TRUE(core::parse_policy_spec("bliss:threshold=8,interval=1024", cfg, &err)) << err;
  EXPECT_EQ(cfg.policy.name, "bliss");
  EXPECT_EQ(cfg.policy.bliss_threshold, 8u);
  EXPECT_EQ(cfg.policy.bliss_clear_interval, 1024u);

  ASSERT_TRUE(core::parse_policy_spec("batch-rr:cap=2", cfg, &err)) << err;
  EXPECT_EQ(cfg.policy.name, "batch-rr");
  EXPECT_EQ(cfg.policy.rr_cap, 2u);

  ASSERT_TRUE(
      core::parse_policy_spec("autotune:min=64,max=512,step=32,window=2048,tol=0.9", cfg, &err))
      << err;
  EXPECT_EQ(cfg.policy.name, "autotune");
  EXPECT_EQ(cfg.policy.tune_min_delay, 64u);
  EXPECT_EQ(cfg.policy.tune_max_delay, 512u);
  EXPECT_EQ(cfg.policy.tune_step, 32u);
  EXPECT_EQ(cfg.policy.tune_window, 2048u);
  EXPECT_DOUBLE_EQ(cfg.policy.tune_tolerance, 0.9);

  ASSERT_TRUE(core::parse_policy_spec("frfcfs", cfg, &err)) << err;
  EXPECT_EQ(cfg.policy.name, "frfcfs");
}

TEST(PolicySpec, RejectsBadSpecsWithoutTouchingConfig) {
  GpuConfig cfg;
  ASSERT_TRUE(core::parse_policy_spec("bliss:threshold=8", cfg));
  const GpuConfig before = cfg;

  std::string err;
  for (const char* bad :
       {"", "nonesuch", "bliss:threshold=0", "bliss:threshold=abc", "bliss:cap=4",
        "batch-rr:cap=", "autotune:min=512,max=64", "autotune:tol=1.5",
        "autotune:tol=0", "frfcfs:threshold=4", "bliss:threshold"}) {
    err.clear();
    EXPECT_FALSE(core::parse_policy_spec(bad, cfg, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
    // A rejected spec leaves the previously committed policy fully intact.
    EXPECT_EQ(cfg.policy.name, before.policy.name) << bad;
    EXPECT_EQ(cfg.policy.bliss_threshold, before.policy.bliss_threshold) << bad;
  }
}

// The regression behind this PR: the legacy PolicyKind switch, the config
// name, and the environment override previously lived in separately
// hand-rolled construction code; all three routes must now build the exact
// same scheduler and produce bit-identical runs.
TEST(SchedulerRegistry, AllConstructionRoutesAgree) {
  const auto wl = workloads::make_workload("SCP");
  ASSERT_NE(wl, nullptr);

  const auto run = [&](sim::RunConfig rc) {
    rc.compute_error = false;
    return sim::simulate(*wl, rc);
  };

  sim::RunConfig via_kind;
  via_kind.policy = sim::PolicyKind::kFcfs;
  sim::RunConfig via_name;
  via_name.gpu.policy.name = "fcfs";
  const sim::RunMetrics a = run(via_kind);
  const sim::RunMetrics b = run(via_name);

  ASSERT_EQ(::setenv("LAZYDRAM_POLICY", "fcfs", 1), 0);
  const sim::RunMetrics c = run(sim::RunConfig{});  // Name empty: env applies.
  ASSERT_EQ(::unsetenv("LAZYDRAM_POLICY"), 0);

  for (const sim::RunMetrics* m : {&b, &c}) {
    EXPECT_EQ(m->scheme, "FCFS");
    EXPECT_EQ(m->core_cycles, a.core_cycles);
    EXPECT_EQ(m->mem_cycles, a.mem_cycles);
    EXPECT_EQ(m->instructions, a.instructions);
    EXPECT_EQ(m->activations, a.activations);
    EXPECT_EQ(m->dram_reads, a.dram_reads);
    EXPECT_EQ(m->dram_writes, a.dram_writes);
  }
}

TEST(SchedulerRegistry, ExplicitConfigNameBeatsEnvironment) {
  const auto wl = workloads::make_workload("SCP");
  ASSERT_NE(wl, nullptr);
  sim::RunConfig rc;
  rc.gpu.policy.name = "frfcfs";
  rc.compute_error = false;
  ASSERT_EQ(::setenv("LAZYDRAM_POLICY", "fcfs", 1), 0);
  const sim::RunMetrics m = sim::simulate(*wl, rc);
  ASSERT_EQ(::unsetenv("LAZYDRAM_POLICY"), 0);
  EXPECT_EQ(m.scheme, "FR-FCFS");
}

TEST(SchedulerRegistry, RejectedEnvSpecFallsBackToLazy) {
  const auto wl = workloads::make_workload("SCP");
  ASSERT_NE(wl, nullptr);
  sim::RunConfig rc;
  rc.compute_error = false;
  ASSERT_EQ(::setenv("LAZYDRAM_POLICY", "nonesuch:oops", 1), 0);
  const sim::RunMetrics m = sim::simulate(*wl, rc);  // Warns, keeps "lazy".
  ASSERT_EQ(::unsetenv("LAZYDRAM_POLICY"), 0);
  rc.gpu.policy.name.clear();
  const sim::RunMetrics base = sim::simulate(*wl, rc);
  EXPECT_EQ(m.scheme, base.scheme);
  EXPECT_EQ(m.core_cycles, base.core_cycles);
  EXPECT_EQ(m.activations, base.activations);
}

// Each new policy must complete a real workload end-to-end under its registry
// name, conserve requests, and surface its registry label in the metrics.
TEST(SchedulerRegistry, NewPoliciesCompleteRealWorkloads) {
  const auto wl = workloads::make_workload("SCP");
  ASSERT_NE(wl, nullptr);
  struct Case {
    const char* spec;
    const char* label;
  };
  for (const Case& c : {Case{"bliss:threshold=4,interval=4096", "BLISS"},
                        Case{"batch-rr:cap=4", "Batch-RR"},
                        Case{"autotune:window=2048", "Autotune-DMS"}}) {
    sim::RunConfig rc;
    std::string err;
    ASSERT_TRUE(core::parse_policy_spec(c.spec, rc.gpu, &err)) << err;
    rc.compute_error = false;
    const sim::RunMetrics m = sim::simulate(*wl, rc);
    ASSERT_TRUE(m.finished) << c.spec;
    EXPECT_EQ(m.scheme, c.label);
    EXPECT_GT(m.instructions, 0u) << c.spec;
    EXPECT_EQ(m.drops, 0u) << c.spec;  // None of the arena rivals drops reads.
    EXPECT_GT(m.activations, 0u) << c.spec;
  }
}

}  // namespace
}  // namespace lazydram
