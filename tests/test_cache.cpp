// Cache + MSHR unit tests: lookup, LRU eviction, dirty write-back, the
// approximate-fill tag, per-set enumeration (VP support) and MSHR merging.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "common/config.hpp"

namespace lazydram::cache {
namespace {

CacheGeometry small_geo() { return CacheGeometry{4 * 128 * 2, 2, 128, 8}; }  // 4 sets, 2 ways.

Addr line_in_set(const Cache& c, std::uint32_t set, unsigned k) {
  // k-th distinct line mapping to `set`.
  return (static_cast<Addr>(k) * c.num_sets() + set) * kLineBytes;
}

TEST(Cache, MissThenFillThenHit) {
  Cache c(small_geo());
  const Addr a = 0x1000;
  EXPECT_FALSE(c.access(a, false).hit);
  c.fill(a, false, false);
  EXPECT_TRUE(c.access(a, false).hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.fills(), 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(small_geo());
  const Addr a = line_in_set(c, 0, 0), b = line_in_set(c, 0, 1), d = line_in_set(c, 0, 2);
  c.fill(a, false, false);
  c.fill(b, false, false);
  c.access(a, false);  // Touch a: b becomes LRU.
  c.fill(d, false, false);
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache c(small_geo());
  const Addr a = line_in_set(c, 1, 0), b = line_in_set(c, 1, 1), d = line_in_set(c, 1, 2);
  c.fill(a, /*dirty=*/true, false);
  c.fill(b, false, false);
  const AccessResult r = c.fill(d, false, false);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.evicted_line, a);
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(small_geo());
  const Addr a = line_in_set(c, 2, 0), b = line_in_set(c, 2, 1), d = line_in_set(c, 2, 2);
  c.fill(a, false, false);
  c.access(a, /*is_write=*/true);
  c.fill(b, false, false);
  c.access(b, false);
  const AccessResult r = c.fill(d, false, false);  // Evicts a (LRU, dirty).
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.evicted_line, a);
}

TEST(Cache, ApproximateFlagTracked) {
  Cache c(small_geo());
  const Addr a = 0x2000;
  c.fill(a, false, /*approximate=*/true);
  EXPECT_TRUE(c.line_is_approx(a));
  c.fill(a, false, /*approximate=*/false);  // Accurate refill clears it.
  EXPECT_FALSE(c.line_is_approx(a));
}

TEST(Cache, InvalidateReportsDirtiness) {
  Cache c(small_geo());
  c.fill(0x3000, true, false);
  EXPECT_TRUE(c.invalidate(0x3000));
  EXPECT_FALSE(c.contains(0x3000));
  EXPECT_FALSE(c.invalidate(0x3000));
}

TEST(Cache, LinesInSetEnumeratesValidLines) {
  Cache c(small_geo());
  const Addr a = line_in_set(c, 3, 0), b = line_in_set(c, 3, 1);
  c.fill(a, false, false);
  c.fill(b, false, false);
  std::vector<Addr> lines;
  c.lines_in_set(3, lines);
  EXPECT_EQ(lines.size(), 2u);
  EXPECT_TRUE((lines[0] == a && lines[1] == b) || (lines[0] == b && lines[1] == a));
}

TEST(Mshr, PrimaryThenMergedMisses) {
  MshrTable mshr(4, 8);
  EXPECT_TRUE(mshr.allocate(0x1000, 1));   // Primary.
  EXPECT_FALSE(mshr.allocate(0x1000, 2));  // Merge.
  EXPECT_TRUE(mshr.has(0x1000));
  const auto waiters = mshr.release(0x1000);
  ASSERT_EQ(waiters.size(), 2u);
  EXPECT_EQ(waiters[0], 1u);
  EXPECT_EQ(waiters[1], 2u);
  EXPECT_FALSE(mshr.has(0x1000));
}

TEST(Mshr, CapacityLimits) {
  MshrTable mshr(2, 2);
  mshr.allocate(0x100, 1);
  mshr.allocate(0x200, 2);
  EXPECT_FALSE(mshr.can_allocate(0x300));  // Entries exhausted.
  EXPECT_TRUE(mshr.can_allocate(0x100));   // Merge room remains.
  mshr.allocate(0x100, 3);
  EXPECT_FALSE(mshr.can_allocate(0x100));  // Merge limit hit.
}

}  // namespace
}  // namespace lazydram::cache
