// Telemetry layer tests: window boundary arithmetic, counter telescoping,
// JSONL sink round-trips, the stat registry, and the two run-level
// guarantees the observability layer makes — tracing never perturbs
// RunMetrics, and the recorded window series recomputes the end-of-run
// aggregates.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/window_sampler.hpp"
#include "workloads/patterns.hpp"
#include "workloads/workload.hpp"

namespace lazydram {
namespace {

using telemetry::Tracer;
using telemetry::WindowProbe;
using telemetry::WindowSample;
using telemetry::WindowSampler;

constexpr Cycle kWindow = 4096;  // The production Dyn-DMS/Dyn-AMS window.

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + leaf;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

/// Pulls `"key":<number>` out of a JSONL line (numbers only; good enough for
/// auditing our own fixed emission format).
double json_number(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

TEST(WindowSampler, BoundariesLandExactlyEveryProfileWindow) {
  WindowSampler sampler(/*channel=*/2, kWindow, nullptr);
  WindowProbe probe;
  const Cycle total = 3 * kWindow + 100;
  for (Cycle now = 0; now < total; ++now) {
    probe.bus_busy_cycles = now / 2;  // Any monotone counter.
    sampler.tick(now, probe);
  }
  probe.bus_busy_cycles = total / 2;
  sampler.flush(probe);

  const std::vector<WindowSample>& ws = sampler.samples();
  ASSERT_EQ(ws.size(), 4u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ws[i].index, i);
    EXPECT_EQ(ws[i].channel, 2u);
    EXPECT_EQ(ws[i].start_cycle, i * kWindow);
    EXPECT_EQ(ws[i].end_cycle, (i + 1) * kWindow);
    EXPECT_EQ(ws[i].ticks, kWindow);
  }
  // flush() closes the partial tail [3*kWindow, last_tick + 1).
  EXPECT_EQ(ws[3].start_cycle, 3 * kWindow);
  EXPECT_EQ(ws[3].end_cycle, total);
  EXPECT_EQ(ws[3].ticks, 100u);
}

TEST(WindowSampler, DeltaCountersTelescopeToRunTotals) {
  WindowSampler sampler(0, kWindow, nullptr);
  WindowProbe probe;
  const Cycle total = 5 * kWindow + 7;
  for (Cycle now = 0; now < total; ++now) {
    // Arbitrary monotone counters with different growth patterns.
    probe.bus_busy_cycles = now - now / 3;
    probe.activations = now / 17;
    probe.column_reads = now / 5;
    probe.column_writes = now / 11;
    probe.reads_dropped = now / 301;
    probe.reads_received = now / 4;
    probe.energy_nj = static_cast<double>(now) * 0.25;
    probe.queue_size = now % 13;
    probe.dms_delay = 256;
    probe.th_rbl = 3;
    sampler.tick(now, probe);
  }
  sampler.flush(probe);  // Final cumulative counters == last tick's probe.

  std::uint64_t ticks = 0, bus = 0, acts = 0, reads = 0, writes = 0, drops = 0,
                received = 0, delay_sum = 0, th_sum = 0;
  double energy = 0.0;
  for (const WindowSample& w : sampler.samples()) {
    ticks += w.ticks;
    bus += w.bus_busy_cycles;
    acts += w.activations;
    reads += w.column_reads;
    writes += w.column_writes;
    drops += w.drops;
    received += w.reads_received;
    delay_sum += w.delay_sum;
    th_sum += w.th_rbl_sum;
    energy += w.energy_nj;
  }
  EXPECT_EQ(ticks, total);
  EXPECT_EQ(bus, probe.bus_busy_cycles);
  EXPECT_EQ(acts, probe.activations);
  EXPECT_EQ(reads, probe.column_reads);
  EXPECT_EQ(writes, probe.column_writes);
  EXPECT_EQ(drops, probe.reads_dropped);
  EXPECT_EQ(received, probe.reads_received);
  EXPECT_EQ(delay_sum, 256u * total);
  EXPECT_EQ(th_sum, 3u * total);
  EXPECT_NEAR(energy, probe.energy_nj, 1e-9);
}

TEST(JsonlSink, EventRoundTrip) {
  const std::string path = temp_path("trace_roundtrip.jsonl");
  {
    telemetry::JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    Tracer tracer;
    tracer.set_sink(&sink);
    EXPECT_TRUE(tracer.enabled());
    tracer.row_activate(/*cycle=*/42, /*ch=*/1, /*bank=*/3, /*row=*/777);
    tracer.row_group_drop(50, 1, 3, 777, /*req=*/9001);
    tracer.vp_prediction(51, 2, /*line=*/0xABC0, /*donor_found=*/true, 0xAB80);
    tracer.dms_stall_begin(60, 0, 5, /*req=*/12, /*delay=*/512);
    tracer.dms_stall_end(99, 0, 5);
    tracer.dms_delay_change(4096, 4, /*from=*/256, /*to=*/512, /*bwutil=*/0.125);
    tracer.ams_threshold_change(8192, 5, /*from=*/2, /*to=*/4, /*coverage=*/0.0625);
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines[0], "{\"type\":\"act\",\"cycle\":42,\"ch\":1,\"bank\":3,\"row\":777}");
  EXPECT_EQ(lines[1],
            "{\"type\":\"drop\",\"cycle\":50,\"ch\":1,\"bank\":3,\"row\":777,\"req\":9001}");
  EXPECT_EQ(json_number(lines[2], "line"), 0xABC0);
  EXPECT_NE(lines[2].find("\"found\":true"), std::string::npos);
  EXPECT_EQ(json_number(lines[3], "delay"), 512);
  EXPECT_EQ(lines[4], "{\"type\":\"stall_end\",\"cycle\":99,\"ch\":0,\"bank\":5}");
  EXPECT_EQ(json_number(lines[5], "from"), 256);
  EXPECT_EQ(json_number(lines[5], "to"), 512);
  EXPECT_EQ(json_number(lines[5], "bwutil"), 0.125);
  EXPECT_EQ(json_number(lines[6], "coverage"), 0.0625);
  std::remove(path.c_str());
}

TEST(JsonlSink, WindowRecordsCarryTheAuditFields) {
  const std::string path = temp_path("trace_windows.jsonl");
  {
    telemetry::JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    Tracer tracer;
    tracer.set_sink(&sink);
    WindowSampler sampler(3, kWindow, &tracer);
    WindowProbe probe;
    for (Cycle now = 0; now < kWindow + 10; ++now) {
      probe.bus_busy_cycles = now;
      probe.dms_delay = 128;
      sampler.tick(now, probe);
    }
    sampler.flush(probe);
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(json_number(lines[0], "ch"), 3);
  EXPECT_EQ(json_number(lines[0], "start"), 0);
  EXPECT_EQ(json_number(lines[0], "end"), kWindow);
  EXPECT_EQ(json_number(lines[0], "ticks"), kWindow);
  EXPECT_EQ(json_number(lines[0], "delay_sum"), 128.0 * kWindow);
  EXPECT_EQ(json_number(lines[0], "delay"), 128);
  EXPECT_EQ(json_number(lines[1], "ticks"), 10);
  std::remove(path.c_str());
}

TEST(JsonlSink, UnwritablePathReportsNotOk) {
  telemetry::JsonlTraceSink sink("/nonexistent-dir-for-sure/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  // Emitting into a dead sink must be harmless.
  sink.on_event({telemetry::EventKind::kRowActivate, 1, 0, 0, 1, 0, 0.0});
}

TEST(JsonWriter, NestedContainersStayWellFormed) {
  const std::string path = temp_path("writer.json");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    telemetry::JsonWriter jw(f);
    jw.begin_object();
    jw.field("name", "x\"y\\z");
    jw.field("pi", 3.5);
    jw.key("list");
    jw.begin_array();
    jw.value(std::uint64_t{1});
    jw.value(false);
    jw.begin_object();
    jw.field("k", 2);
    jw.end_object();
    jw.end_array();
    jw.end_object();
    std::fclose(f);
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"name\":\"x\\\"y\\\\z\",\"pi\":3.5,\"list\":[1,false,{\"k\":2}]}");
  std::remove(path.c_str());
}

TEST(TelemetryHub, RegistryAndSnapshot) {
  telemetry::TelemetryHub hub;
  std::uint64_t acts = 7;
  double util = 0.5;
  Histogram hist(4);
  hist.add(1, 2);
  hist.add(9);  // Overflow.
  hub.add_counter("dram.ch0.activations", [&] { return acts; });
  hub.add_counter("dram.ch1.activations", [&] { return acts * 2; });
  hub.add_gauge("gpu.bwutil", [&] { return util; });
  hub.add_histogram("dram.ch0.rbl", &hist);

  EXPECT_EQ(hub.counter("dram.ch0.activations"), 7u);
  acts = 11;  // Live closure: reads the current value.
  EXPECT_EQ(hub.counter("dram.ch0.activations"), 11u);
  EXPECT_EQ(hub.sum_counters("dram.ch", ".activations"), 33u);
  EXPECT_TRUE(hub.has_gauge("gpu.bwutil"));
  EXPECT_FALSE(hub.has_gauge("gpu.nope"));
  EXPECT_EQ(telemetry::channel_stat("dram", 3, "activations"), "dram.ch3.activations");

  const telemetry::TelemetryHub::Snapshot snap = hub.snapshot();
  EXPECT_EQ(snap.counters.at("dram.ch1.activations"), 22u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("gpu.bwutil"), 0.5);
  ASSERT_EQ(snap.histograms.at("dram.ch0.rbl").size(), hist.bucket_count());
  EXPECT_EQ(snap.histograms.at("dram.ch0.rbl")[1], 2u);
  EXPECT_EQ(snap.histograms.at("dram.ch0.rbl").back(), 1u);  // Overflow bucket.
}

/// Small deterministic workload sized to finish in tens of thousands of
/// cycles — enough memory cycles for several 4096-cycle profiling windows.
class TinyWorkload final : public workloads::Workload {
 public:
  std::string name() const override { return "tiny"; }
  std::string description() const override { return "telemetry test workload"; }
  unsigned group() const override { return 1; }
  workloads::FeatureTargets targets() const override { return {}; }
  unsigned num_warps() const override { return 120; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    constexpr unsigned kIters = 24;
    if (step >= kIters * 4) return false;
    const unsigned iter = step / 4;
    const Addr base = workloads::MiB(16) +
                      (static_cast<Addr>(warp) * kIters + iter) * 8 * kLineBytes;
    switch (step % 4) {
      case 0:
        op = workloads::wide_load(base, 8, true);
        return true;
      case 1:
        op = gpu::WarpOp::load_line(
            workloads::MiB(512) +
                (workloads::mix64(warp * 131 + iter) % 4096) * kLineBytes,
            true);
        return true;
      case 2:
        op = gpu::WarpOp::compute(12);
        return true;
      default:
        op = gpu::WarpOp::store_line(workloads::MiB(768) +
                                     static_cast<Addr>(warp) * kLineBytes);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    workloads::fill_smooth(image, workloads::MiB(16), 4096, 1.0, 3.0, 2.0);
    workloads::fill_smooth(image, workloads::MiB(512), 4096 * 32, 0.5, 5.0, 1.0);
  }
  void compute_output(gpu::MemView& view) const override {
    double acc = 0.0;
    for (unsigned i = 0; i < 4096; ++i)
      acc += view.read_f32(workloads::f32_addr(workloads::MiB(16), i));
    view.write_f32(workloads::MiB(896), static_cast<float>(acc));
  }
  std::vector<workloads::AddrRange> output_ranges() const override {
    return {{workloads::MiB(896), 4}};
  }
  std::vector<workloads::AddrRange> approximable_ranges() const override {
    return {{workloads::MiB(16), workloads::MiB(256)},
            {workloads::MiB(512), workloads::MiB(4)}};
  }
};

/// Tracing must never perturb the simulation: RunMetrics with the full
/// observability layer on (JSONL trace + window sampling) must be
/// bit-identical to a bare run, for every scheme.
class TracingDeterminism : public ::testing::TestWithParam<core::SchemeKind> {};

TEST_P(TracingDeterminism, RunMetricsIdenticalWithTracingOnAndOff) {
  TinyWorkload wl;
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(GetParam(), config.gpu.scheme);
  config.compute_error = false;

  const sim::RunMetrics bare = sim::simulate(wl, config);

  const std::string trace = temp_path(std::string("determinism_") +
                                      core::scheme_name(GetParam()) + ".jsonl");
  config.trace_path = trace;
  const sim::RunMetrics traced = sim::simulate(wl, config);
  EXPECT_FALSE(read_lines(trace).empty());
  std::remove(trace.c_str());

  EXPECT_EQ(bare.core_cycles, traced.core_cycles);
  EXPECT_EQ(bare.mem_cycles, traced.mem_cycles);
  EXPECT_EQ(bare.instructions, traced.instructions);
  EXPECT_EQ(bare.ipc, traced.ipc);
  EXPECT_EQ(bare.activations, traced.activations);
  EXPECT_EQ(bare.dram_reads, traced.dram_reads);
  EXPECT_EQ(bare.dram_writes, traced.dram_writes);
  EXPECT_EQ(bare.drops, traced.drops);
  EXPECT_EQ(bare.reads_received, traced.reads_received);
  EXPECT_EQ(bare.avg_rbl, traced.avg_rbl);
  EXPECT_EQ(bare.row_energy_nj, traced.row_energy_nj);
  EXPECT_EQ(bare.access_energy_nj, traced.access_energy_nj);
  EXPECT_EQ(bare.total_energy_nj, traced.total_energy_nj);
  EXPECT_EQ(bare.coverage, traced.coverage);
  EXPECT_EQ(bare.avg_delay, traced.avg_delay);
  EXPECT_EQ(bare.avg_th_rbl, traced.avg_th_rbl);
  EXPECT_EQ(bare.bwutil, traced.bwutil);
  EXPECT_EQ(bare.l2_hit_rate, traced.l2_hit_rate);
  EXPECT_EQ(bare.avg_read_latency_mem_cycles, traced.avg_read_latency_mem_cycles);
  for (std::uint64_t k = 0; k <= bare.rbl_hist.max_key() + 1; ++k)
    EXPECT_EQ(bare.rbl_hist.at(k), traced.rbl_hist.at(k)) << "rbl bucket " << k;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TracingDeterminism,
                         ::testing::ValuesIn(core::all_schemes()),
                         [](const ::testing::TestParamInfo<core::SchemeKind>& info) {
                           std::string n = core::scheme_name(info.param);
                           for (char& c : n)
                             if (c == '-' || c == '+' || c == ' ') c = '_';
                           return n;
                         });

/// The acceptance criterion: a Dyn-DMS run's per-window series — both the
/// in-memory copy and the JSONL trace — must recompute to the end-of-run
/// aggregates (avg_delay, bwutil) within 1e-9.
TEST(Telemetry, WindowSeriesRecomputesRunAggregates) {
  TinyWorkload wl;
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(core::SchemeKind::kDynDms, config.gpu.scheme);
  config.compute_error = false;
  const std::string trace = temp_path("dyndms_accept.jsonl");
  const std::string report = temp_path("dyndms_accept.json");
  config.trace_path = trace;
  config.json_report_path = report;

  const sim::RunOutput out = sim::simulate_full(wl, config);
  const sim::RunMetrics& m = out.metrics;
  ASSERT_TRUE(m.finished);
  ASSERT_EQ(out.telemetry.windows.size(), config.gpu.num_channels);

  // Recompute from the in-memory window series.
  double delay_sum_over_channels = 0.0;
  std::uint64_t bus_busy = 0;
  for (const std::vector<WindowSample>& ws : out.telemetry.windows) {
    ASSERT_GE(ws.size(), 2u);  // The run spans several profiling windows.
    std::uint64_t delay_sum = 0, ticks = 0;
    for (const WindowSample& w : ws) {
      // Full windows land exactly on the 4096-cycle grid.
      EXPECT_EQ(w.start_cycle, w.index * config.gpu.scheme.profile_window);
      if (&w != &ws.back()) {
        EXPECT_EQ(w.end_cycle - w.start_cycle, config.gpu.scheme.profile_window);
      }
      delay_sum += w.delay_sum;
      ticks += w.ticks;
      bus_busy += w.bus_busy_cycles;
    }
    ASSERT_GT(ticks, 0u);
    delay_sum_over_channels +=
        static_cast<double>(delay_sum) / static_cast<double>(ticks);
  }
  EXPECT_NEAR(delay_sum_over_channels / config.gpu.num_channels, m.avg_delay, 1e-9);
  EXPECT_NEAR(static_cast<double>(bus_busy) /
                  (static_cast<double>(m.mem_cycles) * config.gpu.num_channels),
              m.bwutil, 1e-9);

  // Recompute the same aggregates from the JSONL trace alone.
  double jl_delay_sum = 0.0, jl_ticks = 0.0, jl_bus = 0.0;
  std::uint64_t window_lines = 0, event_lines = 0;
  for (const std::string& line : read_lines(trace)) {
    ASSERT_EQ(line.front(), '{');
    ASSERT_EQ(line.back(), '}');
    if (line.find("\"type\":\"window\"") != std::string::npos) {
      ++window_lines;
      jl_delay_sum += json_number(line, "delay_sum");
      jl_ticks += json_number(line, "ticks");
      jl_bus += json_number(line, "bus_busy");
    } else {
      ++event_lines;
    }
  }
  EXPECT_GT(window_lines, 0u);
  EXPECT_GT(event_lines, 0u);  // Dyn-DMS emits at least row activations.
  // Ticks are identical across channels, so the flat JSONL sums still give
  // the aggregate averages.
  EXPECT_NEAR(jl_delay_sum / jl_ticks, m.avg_delay, 1e-9);
  EXPECT_NEAR(jl_bus / jl_ticks, m.bwutil, 1e-9);

  // The JSON run report exists, is one object, and carries the metrics.
  const std::vector<std::string> rep = read_lines(report);
  ASSERT_FALSE(rep.empty());
  std::string all;
  for (const std::string& l : rep) all += l;
  EXPECT_EQ(all.front(), '{');
  EXPECT_EQ(all.back(), '}');
  EXPECT_NE(all.find("\"metrics\""), std::string::npos);
  EXPECT_NE(all.find("\"windows\""), std::string::npos);
  EXPECT_NE(all.find("\"profile\""), std::string::npos);
  EXPECT_NE(all.find("\"stats\""), std::string::npos);

  // Wall-clock profile is populated.
  EXPECT_GT(out.telemetry.profile.run_seconds, 0.0);
  EXPECT_GT(out.telemetry.profile.core_cycles_per_second, 0.0);

  std::remove(trace.c_str());
  std::remove(report.c_str());
}

}  // namespace
}  // namespace lazydram
