// sim/ layer tests: scheme construction, spec cache keys, the experiment
// runner's memoization and the report helpers.
#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "workloads/registry.hpp"

namespace lazydram {
namespace {

TEST(Scheme, AllSevenSchemesConstruct) {
  const SchemeParams params;
  EXPECT_EQ(core::all_schemes().size(), 7u);
  for (const core::SchemeKind kind : core::all_schemes()) {
    const core::SchemeSpec spec = core::make_scheme_spec(kind, params);
    EXPECT_EQ(spec.kind, kind);
    EXPECT_STRNE(core::scheme_name(kind), "");
  }
}

TEST(Scheme, SpecFlagsMatchKind) {
  const SchemeParams params;
  const auto spec = [&](core::SchemeKind k) { return core::make_scheme_spec(k, params); };
  EXPECT_FALSE(spec(core::SchemeKind::kBaseline).dms_enabled);
  EXPECT_FALSE(spec(core::SchemeKind::kBaseline).ams_enabled);
  EXPECT_TRUE(spec(core::SchemeKind::kStaticDms).dms_enabled);
  EXPECT_FALSE(spec(core::SchemeKind::kStaticDms).dms_dynamic);
  EXPECT_TRUE(spec(core::SchemeKind::kDynDms).dms_dynamic);
  EXPECT_TRUE(spec(core::SchemeKind::kDynCombo).dms_dynamic);
  EXPECT_TRUE(spec(core::SchemeKind::kDynCombo).ams_dynamic);
  EXPECT_EQ(spec(core::SchemeKind::kStaticDms).static_delay, params.static_delay);
  EXPECT_EQ(core::make_static_dms_spec(777, params).static_delay, 777u);
  EXPECT_EQ(core::make_static_ams_spec(3, params).static_th_rbl, 3u);
  const core::SchemeSpec combo = core::make_combo_spec(256, 4, params);
  EXPECT_TRUE(combo.dms_enabled);
  EXPECT_TRUE(combo.ams_enabled);
  EXPECT_EQ(combo.static_delay, 256u);
  EXPECT_EQ(combo.static_th_rbl, 4u);
}

TEST(Experiment, SpecKeysDistinguishParameters) {
  const SchemeParams params;
  EXPECT_NE(sim::spec_key(core::make_static_dms_spec(128, params)),
            sim::spec_key(core::make_static_dms_spec(256, params)));
  EXPECT_NE(sim::spec_key(core::make_static_ams_spec(1, params)),
            sim::spec_key(core::make_static_ams_spec(8, params)));
  EXPECT_EQ(sim::spec_key(core::make_scheme_spec(core::SchemeKind::kDynCombo, params)),
            sim::spec_key(core::make_scheme_spec(core::SchemeKind::kDynCombo, params)));
}

TEST(Experiment, RunnerMemoizesRuns) {
  sim::ExperimentRunner runner;
  const sim::RunMetrics& a = runner.baseline("3MM");
  const std::size_t after_first = runner.runs_executed();
  const sim::RunMetrics& b = runner.baseline("3MM");
  EXPECT_EQ(&a, &b);  // Same cached object.
  EXPECT_EQ(runner.runs_executed(), after_first);
}

TEST(Report, Geomean) {
  EXPECT_DOUBLE_EQ(sim::geomean({}), 1.0);
  EXPECT_NEAR(sim::geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(sim::geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Report, MeanAndRatio) {
  EXPECT_DOUBLE_EQ(sim::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sim::mean({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(sim::ratio(3.0, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(sim::ratio(3.0, 0.0), 0.0);
}

TEST(Report, BenchWorkloadsNonEmptyAndRegistered) {
  for (const std::string& name : sim::bench_workloads()) {
    EXPECT_FALSE(name.empty());
  }
  EXPECT_GE(sim::bench_workloads().size(), 8u);
}

// The schedulability fast paths (GpuConfig::fast_path: bank skipping, retry
// and none-horizon memos, idle-cycle skipping) are a pure wall-clock
// optimization: with them off the same run must produce bit-identical
// metrics. Dyn-DMS+AMS exercises every memo (age gating, drops, delay
// changes); the closed-row baseline exercises the idle-precharge carve-out.
TEST(Simulator, FastPathOffMatchesFastPathOn) {
  struct Case {
    core::SchemeKind kind;
    RowPolicy row_policy;
  };
  for (const Case& c : {Case{core::SchemeKind::kDynCombo, RowPolicy::kOpenRow},
                        Case{core::SchemeKind::kBaseline, RowPolicy::kClosedRow}}) {
    const auto wl = workloads::make_workload("SCP");
    ASSERT_NE(wl, nullptr);
    sim::RunConfig on;
    on.spec = core::make_scheme_spec(c.kind, on.gpu.scheme);
    on.row_policy = c.row_policy;
    on.compute_error = false;
    sim::RunConfig off = on;
    on.gpu.fast_path = true;
    off.gpu.fast_path = false;

    const sim::RunMetrics a = sim::simulate(*wl, on);
    const sim::RunMetrics b = sim::simulate(*wl, off);
    ASSERT_TRUE(a.finished);
    ASSERT_TRUE(b.finished);
    EXPECT_EQ(a.core_cycles, b.core_cycles);
    EXPECT_EQ(a.mem_cycles, b.mem_cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.activations, b.activations);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
    EXPECT_EQ(a.dram_writes, b.dram_writes);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.reads_received, b.reads_received);
    EXPECT_DOUBLE_EQ(a.avg_rbl, b.avg_rbl);
    EXPECT_DOUBLE_EQ(a.total_energy_nj, b.total_energy_nj);
    EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
    EXPECT_DOUBLE_EQ(a.avg_delay, b.avg_delay);
    EXPECT_DOUBLE_EQ(a.avg_th_rbl, b.avg_th_rbl);
    EXPECT_DOUBLE_EQ(a.bwutil, b.bwutil);
  }
}

}  // namespace
}  // namespace lazydram
