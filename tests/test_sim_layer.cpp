// sim/ layer tests: scheme construction, spec cache keys, the experiment
// runner's memoization and the report helpers.
#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

namespace lazydram {
namespace {

TEST(Scheme, AllSevenSchemesConstruct) {
  const SchemeParams params;
  EXPECT_EQ(core::all_schemes().size(), 7u);
  for (const core::SchemeKind kind : core::all_schemes()) {
    const core::SchemeSpec spec = core::make_scheme_spec(kind, params);
    EXPECT_EQ(spec.kind, kind);
    EXPECT_STRNE(core::scheme_name(kind), "");
  }
}

TEST(Scheme, SpecFlagsMatchKind) {
  const SchemeParams params;
  const auto spec = [&](core::SchemeKind k) { return core::make_scheme_spec(k, params); };
  EXPECT_FALSE(spec(core::SchemeKind::kBaseline).dms_enabled);
  EXPECT_FALSE(spec(core::SchemeKind::kBaseline).ams_enabled);
  EXPECT_TRUE(spec(core::SchemeKind::kStaticDms).dms_enabled);
  EXPECT_FALSE(spec(core::SchemeKind::kStaticDms).dms_dynamic);
  EXPECT_TRUE(spec(core::SchemeKind::kDynDms).dms_dynamic);
  EXPECT_TRUE(spec(core::SchemeKind::kDynCombo).dms_dynamic);
  EXPECT_TRUE(spec(core::SchemeKind::kDynCombo).ams_dynamic);
  EXPECT_EQ(spec(core::SchemeKind::kStaticDms).static_delay, params.static_delay);
  EXPECT_EQ(core::make_static_dms_spec(777, params).static_delay, 777u);
  EXPECT_EQ(core::make_static_ams_spec(3, params).static_th_rbl, 3u);
  const core::SchemeSpec combo = core::make_combo_spec(256, 4, params);
  EXPECT_TRUE(combo.dms_enabled);
  EXPECT_TRUE(combo.ams_enabled);
  EXPECT_EQ(combo.static_delay, 256u);
  EXPECT_EQ(combo.static_th_rbl, 4u);
}

TEST(Experiment, SpecKeysDistinguishParameters) {
  const SchemeParams params;
  EXPECT_NE(sim::spec_key(core::make_static_dms_spec(128, params)),
            sim::spec_key(core::make_static_dms_spec(256, params)));
  EXPECT_NE(sim::spec_key(core::make_static_ams_spec(1, params)),
            sim::spec_key(core::make_static_ams_spec(8, params)));
  EXPECT_EQ(sim::spec_key(core::make_scheme_spec(core::SchemeKind::kDynCombo, params)),
            sim::spec_key(core::make_scheme_spec(core::SchemeKind::kDynCombo, params)));
}

TEST(Experiment, RunnerMemoizesRuns) {
  sim::ExperimentRunner runner;
  const sim::RunMetrics& a = runner.baseline("3MM");
  const std::size_t after_first = runner.runs_executed();
  const sim::RunMetrics& b = runner.baseline("3MM");
  EXPECT_EQ(&a, &b);  // Same cached object.
  EXPECT_EQ(runner.runs_executed(), after_first);
}

TEST(Report, Geomean) {
  EXPECT_DOUBLE_EQ(sim::geomean({}), 1.0);
  EXPECT_NEAR(sim::geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(sim::geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Report, MeanAndRatio) {
  EXPECT_DOUBLE_EQ(sim::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sim::mean({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(sim::ratio(3.0, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(sim::ratio(3.0, 0.0), 0.0);
}

TEST(Report, BenchWorkloadsNonEmptyAndRegistered) {
  for (const std::string& name : sim::bench_workloads()) {
    EXPECT_FALSE(name.empty());
  }
  EXPECT_GE(sim::bench_workloads().size(), 8u);
}

}  // namespace
}  // namespace lazydram
