// FunctionalMemory / MemoryImage / MemView tests: sparse storage, typed
// access, the approximate-line overlay and exact-vs-approximate views.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "gpu/functional_memory.hpp"

namespace lazydram::gpu {
namespace {

TEST(MemoryImage, UnwrittenBytesReadZero) {
  MemoryImage img;
  EXPECT_FLOAT_EQ(img.read_f32(0x123400), 0.0f);
  EXPECT_EQ(img.pages(), 0u);
}

TEST(MemoryImage, ReadBackWritten) {
  MemoryImage img;
  img.write_f32(0x1000, 3.25f);
  img.write_u32(0x2000, 0xdeadbeef);
  EXPECT_FLOAT_EQ(img.read_f32(0x1000), 3.25f);
  EXPECT_EQ(img.read_u32(0x2000), 0xdeadbeefu);
}

TEST(MemoryImage, CrossPageAccess) {
  MemoryImage img;
  std::uint8_t data[64];
  for (int i = 0; i < 64; ++i) data[i] = static_cast<std::uint8_t>(i);
  const Addr addr = MemoryImage::kPageBytes - 32;  // Straddles a page boundary.
  img.write(addr, data, 64);
  std::uint8_t out[64] = {};
  img.read(addr, out, 64);
  EXPECT_EQ(std::memcmp(data, out, 64), 0);
}

TEST(MemoryImage, CopyIsDeep) {
  MemoryImage a;
  a.write_f32(0x100, 1.0f);
  MemoryImage b(a);
  b.write_f32(0x100, 2.0f);
  EXPECT_FLOAT_EQ(a.read_f32(0x100), 1.0f);
  EXPECT_FLOAT_EQ(b.read_f32(0x100), 2.0f);
}

class OverlayTest : public ::testing::Test {
 protected:
  OverlayTest() {
    fmem_.image().write_f32(kLine, 10.0f);
    const float v = 99.0f;
    for (unsigned i = 0; i < kLineBytes; i += 4) std::memcpy(&approx_[i], &v, 4);
  }
  static constexpr Addr kLine = 0x4000;
  FunctionalMemory fmem_;
  std::array<std::uint8_t, kLineBytes> approx_{};
};

TEST_F(OverlayTest, FirstPredictionWins) {
  fmem_.record_approx_line(kLine, approx_.data());
  std::array<std::uint8_t, kLineBytes> second{};
  fmem_.record_approx_line(kLine, second.data());
  std::uint8_t out[kLineBytes];
  fmem_.read_line(kLine, out);
  float v;
  std::memcpy(&v, out, 4);
  EXPECT_FLOAT_EQ(v, 99.0f);
}

TEST_F(OverlayTest, ReadLinePrefersOverlay) {
  std::uint8_t out[kLineBytes];
  fmem_.read_line(kLine, out);
  float v;
  std::memcpy(&v, out, 4);
  EXPECT_FLOAT_EQ(v, 10.0f);  // No overlay yet: image value.
  fmem_.record_approx_line(kLine, approx_.data());
  fmem_.read_line(kLine, out);
  std::memcpy(&v, out, 4);
  EXPECT_FLOAT_EQ(v, 99.0f);
  EXPECT_TRUE(fmem_.line_is_approx(kLine + 12));
}

TEST_F(OverlayTest, ViewsDivergeOnOverlay) {
  fmem_.record_approx_line(kLine, approx_.data());
  MemoryImage exact_img(fmem_.image());
  MemoryImage approx_img(fmem_.image());
  MemView exact(exact_img, nullptr);
  MemView approx(approx_img, &fmem_.overlay());
  EXPECT_FLOAT_EQ(exact.read_f32(kLine), 10.0f);
  EXPECT_FLOAT_EQ(approx.read_f32(kLine), 99.0f);
  // Writes land in storage; reads of overlaid lines keep seeing the overlay
  // (per-load pessimism documented in DESIGN.md).
  approx.write_f32(kLine, 55.0f);
  EXPECT_FLOAT_EQ(approx.read_f32(kLine), 99.0f);
  // Non-overlaid addresses read storage normally.
  approx.write_f32(kLine + kLineBytes, 7.0f);
  EXPECT_FLOAT_EQ(approx.read_f32(kLine + kLineBytes), 7.0f);
}

}  // namespace
}  // namespace lazydram::gpu
