// Property tests over every application model (TEST_P across the registry):
// op-stream well-formedness, termination, annotation consistency, grid
// limits, functional-model determinism and zero-error-without-overlay.
#include <gtest/gtest.h>

#include <string>

#include "common/config.hpp"
#include "gpu/functional_memory.hpp"
#include "workloads/registry.hpp"

namespace lazydram::workloads {
namespace {

class WorkloadProperties : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Workload> wl_ = make_workload(GetParam());
};

TEST_P(WorkloadProperties, GridFitsOneWave) {
  const GpuConfig cfg;
  EXPECT_GT(wl_->num_warps(), 0u);
  EXPECT_LE(wl_->num_warps(), cfg.num_sms * cfg.max_warps_per_sm);
}

TEST_P(WorkloadProperties, GroupAndTargetsDeclared) {
  EXPECT_GE(wl_->group(), 1u);
  EXPECT_LE(wl_->group(), 4u);
  EXPECT_FALSE(wl_->name().empty());
  EXPECT_FALSE(wl_->description().empty());
  // Group 4 must be the low-error-tolerance apps and vice versa (Table II).
  EXPECT_EQ(wl_->group() == 4, wl_->targets().error_tolerance == Level::kLow);
}

TEST_P(WorkloadProperties, OpStreamsTerminateAndAreWellFormed) {
  // Sample a spread of warps; walk each stream to completion.
  const unsigned warps = wl_->num_warps();
  for (const unsigned warp :
       {0u, warps / 3, warps / 2, warps - 1}) {
    gpu::WarpOp op;
    unsigned steps = 0;
    bool saw_load = false;
    while (wl_->op_at(warp, steps, op)) {
      ++steps;
      ASSERT_LT(steps, 2'000'000u) << "op stream does not terminate";
      if (op.kind == gpu::WarpOp::Kind::kCompute) {
        EXPECT_GT(op.cycles, 0u);
      } else {
        ASSERT_GT(op.num_addrs, 0u);
        ASSERT_LE(op.num_addrs, 32u);
        saw_load |= op.kind == gpu::WarpOp::Kind::kLoad;
      }
    }
    EXPECT_GT(steps, 0u);
    EXPECT_TRUE(saw_load);
  }
}

TEST_P(WorkloadProperties, OpStreamsAreDeterministic) {
  gpu::WarpOp a, b;
  for (unsigned step = 0; step < 64; ++step) {
    const bool ra = wl_->op_at(1, step, a);
    const bool rb = wl_->op_at(1, step, b);
    ASSERT_EQ(ra, rb);
    if (!ra) break;
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.num_addrs, b.num_addrs);
    for (unsigned i = 0; i < a.num_addrs; ++i) EXPECT_EQ(a.addrs[i], b.addrs[i]);
  }
}

TEST_P(WorkloadProperties, ApproximableFlagsMatchAnnotatedRanges) {
  // Every load tagged approximable must target an annotated range.
  const unsigned warps = wl_->num_warps();
  for (const unsigned warp : {0u, warps - 1}) {
    gpu::WarpOp op;
    unsigned step = 0;
    while (wl_->op_at(warp, step++, op)) {
      if (op.kind != gpu::WarpOp::Kind::kLoad || !op.approximable) continue;
      for (unsigned i = 0; i < op.num_addrs; ++i)
        EXPECT_TRUE(wl_->is_approximable(op.addrs[i]))
            << wl_->name() << " tagged a load outside its annotated ranges";
    }
  }
}

TEST_P(WorkloadProperties, DeclaredRangesAreSane) {
  for (const AddrRange& r : wl_->approximable_ranges()) {
    EXPECT_GT(r.bytes, 0u);
    EXPECT_TRUE(r.contains(r.base));
    EXPECT_FALSE(r.contains(r.base + r.bytes));
  }
  EXPECT_FALSE(wl_->output_ranges().empty());
}

TEST_P(WorkloadProperties, ZeroErrorWithoutApproximation) {
  gpu::FunctionalMemory fmem;
  wl_->init_memory(fmem.image());
  EXPECT_DOUBLE_EQ(wl_->application_error(fmem), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllApps, WorkloadProperties,
                         ::testing::ValuesIn(all_workload_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Registry, HasAllTwentyApps) {
  EXPECT_EQ(all_workload_names().size(), 20u);
  EXPECT_EQ(make_all_workloads().size(), 20u);
}

TEST(Registry, GroupPartitions) {
  // Fig. 12 population (groups 1-3) + group 4 = all apps.
  EXPECT_EQ(fig12_workload_names().size() + group4_workload_names().size(), 20u);
  for (const std::string& name : group4_workload_names())
    EXPECT_EQ(make_workload(name)->group(), 4u);
}

}  // namespace
}  // namespace lazydram::workloads
