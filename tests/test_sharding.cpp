// Sharded run-loop tests: the event-wheel driver (shard_threads >= 1) and
// the worker-lane epochs (shard_threads > 1) must be bit-identical to the
// legacy cycle-by-cycle loop in every metric and byte-identical in every
// trace/report output — sharding is an execution strategy, never a model
// change. Also home to the stale-memo regression (DMS delay changes must
// invalidate the controller's bank horizon memos).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/lazy_scheduler.hpp"
#include "core/scheduler_registry.hpp"
#include "core/scheme.hpp"
#include "dram/address.hpp"
#include "mem/controller.hpp"
#include "sim/simulator.hpp"
#include "workloads/mix.hpp"
#include "workloads/registry.hpp"

namespace lazydram {
namespace {

void expect_metrics_equal(const sim::RunMetrics& a, const sim::RunMetrics& b,
                          const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.core_cycles, b.core_cycles);
  EXPECT_EQ(a.mem_cycles, b.mem_cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.reads_received, b.reads_received);
  EXPECT_DOUBLE_EQ(a.avg_rbl, b.avg_rbl);
  EXPECT_DOUBLE_EQ(a.total_energy_nj, b.total_energy_nj);
  EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
  EXPECT_DOUBLE_EQ(a.avg_delay, b.avg_delay);
  EXPECT_DOUBLE_EQ(a.avg_th_rbl, b.avg_th_rbl);
  EXPECT_DOUBLE_EQ(a.bwutil, b.bwutil);
}

sim::RunMetrics run_sharded(const workloads::Workload& wl, core::SchemeKind kind,
                            unsigned shard) {
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(kind, config.gpu.scheme);
  config.compute_error = false;
  config.gpu.shard_threads = shard;
  config.ignore_env_outputs = true;
  return sim::simulate(wl, config);
}

// The tentpole guarantee, proven rather than assumed: for every scheme of
// the paper's matrix on three workloads, the legacy loop (shard 0), the
// serial event wheel (shard 1) and four worker lanes (shard 4) produce
// bit-identical metrics.
TEST(Sharding, LockstepAcrossSchemesAndWorkloads) {
  for (const char* name : {"SCP", "CONS", "MVT"}) {
    const auto wl = workloads::make_workload(name);
    ASSERT_NE(wl, nullptr);
    for (const core::SchemeKind kind : core::all_schemes()) {
      const std::string what =
          std::string(name) + " / " + core::scheme_name(kind);
      const sim::RunMetrics legacy = run_sharded(*wl, kind, 0);
      const sim::RunMetrics wheel = run_sharded(*wl, kind, 1);
      const sim::RunMetrics lanes = run_sharded(*wl, kind, 4);
      expect_metrics_equal(legacy, wheel, what + " (wheel)");
      expect_metrics_equal(legacy, lanes, what + " (4 lanes)");
    }
  }
}

// Multi-tenant front-end over the sharded driver: three tenants with
// distinct kernels, budgets and think times, run under the full Dyn-DMS+AMS
// scheme with per-tenant QoS caps.
TEST(Sharding, MixWorkloadLockstep) {
  std::vector<workloads::MixTenant> tenants(3);
  tenants[0].kernels = {"SCP"};
  tenants[0].warps = 60;
  tenants[0].coverage_cap = 0.05;
  tenants[1].kernels = {"CONS"};
  tenants[1].warps = 60;
  tenants[1].think = 2000;
  tenants[2].kernels = {"MVT"};
  tenants[2].warps = 60;
  tenants[2].approx = false;
  const workloads::MixWorkload mix(tenants, /*seed=*/7);

  sim::RunConfig config;
  config.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, config.gpu.scheme);
  config.compute_error = false;
  config.ignore_env_outputs = true;
  for (const workloads::MixTenant& t : tenants) {
    TenantQos qos;
    qos.coverage_cap = t.coverage_cap;
    qos.dms_delay_cap = t.dms_delay_cap;
    config.gpu.scheme.tenant_qos.push_back(qos);
  }

  sim::RunConfig wheel = config;
  wheel.gpu.shard_threads = 1;
  sim::RunConfig lanes = config;
  lanes.gpu.shard_threads = 4;

  const sim::RunMetrics legacy = sim::simulate(mix, config);
  const sim::RunMetrics a = sim::simulate(mix, wheel);
  const sim::RunMetrics b = sim::simulate(mix, lanes);
  expect_metrics_equal(legacy, a, "mix (wheel)");
  expect_metrics_equal(legacy, b, "mix (4 lanes)");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The JSON report embeds host wall-clock profile fields; excise that one
// flat object before comparing (everything else must match to the byte).
std::string strip_profile(std::string json) {
  const std::size_t key = json.find("\"profile\"");
  if (key == std::string::npos) return json;
  const std::size_t end = json.find('}', key);
  if (end == std::string::npos) return json;
  json.erase(key, end - key + 2);  // Includes the trailing "},".
  return json;
}

// Telemetry is drained from per-lane buffers in (cycle, channel) order at
// each barrier, so the JSONL trace and the JSON report (windows, stats,
// lifecycle) are byte-identical between one lane and four.
TEST(Sharding, ShardedTraceAndReportByteIdentical) {
  const auto wl = workloads::make_workload("SCP");
  ASSERT_NE(wl, nullptr);

  std::string traces[2], reports[2];
  const unsigned shards[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    const std::string base =
        ::testing::TempDir() + "shard" + std::to_string(shards[i]);
    sim::RunConfig config;
    config.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, config.gpu.scheme);
    config.compute_error = false;
    config.ignore_env_outputs = true;
    config.gpu.shard_threads = shards[i];
    config.trace_path = base + ".trace.jsonl";
    config.json_report_path = base + ".report.json";
    const sim::RunMetrics m = sim::simulate(*wl, config);
    ASSERT_TRUE(m.finished);
    traces[i] = read_file(config.trace_path);
    reports[i] = read_file(config.json_report_path);
    std::remove(config.trace_path.c_str());
    std::remove(config.json_report_path.c_str());
  }
  ASSERT_FALSE(traces[0].empty());
  ASSERT_FALSE(reports[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(strip_profile(reports[0]), strip_profile(reports[1]));
}

// Regression (stale horizon memos): the controller memoizes per-bank retry
// and none-until horizons plus pass-level wakes under the DMS delay in force
// when they were recorded. Dyn-DMS moves that delay at window boundaries —
// including large downward jumps at search restarts — and a memo recorded
// under the old delay would otherwise park a newly-eligible bank past its
// legal service cycle. The fix clears every memo on a delay edge; with it,
// fast-path on/off runs are command-for-command identical. Small windows and
// frequent restarts make this fail deterministically on the stale-memo bug.
TEST(Sharding, DelayChangeInvalidatesHorizonMemos) {
  GpuConfig cfg;
  cfg.scheme.profile_window = 64;
  cfg.scheme.windows_per_restart = 2;
  cfg.scheme.delay_step = 256;
  cfg.scheme.max_delay = 2048;
  cfg.validate();
  const AddressMapper mapper(cfg);
  const core::SchemeSpec spec =
      core::make_scheme_spec(core::SchemeKind::kDynDms, cfg.scheme);

  GpuConfig cfg_off = cfg;
  cfg_off.fast_path = false;

  auto make = [&](const GpuConfig& c) {
    std::unique_ptr<Scheduler> sched = core::make_scheduler(c, spec);
    return std::make_unique<MemoryController>(c, 0, mapper, std::move(sched),
                                              RowPolicy::kOpenRow);
  };
  auto fast = make(cfg);
  auto slow = make(cfg_off);

  // A steady precise row-miss stream (every request a fresh row) keeps banks
  // age-gated almost continuously, so delay edges land mid-gate.
  RequestId next_id = 1;
  std::uint32_t row = 1;
  Cycle now = 0;
  for (; now < 6000; ++now) {
    if (now % 37 == 0) {
      MemRequest r;
      r.id = next_id++;
      r.line_addr = mapper.compose(0, /*bank=*/row % 4, /*row=*/row, 0);
      r.kind = AccessKind::kRead;
      ++row;
      fast->enqueue(r, now);
      slow->enqueue(r, now);
    }
    fast->tick(now);
    slow->tick(now);
    while (auto rep = fast->pop_reply(now)) {
    }
    while (auto rep = slow->pop_reply(now)) {
    }
    ASSERT_EQ(fast->reads_served(), slow->reads_served()) << "cycle " << now;
    ASSERT_EQ(fast->channel().activations(), slow->channel().activations())
        << "cycle " << now;
  }
  fast->finalize();
  slow->finalize();
  EXPECT_GT(fast->reads_served(), 0u);
  EXPECT_EQ(fast->read_latency().count(), slow->read_latency().count());
  EXPECT_DOUBLE_EQ(fast->read_latency().mean(), slow->read_latency().mean());
}

}  // namespace
}  // namespace lazydram
