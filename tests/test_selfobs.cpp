// Self-observability tests: the wall-clock zone profiler (SelfProfiler /
// SelfZone), the crash flight recorder (ring wrap, cross-channel merge
// order, dump-on-strict-violation, dump-on-assert), the live heartbeat, and
// the layer's core contract — arming all of it changes no simulation output
// byte (FlightRecorder.OnIsBitIdentical).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/mode.hpp"
#include "common/assert.hpp"
#include "common/config.hpp"
#include "core/scheme.hpp"
#include "dram/address.hpp"
#include "mem/pending_queue.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/selfprof.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/registry.hpp"

namespace lazydram {
namespace {

using telemetry::FlightRecorder;
using telemetry::SelfProfiler;
using telemetry::SelfZone;
using telemetry::TraceEvent;

// ---------------------------------------------------------------------------
// SelfProfiler
// ---------------------------------------------------------------------------

const telemetry::SelfZoneNode* find_zone(const SelfProfiler::Snapshot& snap,
                                         const std::string& name) {
  for (const telemetry::SelfZoneNode& z : snap.zones)
    if (z.name == name && z.count > 0) return &z;
  return nullptr;
}

TEST(SelfProf, ZoneTreeAggregatesByPath) {
  SelfProfiler::instance().reset();
  SelfProfiler::set_enabled(true);
  {
    SelfZone outer("t.outer");
    for (int i = 0; i < 3; ++i) {
      SelfZone inner("t.inner");
    }
  }
  SelfProfiler::set_enabled(false);

  const SelfProfiler::Snapshot snap = SelfProfiler::instance().snapshot();
  const telemetry::SelfZoneNode* outer = find_zone(snap, "t.outer");
  const telemetry::SelfZoneNode* inner = find_zone(snap, "t.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 3u);
  EXPECT_EQ(inner->depth, outer->depth + 1);
  EXPECT_GE(outer->inclusive_seconds, inner->inclusive_seconds);
  EXPECT_GE(outer->inclusive_seconds, outer->exclusive_seconds);
  EXPECT_GE(inner->exclusive_seconds, 0.0);

  // The per-thread timeline must hold the 4 strictly-nesting B/E pairs.
  std::size_t events = 0;
  for (const telemetry::SelfThreadTimeline& tl : snap.timelines) {
    events += tl.events.size();
    EXPECT_EQ(tl.dropped_zones, 0u);
  }
  EXPECT_EQ(events, 8u);
}

TEST(SelfProf, DisabledZonesRecordNothing) {
  SelfProfiler::instance().reset();
  SelfProfiler::set_enabled(false);
  {
    SelfZone z("t.never");
  }
  const SelfProfiler::Snapshot snap = SelfProfiler::instance().snapshot();
  EXPECT_EQ(find_zone(snap, "t.never"), nullptr);
  for (const telemetry::SelfThreadTimeline& tl : snap.timelines)
    EXPECT_TRUE(tl.events.empty());
}

TEST(SelfProf, EarlyCloseIsIdempotent) {
  SelfProfiler::instance().reset();
  SelfProfiler::set_enabled(true);
  {
    SelfZone z("t.close");
    z.close();
    z.close();  // Second close must be a no-op, destructor a third.
  }
  SelfProfiler::set_enabled(false);
  const SelfProfiler::Snapshot snap = SelfProfiler::instance().snapshot();
  const telemetry::SelfZoneNode* z = find_zone(snap, "t.close");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->count, 1u);
}

// ---------------------------------------------------------------------------
// FlightRecorder rings
// ---------------------------------------------------------------------------

TraceEvent act(Cycle cycle, ChannelId ch, std::uint64_t row) {
  TraceEvent e;
  e.kind = telemetry::EventKind::kRowActivate;
  e.cycle = cycle;
  e.channel = ch;
  e.bank = 0;
  e.a = row;
  return e;
}

TEST(FlightRecorder, RingKeepsLastKAcrossBothWrapBoundaries) {
  FlightRecorder rec(4);

  // Exactly full, no wrap yet: arrival order preserved.
  for (Cycle c = 1; c <= 4; ++c) rec.record(act(c, 0, c));
  std::vector<TraceEvent> got = rec.ordered_events();
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(got[i].cycle, i + 1);

  // One past full: the oldest event falls off, order still oldest-first.
  rec.record(act(5, 0, 5));
  got = rec.ordered_events();
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(got[i].cycle, i + 2);
  EXPECT_EQ(rec.recorded(), 5u);

  // Far past full (two whole laps): still the last 4, still in order.
  for (Cycle c = 6; c <= 13; ++c) rec.record(act(c, 0, c));
  got = rec.ordered_events();
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(got[i].cycle, i + 10);
}

TEST(FlightRecorder, MergesChannelsInCycleChannelOrder) {
  FlightRecorder rec(8);
  rec.record(act(10, 1, 0));
  rec.record(act(10, 0, 0));
  rec.record(act(5, 2, 0));
  rec.record(act(10, 0, 1));  // Same (cycle, channel): arrival order holds.

  const std::vector<TraceEvent> got = rec.ordered_events();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].cycle, 5u);
  EXPECT_EQ(got[0].channel, 2u);
  EXPECT_EQ(got[1].cycle, 10u);
  EXPECT_EQ(got[1].channel, 0u);
  EXPECT_EQ(got[1].a, 0u);
  EXPECT_EQ(got[2].channel, 0u);
  EXPECT_EQ(got[2].a, 1u);
  EXPECT_EQ(got[3].channel, 1u);
}

TEST(FlightRecorder, ZeroDepthIsInert) {
  FlightRecorder rec(0);
  rec.record(act(1, 0, 0));
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.ordered_events().empty());
}

// ---------------------------------------------------------------------------
// Dump paths
// ---------------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// A strict-checker violation must leave the flight dump behind: the dump
// file names the violation and carries the ring's events — the history that
// led up to the violating command — in (cycle, channel) order, with the
// violation's own kCheckViolation event last.
TEST(FlightRecorder, StrictViolationDumpsRings) {
  const std::string dump_path = ::testing::TempDir() + "selfobs_flight.json";
  std::remove(dump_path.c_str());
  ASSERT_EQ(::setenv("LAZYDRAM_FLIGHT_DUMP", dump_path.c_str(), 1), 0);

  {
    telemetry::Telemetry tele;
    tele.enable_flight(8);

    GpuConfig cfg;
    check::CheckerOptions opts;
    opts.mode = check::CheckMode::kStrict;
    check::ProtocolChecker checker(cfg, 0, opts);
    checker.set_tracer(&tele.tracer());

    // Pre-violation history the dump should preserve.
    tele.tracer().row_activate(3, 0, 0, 7);
    tele.tracer().row_activate(4, 0, 1, 9);

    // RD on a closed bank: a bank-state violation, throws in strict mode
    // (and dumps the rings on the way out).
    PendingQueue queue(cfg.pending_queue_size, cfg.banks_per_channel);
    EXPECT_THROW(checker.on_command(dram::CommandKind::kRead, 0, 1, 10, queue),
                 check::ViolationError);
  }

  const std::string dump = read_file(dump_path);
  ASSERT_FALSE(dump.empty()) << "no flight dump at " << dump_path;
  EXPECT_NE(dump.find("protocol_violation"), std::string::npos);
  const std::size_t first_act = dump.find("\"type\":\"act\"");
  const std::size_t violation = dump.find("\"type\":\"check\"");
  ASSERT_NE(first_act, std::string::npos);
  ASSERT_NE(violation, std::string::npos);
  // History precedes the violating command's event: (cycle, channel) order.
  EXPECT_LT(first_act, violation);

  std::remove(dump_path.c_str());
  ::unsetenv("LAZYDRAM_FLIGHT_DUMP");
}

TEST(FlightRecorderDeathTest, AssertFailureDumpsRings) {
  const std::string dump_path = ::testing::TempDir() + "selfobs_assert_flight.json";
  ASSERT_EQ(::setenv("LAZYDRAM_FLIGHT_DUMP", dump_path.c_str(), 1), 0);
  FlightRecorder rec(4);
  rec.record(act(1, 0, 42));
  EXPECT_DEATH(LD_ASSERT_MSG(false, "selfobs death test"), "flight dump");
  ::unsetenv("LAZYDRAM_FLIGHT_DUMP");
  std::remove(dump_path.c_str());
}

// ---------------------------------------------------------------------------
// The core contract: arming the whole self-observability layer — profiler,
// heartbeat (armed but silent), flight recorder — changes no simulation
// output byte, for the legacy loop, the serial wheel and four lanes.
// ---------------------------------------------------------------------------

// Excise one "key": {...} object (possibly holding nested containers) from a
// JSON string by brace/bracket balancing. The self_profile section carries
// wall times, so it legitimately differs run to run.
std::string strip_section(std::string json, const std::string& key) {
  const std::size_t at = json.find("\"" + key + "\"");
  if (at == std::string::npos) return json;
  std::size_t open = json.find('{', at);
  if (open == std::string::npos) return json;
  int depth = 0;
  std::size_t end = open;
  for (; end < json.size(); ++end) {
    if (json[end] == '{' || json[end] == '[') ++depth;
    if (json[end] == '}' || json[end] == ']') {
      if (--depth == 0) break;
    }
  }
  if (end >= json.size()) return json;
  if (end + 1 < json.size() && json[end + 1] == ',') ++end;
  json.erase(at, end - at + 1);
  return json;
}

struct RunFiles {
  sim::RunMetrics metrics;
  std::string trace;
  std::string report;
};

RunFiles run_with_selfobs(const workloads::Workload& wl, unsigned shard, bool on,
                          const std::string& tag) {
  const std::string base = ::testing::TempDir() + "selfobs_" + tag;
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, config.gpu.scheme);
  config.compute_error = false;
  config.ignore_env_outputs = true;
  config.gpu.shard_threads = shard;
  config.trace_path = base + ".trace.jsonl";
  config.json_report_path = base + ".report.json";
  if (on) {
    config.gpu.self_profile = true;
    config.gpu.heartbeat_seconds = 3600.0;  // Armed but silent.
    config.flight_depth =
        static_cast<std::int64_t>(FlightRecorder::kDefaultDepth);
  } else {
    config.flight_depth = 0;
  }

  RunFiles out;
  out.metrics = sim::simulate(wl, config);
  out.trace = read_file(config.trace_path);
  out.report = read_file(config.json_report_path);
  std::remove(config.trace_path.c_str());
  std::remove(config.json_report_path.c_str());
  return out;
}

TEST(FlightRecorder, OnIsBitIdentical) {
  const auto wl = workloads::make_workload("SCP");
  ASSERT_NE(wl, nullptr);

  for (const unsigned shard : {0u, 1u, 4u}) {
    SCOPED_TRACE("shard " + std::to_string(shard));
    const std::string tag = std::to_string(shard);

    SelfProfiler::set_enabled(false);
    const RunFiles off = run_with_selfobs(*wl, shard, false, tag + "_off");
    const RunFiles on = run_with_selfobs(*wl, shard, true, tag + "_on");
    SelfProfiler::set_enabled(false);
    SelfProfiler::instance().reset();

    ASSERT_TRUE(off.metrics.finished);
    EXPECT_EQ(off.metrics.core_cycles, on.metrics.core_cycles);
    ASSERT_FALSE(off.trace.empty());
    EXPECT_EQ(off.trace, on.trace);

    // Reports differ only in the wall-clock sections: "profile" (both runs)
    // and "self_profile" (the armed run only).
    const std::string off_rep =
        strip_section(strip_section(off.report, "profile"), "self_profile");
    const std::string on_rep =
        strip_section(strip_section(on.report, "profile"), "self_profile");
    ASSERT_FALSE(off_rep.empty());
    EXPECT_EQ(off_rep, on_rep);
    // The armed run actually produced the section it is allowed to add.
    EXPECT_EQ(off.report.find("\"self_profile\""), std::string::npos);
    EXPECT_NE(on.report.find("\"self_profile\""), std::string::npos);
    EXPECT_NE(on.report.find("\"barrier_stall_seconds\""), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Heartbeat
// ---------------------------------------------------------------------------

TEST(Heartbeat, EmitsRunHealthLines) {
  const auto wl = workloads::make_workload("SCP");
  ASSERT_NE(wl, nullptr);
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, config.gpu.scheme);
  config.compute_error = false;
  config.ignore_env_outputs = true;
  config.gpu.shard_threads = 4;
  config.gpu.heartbeat_seconds = 1e-9;  // Every deadline check fires.
  // The per-lane utilization segment is gated on the self-profiler being
  // armed (lane timing is attribution work, not free).
  config.gpu.self_profile = true;

  ::testing::internal::CaptureStderr();
  const sim::RunMetrics m = sim::simulate(*wl, config);
  const std::string err = ::testing::internal::GetCapturedStderr();
  telemetry::SelfProfiler::set_enabled(false);
  telemetry::SelfProfiler::instance().reset();
  ASSERT_TRUE(m.finished);
  EXPECT_NE(err.find("hb core="), std::string::npos);
  EXPECT_NE(err.find("Mcyc/s"), std::string::npos);
  EXPECT_NE(err.find("lanes="), std::string::npos);
}

}  // namespace
}  // namespace lazydram
