// State-based power-accounting tests: the residency-partition identity, the
// analytic refresh/background terms, per-bank vs channel reconciliation, the
// checker's independent residency witness, window telescoping, and the
// accounting-off bit-identity guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "check/checker.hpp"
#include "common/config.hpp"
#include "dram/address.hpp"
#include "dram/channel.hpp"
#include "dram/power.hpp"
#include "core/scheduler_registry.hpp"
#include "mem/controller.hpp"
#include "sim/simulator.hpp"
#include "workloads/registry.hpp"

namespace lazydram {
namespace {

using dram::PowerAccountant;
using dram::PowerBreakdown;

GpuConfig test_config() {
  GpuConfig cfg;
  cfg.policy.name = "frfcfs";
  cfg.validate();
  return cfg;
}

// Residency identity on a hand-driven state machine: per bank, the active
// and precharge residencies partition elapsed cycles exactly, and the O(1)
// channel aggregate equals the per-bank sum.
TEST(PowerAccounting, ResidencyPartitionIdentity) {
  const EnergyParams p;
  PowerAccountant acc(p, /*num_banks=*/4);
  acc.on_activate(0, 10);
  acc.on_activate(1, 20);
  acc.on_precharge(0, 50);
  acc.finalize(/*end=*/100);

  EXPECT_EQ(acc.bank_active_cycles(0, 100), 40u);
  EXPECT_EQ(acc.bank_precharge_cycles(0, 100), 60u);
  EXPECT_EQ(acc.bank_active_cycles(1, 100), 80u);
  EXPECT_EQ(acc.bank_precharge_cycles(1, 100), 20u);
  std::uint64_t active_sum = 0;
  for (BankId b = 0; b < 4; ++b) {
    EXPECT_EQ(acc.bank_active_cycles(b, 100) + acc.bank_precharge_cycles(b, 100), 100u);
    active_sum += acc.bank_active_cycles(b, 100);
  }
  EXPECT_EQ(active_sum, 120u);
  EXPECT_EQ(acc.channel_active_cycles(), 120u);
}

TEST(PowerAccounting, RefreshEventsFollowTrefi) {
  EnergyParams p;
  p.trefi_cycles = 3600;
  PowerAccountant acc(p, 1);
  EXPECT_EQ(acc.refresh_events(3599), 0u);
  EXPECT_EQ(acc.refresh_events(3600), 1u);
  EXPECT_EQ(acc.refresh_events(7200), 2u);
  p.trefi_cycles = 0;  // 0 disables refresh entirely.
  PowerAccountant off(p, 1);
  EXPECT_EQ(off.refresh_events(1u << 20), 0u);
}

// Channel-level hand arithmetic: one ACT + RD on bank 0, closed at a known
// cycle, finalized at a known end. Every component of the breakdown is
// predicted exactly; finalize_power also runs the EnergyMeter oracle
// reconciliation internally.
TEST(PowerAccounting, ChannelEnergyMatchesHandArithmetic) {
  const GpuConfig cfg = test_config();
  const EnergyParams& p = cfg.energy;
  dram::DramChannel ch(cfg, 0);
  ch.issue(dram::CommandKind::kActivate, 0, 1, 0);
  ch.issue(dram::CommandKind::kRead, 0, 1, cfg.timing.tRCD);
  ch.issue(dram::CommandKind::kPrecharge, 0, kInvalidRow, 60);
  ch.flush_open_rows();
  ch.finalize_power(/*end=*/100);

  const PowerAccountant* pw = ch.power();
  ASSERT_NE(pw, nullptr);
  EXPECT_EQ(pw->bank_active_cycles(0, 100), 60u);
  EXPECT_EQ(pw->bank_precharge_cycles(0, 100), 40u);

  const PowerBreakdown e = pw->channel_energy();
  const double banks = cfg.banks_per_channel;
  EXPECT_DOUBLE_EQ(e.row_nj, p.row_energy_per_act_nj());
  EXPECT_DOUBLE_EQ(e.access_nj, p.rd_access_nj);
  EXPECT_DOUBLE_EQ(e.background_nj, 60.0 * p.act_stby_nj_per_cycle +
                                        (banks * 100.0 - 60.0) * p.pre_stby_nj_per_cycle);
  EXPECT_DOUBLE_EQ(e.refresh_nj, 0.0);  // 100 cycles < tREFI: no burst yet.
  EXPECT_DOUBLE_EQ(e.total_nj(), e.row_nj + e.access_nj + e.background_nj);
}

class PowerControllerTest : public ::testing::Test {
 protected:
  PowerControllerTest()
      : mapper_(cfg_),
        mc_(cfg_, /*channel=*/0, mapper_, core::make_scheduler(cfg_, core::SchemeSpec{})) {}

  MemRequest request(BankId bank, RowId row, std::uint32_t col,
                     AccessKind kind = AccessKind::kRead) {
    MemRequest r;
    r.id = next_id_++;
    r.line_addr = mapper_.compose(0, bank, row, col * kLineBytes);
    r.kind = kind;
    return r;
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      mc_.tick(now_);
      while (mc_.pop_reply(now_)) {
      }
      ++now_;
    }
  }

  GpuConfig cfg_ = test_config();
  AddressMapper mapper_;
  MemoryController mc_;
  Cycle now_ = 0;
  RequestId next_id_ = 1;
};

// An idle controller accrues pure precharge-standby background energy plus
// the analytic refresh term; a loaded one accrues strictly more background
// (active-standby exceeds precharge-standby) on the same formulae.
TEST_F(PowerControllerTest, RefreshAndBackgroundIdleVsLoaded) {
  const EnergyParams& p = cfg_.energy;
  const Cycle cycles = 2 * p.trefi_cycles;  // Exactly two refresh bursts.
  run(cycles);
  mc_.finalize();

  const PowerAccountant* pw = mc_.channel().power();
  ASSERT_NE(pw, nullptr);
  const Cycle end = pw->end_cycle();
  EXPECT_EQ(end, cycles);
  EXPECT_EQ(pw->channel_active_cycles(), 0u);  // Never a single open row.
  const PowerBreakdown idle = pw->channel_energy();
  const double banks = cfg_.banks_per_channel;
  EXPECT_DOUBLE_EQ(idle.background_nj,
                   banks * static_cast<double>(end) * p.pre_stby_nj_per_cycle);
  EXPECT_DOUBLE_EQ(idle.refresh_nj, 2.0 * banks * p.ref_per_bank_nj);
  EXPECT_DOUBLE_EQ(idle.row_nj, 0.0);
  EXPECT_DOUBLE_EQ(idle.access_nj, 0.0);

  // Loaded run of the same length in a fresh controller.
  MemoryController loaded(cfg_, 0, mapper_, core::make_scheduler(cfg_, core::SchemeSpec{}));
  Cycle t = 0;
  for (BankId b = 0; b < 8; ++b)
    for (std::uint32_t c = 0; c < 8; ++c) loaded.enqueue(request(b, 1 + c / 4, c), t);
  for (; t < cycles; ++t) {
    loaded.tick(t);
    while (loaded.pop_reply(t)) {
    }
  }
  loaded.finalize();
  const PowerAccountant* lw = loaded.channel().power();
  ASSERT_NE(lw, nullptr);
  EXPECT_GT(lw->channel_active_cycles(), 0u);
  const PowerBreakdown busy = lw->channel_energy();
  EXPECT_GT(busy.background_nj, idle.background_nj);
  EXPECT_DOUBLE_EQ(busy.refresh_nj, idle.refresh_nj);  // Same elapsed time.
}

// The protocol checker's shadow banks time the same open/close transitions
// from an independently-maintained state machine; its per-bank active
// residencies must agree with the accountant exactly.
TEST_F(PowerControllerTest, ResidenciesMatchCheckerShadow) {
  check::CheckerOptions opts;
  opts.mode = check::CheckMode::kStrict;
  check::ProtocolChecker ck(cfg_, 0, opts);
  mc_.set_checker(&ck);

  for (BankId b = 0; b < 8; ++b) {
    for (std::uint32_t c = 0; c < 4; ++c) mc_.enqueue(request(b, 2, c), now_);
    mc_.enqueue(request(b, 3, 0, AccessKind::kWrite), now_);  // Row conflict.
  }
  run(4000);
  EXPECT_TRUE(mc_.idle());
  mc_.finalize();

  const PowerAccountant* pw = mc_.channel().power();
  ASSERT_NE(pw, nullptr);
  const Cycle end = pw->end_cycle();
  EXPECT_EQ(ck.violation_count(), 0u);
  std::uint64_t total = 0;
  for (BankId b = 0; b < cfg_.banks_per_channel; ++b) {
    EXPECT_EQ(ck.shadow_active_cycles(b, end), pw->bank_active_cycles(b, end))
        << "bank " << static_cast<int>(b);
    total += pw->bank_active_cycles(b, end);
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(pw->channel_active_cycles(), total);
}

// Per-window component energies are cumulative-probe differences, so their
// sums telescope to the accountant's end-of-run totals exactly (same doubles
// up to summation rounding).
TEST_F(PowerControllerTest, WindowEnergiesTelescopeToRunTotals) {
  mc_.enable_window_sampling(/*window=*/256, /*tracer=*/nullptr);
  for (BankId b = 0; b < 8; ++b)
    for (std::uint32_t c = 0; c < 6; ++c) mc_.enqueue(request(b, c % 3, c), now_);
  run(3000);
  mc_.finalize();

  const PowerAccountant* pw = mc_.channel().power();
  ASSERT_NE(pw, nullptr);
  const PowerBreakdown total = pw->channel_energy();
  double row = 0, access = 0, background = 0, refresh = 0, energy = 0, bank_sum = 0;
  ASSERT_NE(mc_.sampler(), nullptr);
  for (const telemetry::WindowSample& w : mc_.sampler()->samples()) {
    row += w.energy_row_nj;
    access += w.energy_access_nj;
    background += w.energy_background_nj;
    refresh += w.energy_refresh_nj;
    energy += w.energy_nj;
    for (const telemetry::BankWindowSample& b : w.banks) bank_sum += b.energy_nj;
  }
  const double tol = 1e-9 * total.total_nj();
  EXPECT_NEAR(row, total.row_nj, tol);
  EXPECT_NEAR(access, total.access_nj, tol);
  EXPECT_NEAR(background, total.background_nj, tol);
  EXPECT_NEAR(refresh, total.refresh_nj, tol);
  EXPECT_NEAR(energy, total.total_nj(), tol);
  EXPECT_NEAR(bank_sum, total.total_nj(), tol);
  EXPECT_GT(background, 0.0);
}

// End-to-end: per-bank energies folded into RunMetrics sum back to the
// channel totals across schemes, and the derived share/power fields are
// sane. (The full 3-workload x 7-scheme matrix runs under the benches; the
// accountant LD_ASSERTs its identities inside every one of those runs.)
TEST(PowerAccounting, PerBankSumsMatchChannelTotals) {
  for (const core::SchemeKind kind :
       {core::SchemeKind::kBaseline, core::SchemeKind::kStaticAms,
        core::SchemeKind::kDynCombo}) {
    const auto wl = workloads::make_workload("3MM");
    ASSERT_NE(wl, nullptr);
    sim::RunConfig rc;
    rc.spec = core::make_scheme_spec(kind, rc.gpu.scheme);
    rc.compute_error = false;
    const sim::RunMetrics m = sim::simulate(*wl, rc);
    ASSERT_TRUE(m.finished);

    ASSERT_EQ(m.bank_energy_nj.size(), rc.gpu.banks_per_channel);
    const double bank_sum =
        std::accumulate(m.bank_energy_nj.begin(), m.bank_energy_nj.end(), 0.0);
    EXPECT_NEAR(bank_sum, m.total_energy_nj, 1e-9 * m.total_energy_nj);
    EXPECT_DOUBLE_EQ(m.total_energy_nj, m.row_energy_nj + m.access_energy_nj +
                                            m.background_energy_nj + m.refresh_energy_nj);
    EXPECT_GT(m.background_energy_nj, 0.0);
    EXPECT_GT(m.refresh_energy_nj, 0.0);
    EXPECT_GT(m.measured_row_share, 0.0);
    EXPECT_LT(m.measured_row_share, 1.0);
    EXPECT_GT(m.avg_power_w, 0.0);
  }
}

// The accountant is strictly passive: turning it off must not change a
// single simulated result, only remove the energy observability (same
// discipline as Simulator.FastPathOffMatchesFastPathOn).
TEST(PowerAccounting, OffIsBitIdentical) {
  const auto wl = workloads::make_workload("SCP");
  ASSERT_NE(wl, nullptr);
  sim::RunConfig on;
  on.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, on.gpu.scheme);
  on.compute_error = false;
  sim::RunConfig off = on;
  on.gpu.power_accounting = true;
  off.gpu.power_accounting = false;

  const sim::RunMetrics a = sim::simulate(*wl, on);
  const sim::RunMetrics b = sim::simulate(*wl, off);
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.core_cycles, b.core_cycles);
  EXPECT_EQ(a.mem_cycles, b.mem_cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_DOUBLE_EQ(a.avg_rbl, b.avg_rbl);
  EXPECT_DOUBLE_EQ(a.bwutil, b.bwutil);
  // Row and access energies come from the same command counts either way.
  EXPECT_DOUBLE_EQ(a.row_energy_nj, b.row_energy_nj);
  EXPECT_DOUBLE_EQ(a.access_energy_nj, b.access_energy_nj);
  // Off: the state-based terms vanish and the total degrades to row+access.
  EXPECT_DOUBLE_EQ(b.background_energy_nj, 0.0);
  EXPECT_DOUBLE_EQ(b.refresh_energy_nj, 0.0);
  EXPECT_DOUBLE_EQ(b.measured_row_share, 0.0);
  EXPECT_DOUBLE_EQ(b.avg_power_w, 0.0);
  EXPECT_TRUE(b.bank_energy_nj.empty());
  EXPECT_DOUBLE_EQ(b.total_energy_nj, b.row_energy_nj + b.access_energy_nj);
  EXPECT_GT(a.background_energy_nj, 0.0);
  EXPECT_GT(a.total_energy_nj, b.total_energy_nj);
}

}  // namespace
}  // namespace lazydram
