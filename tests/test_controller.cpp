// MemoryController + FR-FCFS integration tests: drive the controller
// directly with synthetic requests (no GPU core side) and verify row-buffer
// behaviour, FR-FCFS ordering, service conservation and RBL accounting.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "core/scheduler_registry.hpp"
#include "dram/address.hpp"
#include "mem/controller.hpp"

namespace lazydram {
namespace {

GpuConfig test_config() {
  GpuConfig cfg;
  cfg.policy.name = "frfcfs";
  cfg.validate();
  return cfg;
}

class ControllerHarness {
 public:
  ControllerHarness()
      : cfg_(test_config()),
        mapper_(cfg_),
        mc_(cfg_, /*channel=*/0, mapper_, core::make_scheduler(cfg_, core::SchemeSpec{})) {}

  /// Builds a read request to (bank, row, col) on channel 0.
  MemRequest read_at(BankId bank, RowId row, std::uint32_t col_line) {
    MemRequest r;
    r.id = next_id_++;
    r.line_addr = mapper_.compose(0, bank, row, col_line * kLineBytes);
    r.kind = AccessKind::kRead;
    return r;
  }

  /// Runs `cycles` memory cycles.
  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      mc_.tick(now_);
      while (mc_.pop_reply(now_)) ++replies_;
      ++now_;
    }
  }

  GpuConfig cfg_;
  AddressMapper mapper_;
  MemoryController mc_;
  Cycle now_ = 0;
  RequestId next_id_ = 1;
  unsigned replies_ = 0;
};

TEST(MemoryController, SameRowRequestsShareOneActivation) {
  ControllerHarness h;
  // Eight reads to distinct columns of one row, enqueued together.
  for (std::uint32_t c = 0; c < 8; ++c) h.mc_.enqueue(h.read_at(2, 5, c), h.now_);
  h.run(2000);
  EXPECT_EQ(h.replies_, 8u);
  EXPECT_TRUE(h.mc_.idle());
  h.mc_.finalize();
  EXPECT_EQ(h.mc_.channel().activations(), 1u);
  EXPECT_EQ(h.mc_.channel().rbl_histogram().at(8), 1u);
}

TEST(MemoryController, RowHitArrivingDuringServiceIsMerged) {
  ControllerHarness h;
  h.mc_.enqueue(h.read_at(0, 7, 0), h.now_);
  h.run(30);  // Row 7 is activated and the first read issues.
  h.mc_.enqueue(h.read_at(0, 7, 1), h.now_);  // Arrives while row 7 is open.
  h.run(2000);
  h.mc_.finalize();
  EXPECT_EQ(h.replies_, 2u);
  EXPECT_EQ(h.mc_.channel().activations(), 1u);
}

TEST(MemoryController, ConflictingRowsEachActivate) {
  ControllerHarness h;
  h.mc_.enqueue(h.read_at(3, 1, 0), h.now_);
  h.mc_.enqueue(h.read_at(3, 2, 0), h.now_);
  h.mc_.enqueue(h.read_at(3, 1, 1), h.now_);  // Same row as the first.
  h.run(3000);
  h.mc_.finalize();
  EXPECT_EQ(h.replies_, 3u);
  // FR-FCFS serves both row-1 requests before opening row 2.
  EXPECT_EQ(h.mc_.channel().activations(), 2u);
  EXPECT_EQ(h.mc_.channel().rbl_histogram().at(2), 1u);
  EXPECT_EQ(h.mc_.channel().rbl_histogram().at(1), 1u);
}

TEST(MemoryController, BanksServeInParallel) {
  ControllerHarness h;
  for (BankId b = 0; b < 4; ++b)
    for (std::uint32_t c = 0; c < 4; ++c) h.mc_.enqueue(h.read_at(b, 9, c), h.now_);
  h.run(4000);
  h.mc_.finalize();
  EXPECT_EQ(h.replies_, 16u);
  EXPECT_EQ(h.mc_.channel().activations(), 4u);  // One per bank.
}

TEST(MemoryController, WritesAreServedAndCounted) {
  ControllerHarness h;
  MemRequest w = h.read_at(1, 3, 0);
  w.kind = AccessKind::kWrite;
  h.mc_.enqueue(w, h.now_);
  h.mc_.enqueue(h.read_at(1, 3, 1), h.now_);
  h.run(3000);
  h.mc_.finalize();
  EXPECT_EQ(h.mc_.writes_served(), 1u);
  EXPECT_EQ(h.mc_.reads_served(), 1u);
  EXPECT_EQ(h.mc_.channel().activations(), 1u);
  // The row served a write: it must not appear in the read-only histogram.
  EXPECT_EQ(h.mc_.channel().rbl_readonly_histogram().total(), 0u);
}

TEST(MemoryController, StaggeredSameRowPairMergesWithinOpenWindow) {
  // Two same-row reads arriving 4 cycles apart must share one activation:
  // the open-row policy keeps the row open while its second request arrives.
  ControllerHarness h;
  h.mc_.enqueue(h.read_at(5, 11, 0), h.now_);
  h.run(4);
  h.mc_.enqueue(h.read_at(5, 11, 1), h.now_);
  h.run(2000);
  h.mc_.finalize();
  EXPECT_EQ(h.replies_, 2u);
  EXPECT_EQ(h.mc_.channel().activations(), 1u);
}

TEST(MemoryController, InterleavedStreamsKeepPerBankLocality) {
  // Two warps stream different rows of different banks, interleaved in
  // arrival order. Per-bank FR-FCFS must still serve each row's group with
  // one activation each.
  ControllerHarness h;
  for (std::uint32_t c = 0; c < 6; ++c) {
    h.mc_.enqueue(h.read_at(0, 4, c), h.now_);
    h.mc_.enqueue(h.read_at(1, 8, c), h.now_);
  }
  h.run(4000);
  h.mc_.finalize();
  EXPECT_EQ(h.replies_, 12u);
  EXPECT_EQ(h.mc_.channel().activations(), 2u);
}

}  // namespace
}  // namespace lazydram
