// Controller-level integration of the lazy schemes: DMS gating observed at
// the command engine, AMS drops flowing through the reply path, closed-row
// ablation behaviour and reply ordering.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "core/lazy_scheduler.hpp"
#include "core/scheduler_registry.hpp"
#include "dram/address.hpp"
#include "mem/controller.hpp"
#include "telemetry/trace.hpp"

namespace lazydram {
namespace {

/// In-memory trace sink for asserting on emitted event sequences.
struct CaptureSink final : telemetry::TraceSink {
  std::vector<telemetry::TraceEvent> events;
  void on_event(const telemetry::TraceEvent& e) override { events.push_back(e); }
  void on_window(const telemetry::WindowSample&) override {}
};

class SchemeControllerTest : public ::testing::Test {
 protected:
  SchemeControllerTest() : mapper_(cfg_) { cfg_.validate(); }

  std::unique_ptr<MemoryController> make(const core::SchemeSpec& spec,
                                         RowPolicy policy = RowPolicy::kOpenRow,
                                         bool ams_ready = true) {
    std::unique_ptr<Scheduler> sched = core::make_scheduler(cfg_, spec);
    lazy_ = dynamic_cast<core::LazyScheduler*>(sched.get());
    auto mc = std::make_unique<MemoryController>(cfg_, 0, mapper_, std::move(sched),
                                                 policy);
    if (ams_ready) lazy_->set_ams_ready(true);
    return mc;
  }

  MemRequest read_at(BankId bank, RowId row, std::uint32_t col, bool approx = true) {
    MemRequest r;
    r.id = next_id_++;
    r.line_addr = mapper_.compose(0, bank, row, col * kLineBytes);
    r.kind = AccessKind::kRead;
    r.approximable = approx;
    return r;
  }

  unsigned drain(MemoryController& mc, Cycle until, unsigned* approx_replies = nullptr) {
    unsigned replies = 0;
    for (; now_ < until; ++now_) {
      mc.tick(now_);
      while (auto r = mc.pop_reply(now_)) {
        ++replies;
        if (approx_replies != nullptr && r->approximate) ++*approx_replies;
      }
    }
    return replies;
  }

  GpuConfig cfg_;
  AddressMapper mapper_;
  core::LazyScheduler* lazy_ = nullptr;
  RequestId next_id_ = 1;
  Cycle now_ = 0;
};

TEST_F(SchemeControllerTest, DmsDelaysFirstActivation) {
  // With DMS(200), a lone row-miss request is served only after aging.
  auto mc = make(core::make_static_dms_spec(200, cfg_.scheme));
  mc->enqueue(read_at(0, 5, 0), now_);
  drain(*mc, 199);
  EXPECT_EQ(mc->channel().activations(), 0u);  // Still gated.
  drain(*mc, 400);
  EXPECT_EQ(mc->channel().activations(), 1u);
  EXPECT_EQ(mc->reads_served(), 1u);
}

TEST_F(SchemeControllerTest, DmsDelayMergesLateArrivals) {
  auto mc = make(core::make_static_dms_spec(500, cfg_.scheme));
  mc->enqueue(read_at(0, 5, 0), now_);
  drain(*mc, 300);
  mc->enqueue(read_at(0, 5, 1), now_);  // Arrives while the first is gated.
  drain(*mc, 1500);
  mc->finalize();
  EXPECT_EQ(mc->reads_served(), 2u);
  EXPECT_EQ(mc->channel().activations(), 1u);  // One row opening served both.
}

TEST_F(SchemeControllerTest, AmsDropsGoThroughReplyPathMarkedApproximate) {
  auto mc = make(core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme));
  mc->enqueue(read_at(1, 7, 0), now_);
  unsigned approx = 0;
  const unsigned replies = drain(*mc, 500, &approx);
  EXPECT_EQ(replies, 1u);
  EXPECT_EQ(approx, 1u);
  EXPECT_EQ(mc->reads_dropped(), 1u);
  EXPECT_EQ(mc->channel().activations(), 0u);  // Never touched DRAM.
}

TEST_F(SchemeControllerTest, AmsSkipsNonApproximableAndServesFromDram) {
  auto mc = make(core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme));
  mc->enqueue(read_at(1, 7, 0, /*approx=*/false), now_);
  unsigned approx = 0;
  const unsigned replies = drain(*mc, 500, &approx);
  EXPECT_EQ(replies, 1u);
  EXPECT_EQ(approx, 0u);
  EXPECT_EQ(mc->reads_dropped(), 0u);
  EXPECT_EQ(mc->channel().activations(), 1u);
}

TEST_F(SchemeControllerTest, AmsNotReadyServesEverything) {
  auto mc = make(core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme),
                 RowPolicy::kOpenRow, /*ams_ready=*/false);
  mc->enqueue(read_at(2, 3, 0), now_);
  drain(*mc, 500);
  EXPECT_EQ(mc->reads_dropped(), 0u);
  EXPECT_EQ(mc->reads_served(), 1u);
}

TEST_F(SchemeControllerTest, AmsDropsWholeGroupOnePerCycle) {
  auto mc = make(core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme));
  // Th_RBL = 8: a 3-request group qualifies and drains fully.
  for (std::uint32_t c = 0; c < 3; ++c) mc->enqueue(read_at(3, 9, c), now_);
  drain(*mc, 500);
  EXPECT_EQ(mc->reads_dropped(), 3u);
  EXPECT_EQ(mc->channel().activations(), 0u);
}

TEST_F(SchemeControllerTest, AmsLeavesLargeGroupsToDram) {
  auto mc = make(core::make_static_ams_spec(2, cfg_.scheme));
  for (std::uint32_t c = 0; c < 5; ++c) mc->enqueue(read_at(4, 11, c), now_);
  drain(*mc, 1000);
  // Group of 5 > Th_RBL 2: all served by DRAM with one activation.
  EXPECT_EQ(mc->reads_dropped(), 0u);
  EXPECT_EQ(mc->reads_served(), 5u);
  mc->finalize();
  EXPECT_EQ(mc->channel().activations(), 1u);
}

TEST_F(SchemeControllerTest, DropPassInterleavesConcurrentDrains) {
  // Regression: the drop pass used to scan banks from 0 every cycle, so with
  // two row groups draining concurrently the lower-numbered bank drained
  // fully while the other starved (drop order 2,2,2,5,5,5). The pass now
  // rotates its start bank past each executed drop, like the command pass's
  // round-robin, so concurrent drains interleave.
  auto mc = make(core::make_scheme_spec(core::SchemeKind::kStaticAms, cfg_.scheme));
  CaptureSink sink;
  telemetry::Tracer tracer;
  tracer.set_sink(&sink);
  mc->set_tracer(&tracer);

  // Precise filler reads keep prediction coverage far under the 10% cap so
  // every drop below is permitted (6 drops / 106 reads received = 5.7%).
  for (std::uint32_t i = 0; i < 100; ++i)
    mc->enqueue(read_at(i % 2, 1 + i / 2, i % 16, /*approx=*/false), now_);
  // Two drop-eligible row groups on different banks, enqueued back to back.
  for (std::uint32_t c = 0; c < 3; ++c) mc->enqueue(read_at(2, 7, c), now_);
  for (std::uint32_t c = 0; c < 3; ++c) mc->enqueue(read_at(5, 9, c), now_);

  drain(*mc, 500);
  EXPECT_EQ(mc->reads_dropped(), 6u);

  std::vector<std::int32_t> drop_banks;
  for (const telemetry::TraceEvent& e : sink.events)
    if (e.kind == telemetry::EventKind::kRowGroupDrop) drop_banks.push_back(e.bank);
  const std::vector<std::int32_t> interleaved{2, 5, 2, 5, 2, 5};
  EXPECT_EQ(drop_banks, interleaved);
}

TEST_F(SchemeControllerTest, ClosedRowPolicyPrechargesIdleRows) {
  core::SchemeSpec baseline;
  auto open_mc = make(baseline, RowPolicy::kOpenRow);
  open_mc->enqueue(read_at(0, 5, 0), now_);
  drain(*open_mc, 300);
  // Open-row: the row stays open after service.
  EXPECT_TRUE(open_mc->channel().bank(0).row_open());

  now_ = 0;
  auto closed_mc = make(baseline, RowPolicy::kClosedRow);
  closed_mc->enqueue(read_at(0, 5, 0), now_);
  drain(*closed_mc, 300);
  EXPECT_FALSE(closed_mc->channel().bank(0).row_open());
}

TEST_F(SchemeControllerTest, ReadLatencyAccountedFromEnqueueToData) {
  auto mc = make(core::SchemeSpec{});
  mc->enqueue(read_at(0, 1, 0), now_);
  drain(*mc, 200);
  ASSERT_EQ(mc->read_latency().count(), 1u);
  // ACT(tRCD) + RD(tCL) + burst is the minimum service time.
  const DramTiming& t = cfg_.timing;
  EXPECT_GE(mc->read_latency().mean(), t.tRCD + t.tCL + t.tBURST);
}

}  // namespace
}  // namespace lazydram
