// Sweep engine tests: the determinism guarantee (jobs=1 and jobs=8 produce
// bit-identical RunMetrics across every scheme kind), submission-order
// results, per-job failure capture, --jobs / $LAZYDRAM_JOBS resolution,
// derived telemetry paths and the merged sweep report.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/scheme.hpp"
#include "sim/sweep.hpp"

namespace lazydram {
namespace {

unsigned hw_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Keeps the engine hermetic: no env-driven telemetry files, no env-driven
/// worker count leaking in from the calling shell.
class SweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("LAZYDRAM_TRACE");
    ::unsetenv("LAZYDRAM_JSON");
    ::unsetenv("LAZYDRAM_JOBS");
  }
};

using SweepDeterminism = SweepTest;
using SweepFailures = SweepTest;
using SweepJobsConfig = SweepTest;
using SweepReport = SweepTest;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void expect_identical(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.core_cycles, b.core_cycles);
  EXPECT_EQ(a.mem_cycles, b.mem_cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.reads_received, b.reads_received);
  EXPECT_EQ(a.avg_rbl, b.avg_rbl);
  EXPECT_EQ(a.row_energy_nj, b.row_energy_nj);
  EXPECT_EQ(a.access_energy_nj, b.access_energy_nj);
  EXPECT_EQ(a.total_energy_nj, b.total_energy_nj);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.app_error, b.app_error);
  EXPECT_EQ(a.avg_delay, b.avg_delay);
  EXPECT_EQ(a.avg_th_rbl, b.avg_th_rbl);
  EXPECT_EQ(a.bwutil, b.bwutil);
  EXPECT_EQ(a.l2_hit_rate, b.l2_hit_rate);
  EXPECT_EQ(a.avg_read_latency_mem_cycles, b.avg_read_latency_mem_cycles);
  for (std::uint64_t k = 0; k <= a.rbl_hist.max_key() + 1; ++k)
    EXPECT_EQ(a.rbl_hist.at(k), b.rbl_hist.at(k)) << "rbl bucket " << k;
  for (std::uint64_t k = 0; k <= a.rbl_readonly_hist.max_key() + 1; ++k)
    EXPECT_EQ(a.rbl_readonly_hist.at(k), b.rbl_readonly_hist.at(k))
        << "read-only rbl bucket " << k;
}

/// The acceptance criterion of the sweep engine: fanning a grid out over
/// worker threads changes nothing about any individual result. One job per
/// scheme kind, run with 1 worker and with 8, compared field by field.
TEST_F(SweepDeterminism, ParallelMetricsBitIdenticalToSerialAcrossAllSchemes) {
  std::vector<sim::SweepJob> jobs;
  for (const core::SchemeKind kind : core::all_schemes()) {
    sim::SweepJob job;
    job.workload = "SCP";
    job.config.spec = core::make_scheme_spec(kind, job.config.gpu.scheme);
    job.label = "SCP|" + std::string(core::scheme_name(kind));
    jobs.push_back(job);
  }

  sim::SweepEngine serial(1);
  sim::SweepEngine parallel(8);
  const std::vector<sim::SweepResult> a = serial.run(jobs);
  const std::vector<sim::SweepResult> b = parallel.run(jobs);

  ASSERT_EQ(a.size(), jobs.size());
  ASSERT_EQ(b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Submission order is preserved regardless of completion order.
    EXPECT_EQ(a[i].label, jobs[i].label);
    EXPECT_EQ(b[i].label, jobs[i].label);
    ASSERT_TRUE(a[i].ok) << a[i].label << ": " << a[i].error;
    ASSERT_TRUE(b[i].ok) << b[i].label << ": " << b[i].error;
    expect_identical(a[i].output.metrics, b[i].output.metrics);
    // The per-channel window series is part of the guarantee too.
    ASSERT_EQ(a[i].output.telemetry.windows.size(), b[i].output.telemetry.windows.size());
  }

  EXPECT_EQ(serial.profile().jobs, 1u);
  EXPECT_EQ(parallel.profile().jobs, 8u);
  EXPECT_EQ(serial.profile().jobs_submitted, jobs.size());
  EXPECT_EQ(serial.profile().jobs_failed, 0u);
  EXPECT_GT(serial.profile().wall_seconds, 0.0);
  EXPECT_GE(serial.profile().serial_seconds, 0.0);
}

TEST_F(SweepFailures, BadJobIsCapturedWithoutTakingDownTheSweep) {
  std::vector<sim::SweepJob> jobs(3);
  jobs[0].workload = "SCP";
  jobs[0].config.compute_error = false;
  jobs[0].label = "ok-before";
  jobs[1].workload = "NO-SUCH-WORKLOAD";
  jobs[1].label = "bad";
  jobs[2].workload = "SCP";
  jobs[2].config.compute_error = false;
  jobs[2].config.spec = core::make_static_dms_spec(128, jobs[2].config.gpu.scheme);
  jobs[2].label = "ok-after";

  sim::SweepEngine engine(2);
  const std::vector<sim::SweepResult> r = engine.run(jobs);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_TRUE(r[0].ok);
  EXPECT_FALSE(r[1].ok);
  EXPECT_NE(r[1].error.find("unknown workload"), std::string::npos) << r[1].error;
  EXPECT_TRUE(r[2].ok);
  EXPECT_EQ(r[0].label, "ok-before");
  EXPECT_EQ(r[1].label, "bad");
  EXPECT_EQ(r[2].label, "ok-after");
  EXPECT_EQ(engine.profile().jobs_submitted, 3u);
  EXPECT_EQ(engine.profile().jobs_failed, 1u);
}

TEST_F(SweepJobsConfig, DefaultJobsHonorsEnvAndFallsBackToHardware) {
  ::setenv("LAZYDRAM_JOBS", "3", 1);
  EXPECT_EQ(sim::default_jobs(), 3u);
  ::setenv("LAZYDRAM_JOBS", "not-a-number", 1);
  EXPECT_EQ(sim::default_jobs(), hw_jobs());
  ::setenv("LAZYDRAM_JOBS", "-2", 1);
  EXPECT_EQ(sim::default_jobs(), hw_jobs());
  ::unsetenv("LAZYDRAM_JOBS");
  EXPECT_EQ(sim::default_jobs(), hw_jobs());
}

TEST_F(SweepJobsConfig, ParseJobsFindsTheFlagAnywhereAndRejectsGarbage) {
  const auto parse = [](std::vector<std::string> args) {
    std::vector<char*> argv;
    static char name[] = "bench";
    argv.push_back(name);
    for (std::string& a : args) argv.push_back(a.data());
    return sim::parse_jobs(static_cast<int>(argv.size()), argv.data());
  };
  EXPECT_EQ(parse({"--jobs", "4"}), 4u);
  EXPECT_EQ(parse({"positional", "--jobs", "2", "trailing"}), 2u);
  EXPECT_EQ(parse({}), hw_jobs());                   // No flag.
  EXPECT_EQ(parse({"--jobs"}), hw_jobs());           // Missing value.
  EXPECT_EQ(parse({"--jobs", "zero"}), hw_jobs());   // Unparsable value.
  EXPECT_EQ(parse({"--jobs", "0"}), hw_jobs());      // Non-positive value.
  ::setenv("LAZYDRAM_JOBS", "5", 1);
  EXPECT_EQ(parse({}), 5u);                          // Flag absent -> env.
  EXPECT_EQ(parse({"--jobs", "4"}), 4u);             // Flag beats env.
  ::unsetenv("LAZYDRAM_JOBS");
}

TEST_F(SweepJobsConfig, EngineResolvesZeroThroughDefaults) {
  ::setenv("LAZYDRAM_JOBS", "6", 1);
  sim::SweepEngine engine(0);
  EXPECT_EQ(engine.jobs(), 6u);
  engine.set_jobs(2);
  EXPECT_EQ(engine.jobs(), 2u);
  engine.set_jobs(0);
  EXPECT_EQ(engine.jobs(), 6u);
  ::unsetenv("LAZYDRAM_JOBS");
}

TEST(SweepPaths, SanitizeLabelKeepsOnlyFilenameSafeCharacters) {
  EXPECT_EQ(sim::sanitize_label("SCP|Dyn-DMS"), "SCP_Dyn-DMS");
  EXPECT_EQ(sim::sanitize_label("a b/c:d"), "a_b_c_d");
  EXPECT_EQ(sim::sanitize_label("safe.name_1-2"), "safe.name_1-2");
}

TEST(SweepPaths, DerivedOutputPathSplicesLabelBeforeExtension) {
  EXPECT_EQ(sim::derived_output_path("runs/trace.jsonl", "SCP|base"),
            "runs/trace.SCP_base.jsonl");
  EXPECT_EQ(sim::derived_output_path("report.json", "x"), "report.x.json");
  EXPECT_EQ(sim::derived_output_path("report", "x"), "report.x");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(sim::derived_output_path("a.b/report", "x"), "a.b/report.x");
}

// Regression: two jobs carrying the same label used to derive the same
// telemetry path and silently overwrite each other's report. Duplicate
// labels now get the submission index spliced in, so every job keeps its
// own file.
TEST_F(SweepReport, DuplicateLabelsGetDistinctDerivedPaths) {
  const std::string base = ::testing::TempDir() + "dup_report.json";
  ::setenv("LAZYDRAM_JSON", base.c_str(), 1);

  std::vector<sim::SweepJob> jobs(2);
  jobs[0].workload = "SCP";
  jobs[0].config.compute_error = false;
  jobs[0].label = "SCP|base";
  jobs[1].workload = "SCP";
  jobs[1].config.compute_error = false;
  jobs[1].config.spec =
      core::make_static_dms_spec(128, jobs[1].config.gpu.scheme);
  jobs[1].label = "SCP|base";  // Same label, different scheme.

  sim::SweepEngine engine(1);
  const std::vector<sim::SweepResult> r = engine.run(jobs);
  ::unsetenv("LAZYDRAM_JSON");
  ASSERT_EQ(r.size(), 2u);
  ASSERT_TRUE(r[0].ok) << r[0].error;
  ASSERT_TRUE(r[1].ok) << r[1].error;

  const std::string path0 =
      sim::derived_output_path(base, std::string("SCP|base") + ".0");
  const std::string path1 =
      sim::derived_output_path(base, std::string("SCP|base") + ".1");
  ASSERT_NE(path0, path1);
  const std::string doc0 = read_file(path0);
  const std::string doc1 = read_file(path1);
  EXPECT_FALSE(doc0.empty()) << path0;
  EXPECT_FALSE(doc1.empty()) << path1;
  // Each report reflects its own job's scheme, proving neither overwrote
  // the other.
  EXPECT_NE(doc0, doc1);
  std::remove(path0.c_str());
  std::remove(path1.c_str());
}

TEST_F(SweepReport, MergedReportContainsRunsThenProfile) {
  std::vector<sim::SweepJob> jobs(1);
  jobs[0].workload = "SCP";
  jobs[0].config.compute_error = false;
  jobs[0].label = "SCP|baseline";

  sim::SweepEngine engine(1);
  const std::vector<sim::SweepResult> results = engine.run(jobs);
  ASSERT_TRUE(results[0].ok);

  const std::string path = ::testing::TempDir() + "sweep_report.json";
  ASSERT_TRUE(sim::write_sweep_report(path, results, engine.profile()));
  const std::string doc = read_file(path);
  const std::size_t runs_pos = doc.find("\"runs\":[");
  const std::size_t profile_pos = doc.find("\"profile\":{");
  ASSERT_NE(runs_pos, std::string::npos) << doc;
  ASSERT_NE(profile_pos, std::string::npos) << doc;
  EXPECT_LT(runs_pos, profile_pos);  // Deterministic content leads.
  EXPECT_NE(doc.find("\"label\":\"SCP|baseline\""), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"speedup\":"), std::string::npos);
  EXPECT_NE(doc.find("\"per_job_seconds\":["), std::string::npos);

  EXPECT_FALSE(sim::write_sweep_report("/no-such-dir/sweep.json", results,
                                       engine.profile()));
}

}  // namespace
}  // namespace lazydram
