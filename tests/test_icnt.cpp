// Crossbar tests: delivery with latency, per-destination serialization,
// round-robin fairness, input capacity and credit-based output backpressure.
#include <gtest/gtest.h>

#include "icnt/crossbar.hpp"

namespace lazydram::icnt {
namespace {

Packet pkt(RequestId id, SmId src = 0) {
  Packet p;
  p.id = id;
  p.src_sm = src;
  return p;
}

TEST(Crossbar, DeliversAfterLatency) {
  Crossbar xbar(2, 2, /*latency=*/3, 4);
  xbar.push(0, 1, pkt(7));
  xbar.tick(10);
  EXPECT_FALSE(xbar.pop(1, 12).has_value());  // Not yet.
  const auto p = xbar.pop(1, 13);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->id, 7u);
  EXPECT_TRUE(xbar.idle());
}

TEST(Crossbar, OnePacketPerDestinationPerCycle) {
  Crossbar xbar(3, 1, 0, 4);
  for (unsigned s = 0; s < 3; ++s) xbar.push(s, 0, pkt(s));
  xbar.tick(0);
  unsigned delivered = 0;
  while (xbar.pop(0, 0)) ++delivered;
  EXPECT_EQ(delivered, 1u);
  xbar.tick(1);
  xbar.tick(2);
  while (xbar.pop(0, 2)) ++delivered;
  EXPECT_EQ(delivered, 3u);
}

TEST(Crossbar, RoundRobinAcrossSources) {
  Crossbar xbar(2, 1, 0, 4);
  xbar.push(0, 0, pkt(10));
  xbar.push(0, 0, pkt(11));
  xbar.push(1, 0, pkt(20));
  xbar.tick(0);
  xbar.tick(1);
  xbar.tick(2);
  std::vector<RequestId> order;
  while (auto p = xbar.pop(0, 2)) order.push_back(p->id);
  ASSERT_EQ(order.size(), 3u);
  // Fairness: source 1 is granted before source 0's second packet.
  EXPECT_EQ(order[1], 20u);
}

TEST(Crossbar, InputCapacityBackpressure) {
  Crossbar xbar(1, 1, 0, /*input capacity=*/2);
  xbar.push(0, 0, pkt(1));
  xbar.push(0, 0, pkt(2));
  EXPECT_FALSE(xbar.can_push(0));
  xbar.tick(0);  // Drains one.
  EXPECT_TRUE(xbar.can_push(0));
}

TEST(Crossbar, OutputCreditStallsGrants) {
  Crossbar xbar(1, 1, 0, 8, /*output capacity=*/2);
  for (RequestId i = 1; i <= 4; ++i) xbar.push(0, 0, pkt(i));
  xbar.tick(0);
  xbar.tick(1);
  xbar.tick(2);  // Output buffer full (2): no further grants.
  EXPECT_TRUE(xbar.can_push(0) == false || true);  // Inputs hold 2 packets.
  unsigned drained = 0;
  while (xbar.pop(0, 2)) ++drained;
  EXPECT_EQ(drained, 2u);  // Only the credited packets crossed.
  xbar.tick(3);
  xbar.tick(4);
  while (xbar.pop(0, 4)) ++drained;
  EXPECT_EQ(drained, 4u);
  EXPECT_TRUE(xbar.idle());
}

TEST(Crossbar, DeliveredCounter) {
  Crossbar xbar(1, 1, 0, 4);
  xbar.push(0, 0, pkt(1));
  xbar.tick(0);
  xbar.pop(0, 0);
  EXPECT_EQ(xbar.delivered(), 1u);
}

}  // namespace
}  // namespace lazydram::icnt
