// Verification-layer tests: the runtime protocol checker (one test per
// violation class, driven directly through the observation hooks), the
// checker attached to a real MemoryController (clean legal streams, strict
// mode catching an injected illegal command), the golden reference model on
// handcrafted recordings, and the differential harness on a real workload.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/checker.hpp"
#include "check/golden.hpp"
#include "check/mode.hpp"
#include "check/recorder.hpp"
#include "common/config.hpp"
#include "core/scheduler_registry.hpp"
#include "dram/address.hpp"
#include "mem/controller.hpp"
#include "sim/diff.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "workloads/registry.hpp"

namespace lazydram {
namespace {

using check::CheckerOptions;
using check::CheckMode;
using check::ProtocolChecker;
using check::ViolationKind;
using dram::CommandKind;

TEST(CheckModeParse, KnownAndUnknownValues) {
  EXPECT_EQ(check::parse_check_mode(""), CheckMode::kOff);
  EXPECT_EQ(check::parse_check_mode("off"), CheckMode::kOff);
  EXPECT_EQ(check::parse_check_mode("log"), CheckMode::kLog);
  EXPECT_EQ(check::parse_check_mode("strict"), CheckMode::kStrict);
  EXPECT_EQ(check::parse_check_mode("bogus"), CheckMode::kOff);
  EXPECT_STREQ(check::check_mode_name(CheckMode::kStrict), "strict");
}

TEST(ParseCheckFlag, ArgvParsing) {
  const char* with[] = {"prog", "--check", "strict"};
  EXPECT_EQ(sim::parse_check(3, const_cast<char**>(with)), "strict");
  const char* without[] = {"prog", "--jobs", "2"};
  EXPECT_EQ(sim::parse_check(3, const_cast<char**>(without)), "");
  const char* dangling[] = {"prog", "--check"};
  EXPECT_EQ(sim::parse_check(2, const_cast<char**>(dangling)), "");
}

/// Drives a ProtocolChecker directly through its hooks with a hand-built
/// pending queue. Timing tests default to hit_first=false so a scripted PRE
/// is judged on timing alone (the policy check has its own test).
class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest() : mapper_(cfg_), queue_(32, cfg_.banks_per_channel) {}

  static GpuConfig make_cfg() {
    GpuConfig c;
    c.validate();
    return c;
  }

  CheckerOptions log_opts(bool hit_first = false, bool ams_allowed = false) {
    CheckerOptions o;
    o.mode = CheckMode::kLog;
    o.hit_first = hit_first;
    o.ams_allowed = ams_allowed;
    return o;
  }

  const MemRequest& push(RequestId id, BankId bank, RowId row, std::uint32_t col,
                         AccessKind kind = AccessKind::kRead, bool approx = false) {
    MemRequest r;
    r.id = id;
    r.line_addr = mapper_.compose(0, bank, row, col * kLineBytes);
    r.kind = kind;
    r.approximable = approx;
    r.loc = mapper_.map(r.line_addr);
    queue_.push(r);
    return *queue_.find(id);
  }

  static bool has_kind(const ProtocolChecker& ck, ViolationKind kind) {
    return std::any_of(ck.violations().begin(), ck.violations().end(),
                       [kind](const check::Violation& v) { return v.kind == kind; });
  }

  GpuConfig cfg_ = make_cfg();
  AddressMapper mapper_;
  PendingQueue queue_;
};

TEST_F(CheckerTest, LegalActThenCasIsClean) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 2, 5, 0);
  ck.on_command(CommandKind::kActivate, 2, 5, 0, queue_);
  ck.on_command(CommandKind::kRead, 2, 5, 12, queue_);  // Exactly tRCD later.
  EXPECT_EQ(ck.violation_count(), 0u);
  EXPECT_EQ(ck.commands_checked(), 2u);
}

TEST_F(CheckerTest, CasOnClosedBankIsBankState) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 2, 5, 0);
  ck.on_command(CommandKind::kRead, 2, 5, 10, queue_);
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kBankState);
}

TEST_F(CheckerTest, CasBeforeTrcd) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 1, 0);
  ck.on_command(CommandKind::kActivate, 0, 1, 0, queue_);
  ck.on_command(CommandKind::kRead, 0, 1, 5, queue_);  // tRCD bound is 12.
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kTRcd);
}

TEST_F(CheckerTest, ActBeforeTrp) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 5, 0);
  ck.on_command(CommandKind::kActivate, 0, 5, 0, queue_);
  ck.on_command(CommandKind::kRead, 0, 5, 12, queue_);
  ck.on_command(CommandKind::kPrecharge, 0, 5, 30, queue_);  // tRAS/rtp ok.
  // tRP bound is 42; tRC bound (40) is already met, isolating kTRp.
  ck.on_command(CommandKind::kActivate, 0, 5, 41, queue_);
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kTRp);
}

TEST_F(CheckerTest, ActBeforeTrc) {
  // Stretch tRC past tRP + PRE time so the tRC bound is the only one broken.
  cfg_.timing.tRC = 60;
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 5, 0);
  ck.on_command(CommandKind::kActivate, 0, 5, 0, queue_);
  ck.on_command(CommandKind::kPrecharge, 0, 5, 28, queue_);  // tRP bound 40.
  ck.on_command(CommandKind::kActivate, 0, 5, 45, queue_);   // tRC bound 60.
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kTRc);
}

TEST_F(CheckerTest, PreBeforeTras) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 5, 0);
  ck.on_command(CommandKind::kActivate, 0, 5, 0, queue_);
  ck.on_command(CommandKind::kPrecharge, 0, 5, 10, queue_);  // tRAS bound 28.
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kTRas);
}

TEST_F(CheckerTest, BackToBackCasBreaksTccd) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 5, 0);
  push(2, 0, 5, 1);
  ck.on_command(CommandKind::kActivate, 0, 5, 0, queue_);
  ck.on_command(CommandKind::kRead, 0, 5, 12, queue_);
  ck.on_command(CommandKind::kRead, 0, 5, 13, queue_);  // tCCD bound 14.
  EXPECT_TRUE(has_kind(ck, ViolationKind::kTCcd));
}

TEST_F(CheckerTest, ActActAcrossBanksBreaksTrrd) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 1, 0);
  push(2, 1, 1, 0);
  ck.on_command(CommandKind::kActivate, 0, 1, 0, queue_);
  ck.on_command(CommandKind::kActivate, 1, 1, 3, queue_);  // tRRD bound 6.
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kTRrd);
}

TEST_F(CheckerTest, FifthActInsideTfawWindow) {
  cfg_.timing.tFAW = 32;
  ProtocolChecker ck(cfg_, 0, log_opts());
  for (BankId b = 0; b < 5; ++b) push(b + 1, b, 1, 0);
  // Four ACTs at tRRD spacing, then a fifth inside the 32-cycle window.
  for (BankId b = 0; b < 4; ++b)
    ck.on_command(CommandKind::kActivate, b, 1, b * 6, queue_);
  EXPECT_EQ(ck.violation_count(), 0u);
  ck.on_command(CommandKind::kActivate, 4, 1, 24, queue_);  // Window ends at 32.
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kTFaw);
}

TEST_F(CheckerTest, PreBeforeWriteRecovery) {
  cfg_.timing.tRAS = 1;  // Keep tRAS out of the way; isolate the tWR bound.
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 3, 0, AccessKind::kWrite);
  ck.on_command(CommandKind::kActivate, 0, 3, 0, queue_);
  // WR@12: data ends at 12+4+4=20, so the tWR bound is 32.
  ck.on_command(CommandKind::kWrite, 0, 3, 12, queue_);
  ck.on_command(CommandKind::kPrecharge, 0, 3, 30, queue_);
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kTWr);
}

TEST_F(CheckerTest, ReadAfterWriteBeforeTcdlr) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 3, 0, AccessKind::kWrite);
  push(2, 0, 3, 1);
  ck.on_command(CommandKind::kActivate, 0, 3, 0, queue_);
  ck.on_command(CommandKind::kWrite, 0, 3, 12, queue_);  // tCDLR bound 25.
  ck.on_command(CommandKind::kRead, 0, 3, 20, queue_);
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kTCdlr);
}

TEST_F(CheckerTest, ReadToWriteTurnaroundBusConflict) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 3, 0);
  push(2, 0, 3, 1, AccessKind::kWrite);
  ck.on_command(CommandKind::kActivate, 0, 3, 0, queue_);
  // RD@12 occupies the data bus until 28; WR@14 is tCCD-legal but its burst
  // would start at 18 < 28 + 2 (turnaround).
  ck.on_command(CommandKind::kRead, 0, 3, 12, queue_);
  ck.on_command(CommandKind::kWrite, 0, 3, 14, queue_);
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kBusConflict);
}

TEST_F(CheckerTest, TwoCommandsInOneCycle) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  push(1, 0, 1, 0);
  push(2, 1, 1, 0);
  ck.on_command(CommandKind::kActivate, 0, 1, 10, queue_);
  ck.on_command(CommandKind::kActivate, 1, 1, 10, queue_);
  EXPECT_TRUE(has_kind(ck, ViolationKind::kCommandBus));
}

TEST_F(CheckerTest, PreBypassingPendingRowHit) {
  ProtocolChecker ck(cfg_, 0, log_opts(/*hit_first=*/true));
  push(1, 0, 7, 0);
  push(2, 0, 7, 1);
  ck.on_command(CommandKind::kActivate, 0, 7, 0, queue_);
  ck.on_command(CommandKind::kRead, 0, 7, 12, queue_);
  // Request 2 still wants row 7: a hit-first scheduler must not close it.
  ck.on_command(CommandKind::kPrecharge, 0, 7, 28, queue_);
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kRowHitBypassed);
}

TEST_F(CheckerTest, ActWithoutPendingWork) {
  ProtocolChecker ck(cfg_, 0, log_opts());
  ck.on_command(CommandKind::kActivate, 0, 9, 0, queue_);  // Queue is empty.
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kActWithoutWork);
}

TEST_F(CheckerTest, DropUnderNonAmsScheme) {
  ProtocolChecker ck(cfg_, 0, log_opts(false, /*ams_allowed=*/false));
  const MemRequest& r = push(1, 0, 1, 0, AccessKind::kRead, /*approx=*/true);
  ck.on_enqueue(r, 0);
  ck.on_drop(r, 5, queue_);
  EXPECT_TRUE(has_kind(ck, ViolationKind::kDropNotApproximable));
}

TEST_F(CheckerTest, DropOfNonApproximableRead) {
  ProtocolChecker ck(cfg_, 0, log_opts(false, /*ams_allowed=*/true));
  const MemRequest& r = push(1, 0, 1, 0, AccessKind::kRead, /*approx=*/false);
  ck.on_enqueue(r, 0);
  ck.on_drop(r, 5, queue_);
  EXPECT_TRUE(has_kind(ck, ViolationKind::kDropNotApproximable));
}

TEST_F(CheckerTest, NewGroupDropAtCoverageCap) {
  ProtocolChecker ck(cfg_, 0, log_opts(false, /*ams_allowed=*/true));
  // 10 approximable reads received; after one drop coverage is exactly the
  // 10% cap, so the next *new-group* drop must be refused.
  const MemRequest& a = push(1, 0, 1, 0, AccessKind::kRead, true);
  const MemRequest& b = push(2, 1, 2, 0, AccessKind::kRead, true);
  ck.on_enqueue(a, 0);
  ck.on_enqueue(b, 0);
  for (RequestId id = 3; id <= 10; ++id) {
    ck.on_enqueue(push(id, 2, 3, static_cast<std::uint32_t>(id)), 0);
  }
  ck.on_drop(a, 100, queue_);  // Coverage before: 0/10 — fine.
  EXPECT_EQ(ck.violation_count(), 0u);
  ck.on_drop(b, 101, queue_);  // Coverage before: 1/10 >= 0.10.
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kCoverageExceeded);
}

TEST_F(CheckerTest, ContinuationDropsAreCoverageExempt) {
  ProtocolChecker ck(cfg_, 0, log_opts(false, /*ams_allowed=*/true));
  const MemRequest& a = push(1, 0, 1, 0, AccessKind::kRead, true);
  const MemRequest& b = push(2, 0, 1, 1, AccessKind::kRead, true);
  ck.on_enqueue(a, 0);
  ck.on_enqueue(b, 0);
  ck.on_drop(a, 100, queue_);  // Admits the (bank 0, row 1) group.
  // Coverage is now 1/2 — far past the cap — but the group was admitted as a
  // whole, so draining it is not a violation.
  ck.on_drop(b, 101, queue_);
  EXPECT_EQ(ck.violation_count(), 0u);
  // A late approximable arrival for the still-draining row joins the drain
  // (the scheduler clears its drain state lazily), so this too is exempt.
  const MemRequest& late = push(3, 0, 1, 2, AccessKind::kRead, true);
  ck.on_enqueue(late, 102);
  ck.on_drop(late, 103, queue_);
  EXPECT_EQ(ck.violation_count(), 0u);
}

TEST_F(CheckerTest, NonApproximableArrivalEndsDrain) {
  ProtocolChecker ck(cfg_, 0, log_opts(false, /*ams_allowed=*/true));
  const MemRequest& a = push(1, 0, 1, 0, AccessKind::kRead, true);
  ck.on_enqueue(a, 0);
  ck.on_drop(a, 100, queue_);
  EXPECT_EQ(ck.violation_count(), 0u);
  // A write to the draining row ends the drain; the next drop to that row is
  // a new-group drop again and must pass the full criteria (it fails both:
  // coverage 1/2 >= cap, and the group now contains a write).
  const MemRequest& w = push(2, 0, 1, 1, AccessKind::kWrite);
  ck.on_enqueue(w, 101);
  const MemRequest& c = push(3, 0, 1, 2, AccessKind::kRead, true);
  ck.on_enqueue(c, 102);
  ck.on_drop(c, 103, queue_);
  EXPECT_TRUE(has_kind(ck, ViolationKind::kCoverageExceeded));
  EXPECT_TRUE(has_kind(ck, ViolationKind::kDropNotApproximable));
}

TEST_F(CheckerTest, TwoDropsInOneCycle) {
  ProtocolChecker ck(cfg_, 0, log_opts(false, /*ams_allowed=*/true));
  const MemRequest& a = push(1, 0, 1, 0, AccessKind::kRead, true);
  const MemRequest& b = push(2, 1, 2, 0, AccessKind::kRead, true);
  ck.on_enqueue(a, 0);
  ck.on_enqueue(b, 0);
  // Plenty of received reads keep both drops under the coverage cap (spread
  // over rows: a 2KB row holds only 16 lines).
  for (RequestId id = 3; id <= 30; ++id)
    ck.on_enqueue(push(id, 2, 3 + id / 16, static_cast<std::uint32_t>(id % 16)), 0);
  ck.on_drop(a, 50, queue_);
  ck.on_drop(b, 50, queue_);
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kDropBus);
}

TEST_F(CheckerTest, StarvationReportedOncePerRequest) {
  CheckerOptions opts = log_opts();
  opts.starvation_bound = 1000;
  ProtocolChecker ck(cfg_, 0, opts);
  MemRequest r;
  r.id = 1;
  r.line_addr = mapper_.compose(0, 0, 1, 0);
  r.enqueue_cycle = 0;
  r.loc = mapper_.map(r.line_addr);
  queue_.push(r);
  ck.on_tick(queue_, 1000);  // Exactly at the bound: still fine.
  EXPECT_EQ(ck.violation_count(), 0u);
  ck.on_tick(queue_, 1001);
  ck.on_tick(queue_, 1002);  // Same wedged request: not re-reported.
  ASSERT_EQ(ck.violation_count(), 1u);
  EXPECT_EQ(ck.violations().front().kind, ViolationKind::kStarvation);
}

TEST_F(CheckerTest, StrictModeThrowsOnFirstViolation) {
  CheckerOptions opts = log_opts();
  opts.mode = CheckMode::kStrict;
  ProtocolChecker ck(cfg_, 0, opts);
  EXPECT_THROW(ck.on_command(CommandKind::kRead, 0, 1, 10, queue_),
               check::ViolationError);
}

// --- Checker attached to a real controller ---

class CheckedControllerTest : public ::testing::Test {
 protected:
  CheckedControllerTest()
      : mapper_(cfg_),
        mc_(cfg_, /*channel=*/0, mapper_, core::make_scheduler(cfg_, core::SchemeSpec{})) {}

  static GpuConfig make_cfg() {
    GpuConfig c;
    c.policy.name = "frfcfs";
    c.validate();
    return c;
  }

  MemRequest request(BankId bank, RowId row, std::uint32_t col,
                     AccessKind kind = AccessKind::kRead) {
    MemRequest r;
    r.id = next_id_++;
    r.line_addr = mapper_.compose(0, bank, row, col * kLineBytes);
    r.kind = kind;
    return r;
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      mc_.tick(now_);
      while (mc_.pop_reply(now_)) {
      }
      ++now_;
    }
  }

  GpuConfig cfg_ = make_cfg();
  AddressMapper mapper_;
  MemoryController mc_;
  Cycle now_ = 0;
  RequestId next_id_ = 1;
};

TEST_F(CheckedControllerTest, LegalMixedStreamHasNoViolations) {
  CheckerOptions opts;
  opts.mode = CheckMode::kLog;
  opts.hit_first = true;  // FR-FCFS serves hits first.
  ProtocolChecker ck(cfg_, 0, opts);
  mc_.set_checker(&ck);

  // Reads and writes across several banks and conflicting rows, staggered so
  // arrivals land mid-service too.
  for (BankId b = 0; b < 8; ++b)
    for (std::uint32_t c = 0; c < 4; ++c) mc_.enqueue(request(b, 3, c), now_);
  run(100);
  for (BankId b = 0; b < 8; ++b) {
    mc_.enqueue(request(b, 4, 0, AccessKind::kWrite), now_);
    mc_.enqueue(request(b, 3, 8), now_);  // Back to the earlier row.
  }
  run(5000);

  EXPECT_TRUE(mc_.idle());
  EXPECT_GT(ck.commands_checked(), 0u);
  EXPECT_EQ(ck.violation_count(), 0u);
}

TEST_F(CheckedControllerTest, InjectedTrcdViolationThrowsInStrictMode) {
  CheckerOptions opts;
  opts.mode = CheckMode::kStrict;
  ProtocolChecker ck(cfg_, 0, opts);
  mc_.set_checker(&ck);

  mc_.enqueue(request(2, 5, 0), now_);  // Pending work makes the ACT legal.
  mc_.inject_command_for_test(CommandKind::kActivate, 2, 5, 200);
  EXPECT_EQ(ck.violation_count(), 0u);
  // A CAS one cycle after the ACT violates tRCD (bound 212) and must throw.
  EXPECT_THROW(mc_.inject_command_for_test(CommandKind::kRead, 2, 5, 201),
               check::ViolationError);
  EXPECT_EQ(ck.violation_count(), 1u);
}

// --- Golden reference model on handcrafted recordings ---

TEST(GoldenModel, TwoSameRowReadsShareOneActivation) {
  GpuConfig cfg;
  cfg.validate();
  check::ChannelRecording rec;
  rec.arrivals = {{1, 0, 5, 0, true, false}, {2, 0, 5, 0, true, false}};
  rec.last_cycle = 0;

  const check::GoldenTimeline tl = check::golden_replay(rec, cfg);
  ASSERT_TRUE(tl.completed);
  ASSERT_EQ(tl.entries.size(), 2u);

  // Arrivals at cycle 0 become schedulable at 1: ACT@1, so the first CAS is
  // legal at 1 + tRCD = 13 and its data burst spans 25..29 (tCL 12, tBURST
  // 4). The second CAS is tCCD-legal at 15 but the shared data bus holds it
  // to 17 (burst 29..33).
  const check::GoldenEntry& first = tl.entries.at(1);
  EXPECT_EQ(first.outcome, check::GoldenOutcome::kServed);
  EXPECT_EQ(first.cas_cycle, 13u);
  EXPECT_EQ(first.done_cycle, 29u);
  const check::GoldenEntry& second = tl.entries.at(2);
  EXPECT_EQ(second.outcome, check::GoldenOutcome::kServed);
  EXPECT_EQ(second.cas_cycle, 17u);
  EXPECT_EQ(second.done_cycle, 33u);
}

TEST(GoldenModel, RecordedDropIsReplayedNotServed) {
  GpuConfig cfg;
  cfg.validate();
  check::ChannelRecording rec;
  rec.arrivals = {{1, 0, 5, 0, true, true}};
  rec.drops = {{1, 7}};
  rec.last_cycle = 7;

  const check::GoldenTimeline tl = check::golden_replay(rec, cfg);
  ASSERT_TRUE(tl.completed);
  ASSERT_EQ(tl.entries.size(), 1u);
  const check::GoldenEntry& e = tl.entries.at(1);
  EXPECT_EQ(e.outcome, check::GoldenOutcome::kDropped);
  EXPECT_EQ(e.drop_cycle, 7u);
}

TEST(GoldenModel, DmsDelayGatesMissAge) {
  GpuConfig cfg;
  cfg.validate();
  check::ChannelRecording rec;
  rec.dms_enabled = true;
  rec.arrivals = {{1, 0, 5, 0, true, false}};
  rec.delay_changes = {{0, 100}};  // Requests must age 100 cycles.
  rec.last_cycle = 0;

  const check::GoldenTimeline tl = check::golden_replay(rec, cfg);
  ASSERT_TRUE(tl.completed);
  // The ACT waits for the age gate at cycle 100, so the CAS lands at 112.
  EXPECT_EQ(tl.entries.at(1).cas_cycle, 112u);
}

// --- Differential harness end to end ---

TEST(DiffHarness, BaselineMatchesGolden) {
  sim::DiffHarness harness;
  const core::SchemeSpec spec =
      core::make_scheme_spec(core::SchemeKind::kBaseline, GpuConfig{}.scheme);
  const sim::DiffResult r = harness.run("SCP", spec);
  EXPECT_TRUE(r.ok()) << sim::DiffHarness::format_divergence(r);
  EXPECT_GT(r.requests, 0u);
  EXPECT_EQ(sim::DiffHarness::format_divergence(r), "");
}

TEST(DiffHarness, DynComboMatchesGolden) {
  // Dyn-DMS+AMS exercises every replayed input class: drops, drop gates and
  // a changing DMS delay timeline.
  sim::DiffHarness harness;
  const core::SchemeSpec spec =
      core::make_scheme_spec(core::SchemeKind::kDynCombo, GpuConfig{}.scheme);
  const sim::DiffResult r = harness.run("SCP", spec, CheckMode::kLog);
  EXPECT_TRUE(r.ok()) << sim::DiffHarness::format_divergence(r);
  EXPECT_GT(r.requests, 0u);
}

TEST(SimulatorCheck, StrictRunOfCleanSchemeCompletes) {
  // End-to-end wiring: RunConfig.check = "strict" arms per-channel checkers
  // inside simulate(); a healthy run must complete without throwing.
  const auto wl = workloads::make_workload("SCP");
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, GpuConfig{}.scheme);
  config.check = "strict";
  const sim::RunMetrics m = sim::simulate(*wl, config);
  EXPECT_GT(m.ipc, 0.0);
}

}  // namespace
}  // namespace lazydram
