// Unit tests for common/: RNG determinism, clock-domain divider, statistics
// primitives, text tables and configuration validation.
#include <gtest/gtest.h>

#include <sstream>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace lazydram {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  unsigned equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_EQ(equal, 0u);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformityCoarse) {
  Rng rng(11);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[static_cast<int>(rng.next_double() * 10)];
  for (const int b : buckets) {
    EXPECT_GT(b, n / 10 - n / 50);
    EXPECT_LT(b, n / 10 + n / 50);
  }
}

TEST(ClockDivider, Ratio924Over1400) {
  ClockDivider div(924, 1400);
  unsigned slow = 0;
  for (int i = 0; i < 1400; ++i) slow += div.tick();
  EXPECT_EQ(slow, 924u);
  EXPECT_EQ(div.slow_cycles(), 924u);
}

TEST(ClockDivider, NeverMoreThanOneTickWhenSlower) {
  ClockDivider div(3, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(div.tick(), 1u);
}

TEST(ClockDivider, UnityRatioTicksEveryCycle) {
  ClockDivider div(5, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(div.tick(), 1u);
}

TEST(ClockDivider, ExactLongRunRatio) {
  ClockDivider div(924, 1400);
  for (int i = 0; i < 14000000; ++i) div.tick();
  EXPECT_EQ(div.slow_cycles(), 9240000u);
}

TEST(Histogram, BucketsAndRanges) {
  Histogram h(8);
  h.add(1, 3);
  h.add(2);
  h.add(8);
  h.add(20);  // Overflows into the pooled bucket.
  EXPECT_EQ(h.at(1), 3u);
  EXPECT_EQ(h.at(2), 1u);
  EXPECT_EQ(h.in_range(1, 2), 4u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.mean(), (3.0 * 1 + 2 + 8 + 20) / 6.0);
}

TEST(Histogram, OverflowBucketIsQueryable) {
  Histogram h(8);
  h.add(20);
  h.add(9, 2);
  EXPECT_EQ(h.bucket_count(), 10u);  // Keys 0..8 plus the overflow bucket.
  EXPECT_EQ(h.at(h.max_key() + 1), 3u);
  EXPECT_EQ(h.at(h.max_key() + 1), h.overflow());
}

TEST(Histogram, Percentile) {
  Histogram h(8);
  EXPECT_EQ(h.percentile(0.5), 0u);  // Empty.
  h.add(1, 50);
  h.add(4, 40);
  h.add(20, 10);  // Pooled into the overflow bucket.
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(0.9), 4u);
  EXPECT_EQ(h.percentile(0.95), h.max_key() + 1);  // Falls in the overflow.
  EXPECT_EQ(h.percentile(1.0), h.max_key() + 1);
  EXPECT_EQ(h.percentile(7.0), h.max_key() + 1);  // Clamped.
}

TEST(Histogram, PercentileSingleSample) {
  Histogram h(8);
  h.add(5);
  // With one sample every percentile is that sample, including p0 and p100.
  EXPECT_EQ(h.percentile(0.0), 5u);
  EXPECT_EQ(h.percentile(0.5), 5u);
  EXPECT_EQ(h.percentile(1.0), 5u);
}

TEST(Histogram, PercentileAllMassInOverflow) {
  Histogram h(8);
  h.add(100, 7);  // Everything pools into the overflow bucket.
  EXPECT_EQ(h.percentile(0.0), h.max_key() + 1);
  EXPECT_EQ(h.percentile(0.5), h.max_key() + 1);
  EXPECT_EQ(h.percentile(1.0), h.max_key() + 1);
  // The overflow key is still legal input to at().
  EXPECT_EQ(h.at(h.percentile(0.5)), 7u);
}

// Regression: merge() must add buckets AND the true-key weighted sum
// element-wise. Replaying the other histogram through add() re-enters its
// overflow samples at the clamped key, corrupting the mean and making the
// result depend on which shard merged first.
TEST(Histogram, MergeIsExactAndOrderIndependentWithOverflow) {
  Histogram serial(8);
  Histogram a(8);
  Histogram b(8);
  // Shard a: in-range mass plus overflow at true key 20.
  const std::uint64_t shard_a[][2] = {{1, 3}, {8, 2}, {20, 4}};
  for (const auto& s : shard_a) {
    serial.add(s[0], s[1]);
    a.add(s[0], s[1]);
  }
  // Shard b: different in-range mass plus overflow at true key 100.
  const std::uint64_t shard_b[][2] = {{2, 5}, {100, 1}};
  for (const auto& s : shard_b) {
    serial.add(s[0], s[1]);
    b.add(s[0], s[1]);
  }

  Histogram ab(8);
  ab.merge(a);
  ab.merge(b);
  Histogram ba(8);
  ba.merge(b);
  ba.merge(a);

  for (const Histogram* m : {&ab, &ba}) {
    EXPECT_EQ(m->total(), serial.total());
    EXPECT_DOUBLE_EQ(m->mean(), serial.mean());  // True-key mean survives.
    for (std::uint64_t k = 0; k <= serial.max_key() + 1; ++k)
      EXPECT_EQ(m->at(k), serial.at(k)) << "bucket " << k;
    EXPECT_EQ(m->percentile(0.5), serial.percentile(0.5));
    EXPECT_EQ(m->percentile(1.0), serial.percentile(1.0));
  }
  // The naive replay-through-add() would have produced this corrupted mean;
  // make sure merge() does not.
  Histogram naive(8);
  naive.merge(a);
  for (std::uint64_t k = 0; k <= b.max_key() + 1; ++k)
    if (b.at(k) > 0) naive.add(k, b.at(k));
  EXPECT_NE(naive.mean(), serial.mean());
}

TEST(Histogram, PercentileP100IsMax) {
  Histogram h(64);
  h.add(3, 10);
  h.add(17, 5);
  h.add(42);
  EXPECT_EQ(h.percentile(1.0), 42u);  // p100 == max observed key, exactly.
}

TEST(Histogram, PercentileNearestRankNoFloatSkew) {
  // 0.07 * 100 = 7.000000000000001 in binary floating point; a naive
  // ceil() would skip past the 7th sample. Regression for the nearest-rank
  // epsilon fix.
  Histogram h(128);
  for (std::uint64_t k = 1; k <= 100; ++k) h.add(k);
  EXPECT_EQ(h.percentile(0.07), 7u);
  EXPECT_EQ(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(0.99), 99u);
}

TEST(Histogram, PercentileDegenerateInputs) {
  Histogram h(8);
  h.add(2, 3);
  h.add(6, 3);
  // Out-of-range p clamps to the first/last sample instead of misbehaving.
  EXPECT_EQ(h.percentile(-1.0), 2u);
  EXPECT_EQ(h.percentile(7.0), 6u);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h(4);
  h.add(2, 5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.at(2), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Summary, TracksMinMaxMean) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(TextTable, AlignsAndCounts) {
  TextTable t({"A", "LongHeader"});
  t.add_row({"x", "1"});
  t.add_row({"yy", "2"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("LongHeader"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("x,1"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::pct(-0.123, 1), "-12.3%");
  EXPECT_EQ(TextTable::pct(0.05, 0), "+5%");
}

TEST(GpuConfig, DefaultsValidate) {
  GpuConfig cfg;
  cfg.validate();  // Must not abort.
  EXPECT_EQ(cfg.num_sms, 30u);
  EXPECT_EQ(cfg.num_channels, 6u);
  EXPECT_EQ(cfg.pending_queue_size, 128u);
  EXPECT_EQ(cfg.timing.tRC, 40u);
}

TEST(GpuConfig, DescribeMentionsKeyParameters) {
  GpuConfig cfg;
  bool found_timing = false;
  for (const auto& [key, value] : cfg.describe())
    if (value.find("tRC=40") != std::string::npos) found_timing = true;
  EXPECT_TRUE(found_timing);
}

TEST(CacheGeometry, SetCount) {
  const CacheGeometry geo{16 * 1024, 4, 128, 32};
  EXPECT_EQ(geo.num_sets(), 32u);
}

}  // namespace
}  // namespace lazydram
