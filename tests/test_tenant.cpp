// Multi-tenant front-end tests: the tenant spec grammar, the MixWorkload op
// multiplexer, single-tenant bit-identity with the plain single-workload
// path, tenant-tag preservation through coalescer/L2/MSHR/controller, a
// seeded conformance fuzzer proving per-tenant AMS coverage caps are never
// exceeded (cross-checked by the strict protocol checker's shadow counters),
// and the regression test for DMS stall-interval pairing when hits stream
// past a gated candidate.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "common/rng.hpp"
#include "core/lazy_scheduler.hpp"
#include "core/scheduler_registry.hpp"
#include "core/scheme.hpp"
#include "dram/address.hpp"
#include "gpu/tenant.hpp"
#include "mem/controller.hpp"
#include "sim/simulator.hpp"
#include "telemetry/lifecycle.hpp"
#include "workloads/mix.hpp"
#include "workloads/registry.hpp"

namespace lazydram {
namespace {

using workloads::MixTenant;
using workloads::MixWorkload;

// ---------------------------------------------------------------------------
// Spec grammar.
// ---------------------------------------------------------------------------

TEST(TenantSpec, ParsesKernelsAndOptions) {
  const gpu::TenantSpec one = gpu::parse_tenant_spec("SCP");
  ASSERT_EQ(one.kernels.size(), 1u);
  EXPECT_EQ(one.kernels[0], "SCP");
  EXPECT_EQ(one.warps, 0u);
  EXPECT_EQ(one.repeat, 1u);
  EXPECT_TRUE(one.approx);
  EXPECT_LT(one.coverage_cap, 0.0);
  EXPECT_EQ(one.dms_delay_cap, kNeverCycle);

  const gpu::TenantSpec full = gpu::parse_tenant_spec(
      "CONS+MVT:warps=96,repeat=3,think=2000,approx=0,cap=0.05,delay_cap=256,name=client");
  ASSERT_EQ(full.kernels.size(), 2u);
  EXPECT_EQ(full.kernels[0], "CONS");
  EXPECT_EQ(full.kernels[1], "MVT");
  EXPECT_EQ(full.warps, 96u);
  EXPECT_EQ(full.repeat, 3u);
  EXPECT_EQ(full.think, 2000u);
  EXPECT_FALSE(full.approx);
  EXPECT_DOUBLE_EQ(full.coverage_cap, 0.05);
  EXPECT_EQ(full.dms_delay_cap, 256u);
  EXPECT_EQ(full.name, "client");

  const std::vector<gpu::TenantSpec> many =
      gpu::parse_tenant_specs("SCP;CONS:think=100;MVT:approx=0");
  ASSERT_EQ(many.size(), 3u);
  EXPECT_EQ(many[1].think, 100u);
  EXPECT_FALSE(many[2].approx);
}

TEST(TenantSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(gpu::parse_tenant_spec(""), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_spec("NOPE_NOT_A_KERNEL"), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_spec("SCP+"), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_spec("SCP:bogus=1"), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_spec("SCP:warps"), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_spec("SCP:warps=abc"), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_spec("SCP:warps=12junk"), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_spec("SCP:repeat=0"), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_spec("SCP:approx=2"), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_spec("SCP:cap=1.5"), std::invalid_argument);
  EXPECT_THROW(gpu::parse_tenant_specs("SCP;;CONS"), std::invalid_argument);
}

TEST(TenantSet, QosInstallationRules) {
  // A single default tenant must stay on the legacy path: no budgets.
  gpu::TenantSet plain(gpu::parse_tenant_specs("SCP"));
  GpuConfig cfg;
  plain.apply_qos(cfg);
  EXPECT_TRUE(cfg.scheme.tenant_qos.empty());
  EXPECT_FALSE(plain.has_explicit_qos());

  // A single tenant WITH an explicit cap installs it.
  gpu::TenantSet capped(gpu::parse_tenant_specs("SCP:cap=0.03"));
  capped.apply_qos(cfg);
  ASSERT_EQ(cfg.scheme.tenant_qos.size(), 1u);
  EXPECT_DOUBLE_EQ(cfg.scheme.tenant_qos[0].coverage_cap, 0.03);

  // Multi-tenant sets always install one entry per tenant.
  gpu::TenantSet three(gpu::parse_tenant_specs("SCP;CONS:delay_cap=128;MVT"));
  GpuConfig cfg3;
  three.apply_qos(cfg3);
  ASSERT_EQ(cfg3.scheme.tenant_qos.size(), 3u);
  EXPECT_LT(cfg3.scheme.tenant_qos[0].coverage_cap, 0.0);  // Inherit global.
  EXPECT_EQ(cfg3.scheme.tenant_qos[1].dms_delay_cap, 128u);

  // Alone baselines carry the tenant's own spec at window bias 0.
  const auto alone = three.alone_workload(1);
  EXPECT_EQ(alone->num_tenants(), 1u);
  EXPECT_EQ(alone->tenant(0).name, three.spec(1).name);
  EXPECT_EQ(alone->tenant_of_addr(0), 0u);
}

// ---------------------------------------------------------------------------
// MixWorkload multiplexing.
// ---------------------------------------------------------------------------

TEST(MixWorkload, SingleDefaultTenantReplaysInnerOpStreamExactly) {
  const auto inner = workloads::make_workload("SCP");
  MixWorkload mix({MixTenant{.kernels = {"SCP"}}});
  ASSERT_EQ(mix.num_warps(), inner->num_warps());
  EXPECT_EQ(mix.num_tenants(), 1u);

  gpu::WarpOp a, b;
  for (unsigned w = 0; w < inner->num_warps(); ++w) {
    unsigned step = 0;
    for (;; ++step) {
      const bool ia = inner->op_at(w, step, a);
      const bool ib = mix.op_at(w, step, b);
      ASSERT_EQ(ia, ib) << "warp " << w << " step " << step;
      if (!ia) break;
      ASSERT_EQ(a.kind, b.kind);
      ASSERT_EQ(a.cycles, b.cycles);
      ASSERT_EQ(a.num_addrs, b.num_addrs);
      ASSERT_EQ(a.approximable, b.approximable);
      for (unsigned i = 0; i < a.num_addrs; ++i) ASSERT_EQ(a.addrs[i], b.addrs[i]);
    }
    ASSERT_GT(step, 0u);
  }
}

TEST(MixWorkload, TenantsOwnDisjointWindowsAndWarpRanges) {
  MixWorkload mix(
      {MixTenant{.kernels = {"SCP"}}, MixTenant{.kernels = {"CONS"}, .approx = false}},
      7);
  ASSERT_EQ(mix.num_tenants(), 2u);
  EXPECT_EQ(mix.tenant_warp_base(0), 0u);
  EXPECT_EQ(mix.tenant_warp_base(1), mix.tenant_warps(0));
  EXPECT_EQ(mix.num_warps(), mix.tenant_warps(0) + mix.tenant_warps(1));

  // Every op's addresses land in the issuing tenant's window, and a
  // precise-only tenant's loads are never annotated approximable.
  gpu::WarpOp op;
  for (unsigned w = 0; w < mix.num_warps(); ++w) {
    const TenantId t = mix.tenant_of_warp(w);
    for (unsigned step = 0; mix.op_at(w, step, op); ++step) {
      if (op.kind == gpu::WarpOp::Kind::kCompute) continue;
      for (unsigned i = 0; i < op.num_addrs; ++i)
        ASSERT_EQ(mix.tenant_of_addr(op.addrs[i]), t)
            << "warp " << w << " step " << step;
      if (t == 1) ASSERT_FALSE(op.approximable);
    }
  }

  // Approximable annotations exist only inside tenant 0's window.
  for (const workloads::AddrRange& r : mix.approximable_ranges()) {
    EXPECT_EQ(mix.tenant_of_addr(r.base), 0u);
    EXPECT_EQ(mix.tenant_of_addr(r.base + r.bytes - 1), 0u);
  }
}

TEST(MixWorkload, ThinkTimeIsDeterministicAndStrictlyAddsArrivalGaps) {
  MixWorkload a({MixTenant{.kernels = {"SCP"}, .repeat = 2, .think = 500}}, 42);
  MixWorkload b({MixTenant{.kernels = {"SCP"}, .repeat = 2, .think = 500}}, 42);
  MixWorkload c({MixTenant{.kernels = {"SCP"}, .repeat = 2, .think = 500}}, 43);

  gpu::WarpOp oa, ob, oc;
  ASSERT_TRUE(a.op_at(0, 0, oa));
  ASSERT_TRUE(b.op_at(0, 0, ob));
  ASSERT_TRUE(c.op_at(0, 0, oc));
  // Iteration 0 opens with a think op (staggered initial arrivals).
  EXPECT_EQ(oa.kind, gpu::WarpOp::Kind::kCompute);
  EXPECT_EQ(oa.cycles, ob.cycles);  // Same seed: identical gap.
  EXPECT_GE(oa.cycles, 1u);
  // A different seed changes at least one of the first few warps' gaps.
  bool any_differs = oa.cycles != oc.cycles;
  for (unsigned w = 1; w < 8 && !any_differs; ++w) {
    ASSERT_TRUE(a.op_at(w, 0, oa));
    ASSERT_TRUE(c.op_at(w, 0, oc));
    any_differs = oa.cycles != oc.cycles;
  }
  EXPECT_TRUE(any_differs);

  // repeat=2 doubles the kernel ops; streams terminate.
  unsigned n = 0;
  gpu::WarpOp op;
  while (a.op_at(0, n, op)) ++n;
  MixWorkload once({MixTenant{.kernels = {"SCP"}, .repeat = 1, .think = 500}}, 42);
  unsigned n1 = 0;
  while (once.op_at(0, n1, op)) ++n1;
  EXPECT_EQ(n, 2 * n1);
}

// ---------------------------------------------------------------------------
// Single-tenant TenantSet is bit-identical to the single-workload path.
// ---------------------------------------------------------------------------

TEST(TenantIdentity, OneTenantRunMatchesSingleWorkloadRunBitExactly) {
  const auto inner = workloads::make_workload("SCP");
  gpu::TenantSet set(gpu::parse_tenant_specs("SCP"));

  sim::RunConfig rc;
  rc.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, rc.gpu.scheme);
  rc.compute_error = false;
  sim::RunConfig rc_mix = rc;
  set.apply_qos(rc_mix.gpu);  // Must be a no-op for one default tenant.
  EXPECT_TRUE(rc_mix.gpu.scheme.tenant_qos.empty());

  const sim::RunMetrics a = sim::simulate(*inner, rc);
  const sim::RunMetrics b = sim::simulate(set.workload(), rc_mix);
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.core_cycles, b.core_cycles);
  EXPECT_EQ(a.mem_cycles, b.mem_cycles);
  EXPECT_EQ(a.warps_finish_core_cycle, b.warps_finish_core_cycle);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.reads_received, b.reads_received);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.avg_rbl, b.avg_rbl);
  EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
  EXPECT_DOUBLE_EQ(a.avg_delay, b.avg_delay);
  EXPECT_DOUBLE_EQ(a.avg_th_rbl, b.avg_th_rbl);
  EXPECT_DOUBLE_EQ(a.total_energy_nj, b.total_energy_nj);
  EXPECT_DOUBLE_EQ(a.avg_read_latency_mem_cycles, b.avg_read_latency_mem_cycles);
  EXPECT_EQ(a.read_latency_p50, b.read_latency_p50);
  EXPECT_EQ(a.read_latency_p99, b.read_latency_p99);
  // Single-tenant runs surface no per-tenant slices (legacy output shape).
  EXPECT_TRUE(b.tenants.empty());
}

// ---------------------------------------------------------------------------
// Tenant tags survive coalescer / L2 / MSHR / pending queue.
// ---------------------------------------------------------------------------

TEST(TenantTags, LifecycleRecordsAgreeWithAddressOwnership) {
  gpu::TenantSet set(gpu::parse_tenant_specs("SCP:warps=60;CONS:warps=60,approx=0"), 5);
  sim::RunConfig rc;
  rc.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, rc.gpu.scheme);
  set.apply_qos(rc.gpu);

  const core::SchemeSpec spec = rc.spec;
  const GpuConfig cfg = rc.gpu;
  telemetry::Telemetry tele;
  tele.enable_lifecycle(1);
  tele.lifecycle()->set_retain(true);
  gpu::GpuTop top(cfg, set.workload(),
                  core::make_scheduler_factory(cfg, spec), RowPolicy::kOpenRow, &tele);
  ASSERT_TRUE(top.run());

  const MixWorkload& mix = set.workload();
  std::uint64_t per_tenant[2] = {0, 0};
  for (const telemetry::RequestLifecycle& r : tele.lifecycle()->completed()) {
    ASSERT_LT(r.tenant, 2u);
    // The tag carried through icnt/L2/MSHR/queue must equal the owner
    // derivable from the line address (windows are disjoint).
    ASSERT_EQ(r.tenant, mix.tenant_of_addr(r.line_addr));
    ++per_tenant[r.tenant];
  }
  EXPECT_GT(per_tenant[0], 0u);
  EXPECT_GT(per_tenant[1], 0u);

  // Controller-side accounting reconciles: per-tenant counters sum to the
  // channel aggregates, bucket by bucket for the latency histograms.
  for (ChannelId ch = 0; ch < top.num_channels(); ++ch) {
    const MemoryController& mc = top.controller(ch);
    ASSERT_EQ(mc.num_tenants(), 2u);
    std::uint64_t recv = 0, served = 0, dropped = 0;
    for (TenantId t = 0; t < 2; ++t) {
      recv += mc.tenant_reads_received(t);
      served += mc.tenant_reads_served(t);
      dropped += mc.tenant_reads_dropped(t);
    }
    EXPECT_EQ(recv, mc.reads_received());
    EXPECT_EQ(served, mc.reads_served());
    EXPECT_EQ(dropped, mc.reads_dropped());
    const Histogram& agg = mc.read_latency_hist();
    for (std::uint64_t k = 0; k < agg.bucket_count(); ++k) {
      EXPECT_EQ(mc.tenant_read_latency_hist(0).at(k) + mc.tenant_read_latency_hist(1).at(k),
                agg.at(k))
          << "channel " << ch << " bucket " << k;
    }
  }

  // The precise-only tenant (approx=0) must never have been dropped.
  std::uint64_t t1_drops = 0;
  for (ChannelId ch = 0; ch < top.num_channels(); ++ch)
    t1_drops += top.controller(ch).tenant_reads_dropped(1);
  EXPECT_EQ(t1_drops, 0u);
}

// ---------------------------------------------------------------------------
// Seeded conformance fuzzer: per-tenant AMS caps under the strict checker.
// ---------------------------------------------------------------------------

TEST(TenantCapFuzz, PerTenantCoverageCapsHoldUnderStrictChecker) {
  GpuConfig cfg;
  AddressMapper mapper(cfg);
  const core::SchemeSpec spec =
      core::make_scheme_spec(core::SchemeKind::kStaticCombo, cfg.scheme);

  // Three budgets: tight, inherit-global (0.10), and zero (never drop).
  std::vector<TenantQos> qos(3);
  qos[0].coverage_cap = 0.04;
  qos[2].coverage_cap = 0.0;
  const double resolved_caps[3] = {0.04, cfg.scheme.coverage_cap, 0.0};

  for (const std::uint64_t seed : {0xA11CEULL, 0xB0BULL, 0xCAFEULL, 0xD00DULL}) {
    std::unique_ptr<Scheduler> sched = core::make_scheduler(cfg, spec);
    auto* lazy = dynamic_cast<core::LazyScheduler*>(sched.get());
    ASSERT_NE(lazy, nullptr);
    lazy->set_ams_ready(true);
    lazy->set_tenant_qos(qos);
    const core::AmsUnit& ams = lazy->ams();

    check::CheckerOptions opts;
    opts.mode = check::CheckMode::kStrict;
    opts.ams_allowed = true;
    opts.coverage_cap = cfg.scheme.coverage_cap;
    opts.tenant_coverage_caps.assign(resolved_caps, resolved_caps + 3);
    check::ProtocolChecker checker(cfg, 0, opts);

    MemoryController mc(cfg, 0, mapper, std::move(sched));
    mc.set_checker(&checker);

    Rng rng(seed);
    RequestId id = 1;
    ASSERT_NO_THROW({
      for (Cycle now = 0; now < 200'000; ++now) {
        if (mc.can_accept() && rng.next_bool(0.4)) {
          MemRequest r;
          r.id = id++;
          const BankId bank =
              static_cast<BankId>(rng.next_below(cfg.banks_per_channel));
          const RowId row = static_cast<RowId>(rng.next_below(64));
          r.line_addr = mapper.compose(
              0, bank, row,
              static_cast<std::uint32_t>(rng.next_below(16) * kLineBytes));
          // Rows are single-tenant in real mixes; derive ownership from the
          // (bank, row) coordinate so row groups never mix tenants.
          r.tenant = static_cast<TenantId>((row + bank) % 3);
          r.kind = rng.next_bool(0.1) ? AccessKind::kWrite : AccessKind::kRead;
          r.approximable = r.is_read() && rng.next_bool(0.8);
          mc.enqueue(r, now);
        }
        mc.tick(now);
        while (mc.pop_reply(now)) {
        }
      }
    }) << "strict checker violation, seed " << seed;

    EXPECT_EQ(checker.violation_count(), 0u);
    EXPECT_GT(ams.reads_dropped(), 0u) << "fuzz produced no drops; seed " << seed;

    for (TenantId t = 0; t < 3; ++t) {
      const std::uint64_t reads = ams.tenant_reads_received(t);
      const std::uint64_t drops = ams.tenant_reads_dropped(t);
      ASSERT_GT(reads, 0u);
      // A new row group is only admitted while the tenant's coverage is
      // strictly below its cap; one admitted group (<= Th_RBL = 8 members)
      // may then drain past it, so the bound is cap plus that group.
      EXPECT_LE(static_cast<double>(drops),
                resolved_caps[t] * static_cast<double>(reads) + 8.0)
          << "tenant " << t << " seed " << seed;
    }
    // Cap 0 means "never drop", with no one-group grace: the pre-check
    // fails even for the first group.
    EXPECT_EQ(ams.tenant_reads_dropped(2), 0u);
    // The global cap stays necessary: aggregate coverage within one group
    // of the global budget.
    EXPECT_LE(ams.coverage(),
              cfg.scheme.coverage_cap + 8.0 / static_cast<double>(ams.reads_received()));
  }
}

// ---------------------------------------------------------------------------
// Regression: DMS stall-interval pairing when hits stream past a gated miss.
// ---------------------------------------------------------------------------

// A row-buffer hit served while another request is age-gated on the same
// bank must not close (and fragment) the gated request's stall interval.
// Before the fix, the hit-serve path ended whatever interval was open on the
// bank; the gated candidate's next decide() then reopened it, splitting one
// gate into several and mis-pairing stall_begin_ bookkeeping.
TEST(StallPairing, HitServedMidGateKeepsOneInterval) {
  GpuConfig cfg;
  AddressMapper mapper(cfg);
  // Static DMS only (no AMS): with a constant delay every request has at
  // most one age gate, so any fragmentation is the bug.
  const core::SchemeSpec spec =
      core::make_scheme_spec(core::SchemeKind::kStaticDms, cfg.scheme);
  ASSERT_EQ(spec.static_delay, 128u);
  std::unique_ptr<Scheduler> sched = core::make_scheduler(cfg, spec);
  auto* lazy = dynamic_cast<core::LazyScheduler*>(sched.get());
  ASSERT_NE(lazy, nullptr);
  telemetry::LifecycleCollector lc(nullptr, 1);
  lc.set_retain(true);
  lazy->set_lifecycle(&lc);
  MemoryController mc(cfg, 0, mapper, std::move(sched));
  mc.set_lifecycle(&lc);

  const auto line = [&](RowId row, std::uint32_t col) {
    return mapper.compose(0, 0, row, col * kLineBytes);
  };
  const auto read = [&](RequestId id, RowId row, std::uint32_t col) {
    MemRequest r;
    r.id = id;
    r.line_addr = line(row, col);
    return r;
  };

  for (Cycle now = 0; now < 2'000; ++now) {
    // R0 opens row 7 (gated 128 cycles itself, then served).
    if (now == 0) mc.enqueue(read(1, 7, 0), now);
    // A: row-5 miss while row 7 is open — gated from ~enqueue to
    // enqueue + 128, with hits streaming past it the whole time.
    if (now == 300) mc.enqueue(read(2, 5, 0), now);
    // H1/H2: row-7 hits arriving and serving inside A's gate window.
    if (now == 310) mc.enqueue(read(3, 7, 1), now);
    if (now == 350) mc.enqueue(read(4, 7, 2), now);
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
  }
  ASSERT_TRUE(mc.idle());

  const telemetry::RequestLifecycle* rec_a = nullptr;
  const telemetry::RequestLifecycle* rec_h1 = nullptr;
  for (const telemetry::RequestLifecycle& r : lc.completed()) {
    if (r.id == 2) rec_a = &r;
    if (r.id == 3) rec_h1 = &r;
  }
  ASSERT_NE(rec_a, nullptr);
  ASSERT_NE(rec_h1, nullptr);

  // The hits really were served inside A's gate window...
  ASSERT_EQ(rec_a->gates.size(), 1u) << "gate interval was fragmented";
  const telemetry::GateInterval& g = rec_a->gates[0];
  EXPECT_GT(rec_h1->cas_mem, g.begin);
  EXPECT_LT(rec_h1->cas_mem, g.end);
  // ...and A's one interval covers its whole age gate: decide() first sees A
  // once the bank finishes R0's burst, and the gate flips at enqueue + 128.
  EXPECT_EQ(g.end, rec_a->enqueue_mem + 128);
  EXPECT_EQ(rec_a->gated_cycles, g.end - g.begin);
  // Hits are never gated under plain DMS.
  EXPECT_TRUE(rec_h1->gates.empty());
}

}  // namespace
}  // namespace lazydram
