// Request-lifecycle collector tests: span bookkeeping for served / merged /
// dropped requests, the exact phase-sum identity (per-phase attribution
// partitions the end-to-end latency with no gaps or overlaps), per-bank
// window columns, the two trace export formats, and the run-level guarantee
// that lifecycle collection never perturbs RunMetrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/lazy_scheduler.hpp"
#include "core/scheduler_registry.hpp"
#include "core/scheme.hpp"
#include "dram/address.hpp"
#include "mem/controller.hpp"
#include "sim/simulator.hpp"
#include "telemetry/lifecycle.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/window_sampler.hpp"
#include "workloads/patterns.hpp"
#include "workloads/workload.hpp"

namespace lazydram {
namespace {

using telemetry::LifecycleCollector;
using telemetry::ReqPhase;
using telemetry::RequestLifecycle;

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + leaf;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

double json_number(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++count;
  return count;
}

// ---------------------------------------------------------------------------
// Collector unit tests (synthetic hook sequences, no simulator).
// ---------------------------------------------------------------------------

TEST(LifecycleCollector, ExternalModeRecordsFullSpanAndMerges) {
  LifecycleCollector lc(nullptr, 1);
  lc.set_external_creation(true);
  lc.set_retain(true);

  MemRequest req;
  req.id = 7;
  req.line_addr = 0x1000;
  req.loc.bank = 3;

  lc.on_request_created(7, 0x1000, /*inject=*/10, /*eject=*/25, /*now=*/30);
  lc.on_mshr_merge(0x1000);
  lc.on_mshr_merge(0x1000);
  lc.on_mshr_merge(0x9999);  // Unknown line: ignored.
  lc.on_enqueue(req, /*channel=*/2, /*now_mem=*/20);
  lc.on_gate_end(7, 22, 30);
  lc.on_cas(7, 40);
  lc.on_data_return(7, 44);  // External mode: does not finalize yet.
  EXPECT_EQ(lc.sampled(), 0u);
  lc.on_reply_pop(7, 70);
  lc.on_warp_wakeup(7, 76);
  lc.on_warp_wakeup(7, 99);  // Later reply packets must not move the stamp.

  ASSERT_EQ(lc.sampled(), 1u);
  EXPECT_EQ(lc.served(), 1u);
  EXPECT_EQ(lc.dropped(), 0u);
  EXPECT_EQ(lc.mshr_merges(), 2u);
  EXPECT_EQ(lc.live(), 0u);

  ASSERT_EQ(lc.completed().size(), 1u);
  const RequestLifecycle& r = lc.completed()[0];
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.channel, 2u);
  EXPECT_EQ(r.bank, 3);
  EXPECT_EQ(r.mshr_merges, 2u);
  EXPECT_FALSE(r.dropped);
  EXPECT_EQ(r.wakeup_core, 76u);
  ASSERT_EQ(r.gates.size(), 1u);
  EXPECT_EQ(r.gated_cycles, 8u);

  // Each phase histogram got exactly the synthetic durations.
  EXPECT_EQ(lc.phase_histogram(ReqPhase::kIcntRequest).mean(), 15.0);
  EXPECT_EQ(lc.phase_histogram(ReqPhase::kPartitionWait).mean(), 5.0);
  EXPECT_EQ(lc.phase_histogram(ReqPhase::kQueueWait).mean(), 40.0 - 20.0 - 8.0);
  EXPECT_EQ(lc.phase_histogram(ReqPhase::kDmsGated).mean(), 8.0);
  EXPECT_EQ(lc.phase_histogram(ReqPhase::kService).mean(), 4.0);
  EXPECT_EQ(lc.phase_histogram(ReqPhase::kReplyReturn).mean(), 6.0);
}

TEST(LifecycleCollector, StandaloneSamplingKeepsFirstOfEveryStride) {
  LifecycleCollector lc(nullptr, 4);
  for (RequestId id = 1; id <= 8; ++id) {
    MemRequest req;
    req.id = id;
    req.line_addr = id * kLineBytes;
    lc.on_enqueue(req, 0, id * 10);
    lc.on_cas(id, id * 10 + 5);
    lc.on_data_return(id, id * 10 + 9);
  }
  // Requests 1 and 5 (the first of each stride of 4) were kept.
  EXPECT_EQ(lc.sampled(), 2u);
  EXPECT_EQ(lc.phase_histogram(ReqPhase::kService).total(), 2u);
  EXPECT_EQ(lc.live(), 0u);
}

TEST(LifecycleCollector, WritesAreNeverRecorded) {
  LifecycleCollector lc(nullptr, 1);
  MemRequest req;
  req.id = 1;
  req.kind = AccessKind::kWrite;
  lc.on_enqueue(req, 0, 10);
  lc.on_data_return(1, 20);
  EXPECT_EQ(lc.sampled(), 0u);
}

// ---------------------------------------------------------------------------
// Standalone controller: real command engine, Static-DMS+AMS so both gate
// intervals and drops occur deterministically.
// ---------------------------------------------------------------------------

TEST(LifecycleController, PhaseIdentitiesHoldForServedAndDroppedRecords) {
  GpuConfig cfg;
  AddressMapper mapper(cfg);
  const core::SchemeSpec spec =
      core::make_scheme_spec(core::SchemeKind::kStaticCombo, cfg.scheme);
  std::unique_ptr<Scheduler> sched = core::make_scheduler(cfg, spec);
  auto* lazy = dynamic_cast<core::LazyScheduler*>(sched.get());
  ASSERT_NE(lazy, nullptr);
  lazy->set_ams_ready(true);  // No L2 warm-up in this harness.
  LifecycleCollector lc(nullptr, 1);
  lc.set_retain(true);
  lazy->set_lifecycle(&lc);
  MemoryController mc(cfg, 0, mapper, std::move(sched));
  mc.set_lifecycle(&lc);

  Rng rng(0xBEEF);
  RequestId id = 1;
  std::uint64_t reads_enqueued = 0;
  for (Cycle now = 0; now < 300'000; ++now) {
    const bool busy = now % 4500 < 3000;
    if (busy && mc.can_accept() && rng.next_bool(0.35)) {
      MemRequest r;
      r.id = id++;
      r.line_addr = mapper.compose(
          0, static_cast<BankId>(rng.next_below(cfg.banks_per_channel)),
          rng.next_below(256),
          static_cast<std::uint32_t>(rng.next_below(16) * kLineBytes));
      r.kind = rng.next_bool(0.15) ? AccessKind::kWrite : AccessKind::kRead;
      r.approximable = r.kind == AccessKind::kRead && rng.next_bool(0.7);
      reads_enqueued += r.is_read() ? 1 : 0;
      mc.enqueue(r, now);
    }
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
  }

  // Every terminal read outcome the controller counted shows up as exactly
  // one finalized record (sampling is 1/1); in-flight tails stay live.
  EXPECT_EQ(lc.served() + lc.dropped() + lc.live(), reads_enqueued);
  EXPECT_EQ(lc.dropped(), mc.reads_dropped());
  EXPECT_EQ(lc.served(), mc.reads_served());
  EXPECT_GT(lc.served(), 0u);
  EXPECT_GT(lc.dropped(), 0u);  // Static-AMS with 70% approximable load drops.

  std::uint64_t served_e2e_sum = 0, gated_records = 0;
  for (const RequestLifecycle& r : lc.completed()) {
    const Cycle terminal = r.dropped ? r.drop_mem : r.done_mem;
    ASSERT_LE(r.enqueue_mem, terminal);
    if (!r.dropped) {
      ASSERT_LE(r.enqueue_mem, r.cas_mem);
      ASSERT_LE(r.cas_mem, r.done_mem);
      served_e2e_sum += r.done_mem - r.enqueue_mem;
    }
    // Gate intervals lie inside [enqueue, cas/drop], are well-formed, and
    // sum exactly to gated_cycles — the phase partition has no overlap.
    std::uint64_t gate_sum = 0;
    const Cycle gate_bound = r.dropped ? r.drop_mem : r.cas_mem;
    for (const telemetry::GateInterval& g : r.gates) {
      ASSERT_LT(g.begin, g.end);
      ASSERT_GE(g.begin, r.enqueue_mem);
      ASSERT_LE(g.end, gate_bound);
      gate_sum += g.end - g.begin;
    }
    ASSERT_EQ(gate_sum, r.gated_cycles);
    ASSERT_LE(r.gated_cycles, gate_bound - r.enqueue_mem);
    gated_records += r.gates.empty() ? 0 : 1;
  }
  EXPECT_GT(gated_records, 0u);  // DMS(128) gates row misses under load.

  // The three served-phase histograms partition the end-to-end latency
  // exactly: their weighted sums add up to sum(done - enqueue).
  const double phase_sum =
      lc.phase_histogram(ReqPhase::kQueueWait).mean() *
          static_cast<double>(lc.phase_histogram(ReqPhase::kQueueWait).total()) +
      lc.phase_histogram(ReqPhase::kDmsGated).mean() *
          static_cast<double>(lc.phase_histogram(ReqPhase::kDmsGated).total()) +
      lc.phase_histogram(ReqPhase::kService).mean() *
          static_cast<double>(lc.phase_histogram(ReqPhase::kService).total());
  EXPECT_DOUBLE_EQ(phase_sum, static_cast<double>(served_e2e_sum));
}

// ---------------------------------------------------------------------------
// WindowSampler bank columns.
// ---------------------------------------------------------------------------

TEST(WindowSamplerBankProbe, DifferencesPerWindowAndTelescopes) {
  telemetry::WindowSampler sampler(0, 4096, nullptr);
  // Synthetic cumulative counters: bank b accumulates b+1 units per cycle.
  sampler.set_bank_probe(2, [](Cycle end, std::vector<telemetry::BankProbe>& out) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b].activations = end * (b + 1);
      out[b].column_accesses = 3 * end * (b + 1);
      out[b].drops = end / 7;
      out[b].stall_cycles = end / 2;
    }
  });
  telemetry::WindowProbe probe;
  const Cycle total = 3 * 4096 + 123;
  for (Cycle now = 0; now < total; ++now) sampler.tick(now, probe);
  sampler.flush(probe);

  const auto& ws = sampler.samples();
  ASSERT_EQ(ws.size(), 4u);
  std::uint64_t acts[2] = {0, 0}, cols[2] = {0, 0}, drops = 0, stalls = 0;
  for (const telemetry::WindowSample& w : ws) {
    ASSERT_EQ(w.banks.size(), 2u);
    for (std::size_t b = 0; b < 2; ++b) {
      // Full windows carry exactly one window's worth of growth.
      if (w.ticks == 4096)
        EXPECT_EQ(w.banks[b].activations, 4096u * (b + 1));
      // cols > acts, so the row-hit column is their difference.
      EXPECT_EQ(w.banks[b].row_hits,
                w.banks[b].column_accesses - w.banks[b].activations);
      acts[b] += w.banks[b].activations;
      cols[b] += w.banks[b].column_accesses;
    }
    drops += w.banks[0].drops;
    stalls += w.banks[1].dms_stall_cycles;
  }
  // Windowed deltas telescope back to the final cumulative counters.
  for (std::size_t b = 0; b < 2; ++b) {
    EXPECT_EQ(acts[b], total * (b + 1));
    EXPECT_EQ(cols[b], 3 * total * (b + 1));
  }
  EXPECT_EQ(drops, total / 7);
  EXPECT_EQ(stalls, total / 2);
}

// ---------------------------------------------------------------------------
// End-to-end: full GPU, TinyWorkload-sized run.
// ---------------------------------------------------------------------------

/// Small deterministic workload sized to finish in tens of thousands of
/// cycles (mirrors the telemetry test workload).
class TinyWorkload final : public workloads::Workload {
 public:
  std::string name() const override { return "tiny"; }
  std::string description() const override { return "lifecycle test workload"; }
  unsigned group() const override { return 1; }
  workloads::FeatureTargets targets() const override { return {}; }
  unsigned num_warps() const override { return 120; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    constexpr unsigned kIters = 24;
    if (step >= kIters * 4) return false;
    const unsigned iter = step / 4;
    const Addr base = workloads::MiB(16) +
                      (static_cast<Addr>(warp) * kIters + iter) * 8 * kLineBytes;
    switch (step % 4) {
      case 0:
        op = workloads::wide_load(base, 8, true);
        return true;
      case 1:
        op = gpu::WarpOp::load_line(
            workloads::MiB(512) +
                (workloads::mix64(warp * 131 + iter) % 4096) * kLineBytes,
            true);
        return true;
      case 2:
        op = gpu::WarpOp::compute(12);
        return true;
      default:
        op = gpu::WarpOp::store_line(workloads::MiB(768) +
                                     static_cast<Addr>(warp) * kLineBytes);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    workloads::fill_smooth(image, workloads::MiB(16), 4096, 1.0, 3.0, 2.0);
    workloads::fill_smooth(image, workloads::MiB(512), 4096 * 32, 0.5, 5.0, 1.0);
  }
  void compute_output(gpu::MemView& view) const override {
    double acc = 0.0;
    for (unsigned i = 0; i < 4096; ++i)
      acc += view.read_f32(workloads::f32_addr(workloads::MiB(16), i));
    view.write_f32(workloads::MiB(896), static_cast<float>(acc));
  }
  std::vector<workloads::AddrRange> output_ranges() const override {
    return {{workloads::MiB(896), 4}};
  }
  std::vector<workloads::AddrRange> approximable_ranges() const override {
    return {{workloads::MiB(16), workloads::MiB(256)},
            {workloads::MiB(512), workloads::MiB(4)}};
  }
};

/// The tentpole acceptance identity: at sampling 1/1 the three served-read
/// phase means sum to the independently collected avg_read_latency to 1e-9
/// (the attribution partitions the latency exactly; nothing is double
/// counted or missed).
TEST(LifecycleE2E, PhaseSumsReconcileWithAvgReadLatency) {
  TinyWorkload wl;
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, config.gpu.scheme);
  config.compute_error = false;
  config.lifecycle = true;
  config.trace_sample = 1;

  const sim::RunOutput out = sim::simulate_full(wl, config);
  ASSERT_TRUE(out.metrics.finished);
  ASSERT_TRUE(out.telemetry.lifecycle_enabled);
  const telemetry::LifecycleSummary& s = out.telemetry.lifecycle;
  EXPECT_EQ(s.sample_every, 1u);
  EXPECT_GT(s.served, 0u);
  EXPECT_EQ(s.sampled, s.served + s.dropped);

  const auto& qw = s.phases[static_cast<unsigned>(ReqPhase::kQueueWait)];
  const auto& gated = s.phases[static_cast<unsigned>(ReqPhase::kDmsGated)];
  const auto& service = s.phases[static_cast<unsigned>(ReqPhase::kService)];
  EXPECT_EQ(qw.count, s.served);
  EXPECT_EQ(gated.count, s.served);
  EXPECT_EQ(service.count, s.served);
  EXPECT_NEAR(qw.mean + gated.mean + service.mean,
              out.metrics.avg_read_latency_mem_cycles, 1e-9);

  // The dropped-path partition is complete too.
  const auto& dw = s.phases[static_cast<unsigned>(ReqPhase::kDropWait)];
  EXPECT_EQ(dw.count, s.dropped);
  EXPECT_EQ(s.dropped, out.metrics.drops);

  // Read-latency percentiles surfaced in RunMetrics are ordered and real.
  EXPECT_GT(out.metrics.read_latency_p50, 0u);
  EXPECT_LE(out.metrics.read_latency_p50, out.metrics.read_latency_p95);
  EXPECT_LE(out.metrics.read_latency_p95, out.metrics.read_latency_p99);
}

TEST(LifecycleE2E, JsonlReqLinesAuditPhaseBounds) {
  TinyWorkload wl;
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, config.gpu.scheme);
  config.compute_error = false;
  config.trace_path = temp_path("lifecycle_req.jsonl");
  config.trace_sample = 1;

  const sim::RunOutput out = sim::simulate_full(wl, config);
  ASSERT_TRUE(out.telemetry.lifecycle_enabled);

  std::uint64_t req_lines = 0;
  for (const std::string& line : read_lines(config.trace_path)) {
    if (line.find("\"type\":\"req\"") == std::string::npos) continue;
    ++req_lines;
    const double enq = json_number(line, "enq");
    const double gated = json_number(line, "gated");
    const bool dropped = line.find("\"dropped\":true") != std::string::npos;
    const double terminal =
        dropped ? json_number(line, "drop") : json_number(line, "done");
    EXPECT_LE(enq, terminal);
    if (!dropped) {
      const double cas = json_number(line, "cas");
      EXPECT_LE(enq, cas);
      EXPECT_LE(cas, terminal);
      EXPECT_LE(gated, cas - enq);
    } else {
      EXPECT_LE(gated, terminal - enq);
    }
    // Full GPU wiring: every core-domain stamp is present and ordered.
    const double inject = json_number(line, "inject");
    const double eject = json_number(line, "eject");
    const double wakeup = json_number(line, "wakeup");
    EXPECT_GT(inject, 0.0);
    EXPECT_LE(inject, eject);
    EXPECT_GT(wakeup, 0.0);
  }
  EXPECT_EQ(req_lines, out.telemetry.lifecycle.sampled);
  EXPECT_GT(req_lines, 0u);
  std::remove(config.trace_path.c_str());
}

TEST(LifecycleE2E, ChromeTraceIsWellFormedAndSpansPair) {
  TinyWorkload wl;
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, config.gpu.scheme);
  config.compute_error = false;
  config.trace_path = temp_path("lifecycle_chrome.json");
  config.trace_format = "chrome";
  config.trace_sample = 4;

  const sim::RunOutput out = sim::simulate_full(wl, config);
  ASSERT_TRUE(out.telemetry.lifecycle_enabled);

  std::string all;
  for (const std::string& line : read_lines(config.trace_path)) all += line;
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front(), '[');
  EXPECT_EQ(all.back(), ']');

  // Every async begin has a matching end, and the trace carries the span
  // taxonomy, the per-channel process metadata and the per-bank counters.
  EXPECT_EQ(count_occurrences(all, "\"ph\":\"b\""), count_occurrences(all, "\"ph\":\"e\""));
  EXPECT_GT(count_occurrences(all, "\"ph\":\"b\""), 0u);
  EXPECT_NE(all.find("process_name"), std::string::npos);
  EXPECT_NE(all.find("\"name\":\"req\""), std::string::npos);
  EXPECT_NE(all.find("icnt_request"), std::string::npos);
  EXPECT_NE(all.find("\"name\":\"service\""), std::string::npos);
  EXPECT_NE(all.find("bank.act"), std::string::npos);
  std::remove(config.trace_path.c_str());
}

TEST(LifecycleE2E, PerBankWindowColumnsSumToChannelTotals) {
  TinyWorkload wl;
  sim::RunConfig config;
  config.spec =
      core::make_scheme_spec(core::SchemeKind::kStaticCombo, config.gpu.scheme);
  config.compute_error = false;
  config.window_sampling = true;

  const sim::RunOutput out = sim::simulate_full(wl, config);
  ASSERT_TRUE(out.metrics.finished);
  ASSERT_EQ(out.telemetry.windows.size(), config.gpu.num_channels);

  std::uint64_t total_stall = 0, total_drops = 0;
  for (const auto& ws : out.telemetry.windows) {
    ASSERT_FALSE(ws.empty());
    for (const telemetry::WindowSample& w : ws) {
      ASSERT_EQ(w.banks.size(), config.gpu.banks_per_channel);
      std::uint64_t acts = 0, cols = 0, drops = 0;
      for (const telemetry::BankWindowSample& b : w.banks) {
        acts += b.activations;
        cols += b.column_accesses;
        drops += b.drops;
        total_stall += b.dms_stall_cycles;
      }
      // The per-bank columns decompose the window's channel totals exactly.
      EXPECT_EQ(acts, w.activations) << "window " << w.index;
      EXPECT_EQ(cols, w.column_reads + w.column_writes) << "window " << w.index;
      EXPECT_EQ(drops, w.drops) << "window " << w.index;
      total_drops += drops;
    }
  }
  // Static-DMS(128) age-gates row misses, so stall cycles were attributed.
  EXPECT_GT(total_stall, 0u);
  EXPECT_EQ(total_drops, out.metrics.drops);
}

/// Lifecycle collection must never perturb the simulation.
TEST(LifecycleE2E, MetricsIdenticalWithLifecycleOnAndOff) {
  TinyWorkload wl;
  sim::RunConfig config;
  config.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, config.gpu.scheme);
  config.compute_error = false;

  const sim::RunMetrics bare = sim::simulate(wl, config);
  config.lifecycle = true;
  config.trace_sample = 1;
  const sim::RunMetrics traced = sim::simulate(wl, config);

  EXPECT_EQ(bare.core_cycles, traced.core_cycles);
  EXPECT_EQ(bare.mem_cycles, traced.mem_cycles);
  EXPECT_EQ(bare.instructions, traced.instructions);
  EXPECT_EQ(bare.ipc, traced.ipc);
  EXPECT_EQ(bare.activations, traced.activations);
  EXPECT_EQ(bare.drops, traced.drops);
  EXPECT_EQ(bare.avg_read_latency_mem_cycles, traced.avg_read_latency_mem_cycles);
  EXPECT_EQ(bare.read_latency_p50, traced.read_latency_p50);
  EXPECT_EQ(bare.read_latency_p95, traced.read_latency_p95);
  EXPECT_EQ(bare.read_latency_p99, traced.read_latency_p99);
}

}  // namespace
}  // namespace lazydram
