// Value-predictor tests: nearest-address donor selection, radius limits,
// zero-fill fallback and the zero-fill ablation predictor.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "common/config.hpp"
#include "core/value_predictor.hpp"
#include "gpu/functional_memory.hpp"
#include "telemetry/hub.hpp"

namespace lazydram::core {
namespace {

class VpTest : public ::testing::Test {
 protected:
  VpTest() : l2_(GpuConfig{}.l2) {}

  void put_line(Addr line, float value) {
    l2_.fill(line, false, false);
    for (unsigned i = 0; i < kF32(); ++i)
      fmem_.image().write_f32(line + 4 * i, value);
  }

  static unsigned kF32() { return kLineBytes / 4; }

  float first_float(const ValuePredictor::Prediction& p) {
    float v;
    std::memcpy(&v, p.data.data(), 4);
    return v;
  }

  cache::Cache l2_;
  gpu::FunctionalMemory fmem_;
};

TEST_F(VpTest, PicksNearestAddressDonor) {
  ValuePredictor vp(l2_, fmem_, /*radius=*/4);
  const Addr target = 1000 * kLineBytes;
  // Donor candidates: one 2 lines away, one 1 line away (both same set
  // neighbourhood because sets advance per line).
  put_line(target + 2 * kLineBytes, 7.0f);
  put_line(target - kLineBytes, 3.0f);
  const auto p = vp.predict(target);
  EXPECT_TRUE(p.donor_found);
  EXPECT_EQ(p.donor_addr, target - kLineBytes);
  EXPECT_FLOAT_EQ(first_float(p), 3.0f);
}

TEST_F(VpTest, IgnoresTheDroppedLineItself) {
  ValuePredictor vp(l2_, fmem_, 4);
  const Addr target = 500 * kLineBytes;
  put_line(target, 9.0f);  // Stale copy of the target itself.
  put_line(target + kLineBytes, 4.0f);
  const auto p = vp.predict(target);
  EXPECT_EQ(p.donor_addr, target + kLineBytes);
}

TEST_F(VpTest, ZeroFillWhenNearbySetsEmpty) {
  ValuePredictor vp(l2_, fmem_, 1);
  const auto p = vp.predict(123 * kLineBytes);
  EXPECT_FALSE(p.donor_found);
  EXPECT_FLOAT_EQ(first_float(p), 0.0f);
  EXPECT_EQ(vp.zero_fills(), 1u);
}

TEST_F(VpTest, RadiusBoundsTheSearch) {
  ValuePredictor vp(l2_, fmem_, /*radius=*/1);
  const Addr target = 2000 * kLineBytes;
  // Donor 5 sets away: outside radius 1.
  put_line(target + 5 * kLineBytes, 5.0f);
  EXPECT_FALSE(vp.predict(target).donor_found);
  // Donor 1 set away: inside.
  put_line(target + kLineBytes, 6.0f);
  EXPECT_TRUE(vp.predict(target).donor_found);
}

TEST_F(VpTest, ZeroFillPredictorAblation) {
  ValuePredictor vp(l2_, fmem_, 4, PredictorKind::kZeroFill);
  put_line(300 * kLineBytes + kLineBytes, 8.0f);
  const auto p = vp.predict(300 * kLineBytes);
  EXPECT_FALSE(p.donor_found);
  EXPECT_FLOAT_EQ(first_float(p), 0.0f);
}

TEST_F(VpTest, MissReturnsFullyDefinedLineAndCountsInTelemetry) {
  // A VP miss (no donor anywhere nearby) must still produce a fully defined
  // 128B reply — the dropped read's warp resumes on these bytes — and the
  // fallback must be visible through the same telemetry counters GpuTop
  // registers (core.chN.vp.predictions / vp.zero_fills).
  ValuePredictor vp(l2_, fmem_, 4);
  telemetry::TelemetryHub hub;
  hub.add_counter("core.ch0.vp.predictions", [&vp] { return vp.predictions(); });
  hub.add_counter("core.ch0.vp.zero_fills", [&vp] { return vp.zero_fills(); });

  const auto p = vp.predict(4242 * kLineBytes);  // L2 entirely cold.
  EXPECT_FALSE(p.donor_found);
  for (unsigned i = 0; i < kLineBytes; ++i) ASSERT_EQ(p.data[i], 0u) << "byte " << i;
  EXPECT_EQ(hub.counter("core.ch0.vp.predictions"), 1u);
  EXPECT_EQ(hub.counter("core.ch0.vp.zero_fills"), 1u);

  // A hit afterwards bumps predictions but not zero_fills.
  put_line(4242 * kLineBytes + kLineBytes, 2.5f);
  EXPECT_TRUE(vp.predict(4242 * kLineBytes).donor_found);
  EXPECT_EQ(hub.counter("core.ch0.vp.predictions"), 2u);
  EXPECT_EQ(hub.counter("core.ch0.vp.zero_fills"), 1u);
}

TEST_F(VpTest, NeighbourSearchWrapsBelowSetZero) {
  ValuePredictor vp(l2_, fmem_, /*radius=*/1);
  const std::uint32_t sets = l2_.num_sets();
  // Target in set 0; its lower neighbour line lives in the *last* set, so it
  // is reachable only because the neighbouring-set walk is a ring.
  const Addr target = static_cast<Addr>(sets) * 10 * kLineBytes;
  ASSERT_EQ(l2_.set_index(target), 0u);
  const Addr donor = target - kLineBytes;
  ASSERT_EQ(l2_.set_index(donor), sets - 1);
  put_line(donor, 7.0f);
  const auto p = vp.predict(target);
  EXPECT_TRUE(p.donor_found);
  EXPECT_EQ(p.donor_addr, donor);
}

TEST_F(VpTest, NeighbourSearchWrapsAboveLastSet) {
  ValuePredictor vp(l2_, fmem_, /*radius=*/1);
  const std::uint32_t sets = l2_.num_sets();
  // Target in the last set; its upper neighbour wraps around into set 0.
  const Addr target = (static_cast<Addr>(sets) * 11 - 1) * kLineBytes;
  ASSERT_EQ(l2_.set_index(target), sets - 1);
  const Addr donor = target + kLineBytes;
  ASSERT_EQ(l2_.set_index(donor), 0u);
  put_line(donor, 6.0f);
  const auto p = vp.predict(target);
  EXPECT_TRUE(p.donor_found);
  EXPECT_EQ(p.donor_addr, donor);
}

TEST_F(VpTest, DonorBytesComeThroughTheOverlay) {
  // If the donor line was itself approximated, the VP must read the
  // approximate (overlay) bytes — that is what the cache holds.
  ValuePredictor vp(l2_, fmem_, 4);
  const Addr donor = 800 * kLineBytes;
  put_line(donor, 2.0f);
  std::array<std::uint8_t, kLineBytes> approx{};
  const float five = 5.0f;
  for (unsigned i = 0; i < kLineBytes; i += 4) std::memcpy(&approx[i], &five, 4);
  fmem_.record_approx_line(donor, approx.data());
  const auto p = vp.predict(donor + kLineBytes);
  EXPECT_EQ(p.donor_addr, donor);
  EXPECT_FLOAT_EQ(first_float(p), 5.0f);
}

}  // namespace
}  // namespace lazydram::core
