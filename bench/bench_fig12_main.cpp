// Fig. 12: the paper's headline result. All seven schemes over the
// medium/high error-tolerance applications (groups 1-3):
//   (a) normalized row energy  — DMS ~8-12%, AMS ~33%, Dyn combo ~44% savings
//   (b) normalized IPC         — every scheme within 5% of baseline
//   (c) application error      — ~7% average at 10% coverage
//   (d) prediction coverage    — near 10% for groups 1-2, lower for group 3
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 12 — row energy / IPC / app error / coverage across schemes",
      "row energy: Static-DMS -8%, Dyn-DMS -12%, Static-AMS -33%, "
      "Dyn-DMS+AMS -44% (groups 1-3); IPC within 5%; avg error ~7%");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  // `--check strict|log` (or $LAZYDRAM_CHECK) runs every simulation under
  // the DRAM protocol checker; CI uses this as its checked fig12 smoke.
  runner.set_check(sim::parse_check(argc, argv));
  // `--self-profile` arms the wall-clock zone profiler (self_profile section
  // in per-run JSON reports); `--heartbeat SECONDS` prints live run-health
  // lines to stderr. Both also respond to $LAZYDRAM_SELFPROF/HEARTBEAT.
  runner.set_self_profile(sim::parse_self_profile(argc, argv));
  runner.set_heartbeat(sim::parse_heartbeat(argc, argv));
  const std::vector<core::SchemeKind> schemes = {
      core::SchemeKind::kStaticDms,   core::SchemeKind::kDynDms,
      core::SchemeKind::kStaticAms,   core::SchemeKind::kDynAms,
      core::SchemeKind::kStaticCombo, core::SchemeKind::kDynCombo};

  const std::vector<std::string> apps = workloads::fig12_workload_names();

  for (const std::string& app : apps) {
    runner.prefetch_baseline(app);
    for (const core::SchemeKind k : schemes) runner.prefetch_scheme(app, k);
  }
  runner.flush();

  enum class View { kRowEnergy, kIpc, kError, kCoverage };
  const struct {
    View view;
    const char* title;
  } kViews[] = {{View::kRowEnergy, "(a) Normalized row energy"},
                {View::kIpc, "(b) Normalized IPC"},
                {View::kError, "(c) Application error"},
                {View::kCoverage, "(d) Prediction coverage"}};

  for (const auto& [view, title] : kViews) {
    std::vector<std::string> header = {"Workload", "Grp"};
    for (const core::SchemeKind k : schemes) header.emplace_back(core::scheme_name(k));
    TextTable table(header);
    std::vector<std::vector<double>> agg(schemes.size());

    for (const std::string& app : apps) {
      const sim::RunMetrics& base = runner.baseline(app);
      const auto wl = workloads::make_workload(app);
      std::vector<std::string> row = {app, std::to_string(wl->group())};
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        const sim::RunMetrics& m = runner.run_scheme(app, schemes[i]);
        double v = 0.0;
        switch (view) {
          case View::kRowEnergy: v = m.row_energy_nj / base.row_energy_nj; break;
          case View::kIpc: v = m.ipc / base.ipc; break;
          case View::kError: v = m.app_error; break;
          case View::kCoverage: v = m.coverage; break;
        }
        row.push_back(TextTable::num(v, 3));
        agg[i].push_back(v);
      }
      table.add_row(std::move(row));
    }

    std::vector<std::string> avg = {"MEAN", "-"};
    for (auto& v : agg)
      avg.push_back(TextTable::num(
          view == View::kRowEnergy || view == View::kIpc ? sim::geomean(v) : sim::mean(v),
          3));
    table.add_row(std::move(avg));

    std::cout << "\n" << title << "\n";
    table.print(std::cout);
  }

  // (e) Measured energy accounting. View (a) normalizes the row component
  // alone; these columns come from the state-based accountant's measured
  // breakdown: whole-DRAM savings as measured (background/refresh included —
  // a scheme that stretches runtime pays standby energy back), the measured
  // row-energy share, and the share x row-savings projection the paper's
  // HBM arithmetic would predict from the measured GDDR5 share. Zeros here
  // mean the accountant is off (LAZYDRAM_POWER=off).
  {
    std::vector<double> base_shares;
    for (const std::string& app : apps)
      base_shares.push_back(runner.baseline(app).measured_row_share);
    const double base_share = sim::mean(base_shares);

    TextTable table({"Scheme", "RowSaved", "TotalSaved", "RowShare", "ShareXRow"});
    for (const core::SchemeKind k : schemes) {
      std::vector<double> row_ratio, total_ratio, shares;
      for (const std::string& app : apps) {
        const sim::RunMetrics& base = runner.baseline(app);
        const sim::RunMetrics& m = runner.run_scheme(app, k);
        row_ratio.push_back(m.row_energy_nj / base.row_energy_nj);
        total_ratio.push_back(m.total_energy_nj / base.total_energy_nj);
        shares.push_back(m.measured_row_share);
      }
      const double row_save = 1.0 - sim::geomean(row_ratio);
      table.add_row({core::scheme_name(k), TextTable::num(row_save, 3),
                     TextTable::num(1.0 - sim::geomean(total_ratio), 3),
                     TextTable::num(sim::mean(shares), 3),
                     TextTable::num(base_share * row_save, 3)});
    }
    std::cout << "\n(e) Measured energy savings (state-based accounting; baseline row"
                 " share " << TextTable::num(base_share, 3) << ")\n";
    table.print(std::cout);
  }
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
