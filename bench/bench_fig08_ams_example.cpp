// Fig. 8: how DMS helps AMS — the illustrative mis-drop example. Nine
// requests spread over five rows (R1..R5) of one bank; R1..R4 will receive a
// second request later, R5 will not. AMS alone observes five RBL(1) groups
// and drops the oldest (an R1 request) — Avg-RBL *falls* from 1.8 to 1.6.
// With DMS aging the queue first, AMS correctly identifies R5 as the only
// true RBL(1) group: Avg-RBL rises from 1.8 to 2.0.
#include <cstdio>
#include <memory>

#include "common/config.hpp"
#include "core/lazy_scheduler.hpp"
#include "dram/address.hpp"
#include "mem/controller.hpp"
#include "sim/report.hpp"

using namespace lazydram;

namespace {

struct Result {
  std::uint64_t activations = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  double avg_rbl = 0.0;
};

/// Runs the Fig. 8 scenario. `delay` > 0 adds DMS; AMS(1) hunts RBL(1) rows
/// with a one-drop budget (coverage cap sized to one request).
Result run_example(Cycle delay) {
  GpuConfig cfg;
  cfg.scheme.coverage_cap = 0.12;  // 1 of 9 requests ~ 11%.
  cfg.scheme.l2_warmup_fills = 0;
  AddressMapper mapper(cfg);

  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kStaticAms;
  spec.ams_enabled = true;
  spec.static_th_rbl = 1;
  spec.dms_enabled = delay > 0;
  spec.static_delay = delay;

  auto sched = std::make_unique<core::LazyScheduler>(cfg.scheme, spec,
                                                     cfg.banks_per_channel);
  core::LazyScheduler* lazy = sched.get();
  MemoryController mc(cfg, 0, mapper, std::move(sched));
  lazy->set_ams_ready(true);

  RequestId id = 1;
  const auto read_at = [&](RowId row, std::uint32_t col, Cycle now) {
    MemRequest r;
    r.id = id++;
    r.line_addr = mapper.compose(0, /*bank=*/0, row, col * kLineBytes);
    r.kind = AccessKind::kRead;
    r.approximable = true;
    mc.enqueue(r, now);
  };

  Cycle now = 0;
  // First wave: one request each to R1..R5.
  for (RowId row = 1; row <= 5; ++row) read_at(row, 0, now);
  // Second wave arrives 400 cycles later: R1..R4 again (R5 never repeats).
  for (; now < 400; ++now) {
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
  }
  for (RowId row = 1; row <= 4; ++row) read_at(row, 1, now);
  for (; now < 6000; ++now) {
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
  }
  mc.finalize();

  Result res;
  res.activations = mc.channel().activations();
  res.served = mc.channel().column_accesses();
  res.dropped = mc.reads_dropped();
  res.avg_rbl =
      static_cast<double>(res.served) / static_cast<double>(res.activations);
  return res;
}

}  // namespace

int main() {
  sim::print_bench_header(
      "Fig. 8 — DMS helps AMS pick the right victim (9 requests, 5 rows)",
      "AMS alone mis-drops an R1 request: Avg-RBL 1.8 -> 1.6; with DMS the "
      "true RBL(1) row R5 is dropped: Avg-RBL 1.8 -> 2.0");

  const Result alone = run_example(0);
  const Result with_dms = run_example(600);
  std::printf("%-18s acts=%llu served=%llu dropped=%llu Avg-RBL=%.2f\n",
              "AMS(1) alone:", static_cast<unsigned long long>(alone.activations),
              static_cast<unsigned long long>(alone.served),
              static_cast<unsigned long long>(alone.dropped), alone.avg_rbl);
  std::printf("%-18s acts=%llu served=%llu dropped=%llu Avg-RBL=%.2f\n",
              "DMS + AMS(1):", static_cast<unsigned long long>(with_dms.activations),
              static_cast<unsigned long long>(with_dms.served),
              static_cast<unsigned long long>(with_dms.dropped), with_dms.avg_rbl);
  return 0;
}
