// Fig. 8: how DMS helps AMS — the illustrative mis-drop example. Nine
// requests spread over five rows (R1..R5) of one bank; R1..R4 will receive a
// second request later, R5 will not. AMS alone observes five RBL(1) groups
// and drops the oldest (an R1 request) — Avg-RBL *falls* from 1.8 to 1.6.
// With DMS aging the queue first, AMS correctly identifies R5 as the only
// true RBL(1) group: Avg-RBL rises from 1.8 to 2.0.
//
// The per-window columns (activations, drops, coverage, Th_RBL) come from
// the telemetry WindowSampler attached to the controller; pass
// `--json <path>` (or set LAZYDRAM_JSON) to also dump them machine-readably.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/log.hpp"
#include "core/lazy_scheduler.hpp"
#include "core/scheduler_registry.hpp"
#include "dram/address.hpp"
#include "mem/controller.hpp"
#include "sim/report.hpp"
#include "telemetry/json.hpp"
#include "telemetry/window_sampler.hpp"

using namespace lazydram;

namespace {

// Runs are ~6000 cycles, so sample far below the production 4096-cycle
// profile window to get a readable series.
constexpr Cycle kBenchWindow = 512;

struct Result {
  std::uint64_t activations = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  double avg_rbl = 0.0;
  std::vector<telemetry::WindowSample> windows;
};

/// Runs the Fig. 8 scenario. `delay` > 0 adds DMS; AMS(1) hunts RBL(1) rows
/// with a one-drop budget (coverage cap sized to one request).
Result run_example(Cycle delay) {
  GpuConfig cfg;
  cfg.scheme.coverage_cap = 0.12;  // 1 of 9 requests ~ 11%.
  cfg.scheme.l2_warmup_fills = 0;
  AddressMapper mapper(cfg);

  core::SchemeSpec spec;
  spec.kind = core::SchemeKind::kStaticAms;
  spec.ams_enabled = true;
  spec.static_th_rbl = 1;
  spec.dms_enabled = delay > 0;
  spec.static_delay = delay;

  std::unique_ptr<Scheduler> sched = core::make_scheduler(cfg, spec);
  auto* lazy = dynamic_cast<core::LazyScheduler*>(sched.get());
  MemoryController mc(cfg, 0, mapper, std::move(sched));
  lazy->set_ams_ready(true);
  mc.enable_window_sampling(kBenchWindow, nullptr);

  RequestId id = 1;
  const auto read_at = [&](RowId row, std::uint32_t col, Cycle now) {
    MemRequest r;
    r.id = id++;
    r.line_addr = mapper.compose(0, /*bank=*/0, row, col * kLineBytes);
    r.kind = AccessKind::kRead;
    r.approximable = true;
    mc.enqueue(r, now);
  };

  Cycle now = 0;
  // First wave: one request each to R1..R5.
  for (RowId row = 1; row <= 5; ++row) read_at(row, 0, now);
  // Second wave arrives 400 cycles later: R1..R4 again (R5 never repeats).
  for (; now < 400; ++now) {
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
  }
  for (RowId row = 1; row <= 4; ++row) read_at(row, 1, now);
  for (; now < 6000; ++now) {
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
  }
  mc.finalize();

  Result res;
  res.activations = mc.channel().activations();
  res.served = mc.channel().column_accesses();
  res.dropped = mc.reads_dropped();
  res.avg_rbl =
      static_cast<double>(res.served) / static_cast<double>(res.activations);
  res.windows = mc.sampler()->samples();
  return res;
}

void print_windows(const char* label, const std::vector<telemetry::WindowSample>& ws) {
  std::printf("  per-window trace (%s, window=%llu cycles):\n", label,
              static_cast<unsigned long long>(kBenchWindow));
  std::printf("    %-3s %-12s %6s %6s %9s %7s %6s\n", "w", "cycles", "acts",
              "drops", "coverage", "th_rbl", "delay");
  for (const auto& w : ws) {
    std::printf("    %-3llu [%4llu,%4llu) %6llu %6llu %8.1f%% %7.1f %6.0f\n",
                static_cast<unsigned long long>(w.index),
                static_cast<unsigned long long>(w.start_cycle),
                static_cast<unsigned long long>(w.end_cycle),
                static_cast<unsigned long long>(w.activations),
                static_cast<unsigned long long>(w.drops), w.coverage * 100.0,
                w.avg_th_rbl, w.avg_delay);
  }
}

void write_windows(telemetry::JsonWriter& jw,
                   const std::vector<telemetry::WindowSample>& ws) {
  jw.begin_array();
  for (const auto& w : ws) {
    jw.begin_object();
    jw.field("index", w.index);
    jw.field("start", w.start_cycle);
    jw.field("end", w.end_cycle);
    jw.field("activations", w.activations);
    jw.field("drops", w.drops);
    jw.field("coverage", w.coverage);
    jw.field("th_rbl", w.avg_th_rbl);
    jw.field("delay", w.avg_delay);
    jw.end_object();
  }
  jw.end_array();
}

}  // namespace

int main(int argc, char** argv) {
  sim::print_bench_header(
      "Fig. 8 — DMS helps AMS pick the right victim (9 requests, 5 rows)",
      "AMS alone mis-drops an R1 request: Avg-RBL 1.8 -> 1.6; with DMS the "
      "true RBL(1) row R5 is dropped: Avg-RBL 1.8 -> 2.0");

  const Result alone = run_example(0);
  const Result with_dms = run_example(600);
  std::printf("%-18s acts=%llu served=%llu dropped=%llu Avg-RBL=%.2f\n",
              "AMS(1) alone:", static_cast<unsigned long long>(alone.activations),
              static_cast<unsigned long long>(alone.served),
              static_cast<unsigned long long>(alone.dropped), alone.avg_rbl);
  print_windows("AMS(1) alone", alone.windows);
  std::printf("%-18s acts=%llu served=%llu dropped=%llu Avg-RBL=%.2f\n",
              "DMS + AMS(1):", static_cast<unsigned long long>(with_dms.activations),
              static_cast<unsigned long long>(with_dms.served),
              static_cast<unsigned long long>(with_dms.dropped), with_dms.avg_rbl);
  print_windows("DMS + AMS(1)", with_dms.windows);

  const std::string json_path = sim::json_output_path(argc, argv);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      log_warn("cannot open '%s' for the JSON report", json_path.c_str());
      return 1;
    }
    telemetry::JsonWriter jw(f);
    jw.begin_object();
    jw.field("bench", "fig08_ams_example");
    jw.key("ams_alone");
    jw.begin_object();
    jw.field("activations", alone.activations);
    jw.field("served", alone.served);
    jw.field("dropped", alone.dropped);
    jw.field("avg_rbl", alone.avg_rbl);
    jw.key("windows");
    write_windows(jw, alone.windows);
    jw.end_object();
    jw.key("dms_ams");
    jw.begin_object();
    jw.field("activations", with_dms.activations);
    jw.field("served", with_dms.served);
    jw.field("dropped", with_dms.dropped);
    jw.field("avg_rbl", with_dms.avg_rbl);
    jw.key("windows");
    write_windows(jw, with_dms.windows);
    jw.end_object();
    jw.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("JSON report written to %s\n", json_path.c_str());
  }
  return 0;
}
