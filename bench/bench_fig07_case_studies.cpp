// Fig. 7: how AMS helps DMS — two case studies.
//  (a) LPS: DMS cannot reduce activations much without losing IPC; AMS(8)
//      reduces activations AND gains IPC at <1% application error.
//  (b) SCP: the 5% IPC budget blocks larger delays; adding AMS compensates
//      the IPC loss, so DMS(256)+AMS(8) achieves more total reduction.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

using namespace lazydram;

namespace {

void prefetch_case_study(sim::ExperimentRunner& runner, const std::string& app,
                         const std::vector<std::pair<std::string, core::SchemeSpec>>& cases) {
  runner.prefetch_baseline(app);
  for (const auto& c : cases) runner.prefetch(app, c.second, /*compute_error=*/true);
}

void case_study(sim::ExperimentRunner& runner, const std::string& app,
                const std::vector<std::pair<std::string, core::SchemeSpec>>& cases) {
  const sim::RunMetrics& base = runner.baseline(app);
  TextTable table({"Scheme", "Norm. activations", "Norm. IPC", "Coverage", "AppError"});
  for (const auto& [label, spec] : cases) {
    const sim::RunMetrics& m = runner.run(app, spec, /*compute_error=*/true);
    table.add_row({label,
                   TextTable::num(static_cast<double>(m.activations) /
                                      static_cast<double>(base.activations),
                                  3),
                   TextTable::num(m.ipc / base.ipc, 3),
                   TextTable::num(m.coverage * 100, 1) + "%",
                   TextTable::num(m.app_error * 100, 2) + "%"});
  }
  std::cout << "\n" << app << ":\n";
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  sim::print_bench_header(
      "Fig. 7 — AMS helps DMS (case studies LPS, SCP)",
      "(a) LPS: DMS gains little (2% at MTD), AMS(8) cuts ~16% acts and "
      "gains IPC; (b) SCP: AMS's IPC gain lets DMS adopt a larger delay");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  const SchemeParams& p = runner.config().scheme;

  const std::vector<std::pair<std::string, core::SchemeSpec>> lps_cases = {
      {"DMS(256)", core::make_static_dms_spec(256, p)},
      {"DMS(512)", core::make_static_dms_spec(512, p)},
      {"AMS(8)", core::make_static_ams_spec(8, p)}};
  const std::vector<std::pair<std::string, core::SchemeSpec>> scp_cases = {
      {"DMS(128)", core::make_static_dms_spec(128, p)},
      {"DMS(256)", core::make_static_dms_spec(256, p)},
      {"AMS(8)", core::make_static_ams_spec(8, p)},
      {"DMS(256)+AMS(8)", core::make_combo_spec(256, 8, p)}};

  prefetch_case_study(runner, "LPS", lps_cases);
  prefetch_case_study(runner, "SCP", scp_cases);
  runner.flush();

  case_study(runner, "LPS", lps_cases);
  case_study(runner, "SCP", scp_cases);
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
