// Google-benchmark microbenchmarks of the performance-critical simulator
// components: the DRAM command engine, FR-FCFS/lazy scheduling decisions,
// and the VP unit's nearest-line search.
//
// `bench_micro --perf` instead runs the perf-regression harness: it drives
// one fig12-configuration (Table I defaults) memory controller per scheme
// with a deterministic bursty-plus-idle request stream, plus one end-to-end
// workload run, and writes wall time, simulated cycles/sec and requests/sec
// per scheme to BENCH_perf.json. CI compares the report against the
// checked-in bench/BENCH_perf.json baseline (tools/check_perf.py).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache.hpp"
#include "common/assert.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/lazy_scheduler.hpp"
#include "core/scheduler_registry.hpp"
#include "core/scheme.hpp"
#include "core/value_predictor.hpp"
#include "dram/address.hpp"
#include "gpu/functional_memory.hpp"
#include "gpu/shard.hpp"
#include "mem/controller.hpp"
#include "sim/simulator.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/apps.hpp"

namespace {

using namespace lazydram;

void BM_DramCommandEngine(benchmark::State& state) {
  GpuConfig cfg;
  AddressMapper mapper(cfg);
  Rng rng(42);
  core::SchemeSpec spec;
  MemoryController mc(cfg, 0, mapper, core::make_scheduler(cfg, spec));
  RequestId id = 1;
  Cycle now = 0;
  for (auto _ : state) {
    if (mc.can_accept()) {
      MemRequest r;
      r.id = id++;
      r.line_addr =
          mapper.compose(0, static_cast<BankId>(rng.next_below(16)),
                         rng.next_below(256), static_cast<std::uint32_t>(
                                                  rng.next_below(16) * kLineBytes));
      r.kind = rng.next_bool(0.1) ? AccessKind::kWrite : AccessKind::kRead;
      mc.enqueue(r, now);
    }
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
    ++now;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_DramCommandEngine);

void BM_LazySchedulerDecide(benchmark::State& state) {
  GpuConfig cfg;
  AddressMapper mapper(cfg);
  Rng rng(7);
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, cfg.scheme);
  core::LazyScheduler sched(cfg.scheme, spec, cfg.banks_per_channel);
  PendingQueue queue(cfg.pending_queue_size, cfg.banks_per_channel);
  for (RequestId i = 1; i <= 96; ++i) {
    MemRequest r;
    r.id = i;
    r.line_addr = mapper.compose(0, static_cast<BankId>(rng.next_below(16)),
                                 rng.next_below(64), 0);
    r.loc = mapper.map(r.line_addr);
    r.approximable = true;
    queue.push(r);
  }
  Cycle now = 10000;
  BankView bank{3, true, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.decide(queue, bank, now));
    ++now;
  }
}
BENCHMARK(BM_LazySchedulerDecide);

void BM_ValuePredictorSearch(benchmark::State& state) {
  GpuConfig cfg;
  cache::Cache l2(cfg.l2);
  gpu::FunctionalMemory fmem;
  Rng rng(3);
  for (int i = 0; i < 1024; ++i)
    l2.fill(rng.next_below(1u << 20) * kLineBytes, false, false);
  core::ValuePredictor vp(l2, fmem, cfg.scheme.vp_set_radius);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vp.predict(rng.next_below(1u << 20) * kLineBytes));
  }
}
BENCHMARK(BM_ValuePredictorSearch);

// ---------------------------------------------------------------------------
// Perf-regression harness (--perf).
// ---------------------------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Bursty-plus-idle cadence of the perf streams: the saturated hot path
/// followed by the compute phases real workloads spend most cycles in.
constexpr Cycle kBusyPhase = 3000;
constexpr Cycle kIdlePhase = 1500;

struct SchemePerf {
  std::string scheme;
  Cycle mem_cycles = 0;
  std::uint64_t requests_completed = 0;
  double wall_seconds = 0.0;

  double cycles_per_second() const {
    return wall_seconds == 0.0 ? 0.0 : static_cast<double>(mem_cycles) / wall_seconds;
  }
  double requests_per_second() const {
    return wall_seconds == 0.0 ? 0.0
                               : static_cast<double>(requests_completed) / wall_seconds;
  }
};

/// Drives one fig12-configuration controller for `total_cycles` memory
/// cycles with a deterministic request stream that alternates bursty load
/// (the saturated hot path) and idle gaps (the compute phases real workloads
/// spend most cycles in), so both the indexed-queue and the idle-skip layers
/// are exercised by the measurement.
///
/// `tele`, when non-null, attaches the full observability layer (event
/// tracer, lifecycle collector, window sampling with per-bank columns) so
/// --perf-trace measures the tracing-on overhead of the same stream.
SchemePerf drive_controller(core::SchemeKind kind, Cycle total_cycles,
                            telemetry::Telemetry* tele = nullptr) {
  GpuConfig cfg;  // fig12 configuration: Table I defaults.
  // Honor the same A/B knob as sim::simulate so `LAZYDRAM_FAST=off
  // bench_micro --perf` measures the naive loop (see EXPERIMENTS.md).
  if (const char* fast = std::getenv("LAZYDRAM_FAST"); fast != nullptr) {
    if (std::string_view(fast) == "off" || std::string_view(fast) == "0")
      cfg.fast_path = false;
  }
  // Same discipline for the power accountant: `LAZYDRAM_POWER=off
  // bench_micro --perf` measures the accounting-free hot path.
  if (const char* power = std::getenv("LAZYDRAM_POWER"); power != nullptr) {
    if (std::string_view(power) == "off" || std::string_view(power) == "0")
      cfg.power_accounting = false;
  }
  AddressMapper mapper(cfg);
  core::SchemeSpec spec = core::make_scheme_spec(kind, cfg.scheme);
  std::unique_ptr<Scheduler> sched = core::make_scheduler(cfg, spec);
  auto* lazy = dynamic_cast<core::LazyScheduler*>(sched.get());
  LD_ASSERT(lazy != nullptr);
  // The harness has no L2/VP warm-up; arm AMS directly so the drop pass runs.
  lazy->set_ams_ready(true);
  if (tele != nullptr) {
    lazy->set_telemetry(&tele->tracer(), 0);
    lazy->set_lifecycle(tele->lifecycle());
  }
  MemoryController mc(cfg, 0, mapper, std::move(sched));
  if (tele != nullptr) {
    mc.set_tracer(&tele->tracer());
    mc.set_lifecycle(tele->lifecycle());
    mc.enable_window_sampling(cfg.scheme.profile_window, &tele->tracer());
  }

  Rng rng(0xF161200ull + static_cast<std::uint64_t>(kind));
  RequestId id = 1;
  std::uint64_t completed = 0;

  const auto start = std::chrono::steady_clock::now();
  for (Cycle now = 0; now < total_cycles; ++now) {
    const bool busy = now % (kBusyPhase + kIdlePhase) < kBusyPhase;
    if (busy && mc.can_accept() && rng.next_bool(0.35)) {
      MemRequest r;
      r.id = id++;
      r.line_addr = mapper.compose(
          0, static_cast<BankId>(rng.next_below(cfg.banks_per_channel)),
          rng.next_below(256),
          static_cast<std::uint32_t>(rng.next_below(16) * kLineBytes));
      r.kind = rng.next_bool(0.15) ? AccessKind::kWrite : AccessKind::kRead;
      r.approximable = r.kind == AccessKind::kRead && rng.next_bool(0.7);
      mc.enqueue(r, now);
    }
    mc.tick(now);
    while (mc.pop_reply(now)) ++completed;
  }
  // Flushing the final partial window is part of the traced run's cost.
  if (tele != nullptr) mc.finalize();

  SchemePerf perf;
  perf.wall_seconds = seconds_since(start);
  perf.scheme = core::scheme_name(kind);
  perf.mem_cycles = total_cycles;
  perf.requests_completed = completed;
  return perf;
}

// ---------------------------------------------------------------------------
// Sharded-driver lane (--shard): all channels of the fig12 configuration
// driven through the event-wheel horizons (next_event / advance_idle), first
// on one thread and then fanned over worker lanes with gpu::ShardPool — the
// same machinery GpuTop's sharded main loop uses. The request streams are
// precomputed so every mode consumes the identical per-channel stream, and
// the aggregate served/completed counts are asserted equal across modes.
// ---------------------------------------------------------------------------

/// One precomputed enqueue: the stream is fixed up front so skipping cycles
/// can't perturb the RNG draw sequence between drive modes.
struct StreamEvent {
  Cycle cycle = 0;
  MemRequest req;
};

/// Cadence of the sharded-driver streams: the compute-dominated shape the
/// paper's latency-tolerance argument rests on (Section II) — short memory
/// bursts separated by long compute phases in which the channel sits quiet.
/// This is the regime the event wheel exists for: the per-tick loop pays for
/// every quiet cycle, the wheel fast-forwards over them.
constexpr Cycle kShardBusyPhase = 1500;
constexpr Cycle kShardIdlePhase = 118500;

std::vector<StreamEvent> make_stream(const GpuConfig& cfg, const AddressMapper& mapper,
                                     ChannelId ch, Cycle total_cycles) {
  Rng rng(0x5AD0ull + ch);
  RequestId id = 1;
  std::vector<StreamEvent> out;
  for (Cycle now = 0; now < total_cycles; ++now) {
    const bool busy = now % (kShardBusyPhase + kShardIdlePhase) < kShardBusyPhase;
    if (!busy || !rng.next_bool(0.35)) continue;
    StreamEvent e;
    e.cycle = now;
    e.req.id = id++;
    e.req.line_addr = mapper.compose(
        ch, static_cast<BankId>(rng.next_below(cfg.banks_per_channel)),
        rng.next_below(256),
        static_cast<std::uint32_t>(rng.next_below(16) * kLineBytes));
    e.req.kind = rng.next_bool(0.15) ? AccessKind::kWrite : AccessKind::kRead;
    e.req.approximable = e.req.kind == AccessKind::kRead && rng.next_bool(0.7);
    out.push_back(e);
  }
  return out;
}

std::vector<std::unique_ptr<MemoryController>> make_channels(
    const GpuConfig& cfg, const AddressMapper& mapper, const core::SchemeSpec& spec) {
  std::vector<std::unique_ptr<MemoryController>> mcs;
  for (ChannelId ch = 0; ch < cfg.num_channels; ++ch) {
    std::unique_ptr<Scheduler> sched = core::make_scheduler(cfg, spec);
    auto* lazy = dynamic_cast<core::LazyScheduler*>(sched.get());
    LD_ASSERT(lazy != nullptr);
    lazy->set_ams_ready(true);
    mcs.push_back(
        std::make_unique<MemoryController>(cfg, ch, mapper, std::move(sched)));
  }
  return mcs;
}

/// Drives one channel over its stream cycle by cycle (the legacy loop body).
std::uint64_t drive_one_legacy(MemoryController& mc,
                               const std::vector<StreamEvent>& stream,
                               Cycle total_cycles) {
  std::uint64_t completed = 0;
  std::size_t idx = 0;
  for (Cycle now = 0; now < total_cycles; ++now) {
    if (idx < stream.size() && stream[idx].cycle == now) {
      if (mc.can_accept()) mc.enqueue(stream[idx].req, now);
      ++idx;
    }
    mc.tick(now);
    while (mc.pop_reply(now)) ++completed;
  }
  while (mc.pop_reply(total_cycles - 1)) ++completed;
  return completed;
}

/// Drives one channel over its stream through the event-wheel horizons:
/// quiet spans are fast-forwarded via next_event()/advance_idle(), with the
/// skip additionally bounded by the next stream enqueue. Replies are popped
/// at real ticks only; the final drain makes the completed count identical
/// to the per-tick loop.
std::uint64_t drive_one_wheel(MemoryController& mc,
                              const std::vector<StreamEvent>& stream,
                              Cycle total_cycles) {
  std::uint64_t completed = 0;
  std::size_t idx = 0;
  const auto real_tick = [&](Cycle now) {
    if (idx < stream.size() && stream[idx].cycle == now) {
      if (mc.can_accept()) mc.enqueue(stream[idx].req, now);
      ++idx;
    }
    mc.tick(now);
    while (mc.pop_reply(now)) ++completed;
  };
  real_tick(0);
  Cycle m = 0;  // Last processed cycle.
  while (m + 1 < total_cycles) {
    const Cycle next_stream = idx < stream.size() ? stream[idx].cycle : kNeverCycle;
    const Cycle ev = std::min(mc.next_event(m), next_stream);
    if (ev > m + 1) {
      const Cycle to = std::min(ev - 1, total_cycles - 1);
      mc.advance_idle(m, to);
      m = to;
      continue;
    }
    ++m;
    real_tick(m);
  }
  while (mc.pop_reply(total_cycles - 1)) ++completed;
  return completed;
}

struct ShardedPerf {
  unsigned lanes = 1;
  Cycle mem_cycles = 0;  ///< Aggregate over channels.
  std::uint64_t requests_completed = 0;
  double legacy_wall = 0.0;
  double wheel_wall = 0.0;
  double sharded_wall = 0.0;
  double speedup() const {
    return sharded_wall == 0.0 ? 0.0 : legacy_wall / sharded_wall;
  }
};

ShardedPerf drive_sharded(Cycle cycles_per_channel, unsigned shard) {
  GpuConfig cfg;  // fig12 configuration: Table I defaults.
  AddressMapper mapper(cfg);
  const core::SchemeSpec spec =
      core::make_scheme_spec(core::SchemeKind::kDynCombo, cfg.scheme);
  const unsigned channels = cfg.num_channels;

  std::vector<std::vector<StreamEvent>> streams;
  for (ChannelId ch = 0; ch < channels; ++ch)
    streams.push_back(make_stream(cfg, mapper, ch, cycles_per_channel));

  ShardedPerf perf;
  perf.lanes = std::min(std::max(shard, 1u), channels);
  perf.mem_cycles = cycles_per_channel * channels;

  std::uint64_t legacy_completed = 0, legacy_served = 0;

  // Best-of-3 per mode, modes interleaved within each repetition so host
  // noise (a shared/throttled box) hits all three alike; min-wall is the
  // standard robust estimator for wall-clock microbenchmarks.
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    // Legacy: every channel ticked every cycle, one thread.
    {
      auto mcs = make_channels(cfg, mapper, spec);
      std::uint64_t completed = 0, served = 0;
      const auto start = std::chrono::steady_clock::now();
      for (ChannelId ch = 0; ch < channels; ++ch)
        completed += drive_one_legacy(*mcs[ch], streams[ch], cycles_per_channel);
      const double wall = seconds_since(start);
      if (rep == 0 || wall < perf.legacy_wall) perf.legacy_wall = wall;
      for (const auto& mc : mcs) served += mc->reads_served();
      legacy_completed = completed;
      legacy_served = served;
    }

    // Event wheel, one thread.
    {
      auto mcs = make_channels(cfg, mapper, spec);
      std::uint64_t completed = 0, served = 0;
      const auto start = std::chrono::steady_clock::now();
      for (ChannelId ch = 0; ch < channels; ++ch)
        completed += drive_one_wheel(*mcs[ch], streams[ch], cycles_per_channel);
      const double wall = seconds_since(start);
      if (rep == 0 || wall < perf.wheel_wall) perf.wheel_wall = wall;
      for (const auto& mc : mcs) served += mc->reads_served();
      // The drives must agree exactly — the wheel and the lanes are
      // execution strategies, not models.
      LD_ASSERT_MSG(completed == legacy_completed && served == legacy_served,
                    "event-wheel drive diverged from the per-tick drive");
    }

    // Event wheel fanned over worker lanes (channel ch on lane ch % lanes).
    {
      auto mcs = make_channels(cfg, mapper, spec);
      std::vector<std::uint64_t> lane_completed(channels, 0);
      std::uint64_t completed = 0, served = 0;
      gpu::ShardPool pool(perf.lanes);
      const auto start = std::chrono::steady_clock::now();
      pool.run([&](unsigned lane) {
        for (ChannelId ch = lane; ch < channels; ch += perf.lanes)
          lane_completed[ch] =
              drive_one_wheel(*mcs[ch], streams[ch], cycles_per_channel);
      });
      const double wall = seconds_since(start);
      if (rep == 0 || wall < perf.sharded_wall) perf.sharded_wall = wall;
      for (ChannelId ch = 0; ch < channels; ++ch) completed += lane_completed[ch];
      for (const auto& mc : mcs) served += mc->reads_served();
      LD_ASSERT_MSG(completed == legacy_completed && served == legacy_served,
                    "sharded drive diverged from the per-tick drive");
    }
  }
  perf.requests_completed = legacy_completed;
  return perf;
}

// ---------------------------------------------------------------------------
// Self-profiler overhead lane: the same end-to-end SCP run with the whole
// self-observability layer off (profiler disarmed, flight recorder depth 0)
// vs on (profiler armed, heartbeat armed-but-silent, flight at its default
// depth). The on/off wall ratio is the overhead CI gates at 5%
// (check_perf.py --max-selfprof-overhead 1.05), and LD_ASSERT enforces the
// bit-identity contract: both runs must retire the same core-cycle count.
// ---------------------------------------------------------------------------

struct SelfProfPerf {
  double off_wall = 0.0;
  double on_wall = 0.0;
  double overhead() const { return off_wall == 0.0 ? 0.0 : on_wall / off_wall; }
};

SelfProfPerf measure_selfprof_overhead(unsigned shard) {
  sim::RunConfig off_cfg;
  off_cfg.gpu.shard_threads = shard;
  off_cfg.spec =
      core::make_scheme_spec(core::SchemeKind::kDynCombo, off_cfg.gpu.scheme);
  off_cfg.ignore_env_outputs = true;
  off_cfg.flight_depth = 0;
  sim::RunConfig on_cfg = off_cfg;
  on_cfg.flight_depth =
      static_cast<std::int64_t>(telemetry::FlightRecorder::kDefaultDepth);
  on_cfg.gpu.self_profile = true;
  // Armed but silent: the heartbeat deadline checks are on the measured path,
  // the period just never elapses within the run.
  on_cfg.gpu.heartbeat_seconds = 3600.0;

  const auto wl = workloads::make_scp();
  SelfProfPerf perf;
  Cycle off_cycles = 0, on_cycles = 0;
  // Interleaved best-of-3, same estimator as the sharded lane. The arm
  // switch is process-global, so each rep disarms before the off run and
  // lets on_cfg re-arm; reset() drops the zone data a rep accumulated.
  // ($LAZYDRAM_SELFPROF=1 would arm the off runs too and void the
  // measurement — don't set it around --perf.)
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    telemetry::SelfProfiler::set_enabled(false);
    const auto off = sim::simulate_full(*wl, off_cfg);
    if (rep == 0 || off.telemetry.profile.run_seconds < perf.off_wall)
      perf.off_wall = off.telemetry.profile.run_seconds;
    off_cycles = off.metrics.core_cycles;

    telemetry::SelfProfiler::instance().reset();
    const auto on = sim::simulate_full(*wl, on_cfg);
    if (rep == 0 || on.telemetry.profile.run_seconds < perf.on_wall)
      perf.on_wall = on.telemetry.profile.run_seconds;
    on_cycles = on.metrics.core_cycles;
  }
  telemetry::SelfProfiler::set_enabled(false);
  telemetry::SelfProfiler::instance().reset();
  LD_ASSERT_MSG(off_cycles == on_cycles,
                "self-profiled run diverged from the unprofiled run");
  return perf;
}

/// File-name-safe spelling of a scheme label ("Dyn-DMS+AMS" -> "Dyn_DMS_AMS").
std::string scheme_file_name(const std::string& scheme) {
  std::string out = scheme;
  for (char& c : out)
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  return out;
}

int run_perf(const std::string& out_path, Cycle cycles_per_scheme,
             const std::string& trace_dir, unsigned shard) {
  std::vector<SchemePerf> results;
  double total_wall = 0.0;
  for (core::SchemeKind kind : core::all_schemes()) {
    // With --perf-trace, every scheme runs with the full observability layer
    // on and exports a Perfetto-viewable chrome trace into `trace_dir`.
    std::unique_ptr<telemetry::Telemetry> tele;
    if (!trace_dir.empty()) {
      tele = std::make_unique<telemetry::Telemetry>();
      const std::string path =
          trace_dir + "/" + scheme_file_name(core::scheme_name(kind)) + ".json";
      if (!tele->open_chrome_trace(path)) {
        std::fprintf(stderr, "bench_micro: cannot write trace '%s'\n", path.c_str());
        return 1;
      }
      // 1-in-64 lifecycle sampling: the documented traced-run budget
      // (check_perf.py --max-slowdown 3.0 in CI) assumes sampled spans.
      tele->enable_lifecycle(64);
    }
    SchemePerf perf = drive_controller(kind, cycles_per_scheme, tele.get());
    std::printf("perf%c %-16s %8.3f s  %12.0f mem-cycles/s  %10.0f requests/s\n",
                trace_dir.empty() ? ' ' : '*', perf.scheme.c_str(),
                perf.wall_seconds, perf.cycles_per_second(),
                perf.requests_per_second());
    total_wall += perf.wall_seconds;
    results.push_back(std::move(perf));
  }

  // Sharded-driver lane: all channels over the same streams, per-tick vs
  // event wheel vs worker lanes. Untraced only — the lane measures raw
  // driver throughput (the sharded telemetry path is covered by the
  // Sharding.* byte-identity tests).
  ShardedPerf sharded;
  if (trace_dir.empty()) {
    sharded = drive_sharded(cycles_per_scheme, shard);
    std::printf("perf  %-16s %8.3f s  %12.0f mem-cycles/s  (per-tick, 1 thread)\n",
                "shard:legacy", sharded.legacy_wall,
                sharded.legacy_wall == 0.0
                    ? 0.0
                    : static_cast<double>(sharded.mem_cycles) / sharded.legacy_wall);
    std::printf("perf  %-16s %8.3f s  %12.0f mem-cycles/s  (wheel, 1 thread)\n",
                "shard:wheel", sharded.wheel_wall,
                sharded.wheel_wall == 0.0
                    ? 0.0
                    : static_cast<double>(sharded.mem_cycles) / sharded.wheel_wall);
    std::printf("perf  %-16s %8.3f s  %12.0f mem-cycles/s  (%u lanes, %.2fx)\n",
                "shard:lanes", sharded.sharded_wall,
                sharded.sharded_wall == 0.0
                    ? 0.0
                    : static_cast<double>(sharded.mem_cycles) / sharded.sharded_wall,
                sharded.lanes, sharded.speedup());
    total_wall += sharded.legacy_wall + sharded.wheel_wall + sharded.sharded_wall;
  }

  // Self-profiler overhead lane (untraced only — tracing already dominates
  // the traced lane's overhead, and the gate is about the default path).
  SelfProfPerf selfprof;
  if (trace_dir.empty()) {
    selfprof = measure_selfprof_overhead(shard);
    std::printf("perf  %-16s %8.3f s on / %8.3f s off  (%.3fx overhead)\n",
                "selfprof:e2e", selfprof.on_wall, selfprof.off_wall,
                selfprof.overhead());
    total_wall += selfprof.on_wall + selfprof.off_wall;
  }

  // One end-to-end run (full GPU model, all channels) so controller-level
  // wins that evaporate at system level would show up in the report.
  sim::RunConfig e2e_cfg;
  e2e_cfg.gpu.shard_threads = shard;
  e2e_cfg.spec = core::make_scheme_spec(core::SchemeKind::kDynCombo,
                                        e2e_cfg.gpu.scheme);
  const auto e2e = sim::simulate_full(*workloads::make_scp(), e2e_cfg);
  const double e2e_wall = e2e.telemetry.profile.run_seconds;
  const double e2e_ccps = e2e.telemetry.profile.core_cycles_per_second;
  std::printf("perf  %-16s %8.3f s  %12.0f core-cycles/s  (end-to-end SCP)\n",
              "Dyn-DMS+AMS", e2e_wall, e2e_ccps);
  total_wall += e2e_wall;

  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  telemetry::JsonWriter w(out);
  w.begin_object();
  w.field("benchmark", "bench_micro --perf");
  w.field("config", "fig12 (Table I defaults)");
  w.field("traced", !trace_dir.empty());
  w.field("cycles_per_scheme", static_cast<std::uint64_t>(cycles_per_scheme));
  w.key("schemes");
  w.begin_array();
  for (const SchemePerf& perf : results) {
    w.begin_object();
    w.field("scheme", perf.scheme);
    w.field("wall_seconds", perf.wall_seconds);
    w.field("mem_cycles", static_cast<std::uint64_t>(perf.mem_cycles));
    w.field("mem_cycles_per_second", perf.cycles_per_second());
    w.field("requests_completed", perf.requests_completed);
    w.field("requests_per_second", perf.requests_per_second());
    w.end_object();
  }
  w.end_array();
  if (trace_dir.empty()) {
    w.key("sharded");
    w.begin_object();
    w.field("lanes", static_cast<std::uint64_t>(sharded.lanes));
    w.field("mem_cycles", static_cast<std::uint64_t>(sharded.mem_cycles));
    w.field("requests_completed", sharded.requests_completed);
    w.field("legacy_wall_seconds", sharded.legacy_wall);
    w.field("wheel_wall_seconds", sharded.wheel_wall);
    w.field("sharded_wall_seconds", sharded.sharded_wall);
    w.field("speedup", sharded.speedup());
    w.end_object();
    w.key("self_profile");
    w.begin_object();
    w.field("off_wall_seconds", selfprof.off_wall);
    w.field("on_wall_seconds", selfprof.on_wall);
    w.field("overhead", selfprof.overhead());
    w.end_object();
  }
  w.key("end_to_end");
  w.begin_object();
  w.field("workload", "SCP");
  w.field("scheme", "Dyn-DMS+AMS");
  w.field("wall_seconds", e2e_wall);
  w.field("core_cycles_per_second", e2e_ccps);
  w.end_object();
  w.field("total_wall_seconds", total_wall);
  w.end_object();
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("perf report written to %s (total %.3f s)\n", out_path.c_str(),
              total_wall);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool perf = false;
  std::string out_path = "BENCH_perf.json";
  std::string trace_dir;
  Cycle cycles_per_scheme = 2'000'000;
  unsigned shard = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf") == 0) {
      perf = true;
    } else if (std::strcmp(argv[i], "--perf-out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--perf-cycles") == 0 && i + 1 < argc) {
      cycles_per_scheme = static_cast<Cycle>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--perf-trace") == 0 && i + 1 < argc) {
      // Existing directory to drop one chrome trace per scheme into; turns
      // the harness into the tracing-on overhead measurement.
      trace_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      // Worker lanes for the sharded-driver lane and the end-to-end run
      // (GpuConfig::shard_threads); 0 keeps both on the legacy loop.
      shard = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  if (perf) return run_perf(out_path, cycles_per_scheme, trace_dir, shard);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
