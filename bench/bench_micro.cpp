// Google-benchmark microbenchmarks of the performance-critical simulator
// components: the DRAM command engine, FR-FCFS/lazy scheduling decisions,
// and the VP unit's nearest-line search.
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/cache.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/lazy_scheduler.hpp"
#include "core/value_predictor.hpp"
#include "dram/address.hpp"
#include "gpu/functional_memory.hpp"
#include "mem/controller.hpp"

namespace {

using namespace lazydram;

void BM_DramCommandEngine(benchmark::State& state) {
  GpuConfig cfg;
  AddressMapper mapper(cfg);
  Rng rng(42);
  core::SchemeSpec spec;
  MemoryController mc(cfg, 0, mapper,
                      std::make_unique<core::LazyScheduler>(cfg.scheme, spec,
                                                            cfg.banks_per_channel));
  RequestId id = 1;
  Cycle now = 0;
  for (auto _ : state) {
    if (mc.can_accept()) {
      MemRequest r;
      r.id = id++;
      r.line_addr =
          mapper.compose(0, static_cast<BankId>(rng.next_below(16)),
                         rng.next_below(256), static_cast<std::uint32_t>(
                                                  rng.next_below(16) * kLineBytes));
      r.kind = rng.next_bool(0.1) ? AccessKind::kWrite : AccessKind::kRead;
      mc.enqueue(r, now);
    }
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
    ++now;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_DramCommandEngine);

void BM_LazySchedulerDecide(benchmark::State& state) {
  GpuConfig cfg;
  AddressMapper mapper(cfg);
  Rng rng(7);
  core::SchemeSpec spec = core::make_scheme_spec(core::SchemeKind::kDynCombo, cfg.scheme);
  core::LazyScheduler sched(cfg.scheme, spec, cfg.banks_per_channel);
  PendingQueue queue(cfg.pending_queue_size, cfg.banks_per_channel);
  for (RequestId i = 1; i <= 96; ++i) {
    MemRequest r;
    r.id = i;
    r.line_addr = mapper.compose(0, static_cast<BankId>(rng.next_below(16)),
                                 rng.next_below(64), 0);
    r.loc = mapper.map(r.line_addr);
    r.approximable = true;
    queue.push(r);
  }
  Cycle now = 10000;
  BankView bank{3, true, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.decide(queue, bank, now));
    ++now;
  }
}
BENCHMARK(BM_LazySchedulerDecide);

void BM_ValuePredictorSearch(benchmark::State& state) {
  GpuConfig cfg;
  cache::Cache l2(cfg.l2);
  gpu::FunctionalMemory fmem;
  Rng rng(3);
  for (int i = 0; i < 1024; ++i)
    l2.fill(rng.next_below(1u << 20) * kLineBytes, false, false);
  core::ValuePredictor vp(l2, fmem, cfg.scheme.vp_set_radius);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vp.predict(rng.next_below(1u << 20) * kLineBytes));
  }
}
BENCHMARK(BM_ValuePredictorSearch);

}  // namespace

BENCHMARK_MAIN();
