// Section V, "Effect on Memory Energy and Peak Bandwidth": projecting the
// Dyn-DMS+Dyn-AMS row-energy reduction onto whole-memory-system energy for
// HBM1 (row energy ~50% of memory energy) and HBM2 (~25%), plus the
// absolute power / bandwidth headroom numbers for a 60W memory budget.
#include <cstdio>

#include "dram/power.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "HBM projection — memory-system energy savings of Dyn-DMS+Dyn-AMS",
      "~22% memory energy on HBM1 (50% row share), ~11% on HBM2 (25%); "
      "up to 8W saved or ~90 GB/s extra peak bandwidth at 60W");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  for (const std::string& app : workloads::fig12_workload_names()) {
    runner.prefetch_baseline(app);
    runner.prefetch_scheme(app, core::SchemeKind::kDynCombo, /*compute_error=*/false);
  }
  runner.flush();

  std::vector<double> reductions, total_reductions, gddr5_shares;
  std::vector<double> hbm1_shares, hbm2_shares;
  for (const std::string& app : workloads::fig12_workload_names()) {
    const sim::RunMetrics& base = runner.baseline(app);
    const sim::RunMetrics& combo =
        runner.run_scheme(app, core::SchemeKind::kDynCombo, /*compute_error=*/false);
    reductions.push_back(1.0 - combo.row_energy_nj / base.row_energy_nj);
    total_reductions.push_back(1.0 - combo.total_energy_nj / base.total_energy_nj);
    gddr5_shares.push_back(base.measured_row_share);

    // Derived HBM row shares: rescale the *measured* GDDR5 baseline
    // breakdown per component (row energy per ACT drops only where the
    // activation granularity does — HBM2 pseudo-channel; access shrinks
    // most with the short low-voltage I/O; background and refresh shrink
    // moderately) and recompute row / total for this workload's command mix.
    const EnergyParams ep;
    const auto derived_share = [&](double row_scale, double access_scale, double bg_scale) {
      const double row = base.row_energy_nj * row_scale;
      const double total = row + base.access_energy_nj * access_scale +
                           (base.background_energy_nj + base.refresh_energy_nj) * bg_scale;
      return total > 0.0 ? row / total : 0.0;
    };
    hbm1_shares.push_back(
        derived_share(ep.hbm1_row_scale, ep.hbm1_access_scale, ep.hbm1_background_scale));
    hbm2_shares.push_back(
        derived_share(ep.hbm2_row_scale, ep.hbm2_access_scale, ep.hbm2_background_scale));
  }
  const double row_reduction = sim::mean(reductions);
  const EnergyParams energy;

  const double hbm1 = project_memory_energy_reduction(row_reduction, energy.hbm1_row_share);
  const double hbm2 = project_memory_energy_reduction(row_reduction, energy.hbm2_row_share);

  std::printf("Average row-energy reduction (groups 1-3): %.1f%%\n", row_reduction * 100);
  std::printf("HBM1 (row share %.0f%%): %.1f%% memory-system energy reduction\n",
              energy.hbm1_row_share * 100, hbm1 * 100);
  std::printf("HBM2 (row share %.0f%%): %.1f%% memory-system energy reduction\n",
              energy.hbm2_row_share * 100, hbm2 * 100);

  // Measured-breakdown cross-check (zeros mean the accountant is off). The
  // derived shares replace the analytic constants with shares computed from
  // the measured GDDR5 breakdown; the consistency delta says how far the
  // paper's assumed constants sit from this model's measured arithmetic.
  const double gddr5_share = sim::mean(gddr5_shares);
  const double hbm1_share = sim::mean(hbm1_shares);
  const double hbm2_share = sim::mean(hbm2_shares);
  std::printf("\nMeasured GDDR5 breakdown: row share %.3f; whole-DRAM reduction "
              "(all components, measured) %.1f%%\n",
              gddr5_share, sim::mean(total_reductions) * 100);
  std::printf("HBM1 derived row share %.3f (analytic %.2f, delta %+.3f): "
              "%.1f%% projected reduction\n",
              hbm1_share, energy.hbm1_row_share, hbm1_share - energy.hbm1_row_share,
              project_memory_energy_reduction(row_reduction, hbm1_share) * 100);
  std::printf("HBM2 derived row share %.3f (analytic %.2f, delta %+.3f): "
              "%.1f%% projected reduction\n",
              hbm2_share, energy.hbm2_row_share, hbm2_share - energy.hbm2_row_share,
              project_memory_energy_reduction(row_reduction, hbm2_share) * 100);

  // 60W memory budget at peak bandwidth (Section V's absolute numbers).
  constexpr double kMemBudgetW = 60.0;
  constexpr double kHbm2PeakGBs = 900.0 / 60.0 * 60.0;  // ~900 GB/s class part.
  std::printf("At a %.0fW memory budget (HBM2): %.1fW power headroom, or ~%.0f GB/s "
              "additional peak bandwidth at iso-power\n",
              kMemBudgetW, hbm2 * kMemBudgetW, hbm2 * kHbm2PeakGBs);
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
