// Section V, "Effect on Memory Energy and Peak Bandwidth": projecting the
// Dyn-DMS+Dyn-AMS row-energy reduction onto whole-memory-system energy for
// HBM1 (row energy ~50% of memory energy) and HBM2 (~25%), plus the
// absolute power / bandwidth headroom numbers for a 60W memory budget.
#include <cstdio>

#include "dram/energy.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "HBM projection — memory-system energy savings of Dyn-DMS+Dyn-AMS",
      "~22% memory energy on HBM1 (50% row share), ~11% on HBM2 (25%); "
      "up to 8W saved or ~90 GB/s extra peak bandwidth at 60W");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  for (const std::string& app : workloads::fig12_workload_names()) {
    runner.prefetch_baseline(app);
    runner.prefetch_scheme(app, core::SchemeKind::kDynCombo, /*compute_error=*/false);
  }
  runner.flush();

  std::vector<double> reductions;
  for (const std::string& app : workloads::fig12_workload_names()) {
    const sim::RunMetrics& base = runner.baseline(app);
    const sim::RunMetrics& combo =
        runner.run_scheme(app, core::SchemeKind::kDynCombo, /*compute_error=*/false);
    reductions.push_back(1.0 - combo.row_energy_nj / base.row_energy_nj);
  }
  const double row_reduction = sim::mean(reductions);
  const EnergyParams energy;

  const double hbm1 = project_memory_energy_reduction(row_reduction, energy.hbm1_row_share);
  const double hbm2 = project_memory_energy_reduction(row_reduction, energy.hbm2_row_share);

  std::printf("Average row-energy reduction (groups 1-3): %.1f%%\n", row_reduction * 100);
  std::printf("HBM1 (row share %.0f%%): %.1f%% memory-system energy reduction\n",
              energy.hbm1_row_share * 100, hbm1 * 100);
  std::printf("HBM2 (row share %.0f%%): %.1f%% memory-system energy reduction\n",
              energy.hbm2_row_share * 100, hbm2 * 100);

  // 60W memory budget at peak bandwidth (Section V's absolute numbers).
  constexpr double kMemBudgetW = 60.0;
  constexpr double kHbm2PeakGBs = 900.0 / 60.0 * 60.0;  // ~900 GB/s class part.
  std::printf("At a %.0fW memory budget (HBM2): %.1fW power headroom, or ~%.0f GB/s "
              "additional peak bandwidth at iso-power\n",
              kMemBudgetW, hbm2 * kMemBudgetW, hbm2 * kHbm2PeakGBs);
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
