// Ablation: value-predictor design. Sweeps the nearby-set search radius and
// compares the paper's nearest-line predictor against a zero-fill predictor
// — application error is the metric the VP design controls (Section IV-D).
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Ablation — VP unit: search radius and predictor kind vs app error",
      "nearest-line prediction bounds error; radius trades search cost for "
      "donor quality (Section IV-D)");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  TextTable table({"Workload", "r=0", "r=1", "r=4", "r=8", "zero-fill"});

  const auto radius_config = [&](unsigned radius) {
    sim::RunConfig rc;
    rc.gpu = runner.config();
    rc.gpu.scheme.vp_set_radius = radius;
    rc.spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, rc.gpu.scheme);
    return rc;
  };
  sim::RunConfig zero;
  zero.gpu = runner.config();
  zero.gpu.scheme.vp_zero_fill = true;
  zero.spec = core::make_scheme_spec(core::SchemeKind::kStaticAms, zero.gpu.scheme);

  for (const std::string& app :
       {std::string("SCP"), std::string("LPS"), std::string("MVT"),
        std::string("meanfilter")}) {
    for (const unsigned radius : {0u, 1u, 4u, 8u})
      runner.prefetch_custom(app, radius_config(radius),
                             "ablvp/r" + std::to_string(radius));
    runner.prefetch_custom(app, zero, "ablvp/zero");
  }
  runner.flush();

  for (const std::string& app :
       {std::string("SCP"), std::string("LPS"), std::string("MVT"),
        std::string("meanfilter")}) {
    std::vector<std::string> row = {app};
    for (const unsigned radius : {0u, 1u, 4u, 8u}) {
      const sim::RunMetrics& m = runner.run_custom(app, radius_config(radius),
                                                   "ablvp/r" + std::to_string(radius));
      row.push_back(TextTable::num(m.app_error * 100, 2) + "%");
    }
    const sim::RunMetrics& mz = runner.run_custom(app, zero, "ablvp/zero");
    row.push_back(TextTable::num(mz.app_error * 100, 2) + "%");
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
