// Fig. 4: effect of delayed memory scheduling on (a) the number of row
// activations and (b) IPC, for DMS(64..2048), normalized to baseline.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 4 — DMS(X) sweep: normalized activations (a) and IPC (b)",
      "(a) activations drop with delay, avg reduction up to ~31% at 2048; "
      "(b) many apps keep >=95% IPC at moderate delays, dropping at large X");

  const std::vector<Cycle> delays = {64, 128, 256, 512, 1024, 2048};
  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));

  for (const std::string& app : sim::bench_workloads()) {
    runner.prefetch_baseline(app);
    for (const Cycle d : delays)
      runner.prefetch(app, core::make_static_dms_spec(d, runner.config().scheme), false);
  }
  runner.flush();

  for (const bool ipc_view : {false, true}) {
    std::vector<std::string> header = {"Workload"};
    for (const Cycle d : delays) header.push_back("DMS(" + std::to_string(d) + ")");
    TextTable table(header);
    std::vector<std::vector<double>> agg(delays.size());

    for (const std::string& app : sim::bench_workloads()) {
      const sim::RunMetrics& base = runner.baseline(app);
      std::vector<std::string> row = {app};
      for (std::size_t i = 0; i < delays.size(); ++i) {
        const sim::RunMetrics& m = runner.run(
            app, core::make_static_dms_spec(delays[i], runner.config().scheme), false);
        const double v = ipc_view
                             ? m.ipc / base.ipc
                             : static_cast<double>(m.activations) /
                                   static_cast<double>(base.activations);
        row.push_back(TextTable::num(v, 3));
        agg[i].push_back(v);
      }
      table.add_row(std::move(row));
    }
    std::vector<std::string> gm = {"GEOMEAN"};
    for (auto& v : agg) gm.push_back(TextTable::num(sim::geomean(v), 3));
    table.add_row(std::move(gm));

    std::cout << (ipc_view ? "\n(b) Normalized IPC\n" : "\n(a) Normalized activations\n");
    table.print(std::cout);
  }
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
