// Fig. 15: delay-only mode for the low-error-tolerance applications
// (Group 4). AMS must not be applied, but Static-/Dyn-DMS still reduce row
// energy with <5% IPC loss; Dyn-DMS trades a little more IPC for more
// energy.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 15 — Group-4 (low error tolerance) apps, delay-only schemes",
      "both DMS schemes cut row energy at <5% IPC loss; Dyn-DMS cuts more");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  for (const std::string& app : workloads::group4_workload_names()) {
    runner.prefetch_baseline(app);
    runner.prefetch_scheme(app, core::SchemeKind::kStaticDms, /*compute_error=*/false);
    runner.prefetch_scheme(app, core::SchemeKind::kDynDms, /*compute_error=*/false);
  }
  runner.flush();

  TextTable table({"Workload", "S-DMS rowE", "Dyn-DMS rowE", "S-DMS IPC", "Dyn-DMS IPC"});
  std::vector<double> se, de, si, di;

  for (const std::string& app : workloads::group4_workload_names()) {
    const sim::RunMetrics& base = runner.baseline(app);
    const sim::RunMetrics& s =
        runner.run_scheme(app, core::SchemeKind::kStaticDms, /*compute_error=*/false);
    const sim::RunMetrics& d =
        runner.run_scheme(app, core::SchemeKind::kDynDms, /*compute_error=*/false);
    const double sev = s.row_energy_nj / base.row_energy_nj;
    const double dev = d.row_energy_nj / base.row_energy_nj;
    const double siv = s.ipc / base.ipc;
    const double div = d.ipc / base.ipc;
    se.push_back(sev);
    de.push_back(dev);
    si.push_back(siv);
    di.push_back(div);
    table.add_row({app, TextTable::num(sev, 3), TextTable::num(dev, 3),
                   TextTable::num(siv, 3), TextTable::num(div, 3)});
  }
  table.add_row({"GEOMEAN", TextTable::num(sim::geomean(se), 3),
                 TextTable::num(sim::geomean(de), 3), TextTable::num(sim::geomean(si), 3),
                 TextTable::num(sim::geomean(di), 3)});
  table.print(std::cout);
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
