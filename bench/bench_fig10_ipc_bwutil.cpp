// Fig. 10: IPC and DRAM bandwidth utilization are linearly correlated across
// applications and delay settings — the observation that lets Dyn-DMS track
// performance locally at the memory controller via BWUTIL.
#include <cmath>
#include <cstdio>

#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 10 — IPC vs BWUTIL across applications and delays",
      "normalized IPC and normalized BWUTIL are linearly correlated");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  const std::vector<Cycle> delays = {0, 256, 1024, 2048};

  for (const std::string& app : sim::bench_workloads()) {
    runner.prefetch_baseline(app);
    for (const Cycle d : delays)
      if (d != 0)
        runner.prefetch(app, core::make_static_dms_spec(d, runner.config().scheme), false);
  }
  runner.flush();

  std::vector<double> xs, ys;
  std::printf("%-14s %-8s %-10s %-10s %-9s %-9s %-9s\n", "Workload", "Delay",
              "IPC/base", "BW/base", "lat_p50", "lat_p95", "lat_p99");
  for (const std::string& app : sim::bench_workloads()) {
    const sim::RunMetrics& base = runner.baseline(app);
    for (const Cycle d : delays) {
      const sim::RunMetrics& m =
          d == 0 ? base
                 : runner.run(app, core::make_static_dms_spec(d, runner.config().scheme),
                              false);
      const double ipc_n = m.ipc / base.ipc;
      const double bw_n = m.bwutil / base.bwutil;
      xs.push_back(bw_n);
      ys.push_back(ipc_n);
      std::printf("%-14s %-8llu %-10.3f %-10.3f %-9llu %-9llu %-9llu\n", app.c_str(),
                  static_cast<unsigned long long>(d), ipc_n, bw_n,
                  static_cast<unsigned long long>(m.read_latency_p50),
                  static_cast<unsigned long long>(m.read_latency_p95),
                  static_cast<unsigned long long>(m.read_latency_p99));
    }
  }

  // Pearson correlation of normalized IPC vs normalized BWUTIL.
  const double mx = sim::mean(xs), my = sim::mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  const double r = sxy / std::sqrt(std::max(sxx * syy, 1e-12));
  std::printf("\nPearson correlation (IPC vs BWUTIL): r = %.3f\n", r);
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
