// Fig. 11: effect of reducing Th_RBL for SCP. (a) activations fall as
// Th_RBL drops from 8 toward 1 (the fixed 10% coverage is spent on rows
// with genuinely low RBL); (b) the request-share CDF shows >10% of SCP's
// requests sit in RBL(1) rows, so Th_RBL = 1 suffices to fill the coverage.
#include <cstdio>

#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 11 — SCP: activations & coverage vs Th_RBL; request-share CDF",
      "(a) lowering Th_RBL from 8 to 1 further cuts activations at the same "
      "10% coverage; (b) >10% of requests sit in RBL(1) rows");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  const std::string app = "SCP";
  runner.prefetch_baseline(app);
  for (unsigned th = 8; th >= 1; --th)
    runner.prefetch(app, core::make_static_ams_spec(th, runner.config().scheme), false);
  runner.flush();

  const sim::RunMetrics& base = runner.baseline(app);

  std::printf("\n(a) AMS(Th_RBL) sweep\n");
  std::printf("%-8s %-12s %-10s %-8s\n", "Th_RBL", "Norm. acts", "Coverage", "IPC");
  for (unsigned th = 8; th >= 1; --th) {
    const sim::RunMetrics& m =
        runner.run(app, core::make_static_ams_spec(th, runner.config().scheme), false);
    std::printf("%-8u %-12.3f %-10.3f %-8.3f\n", th,
                static_cast<double>(m.activations) / static_cast<double>(base.activations),
                m.coverage, m.ipc / base.ipc);
  }

  std::printf("\n(b) request share by activation RBL (baseline, 10%% line)\n");
  const Histogram& h = base.rbl_hist;
  const double total_reqs = static_cast<double>(base.dram_reads + base.dram_writes);
  double cum = 0.0;
  for (std::uint64_t k = 1; k <= 8; ++k) {
    cum += static_cast<double>(k * h.at(k));
    std::printf("  RBL<=%llu: %.3f of all requests%s\n",
                static_cast<unsigned long long>(k), cum / total_reqs,
                cum / total_reqs >= 0.10 && (cum - static_cast<double>(k * h.at(k))) /
                                                    total_reqs <
                                                0.10
                    ? "   <-- crosses the 10% coverage line"
                    : "");
  }
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
