// Fig. 5: effect of DMS on the distribution of row activations over their
// achieved RBL, for two applications. As delay grows, the RBL(1) share of
// activations shrinks and higher-RBL shares grow.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 5 — activation proportions per RBL bucket vs DMS delay",
      "the RBL(1) activation share shrinks with delay; higher-RBL shares grow");

  const std::vector<Cycle> delays = {0, 64, 128, 256, 512, 1024, 2048};
  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));

  for (const std::string& app : {std::string("SCP"), std::string("FWT")}) {
    for (const Cycle d : delays) {
      if (d == 0)
        runner.prefetch_baseline(app);
      else
        runner.prefetch(app, core::make_static_dms_spec(d, runner.config().scheme), false);
    }
  }
  runner.flush();

  for (const std::string& app : {std::string("SCP"), std::string("FWT")}) {
    TextTable table({"Delay", "RBL(1)", "RBL(2)", "RBL(3-4)", "RBL(5-8)", "RBL(>8)"});
    for (const Cycle d : delays) {
      const sim::RunMetrics& m =
          d == 0 ? runner.baseline(app)
                 : runner.run(app, core::make_static_dms_spec(d, runner.config().scheme),
                              false);
      const double total = static_cast<double>(m.rbl_hist.total());
      const auto share = [&](std::uint64_t lo, std::uint64_t hi) {
        return TextTable::num(static_cast<double>(m.rbl_hist.in_range(lo, hi)) / total, 3);
      };
      const double high = static_cast<double>(m.rbl_hist.in_range(9, m.rbl_hist.max_key()) +
                                              m.rbl_hist.overflow()) /
                          total;
      table.add_row({d == 0 ? "base" : std::to_string(d), share(1, 1), share(2, 2),
                     share(3, 4), share(5, 8), TextTable::num(high, 3)});
    }
    std::cout << "\n" << app << ":\n";
    table.print(std::cout);
  }
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
