// Table II + Table III: measure every application model's five features and
// classify them with the paper's thresholds; report the measured level next
// to the paper's (our declared target) for validation.
#include <iostream>

#include "common/table.hpp"
#include "sim/characterize.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  using workloads::level_name;

  sim::print_bench_header(
      "Table II/III — per-application feature characterization",
      "each app's thrashing level, delay tolerance, activation sensitivity, "
      "Th_RBL sensitivity and error tolerance (Table III thresholds)");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  TextTable table({"Workload", "Grp", "Thrash(meas/target)", "DelayTol", "ActSens",
                   "ThSens", "ErrTol", "rbl18%", "MTD", "dAct@2048", "err%", "cov%"});

  unsigned matches = 0, cells = 0;
  for (const sim::Characterization& c : sim::characterize_all(runner)) {
    const auto cell = [&](workloads::Level measured, workloads::Level target) {
      ++cells;
      if (measured == target) ++matches;
      return std::string(level_name(measured)) + "/" + level_name(target);
    };
    const auto bool_cell = [&](bool measured, bool target) {
      ++cells;
      if (measured == target) ++matches;
      return std::string(measured ? "High" : "Low") + "/" + (target ? "High" : "Low");
    };
    table.add_row({c.name, std::to_string(c.group),
                   cell(c.thrashing, c.declared.thrashing),
                   cell(c.delay_tolerance, c.declared.delay_tolerance),
                   cell(c.act_sensitivity, c.declared.activation_sensitivity),
                   bool_cell(c.th_rbl_sensitive, c.declared.th_rbl_sensitive),
                   cell(c.error_tolerance, c.declared.error_tolerance),
                   TextTable::num(c.rbl18_request_share * 100, 1),
                   std::to_string(c.mtd), TextTable::pct(c.act_reduction_2048, 1),
                   TextTable::num(c.app_error * 100, 1),
                   TextTable::num(c.coverage * 100, 1)});
  }
  table.print(std::cout);
  std::cout << "\nClassification agreement with Table II: " << matches << "/" << cells
            << " cells\n";
  std::cout << "(Table III thresholds: thrashing 3%/10% of requests in RBL(1-8) rows; "
               "delay tolerance MTD 256/1024; act sensitivity 10%/20% at DMS(2048); "
               "Th_RBL sensitivity 5%; error tolerance 20%/5%.)\n";
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
