// Policy arena: the registry's scheduler rivals head-to-head on the diffcheck
// workload trio. Every lane is constructed through the SchedulerRegistry from
// a "name[:key=value,...]" spec — the same grammar $LAZYDRAM_POLICY and the
// config accept — so this bench doubles as the CI smoke for the whole policy
// plugin path (strict protocol checking via --check, parallel via --jobs,
// machine-readable via --json).
//
//   frfcfs    — the locality-optimized baseline every column normalizes to
//   fcfs      — strict arrival order (how much FR-FCFS reordering buys)
//   bliss     — blacklisting fairness (trades row locality for fairness)
//   batch-rr  — batch-capped round-robin (bounded per-row streaks)
//   autotune  — hill-climbing delay autotuner, the Dyn-DMS rival
//
// The Dyn-DMS paper scheme rides along as the reference the autotuner is
// chasing. Usage:
//   bench_policy_arena [--policies csv] [--check strict] [--jobs N] [--json p]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/scheduler_registry.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Policy arena — registry scheduler rivals vs the FR-FCFS baseline",
      "FCFS shows what reordering buys; BLISS/Batch-RR trade locality for "
      "fairness; the autotuner chases Dyn-DMS without its profiler");

  // Policy specs are semicolon-free CSV items; keys ride along after ':'
  // (e.g. --policies "frfcfs,bliss:threshold=8,batch-rr:cap=2"). Note the
  // grammar's own commas separate keys, so per-policy keys cannot be combined
  // with --policies CSV — tune via $LAZYDRAM_POLICY runs instead.
  std::vector<std::string> specs = {"frfcfs", "fcfs", "bliss", "batch-rr", "autotune"};
  if (const std::string p = arg_value(argc, argv, "--policies"); !p.empty())
    specs = split_csv(p);

  const std::vector<std::string> apps = {"SCP", "inversek2j", "CONS"};

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  runner.set_check(sim::parse_check(argc, argv));
  runner.set_self_profile(sim::parse_self_profile(argc, argv));
  runner.set_heartbeat(sim::parse_heartbeat(argc, argv));

  struct Lane {
    std::string spec;
    std::string label;
    sim::RunConfig rc;
  };
  std::vector<Lane> lanes;
  for (const std::string& spec : specs) {
    Lane lane;
    lane.spec = spec;
    lane.rc.gpu = runner.config();
    std::string error;
    if (!core::parse_policy_spec(spec, lane.rc.gpu, &error)) {
      std::cerr << "bench_policy_arena: bad --policies entry '" << spec << "': " << error
                << "\n";
      return 2;
    }
    lane.label = core::run_label(lane.rc.gpu, lane.rc.spec);
    lane.rc.compute_error = false;
    lanes.push_back(std::move(lane));
  }

  for (const std::string& app : apps) {
    runner.prefetch_baseline(app);
    runner.prefetch_scheme(app, core::SchemeKind::kDynDms, false);
    for (const Lane& lane : lanes)
      runner.prefetch_custom(app, lane.rc, "arena/" + lane.spec);
  }
  runner.flush();

  enum class View { kActs, kIpc, kAvgRbl };
  const struct {
    View view;
    const char* title;
  } kViews[] = {{View::kActs, "(a) Activations (normalized to FR-FCFS)"},
                {View::kIpc, "(b) IPC (normalized to FR-FCFS)"},
                {View::kAvgRbl, "(c) Avg-RBL (absolute)"}};

  for (const auto& [view, title] : kViews) {
    std::vector<std::string> header = {"Workload"};
    for (const Lane& lane : lanes) header.push_back(lane.label);
    header.emplace_back("Dyn-DMS");
    TextTable table(header);

    for (const std::string& app : apps) {
      const sim::RunMetrics& base = runner.baseline(app);
      const auto cell = [&](const sim::RunMetrics& m) {
        double v = 0.0;
        switch (view) {
          case View::kActs:
            v = static_cast<double>(m.activations) / static_cast<double>(base.activations);
            break;
          case View::kIpc:
            v = m.ipc / base.ipc;
            break;
          case View::kAvgRbl:
            v = m.avg_rbl;
            break;
        }
        return TextTable::num(v, 3);
      };
      std::vector<std::string> row = {app};
      for (const Lane& lane : lanes)
        row.push_back(cell(runner.run_custom(app, lane.rc, "arena/" + lane.spec)));
      row.push_back(cell(runner.run_scheme(app, core::SchemeKind::kDynDms, false)));
      table.add_row(std::move(row));
    }
    std::cout << "\n" << title << "\n";
    table.print(std::cout);
  }

  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
