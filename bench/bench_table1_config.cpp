// Table I: key configuration parameters of the simulated GPU.
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/report.hpp"

int main() {
  using namespace lazydram;
  sim::print_bench_header("Table I — simulated GPU configuration",
                          "30 SMs @1400MHz, 6 GDDR5 MCs @924MHz, FR-FCFS, "
                          "128-entry pending queues, Hynix GDDR5 timing");
  GpuConfig cfg;
  cfg.validate();
  TextTable table({"Parameter", "Value"});
  for (const auto& [key, value] : cfg.describe()) table.add_row({key, value});
  table.print(std::cout);
  return 0;
}
