// Multi-tenant load generator: N clients with independent kernel mixes,
// arrival processes and approximation budgets share the machine, and the
// bench reports what each of them experienced — slowdown vs running alone,
// per-tenant AMS coverage against its cap, and per-tenant read-latency tail
// percentiles — plus the Jain fairness index over the slowdowns.
//
// Usage:
//   bench_multitenant [--tenants SPEC] [--scheme NAME] [--duration CYCLES]
//                     [--seed N] [--jobs N] [--check MODE] [--json PATH]
//
//   --tenants   ';'-separated tenant specs (see src/gpu/tenant.hpp for the
//               grammar), e.g. "SCP:cap=0.05;CONS+MVT:think=2000,approx=0"
//   --scheme    one of the seven paper schemes (default dyn-combo, the
//               scheme whose DMS+AMS budgets tenancy partitions)
//   --duration  max core cycles before the run is declared stuck
//   --jobs      parallel alone-run baseline lanes (output is identical for
//               any value; --jobs 2 vs 1 is the CI determinism probe)
//   --check     protocol checker mode (off | log | strict)
//   --json      machine-readable report (metrics + per-tenant slices +
//               alone baselines; byte-stable across --jobs values)
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/scheme.hpp"
#include "sim/multitenant.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

namespace {

std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Multi-tenant mix — per-client slowdown, fairness and QoS budgets",
      "beyond the paper: its single-app DMS/AMS knobs become per-tenant "
      "budgets when independent clients share the memory system");

  std::string tenants_text = arg_value(argc, argv, "--tenants");
  if (tenants_text.empty())
    tenants_text = "SCP:warps=480,cap=0.05;CONS:warps=480,think=2000;MVT:warps=480,approx=0";

  std::uint64_t seed = 1;
  if (const std::string s = arg_value(argc, argv, "--seed"); !s.empty())
    seed = std::strtoull(s.c_str(), nullptr, 10);

  sim::RunConfig rc;
  rc.check = sim::parse_check(argc, argv);
  if (const std::string d = arg_value(argc, argv, "--duration"); !d.empty())
    rc.max_core_cycles = std::strtoull(d.c_str(), nullptr, 10);

  std::string scheme_text = arg_value(argc, argv, "--scheme");
  if (scheme_text.empty()) scheme_text = "dyn-combo";
  core::SchemeKind kind;
  if (scheme_text == "baseline") kind = core::SchemeKind::kBaseline;
  else if (scheme_text == "static-dms") kind = core::SchemeKind::kStaticDms;
  else if (scheme_text == "dyn-dms") kind = core::SchemeKind::kDynDms;
  else if (scheme_text == "static-ams") kind = core::SchemeKind::kStaticAms;
  else if (scheme_text == "dyn-ams") kind = core::SchemeKind::kDynAms;
  else if (scheme_text == "static-combo") kind = core::SchemeKind::kStaticCombo;
  else if (scheme_text == "dyn-combo") kind = core::SchemeKind::kDynCombo;
  else {
    std::cerr << "bench_multitenant: unknown --scheme '" << scheme_text
              << "' (want baseline|static-dms|dyn-dms|static-ams|dyn-ams|"
                 "static-combo|dyn-combo)\n";
    return 2;
  }
  rc.spec = core::make_scheme_spec(kind, rc.gpu.scheme);

  std::vector<gpu::TenantSpec> specs;
  try {
    specs = gpu::parse_tenant_specs(tenants_text);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench_multitenant: bad --tenants: " << e.what() << "\n";
    return 2;
  }
  gpu::TenantSet tenants(std::move(specs), seed);

  std::cout << "\nTenants (" << tenants.size() << "), scheme " << scheme_text
            << ", seed " << seed << ":\n";
  for (TenantId t = 0; t < tenants.size(); ++t) {
    const gpu::TenantSpec& s = tenants.spec(t);
    std::cout << "  t" << t << "  " << s.name
              << "  warps=" << tenants.workload().tenant_warps(t)
              << "  repeat=" << s.repeat << "  think=" << s.think
              << "  approx=" << (s.approx ? 1 : 0);
    if (s.coverage_cap >= 0.0) std::cout << "  cap=" << s.coverage_cap;
    if (s.dms_delay_cap != kNeverCycle) std::cout << "  delay_cap=" << s.dms_delay_cap;
    std::cout << "\n";
  }

  const unsigned jobs = sim::parse_jobs(argc, argv);
  sim::MultitenantResult result;
  try {
    result = sim::run_multitenant(tenants, rc, jobs);
  } catch (const std::exception& e) {
    std::cerr << "bench_multitenant: run failed: " << e.what() << "\n";
    return 1;
  }
  const sim::RunMetrics& m = result.shared.metrics;

  TextTable table({"Tenant", "Slowdown", "Coverage", "Cap", "p50", "p95", "p99",
                   "AppErr", "Drops/Recv"});
  for (const sim::TenantMetrics& t : m.tenants) {
    const gpu::TenantSpec& s = tenants.spec(t.id);
    table.add_row({t.name, TextTable::num(t.slowdown, 3), TextTable::num(t.coverage, 4),
                   s.coverage_cap >= 0.0 ? TextTable::num(s.coverage_cap, 4) : "-",
                   std::to_string(t.read_latency_p50), std::to_string(t.read_latency_p95),
                   std::to_string(t.read_latency_p99), TextTable::num(t.app_error, 4),
                   std::to_string(t.drops) + "/" + std::to_string(t.reads_received)});
  }
  std::cout << "\nShared run: " << m.core_cycles << " core cycles, IPC "
            << TextTable::num(m.ipc, 3) << ", coverage "
            << TextTable::num(m.coverage, 4) << "\n\n";
  table.print(std::cout);
  std::cout << "\nJain fairness index over slowdowns: "
            << TextTable::num(m.jain_fairness, 4) << "  (1.0 = perfectly fair, 1/"
            << (m.tenants.empty() ? 1 : m.tenants.size()) << " = one tenant starved)\n";

  const std::string json_path = sim::json_output_path(argc, argv);
  if (!json_path.empty() && sim::write_multitenant_report(json_path, result))
    std::cout << "\nJSON report written to " << json_path << "\n";
  return 0;
}
