// Fig. 13: effect of the pending queue size on activations when the maximum
// delay DMS(2048) is applied — activation counts stabilize from size 128,
// i.e. the baseline queue suffices for DMS.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 13 — activations vs queue size under DMS(2048), norm. to baseline",
      "activation counts stabilize from queue size 128 onward");

  const std::vector<unsigned> sizes = {32, 64, 128, 256};
  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));

  const auto queue_config = [&](unsigned size) {
    sim::RunConfig rc;
    rc.gpu = runner.config();
    rc.gpu.pending_queue_size = size;
    rc.spec = core::make_static_dms_spec(2048, rc.gpu.scheme);
    rc.compute_error = false;
    return rc;
  };
  for (const std::string& app : sim::bench_workloads()) {
    runner.prefetch_baseline(app);
    for (const unsigned s : sizes)
      runner.prefetch_custom(app, queue_config(s), "fig13/q" + std::to_string(s));
  }
  runner.flush();

  std::vector<std::string> header = {"Workload"};
  for (const unsigned s : sizes) header.push_back("q=" + std::to_string(s));
  TextTable table(header);
  std::vector<std::vector<double>> agg(sizes.size());

  for (const std::string& app : sim::bench_workloads()) {
    const sim::RunMetrics& base = runner.baseline(app);
    std::vector<std::string> row = {app};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const sim::RunMetrics& m = runner.run_custom(app, queue_config(sizes[i]),
                                                   "fig13/q" + std::to_string(sizes[i]));
      const double v =
          static_cast<double>(m.activations) / static_cast<double>(base.activations);
      row.push_back(TextTable::num(v, 3));
      agg[i].push_back(v);
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> gm = {"GEOMEAN"};
  for (auto& v : agg) gm.push_back(TextTable::num(sim::geomean(v), 3));
  table.add_row(std::move(gm));
  table.print(std::cout);
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
