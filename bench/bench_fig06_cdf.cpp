// Fig. 6: cumulative distribution of row activations over read requests
// sorted by their activation's RBL (read-only rows). The paper highlights:
// GEMM — ~10% of requests (RBL 1-2) cause ~65% of activations; 3MM — ~0.2%
// of requests (RBL 1-2) cause ~45% of activations.
#include <cstdio>

#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 6 — cumulative activation share vs request share, sorted by RBL",
      "GEMM: ~10% of requests (RBL1-2) -> ~65% of acts; 3MM: ~0.2% -> ~45%");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  for (const std::string& app : {std::string("GEMM"), std::string("3MM")})
    runner.prefetch_baseline(app);
  runner.flush();

  for (const std::string& app : {std::string("GEMM"), std::string("3MM")}) {
    const sim::RunMetrics& m = runner.baseline(app);
    const Histogram& h = m.rbl_readonly_hist;

    // Requests in an RBL(k) read-only row = k * activations at k. Sort by k
    // ascending (lowest-RBL requests first) and accumulate both shares.
    double total_reqs = 0.0, total_acts = 0.0;
    for (std::uint64_t k = 1; k <= h.max_key(); ++k) {
      total_reqs += static_cast<double>(k * h.at(k));
      total_acts += static_cast<double>(h.at(k));
    }
    std::printf("\n%s (read-only rows: %.0f activations, %.0f requests)\n", app.c_str(),
                total_acts, total_reqs);
    std::printf("  %-10s %-14s %-14s\n", "RBL<=k", "request share", "activation share");
    double req_cum = 0.0, act_cum = 0.0;
    for (const std::uint64_t k : {1ull, 2ull, 4ull, 8ull, 16ull, 32ull, 64ull}) {
      req_cum = 0.0;
      act_cum = 0.0;
      for (std::uint64_t j = 1; j <= k && j <= h.max_key(); ++j) {
        req_cum += static_cast<double>(j * h.at(j));
        act_cum += static_cast<double>(h.at(j));
      }
      std::printf("  %-10llu %-14.3f %-14.3f\n", static_cast<unsigned long long>(k),
                  total_reqs > 0 ? req_cum / total_reqs : 0.0,
                  total_acts > 0 ? act_cum / total_acts : 0.0);
    }
  }
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
