// Fig. 14: visual quality of the approximate output for `laplacian` under
// Dyn-DMS+Dyn-AMS. The paper shows the exact and ~17%-error images side by
// side; this bench reports the error metrics and per-band pixel deltas, and
// the `image_approx` example writes the PGM images themselves.
#include <cstdio>

#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 14 — laplacian output quality under Dyn-DMS+Dyn-AMS",
      "at ~17% application error the sharpened image shows only limited "
      "quality degradation (see examples/image_approx for the PGMs)");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  runner.prefetch_baseline("laplacian");
  runner.prefetch_scheme("laplacian", core::SchemeKind::kDynCombo, /*compute_error=*/true);
  runner.flush();

  const sim::RunMetrics& base = runner.baseline("laplacian");
  const sim::RunMetrics& combo =
      runner.run_scheme("laplacian", core::SchemeKind::kDynCombo, /*compute_error=*/true);

  std::printf("scheme              acts(norm)  rowE(norm)  IPC(norm)  coverage  error\n");
  std::printf("Baseline            1.000       1.000       1.000      0.0%%      0.00%%\n");
  std::printf("Dyn-DMS+Dyn-AMS     %.3f       %.3f       %.3f      %.1f%%      %.2f%%\n",
              static_cast<double>(combo.activations) / static_cast<double>(base.activations),
              combo.row_energy_nj / base.row_energy_nj, combo.ipc / base.ipc,
              combo.coverage * 100, combo.app_error * 100);
  std::printf("\nRun `examples/image_approx` to write laplacian_exact.pgm / "
              "laplacian_approx.pgm for visual comparison.\n");
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
