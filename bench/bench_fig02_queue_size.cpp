// Fig. 2: effect of the FR-FCFS pending queue size on the number of row
// activations (baseline scheduling, no DMS/AMS). The paper normalizes to
// queue size 128 and observes that the benefit saturates at 128.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Fig. 2 — activations vs pending queue size (normalized to 128)",
      "activations fall as the queue grows and saturate around size 128");

  const std::vector<unsigned> sizes = {16, 32, 64, 128, 256};
  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));

  const auto queue_config = [&](unsigned size) {
    sim::RunConfig rc;
    rc.gpu = runner.config();
    rc.gpu.pending_queue_size = size;
    rc.spec = core::make_scheme_spec(core::SchemeKind::kBaseline, rc.gpu.scheme);
    rc.compute_error = false;
    return rc;
  };
  for (const std::string& app : sim::bench_workloads())
    for (const unsigned s : sizes)
      runner.prefetch_custom(app, queue_config(s), "fig2/q" + std::to_string(s));
  runner.flush();

  std::vector<std::string> header = {"Workload"};
  for (const unsigned s : sizes) header.push_back("q=" + std::to_string(s));
  TextTable table(header);

  std::vector<std::vector<double>> per_size(sizes.size());
  for (const std::string& app : sim::bench_workloads()) {
    // Reference: queue size 128 (the baseline configuration).
    std::vector<double> acts(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const sim::RunMetrics& m = runner.run_custom(app, queue_config(sizes[i]),
                                                   "fig2/q" + std::to_string(sizes[i]));
      acts[i] = static_cast<double>(m.activations);
    }
    const double ref = acts[3];  // size 128.
    std::vector<std::string> row = {app};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      row.push_back(TextTable::num(acts[i] / ref, 3));
      per_size[i].push_back(acts[i] / ref);
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> gm = {"GEOMEAN"};
  for (auto& v : per_size) gm.push_back(TextTable::num(sim::geomean(v), 3));
  table.add_row(std::move(gm));
  table.print(std::cout);
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
