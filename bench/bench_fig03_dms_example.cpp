// Fig. 3: the illustrative DMS example. Eight requests to four rows (R1-R4)
// of one bank arrive in two waves four-hundred-odd cycles apart. Timely
// FR-FCFS scheduling serves the first wave immediately (4 activations) and
// the second wave re-opens every row (4 more). Delaying the first wave keeps
// it pending until the second arrives: 4 activations serve all 8 requests,
// doubling Avg-RBL.
#include <cstdio>
#include <memory>

#include "common/config.hpp"
#include "core/lazy_scheduler.hpp"
#include "dram/address.hpp"
#include "mem/controller.hpp"
#include "sim/report.hpp"

using namespace lazydram;

namespace {

struct Result {
  std::uint64_t activations = 0;
  double avg_rbl = 0.0;
};

Result run_example(Cycle delay) {
  GpuConfig cfg;
  AddressMapper mapper(cfg);
  core::SchemeSpec spec;
  spec.kind = delay > 0 ? core::SchemeKind::kStaticDms : core::SchemeKind::kBaseline;
  spec.dms_enabled = delay > 0;
  spec.static_delay = delay;
  MemoryController mc(cfg, 0, mapper,
                      std::make_unique<core::LazyScheduler>(cfg.scheme, spec,
                                                            cfg.banks_per_channel));

  RequestId id = 1;
  const auto read_at = [&](RowId row, std::uint32_t col, Cycle now) {
    MemRequest r;
    r.id = id++;
    r.line_addr = mapper.compose(0, /*bank=*/0, row, col * kLineBytes);
    r.kind = AccessKind::kRead;
    mc.enqueue(r, now);
  };

  Cycle now = 0;
  // First wave: one request to each of R1..R4.
  for (RowId row = 1; row <= 4; ++row) read_at(row, 0, now);
  // Tick 400 cycles, then the second wave arrives (same four rows).
  for (; now < 400; ++now) mc.tick(now);
  for (RowId row = 1; row <= 4; ++row) read_at(row, 1, now);
  for (; now < 4000; ++now) {
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
  }
  mc.finalize();

  Result res;
  res.activations = mc.channel().activations();
  res.avg_rbl = static_cast<double>(mc.channel().column_accesses()) /
                static_cast<double>(res.activations);
  return res;
}

}  // namespace

int main() {
  sim::print_bench_header(
      "Fig. 3 — illustrative DMS example (8 requests, 4 rows, 2 waves)",
      "baseline: 8 activations, Avg-RBL 1; DMS(X): 4 activations, Avg-RBL 2");

  const Result base = run_example(0);
  const Result dms = run_example(512);
  std::printf("%-22s activations=%llu  Avg-RBL=%.1f\n", "Timely (baseline):",
              static_cast<unsigned long long>(base.activations), base.avg_rbl);
  std::printf("%-22s activations=%llu  Avg-RBL=%.1f\n", "Delayed DMS(512):",
              static_cast<unsigned long long>(dms.activations), dms.avg_rbl);
  return 0;
}
