// Fig. 3: the illustrative DMS example. Eight requests to four rows (R1-R4)
// of one bank arrive in two waves four-hundred-odd cycles apart. Timely
// FR-FCFS scheduling serves the first wave immediately (4 activations) and
// the second wave re-opens every row (4 more). Delaying the first wave keeps
// it pending until the second arrives: 4 activations serve all 8 requests,
// doubling Avg-RBL.
//
// The per-window columns (activations, row hits, BWUTIL, active DMS delay)
// come from the telemetry WindowSampler attached to the controller; pass
// `--json <path>` (or set LAZYDRAM_JSON) to also dump them machine-readably.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/log.hpp"
#include "core/scheduler_registry.hpp"
#include "dram/address.hpp"
#include "mem/controller.hpp"
#include "sim/report.hpp"
#include "telemetry/json.hpp"
#include "telemetry/window_sampler.hpp"

using namespace lazydram;

namespace {

// Runs are ~4000 cycles, so sample far below the production 4096-cycle
// profile window to get a readable series.
constexpr Cycle kBenchWindow = 512;

struct Result {
  std::uint64_t activations = 0;
  double avg_rbl = 0.0;
  std::vector<telemetry::WindowSample> windows;
};

Result run_example(Cycle delay) {
  GpuConfig cfg;
  AddressMapper mapper(cfg);
  core::SchemeSpec spec;
  spec.kind = delay > 0 ? core::SchemeKind::kStaticDms : core::SchemeKind::kBaseline;
  spec.dms_enabled = delay > 0;
  spec.static_delay = delay;
  MemoryController mc(cfg, 0, mapper, core::make_scheduler(cfg, spec));
  mc.enable_window_sampling(kBenchWindow, nullptr);

  RequestId id = 1;
  const auto read_at = [&](RowId row, std::uint32_t col, Cycle now) {
    MemRequest r;
    r.id = id++;
    r.line_addr = mapper.compose(0, /*bank=*/0, row, col * kLineBytes);
    r.kind = AccessKind::kRead;
    mc.enqueue(r, now);
  };

  Cycle now = 0;
  // First wave: one request to each of R1..R4.
  for (RowId row = 1; row <= 4; ++row) read_at(row, 0, now);
  // Tick 400 cycles, then the second wave arrives (same four rows).
  for (; now < 400; ++now) mc.tick(now);
  for (RowId row = 1; row <= 4; ++row) read_at(row, 1, now);
  for (; now < 4000; ++now) {
    mc.tick(now);
    while (mc.pop_reply(now)) {
    }
  }
  mc.finalize();

  Result res;
  res.activations = mc.channel().activations();
  res.avg_rbl = static_cast<double>(mc.channel().column_accesses()) /
                static_cast<double>(res.activations);
  res.windows = mc.sampler()->samples();
  return res;
}

void print_windows(const char* label, const std::vector<telemetry::WindowSample>& ws) {
  std::printf("  per-window trace (%s, window=%llu cycles):\n", label,
              static_cast<unsigned long long>(kBenchWindow));
  std::printf("    %-3s %-12s %6s %8s %8s %7s %6s\n", "w", "cycles", "acts",
              "row_hits", "bwutil", "delay", "queue");
  for (const auto& w : ws) {
    std::printf("    %-3llu [%4llu,%4llu) %6llu %8llu %7.1f%% %7.0f %6.1f\n",
                static_cast<unsigned long long>(w.index),
                static_cast<unsigned long long>(w.start_cycle),
                static_cast<unsigned long long>(w.end_cycle),
                static_cast<unsigned long long>(w.activations),
                static_cast<unsigned long long>(w.row_hits), w.bwutil * 100.0,
                w.avg_delay, w.queue_occupancy);
  }
}

void write_windows(telemetry::JsonWriter& jw,
                   const std::vector<telemetry::WindowSample>& ws) {
  jw.begin_array();
  for (const auto& w : ws) {
    jw.begin_object();
    jw.field("index", w.index);
    jw.field("start", w.start_cycle);
    jw.field("end", w.end_cycle);
    jw.field("activations", w.activations);
    jw.field("row_hits", w.row_hits);
    jw.field("bwutil", w.bwutil);
    jw.field("delay", w.avg_delay);
    jw.field("queue", w.queue_occupancy);
    jw.end_object();
  }
  jw.end_array();
}

}  // namespace

int main(int argc, char** argv) {
  sim::print_bench_header(
      "Fig. 3 — illustrative DMS example (8 requests, 4 rows, 2 waves)",
      "baseline: 8 activations, Avg-RBL 1; DMS(X): 4 activations, Avg-RBL 2");

  const Result base = run_example(0);
  const Result dms = run_example(512);
  std::printf("%-22s activations=%llu  Avg-RBL=%.1f\n", "Timely (baseline):",
              static_cast<unsigned long long>(base.activations), base.avg_rbl);
  print_windows("baseline", base.windows);
  std::printf("%-22s activations=%llu  Avg-RBL=%.1f\n", "Delayed DMS(512):",
              static_cast<unsigned long long>(dms.activations), dms.avg_rbl);
  print_windows("DMS(512)", dms.windows);

  const std::string json_path = sim::json_output_path(argc, argv);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      log_warn("cannot open '%s' for the JSON report", json_path.c_str());
      return 1;
    }
    telemetry::JsonWriter jw(f);
    jw.begin_object();
    jw.field("bench", "fig03_dms_example");
    jw.key("baseline");
    jw.begin_object();
    jw.field("activations", base.activations);
    jw.field("avg_rbl", base.avg_rbl);
    jw.key("windows");
    write_windows(jw, base.windows);
    jw.end_object();
    jw.key("dms");
    jw.begin_object();
    jw.field("activations", dms.activations);
    jw.field("avg_rbl", dms.avg_rbl);
    jw.key("windows");
    write_windows(jw, dms.windows);
    jw.end_object();
    jw.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("JSON report written to %s\n", json_path.c_str());
  }
  return 0;
}
