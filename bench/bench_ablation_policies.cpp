// Ablation: scheduler/row-policy baselines. Quantifies how much locality the
// FR-FCFS + open-row baseline already provides over in-order FCFS and over a
// closed-row policy — context for the paper's "baseline is already
// locality-optimized" framing (Section II-C), plus the delay-all-requests
// variant of DMS (the paper's design never delays row hits).
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace lazydram;
  sim::print_bench_header(
      "Ablation — FCFS / closed-row / delay-all-requests vs the paper design",
      "FR-FCFS + open-row is the locality-optimized baseline; DMS must "
      "exempt row hits from the age gate");

  sim::ExperimentRunner runner;
  runner.set_jobs(sim::parse_jobs(argc, argv));
  TextTable table({"Workload", "FCFS acts", "ClosedRow acts", "DMS(128) acts",
                   "DelayAll(128) acts", "DMS(128) IPC", "DelayAll IPC"});

  sim::RunConfig fcfs;
  fcfs.gpu = runner.config();
  fcfs.policy = sim::PolicyKind::kFcfs;
  fcfs.compute_error = false;

  sim::RunConfig closed;
  closed.gpu = runner.config();
  closed.row_policy = RowPolicy::kClosedRow;
  closed.spec = core::make_scheme_spec(core::SchemeKind::kBaseline, closed.gpu.scheme);
  closed.compute_error = false;

  sim::RunConfig all;
  all.gpu = runner.config();
  all.spec = core::make_static_dms_spec(128, all.gpu.scheme);
  all.spec.dms_delay_row_hits = true;
  all.compute_error = false;

  for (const std::string& app :
       {std::string("SCP"), std::string("LPS"), std::string("MVT"), std::string("FWT")}) {
    runner.prefetch_baseline(app);
    runner.prefetch_custom(app, fcfs, "abl/fcfs");
    runner.prefetch_custom(app, closed, "abl/closed");
    runner.prefetch(app, core::make_static_dms_spec(128, runner.config().scheme), false);
    runner.prefetch_custom(app, all, "abl/delayall128");
  }
  runner.flush();

  for (const std::string& app :
       {std::string("SCP"), std::string("LPS"), std::string("MVT"), std::string("FWT")}) {
    const sim::RunMetrics& base = runner.baseline(app);
    const sim::RunMetrics& mf = runner.run_custom(app, fcfs, "abl/fcfs");
    const sim::RunMetrics& mc = runner.run_custom(app, closed, "abl/closed");
    const sim::RunMetrics& dms = runner.run(
        app, core::make_static_dms_spec(128, runner.config().scheme), false);
    const sim::RunMetrics& ma = runner.run_custom(app, all, "abl/delayall128");

    const auto norm = [&](const sim::RunMetrics& m) {
      return TextTable::num(
          static_cast<double>(m.activations) / static_cast<double>(base.activations), 3);
    };
    table.add_row({app, norm(mf), norm(mc), norm(dms), norm(ma),
                   TextTable::num(dms.ipc / base.ipc, 3),
                   TextTable::num(ma.ipc / base.ipc, 3)});
  }
  table.print(std::cout);
  runner.write_sweep_report(sim::json_output_path(argc, argv));
  return 0;
}
