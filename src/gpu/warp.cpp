// gpu/warp.hpp is header-only; this TU anchors the module.
