// Functional data image of the GPU's global memory, and the approximate-line
// overlay that records what the VP unit synthesized.
//
// The timing simulator moves addresses, not values; values live here.
// Workloads initialize their input arrays into the image before the timed
// run. When the AMS unit drops a request, the partition records the VP's
// predicted 128 bytes in the overlay. After the run, application error is
// computed by executing the workload's functional model twice — once against
// the pristine image ("exact") and once with every read checking the overlay
// first ("approximate") — and comparing the declared outputs (Section II-D's
// average relative error).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "core/value_predictor.hpp"

namespace lazydram::gpu {

/// Sparse byte store keyed by 4KB pages. Unwritten bytes read as zero.
class MemoryImage {
 public:
  static constexpr std::size_t kPageBytes = 4096;

  MemoryImage() = default;
  MemoryImage(const MemoryImage& other);
  MemoryImage& operator=(const MemoryImage&) = delete;
  MemoryImage(MemoryImage&&) = default;
  MemoryImage& operator=(MemoryImage&&) = default;

  void read(Addr addr, std::uint8_t* out, std::size_t n) const;
  void write(Addr addr, const std::uint8_t* data, std::size_t n);

  /// Copies every allocated page of `src` into this image at `bias` bytes
  /// offset. `bias` must be page-aligned (tenant windows are GiB-aligned).
  /// Pages write disjoint regions, so the result is iteration-order
  /// independent.
  void blit_from(const MemoryImage& src, Addr bias);

  float read_f32(Addr addr) const;
  void write_f32(Addr addr, float value);
  std::uint32_t read_u32(Addr addr) const;
  void write_u32(Addr addr, std::uint32_t value);

  std::size_t pages() const { return pages_.size(); }

 private:
  using Page = std::array<std::uint8_t, kPageBytes>;
  const Page* page_of(Addr addr) const;
  Page& page_for_write(Addr addr);

  std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

/// Predicted 128B lines, keyed by line base address. First prediction wins:
/// the first drop is the moment the (approximate) line entered the L2 and
/// became the value the cores observe.
using ApproxOverlay = std::unordered_map<Addr, std::array<std::uint8_t, kLineBytes>>;

class FunctionalMemory : public core::LineReader {
 public:
  MemoryImage& image() { return image_; }
  const MemoryImage& image() const { return image_; }

  /// Records the VP prediction for a dropped line (no-op if already present).
  void record_approx_line(Addr line_addr, const std::uint8_t* bytes);

  const ApproxOverlay& overlay() const { return overlay_; }
  bool line_is_approx(Addr line_addr) const { return overlay_.count(line_base(line_addr)) != 0; }

  /// core::LineReader — what a consumer of the memory system observes:
  /// overlay first (the approximate line is what the L2 holds), then image.
  void read_line(Addr line_addr, std::uint8_t out[kLineBytes]) const override;

 private:
  MemoryImage image_;
  ApproxOverlay overlay_;
};

/// Read/write view used by workload functional models. `overlay == nullptr`
/// is the exact view; otherwise every read consults the overlay first, so a
/// load of an approximated line observes the predicted value (even for lines
/// the model itself wrote — per-load resolution is deliberately pessimistic,
/// see DESIGN.md).
class MemView {
 public:
  MemView(MemoryImage& storage, const ApproxOverlay* overlay, Addr bias = 0)
      : storage_(storage), overlay_(overlay), bias_(bias) {}

  /// A view onto the same storage/overlay with `bias` added to every
  /// address. Lets a tenant's inner functional model run unmodified in its
  /// own address space while the data lives in the tenant's global window.
  MemView with_bias(Addr bias) const { return MemView(storage_, overlay_, bias_ + bias); }

  float read_f32(Addr addr) const;
  void write_f32(Addr addr, float value) { storage_.write_f32(addr + bias_, value); }
  std::uint32_t read_u32(Addr addr) const;
  void write_u32(Addr addr, std::uint32_t value) { storage_.write_u32(addr + bias_, value); }

 private:
  /// Reads `n` <= 4 bytes honoring the overlay. `addr` must not straddle a
  /// line boundary for overlay reads (4-byte scalars never do: lines are
  /// 128B-aligned and scalars 4B-aligned).
  void read_small(Addr addr, std::uint8_t* out, std::size_t n) const;

  MemoryImage& storage_;
  const ApproxOverlay* overlay_;
  Addr bias_ = 0;  ///< Added to every address (overlay keys are post-bias).
};

}  // namespace lazydram::gpu
