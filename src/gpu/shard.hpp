// Sharded-execution support for GpuTop's event-wheel run loop: per-channel
// telemetry capture buffers plus a small spin-then-sleep worker pool.
//
// During a parallel epoch each memory controller advances on its own lane
// with every telemetry pointer it can reach (tracer — which the controller
// forwards to its window sampler and the scheduler forwards to DMS/AMS —
// protocol checker, lifecycle collector) swapped to a lane-local capture.
// At the epoch barrier the buffered emissions are replayed into the real
// tracer/collector in ascending (cycle, channel) order — exactly the order
// the serial cycle-major loop produces — so JSONL/Chrome trace output is
// byte-identical with sharding on or off. Lane exceptions (the strict
// protocol checker throws) are parked in the capture slot with their
// (cycle, channel) stamp; the barrier replays the telemetry prefix up to the
// earliest throw and rethrows it, matching the serial abort point.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "telemetry/lifecycle.hpp"
#include "telemetry/trace.hpp"

namespace lazydram::gpu {

/// TraceSink that buffers every emission for ordered replay at a barrier.
/// Entries within one capture are nondecreasing in cycle (controllers emit
/// in tick order), which is what the k-way merge in drain_captures relies on.
class CaptureSink final : public telemetry::TraceSink {
 public:
  struct Entry {
    bool is_window = false;
    telemetry::TraceEvent event;     ///< Valid when !is_window.
    telemetry::WindowSample window;  ///< Valid when is_window.
    Cycle cycle() const { return is_window ? window.end_cycle : event.cycle; }
  };

  void on_event(const telemetry::TraceEvent& event) override {
    Entry e;
    e.event = event;
    entries_.push_back(std::move(e));
  }
  void on_window(const telemetry::WindowSample& window) override {
    Entry e;
    e.is_window = true;
    e.window = window;
    entries_.push_back(std::move(e));
  }

  std::vector<Entry>& entries() { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// LifecycleCollector that buffers the four memory-domain hooks (the only
/// ones a controller tick can fire) for replay at the barrier. In GpuTop
/// mode none of these opens or closes a record — creation and the
/// warp-wakeup close are core-domain, i.e. serial-side — so replaying the
/// calls before the next core step is state-identical to inline delivery.
class CaptureLifecycle final : public telemetry::LifecycleCollector {
 public:
  CaptureLifecycle() : telemetry::LifecycleCollector(nullptr, 1) {}

  struct Call {
    enum Kind : std::uint8_t { kGateEnd, kCas, kDataReturn, kDrop };
    Kind kind = kCas;
    RequestId id = 0;
    Cycle a = 0;      ///< gate begin / cas cycle / done cycle / drop cycle.
    Cycle b = 0;      ///< gate end (kGateEnd only).
    /// Memory cycle the hook fired at, for the (cycle, channel) merge. The
    /// wheel forces a real tick at every burst completion and gate close, so
    /// the stamp equals the call's own cycle argument (end for a gate).
    Cycle stamp = 0;
  };

  void on_gate_end(RequestId id, Cycle begin_mem, Cycle end_mem) override {
    calls_.push_back({Call::kGateEnd, id, begin_mem, end_mem, end_mem});
  }
  void on_cas(RequestId id, Cycle now_mem) override {
    calls_.push_back({Call::kCas, id, now_mem, 0, now_mem});
  }
  void on_data_return(RequestId id, Cycle done_mem) override {
    calls_.push_back({Call::kDataReturn, id, done_mem, 0, done_mem});
  }
  void on_drop(RequestId id, Cycle now_mem) override {
    calls_.push_back({Call::kDrop, id, now_mem, 0, now_mem});
  }

  std::vector<Call>& calls() { return calls_; }

 private:
  std::vector<Call> calls_;
};

/// Per-channel capture bundle a lane plugs into its controller for the span
/// of one parallel epoch. The tracer facade must be pointed at `sink` once
/// after construction (GpuTop does this when it sizes the vector).
struct ChannelCapture {
  telemetry::Tracer tracer;
  CaptureSink sink;
  std::unique_ptr<CaptureLifecycle> lifecycle;  ///< Created on demand.
  std::exception_ptr error;                     ///< Strict-checker throw.
  Cycle error_cycle = 0;                        ///< Mem cycle of the throw.
};

/// Replays every buffered emission and lifecycle call into the real
/// consumers in ascending (cycle, channel) order — the serial loop's
/// emission order — then clears the buffers. Entries lexicographically past
/// (cut_cycle, cut_channel) are discarded: when a strict checker threw at
/// that point, the replayed stream is the exact prefix the serial run would
/// have written before aborting. Either consumer may be null.
void drain_captures(std::vector<ChannelCapture>& captures,
                    telemetry::Tracer* tracer,
                    telemetry::LifecycleCollector* lifecycle,
                    Cycle cut_cycle = kNeverCycle,
                    ChannelId cut_channel = std::numeric_limits<ChannelId>::max());

/// Persistent worker pool for parallel epochs. run(fn) invokes fn(lane) for
/// lanes 0..N-1 concurrently — lane 0 on the calling thread — and returns
/// once every lane finished. Workers spin briefly on a generation counter
/// before falling back to a condition variable, keeping barrier latency low
/// for the short epochs the wheel produces. `fn` must not throw: lanes park
/// failures in their ChannelCapture slots instead.
class ShardPool {
 public:
  /// Spawns `lanes - 1` worker threads (lane 0 runs on the caller).
  explicit ShardPool(unsigned lanes);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  unsigned lanes() const { return static_cast<unsigned>(threads_.size()) + 1; }

  void run(const std::function<void(unsigned)>& fn);

  /// Cumulative wall time each lane spent inside its fn across every run(),
  /// accumulated only while the SelfProfiler is armed (all zero otherwise).
  /// Each lane writes its own slot; read only between runs. Comparing the
  /// sum against lanes() * pool wall yields the epoch barrier-stall share.
  std::vector<double> lane_busy_seconds() const { return lane_busy_; }

 private:
  void worker_main(unsigned lane);
  void timed_call(unsigned lane);

  std::vector<std::thread> threads_;
  std::vector<double> lane_busy_;
  const std::function<void(unsigned)>* fn_ = nullptr;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<unsigned> pending_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace lazydram::gpu
