#include "gpu/gpu_top.hpp"

#include <algorithm>
#include <cstdio>

#include "check/checker.hpp"
#include "check/context.hpp"
#include "common/assert.hpp"
#include "common/log.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/selfprof.hpp"

namespace lazydram::gpu {

namespace {
double seconds_between(std::chrono::steady_clock::time_point t0,
                       std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}
}  // namespace

GpuTop::GpuTop(const GpuConfig& cfg, const workloads::Workload& workload,
               const SchedulerFactory& factory, RowPolicy row_policy,
               telemetry::Telemetry* telemetry, check::CheckContext* check)
    : cfg_(cfg),
      workload_(workload),
      mapper_(cfg),
      req_xbar_(cfg.num_sms, cfg.num_channels, cfg.icnt_latency, /*queue*/ 8),
      reply_xbar_(cfg.num_channels, cfg.num_sms, cfg.icnt_latency, /*queue*/ 8),
      divider_(cfg.mem_clock_mhz, cfg.core_clock_mhz) {
  cfg_.validate();

  workload_.init_memory(fmem_.image());

  sms_.reserve(cfg.num_sms);
  for (SmId s = 0; s < cfg.num_sms; ++s)
    sms_.push_back(std::make_unique<Sm>(cfg_, s, workload_, mapper_));

  // Distribute the grid's warps round-robin over the SMs (one wave; workload
  // models size their grids within max resident warps).
  const unsigned warps = workload_.num_warps();
  LD_ASSERT_MSG(warps <= cfg.num_sms * cfg.max_warps_per_sm,
                "workload grid exceeds one wave of resident warps");
  for (unsigned w = 0; w < warps; ++w) sms_[w % cfg.num_sms]->assign_warp(w);

  if (telemetry != nullptr) {
    tracer_ = &telemetry->tracer();
    lifecycle_ = telemetry->lifecycle();
    // The GPU pipeline owns record creation (L2 miss) and the warp-wakeup
    // close; the controller hooks only fill in existing records.
    if (lifecycle_ != nullptr) lifecycle_->set_external_creation(true);
  }

  if (check != nullptr && !check->active()) check = nullptr;

  // Multi-tenant QoS: resolve inherit-marked caps once so every per-channel
  // component (AMS budget, checker shadow counters, recorder replay caps)
  // sees identical resolved vectors.
  std::vector<double> tenant_cov_caps;
  std::vector<Cycle> tenant_delay_caps;
  for (const TenantQos& q : cfg_.scheme.tenant_qos) {
    tenant_cov_caps.push_back(q.coverage_cap < 0.0 ? cfg_.scheme.coverage_cap
                                                   : q.coverage_cap);
    tenant_delay_caps.push_back(q.dms_delay_cap);
  }

  partitions_.reserve(cfg.num_channels);
  checkers_.assign(cfg.num_channels, nullptr);
  for (ChannelId ch = 0; ch < cfg.num_channels; ++ch) {
    Partition& p = partitions_.emplace_back(cfg.l2);
    std::unique_ptr<Scheduler> sched = factory(ch);
    p.lazy = dynamic_cast<core::LazyScheduler*>(sched.get());
    const bool hit_first = sched->hit_first();
    if (tracer_ != nullptr && p.lazy != nullptr) p.lazy->set_telemetry(tracer_, ch);
    if (lifecycle_ != nullptr && p.lazy != nullptr) p.lazy->set_lifecycle(lifecycle_);
    if (p.lazy != nullptr && !cfg_.scheme.tenant_qos.empty())
      p.lazy->set_tenant_qos(cfg_.scheme.tenant_qos);
    p.mc = std::make_unique<MemoryController>(cfg_, ch, mapper_, std::move(sched),
                                              row_policy);
    if (workload_.num_tenants() > 1)
      p.mc->enable_tenant_accounting(workload_.num_tenants());
    if (tracer_ != nullptr) p.mc->set_tracer(tracer_);
    if (lifecycle_ != nullptr) p.mc->set_lifecycle(lifecycle_);
    if (check != nullptr) {
      if (check->config().mode != check::CheckMode::kOff) {
        check::CheckerOptions opts;
        opts.mode = check->config().mode;
        opts.starvation_bound = check->config().starvation_bound;
        // Policies that legitimately close rows with younger hits pending
        // (FCFS's strict age order, BLISS, batch-cap RR) declare it.
        opts.hit_first = hit_first;
        opts.ams_allowed = p.lazy != nullptr && p.lazy->spec().ams_enabled;
        opts.coverage_cap = cfg.scheme.coverage_cap;
        if (opts.ams_allowed) opts.tenant_coverage_caps = tenant_cov_caps;
        check::ProtocolChecker* ck = check->add_checker(cfg_, ch, opts);
        ck->set_tracer(tracer_);
        p.mc->set_checker(ck);
        checkers_[ch] = ck;
      }
      if (check->config().record) {
        check::ChannelRecorder* rec = check->add_recorder(ch);
        if (p.lazy != nullptr) rec->set_spec(p.lazy->spec());
        if (!tenant_delay_caps.empty()) rec->set_tenant_delay_caps(tenant_delay_caps);
        p.mc->set_recorder(rec);
      }
    }
    if (telemetry != nullptr && telemetry->window_sampling())
      p.mc->enable_window_sampling(cfg.scheme.profile_window, tracer_);
    p.vp = std::make_unique<core::ValuePredictor>(
        p.l2, fmem_, cfg.scheme.vp_set_radius,
        cfg.scheme.vp_zero_fill ? core::PredictorKind::kZeroFill
                                : core::PredictorKind::kNearestLine);
  }
}

std::uint64_t GpuTop::instructions() const {
  std::uint64_t total = 0;
  for (const auto& sm : sms_) total += sm->instructions();
  return total;
}

std::uint64_t GpuTop::tenant_instructions(TenantId t) const {
  std::uint64_t total = 0;
  for (const auto& sm : sms_) total += sm->tenant_instructions(t);
  return total;
}

Cycle GpuTop::tenant_finish_cycle(TenantId t) const {
  Cycle last = 0;
  for (const auto& sm : sms_)
    if (sm->tenant_finish_cycle(t) > last) last = sm->tenant_finish_cycle(t);
  return last;
}

bool GpuTop::finished() const {
  for (const auto& sm : sms_)
    if (!sm->all_done()) return false;
  if (!req_xbar_.idle() || !reply_xbar_.idle()) return false;
  for (const Partition& p : partitions_) {
    if (!p.input_backlog.empty() || !p.pending_mc.empty() || !p.pending_replies.empty())
      return false;
    if (!p.waiting.empty()) return false;
    if (!p.mc->idle()) return false;
  }
  return true;
}

void GpuTop::handle_request_packet(Partition& p, unsigned idx, const icnt::Packet& pkt,
                                   bool& stalled) {
  stalled = false;

  if (pkt.kind == AccessKind::kWrite) {
    // Write-back for hits; write-no-allocate for misses (the store stream
    // goes straight to DRAM, becoming the pending write requests AMS must
    // respect).
    if (p.l2.access(pkt.line_addr, /*is_write=*/true).hit) return;
    if (p.pending_mc.size() >= kPendingMcCap) {
      stalled = true;
      return;
    }
    MemRequest req;
    req.id = next_request_id_++;
    req.line_addr = pkt.line_addr;
    req.kind = AccessKind::kWrite;
    req.tenant = pkt.tenant;
    p.pending_mc.push_back(req);
    return;
  }

  // Read.
  if (p.l2.access(pkt.line_addr, /*is_write=*/false).hit) {
    icnt::Packet reply = pkt;
    reply.approximate = p.l2.line_is_approx(pkt.line_addr);
    p.pending_replies.push_back(
        PendingReply{core_cycle_ + cfg_.l2_hit_latency, reply});
    return;
  }

  // Miss: merge or allocate.
  const auto it = p.waiting.find(pkt.line_addr);
  if (it != p.waiting.end()) {
    it->second.push_back(pkt);
    if (lifecycle_ != nullptr) lifecycle_->on_mshr_merge(pkt.line_addr);
    return;
  }
  if (p.waiting.size() >= cfg_.l2.mshr_entries || !p.mc->can_accept()) {
    stalled = true;
    return;
  }
  p.waiting.emplace(pkt.line_addr, std::vector<icnt::Packet>{pkt});

  MemRequest req;
  req.id = next_request_id_++;
  req.line_addr = pkt.line_addr;
  req.kind = AccessKind::kRead;
  req.approximable = pkt.approximable;
  req.src_sm = pkt.src_sm;
  req.tenant = pkt.tenant;
  // Open the lifecycle record before enqueue so the controller's hook finds
  // it (the sampling decision is made inside the collector).
  if (lifecycle_ != nullptr)
    lifecycle_->on_request_created(req.id, pkt.line_addr, pkt.inject_cycle,
                                   pkt.eject_cycle, core_cycle_);
  p.mc->enqueue(req, mem_now_);
  (void)idx;
}

void GpuTop::partition_tick(Partition& p, unsigned idx, bool mem_ticked) {
  // 1. DRAM side advances in the memory clock domain.
  if (mem_ticked) p.mc->tick(mem_now_);

  // 2. Drain deferred MC work (write-backs, stalled writes).
  while (!p.pending_mc.empty() && p.mc->can_accept()) {
    p.mc->enqueue(p.pending_mc.front(), mem_now_);
    p.pending_mc.pop_front();
  }

  // 3. Accept request packets: backlog first (ordering), then the crossbar.
  //    The backlog holds only the handful of packets already popped before a
  //    stall; while it is non-empty the crossbar is NOT drained, so
  //    backpressure reaches the SMs instead of requests piling up where the
  //    FR-FCFS scheduler cannot see them.
  for (unsigned n = 0; n < kInputsPerCycle; ++n) {
    icnt::Packet pkt;
    bool from_backlog = false;
    if (!p.input_backlog.empty()) {
      pkt = p.input_backlog.front();
      from_backlog = true;
    } else {
      auto popped = req_xbar_.pop(idx, core_cycle_);
      if (!popped) break;
      pkt = *popped;
      pkt.eject_cycle = core_cycle_;  // Lifecycle stamp: crossbar exit.
    }
    bool stalled = false;
    handle_request_packet(p, idx, pkt, stalled);
    if (stalled) {
      if (!from_backlog) p.input_backlog.push_back(pkt);
      break;
    }
    if (from_backlog) p.input_backlog.pop_front();
  }

  // 4. Consume DRAM replies: VP-synthesize dropped reads, fill the L2, wake
  //    the waiting packets.
  for (unsigned n = 0; n < kRepliesPerCycle; ++n) {
    auto reply = p.mc->pop_reply(mem_now_);
    if (!reply) break;
    if (lifecycle_ != nullptr) lifecycle_->on_reply_pop(reply->id, core_cycle_);

    if (reply->approximate) {
      // The request never touched DRAM; the VP unit synthesizes the line
      // from the nearest valid line in nearby L2 sets (Section IV-D).
      core::ValuePredictor::Prediction pred = p.vp->predict(reply->line_addr);
      fmem_.record_approx_line(reply->line_addr, pred.data.data());
      if (tracer_ != nullptr)
        tracer_->vp_prediction(mem_now_, static_cast<ChannelId>(idx), reply->line_addr,
                               pred.donor_found, pred.donor_addr);
    }

    const cache::AccessResult fill =
        p.l2.fill(reply->line_addr, /*dirty=*/false, reply->approximate);
    if (fill.writeback) {
      MemRequest wb;
      wb.id = next_request_id_++;
      wb.line_addr = fill.evicted_line;
      wb.kind = AccessKind::kWrite;
      // The evicting request's tenant is unrelated to the victim line; the
      // writeback bills the tenant that owns the evicted address.
      wb.tenant = workload_.tenant_of_addr(fill.evicted_line);
      p.pending_mc.push_back(wb);
    }

    const auto it = p.waiting.find(reply->line_addr);
    LD_ASSERT_MSG(it != p.waiting.end(), "DRAM reply with no waiting L2 miss");
    for (const icnt::Packet& waiter : it->second) {
      icnt::Packet out = waiter;
      out.approximate = reply->approximate;
      out.parent = reply->id;  // Lifecycle stamp: which request this answers.
      p.pending_replies.push_back(
          PendingReply{core_cycle_ + cfg_.l2_hit_latency, out});
    }
    p.waiting.erase(it);
  }

  // 5. Return replies toward the SMs.
  while (!p.pending_replies.empty() && p.pending_replies.front().ready <= core_cycle_ &&
         reply_xbar_.can_push(idx)) {
    const icnt::Packet& out = p.pending_replies.front().packet;
    reply_xbar_.push(idx, out.src_sm, out);
    p.pending_replies.pop_front();
  }

  // 6. AMS is gated until the L2 slice is warm enough for the VP to search.
  if (!p.ams_ready && p.lazy != nullptr &&
      p.l2.fills() >= cfg_.scheme.l2_warmup_fills) {
    p.ams_ready = true;
    p.lazy->set_ams_ready(true);
  }
}

void GpuTop::step() {
  ++core_cycle_;
  const bool mem_ticked = divider_.tick() > 0;
  mem_now_ = divider_.slow_cycles();

  // Sampled step decomposition: time 1 step in 64 (SM side vs. crossbars vs.
  // partition/memory front-ends) when the self-profiler is armed. Sampling
  // keeps the clock reads off 63/64 of the hottest loop in the simulator.
  const bool sample = self_enabled_ && (core_cycle_ & 63) == 0;
  std::chrono::steady_clock::time_point t0, t1, t2, t3;
  if (sample) t0 = std::chrono::steady_clock::now();
  for (auto& sm : sms_) sm->tick(core_cycle_, req_xbar_);
  if (sample) t1 = std::chrono::steady_clock::now();
  req_xbar_.tick(core_cycle_);
  for (unsigned ch = 0; ch < partitions_.size(); ++ch)
    partition_tick(partitions_[ch], ch, mem_ticked);
  if (sample) t2 = std::chrono::steady_clock::now();
  reply_xbar_.tick(core_cycle_);
  for (SmId s = 0; s < sms_.size(); ++s)
    while (auto pkt = reply_xbar_.pop(s, core_cycle_)) {
      if (lifecycle_ != nullptr && pkt->parent != 0)
        lifecycle_->on_warp_wakeup(pkt->parent, core_cycle_);
      sms_[s]->on_reply(*pkt);
    }
  if (sample) {
    t3 = std::chrono::steady_clock::now();
    ++self_stats_.step_samples;
    self_stats_.sm_sample_seconds += seconds_between(t0, t1);
    // The request crossbar ticks inside the t1..t2 slice with the
    // partitions; the reply-side crossbar work is t2..t3. Splitting the
    // request xbar out would cost a fifth clock read for a component that is
    // a small constant, so it is attributed to the partition slice and the
    // icnt share reported from the reply side alone is a lower bound.
    self_stats_.partition_sample_seconds += seconds_between(t1, t2);
    self_stats_.icnt_sample_seconds += seconds_between(t2, t3);
  }
}

void GpuTop::register_stats(telemetry::TelemetryHub& hub) const {
  using telemetry::channel_stat;

  hub.add_counter("gpu.core_cycles", [this] { return core_cycles(); });
  hub.add_counter("gpu.mem_cycles", [this] { return mem_cycles(); });
  hub.add_counter("gpu.instructions", [this] { return instructions(); });
  hub.add_gauge("gpu.ipc", [this] { return ipc(); });

  if (num_tenants() > 1) {
    for (TenantId t = 0; t < num_tenants(); ++t) {
      const std::string pfx = "gpu.tenant" + std::to_string(t) + ".";
      hub.add_counter(pfx + "instructions",
                      [this, t] { return tenant_instructions(t); });
      hub.add_counter(pfx + "finish_cycle",
                      [this, t] { return tenant_finish_cycle(t); });
    }
  }

  for (ChannelId ch = 0; ch < num_channels(); ++ch) {
    const MemoryController* mc = partitions_[ch].mc.get();
    hub.add_counter(channel_stat("mem", ch, "reads_received"),
                    [mc] { return mc->reads_received(); });
    hub.add_counter(channel_stat("mem", ch, "writes_received"),
                    [mc] { return mc->writes_received(); });
    hub.add_counter(channel_stat("mem", ch, "reads_served"),
                    [mc] { return mc->reads_served(); });
    hub.add_counter(channel_stat("mem", ch, "writes_served"),
                    [mc] { return mc->writes_served(); });
    hub.add_counter(channel_stat("mem", ch, "reads_dropped"),
                    [mc] { return mc->reads_dropped(); });
    hub.add_counter(channel_stat("mem", ch, "read_latency_count"),
                    [mc] { return mc->read_latency().count(); });
    hub.add_gauge(channel_stat("mem", ch, "read_latency_mean"),
                  [mc] { return mc->read_latency().mean(); });
    hub.add_histogram(channel_stat("mem", ch, "read_latency"),
                      &mc->read_latency_hist());
    for (TenantId t = 0; t < mc->num_tenants(); ++t) {
      const std::string pfx = "tenant" + std::to_string(t) + ".";
      hub.add_counter(channel_stat("mem", ch, pfx + "reads_received"),
                      [mc, t] { return mc->tenant_reads_received(t); });
      hub.add_counter(channel_stat("mem", ch, pfx + "reads_served"),
                      [mc, t] { return mc->tenant_reads_served(t); });
      hub.add_counter(channel_stat("mem", ch, pfx + "reads_dropped"),
                      [mc, t] { return mc->tenant_reads_dropped(t); });
      hub.add_histogram(channel_stat("mem", ch, pfx + "read_latency"),
                        &mc->tenant_read_latency_hist(t));
    }

    const dram::DramChannel* dc = &mc->channel();
    hub.add_counter(channel_stat("dram", ch, "activations"),
                    [dc] { return dc->activations(); });
    hub.add_counter(channel_stat("dram", ch, "column_reads"),
                    [dc] { return dc->energy().read_accesses(); });
    hub.add_counter(channel_stat("dram", ch, "column_writes"),
                    [dc] { return dc->energy().write_accesses(); });
    hub.add_counter(channel_stat("dram", ch, "bus_busy_cycles"),
                    [dc] { return dc->bus_busy_cycles(); });
    hub.add_gauge(channel_stat("dram", ch, "row_energy_nj"),
                  [dc] { return dc->energy().row_energy_nj(); });
    hub.add_gauge(channel_stat("dram", ch, "access_energy_nj"),
                  [dc] { return dc->energy().access_energy_nj(); });
    hub.add_histogram(channel_stat("dram", ch, "rbl"), &dc->rbl_histogram());
    hub.add_histogram(channel_stat("dram", ch, "rbl_readonly"),
                      &dc->rbl_readonly_histogram());

    if (const dram::PowerAccountant* pw = dc->power()) {
      // State-based accounting extras; absent when power_accounting is off
      // (collect_metrics probes with has_gauge and degrades to row+access).
      hub.add_gauge(channel_stat("dram", ch, "background_energy_nj"),
                    [pw] { return pw->channel_energy().background_nj; });
      hub.add_gauge(channel_stat("dram", ch, "refresh_energy_nj"),
                    [pw] { return pw->channel_energy().refresh_nj; });
      hub.add_counter(channel_stat("dram", ch, "active_bank_cycles"),
                      [pw] { return pw->channel_active_cycles(); });
      for (unsigned b = 0; b < pw->num_banks(); ++b)
        hub.add_gauge(
            channel_stat("dram", ch, "bank" + std::to_string(b) + ".energy_nj"),
            [pw, b] { return pw->bank_energy(b).total_nj(); });
    }

    const cache::Cache* l2 = &partitions_[ch].l2;
    hub.add_counter(channel_stat("cache.l2", ch, "hits"), [l2] { return l2->hits(); });
    hub.add_counter(channel_stat("cache.l2", ch, "misses"), [l2] { return l2->misses(); });
    hub.add_counter(channel_stat("cache.l2", ch, "accesses"),
                    [l2] { return l2->accesses(); });
    hub.add_counter(channel_stat("cache.l2", ch, "fills"), [l2] { return l2->fills(); });

    const core::ValuePredictor* vp = partitions_[ch].vp.get();
    hub.add_counter(channel_stat("core", ch, "vp.predictions"),
                    [vp] { return vp->predictions(); });
    hub.add_counter(channel_stat("core", ch, "vp.zero_fills"),
                    [vp] { return vp->zero_fills(); });

    // Policy-owned stats: each scheduler registers its own entries (the lazy
    // scheduler's DMS/AMS gauges, BLISS blacklist counters, ...) under the
    // conventional per-channel prefix.
    mc->scheduler().register_stats(hub, channel_stat("core", ch, ""));

    if (const check::ProtocolChecker* ck = checkers_[ch]) {
      hub.add_counter(channel_stat("check", ch, "commands"),
                      [ck] { return ck->commands_checked(); });
      hub.add_counter(channel_stat("check", ch, "violations"),
                      [ck] { return ck->violation_count(); });
    }
  }
}

bool GpuTop::run(Cycle max_core_cycles) {
  self_enabled_ = telemetry::SelfProfiler::enabled();
  const bool heartbeat = cfg_.heartbeat_seconds > 0.0;
  run_start_wall_ = last_heartbeat_ = std::chrono::steady_clock::now();
  last_heartbeat_core_ = core_cycle_;
  if (heartbeat) {
    next_heartbeat_ =
        run_start_wall_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(cfg_.heartbeat_seconds));
  }
  {
    telemetry::SelfZone zone(cfg_.shard_threads == 0 ? "gpu.run_legacy"
                                                     : "gpu.run_wheel");
    if (cfg_.shard_threads == 0) {
      while (core_cycle_ < max_core_cycles) {
        step();
        // finished() scans every structure; polling every cycle would dominate
        // runtime, and no workload finishes in under 1k cycles.
        if ((core_cycle_ & 1023) == 0) {
          if (finished()) break;
          if (heartbeat) maybe_heartbeat();
        }
      }
    } else {
      init_sharding();
      run_wheel(max_core_cycles);
    }
  }
  if (self_enabled_) {
    self_stats_.run_wall_seconds +=
        seconds_between(run_start_wall_, std::chrono::steady_clock::now());
  }
  const bool ok = finished();
  for (Partition& p : partitions_) p.mc->finalize();
  return ok;
}

GpuTop::WheelSelfStats GpuTop::self_stats() const {
  WheelSelfStats s = self_stats_;
  s.lanes = lanes_;
  s.serial_seconds =
      std::max(0.0, s.run_wall_seconds - s.mem_serial_seconds -
                        s.mem_parallel_wall_seconds);
  if (pool_ != nullptr) {
    s.lane_busy_seconds = pool_->lane_busy_seconds();
    double busy = 0.0;
    for (const double b : s.lane_busy_seconds) busy += b;
    s.barrier_stall_seconds =
        std::max(0.0, static_cast<double>(lanes_) * s.pool_wall_seconds - busy);
  }
  return s;
}

void GpuTop::maybe_heartbeat() {
  const auto now = std::chrono::steady_clock::now();
  if (now < next_heartbeat_) return;
  next_heartbeat_ =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(cfg_.heartbeat_seconds));

  std::size_t warps_total = 0, warps_done = 0;
  for (const auto& sm : sms_) {
    warps_total += sm->resident_warps();
    warps_done += sm->done_warps();
  }
  std::size_t queued = 0;
  for (const Partition& p : partitions_) queued += p.mc->queue().size();

  const double dt = seconds_between(last_heartbeat_, now);
  const double mcps =
      dt > 0.0 ? static_cast<double>(core_cycle_ - last_heartbeat_core_) / dt / 1e6
               : 0.0;
  const double elapsed = seconds_between(run_start_wall_, now);
  const double frac =
      warps_total > 0 ? static_cast<double>(warps_done) / static_cast<double>(warps_total)
                      : 0.0;
  const double eta = frac > 0.0 ? elapsed * (1.0 - frac) / frac : -1.0;

  char lanes_buf[160];
  lanes_buf[0] = '\0';
  if (pool_ != nullptr && self_enabled_ && self_stats_.pool_wall_seconds > 0.0) {
    const std::vector<double> busy = pool_->lane_busy_seconds();
    int n = std::snprintf(lanes_buf, sizeof(lanes_buf), " lanes=");
    for (std::size_t i = 0; i < busy.size() && n > 0 &&
                            n < static_cast<int>(sizeof(lanes_buf)) - 8;
         ++i) {
      n += std::snprintf(lanes_buf + n, sizeof(lanes_buf) - n, "%s%.0f%%",
                         i == 0 ? "" : ",",
                         100.0 * busy[i] / self_stats_.pool_wall_seconds);
    }
  }
  log_status("hb core=%llu mem=%llu %.2f Mcyc/s warps=%zu/%zu eta=%.0fs "
             "queued=%zu%s",
             static_cast<unsigned long long>(core_cycle_),
             static_cast<unsigned long long>(mem_now_), mcps, warps_done,
             warps_total, eta, queued, lanes_buf);
  last_heartbeat_ = now;
  last_heartbeat_core_ = core_cycle_;
}

Cycle GpuTop::serial_next_event() const {
  const Cycle now = core_cycle_;
  // Any packet anywhere in either crossbar keeps the serial side hot: it
  // moves (or becomes poppable) on its own schedule the switch doesn't
  // expose, so poll. Idle switches tick as pure no-ops.
  if (!req_xbar_.idle() || !reply_xbar_.idle()) return now + 1;
  Cycle ev = kNeverCycle;
  for (const auto& sm : sms_) {
    ev = std::min(ev, sm->next_event(now));
    if (ev <= now + 1) return now + 1;
  }
  for (const Partition& p : partitions_) {
    // Backlogged inputs / deferred enqueues retry every cycle (they wait on
    // MC queue space, which the memory side frees at its own pace).
    if (!p.input_backlog.empty() || !p.pending_mc.empty()) return now + 1;
    if (!p.pending_replies.empty()) {
      // FIFO with a constant L2-hit latency: the head is the earliest.
      const Cycle ready = p.pending_replies.front().ready;
      if (ready <= now) return now + 1;
      ev = std::min(ev, ready);
    }
    // Warmup flips on the step after the threshold fill; never pending
    // across a quiet span (fills only change while the serial side is hot),
    // but cheap to be exact about.
    if (!p.ams_ready && p.lazy != nullptr &&
        p.l2.fills() >= cfg_.scheme.l2_warmup_fills)
      return now + 1;
  }
  return ev;
}

void GpuTop::init_sharding() {
  lanes_ = std::min<unsigned>(cfg_.shard_threads, num_channels());
  if (lanes_ <= 1) {
    lanes_ = 1;
    return;
  }
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<ShardPool>(lanes_);
  captures_.resize(num_channels());
  for (ChannelCapture& cap : captures_) {
    cap.tracer.set_sink(&cap.sink);
    if (lifecycle_ != nullptr && cap.lifecycle == nullptr)
      cap.lifecycle = std::make_unique<CaptureLifecycle>();
  }
}

void GpuTop::run_wheel(Cycle max_core_cycles) {
  const bool heartbeat = cfg_.heartbeat_seconds > 0.0;
  while (core_cycle_ < max_core_cycles) {
    Cycle resume = std::min(serial_next_event(), max_core_cycles);
    // Never skip past the legacy loop's finished() poll boundary, so the
    // exit cycle (and core_cycles() metric) matches it exactly.
    resume = std::min(resume, (core_cycle_ | 1023) + 1);
    // Earliest memory event the serial side could observe: a reply becoming
    // poppable or the soonest possible CAS data return. The first core cycle
    // whose step sees that memory cycle bounds the skip; everything strictly
    // before it is provably free of cross-domain traffic.
    Cycle mem_cross = kNeverCycle;
    for (const Partition& p : partitions_)
      mem_cross = std::min(mem_cross, p.mc->next_cross_event(mem_now_));
    if (mem_cross != kNeverCycle)
      resume = std::min(resume, core_cycle_ + divider_.fast_cycles_until(mem_cross));
    if (resume <= core_cycle_ + 1) {
      step();
      if ((core_cycle_ & 1023) == 0) {
        if (finished()) return;
        if (heartbeat) maybe_heartbeat();
      }
      continue;
    }
    // Fast-forward: no serial work and no cross-domain event until `resume`.
    // Advance the memory side alone over the skipped span and land the core
    // clock at resume - 1 so the next iteration steps at `resume`.
    divider_.advance(resume - 1 - core_cycle_);
    const Cycle m_end = divider_.slow_cycles();
    if (m_end > mem_now_) {
      const bool parallel = lanes_ > 1 && m_end - mem_now_ >= kParallelSpanMin;
      // Span-boundary clock reads are the whole cost of memory-side
      // attribution — the per-tick loops stay untimed.
      std::chrono::steady_clock::time_point t0;
      if (self_enabled_) t0 = std::chrono::steady_clock::now();
      if (parallel)
        run_mem_span_parallel(mem_now_, m_end);
      else
        run_mem_span(mem_now_, m_end);
      if (self_enabled_) {
        const double dt =
            seconds_between(t0, std::chrono::steady_clock::now());
        if (parallel) {
          self_stats_.mem_parallel_wall_seconds += dt;
          ++self_stats_.parallel_epochs;
        } else {
          self_stats_.mem_serial_seconds += dt;
          ++self_stats_.serial_spans;
        }
      }
      mem_now_ = m_end;
    }
    core_cycle_ = resume - 1;
    if (heartbeat) maybe_heartbeat();
  }
}

void GpuTop::run_mem_span(Cycle m0, Cycle m1) {
  Cycle m = m0;
  while (m < m1) {
    Cycle ev = kNeverCycle;
    for (Partition& p : partitions_) ev = std::min(ev, p.mc->next_event(m));
    if (ev > m + 1) {
      const Cycle to = std::min(ev - 1, m1);
      for (Partition& p : partitions_) p.mc->advance_idle(m, to);
      m = to;
      continue;
    }
    ++m;
    for (Partition& p : partitions_) p.mc->tick(m);
  }
}

void GpuTop::advance_channel(ChannelId ch, Cycle m0, Cycle m1, ChannelCapture* cap) {
  MemoryController& mc = *partitions_[ch].mc;
  Cycle m = m0;
  while (m < m1) {
    const Cycle ev = mc.next_event(m);
    if (ev > m + 1) {
      const Cycle to = std::min(ev - 1, m1);
      mc.advance_idle(m, to);
      m = to;
      continue;
    }
    ++m;
    if (cap == nullptr) {
      mc.tick(m);
    } else {
      try {
        mc.tick(m);
      } catch (...) {
        cap->error = std::current_exception();
        cap->error_cycle = m;
        return;
      }
    }
  }
}

void GpuTop::install_captures() {
  const bool trace_on = tracer_ != nullptr && tracer_->enabled();
  for (ChannelId ch = 0; ch < num_channels(); ++ch) {
    Partition& p = partitions_[ch];
    ChannelCapture& cap = captures_[ch];
    if (trace_on) {
      p.mc->set_tracer(&cap.tracer);  // Forwards to the window sampler too.
      if (p.lazy != nullptr) p.lazy->set_telemetry(&cap.tracer, ch);
      if (checkers_[ch] != nullptr) checkers_[ch]->set_tracer(&cap.tracer);
    }
    if (lifecycle_ != nullptr) {
      p.mc->set_lifecycle(cap.lifecycle.get());
      if (p.lazy != nullptr) p.lazy->set_lifecycle(cap.lifecycle.get());
    }
  }
}

void GpuTop::restore_captures() {
  const bool trace_on = tracer_ != nullptr && tracer_->enabled();
  for (ChannelId ch = 0; ch < num_channels(); ++ch) {
    Partition& p = partitions_[ch];
    if (trace_on) {
      p.mc->set_tracer(tracer_);
      if (p.lazy != nullptr) p.lazy->set_telemetry(tracer_, ch);
      if (checkers_[ch] != nullptr) checkers_[ch]->set_tracer(tracer_);
    }
    if (lifecycle_ != nullptr) {
      p.mc->set_lifecycle(lifecycle_);
      if (p.lazy != nullptr) p.lazy->set_lifecycle(lifecycle_);
    }
  }
}

void GpuTop::run_mem_span_parallel(Cycle m0, Cycle m1) {
  install_captures();
  const unsigned lanes = lanes_;
  const unsigned channels = num_channels();
  // A strict violation inside a lane must not dump the flight rings while
  // sibling lanes are still writing theirs; defer until after the barrier
  // and the deterministic capture drain below.
  telemetry::FlightRecorder::set_deferred(true);
  std::chrono::steady_clock::time_point t0;
  if (self_enabled_) t0 = std::chrono::steady_clock::now();
  pool_->run([&](unsigned lane) {
    for (ChannelId ch = lane; ch < channels; ch += lanes)
      advance_channel(ch, m0, m1, &captures_[ch]);
  });
  if (self_enabled_)
    self_stats_.pool_wall_seconds +=
        seconds_between(t0, std::chrono::steady_clock::now());
  telemetry::FlightRecorder::set_deferred(false);
  restore_captures();

  // Earliest strict-checker abort wins, matching the serial loop's
  // (cycle, channel) scan order; replay the trace prefix up to it.
  std::size_t bad = captures_.size();
  for (std::size_t ch = 0; ch < captures_.size(); ++ch) {
    if (captures_[ch].error == nullptr) continue;
    if (bad == captures_.size() || captures_[ch].error_cycle < captures_[bad].error_cycle)
      bad = ch;
  }
  if (bad != captures_.size()) {
    drain_captures(captures_, tracer_, lifecycle_, captures_[bad].error_cycle,
                   static_cast<ChannelId>(bad));
    const std::exception_ptr err = captures_[bad].error;
    for (ChannelCapture& cap : captures_) {
      cap.error = nullptr;
      cap.error_cycle = 0;
    }
    // The drain just replayed the merged (cycle, channel)-ordered prefix —
    // violation event included — into the main tracer's flight rings, and
    // every lane is quiesced, so this is the deterministic point to leave
    // the forensics the in-lane (deferred) dump could not.
    try {
      std::rethrow_exception(err);
    } catch (const std::exception& e) {
      telemetry::FlightRecorder::dump_all("protocol_violation", e.what());
      throw;
    } catch (...) {
      telemetry::FlightRecorder::dump_all("protocol_violation",
                                          "non-standard exception");
      throw;
    }
  }
  drain_captures(captures_, tracer_, lifecycle_);
}

}  // namespace lazydram::gpu
