#include "gpu/functional_memory.hpp"

namespace lazydram::gpu {

MemoryImage::MemoryImage(const MemoryImage& other) {
  pages_.reserve(other.pages_.size());
  for (const auto& [base, page] : other.pages_)
    pages_.emplace(base, std::make_unique<Page>(*page));
}

const MemoryImage::Page* MemoryImage::page_of(Addr addr) const {
  const auto it = pages_.find(addr & ~static_cast<Addr>(kPageBytes - 1));
  return it == pages_.end() ? nullptr : it->second.get();
}

MemoryImage::Page& MemoryImage::page_for_write(Addr addr) {
  const Addr base = addr & ~static_cast<Addr>(kPageBytes - 1);
  auto it = pages_.find(base);
  if (it == pages_.end()) {
    it = pages_.emplace(base, std::make_unique<Page>()).first;
    it->second->fill(0);
  }
  return *it->second;
}

void MemoryImage::read(Addr addr, std::uint8_t* out, std::size_t n) const {
  while (n > 0) {
    const Addr page_base = addr & ~static_cast<Addr>(kPageBytes - 1);
    const std::size_t offset = static_cast<std::size_t>(addr - page_base);
    const std::size_t chunk = std::min(n, kPageBytes - offset);
    if (const Page* page = page_of(addr))
      std::memcpy(out, page->data() + offset, chunk);
    else
      std::memset(out, 0, chunk);
    addr += chunk;
    out += chunk;
    n -= chunk;
  }
}

void MemoryImage::write(Addr addr, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const Addr page_base = addr & ~static_cast<Addr>(kPageBytes - 1);
    const std::size_t offset = static_cast<std::size_t>(addr - page_base);
    const std::size_t chunk = std::min(n, kPageBytes - offset);
    std::memcpy(page_for_write(addr).data() + offset, data, chunk);
    addr += chunk;
    data += chunk;
    n -= chunk;
  }
}

void MemoryImage::blit_from(const MemoryImage& src, Addr bias) {
  LD_ASSERT_MSG(bias % kPageBytes == 0, "blit bias must be page-aligned");
  for (const auto& [base, page] : src.pages_)
    write(base + bias, page->data(), kPageBytes);
}

float MemoryImage::read_f32(Addr addr) const {
  float v;
  std::uint8_t buf[4];
  read(addr, buf, 4);
  std::memcpy(&v, buf, 4);
  return v;
}

void MemoryImage::write_f32(Addr addr, float value) {
  std::uint8_t buf[4];
  std::memcpy(buf, &value, 4);
  write(addr, buf, 4);
}

std::uint32_t MemoryImage::read_u32(Addr addr) const {
  std::uint32_t v;
  std::uint8_t buf[4];
  read(addr, buf, 4);
  std::memcpy(&v, buf, 4);
  return v;
}

void MemoryImage::write_u32(Addr addr, std::uint32_t value) {
  std::uint8_t buf[4];
  std::memcpy(buf, &value, 4);
  write(addr, buf, 4);
}

void FunctionalMemory::record_approx_line(Addr line_addr, const std::uint8_t* bytes) {
  LD_ASSERT(line_addr % kLineBytes == 0);
  auto [it, inserted] = overlay_.try_emplace(line_addr);
  if (!inserted) return;  // First prediction wins.
  std::memcpy(it->second.data(), bytes, kLineBytes);
}

void FunctionalMemory::read_line(Addr line_addr, std::uint8_t out[kLineBytes]) const {
  LD_ASSERT(line_addr % kLineBytes == 0);
  const auto it = overlay_.find(line_addr);
  if (it != overlay_.end()) {
    std::memcpy(out, it->second.data(), kLineBytes);
    return;
  }
  image_.read(line_addr, out, kLineBytes);
}

void MemView::read_small(Addr addr, std::uint8_t* out, std::size_t n) const {
  addr += bias_;
  if (overlay_ != nullptr) {
    const auto it = overlay_->find(line_base(addr));
    if (it != overlay_->end()) {
      const std::size_t offset = static_cast<std::size_t>(addr - line_base(addr));
      LD_ASSERT(offset + n <= kLineBytes);
      std::memcpy(out, it->second.data() + offset, n);
      return;
    }
  }
  storage_.read(addr, out, n);
}

float MemView::read_f32(Addr addr) const {
  float v;
  std::uint8_t buf[4];
  read_small(addr, buf, 4);
  std::memcpy(&v, buf, 4);
  return v;
}

std::uint32_t MemView::read_u32(Addr addr) const {
  std::uint32_t v;
  std::uint8_t buf[4];
  read_small(addr, buf, 4);
  std::memcpy(&v, buf, 4);
  return v;
}

}  // namespace lazydram::gpu
