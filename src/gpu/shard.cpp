#include "gpu/shard.hpp"

#include <chrono>

#include "telemetry/selfprof.hpp"

namespace lazydram::gpu {

namespace {

/// Spin iterations before a waiter falls back to its condition variable.
/// Epochs are tens of microseconds, so the common case stays lock-free.
constexpr unsigned kSpinIters = 4096;

}  // namespace

void drain_captures(std::vector<ChannelCapture>& captures,
                    telemetry::Tracer* tracer,
                    telemetry::LifecycleCollector* lifecycle,
                    Cycle cut_cycle, ChannelId cut_channel) {
  const std::size_t n = captures.size();
  const auto included = [&](Cycle cycle, std::size_t ch) {
    return cycle < cut_cycle ||
           (cycle == cut_cycle && static_cast<ChannelId>(ch) <= cut_channel);
  };

  // K-way merge of the trace buffers. Per-channel buffers are nondecreasing
  // in cycle, so once a head falls past the cut the whole tail does too.
  if (tracer != nullptr) {
    std::vector<std::size_t> head(n, 0);
    for (;;) {
      std::size_t best = n;
      Cycle best_cycle = kNeverCycle;
      for (std::size_t ch = 0; ch < n; ++ch) {
        auto& entries = captures[ch].sink.entries();
        if (head[ch] >= entries.size()) continue;
        const Cycle c = entries[head[ch]].cycle();
        if (!included(c, ch)) {
          head[ch] = entries.size();
          continue;
        }
        if (c < best_cycle || (c == best_cycle && ch < best)) {
          best = ch;
          best_cycle = c;
        }
      }
      if (best == n) break;
      const CaptureSink::Entry& e = captures[best].sink.entries()[head[best]++];
      if (e.is_window) {
        tracer->emit_window(e.window);
      } else {
        tracer->emit(e.event);
      }
    }
  }

  // Same merge over the buffered lifecycle calls. The hooks only mutate
  // per-request fields, so any replay order would leave identical collector
  // state; merging keeps the discipline uniform and the cut exact.
  if (lifecycle != nullptr) {
    std::vector<std::size_t> head(n, 0);
    for (;;) {
      std::size_t best = n;
      Cycle best_cycle = kNeverCycle;
      for (std::size_t ch = 0; ch < n; ++ch) {
        if (captures[ch].lifecycle == nullptr) continue;
        auto& calls = captures[ch].lifecycle->calls();
        if (head[ch] >= calls.size()) continue;
        const Cycle c = calls[head[ch]].stamp;
        if (!included(c, ch)) {
          head[ch] = calls.size();
          continue;
        }
        if (c < best_cycle || (c == best_cycle && ch < best)) {
          best = ch;
          best_cycle = c;
        }
      }
      if (best == n) break;
      const CaptureLifecycle::Call& c = captures[best].lifecycle->calls()[head[best]++];
      switch (c.kind) {
        case CaptureLifecycle::Call::kGateEnd:
          lifecycle->on_gate_end(c.id, c.a, c.b);
          break;
        case CaptureLifecycle::Call::kCas:
          lifecycle->on_cas(c.id, c.a);
          break;
        case CaptureLifecycle::Call::kDataReturn:
          lifecycle->on_data_return(c.id, c.a);
          break;
        case CaptureLifecycle::Call::kDrop:
          lifecycle->on_drop(c.id, c.a);
          break;
      }
    }
  }

  for (ChannelCapture& cap : captures) {
    cap.sink.entries().clear();
    if (cap.lifecycle != nullptr) cap.lifecycle->calls().clear();
  }
}

ShardPool::ShardPool(unsigned lanes) {
  const unsigned workers = lanes > 1 ? lanes - 1 : 0;
  lane_busy_.assign(workers + 1, 0.0);
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i + 1); });
  }
}

// Runs fn_(lane), accumulating its wall time into the lane's busy slot when
// the self-profiler is armed. Each lane touches only its own slot, so no
// synchronization beyond the pool's existing barrier is needed.
void ShardPool::timed_call(unsigned lane) {
  if (telemetry::SelfProfiler::enabled()) {
    const auto t0 = std::chrono::steady_clock::now();
    (*fn_)(lane);
    lane_busy_[lane] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } else {
    (*fn_)(lane);
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::run(const std::function<void(unsigned)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  fn_ = &fn;
  pending_.store(static_cast<unsigned>(threads_.size()), std::memory_order_relaxed);
  {
    // The lock pairs with the predicate check inside the workers' cv wait so
    // a generation bump can never slip between check and sleep.
    std::lock_guard<std::mutex> lk(mu_);
    generation_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_all();
  timed_call(0);
  unsigned spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (++spins >= kSpinIters) {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return pending_.load(std::memory_order_acquire) == 0; });
      break;
    }
  }
  fn_ = nullptr;
}

void ShardPool::worker_main(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    unsigned spins = 0;
    while (gen == seen && !stop_.load(std::memory_order_acquire)) {
      if (++spins >= kSpinIters) {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] {
          return generation_.load(std::memory_order_acquire) != seen ||
                 stop_.load(std::memory_order_acquire);
        });
      }
      gen = generation_.load(std::memory_order_acquire);
    }
    if (gen == seen) return;  // Woken by stop_ with no new work.
    seen = gen;
    timed_call(lane);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_one();
    }
  }
}

}  // namespace lazydram::gpu
