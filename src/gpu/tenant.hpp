// Multi-tenant run assembly: the tenant spec grammar and the TenantSet that
// turns parsed specs into a MixWorkload plus the per-tenant QoS budgets the
// machine enforces.
//
// Spec grammar (one string, tenants separated by ';'):
//
//   tenant  := kernels [":" option ("," option)*]
//   kernels := KERNEL ("+" KERNEL)*          sequential phases, registry names
//   option  := "warps=" N                    warp budget (default: largest grid)
//            | "repeat=" N                   closed-loop iterations (default 1)
//            | "think=" CYCLES               mean think-time per iteration
//            | "approx=" 0|1                 honor approximable annotations
//            | "cap=" FRACTION               per-tenant AMS coverage cap
//            | "delay_cap=" CYCLES           per-tenant DMS delay cap
//            | "name=" LABEL                 display name
//
// Example: "SCP:warps=256,cap=0.05;BP+KM:warps=128,think=2000,approx=0"
//
// Malformed specs throw std::invalid_argument with a message naming the
// offending token (benches surface it as a usage error; tests assert on it).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "workloads/mix.hpp"

namespace lazydram::gpu {

using TenantSpec = workloads::MixTenant;

/// Parses one tenant ("SCP:warps=64,cap=0.05"). Throws std::invalid_argument.
TenantSpec parse_tenant_spec(const std::string& text);

/// Parses a ';'-separated tenant list. Throws std::invalid_argument.
std::vector<TenantSpec> parse_tenant_specs(const std::string& text);

/// A set of clients sharing the machine: owns the MixWorkload multiplexing
/// their op streams and knows how to install their QoS budgets into a
/// GpuConfig and how to build each tenant's alone-run baseline.
class TenantSet {
 public:
  /// `seed` feeds the mix's think-time RNG.
  explicit TenantSet(std::vector<TenantSpec> specs, std::uint64_t seed = 1);

  unsigned size() const { return static_cast<unsigned>(specs_.size()); }
  const TenantSpec& spec(TenantId t) const { return specs_[t]; }
  workloads::MixWorkload& workload() { return *mix_; }
  const workloads::MixWorkload& workload() const { return *mix_; }

  /// True when any tenant carries an explicit QoS budget (coverage or delay
  /// cap) — the condition under which apply_qos installs budgets at all for
  /// single-tenant sets.
  bool has_explicit_qos() const;

  /// Installs per-tenant budgets into cfg.scheme.tenant_qos. Multi-tenant
  /// sets always install (unspecified caps inherit the globals); a single
  /// tenant with no explicit caps installs nothing, keeping that run on the
  /// legacy single-workload path bit-identically.
  void apply_qos(GpuConfig& cfg) const;

  /// Tenant `t`'s alone-run baseline: the same spec as the only client (and
  /// therefore at window bias 0), same seed. Slowdown_t = shared finish /
  /// alone finish.
  std::unique_ptr<workloads::MixWorkload> alone_workload(TenantId t) const;

 private:
  std::vector<TenantSpec> specs_;
  std::uint64_t seed_;
  std::unique_ptr<workloads::MixWorkload> mix_;
};

}  // namespace lazydram::gpu
