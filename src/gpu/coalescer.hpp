// Memory coalescing: collapse a warp op's 32 lane addresses into the set of
// distinct 128B transactions (Table I: "memory coalescing enabled").
#pragma once

#include <vector>

#include "common/types.hpp"
#include "gpu/warp.hpp"

namespace lazydram::gpu {

/// Appends the distinct line base addresses touched by `op` to `out`,
/// preserving first-touch lane order. `out` is cleared first.
void coalesce(const WarpOp& op, std::vector<Addr>& out);

}  // namespace lazydram::gpu
