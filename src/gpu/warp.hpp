// Warp-level execution state and the op-stream abstraction.
//
// Instead of a full PTX/SASS pipeline, each warp executes a stream of
// warp-level operations produced by the workload model:
//   kCompute(c) — occupies the warp for c core cycles (arithmetic intensity);
//                 waits for all of the warp's outstanding loads first,
//   kLoad      — up to 32 lane addresses, coalesced into 128B transactions;
//                 issues without blocking (memory-level parallelism),
//   kStore     — like kLoad but write-through, fire-and-forget.
// This preserves exactly what the paper's mechanisms observe: interleaved,
// coalesced request streams whose latency tolerance grows with arithmetic
// intensity and warp count.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lazydram::gpu {

struct WarpOp {
  enum class Kind : std::uint8_t { kCompute, kLoad, kStore };

  Kind kind = Kind::kCompute;
  std::uint16_t cycles = 1;       ///< kCompute: core cycles of occupancy.
  std::uint8_t num_addrs = 0;     ///< kLoad/kStore: valid entries in addrs.
  bool approximable = false;      ///< kLoad: annotated-approximable region.
  std::array<Addr, 32> addrs{};   ///< Per-lane byte addresses.

  static WarpOp compute(std::uint16_t cycles) {
    WarpOp op;
    op.kind = Kind::kCompute;
    op.cycles = cycles;
    return op;
  }

  /// Fully-coalesced access: 32 lanes covering one 128B line at `line`.
  static WarpOp load_line(Addr line, bool approximable) {
    WarpOp op;
    op.kind = Kind::kLoad;
    op.approximable = approximable;
    op.num_addrs = 1;
    op.addrs[0] = line_base(line);
    return op;
  }

  static WarpOp store_line(Addr line) {
    WarpOp op;
    op.kind = Kind::kStore;
    op.num_addrs = 1;
    op.addrs[0] = line_base(line);
    return op;
  }
};

/// Execution state of one warp resident on an SM.
struct Warp {
  unsigned global_id = 0;      ///< Grid-wide warp index (workload coordinate).
  TenantId tenant = 0;         ///< Owning client (workload tenant_of_warp).
  unsigned step = 0;           ///< Next op index in the workload's stream.
  unsigned outstanding = 0;    ///< Loads in flight (scoreboard).
  Cycle busy_until = 0;        ///< kCompute occupancy.
  bool done = false;

  bool has_op = false;         ///< A decoded op is in progress.
  WarpOp op;
  std::vector<Addr> lines;     ///< Coalesced lines of the current memory op.
  unsigned lines_issued = 0;

  std::uint64_t instructions = 0;
};

}  // namespace lazydram::gpu
