#include "gpu/coalescer.hpp"

#include <algorithm>

namespace lazydram::gpu {

void coalesce(const WarpOp& op, std::vector<Addr>& out) {
  out.clear();
  for (unsigned i = 0; i < op.num_addrs; ++i) {
    const Addr line = line_base(op.addrs[i]);
    // Linear scan: warp ops carry at most 32 lanes, and typical ops coalesce
    // to a handful of lines, so this beats a hash set.
    if (std::find(out.begin(), out.end(), line) == out.end()) out.push_back(line);
  }
}

}  // namespace lazydram::gpu
