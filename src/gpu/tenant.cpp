#include "gpu/tenant.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"
#include "workloads/registry.hpp"

namespace lazydram::gpu {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("tenant spec: " + what);
}

std::uint64_t parse_u64(const std::string& key, const std::string& val) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(val, &used);
    if (used != val.size()) fail("trailing junk in " + key + "=" + val);
    return v;
  } catch (const std::invalid_argument&) {
    fail("expected a number in " + key + "=" + val);
  } catch (const std::out_of_range&) {
    fail("value out of range in " + key + "=" + val);
  }
}

double parse_f64(const std::string& key, const std::string& val) {
  try {
    std::size_t used = 0;
    const double v = std::stod(val, &used);
    if (used != val.size()) fail("trailing junk in " + key + "=" + val);
    return v;
  } catch (const std::invalid_argument&) {
    fail("expected a number in " + key + "=" + val);
  } catch (const std::out_of_range&) {
    fail("value out of range in " + key + "=" + val);
  }
}

bool is_known_kernel(const std::string& name) {
  const std::vector<std::string> names = workloads::all_workload_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

TenantSpec parse_tenant_spec(const std::string& text) {
  if (text.empty()) fail("empty tenant");
  const std::size_t colon = text.find(':');
  const std::string kernels_part = text.substr(0, colon);
  TenantSpec spec;
  for (const std::string& kernel : split(kernels_part, '+')) {
    if (kernel.empty()) fail("empty kernel name in \"" + text + "\"");
    if (!is_known_kernel(kernel)) fail("unknown kernel \"" + kernel + "\"");
    spec.kernels.push_back(kernel);
  }

  if (colon == std::string::npos) return spec;
  for (const std::string& opt : split(text.substr(colon + 1), ',')) {
    if (opt.empty()) fail("empty option in \"" + text + "\"");
    const std::size_t eq = opt.find('=');
    if (eq == std::string::npos) fail("option without '=': \"" + opt + "\"");
    const std::string key = opt.substr(0, eq);
    const std::string val = opt.substr(eq + 1);
    if (key == "warps") {
      spec.warps = static_cast<unsigned>(parse_u64(key, val));
    } else if (key == "repeat") {
      spec.repeat = static_cast<unsigned>(parse_u64(key, val));
      if (spec.repeat == 0) fail("repeat must be >= 1");
    } else if (key == "think") {
      spec.think = parse_u64(key, val);
    } else if (key == "approx") {
      const std::uint64_t v = parse_u64(key, val);
      if (v > 1) fail("approx must be 0 or 1");
      spec.approx = v == 1;
    } else if (key == "cap") {
      spec.coverage_cap = parse_f64(key, val);
      if (spec.coverage_cap < 0.0 || spec.coverage_cap > 1.0)
        fail("cap must be in [0, 1]");
    } else if (key == "delay_cap") {
      spec.dms_delay_cap = parse_u64(key, val);
    } else if (key == "name") {
      if (val.empty()) fail("empty name");
      spec.name = val;
    } else {
      fail("unknown option \"" + key + "\"");
    }
  }
  return spec;
}

std::vector<TenantSpec> parse_tenant_specs(const std::string& text) {
  std::vector<TenantSpec> specs;
  for (const std::string& one : split(text, ';')) specs.push_back(parse_tenant_spec(one));
  return specs;
}

TenantSet::TenantSet(std::vector<TenantSpec> specs, std::uint64_t seed)
    : specs_(std::move(specs)), seed_(seed) {
  LD_ASSERT_MSG(!specs_.empty(), "a tenant set needs at least one tenant");
  mix_ = std::make_unique<workloads::MixWorkload>(specs_, seed_);
  // Fill in the names the mix resolved (defaulted from the kernel list) so
  // spec(t).name is always displayable.
  for (TenantId t = 0; t < size(); ++t) specs_[t].name = mix_->tenant(t).name;
}

bool TenantSet::has_explicit_qos() const {
  for (const TenantSpec& s : specs_)
    if (s.coverage_cap >= 0.0 || s.dms_delay_cap != kNeverCycle) return true;
  return false;
}

void TenantSet::apply_qos(GpuConfig& cfg) const {
  if (size() == 1 && !has_explicit_qos()) return;  // Legacy single-tenant path.
  cfg.scheme.tenant_qos.clear();
  for (const TenantSpec& s : specs_) {
    TenantQos q;
    q.coverage_cap = s.coverage_cap;
    q.dms_delay_cap = s.dms_delay_cap;
    cfg.scheme.tenant_qos.push_back(q);
  }
}

std::unique_ptr<workloads::MixWorkload> TenantSet::alone_workload(TenantId t) const {
  LD_ASSERT(t < size());
  return std::make_unique<workloads::MixWorkload>(
      std::vector<TenantSpec>{specs_[t]}, seed_);
}

}  // namespace lazydram::gpu
