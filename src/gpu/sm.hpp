// One Streaming Multiprocessor: warp contexts, loose round-robin warp
// scheduling, a private L1 data cache with MSHRs, and the request/reply
// interface to the interconnect.
//
// Issue model: one warp operation (or one line of a multi-line memory op)
// per core cycle. Loads are non-blocking; a warp blocks at its next
// kCompute/kStore op until all its outstanding loads have returned — the
// same in-order-core-with-MLP model GPGPU-Sim's scoreboard enforces.
//
// Scheduling is event-driven for speed: only *active* warps are scanned each
// cycle. A warp leaves the active list when it blocks for a reason with a
// known wake event (compute occupancy -> timer; outstanding loads -> reply/
// completion) and re-enters on that event. Warps blocked on SM-global
// resources (crossbar slot, MSHR table) stay active and poll.
#pragma once

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "dram/address.hpp"
#include "gpu/coalescer.hpp"
#include "gpu/warp.hpp"
#include "icnt/crossbar.hpp"
#include "workloads/workload.hpp"

namespace lazydram::gpu {

class Sm {
 public:
  Sm(const GpuConfig& cfg, SmId id, const workloads::Workload& workload,
     const AddressMapper& mapper);

  /// Adds a resident warp executing the workload's stream `global_warp_id`.
  /// Precondition: resident_warps() < max_warps_per_sm.
  void assign_warp(unsigned global_warp_id);
  unsigned resident_warps() const { return static_cast<unsigned>(warps_.size()); }

  /// One core cycle: retire L1-hit completions, wake timed-out warps, then
  /// issue at most one warp op / memory line. L1 misses are pushed into
  /// `req_xbar` (port `id()`).
  void tick(Cycle now, icnt::Crossbar& req_xbar);

  /// Delivers a reply packet from the memory side.
  void on_reply(const icnt::Packet& packet);

  bool all_done() const { return done_warps_ == warps_.size(); }
  /// Resident warps that have retired, for run-progress reporting (the
  /// heartbeat's warps-done / ETA line).
  unsigned done_warps() const { return static_cast<unsigned>(done_warps_); }

  /// First future cycle at which tick() could change any state, assuming no
  /// reply arrives in between (replies are external events the caller
  /// accounts for separately). While any warp is active — or a multi-line
  /// memory op owns the LSU — the SM polls every cycle. Otherwise the only
  /// self-wakes are the head L1-hit completion (FIFO: constant latency keeps
  /// it sorted) and the earliest compute timer. Skipping the gap is bit-exact
  /// because an idle tick() touches nothing: stall_cycles_ only advances
  /// inside try_issue, which an empty active list never reaches.
  Cycle next_event(Cycle now) const {
    if (lsu_owner_ >= 0 || !active_.empty()) return now + 1;
    Cycle ev = kNeverCycle;
    if (!completions_.empty()) ev = std::min(ev, completions_.front().first);
    if (!timers_.empty()) ev = std::min(ev, timers_.top().first);
    return ev > now ? ev : now + 1;
  }

  SmId id() const { return id_; }
  std::uint64_t instructions() const { return instructions_; }
  std::uint64_t l1_miss_stalls() const { return stall_cycles_; }
  const cache::Cache& l1() const { return l1_; }

  // --- Per-tenant accounting (sized from workload.num_tenants()) ---
  std::uint64_t tenant_instructions(TenantId t) const { return tenant_instructions_[t]; }
  /// Core cycle the tenant's last resident warp on this SM retired (0 if the
  /// tenant has no warps here or none have finished yet).
  Cycle tenant_finish_cycle(TenantId t) const { return tenant_finish_cycle_[t]; }

 private:
  enum class IssueResult {
    kIssued,       ///< Used the issue slot.
    kPollBlocked,  ///< Blocked on a pollable resource; stay active.
    kSleep,        ///< Blocked with a known wake event; deactivate.
  };

  IssueResult try_issue(unsigned warp_idx, Cycle now, icnt::Crossbar& req_xbar,
                        bool& mem_blocked);
  IssueResult issue_memory_line(unsigned warp_idx, Cycle now, icnt::Crossbar& req_xbar,
                                bool& mem_blocked);

  void activate(unsigned warp_idx);

  const GpuConfig& cfg_;
  SmId id_;
  const workloads::Workload& workload_;
  const AddressMapper& mapper_;

  cache::Cache l1_;
  cache::MshrTable mshr_;  ///< Token = warp index within warps_.
  std::vector<Warp> warps_;
  std::size_t done_warps_ = 0;

  std::vector<unsigned> active_;    ///< Warp indices eligible for issue scan.
  std::vector<std::uint8_t> in_active_;
  /// (wake cycle, warp): compute-occupancy expirations.
  std::priority_queue<std::pair<Cycle, unsigned>, std::vector<std::pair<Cycle, unsigned>>,
                      std::greater<>>
      timers_;

  /// L1 hits complete after l1_hit_latency: (ready cycle, warp index).
  std::deque<std::pair<Cycle, unsigned>> completions_;

  /// Warp index currently owning the load/store unit mid-instruction
  /// (issues its remaining transactions with strict priority); -1 if none.
  int lsu_owner_ = -1;

  std::uint64_t instructions_ = 0;
  std::uint64_t stall_cycles_ = 0;
  std::vector<std::uint64_t> tenant_instructions_;
  std::vector<Cycle> tenant_finish_cycle_;
  RequestId next_packet_id_;
};

}  // namespace lazydram::gpu
