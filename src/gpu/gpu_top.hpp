// Top-level simulated GPU: SMs + request/reply crossbars + memory partitions
// (L2 slice, VP unit, memory controller) + clock domains + functional memory.
//
// This is the substrate equivalent of GPGPU-Sim's top level for the paper's
// purposes: it turns a workload model into the interleaved, coalesced DRAM
// request streams the lazy memory scheduler operates on, and runs the whole
// machine cycle by cycle until the kernel (all warps) completes and the
// memory system drains.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "core/lazy_scheduler.hpp"
#include "core/value_predictor.hpp"
#include "dram/address.hpp"
#include "gpu/functional_memory.hpp"
#include "gpu/shard.hpp"
#include "gpu/sm.hpp"
#include "icnt/crossbar.hpp"
#include "mem/controller.hpp"
#include "telemetry/telemetry.hpp"

namespace lazydram {
namespace check {
class CheckContext;
class ProtocolChecker;
}  // namespace check
}  // namespace lazydram

namespace lazydram::gpu {

class GpuTop {
 public:
  /// Creates the per-channel scheduler. Returning a core::LazyScheduler
  /// enables the DMS/AMS/VP integration; other Scheduler implementations
  /// (plain FR-FCFS, FCFS) run without it.
  using SchedulerFactory = std::function<std::unique_ptr<Scheduler>(ChannelId)>;

  /// `telemetry` (nullable) attaches the observability layer: its tracer is
  /// wired into every controller/scheduler, and window sampling is enabled
  /// on each channel when requested. Purely observational — a run's
  /// RunMetrics are bit-identical with or without it.
  /// `check` (nullable) attaches the verification layer: a protocol checker
  /// and/or request-stream recorder per channel, per its CheckConfig. The
  /// checker observes but never schedules, so (outside of a strict-mode
  /// throw) a run's results are bit-identical with or without it.
  GpuTop(const GpuConfig& cfg, const workloads::Workload& workload,
         const SchedulerFactory& factory, RowPolicy row_policy = RowPolicy::kOpenRow,
         telemetry::Telemetry* telemetry = nullptr,
         check::CheckContext* check = nullptr);

  /// Runs until the workload finishes and the memory system drains, or
  /// `max_core_cycles` elapse. Returns true iff it finished.
  ///
  /// With GpuConfig::shard_threads == 0 this is the legacy cycle-by-cycle
  /// loop. Otherwise the event-wheel driver runs: whenever the serial side
  /// (SMs, crossbars, partition front-ends) has no work before the earliest
  /// cross-domain event (a reply becoming poppable, the soonest possible
  /// CAS data return), the core clock fast-forwards and only the memory
  /// controllers advance over the gap — each skipping its own quiet spans
  /// via next_event()/advance_idle(). shard_threads > 1 additionally runs
  /// those controller-only epochs on a worker-lane pool with per-lane
  /// telemetry capture, merged in (cycle, channel) order at each barrier.
  /// Every mode is bit-identical in results and byte-identical in trace
  /// output (Sharding.* tests, tools/diffcheck).
  bool run(Cycle max_core_cycles = 200'000'000);

  /// Advances one core cycle.
  void step();

  bool finished() const;

  // --- Results ---
  Cycle core_cycles() const { return core_cycle_; }
  Cycle mem_cycles() const { return divider_.slow_cycles(); }
  std::uint64_t instructions() const;
  double ipc() const {
    return core_cycle_ == 0
               ? 0.0
               : static_cast<double>(instructions()) / static_cast<double>(core_cycle_);
  }

  // --- Per-tenant results (single-workload runs have one tenant, id 0) ---
  unsigned num_tenants() const { return workload_.num_tenants(); }
  std::uint64_t tenant_instructions(TenantId t) const;
  /// Core cycle the tenant's last warp retired, max over SMs (0 if none
  /// finished yet).
  Cycle tenant_finish_cycle(TenantId t) const;

  unsigned num_channels() const { return static_cast<unsigned>(partitions_.size()); }
  const MemoryController& controller(ChannelId ch) const { return *partitions_[ch].mc; }
  const cache::Cache& l2(ChannelId ch) const { return partitions_[ch].l2; }
  /// The channel's lazy scheduler, or nullptr if another policy runs there.
  const core::LazyScheduler* lazy(ChannelId ch) const { return partitions_[ch].lazy; }
  const core::ValuePredictor& vp(ChannelId ch) const { return *partitions_[ch].vp; }
  const FunctionalMemory& fmem() const { return fmem_; }
  const AddressMapper& mapper() const { return mapper_; }
  const Sm& sm(SmId id) const { return *sms_[id]; }
  unsigned num_sms() const { return static_cast<unsigned>(sms_.size()); }
  const GpuConfig& config() const { return cfg_; }

  /// Registers every component's counters/gauges/histograms into `hub`
  /// under hierarchical names ("dram.ch0.activations", "core.ch1.dms.delay",
  /// ...). The hub must not outlive this GpuTop.
  void register_stats(telemetry::TelemetryHub& hub) const;

  /// Wall-clock attribution of one run(), collected only while the
  /// SelfProfiler is armed (all zero otherwise). The hot loops carry no RAII
  /// zones; instead the wheel reads the clock at span boundaries and samples
  /// one core step in 64, so arming stays within the <=5% overhead budget:
  ///   serial_seconds            = run wall not spent in memory-only spans
  ///                               (SMs + crossbars + partition front-ends,
  ///                               i.e. the side ROADMAP item 2 wants to
  ///                               shard next);
  ///   mem_serial_seconds        = memory-only spans run on the caller;
  ///   mem_parallel_wall_seconds = memory-only epochs run on the lane pool;
  ///   barrier_stall_seconds     = lane-pool capacity not spent advancing
  ///                               channels (lanes * pool wall - busy sum).
  /// The sm/icnt/partition sample sums decompose the sampled steps' wall
  /// time; scale by 64 (or normalize by step_samples) for shares.
  struct WheelSelfStats {
    double run_wall_seconds = 0.0;
    double serial_seconds = 0.0;
    double mem_serial_seconds = 0.0;
    double mem_parallel_wall_seconds = 0.0;
    double pool_wall_seconds = 0.0;
    std::uint64_t serial_spans = 0;
    std::uint64_t parallel_epochs = 0;
    std::uint64_t step_samples = 0;
    double sm_sample_seconds = 0.0;
    double icnt_sample_seconds = 0.0;
    double partition_sample_seconds = 0.0;
    std::vector<double> lane_busy_seconds;  ///< One slot per worker lane.
    double barrier_stall_seconds = 0.0;
    unsigned lanes = 1;
  };
  WheelSelfStats self_stats() const;

 private:
  struct PendingReply {
    Cycle ready = 0;
    icnt::Packet packet;
  };

  struct Partition {
    cache::Cache l2;
    std::unique_ptr<MemoryController> mc;
    core::LazyScheduler* lazy = nullptr;  ///< Borrowed from mc's scheduler.
    std::unique_ptr<core::ValuePredictor> vp;

    /// L2 miss table: line -> packets waiting for the refill.
    std::unordered_map<Addr, std::vector<icnt::Packet>> waiting;
    std::deque<icnt::Packet> input_backlog;   ///< Stalled request packets.
    std::deque<MemRequest> pending_mc;        ///< Waiting for MC queue space.
    std::deque<PendingReply> pending_replies; ///< Waiting for reply crossbar.
    bool ams_ready = false;

    explicit Partition(const CacheGeometry& geo) : l2(geo) {}
  };

  void partition_tick(Partition& p, unsigned idx, bool mem_ticked);
  void handle_request_packet(Partition& p, unsigned idx, const icnt::Packet& pkt,
                             bool& stalled);

  // --- Event-wheel / sharded driver (see run()) ---

  /// First future core cycle at which step() could do serial-side work,
  /// assuming the memory side stays quiet (cross-domain events are bounded
  /// separately by MemoryController::next_cross_event). Conservative: any
  /// in-flight crossbar packet, backlog, or due reply degrades to now + 1.
  Cycle serial_next_event() const;

  /// Event-wheel main loop (shard_threads >= 1).
  void run_wheel(Cycle max_core_cycles);

  /// Sizes the lane pool and capture buffers on first wheel entry.
  void init_sharding();

  /// Advances every controller over memory cycles (m0, m1] in lockstep
  /// (cycle-major, channel order) with direct telemetry emission — the
  /// serial epoch body. Controllers skip shared quiet spans via the global
  /// minimum of their next_event horizons.
  void run_mem_span(Cycle m0, Cycle m1);

  /// Same span, but each lane advances its own channels independently with
  /// telemetry captured per channel and replayed in (cycle, channel) order
  /// at the barrier; a strict-checker throw is rethrown after replaying the
  /// serial prefix of the trace.
  void run_mem_span_parallel(Cycle m0, Cycle m1);

  /// Advances one channel over (m0, m1], skipping its private quiet spans.
  /// With `cap` non-null, an exception from tick() is parked in the capture
  /// slot (stamped with the throwing cycle) instead of propagating.
  void advance_channel(ChannelId ch, Cycle m0, Cycle m1, ChannelCapture* cap);

  void install_captures();
  void restore_captures();

  /// Emits one LAZYDRAM_HEARTBEAT status line when the period elapsed.
  /// Called from coarse loop boundaries only (every 1024th step / each
  /// fast-forward), never when cfg_.heartbeat_seconds == 0.
  void maybe_heartbeat();

  GpuConfig cfg_;
  const workloads::Workload& workload_;
  AddressMapper mapper_;
  FunctionalMemory fmem_;

  std::vector<std::unique_ptr<Sm>> sms_;
  icnt::Crossbar req_xbar_;
  icnt::Crossbar reply_xbar_;
  std::vector<Partition> partitions_;

  ClockDivider divider_;
  Cycle core_cycle_ = 0;
  Cycle mem_now_ = 0;
  RequestId next_request_id_ = 1;
  telemetry::Tracer* tracer_ = nullptr;  ///< Borrowed; null when detached.
  /// Borrowed lifecycle collector; null when detached. Observational only.
  telemetry::LifecycleCollector* lifecycle_ = nullptr;
  /// Per-channel checkers, borrowed from the CheckContext (empty when
  /// checking is off; used only for stats registration).
  std::vector<check::ProtocolChecker*> checkers_;

  // Sharded-driver state (inert unless cfg_.shard_threads > 1).
  unsigned lanes_ = 1;                  ///< Worker lanes (capped at channels).
  std::unique_ptr<ShardPool> pool_;
  std::vector<ChannelCapture> captures_;  ///< One per channel.

  // Self-observability state (inert unless the SelfProfiler is armed /
  // cfg_.heartbeat_seconds > 0). Strictly passive: never read by simulation.
  bool self_enabled_ = false;  ///< SelfProfiler::enabled(), cached at run().
  WheelSelfStats self_stats_;
  std::chrono::steady_clock::time_point run_start_wall_;
  std::chrono::steady_clock::time_point next_heartbeat_;
  std::chrono::steady_clock::time_point last_heartbeat_;
  Cycle last_heartbeat_core_ = 0;

  /// Caps on per-core-cycle partition work (ports).
  static constexpr unsigned kInputsPerCycle = 2;
  static constexpr unsigned kRepliesPerCycle = 4;
  static constexpr std::size_t kPendingMcCap = 64;
  /// Minimum parallel-epoch length in memory cycles; shorter spans run on
  /// the calling thread (barrier latency would dominate). Execution-strategy
  /// only — results are bit-identical either way.
  static constexpr Cycle kParallelSpanMin = 8;
};

}  // namespace lazydram::gpu
