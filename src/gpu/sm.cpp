#include "gpu/sm.hpp"

#include "common/assert.hpp"

namespace lazydram::gpu {

Sm::Sm(const GpuConfig& cfg, SmId id, const workloads::Workload& workload,
       const AddressMapper& mapper)
    : cfg_(cfg),
      id_(id),
      workload_(workload),
      mapper_(mapper),
      l1_(cfg.l1),
      mshr_(cfg.l1.mshr_entries),
      tenant_instructions_(workload.num_tenants(), 0),
      tenant_finish_cycle_(workload.num_tenants(), 0),
      next_packet_id_(static_cast<RequestId>(id) << 40) {}

void Sm::assign_warp(unsigned global_warp_id) {
  LD_ASSERT_MSG(warps_.size() < cfg_.max_warps_per_sm, "SM warp slots exhausted");
  Warp w;
  w.global_id = global_warp_id;
  w.tenant = workload_.tenant_of_warp(global_warp_id);
  LD_ASSERT_MSG(w.tenant < tenant_instructions_.size(), "warp tenant out of range");
  warps_.push_back(std::move(w));
  in_active_.push_back(1);
  active_.push_back(static_cast<unsigned>(warps_.size() - 1));
}

void Sm::activate(unsigned warp_idx) {
  if (in_active_[warp_idx]) return;
  in_active_[warp_idx] = 1;
  active_.push_back(warp_idx);
}

void Sm::on_reply(const icnt::Packet& packet) {
  // Fill the L1 (never dirty: L1 is write-through) and wake every warp that
  // merged into this line's MSHR entry.
  l1_.fill(packet.line_addr, /*dirty=*/false, packet.approximate);
  for (const cache::MshrToken token : mshr_.release(packet.line_addr)) {
    const unsigned warp_idx = static_cast<unsigned>(token);
    Warp& w = warps_[warp_idx];
    LD_ASSERT(w.outstanding > 0);
    --w.outstanding;
    activate(warp_idx);
  }
}

Sm::IssueResult Sm::issue_memory_line(unsigned warp_idx, Cycle now,
                                      icnt::Crossbar& req_xbar, bool& mem_blocked) {
  Warp& w = warps_[warp_idx];
  const Addr line = w.lines[w.lines_issued];

  if (w.op.kind == WarpOp::Kind::kStore) {
    // Write-through, no-allocate: update the L1 copy if present, then send
    // the write toward the L2 slice. Fire-and-forget (no scoreboard entry).
    if (!req_xbar.can_push(id_)) {
      mem_blocked = true;
      return IssueResult::kPollBlocked;
    }
    l1_.access(line, /*is_write=*/true);
    icnt::Packet pkt;
    pkt.id = ++next_packet_id_;
    pkt.line_addr = line;
    pkt.kind = AccessKind::kWrite;
    pkt.src_sm = id_;
    pkt.tenant = w.tenant;
    req_xbar.push(id_, mapper_.channel_of(line), pkt);
    return IssueResult::kIssued;
  }

  // Load path.
  if (l1_.access(line, /*is_write=*/false).hit) {
    ++w.outstanding;
    completions_.emplace_back(now + cfg_.l1_hit_latency, warp_idx);
    return IssueResult::kIssued;
  }

  // Miss: merge into an existing MSHR entry, or allocate a new one and send
  // the request to the home partition.
  const bool is_merge = mshr_.has(line);
  if (!mshr_.can_allocate(line)) {
    if (!is_merge) mem_blocked = true;  // Table full: SM-global condition.
    return IssueResult::kPollBlocked;
  }
  if (!is_merge && !req_xbar.can_push(id_)) {
    mem_blocked = true;
    return IssueResult::kPollBlocked;
  }

  const bool primary = mshr_.allocate(line, warp_idx);
  LD_ASSERT(primary == !is_merge);
  ++w.outstanding;

  if (primary) {
    icnt::Packet pkt;
    pkt.id = ++next_packet_id_;
    pkt.line_addr = line;
    pkt.kind = AccessKind::kRead;
    pkt.approximable = w.op.approximable;
    pkt.src_sm = id_;
    pkt.tenant = w.tenant;
    pkt.inject_cycle = now;  // Lifecycle stamp: crossbar entry.
    req_xbar.push(id_, mapper_.channel_of(line), pkt);
  }
  return IssueResult::kIssued;
}

Sm::IssueResult Sm::try_issue(unsigned warp_idx, Cycle now, icnt::Crossbar& req_xbar,
                              bool& mem_blocked) {
  Warp& w = warps_[warp_idx];
  if (w.done) return IssueResult::kSleep;
  if (w.busy_until > now) {
    timers_.emplace(w.busy_until, warp_idx);
    return IssueResult::kSleep;
  }

  // Decode the next op if none is in progress.
  if (!w.has_op) {
    WarpOp op;
    if (!workload_.op_at(w.global_id, w.step, op)) {
      // Program ended; the warp retires once its loads have drained.
      if (w.outstanding == 0) {
        w.done = true;
        ++done_warps_;
        if (now > tenant_finish_cycle_[w.tenant]) tenant_finish_cycle_[w.tenant] = now;
      }
      return IssueResult::kSleep;  // Wakes via reply if loads outstanding.
    }
    w.op = op;
    w.has_op = true;
    w.lines_issued = 0;
    if (op.kind != WarpOp::Kind::kCompute) {
      coalesce(op, w.lines);
      LD_ASSERT_MSG(!w.lines.empty(), "memory op with no addresses");
    }
  }

  if (w.op.kind == WarpOp::Kind::kCompute) {
    // In-order dependence: computation consumes prior loads. Wake: reply.
    if (w.outstanding > 0) return IssueResult::kSleep;
    w.busy_until = now + w.op.cycles;
    ++w.instructions;
    ++instructions_;
    ++tenant_instructions_[w.tenant];
    ++w.step;
    w.has_op = false;
    return IssueResult::kIssued;  // Stays active; timer fires when scanned busy.
  }

  // Memory op: one line per cycle.
  if (mem_blocked) return IssueResult::kPollBlocked;
  const IssueResult result = issue_memory_line(warp_idx, now, req_xbar, mem_blocked);
  if (result != IssueResult::kIssued) {
    ++stall_cycles_;
    return result;
  }
  ++w.lines_issued;
  if (w.lines_issued == w.lines.size()) {
    ++w.instructions;
    ++instructions_;
    ++tenant_instructions_[w.tenant];
    ++w.step;
    w.has_op = false;
  }
  return IssueResult::kIssued;
}

void Sm::tick(Cycle now, icnt::Crossbar& req_xbar) {
  // Retire L1 hits whose latency has elapsed.
  while (!completions_.empty() && completions_.front().first <= now) {
    const unsigned warp_idx = completions_.front().second;
    Warp& w = warps_[warp_idx];
    LD_ASSERT(w.outstanding > 0);
    --w.outstanding;
    activate(warp_idx);
    completions_.pop_front();
  }

  // Wake compute-occupancy expirations.
  while (!timers_.empty() && timers_.top().first <= now) {
    activate(timers_.top().second);
    timers_.pop();
  }

  bool mem_blocked = false;

  // A multi-line memory instruction owns the load/store unit until all its
  // transactions have issued (as in real hardware): if a warp is mid-op, it
  // has strict priority. Keeping one instruction's lines consecutive is what
  // lets same-row transactions reach the memory controller together.
  if (lsu_owner_ >= 0) {
    const unsigned owner = static_cast<unsigned>(lsu_owner_);
    const IssueResult result = try_issue(owner, now, req_xbar, mem_blocked);
    if (result == IssueResult::kIssued && !warps_[owner].has_op) lsu_owner_ = -1;
    return;  // The LSU owner consumes the issue slot until its op completes.
  }

  // Scan active warps; issue for the first that can. Warps that block with a
  // known wake event are removed (swap-remove keeps the scan O(active)).
  for (std::size_t j = 0; j < active_.size();) {
    const unsigned warp_idx = active_[j];
    const IssueResult result = try_issue(warp_idx, now, req_xbar, mem_blocked);
    if (result == IssueResult::kIssued) {
      const Warp& w = warps_[warp_idx];
      if (w.has_op && w.op.kind != WarpOp::Kind::kCompute) {
        lsu_owner_ = static_cast<int>(warp_idx);  // Mid-op: hold the LSU.
      } else {
        // Completed op: loose round-robin sends the warp to the back.
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(j));
        active_.push_back(warp_idx);
      }
      return;
    }
    if (result == IssueResult::kSleep) {
      in_active_[warp_idx] = 0;
      active_[j] = active_.back();
      active_.pop_back();
      continue;  // Re-examine the swapped-in entry at j.
    }
    ++j;  // kPollBlocked: stays active.
  }
}

}  // namespace lazydram::gpu
