#include "workloads/registry.hpp"

#include <functional>
#include <utility>

#include "common/assert.hpp"
#include "workloads/apps.hpp"

namespace lazydram::workloads {

namespace {

using Factory = std::unique_ptr<Workload> (*)();

/// Table II presentation order.
constexpr std::pair<const char*, Factory> kRegistry[] = {
    {"RAY", &make_ray},
    {"inversek2j", &make_inversek2j},
    {"newtonraph", &make_newtonraph},
    {"FWT", &make_fwt},
    {"MVT", &make_mvt},
    {"jmein", &make_jmein},
    {"ATAX", &make_atax},
    {"3DCONV", &make_3dconv},
    {"CONS", &make_cons},
    {"srad", &make_srad},
    {"LPS", &make_lps},
    {"BICG", &make_bicg},
    {"SCP", &make_scp},
    {"GEMM", &make_gemm},
    {"blackscholes", &make_blackscholes},
    {"2MM", &make_2mm},
    {"3MM", &make_3mm},
    {"SLA", &make_sla},
    {"meanfilter", &make_meanfilter},
    {"laplacian", &make_laplacian},
};

}  // namespace

std::vector<std::string> all_workload_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : kRegistry) names.emplace_back(name);
  return names;
}

std::unique_ptr<Workload> make_workload(const std::string& name) {
  for (const auto& [n, factory] : kRegistry)
    if (name == n) return factory();
  LD_ASSERT_MSG(false, ("unknown workload: " + name).c_str());
  return nullptr;
}

std::vector<std::unique_ptr<Workload>> make_all_workloads() {
  std::vector<std::unique_ptr<Workload>> out;
  for (const auto& [name, factory] : kRegistry) out.push_back(factory());
  return out;
}

std::vector<std::string> fig12_workload_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : kRegistry) {
    const auto wl = factory();
    if (wl->group() != 4) names.emplace_back(name);
  }
  return names;
}

std::vector<std::string> group4_workload_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : kRegistry) {
    const auto wl = factory();
    if (wl->group() == 4) names.emplace_back(name);
  }
  return names;
}

}  // namespace lazydram::workloads
