// RAY — ray tracing (GPGPU-Sim benchmark suite).
//
// Table II classification: Group 3; High thrashing, High delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, High error tolerance.
//
// Model: each warp traces a tile of rays. Per bounce it loads the ray
// record, three scattered BVH/scene-node reads (pointer-bearing:
// NOT annotated approximable — this is what keeps RAY's prediction coverage
// below the 10% target, placing it in Group 3), occasionally one scattered
// texture read (annotated), and a heavy shading/intersection compute burst
// (High delay tolerance). The scattered scene walk is the delayed-locality
// traffic: other warps' rays traverse the same nodes skewed in time (High
// activation sensitivity). Texture values feed an averaging framebuffer
// accumulation over smooth textures (High error tolerance).
#include "workloads/apps.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kWarps = 1350;
constexpr unsigned kBounces = 20;

constexpr Addr kRays = MiB(16);     // Ray records, 1 line per warp-bounce.
constexpr Addr kScene = MiB(64);    // BVH nodes + triangles (6MB, pointers).
constexpr std::uint64_t kSceneLines = MiB(6) / kLineBytes;
constexpr Addr kTex = MiB(128);     // Texture atlas (2MB, annotated).
constexpr std::uint64_t kTexElems = 1u << 19;
constexpr Addr kFrame = MiB(160);   // Framebuffer, 1 line per warp.

std::uint64_t scene_line(unsigned warp, unsigned bounce, unsigned probe) {
  return mix64((static_cast<std::uint64_t>(warp) << 16) | (bounce << 4) | probe) %
         kSceneLines;
}

std::uint64_t tex_index(unsigned warp, unsigned bounce) {
  return mix64(0x7e0 + ((static_cast<std::uint64_t>(warp) << 12) | bounce)) % kTexElems;
}

class RayWorkload final : public Workload {
 public:
  std::string name() const override { return "RAY"; }
  std::string description() const override { return "Ray tracing (GPGPU-Sim suite)"; }
  unsigned group() const override { return 3; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kHigh,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kHigh};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per bounce: ray record, 3 scene probes, texture read on every other
    // bounce, shading compute; one framebuffer store at the end.
    constexpr unsigned kStepsPerBounce = 6;
    constexpr unsigned kTotal = kBounces * kStepsPerBounce + 1;
    if (step >= kTotal) return false;

    if (step == kTotal - 1) {
      op = gpu::WarpOp::store_line(kFrame + static_cast<Addr>(warp) * kLineBytes);
      return true;
    }

    const unsigned bounce = step / kStepsPerBounce;
    const unsigned phase = step % kStepsPerBounce;

    switch (phase) {
      case 0:  // Ray record (private, L1-friendly).
        op = gpu::WarpOp::load_line(kRays + static_cast<Addr>(warp) * kLineBytes, false);
        return true;
      case 1:
      case 2:
      case 3:  // Scattered BVH/scene probes — pointers, never approximated.
        op = gpu::WarpOp::load_line(
            kScene + scene_line(warp, bounce, phase) * kLineBytes, /*approximable=*/false);
        return true;
      case 4:
        if (bounce % 3 == 0) {  // Scattered texture fetch (annotated).
          op = gpu::WarpOp::load_line(f32_line(kTex, tex_index(warp, bounce)),
                                      /*approximable=*/true);
        } else {
          op = gpu::WarpOp::compute(8);
        }
        return true;
      default:  // Intersection + shading.
        op = gpu::WarpOp::compute(40);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_smooth(image, kTex, kTexElems, 25.0, 2.0, 128.0);
    // Scene nodes hold bounding-box floats in a similar numeric range, so a
    // donor mistakenly drawn from the scene region perturbs rather than
    // zeroes the predicted texel.
    fill_smooth(image, kScene, kSceneLines * kF32PerLine, 25.0, 2.2, 128.0);
  }

  void compute_output(gpu::MemView& view) const override {
    // Framebuffer pixel = average of the textures sampled along the path.
    for (unsigned w = 0; w < kWarps; ++w) {
      double acc = 0.0;
      unsigned n = 0;
      for (unsigned bounce = 0; bounce < kBounces; bounce += 3) {
        acc += view.read_f32(f32_addr(kTex, tex_index(w, bounce)));
        ++n;
      }
      view.write_f32(kFrame + static_cast<Addr>(w) * kLineBytes,
                     static_cast<float>(acc / n));
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    // One accumulated sample per warp (stored at its frame line's base).
    return {{kFrame, static_cast<std::uint64_t>(kWarps) * kLineBytes}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kTex, kTexElems * 4}};
  }

  /// Only the first float of each frame line is an output; override the
  /// default elementwise comparison accordingly.
  double application_error(const gpu::FunctionalMemory& fmem) const override {
    gpu::MemoryImage exact_img(fmem.image());
    gpu::MemView exact(exact_img, nullptr);
    compute_output(exact);
    gpu::MemoryImage approx_img(fmem.image());
    gpu::MemView approx(approx_img, &fmem.overlay());
    compute_output(approx);
    double sum = 0.0;
    for (unsigned w = 0; w < kWarps; ++w) {
      const Addr a = kFrame + static_cast<Addr>(w) * kLineBytes;
      const double e = exact.read_f32(a), p = approx.read_f32(a);
      sum += std::min(1.0, std::abs(p - e) / std::max(std::abs(e), 1e-6));
    }
    return sum / kWarps;
  }
};

}  // namespace

std::unique_ptr<Workload> make_ray() { return std::make_unique<RayWorkload>(); }

}  // namespace lazydram::workloads
