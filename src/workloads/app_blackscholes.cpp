// blackscholes — Black-Scholes option pricing (AxBench/CUDA SDK).
//
// Table II classification: Group 4; MEDIUM thrashing, Medium delay
// tolerance, High activation sensitivity, High Th_RBL sensitivity, Low
// error tolerance.
//
// Model: pure elementwise pricing over five input arrays (spot, strike,
// expiry, rate, volatility). Warps stream 8-line tiles of each array in a
// grid-strided order: the five concurrent streams plus stride skew leave a
// minority of requests in low-RBL rows (Medium thrashing) that delay can
// consolidate (High activation sensitivity) and that a lowered Th_RBL can
// target precisely (High Th_RBL sensitivity). The CDF evaluation is steep
// around the money, so hash-random inputs amplify approximation error (Low
// error tolerance).
#include "workloads/apps.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kWarps = 720;
constexpr unsigned kTilesPerWarp = 4;
constexpr unsigned kTileLines = 8;

constexpr std::uint64_t kOptions = 1u << 19;  // 512K options (2MB per array).
constexpr std::uint64_t kTiles = kOptions / (kTileLines * kF32PerLine);

constexpr Addr kSpot = MiB(16);
constexpr Addr kStrike = MiB(48);
constexpr Addr kExpiry = MiB(80);
constexpr Addr kRate = MiB(112);
constexpr Addr kVol = MiB(144);
constexpr Addr kPrice = MiB(176);

constexpr Addr kArrays[5] = {kSpot, kStrike, kExpiry, kRate, kVol};

class BlackScholesWorkload final : public Workload {
 public:
  std::string name() const override { return "blackscholes"; }
  std::string description() const override {
    return "Black-Scholes option pricing (AxBench)";
  }
  unsigned group() const override { return 4; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kMedium,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = true,
            .error_tolerance = Level::kLow};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per tile: five 8-line input tiles, compute, output store.
    constexpr unsigned kStepsPerTile = 7;
    constexpr unsigned kTotal = kTilesPerWarp * kStepsPerTile;
    if (step >= kTotal) return false;

    const unsigned t = step / kStepsPerTile;
    const unsigned phase = step % kStepsPerTile;
    // Grid-strided tile order: warp w prices tiles w, w+kWarps, ...
    const std::uint64_t tile =
        (static_cast<std::uint64_t>(t) * kWarps + warp) % kTiles;
    const Addr tile_off = tile * kTileLines * kLineBytes;

    if (phase < 5) {
      op = wide_load(kArrays[phase] + tile_off, kTileLines, /*approximable=*/true);
      return true;
    }
    if (phase == 5) {
      op = gpu::WarpOp::compute(22);  // exp/log/CDF chain.
      return true;
    }
    op = wide_store(kPrice + tile_off, kTileLines);
    return true;
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_hash_random(image, kSpot, kOptions, 0xB5, 20.0, 120.0);
    fill_hash_random(image, kStrike, kOptions, 0xB6, 30.0, 110.0);
    fill_hash_random(image, kExpiry, kOptions, 0xB7, 0.1, 2.0);
    fill_hash_random(image, kRate, kOptions, 0xB8, 0.01, 0.06);
    fill_hash_random(image, kVol, kOptions, 0xB9, 0.1, 0.6);
  }

  void compute_output(gpu::MemView& view) const override {
    const auto cdf = [](double x) {
      return 0.5 * std::erfc(-x / std::sqrt(2.0));
    };
    for (std::uint64_t i = 0; i < kOptions; ++i) {
      const double s = view.read_f32(f32_addr(kSpot, i));
      const double k = view.read_f32(f32_addr(kStrike, i));
      const double t = view.read_f32(f32_addr(kExpiry, i));
      const double r = view.read_f32(f32_addr(kRate, i));
      const double v = view.read_f32(f32_addr(kVol, i));
      const double sig = std::max(1e-3, v) * std::sqrt(std::max(1e-3, t));
      const double d1 =
          (std::log(std::max(1e-3, s / std::max(1e-3, k))) + (r + 0.5 * v * v) * t) / sig;
      const double d2 = d1 - sig;
      const double call = s * cdf(d1) - k * std::exp(-r * t) * cdf(d2);
      view.write_f32(f32_addr(kPrice, i), static_cast<float>(call));
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kPrice, kOptions * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    std::vector<AddrRange> out;
    for (const Addr a : kArrays) out.push_back({a, kOptions * 4});
    return out;
  }
};

}  // namespace

std::unique_ptr<Workload> make_blackscholes() {
  return std::make_unique<BlackScholesWorkload>();
}

}  // namespace lazydram::workloads
