// newtonraph — Newton-Raphson equation solver (AxBench).
//
// Table II classification: Group 4; High thrashing, HIGH delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, Low error tolerance.
//
// Model: each warp solves f(x) = x^3 + a*x + b = 0 for a tile of (a, b)
// coefficient pairs drawn from scattered table rows, then iterates Newton
// steps — a heavy compute burst per load that leaves the memory bus lightly
// loaded (HIGH delay tolerance: thousands of compute cycles hide even large
// delays). The scattered coefficient fetches are the delayed-locality
// traffic (High activation sensitivity). Roots respond non-linearly to
// coefficient perturbations over hash-random inputs (Low error tolerance).
#include "workloads/apps.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kWarps = 1408;
constexpr unsigned kTilesPerWarp = 24;
constexpr unsigned kNewtonIters = 6;

constexpr Addr kCoefA = MiB(16);  // 4MB coefficient tables.
constexpr Addr kCoefB = MiB(64);
constexpr Addr kRoot = MiB(128);
constexpr std::uint64_t kElems = 1u << 20;
constexpr std::uint64_t kLinesTotal = kElems / kF32PerLine;  // 32768 lines.

/// Scattered tile base for (warp, tile): spreads work over the whole table.
std::uint64_t tile_line(unsigned warp, unsigned tile) {
  return mix64((static_cast<std::uint64_t>(warp) << 8) | tile) % (kLinesTotal - 2);
}

class NewtonWorkload final : public Workload {
 public:
  std::string name() const override { return "newtonraph"; }
  std::string description() const override {
    return "Newton-Raphson equation solver (AxBench)";
  }
  unsigned group() const override { return 4; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kHigh,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kLow};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per tile: a-pair load (2 lines), b-pair load (2 lines), then
    // kNewtonIters compute bursts, then the root store.
    constexpr unsigned kStepsPerTile = 2 + kNewtonIters + 1;
    constexpr unsigned kTotal = kTilesPerWarp * kStepsPerTile;
    if (step >= kTotal) return false;

    const unsigned tile = step / kStepsPerTile;
    const unsigned phase = step % kStepsPerTile;
    const std::uint64_t line = tile_line(warp, tile);

    if (phase == 0) {
      op = wide_load(kCoefA + line * kLineBytes, 2, /*approximable=*/true);
      return true;
    }
    if (phase == 1) {
      op = wide_load(kCoefB + line * kLineBytes, 2, /*approximable=*/true);
      return true;
    }
    if (phase < 2 + kNewtonIters) {
      op = gpu::WarpOp::compute(60);  // One Newton step (div + polynomial).
      return true;
    }
    op = gpu::WarpOp::store_line(kRoot + line * kLineBytes);
    return true;
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_hash_random(image, kCoefA, kElems, 0x4E, -3.0, 3.0);
    fill_hash_random(image, kCoefB, kElems, 0x4F, -2.0, 2.0);
  }

  void compute_output(gpu::MemView& view) const override {
    // Newton iterations on x^3 + a x + b from x0 = 1.
    for (std::uint64_t i = 0; i < kFuncElems; ++i) {
      const double a = view.read_f32(f32_addr(kCoefA, i));
      const double b = view.read_f32(f32_addr(kCoefB, i));
      double x = 1.0;
      for (unsigned it = 0; it < kNewtonIters; ++it) {
        const double f = x * x * x + a * x + b;
        const double fp = 3.0 * x * x + a;
        x -= f / (std::abs(fp) < 1e-3 ? (fp < 0 ? -1e-3 : 1e-3) : fp);
      }
      view.write_f32(f32_addr(kRoot, i), static_cast<float>(x));
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kRoot, kFuncElems * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kCoefA, kElems * 4}, {kCoefB, kElems * 4}};
  }

 private:
  static constexpr std::uint64_t kFuncElems = 1u << 18;  // 256K roots.
};

}  // namespace

std::unique_ptr<Workload> make_newtonraph() { return std::make_unique<NewtonWorkload>(); }

}  // namespace lazydram::workloads
