#include "workloads/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "workloads/patterns.hpp"

namespace lazydram::workloads {

namespace {
std::uint64_t stride_or_dense(unsigned width, std::uint64_t stride) {
  return stride == 0 ? static_cast<std::uint64_t>(width) * 4 : stride;
}
}  // namespace

void fill_test_image(gpu::MemoryImage& image, Addr base, unsigned width, unsigned height,
                     std::uint64_t seed, unsigned features,
                     std::uint64_t row_stride_bytes) {
  const std::uint64_t stride = stride_or_dense(width, row_stride_bytes);

  // Smooth background gradient.
  std::vector<float> pixels(static_cast<std::size_t>(width) * height);
  for (unsigned y = 0; y < height; ++y)
    for (unsigned x = 0; x < width; ++x) {
      const double g = 96.0 + 64.0 * std::sin(0.013 * x) * std::cos(0.017 * y) +
                       40.0 * (static_cast<double>(x) / width);
      pixels[static_cast<std::size_t>(y) * width + x] = static_cast<float>(g);
    }

  // Filled circles of varying intensity (feature edges for the filters).
  for (unsigned c = 0; c < features; ++c) {
    const std::uint64_t h = mix64(seed * 131 + c);
    const unsigned cx = static_cast<unsigned>(h % width);
    const unsigned cy = static_cast<unsigned>((h >> 16) % height);
    const unsigned r = 4 + static_cast<unsigned>((h >> 32) % (width / 10));
    const float value = static_cast<float>(40 + ((h >> 48) % 180));
    const unsigned y0 = cy > r ? cy - r : 0, y1 = std::min(height - 1, cy + r);
    const unsigned x0 = cx > r ? cx - r : 0, x1 = std::min(width - 1, cx + r);
    for (unsigned y = y0; y <= y1; ++y)
      for (unsigned x = x0; x <= x1; ++x) {
        const long dx = static_cast<long>(x) - cx, dy = static_cast<long>(y) - cy;
        if (dx * dx + dy * dy <= static_cast<long>(r) * r)
          pixels[static_cast<std::size_t>(y) * width + x] = value;
      }
  }

  for (unsigned y = 0; y < height; ++y)
    for (unsigned x = 0; x < width; ++x)
      image.write_f32(base + y * stride + 4ull * x,
                      pixels[static_cast<std::size_t>(y) * width + x]);
}

bool write_pgm(const gpu::MemView& view, Addr base, unsigned width, unsigned height,
               const std::string& path, std::uint64_t row_stride_bytes) {
  const std::uint64_t stride = stride_or_dense(width, row_stride_bytes);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "P5\n%u %u\n255\n", width, height);
  for (unsigned y = 0; y < height; ++y)
    for (unsigned x = 0; x < width; ++x) {
      const float v = view.read_f32(base + y * stride + 4ull * x);
      const int clamped = std::clamp(static_cast<int>(std::lround(v)), 0, 255);
      std::fputc(clamped, f);
    }
  std::fclose(f);
  return true;
}

double image_error(const gpu::MemView& exact, const gpu::MemView& approx, Addr base,
                   unsigned width, unsigned height, std::uint64_t row_stride_bytes) {
  const std::uint64_t stride = stride_or_dense(width, row_stride_bytes);
  double sum = 0.0;
  for (unsigned y = 0; y < height; ++y)
    for (unsigned x = 0; x < width; ++x) {
      const Addr a = base + y * stride + 4ull * x;
      const double e = exact.read_f32(a);
      const double p = approx.read_f32(a);
      sum += std::min(1.0, std::abs(p - e) / std::max(std::abs(e), 1e-6));
    }
  return sum == 0.0 && width * height == 0
             ? 0.0
             : sum / (static_cast<double>(width) * height);
}

}  // namespace lazydram::workloads
