// Factory functions for the 20 application models of Table II.
#pragma once

#include <memory>

#include "workloads/workload.hpp"

namespace lazydram::workloads {

std::unique_ptr<Workload> make_ray();           // Ray tracing
std::unique_ptr<Workload> make_inversek2j();    // Inverse kinematics, 2-joint arm
std::unique_ptr<Workload> make_newtonraph();    // Newton-Raphson equation solver
std::unique_ptr<Workload> make_fwt();           // Fast Walsh transform
std::unique_ptr<Workload> make_mvt();           // Matrix-vector product & transpose
std::unique_ptr<Workload> make_jmein();         // Triangle intersection detection
std::unique_ptr<Workload> make_atax();          // A^T * A * x
std::unique_ptr<Workload> make_3dconv();        // 3D convolution
std::unique_ptr<Workload> make_cons();          // 1D convolution
std::unique_ptr<Workload> make_srad();          // Speckle-reducing anisotropic diffusion
std::unique_ptr<Workload> make_lps();           // 3D Laplace solver
std::unique_ptr<Workload> make_bicg();          // BiCGStab kernel
std::unique_ptr<Workload> make_scp();           // Scalar products
std::unique_ptr<Workload> make_gemm();          // Matrix multiplication
std::unique_ptr<Workload> make_blackscholes();  // Black-Scholes option pricing
std::unique_ptr<Workload> make_2mm();           // Two matrix multiplications
std::unique_ptr<Workload> make_3mm();           // Three matrix multiplications
std::unique_ptr<Workload> make_sla();           // Scan of large arrays
std::unique_ptr<Workload> make_meanfilter();    // Noise-reduction convolution filter
std::unique_ptr<Workload> make_laplacian();     // Image sharpening filter

/// Image layout of the laplacian workload, used by the Fig. 14 example to
/// render exact vs. approximate PGM outputs. Each 4KB row slot holds one
/// 2KB input row followed by its 2KB output row.
namespace laplacian_layout {
inline constexpr Addr kBuffer = 16ull << 20;
inline constexpr std::uint64_t kRowSlotBytes = 4096;
inline constexpr Addr kImg = kBuffer;                ///< Input rows (stride 4KB).
inline constexpr Addr kOut = kBuffer + 2048;         ///< Output rows (stride 4KB).
inline constexpr unsigned kWidth = 512;
inline constexpr unsigned kHeight = 512;
}  // namespace laplacian_layout

}  // namespace lazydram::workloads
