// jmein — triangle intersection detection (AxBench jmeint).
//
// Table II classification: Group 2; High thrashing, Medium delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, Medium error
// tolerance.
//
// Model: each warp tests pairs of triangles. Per test it loads the two
// triangles' vertex data (2- and 2-line tiles from scattered positions in
// the vertex pool — annotated approximable) and runs the separating-axis
// compute. Scattered vertex rows receive other warps' fetches skewed in
// time (High activation sensitivity); nearly all traffic sits in RBL(2-4)
// rows because each triangle occupies two adjacent lines (Low Th_RBL
// sensitivity). The intersection decision is a thresholded continuous
// quantity over moderately smooth geometry: Medium error tolerance.
#include "workloads/apps.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kWarps = 1280;
constexpr unsigned kTests = 36;

constexpr Addr kVerts = MiB(16);  // Vertex pool (6MB, annotated).
constexpr std::uint64_t kVertLines = MiB(6) / kLineBytes;
constexpr Addr kResult = MiB(96);

std::uint64_t tri_line(unsigned warp, unsigned test, unsigned which) {
  return mix64((static_cast<std::uint64_t>(warp) << 14) | (test << 1) | which) %
         (kVertLines - 2);
}

class JmeinWorkload final : public Workload {
 public:
  std::string name() const override { return "jmein"; }
  std::string description() const override {
    return "Triangle intersection detection (AxBench jmeint)";
  }
  unsigned group() const override { return 2; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kMedium};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per test: triangle A (2 lines), triangle B (2 lines), compute, and a
    // result store every 8 tests.
    constexpr unsigned kStepsPerTest = 4;
    constexpr unsigned kTotal = kTests * kStepsPerTest;
    if (step >= kTotal) return false;

    const unsigned test = step / kStepsPerTest;
    const unsigned phase = step % kStepsPerTest;

    switch (phase) {
      case 0:
        op = wide_load(kVerts + tri_line(warp, test, 0) * kLineBytes, 2,
                       /*approximable=*/true);
        return true;
      case 1:
        op = wide_load(kVerts + tri_line(warp, test, 1) * kLineBytes, 2,
                       /*approximable=*/true);
        return true;
      case 2:  // Separating-axis tests.
        op = gpu::WarpOp::compute(18);
        return true;
      default:
        if (test % 8 == 7) {
          op = gpu::WarpOp::store_line(
              kResult + (static_cast<Addr>(warp) * (kTests / 8) + test / 8) * kLineBytes);
        } else {
          op = gpu::WarpOp::compute(2);
        }
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    // Vertex coordinates: smooth spatial layout (a tessellated surface).
    fill_smooth(image, kVerts, MiB(6) / 4, 1.5, 9.0, 3.0);
  }

  void compute_output(gpu::MemView& view) const override {
    // Soft intersection margin per test: distance between the two
    // triangles' centroid proxies minus a size term.
    for (unsigned w = 0; w < kFuncWarps; ++w) {
      for (unsigned t = 0; t < kTests; ++t) {
        const std::uint64_t la = tri_line(w, t, 0), lb = tri_line(w, t, 1);
        double ca = 0.0, cb = 0.0;
        for (unsigned e = 0; e < 9; ++e) {
          ca += view.read_f32(kVerts + la * kLineBytes + 4 * e);
          cb += view.read_f32(kVerts + lb * kLineBytes + 4 * e);
        }
        const double margin = 0.2 * (ca + cb) / 9.0 + (ca - cb) / 9.0;
        view.write_f32(f32_addr(kResult, static_cast<std::uint64_t>(w) * kTests + t),
                       static_cast<float>(margin));
      }
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kResult, static_cast<std::uint64_t>(kFuncWarps) * kTests * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kVerts, MiB(6)}};
  }

 private:
  static constexpr unsigned kFuncWarps = 512;  // Functional-model sample.
};

}  // namespace

std::unique_ptr<Workload> make_jmein() { return std::make_unique<JmeinWorkload>(); }

}  // namespace lazydram::workloads
