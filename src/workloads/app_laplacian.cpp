// laplacian — image sharpening filter (AxBench).
//
// Table II classification: Group 3; LOW thrashing, Medium delay tolerance,
// LOW activation sensitivity, Low Th_RBL sensitivity, Medium error
// tolerance. Fig. 14's showcase app: at ~17% application error the
// sharpened output remains visually acceptable.
//
// Model: a 3x3 Laplacian sharpening kernel over a 512x512 image with the
// output buffer interleaved row by row (see meanfilter for the mechanism:
// batched row-span fetches give Low thrashing/activation sensitivity, and
// the in/out row interleaving keeps AMS coverage below 10% -> Group 3).
// A shorter compute burst than meanfilter gives Medium delay tolerance, and
// sharpening amplifies local differences, so prediction errors show more
// (Medium error tolerance). The `image_approx` example renders this
// workload's exact vs approximate PGM outputs (Fig. 14).
#include "workloads/apps.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "workloads/image.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kW = laplacian_layout::kWidth, kH = laplacian_layout::kHeight;
constexpr Addr kBuf = laplacian_layout::kBuffer;
constexpr std::uint64_t kSlot = laplacian_layout::kRowSlotBytes;

constexpr Addr img_row(unsigned y) { return kBuf + y * kSlot; }
constexpr Addr out_row(unsigned y) { return kBuf + y * kSlot + 2048; }
constexpr Addr img_px(unsigned x, unsigned y) { return img_row(y) + 4ull * x; }
constexpr Addr out_px(unsigned x, unsigned y) { return out_row(y) + 4ull * x; }

constexpr unsigned kWarps = 256;
constexpr unsigned kPasses = 2;
constexpr std::uint64_t kRowsPerWarp = kPasses * kH / kWarps;

class LaplacianWorkload final : public Workload {
 public:
  std::string name() const override { return "laplacian"; }
  std::string description() const override { return "Image sharpening filter (AxBench)"; }
  unsigned group() const override { return 3; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kLow,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kLow,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kMedium};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    constexpr unsigned kStepsPerRow = 4;
    const std::uint64_t total = kRowsPerWarp * kStepsPerRow;
    if (step >= total) return false;

    const std::uint64_t iter = step / kStepsPerRow;
    const unsigned phase = step % kStepsPerRow;
    const unsigned sy =
        static_cast<unsigned>((static_cast<std::uint64_t>(warp) * kRowsPerWarp + iter) % kH);
    const unsigned ym = sy > 0 ? sy - 1 : 0;
    const unsigned yp = std::min(kH - 1, sy + 1);

    switch (phase) {
      case 0:    // First halves of input rows y-1, y, y+1.
      case 1: {  // Second halves.
        op.kind = gpu::WarpOp::Kind::kLoad;
        op.approximable = true;
        op.num_addrs = 24;
        unsigned n = 0;
        for (const unsigned yy : {ym, sy, yp}) {
          const Addr half = img_row(yy) + phase * 8ull * kLineBytes;
          for (unsigned l = 0; l < 8; ++l) op.addrs[n++] = half + l * kLineBytes;
        }
        return true;
      }
      case 2:
        op = gpu::WarpOp::compute(80);
        return true;
      default:
        op = wide_store(out_row(sy), 16);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_test_image(image, kBuf, kW, kH, /*seed=*/0x1AB, /*features=*/6, kSlot);
  }

  void compute_output(gpu::MemView& view) const override {
    const auto clamp = [](int v, int hi) { return std::max(0, std::min(hi - 1, v)); };
    const auto px = [&](int xi, int yi) {
      return static_cast<double>(view.read_f32(img_px(
          static_cast<unsigned>(clamp(xi, kW)), static_cast<unsigned>(clamp(yi, kH)))));
    };
    for (unsigned y = 0; y < kH; ++y)
      for (unsigned x = 0; x < kW; ++x) {
        const int xi = static_cast<int>(x), yi = static_cast<int>(y);
        // Unsharp-mask style sharpening: centre plus 1.2x the Laplacian.
        const double lap = 4.0 * px(xi, yi) - px(xi - 1, yi) - px(xi + 1, yi) -
                           px(xi, yi - 1) - px(xi, yi + 1);
        const double v = px(xi, yi) + 0.3 * lap;
        view.write_f32(out_px(x, y), static_cast<float>(std::clamp(v, 0.0, 255.0)));
      }
  }

  std::vector<AddrRange> output_ranges() const override {
    std::vector<AddrRange> out;
    out.reserve(kH);
    for (unsigned y = 0; y < kH; ++y) out.push_back({out_row(y), 2048});
    return out;
  }

  std::vector<AddrRange> approximable_ranges() const override {
    std::vector<AddrRange> in;
    in.reserve(kH);
    for (unsigned y = 0; y < kH; ++y) in.push_back({img_row(y), 2048});
    return in;
  }
};

}  // namespace

std::unique_ptr<Workload> make_laplacian() {
  return std::make_unique<LaplacianWorkload>();
}

}  // namespace lazydram::workloads
