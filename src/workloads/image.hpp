// Synthetic grayscale test images for the image-processing workloads
// (meanfilter, laplacian, srad, newtonraph) and a PGM writer used by the
// Fig. 14 reproduction (exact vs. approximate output comparison).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "gpu/functional_memory.hpp"

namespace lazydram::workloads {

/// Writes a synthetic grayscale image (smooth gradients plus `features`
/// geometric shapes, values in [0, 255]) as f32 pixels at `base`.
/// `row_stride_bytes` is the byte distance between consecutive rows
/// (0 = dense, width*4); a larger stride interleaves other buffers between
/// rows. `seed` varies the feature placement.
void fill_test_image(gpu::MemoryImage& image, Addr base, unsigned width, unsigned height,
                     std::uint64_t seed, unsigned features = 12,
                     std::uint64_t row_stride_bytes = 0);

/// Reads an f32 image from `view` (row stride as above) and writes it as a
/// binary PGM (clamping to [0, 255]). Returns false on I/O failure.
bool write_pgm(const gpu::MemView& view, Addr base, unsigned width, unsigned height,
               const std::string& path, std::uint64_t row_stride_bytes = 0);

/// Mean relative per-pixel error between two f32 images read through views.
double image_error(const gpu::MemView& exact, const gpu::MemView& approx, Addr base,
                   unsigned width, unsigned height, std::uint64_t row_stride_bytes = 0);

}  // namespace lazydram::workloads
