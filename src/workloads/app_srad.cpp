// srad — speckle-reducing anisotropic diffusion (Rodinia).
//
// Table II classification: Group 4; High thrashing, Medium delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, Low error tolerance.
//
// Model: one diffusion step over a speckled (noisy) 512x512 image. Warps
// sweep image rows in a block-cyclic order: each step fetches the centre
// row segment plus its N/S neighbours (one op), and the E/W halo lines of
// the *previous* sweep's coefficient field — lone reads into rows whose
// mates belong to warps several sweeps behind (High activation
// sensitivity). The diffusion coefficient divides by local variance, so
// speckle noise amplifies any value perturbation (Low error tolerance).
#include "workloads/apps.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kW = 512, kH = 512;  // 1MB f32 image.
constexpr Addr kImg = MiB(16);
constexpr Addr kCoef = MiB(32);  // Coefficient field from the previous sweep.
constexpr Addr kOut = MiB(48);
constexpr std::uint64_t kPixels = static_cast<std::uint64_t>(kW) * kH;

constexpr unsigned kWarps = 512;
constexpr unsigned kSegW = 128;  // Pixels per segment (one line = 32 px).
constexpr std::uint64_t kSegments = kPixels / kSegW;
constexpr unsigned kSweeps = 2;
constexpr std::uint64_t kSegsPerWarp = kSweeps * kSegments / kWarps;

constexpr Addr pixel_addr(Addr base, unsigned x, unsigned y) {
  return f32_addr(base, static_cast<std::uint64_t>(y) * kW + x);
}

class SradWorkload final : public Workload {
 public:
  std::string name() const override { return "srad"; }
  std::string description() const override {
    return "Speckle-reducing anisotropic diffusion (Rodinia)";
  }
  unsigned group() const override { return 4; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kLow};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per segment: stencil rows op, coefficient halo op, compute, store.
    constexpr unsigned kStepsPerSeg = 4;
    const std::uint64_t total = kSegsPerWarp * kStepsPerSeg;
    if (step >= total) return false;

    const std::uint64_t iter = step / kStepsPerSeg;
    const unsigned phase = step % kStepsPerSeg;
    // Block-cyclic: consecutive warps take consecutive segments; a warp's
    // next segment is a full grid-stride away.
    const std::uint64_t seg = (iter * kWarps + warp) % kSegments;
    const unsigned sx = static_cast<unsigned>((seg * kSegW) % kW);
    const unsigned sy = static_cast<unsigned>((seg * kSegW) / kW);
    const unsigned ym = sy > 0 ? sy - 1 : 0, yp = std::min(kH - 1, sy + 1);

    switch (phase) {
      case 0: {
        // Centre segment (4 lines) + N/S neighbour segments' first lines.
        op.kind = gpu::WarpOp::Kind::kLoad;
        op.approximable = true;
        op.num_addrs = 8;
        for (unsigned l = 0; l < 4; ++l)
          op.addrs[l] = line_base(pixel_addr(kImg, sx, sy)) + l * kLineBytes;
        op.addrs[4] = line_base(pixel_addr(kImg, sx, ym));
        op.addrs[5] = op.addrs[4] + kLineBytes;
        op.addrs[6] = line_base(pixel_addr(kImg, sx, yp));
        op.addrs[7] = op.addrs[6] + kLineBytes;
        return true;
      }
      case 1: {
        // Coefficient halo from a diagonally offset region (previous
        // sweep's frontier): lone reads, mates lag several sweeps.
        const std::uint64_t coef_seg = (seg + kSegments / 2 + 17) % kSegments;
        op = gpu::WarpOp::load_line(
            kCoef + coef_seg * (kSegW / kF32PerLine) * kLineBytes, /*approximable=*/true);
        return true;
      }
      case 2:
        op = gpu::WarpOp::compute(10);
        return true;
      default:
        op = wide_store(line_base(pixel_addr(kOut, sx, sy)), 4);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    // Speckled image: smooth anatomy multiplied by strong per-pixel noise.
    for (unsigned y = 0; y < kH; ++y)
      for (unsigned x = 0; x < kW; ++x) {
        const double anatomy = 90.0 + 50.0 * std::sin(0.02 * x) * std::cos(0.025 * y);
        const double speckle = 0.4 + 1.2 * mix_unit((static_cast<std::uint64_t>(y) << 20) | x);
        image.write_f32(pixel_addr(kImg, x, y), static_cast<float>(anatomy * speckle));
      }
    fill_hash_random(image, kCoef, kPixels, 0x5D, 0.1, 0.9);
  }

  void compute_output(gpu::MemView& view) const override {
    const auto clamp = [](int v, int hi) { return std::max(0, std::min(hi - 1, v)); };
    for (unsigned y = 0; y < kH; ++y)
      for (unsigned x = 0; x < kW; ++x) {
        const auto px = [&](int xi, int yi) {
          return static_cast<double>(
              view.read_f32(pixel_addr(kImg, static_cast<unsigned>(clamp(xi, kW)),
                                       static_cast<unsigned>(clamp(yi, kH)))));
        };
        const double c = px(x, y);
        const double dn = px(x, y - 1) - c, ds = px(x, y + 1) - c;
        const double de = px(x + 1, y) - c, dw = px(x - 1, y) - c;
        const double g2 = (dn * dn + ds * ds + de * de + dw * dw) / (c * c + 1e-6);
        const double l = (dn + ds + de + dw) / (c + 1e-6);
        const double num = 0.5 * g2 - (1.0 / 16.0) * l * l;
        const double den = 1.0 + 0.25 * l;
        const double q = num / (den * den + 1e-6);
        const double coef = 1.0 / (1.0 + q);  // Diffusion coefficient.
        view.write_f32(pixel_addr(kOut, x, y),
                       static_cast<float>(c + 0.25 * coef * (dn + ds + de + dw)));
      }
  }

  std::vector<AddrRange> output_ranges() const override { return {{kOut, kPixels * 4}}; }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kImg, kPixels * 4}, {kCoef, kPixels * 4}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_srad() { return std::make_unique<SradWorkload>(); }

}  // namespace lazydram::workloads
