// SCP — scalar (dot) products of many vector pairs (CUDA SDK).
//
// Table II classification: Group 1; High thrashing, Low delay tolerance,
// High activation sensitivity, High Th_RBL sensitivity, Medium error
// tolerance. Fig. 7(b)/Fig. 11's case-study app: most requests inside
// Th_RBL=8 sit at RBL(2-8), while >10% of all requests are RBL(1), so
// Dyn-AMS profits from lowering Th_RBL toward 1.
//
// Model: warp w reduces vector pair w. Per iteration it loads a 16-line tile
// of A and of B (vector loads: the tile's transactions issue back-to-back,
// landing 2-3 requests in each touched channel row — the RBL(2-8) bulk) and
// four scattered per-pair coefficient lines (the RBL(1) tail, >10% of
// requests), then runs a short dependent reduction burst (Low delay
// tolerance, the memory bus runs near saturation). Consecutive iterations
// and the neighbouring pair's vectors revisit the same 12KB row windows, so
// delaying consolidates activations (High activation sensitivity).
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kPairs = 1200;     // One warp per vector pair.
constexpr unsigned kVecLines = 48;    // Lines per vector (48*32 = 1536 f32).
constexpr unsigned kTile = 16;        // Lines per vector load.
constexpr unsigned kIters = kVecLines / kTile;
constexpr unsigned kScatterPerIter = 4;
constexpr std::uint64_t kVecElems = static_cast<std::uint64_t>(kVecLines) * kF32PerLine;

constexpr Addr kA = MiB(16);      // kPairs vectors, contiguous.
constexpr Addr kB = MiB(96);      // kPairs vectors, contiguous.
constexpr Addr kCoef = MiB(176);  // Scattered coefficient table.
constexpr std::uint64_t kCoefElems = 1u << 19;  // 2MB of f32.
constexpr Addr kOut = MiB(208);   // One f32 per pair.

constexpr std::uint16_t kReduceCycles = 10;

class ScpWorkload final : public Workload {
 public:
  std::string name() const override { return "SCP"; }
  std::string description() const override {
    return "Scalar products of vector pairs (CUDA SDK)";
  }
  unsigned group() const override { return 1; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kLow,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = true,
            .error_tolerance = Level::kMedium};
  }

  unsigned num_warps() const override { return kPairs; }

  static std::uint64_t coef_index(unsigned warp, unsigned slot) {
    return mix64((static_cast<std::uint64_t>(warp) << 16) | slot) % kCoefElems;
  }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per iteration: A tile, B tile, 4 scattered coefficient lines, compute.
    constexpr unsigned kStepsPerIter = 2 + kScatterPerIter + 1;
    constexpr unsigned kTotal = kIters * kStepsPerIter + 1;
    if (step >= kTotal) return false;

    if (step == kTotal - 1) {
      op = gpu::WarpOp::store_line(f32_line(kOut, warp));
      return true;
    }

    const unsigned iter = step / kStepsPerIter;
    const unsigned phase = step % kStepsPerIter;
    const Addr tile_off =
        (static_cast<Addr>(warp) * kVecLines + static_cast<Addr>(iter) * kTile) * kLineBytes;

    if (phase == 0) {
      op = wide_load(kA + tile_off, kTile, /*approximable=*/true);
      return true;
    }
    if (phase == 1) {
      op = wide_load(kB + tile_off, kTile, /*approximable=*/true);
      return true;
    }
    if (phase < 2 + kScatterPerIter) {
      op = gpu::WarpOp::load_line(
          f32_line(kCoef, coef_index(warp, iter * kScatterPerIter + phase - 2)),
          /*approximable=*/true);
      return true;
    }
    op = gpu::WarpOp::compute(kReduceCycles);
    return true;
  }

  void init_memory(gpu::MemoryImage& image) const override {
    const std::uint64_t n = static_cast<std::uint64_t>(kPairs) * kVecElems;
    fill_smooth(image, kA, n, 0.5, 5.0, 2.0);
    fill_smooth(image, kB, n, 0.4, 7.0, 1.5);
    // Slowly varying coefficients: a nearest-line prediction lands close,
    // keeping SCP in the paper's Medium error-tolerance band.
    fill_smooth(image, kCoef, kCoefElems, 0.35, 977.0, 1.0);
  }

  void compute_output(gpu::MemView& view) const override {
    for (unsigned p = 0; p < kPairs; ++p) {
      double acc = 0.0;
      for (std::uint64_t e = 0; e < kVecElems; ++e) {
        const float a =
            view.read_f32(f32_addr(kA, static_cast<std::uint64_t>(p) * kVecElems + e));
        const float b =
            view.read_f32(f32_addr(kB, static_cast<std::uint64_t>(p) * kVecElems + e));
        acc += static_cast<double>(a) * static_cast<double>(b);
      }
      // Coefficients scale the result additively-averaged, so the output
      // error stays proportional to the fraction of approximated loads.
      double coef_sum = 0.0;
      constexpr unsigned kCoefCount = kIters * kScatterPerIter;
      for (unsigned s = 0; s < kCoefCount; ++s)
        coef_sum += static_cast<double>(view.read_f32(f32_addr(kCoef, coef_index(p, s))));
      view.write_f32(f32_addr(kOut, p), static_cast<float>(acc * (coef_sum / kCoefCount)));
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kOut, static_cast<std::uint64_t>(kPairs) * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    const std::uint64_t vec_bytes = static_cast<std::uint64_t>(kPairs) * kVecElems * 4;
    return {{kA, vec_bytes}, {kB, vec_bytes}, {kCoef, kCoefElems * 4}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_scp() { return std::make_unique<ScpWorkload>(); }

}  // namespace lazydram::workloads
