// CONS — 1D convolution (Polybench).
//
// Table II classification: Group 4; High thrashing, Medium delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, Low error tolerance.
//
// Model: warp w convolves its 8-line input segment: one 8-line tile plus a
// one-line halo per side (one multi-transaction op), a kernel-coefficient
// line (L2-resident), a compute burst, and an output store. Segments are
// processed in a strided order so neighbouring segments of the same DRAM
// row come from warps that run skewed in time — delayed locality (High
// activation sensitivity) — while all traffic sits in RBL(2-8) rows (Low
// Th_RBL sensitivity). Hash-random samples make the convolution output
// unforgiving to approximation (Low error tolerance).
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kWarps = 1280;
constexpr unsigned kSegLines = 8;
constexpr unsigned kSegsPerWarp = 12;
constexpr std::uint64_t kSegments = static_cast<std::uint64_t>(kWarps) * kSegsPerWarp;

constexpr Addr kIn = MiB(16);
constexpr Addr kKernel = MiB(512);
constexpr Addr kOut = MiB(640);
constexpr unsigned kTaps = 9;

/// Strided segment order: warp w's t-th segment is far from warp w+1's.
constexpr std::uint64_t segment_of(unsigned warp, unsigned t) {
  return (static_cast<std::uint64_t>(t) * kWarps + warp * 7) % kSegments;
}

class ConsWorkload final : public Workload {
 public:
  std::string name() const override { return "CONS"; }
  std::string description() const override { return "1D convolution (Polybench)"; }
  unsigned group() const override { return 4; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kLow};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    constexpr unsigned kStepsPerSeg = 4;
    constexpr unsigned kTotal = kSegsPerWarp * kStepsPerSeg;
    if (step >= kTotal) return false;

    const unsigned t = step / kStepsPerSeg;
    const std::uint64_t seg = segment_of(warp, t);
    const Addr seg_base = kIn + seg * kSegLines * kLineBytes;

    switch (step % kStepsPerSeg) {
      case 0: {
        // Segment tile with one-line halo on each side (10 transactions).
        const Addr halo_base = seg_base >= kIn + kLineBytes ? seg_base - kLineBytes : seg_base;
        op = wide_load(halo_base, kSegLines + 2, /*approximable=*/true);
        return true;
      }
      case 1:  // Filter taps: one line, L2-resident after warm-up.
        op = gpu::WarpOp::load_line(kKernel, /*approximable=*/false);
        return true;
      case 2:
        op = gpu::WarpOp::compute(12);
        return true;
      default:
        op = wide_store(kOut + seg * kSegLines * kLineBytes, kSegLines);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    // Only a window of the input participates in the functional model (the
    // timed run touches the full strided range; values default to zero
    // beyond the window, which is harmless for timing).
    fill_hash_random(image, kIn, kFuncElems, 0xC0, -2.0, 2.0);
    for (unsigned t = 0; t < kTaps; ++t)
      image.write_f32(f32_addr(kKernel, t), 1.0f / (1 + static_cast<int>(t)));
  }

  void compute_output(gpu::MemView& view) const override {
    for (std::uint64_t i = 0; i < kFuncElems; ++i) {
      double acc = 0.0;
      for (unsigned t = 0; t < kTaps; ++t) {
        const std::uint64_t j = i + t >= kTaps / 2 ? i + t - kTaps / 2 : 0;
        if (j >= kFuncElems) continue;
        acc += static_cast<double>(view.read_f32(f32_addr(kIn, j))) *
               view.read_f32(f32_addr(kKernel, t));
      }
      view.write_f32(f32_addr(kOut, i), static_cast<float>(acc));
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kOut, kFuncElems * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kIn, kSegments * kSegLines * kLineBytes}};
  }

 private:
  /// Elements covered by the functional model (first 512K floats = 2MB).
  static constexpr std::uint64_t kFuncElems = 1u << 19;
};

}  // namespace

std::unique_ptr<Workload> make_cons() { return std::make_unique<ConsWorkload>(); }

}  // namespace lazydram::workloads
