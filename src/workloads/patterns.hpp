// Shared address-pattern and data-initialization helpers for the 20
// application models.
//
// Address-space geometry reminder (Table I defaults): the global space is
// interleaved over 6 channels in 256B chunks; within a channel a 2KB row
// holds 8 chunks, so one "row set" (the same row index in every channel)
// spans 12KB of contiguous global addresses, a bank changes every 12KB, and
// the row index increments every 192KB. Patterns below are expressed in
// these units: a *sequential* stream enjoys high row locality, a stride of
// ~192KB revisits the same bank with a fresh row every step (worst case),
// and scattered accesses within a bounded footprint create the recoverable
// low-RBL traffic that DMS/AMS exploit.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "gpu/functional_memory.hpp"
#include "gpu/warp.hpp"

namespace lazydram::workloads {

constexpr Addr MiB(std::uint64_t n) { return n << 20; }
constexpr Addr KiB(std::uint64_t n) { return n << 10; }

/// Address of element `i` of an f32 array at `base`.
constexpr Addr f32_addr(Addr base, std::uint64_t i) { return base + 4 * i; }

/// Line base address containing element `i` of an f32 array at `base`.
constexpr Addr f32_line(Addr base, std::uint64_t i) { return line_base(f32_addr(base, i)); }

/// Elements of one 128B line (f32).
inline constexpr std::uint64_t kF32PerLine = kLineBytes / 4;

/// Deterministic 64-bit mixer (splitmix64 finalizer). Used by workloads for
/// per-(warp, iteration) pseudo-random access patterns without shared state.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform value in [0, 1) from a hash.
constexpr double mix_unit(std::uint64_t x) {
  return static_cast<double>(mix64(x) >> 11) * (1.0 / 9007199254740992.0);
}

/// Wide (multi-transaction) warp load: `nlines` consecutive 128B lines from
/// `base`. Models vector/tile accesses whose transactions issue back-to-back
/// from the load/store unit — the source of baseline row-buffer locality.
inline gpu::WarpOp wide_load(Addr base, unsigned nlines, bool approximable) {
  gpu::WarpOp op;
  op.kind = gpu::WarpOp::Kind::kLoad;
  op.approximable = approximable;
  op.num_addrs = static_cast<std::uint8_t>(nlines);
  for (unsigned i = 0; i < nlines; ++i)
    op.addrs[i] = line_base(base) + static_cast<Addr>(i) * kLineBytes;
  return op;
}

/// Wide warp store: `nlines` consecutive lines from `base`.
inline gpu::WarpOp wide_store(Addr base, unsigned nlines) {
  gpu::WarpOp op;
  op.kind = gpu::WarpOp::Kind::kStore;
  op.num_addrs = static_cast<std::uint8_t>(nlines);
  for (unsigned i = 0; i < nlines; ++i)
    op.addrs[i] = line_base(base) + static_cast<Addr>(i) * kLineBytes;
  return op;
}

// --- Data initialization -------------------------------------------------
// Value prediction substitutes a nearby line's bytes, so how *smooth* the
// data is in address order controls the application error each model shows.

/// arr[i] = offset + amplitude * sin(2*pi*freq * i / n) — smooth data, small
/// nearest-line prediction error.
void fill_smooth(gpu::MemoryImage& image, Addr base, std::uint64_t n, double amplitude,
                 double freq, double offset);

/// arr[i] = lo + (hi-lo) * hash(seed, i) — rough data, large prediction error.
void fill_hash_random(gpu::MemoryImage& image, Addr base, std::uint64_t n,
                      std::uint64_t seed, double lo, double hi);

/// arr[i] = start + slope * i.
void fill_linear(gpu::MemoryImage& image, Addr base, std::uint64_t n, double start,
                 double slope);

}  // namespace lazydram::workloads
