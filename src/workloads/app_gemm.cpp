// GEMM — dense matrix multiplication C = A x B (Polybench).
//
// Table II classification: Group 4; High thrashing, Low delay tolerance,
// Medium activation sensitivity, High Th_RBL sensitivity, Low error
// tolerance. Fig. 6(a): ~10% of read requests (RBL 1-2) cause ~65% of the
// row activations.
//
// Model: warp w computes C row i = w / 32, column block jb = w % 32. Per
// k-step it loads one B line (the 4KB-pitch *column walk* — the low-RBL
// request class; same-k lines of adjacent jb warps are row mates), every 32
// k-steps a 4-line tile of A row i (shared by the 32 jb warps of row i:
// mostly L2 hits), and a short FMA burst (memory-bound: Low delay
// tolerance). Inputs are hash-random, so value prediction errs heavily: Low
// error tolerance.
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kM = 64;    // C rows.
constexpr unsigned kN = 512;   // C columns (16 blocks of 32).
constexpr unsigned kK = 512;   // Inner dimension.
constexpr unsigned kJBlocks = kN / 32;

constexpr Addr kA = MiB(16);   // kM x kK f32.
constexpr Addr kB = MiB(64);   // kK x kN f32 (2MB: exceeds the 768KB L2).
constexpr Addr kC = MiB(128);  // kM x kN f32.

constexpr std::uint16_t kFmaCycles = 3;

class GemmWorkload final : public Workload {
 public:
  std::string name() const override { return "GEMM"; }
  std::string description() const override { return "Matrix multiplication (Polybench)"; }
  unsigned group() const override { return 4; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kLow,
            .activation_sensitivity = Level::kMedium,
            .th_rbl_sensitive = true,
            .error_tolerance = Level::kLow};
  }

  unsigned num_warps() const override { return kM * kJBlocks; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    const unsigned jb = warp % kJBlocks;
    const unsigned i = warp / kJBlocks;

    constexpr unsigned kStepsPerK = 3;
    constexpr unsigned kTotal = kK * kStepsPerK + 1;
    if (step >= kTotal) return false;

    if (step == kTotal - 1) {  // Store the 32-float C slice (one line).
      op = gpu::WarpOp::store_line(f32_line(kC, static_cast<std::uint64_t>(i) * kN + 32 * jb));
      return true;
    }

    // Staggered k-start per row: warps sharing a jb strip sweep B out of
    // phase, so B lines are not L2-coalesced across the cohort and the
    // column walk hits DRAM (the paper's GEMM row-thrashing profile).
    const unsigned k = (step / kStepsPerK + i * 37) % kK;
    switch (step % kStepsPerK) {
      case 0:
        if (k % 128 == 0) {
          // A row tile: 128 consecutive floats (4 lines), shared by the 32
          // jb-warps of row i — L2-resident for most of them.
          op = wide_load(f32_addr(kA, static_cast<std::uint64_t>(i) * kK + k), 4,
                         /*approximable=*/false);
        } else {
          op = gpu::WarpOp::compute(1);
        }
        return true;
      case 1:  // B[k][32*jb .. +31]: the 4KB-pitch column walk.
        op = gpu::WarpOp::load_line(
            f32_line(kB, static_cast<std::uint64_t>(k) * kN + 32 * jb),
            /*approximable=*/true);
        return true;
      default:
        op = gpu::WarpOp::compute(kFmaCycles);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_hash_random(image, kA, static_cast<std::uint64_t>(kM) * kK, 0xA, -1.0, 1.0);
    fill_hash_random(image, kB, static_cast<std::uint64_t>(kK) * kN, 0xB, -1.0, 1.0);
  }

  void compute_output(gpu::MemView& view) const override {
    for (unsigned i = 0; i < kM; ++i) {
      for (unsigned j = 0; j < kN; ++j) {
        double acc = 0.0;
        for (unsigned k = 0; k < kK; ++k) {
          const float a = view.read_f32(f32_addr(kA, static_cast<std::uint64_t>(i) * kK + k));
          const float b = view.read_f32(f32_addr(kB, static_cast<std::uint64_t>(k) * kN + j));
          acc += static_cast<double>(a) * static_cast<double>(b);
        }
        view.write_f32(f32_addr(kC, static_cast<std::uint64_t>(i) * kN + j),
                       static_cast<float>(acc));
      }
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kC, static_cast<std::uint64_t>(kM) * kN * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kB, static_cast<std::uint64_t>(kK) * kN * 4}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_gemm() { return std::make_unique<GemmWorkload>(); }

}  // namespace lazydram::workloads
