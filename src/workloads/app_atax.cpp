// ATAX — y = A^T * (A * x) (Polybench).
//
// Table II classification: Group 4; High thrashing, Medium delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, Low error tolerance.
//
// Model: phase 1 streams A row i in 8-line tiles to form tmp[i] = A[i].x;
// phase 2 walks column i of A with a 3KB pitch to accumulate
// y[i] = sum_k A[k][i]*tmp[k] — adjacent warps' columns are row mates that
// arrive skewed (High activation sensitivity). Hash-random data makes value
// prediction destructive (Low error tolerance -> Group 4: AMS is not
// applied in the paper's evaluation; DMS alone still helps).
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kN = 768;
constexpr unsigned kColStride = 2;
constexpr unsigned kColSamples = kN / kColStride;

constexpr Addr kA = MiB(16);
constexpr Addr kX = MiB(48);
constexpr Addr kTmp = MiB(50);
constexpr Addr kY = MiB(54);

class AtaxWorkload final : public Workload {
 public:
  std::string name() const override { return "ATAX"; }
  std::string description() const override {
    return "Matrix transpose & vector multiplication A^T(Ax) (Polybench)";
  }
  unsigned group() const override { return 4; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kLow};
  }

  unsigned num_warps() const override { return kN; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Phase 1: 3 x (8-line A row tile + compute) + tmp store.
    // Phase 2: kColSamples x (column line + compute) + y store.
    constexpr unsigned kRowSteps = 6;
    constexpr unsigned kColSteps = kColSamples * 2;
    constexpr unsigned kTotal = kRowSteps + 1 + kColSteps + 1;
    constexpr unsigned kPasses = 2;  // Normal-equations refinement sweeps.
    if (step >= kPasses * kTotal) return false;
    step %= kTotal;

    const unsigned i = warp;

    if (step < kRowSteps) {
      const unsigned third = step / 2;
      if (step % 2 == 0) {
        op = wide_load(f32_addr(kA, static_cast<std::uint64_t>(i) * kN + third * 256), 8,
                       /*approximable=*/true);
        return true;
      }
      op = gpu::WarpOp::compute(6);
      return true;
    }
    if (step == kRowSteps) {
      op = gpu::WarpOp::store_line(f32_line(kTmp, i));
      return true;
    }

    const unsigned s = step - kRowSteps - 1;
    if (s < kColSteps) {
      if (s % 2 == 0) {
        const unsigned k = (s / 2) * kColStride;
        op = gpu::WarpOp::load_line(
            f32_line(kA, static_cast<std::uint64_t>(k) * kN + i), /*approximable=*/true);
        return true;
      }
      op = gpu::WarpOp::compute(4);
      return true;
    }
    op = gpu::WarpOp::store_line(f32_line(kY, i));
    return true;
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_hash_random(image, kA, static_cast<std::uint64_t>(kN) * kN, 0xA7A, -1.0, 1.0);
    fill_hash_random(image, kX, kN, 0x0A7, -1.0, 1.0);
  }

  void compute_output(gpu::MemView& view) const override {
    for (unsigned i = 0; i < kN; ++i) {
      double t = 0.0;
      for (unsigned k = 0; k < kN; ++k)
        t += static_cast<double>(
                 view.read_f32(f32_addr(kA, static_cast<std::uint64_t>(i) * kN + k))) *
             view.read_f32(f32_addr(kX, k));
      view.write_f32(f32_addr(kTmp, i), static_cast<float>(t));
    }
    for (unsigned i = 0; i < kN; ++i) {
      double y = 0.0;
      for (unsigned k = 0; k < kN; ++k)
        y += static_cast<double>(
                 view.read_f32(f32_addr(kA, static_cast<std::uint64_t>(k) * kN + i))) *
             view.read_f32(f32_addr(kTmp, k));
      view.write_f32(f32_addr(kY, i), static_cast<float>(y));
    }
  }

  std::vector<AddrRange> output_ranges() const override { return {{kY, kN * 4ull}}; }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kA, static_cast<std::uint64_t>(kN) * kN * 4}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_atax() { return std::make_unique<AtaxWorkload>(); }

}  // namespace lazydram::workloads
