// inversek2j — inverse kinematics for a 2-joint arm (AxBench).
//
// Table II classification: Group 3; High thrashing, High delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, High error tolerance.
//
// Model: each warp converts a batch of scattered (x, y) end-effector
// coordinates into joint angles. The coordinate fetches are annotated
// approximable, but the two per-batch trigonometry-table lookups are not
// (table indices act like pointers), and together with the non-annotated
// share they hold the reachable prediction coverage below 10% (Group 3).
// The per-batch arccos/atan2 compute burst is long (High delay tolerance);
// scattered coordinate rows have skewed-arriving mates from other warps
// (High activation sensitivity). Joint angles vary smoothly with target
// coordinates over a smooth field (High error tolerance).
#include "workloads/apps.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kWarps = 1400;
constexpr unsigned kBatches = 28;

constexpr Addr kXY = MiB(16);      // Target coordinates (4MB, annotated).
constexpr std::uint64_t kXYElems = 1u << 20;
constexpr Addr kTrig = MiB(64);    // Trig lookup table (3MB, not annotated).
constexpr std::uint64_t kTrigLines = MiB(3) / kLineBytes;
constexpr Addr kAngles = MiB(96);

constexpr double kL1 = 0.5, kL2 = 0.5;  // Arm segment lengths.

std::uint64_t coord_index(unsigned warp, unsigned batch) {
  return mix64((static_cast<std::uint64_t>(warp) << 10) | batch) % (kXYElems - 64);
}

std::uint64_t trig_line(unsigned warp, unsigned batch, unsigned probe) {
  return mix64(0x1717 + ((static_cast<std::uint64_t>(warp) << 12) | (batch << 2) | probe)) %
         kTrigLines;
}

class InverseK2jWorkload final : public Workload {
 public:
  std::string name() const override { return "inversek2j"; }
  std::string description() const override {
    return "Inverse kinematics for 2-joint arm (AxBench)";
  }
  unsigned group() const override { return 3; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kHigh,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kHigh};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per batch: coordinate pair load (2 lines), two trig-table probes,
    // kinematics compute, angle store.
    constexpr unsigned kStepsPerBatch = 5;
    constexpr unsigned kTotal = kBatches * kStepsPerBatch;
    if (step >= kTotal) return false;

    const unsigned batch = step / kStepsPerBatch;
    const unsigned phase = step % kStepsPerBatch;

    switch (phase) {
      case 0:
        // Only every third batch reads from the annotated target buffer;
        // the rest read freshly produced (unannotated) targets. This keeps
        // the reachable prediction coverage below the 10% target (Group 3).
        op = wide_load(f32_line(kXY, coord_index(warp, batch)), 2,
                       /*approximable=*/batch % 3 == 0);
        return true;
      case 1:
      case 2:  // Trig table probes: index-driven, never approximated.
        op = gpu::WarpOp::load_line(kTrig + trig_line(warp, batch, phase) * kLineBytes,
                                    /*approximable=*/false);
        return true;
      case 3:  // arccos/atan2 chain.
        op = gpu::WarpOp::compute(48);
        return true;
      default:
        op = gpu::WarpOp::store_line(
            f32_line(kAngles, (static_cast<std::uint64_t>(warp) * kBatches + batch) * 32));
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    // Smooth reachable targets: radius in (0.2, 0.95), angle smooth.
    for (std::uint64_t i = 0; i < kXYElems / 2; ++i) {
      const double r = 0.575 + 0.2 * std::sin(i * 2e-5);
      const double phi = 1.5 + 0.8 * std::sin(i * 1e-5);
      image.write_f32(f32_addr(kXY, 2 * i), static_cast<float>(r * std::cos(phi)));
      image.write_f32(f32_addr(kXY, 2 * i + 1), static_cast<float>(r * std::sin(phi)));
    }
  }

  void compute_output(gpu::MemView& view) const override {
    for (std::uint64_t i = 0; i < kFuncPairs; ++i) {
      const double x = view.read_f32(f32_addr(kXY, 2 * i));
      const double y = view.read_f32(f32_addr(kXY, 2 * i + 1));
      const double d2 = x * x + y * y;
      double c2 = (d2 - kL1 * kL1 - kL2 * kL2) / (2 * kL1 * kL2);
      c2 = std::max(-1.0, std::min(1.0, c2));
      const double theta2 = std::acos(c2);
      const double theta1 =
          std::atan2(y, x) - std::atan2(kL2 * std::sin(theta2), kL1 + kL2 * c2);
      view.write_f32(f32_addr(kAngles, 2 * i), static_cast<float>(theta1));
      view.write_f32(f32_addr(kAngles, 2 * i + 1), static_cast<float>(theta2));
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kAngles, kFuncPairs * 2 * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kXY, kXYElems * 4}};
  }

 private:
  static constexpr std::uint64_t kFuncPairs = 1u << 17;  // 128K targets.
};

}  // namespace

std::unique_ptr<Workload> make_inversek2j() {
  return std::make_unique<InverseK2jWorkload>();
}

}  // namespace lazydram::workloads
