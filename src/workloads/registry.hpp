// Name-indexed access to all application models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace lazydram::workloads {

/// Names of all registered applications, in Table II presentation order.
std::vector<std::string> all_workload_names();

/// Builds the workload model with `name`; aborts on unknown names.
std::unique_ptr<Workload> make_workload(const std::string& name);

/// Builds every registered workload.
std::vector<std::unique_ptr<Workload>> make_all_workloads();

/// Names of the apps in Fig. 12's population (groups 1-3: medium/high error
/// tolerance).
std::vector<std::string> fig12_workload_names();

/// Names of the Group-4 apps (Fig. 15's delay-only population).
std::vector<std::string> group4_workload_names();

}  // namespace lazydram::workloads
