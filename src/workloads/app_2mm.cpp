// 2MM — two chained matrix multiplications: D = A*B, E = C*D (Polybench).
//
// Table II classification: Group 4; MEDIUM thrashing, Medium delay
// tolerance, Medium activation sensitivity, Low Th_RBL sensitivity, Low
// error tolerance.
//
// Model: like GEMM but blocked more cache-friendlily (8-line B tiles
// instead of a pure column walk) and with the second multiply reading the
// L2-warm intermediate D — less low-RBL traffic overall (Medium thrashing,
// Medium activation sensitivity). Hash-random inputs: Low error tolerance.
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kM = 40;   // Rows of A/C-result blocks per multiply.
constexpr unsigned kN = 512;  // Columns.
constexpr unsigned kK = 512;  // Inner dimension.
constexpr unsigned kJBlocks = kN / 32;

constexpr Addr kA = MiB(16);
constexpr Addr kB = MiB(32);
constexpr Addr kC = MiB(48);
constexpr Addr kD = MiB(64);
constexpr Addr kE = MiB(96);

class TwoMmWorkload final : public Workload {
 public:
  std::string name() const override { return "2MM"; }
  std::string description() const override {
    return "Two matrix multiplications E = C*(A*B) (Polybench)";
  }
  unsigned group() const override { return 4; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kMedium,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kMedium,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kLow};
  }

  unsigned num_warps() const override { return kM * kJBlocks
  * 2; }  // Two multiplies.

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    const bool second = warp >= kM * kJBlocks;  // E = C*D half.
    const unsigned local = warp % (kM * kJBlocks);
    const unsigned jb = local % kJBlocks;
    const unsigned i = local / kJBlocks;

    // Per 8-k block: left-matrix tile (every 16 blocks), right-matrix
    // 8-line block tile, compute; store at the end.
    constexpr unsigned kBlocks = kK / 8;
    constexpr unsigned kStepsPerBlock = 3;
    constexpr unsigned kTotal = kBlocks * kStepsPerBlock + 1;
    if (step >= kTotal) return false;

    if (step == kTotal - 1) {
      const Addr out = second ? kE : kD;
      op = gpu::WarpOp::store_line(
          f32_line(out, static_cast<std::uint64_t>(i) * kN + 32 * jb));
      return true;
    }

    const unsigned blk = step / kStepsPerBlock;
    const Addr left = second ? kC : kA;
    const Addr right = second ? kD : kB;
    switch (step % kStepsPerBlock) {
      case 0:
        if (blk % 16 == 0) {
          op = wide_load(f32_addr(left, static_cast<std::uint64_t>(i) * kK + blk * 8), 4,
                         /*approximable=*/false);
        } else {
          op = gpu::WarpOp::compute(2);
        }
        return true;
      case 1:
        // Right-matrix 8-row block of the jb column strip: one line per k,
        // fetched as an 8-transaction strided op (4KB pitch between lines).
        {
          gpu::WarpOp o;
          o.kind = gpu::WarpOp::Kind::kLoad;
          o.approximable = true;
          o.num_addrs = 8;
          // The second multiply contracts over D's kM rows; wrap the
          // block walk into the right matrix's actual row count.
          const unsigned right_rows = second ? kM : kK;
          for (unsigned r = 0; r < 8; ++r)
            o.addrs[r] = f32_line(
                right,
                ((static_cast<std::uint64_t>(blk) * 8 + r) % right_rows) * kN + 32 * jb);
          op = o;
        }
        return true;
      default:
        op = gpu::WarpOp::compute(8);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_hash_random(image, kA, static_cast<std::uint64_t>(kM) * kK, 0x21, -1.0, 1.0);
    fill_hash_random(image, kB, static_cast<std::uint64_t>(kK) * kN, 0x22, -1.0, 1.0);
    fill_hash_random(image, kC, static_cast<std::uint64_t>(kM) * kK, 0x23, -1.0, 1.0);
  }

  void compute_output(gpu::MemView& view) const override {
    // D = A*B (kM x kN), E = C*D with C (kM x kK=kM? ) — C is kM x kM here:
    // the chained multiply contracts over the first kM rows of D.
    for (unsigned i = 0; i < kM; ++i)
      for (unsigned j = 0; j < kN; ++j) {
        double acc = 0.0;
        for (unsigned k = 0; k < kK; ++k)
          acc += static_cast<double>(
                     view.read_f32(f32_addr(kA, static_cast<std::uint64_t>(i) * kK + k))) *
                 view.read_f32(f32_addr(kB, static_cast<std::uint64_t>(k) * kN + j));
        view.write_f32(f32_addr(kD, static_cast<std::uint64_t>(i) * kN + j),
                       static_cast<float>(acc));
      }
    for (unsigned i = 0; i < kM; ++i)
      for (unsigned j = 0; j < kN; ++j) {
        double acc = 0.0;
        for (unsigned k = 0; k < kM; ++k)
          acc += static_cast<double>(
                     view.read_f32(f32_addr(kC, static_cast<std::uint64_t>(i) * kK + k))) *
                 view.read_f32(f32_addr(kD, static_cast<std::uint64_t>(k) * kN + j));
        view.write_f32(f32_addr(kE, static_cast<std::uint64_t>(i) * kN + j),
                       static_cast<float>(acc));
      }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kE, static_cast<std::uint64_t>(kM) * kN * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kB, static_cast<std::uint64_t>(kK) * kN * 4},
            {kD, static_cast<std::uint64_t>(kM) * kN * 4}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_2mm() { return std::make_unique<TwoMmWorkload>(); }

}  // namespace lazydram::workloads
