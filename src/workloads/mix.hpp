// Multi-tenant workload front-end: N independent clients, each with its own
// kernel mix, arrival process and approximation annotation, multiplexed onto
// the one simulated GPU.
//
// Each tenant owns
//   * a kernel sequence drawn from the registered application models, executed
//     as sequential phases by every warp of the tenant's warp budget,
//   * a closed-loop arrival process: `repeat` iterations of the sequence with
//     an exponential think-time gap (mean `think` core cycles) before each
//     iteration — rate = 1/think requests of work per warp (think=0 degrades
//     to back-to-back batch arrivals, the classic saturation client),
//   * an approximation annotation switch: approx=false strips the kernels'
//     approximable tags, making the tenant's traffic precise-only,
//   * QoS budgets (per-tenant AMS coverage cap, per-tenant DMS delay cap)
//     carried separately through GpuConfig (see gpu::TenantSet).
//
// Tenants occupy disjoint GiB-aligned address windows (tenant i's data lives
// at bias i << kWindowBits), so a (bank,row) group never mixes tenants and
// address-derived ownership (tenant_of_addr) is exact. Tenant 0 is bias-free:
// a one-tenant mix with a default spec replays the inner workload's op stream
// bit-identically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workloads/workload.hpp"

namespace lazydram::workloads {

/// One client of a multi-tenant run (also the parsed form of the bench's
/// tenant spec grammar, see gpu::parse_tenant_specs).
struct MixTenant {
  std::string name;                  ///< Display name; defaults to the kernel list.
  std::vector<std::string> kernels;  ///< Registered workload names (sequential phases).
  unsigned warps = 0;                ///< Warp budget; 0 = max over the kernels' grids.
  unsigned repeat = 1;               ///< Closed-loop iterations of the sequence.
  Cycle think = 0;                   ///< Mean think-time (core cycles) per iteration.
  bool approx = true;                ///< Honor the kernels' approximable annotations.
  double coverage_cap = -1.0;        ///< Per-tenant AMS budget (<0 inherits global).
  Cycle dms_delay_cap = kNeverCycle; ///< Per-tenant DMS delay cap (kNeverCycle = none).
};

class MixWorkload : public Workload {
 public:
  /// Tenant address windows are (1 << kWindowBits)-byte aligned.
  static constexpr unsigned kWindowBits = 30;  // 1 GiB per tenant.

  /// `seed` feeds the think-time hash RNG (deterministic per
  /// (seed, tenant, warp, iteration)).
  explicit MixWorkload(std::vector<MixTenant> tenants, std::uint64_t seed = 1);

  static Addr tenant_base(TenantId t) { return static_cast<Addr>(t) << kWindowBits; }

  // --- Workload interface ---
  std::string name() const override;
  std::string description() const override;
  unsigned group() const override { return 1; }
  FeatureTargets targets() const override { return FeatureTargets{}; }

  unsigned num_warps() const override { return total_warps_; }
  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override;

  unsigned num_tenants() const override {
    return static_cast<unsigned>(tenants_.size());
  }
  TenantId tenant_of_warp(unsigned warp) const override;
  TenantId tenant_of_addr(Addr addr) const override;
  std::string tenant_name(TenantId t) const override { return tenants_[t].spec.name; }

  void init_memory(gpu::MemoryImage& image) const override;
  void compute_output(gpu::MemView& view) const override;
  std::vector<AddrRange> output_ranges() const override;
  std::vector<AddrRange> approximable_ranges() const override;

  // --- Per-tenant introspection ---
  const MixTenant& tenant(TenantId t) const { return tenants_[t].spec; }
  unsigned tenant_warps(TenantId t) const { return tenants_[t].warps; }
  unsigned tenant_warp_base(TenantId t) const { return tenants_[t].warp_base; }
  /// Application error of tenant `t`'s outputs alone (same Section II-D
  /// metric as application_error, restricted to the tenant's window).
  double tenant_application_error(TenantId t, const gpu::FunctionalMemory& fmem) const;
  /// All tenants' errors with one pair of functional passes (the per-tenant
  /// form reruns both passes per call).
  std::vector<double> tenant_application_errors(const gpu::FunctionalMemory& fmem) const;

 private:
  struct TenantState {
    MixTenant spec;
    std::vector<std::unique_ptr<Workload>> inners;  ///< One per kernel phase.
    unsigned warps = 0;       ///< Resolved warp budget.
    unsigned warp_base = 0;   ///< First global warp id owned by this tenant.
    Addr base = 0;            ///< Address window bias.
    /// phase_len[k][w]: stream length of kernel k's inner warp w (probed once
    /// at construction; op_at is deterministic so the probe is exact).
    std::vector<std::vector<unsigned>> phase_len;
    unsigned iter_ops_base = 0;  ///< Think ops per iteration (0 or 1).
  };

  /// Exponential think-time sample for (tenant, warp, iteration), clamped to
  /// one WarpOp's cycle range.
  std::uint16_t think_cycles(TenantId t, unsigned warp, unsigned iter) const;
  /// Ops per iteration for the tenant's local warp `w`.
  unsigned iter_len(const TenantState& ts, unsigned local) const;

  std::vector<TenantState> tenants_;
  std::uint64_t seed_;
  unsigned total_warps_ = 0;
};

}  // namespace lazydram::workloads
