// 3MM — three chained matrix multiplications: E=A*B, F=C*D, G=E*F
// (Polybench).
//
// Table II classification: Group 3; LOW thrashing, High delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, High error
// tolerance. Fig. 6(b): ~0.2% of read requests (RBL 1-2) cause ~45% of the
// row activations — DRAM traffic is tiny and compulsory, but what little
// exists is dominated by a handful of stragglers.
//
// Model: small matrices whose working set fits in the L2, streamed as tiles
// with very high arithmetic intensity — DRAM sees only compulsory fills
// plus rare L2-conflict re-fetches (the low-RBL stragglers). The reachable
// AMS coverage is therefore far below 10% (Group 3). Smooth inputs reduced
// through three chained contractions: High error tolerance.
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kN = 160;  // All matrices kN x kN (100KB each).
constexpr unsigned kJBlocks = kN / 32;     // 5 column blocks.
constexpr unsigned kRowsPerWarp = 2;
constexpr unsigned kRepeats = 24;  // Iterative-refinement launches.
constexpr unsigned kWarpsPerStage = (kN / kRowsPerWarp) * kJBlocks;  // 400.

constexpr Addr kA = MiB(16);
constexpr Addr kB = MiB(17);
constexpr Addr kC = MiB(18);
constexpr Addr kD = MiB(19);
constexpr Addr kE = MiB(20);
constexpr Addr kF = MiB(21);
constexpr Addr kG = MiB(22);

struct Stage {
  Addr left, right, out;
};
constexpr Stage kStages[3] = {{kA, kB, kE}, {kC, kD, kF}, {kE, kF, kG}};

class ThreeMmWorkload final : public Workload {
 public:
  std::string name() const override { return "3MM"; }
  std::string description() const override {
    return "Three matrix multiplications G = (A*B)*(C*D) (Polybench)";
  }
  unsigned group() const override { return 3; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kLow,
            .delay_tolerance = Level::kHigh,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kHigh};
  }

  unsigned num_warps() const override { return 3 * kWarpsPerStage; }  // 1200.

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    const unsigned stage_idx = warp / kWarpsPerStage;
    const unsigned local = warp % kWarpsPerStage;
    const unsigned jb = local % kJBlocks;
    const unsigned i0 = (local / kJBlocks) * kRowsPerWarp;
    const Stage& st = kStages[stage_idx];

    // Per row: left-row tile (5 lines), right column strip (5 sampled
    // lines), two heavy compute bursts, store.
    constexpr unsigned kStepsPerRow = 5;
    constexpr unsigned kTotal = kRepeats * kRowsPerWarp * kStepsPerRow;
    if (step >= kTotal) return false;

    const unsigned i = i0 + (step / kStepsPerRow) % kRowsPerWarp;
    switch (step % kStepsPerRow) {
      case 0:  // Left matrix row i (160 floats = 5 lines).
        op = wide_load(f32_addr(st.left, static_cast<std::uint64_t>(i) * kN), 5,
                       /*approximable=*/true);
        return true;
      case 1: {  // Right strip: one line per 32 k (5 transactions).
        gpu::WarpOp o;
        o.kind = gpu::WarpOp::Kind::kLoad;
        o.approximable = true;
        o.num_addrs = kJBlocks;
        for (unsigned s = 0; s < kJBlocks; ++s)
          o.addrs[s] =
              f32_line(st.right, (static_cast<std::uint64_t>(s) * 32) * kN + 32 * jb);
        op = o;
        return true;
      }
      case 2:
      case 3:  // Blocked FMA bursts (high arithmetic intensity).
        op = gpu::WarpOp::compute(160);
        return true;
      default:
        // Only the final refinement pass writes results back; earlier
        // passes keep their tiles in registers/L2 (cuts write churn to the
        // compulsory minimum, preserving 3MM's tiny-DRAM-footprint profile).
        if (step / kStepsPerRow >= (kRepeats - 1) * kRowsPerWarp) {
          op = gpu::WarpOp::store_line(
              f32_line(st.out, static_cast<std::uint64_t>(i) * kN + 32 * jb));
        } else {
          op = gpu::WarpOp::compute(4);
        }
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    const std::uint64_t n = static_cast<std::uint64_t>(kN) * kN;
    fill_smooth(image, kA, n, 0.3, 11.0, 1.0);
    fill_smooth(image, kB, n, 0.25, 13.0, 0.9);
    fill_smooth(image, kC, n, 0.3, 17.0, 1.1);
    fill_smooth(image, kD, n, 0.2, 19.0, 0.95);
  }

  void compute_output(gpu::MemView& view) const override {
    const auto matmul = [&](Addr l, Addr r, Addr o) {
      for (unsigned i = 0; i < kN; ++i)
        for (unsigned j = 0; j < kN; ++j) {
          double acc = 0.0;
          for (unsigned k = 0; k < kN; ++k)
            acc += static_cast<double>(
                       view.read_f32(f32_addr(l, static_cast<std::uint64_t>(i) * kN + k))) *
                   view.read_f32(f32_addr(r, static_cast<std::uint64_t>(k) * kN + j));
          view.write_f32(f32_addr(o, static_cast<std::uint64_t>(i) * kN + j),
                         static_cast<float>(acc));
        }
    };
    matmul(kA, kB, kE);
    matmul(kC, kD, kF);
    matmul(kE, kF, kG);
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kG, static_cast<std::uint64_t>(kN) * kN * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    const std::uint64_t bytes = static_cast<std::uint64_t>(kN) * kN * 4;
    return {{kA, bytes}, {kB, bytes}, {kC, bytes}, {kD, bytes},
            {kE, bytes}, {kF, bytes}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_3mm() { return std::make_unique<ThreeMmWorkload>(); }

}  // namespace lazydram::workloads
