// FWT — fast Walsh-Hadamard transform (CUDA SDK).
//
// Table II classification: Group 4; High thrashing, Medium delay tolerance,
// High activation sensitivity, HIGH Th_RBL sensitivity, Low error tolerance.
//
// Model: log2(N) butterfly stages over a 4MB array. Each butterfly loads the
// line pair (i, i XOR 2^s) as one two-transaction op: early stages pair
// lines within the same DRAM row (high locality); late stages pair lines
// hundreds of KB apart — lone scattered reads that produce a fat RBL(1)
// tail (High thrashing, High Th_RBL sensitivity) whose mates (other warps'
// butterflies into the same remote rows) arrive skewed (High activation
// sensitivity). The transform is exact arithmetic over hash-random data:
// approximating any input perturbs many outputs (Low error tolerance).
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kLines = 1u << 15;  // 32768 lines = 4MB, N = 1M floats.
constexpr unsigned kWarps = 1024;
constexpr unsigned kLinesPerWarp = kLines / kWarps;  // 32.
constexpr unsigned kStages = 10;                     // Line-level strides 2^0..2^9.

constexpr Addr kData = MiB(16);
constexpr Addr kOut = MiB(64);

/// Functional model works on a window of the array (the full transform of
/// 1M floats would dominate runtime; 64K floats keeps the same dataflow).
constexpr unsigned kFuncLog2 = 16;
constexpr std::uint64_t kFuncElems = 1u << kFuncLog2;

class FwtWorkload final : public Workload {
 public:
  std::string name() const override { return "FWT"; }
  std::string description() const override { return "Fast Walsh transform (CUDA SDK)"; }
  unsigned group() const override { return 4; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = true,
            .error_tolerance = Level::kLow};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per stage: kLinesPerWarp/2 butterflies, each (pair load, compute),
    // then a tile store of the warp's partition.
    constexpr unsigned kFliesPerStage = kLinesPerWarp / 2;
    constexpr unsigned kStepsPerStage = kFliesPerStage * 2 + 1;
    constexpr unsigned kTotal = kStages * kStepsPerStage;
    if (step >= kTotal) return false;

    const unsigned stage = step / kStepsPerStage;
    const unsigned s = step % kStepsPerStage;
    const unsigned stride = 1u << stage;  // In lines.

    if (s == kStepsPerStage - 1) {
      op = wide_store(kData + static_cast<Addr>(warp) * kLinesPerWarp * kLineBytes, 16);
      return true;
    }

    const unsigned fly = s / 2;
    if (s % 2 == 0) {
      // Butterfly partner pair: lines (base, base XOR stride).
      const unsigned lo =
          (warp * kFliesPerStage + fly) * 2 % kLines;  // Spread butterflies.
      const unsigned line_a = lo & ~stride;
      const unsigned line_b = line_a | stride;
      op.kind = gpu::WarpOp::Kind::kLoad;
      op.approximable = true;
      op.num_addrs = 2;
      op.addrs[0] = kData + static_cast<Addr>(line_a) * kLineBytes;
      op.addrs[1] = kData + static_cast<Addr>(line_b) * kLineBytes;
      return true;
    }
    op = gpu::WarpOp::compute(6);
    return true;
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_hash_random(image, kData, kFuncElems, 0xF7, -1.0, 1.0);
  }

  void compute_output(gpu::MemView& view) const override {
    // In-place iterative Walsh-Hadamard over the functional window, staged
    // through the output array so reads flow through the view (and thus the
    // approximation overlay).
    for (std::uint64_t i = 0; i < kFuncElems; ++i)
      view.write_f32(f32_addr(kOut, i), view.read_f32(f32_addr(kData, i)));
    for (unsigned s = 0; s < kFuncLog2; ++s) {
      const std::uint64_t h = 1ull << s;
      for (std::uint64_t i = 0; i < kFuncElems; i += h * 2) {
        for (std::uint64_t j = i; j < i + h; ++j) {
          const float a = view.read_f32(f32_addr(kOut, j));
          const float b = view.read_f32(f32_addr(kOut, j + h));
          view.write_f32(f32_addr(kOut, j), a + b);
          view.write_f32(f32_addr(kOut, j + h), a - b);
        }
      }
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kOut, kFuncElems * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kData, static_cast<std::uint64_t>(kLines) * kLineBytes}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_fwt() { return std::make_unique<FwtWorkload>(); }

}  // namespace lazydram::workloads
