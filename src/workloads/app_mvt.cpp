// MVT — matrix-vector product and transpose: y1 = A*x1, y2 = A^T*x2
// (Polybench).
//
// Table II classification: Group 2; High thrashing, Medium delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, High error tolerance.
//
// Model: warp i handles row i (for y1) then column i (for y2). The row pass
// streams A[i][*] as 12-line tiles (healthy baseline locality); the column
// pass walks A[k][i] with a 3KB pitch — lone lines whose row mates are the
// *adjacent warps'* columns (i+/-1 share the same lines/chunks), arriving
// skewed: classic DMS-recoverable traffic (High activation sensitivity).
// Both classes sit in RBL(2-8) rows, so lowering Th_RBL below 8 has little
// to win (Low Th_RBL sensitivity). Smooth matrix data reduced over 768-term
// dot products makes approximation nearly invisible (High error tolerance).
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kN = 768;              // A is kN x kN f32 (2.25MB).
constexpr unsigned kColStride = 2;        // Column pass samples every 2nd k.
constexpr unsigned kColSamples = kN / kColStride;

constexpr Addr kA = MiB(16);
constexpr Addr kX1 = MiB(48);
constexpr Addr kX2 = MiB(49);
constexpr Addr kY1 = MiB(52);
constexpr Addr kY2 = MiB(56);

constexpr std::uint16_t kDotCycles = 8;

class MvtWorkload final : public Workload {
 public:
  std::string name() const override { return "MVT"; }
  std::string description() const override {
    return "Matrix-vector product and transpose (Polybench)";
  }
  unsigned group() const override { return 2; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kHigh};
  }

  unsigned num_warps() const override { return kN; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Row pass: 2 x (12-line tile + x1 line + compute) = 6 steps.
    // Column pass: kColSamples x (A[k][i] line + compute) = 192 steps.
    constexpr unsigned kRowSteps = 6;
    constexpr unsigned kColSteps = (kColSamples / 4) * 2;
    constexpr unsigned kTotal = kRowSteps + kColSteps + 2;
    constexpr unsigned kPasses = 2;  // Iterative solver: two sweeps.
    if (step >= kPasses * kTotal) return false;
    step %= kTotal;

    const unsigned i = warp;

    if (step < kRowSteps) {
      const unsigned half = step / 3;
      switch (step % 3) {
        case 0:  // Half of A row i: 12 consecutive lines.
          op = wide_load(
              f32_addr(kA, static_cast<std::uint64_t>(i) * kN + half * (kN / 2)), 12,
              /*approximable=*/true);
          return true;
        case 1:  // x1 segment (L2-resident).
          op = gpu::WarpOp::load_line(f32_line(kX1, half * (kN / 2)), false);
          return true;
        default:
          op = gpu::WarpOp::compute(kDotCycles);
          return true;
      }
    }

    const unsigned s = step - kRowSteps;
    if (s < kColSteps) {
      const unsigned sample = (s / 2) * 4;
      if (s % 2 == 0) {
        // A[k][i]: the 3KB-pitch column walk, four samples per op so the
        // warp keeps several loads in flight (latency tolerance); warps
        // i-1/i+1 are row mates.
        op.kind = gpu::WarpOp::Kind::kLoad;
        op.approximable = true;
        op.num_addrs = 4;
        for (unsigned b = 0; b < 4; ++b) {
          const unsigned k = (sample + b) * kColStride;
          op.addrs[b] = f32_line(kA, static_cast<std::uint64_t>(k % kN) * kN + i);
        }
        return true;
      }
      op = gpu::WarpOp::compute(2 * kDotCycles);
      return true;
    }

    if (step == kTotal - 2) {
      op = gpu::WarpOp::store_line(f32_line(kY1, i));
      return true;
    }
    op = gpu::WarpOp::store_line(f32_line(kY2, i));
    return true;
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_smooth(image, kA, static_cast<std::uint64_t>(kN) * kN, 0.5, 5.0, 2.0);
    fill_smooth(image, kX1, kN, 0.3, 3.0, 1.0);
    fill_smooth(image, kX2, kN, 0.3, 5.0, 1.2);
  }

  void compute_output(gpu::MemView& view) const override {
    for (unsigned i = 0; i < kN; ++i) {
      double y1 = 0.0, y2 = 0.0;
      for (unsigned k = 0; k < kN; ++k) {
        y1 += static_cast<double>(
                  view.read_f32(f32_addr(kA, static_cast<std::uint64_t>(i) * kN + k))) *
              view.read_f32(f32_addr(kX1, k));
        y2 += static_cast<double>(
                  view.read_f32(f32_addr(kA, static_cast<std::uint64_t>(k) * kN + i))) *
              view.read_f32(f32_addr(kX2, k));
      }
      view.write_f32(f32_addr(kY1, i), static_cast<float>(y1));
      view.write_f32(f32_addr(kY2, i), static_cast<float>(y2));
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kY1, kN * 4ull}, {kY2, kN * 4ull}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kA, static_cast<std::uint64_t>(kN) * kN * 4}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_mvt() { return std::make_unique<MvtWorkload>(); }

}  // namespace lazydram::workloads
