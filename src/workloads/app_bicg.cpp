// BICG — the BiCG kernel of the BiCGStab solver: s = A^T*r, q = A*p
// (Polybench).
//
// Table II classification: Group 1; High thrashing, LOW delay tolerance,
// High activation sensitivity, High Th_RBL sensitivity, Medium error
// tolerance.
//
// Model: like the other Polybench matrix kernels, warp i streams row i (for
// q) and column-walks column i (for s), but with almost no compute between
// accesses — the memory bus runs saturated and every added cycle of delay
// stretches the dependent chain (Low delay tolerance). A scattered
// preconditioner-diagonal lookup adds a >10% RBL(1) tail, which is what
// Dyn-AMS's lower Th_RBL monetizes (High Th_RBL sensitivity). Mildly varying
// data keeps the app in the Medium error band.
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kN = 768;
constexpr unsigned kColStride = 3;
constexpr unsigned kColSamples = kN / kColStride;

constexpr Addr kA = MiB(16);
constexpr Addr kP = MiB(48);
constexpr Addr kR = MiB(49);
constexpr Addr kDiag = MiB(64);  // Scattered preconditioner diagonal (2MB).
constexpr std::uint64_t kDiagElems = 1u << 19;
constexpr Addr kS = MiB(80);
constexpr Addr kQ = MiB(84);

class BicgWorkload final : public Workload {
 public:
  std::string name() const override { return "BICG"; }
  std::string description() const override {
    return "BiCG kernel of BiCGStab linear solver (Polybench)";
  }
  unsigned group() const override { return 1; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kLow,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = true,
            .error_tolerance = Level::kMedium};
  }

  unsigned num_warps() const override { return kN; }

  static std::uint64_t diag_index(unsigned warp, unsigned slot) {
    return mix64((static_cast<std::uint64_t>(warp) << 18) | slot) % kDiagElems;
  }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Row pass: 3 x (8-line tile + scattered diag line + compute).
    // Column pass: kColSamples x (column line, every 4th also a diag line).
    constexpr unsigned kRowSteps = 9;
    constexpr unsigned kColSteps = kColSamples * 2;
    constexpr unsigned kTotal = kRowSteps + kColSteps + 2;
    if (step >= kTotal) return false;

    const unsigned i = warp;

    if (step < kRowSteps) {
      const unsigned third = step / 3;
      switch (step % 3) {
        case 0:
          op = wide_load(f32_addr(kA, static_cast<std::uint64_t>(i) * kN + third * 256),
                         8, /*approximable=*/true);
          return true;
        case 1:  // Scattered diagonal lookup: the RBL(1) tail.
          op = gpu::WarpOp::load_line(f32_line(kDiag, diag_index(i, third)),
                                      /*approximable=*/true);
          return true;
        default:
          op = gpu::WarpOp::compute(2);
          return true;
      }
    }

    const unsigned s = step - kRowSteps;
    if (s < kColSteps) {
      if (s % 2 == 0) {
        const unsigned k = (s / 2) * kColStride;
        op = gpu::WarpOp::load_line(
            f32_line(kA, static_cast<std::uint64_t>(k) * kN + i), /*approximable=*/true);
        return true;
      }
      if (s % 8 == 1) {  // Every 4th sample: one more scattered diag line.
        op = gpu::WarpOp::load_line(f32_line(kDiag, diag_index(i, 64 + s / 8)),
                                    /*approximable=*/true);
        return true;
      }
      op = gpu::WarpOp::compute(2);
      return true;
    }

    if (step == kTotal - 2) {
      op = gpu::WarpOp::store_line(f32_line(kQ, i));
      return true;
    }
    op = gpu::WarpOp::store_line(f32_line(kS, i));
    return true;
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_smooth(image, kA, static_cast<std::uint64_t>(kN) * kN, 0.8, 97.0, 1.6);
    fill_smooth(image, kP, kN, 0.4, 13.0, 1.0);
    fill_smooth(image, kR, kN, 0.4, 19.0, 1.1);
    fill_smooth(image, kDiag, kDiagElems, 0.25, 1543.0, 1.0);
  }

  void compute_output(gpu::MemView& view) const override {
    for (unsigned i = 0; i < kN; ++i) {
      double q = 0.0, sv = 0.0;
      for (unsigned k = 0; k < kN; ++k) {
        q += static_cast<double>(
                 view.read_f32(f32_addr(kA, static_cast<std::uint64_t>(i) * kN + k))) *
             view.read_f32(f32_addr(kP, k));
        sv += static_cast<double>(
                  view.read_f32(f32_addr(kA, static_cast<std::uint64_t>(k) * kN + i))) *
              view.read_f32(f32_addr(kR, k));
      }
      // Preconditioner diagonal scaling, averaged over the warp's lookups.
      double d = 0.0;
      for (unsigned slot = 0; slot < 3; ++slot)
        d += view.read_f32(f32_addr(kDiag, diag_index(i, slot)));
      d /= 3.0;
      view.write_f32(f32_addr(kQ, i), static_cast<float>(q * d));
      view.write_f32(f32_addr(kS, i), static_cast<float>(sv * d));
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kS, kN * 4ull}, {kQ, kN * 4ull}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kA, static_cast<std::uint64_t>(kN) * kN * 4}, {kDiag, kDiagElems * 4}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_bicg() { return std::make_unique<BicgWorkload>(); }

}  // namespace lazydram::workloads
