// LPS — 3D Laplace solver (GPGPU-Sim benchmark suite).
//
// Table II classification: Group 1; High thrashing, Medium delay tolerance,
// LOW activation sensitivity, High Th_RBL sensitivity, High error tolerance.
// Fig. 7(a)'s case-study app: DMS barely reduces activations (2% at its MTD
// of 256; 6% at 512 for an 11% IPC loss), while AMS(8) removes 16% of
// activations and even gains IPC.
//
// Model: one Jacobi sweep of a 3D potential field. Warps process 32-cell
// x-segments in a *hashed* order, so concurrent warps work on far-apart
// cells. The in-plane part of the stencil (centre row and the y+/-1 rows,
// six lines) is fetched as ONE multi-transaction op — its same-row lines
// merge at baseline, and no delayed locality remains to recover (Low
// activation sensitivity). The two z-plane neighbours (+/-36KB) are lone
// scattered reads: a fat RBL(1) tail of approximable loads (High thrashing,
// High Th_RBL sensitivity). The smooth field plus an averaging stencil keeps
// value-prediction error small (High error tolerance); a moderate compute
// burst gives Medium delay tolerance.
#include "workloads/apps.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kNx = 96, kNy = 96, kNz = 64;  // ~2.3MB grid.
constexpr Addr kU = MiB(16);
constexpr Addr kOut = MiB(64);
constexpr std::uint64_t kCells = static_cast<std::uint64_t>(kNx) * kNy * kNz;

constexpr unsigned kWarps = 1280;
constexpr std::uint64_t kSegments = kCells / 32;
constexpr std::uint64_t kSegsPerWarp = kSegments / kWarps;

constexpr std::uint16_t kStencilCycles = 16;

constexpr std::uint64_t cell_index(unsigned x, unsigned y, unsigned z) {
  return (static_cast<std::uint64_t>(z) * kNy + y) * kNx + x;
}

/// Hashed segment for (warp, iteration): concurrent warps touch far-apart
/// grid regions (drives addresses only; the functional model is exact).
std::uint64_t segment_of(unsigned warp, std::uint64_t iter) {
  return mix64(static_cast<std::uint64_t>(warp) * kSegsPerWarp + iter) % kSegments;
}

class LpsWorkload final : public Workload {
 public:
  std::string name() const override { return "LPS"; }
  std::string description() const override { return "3D Laplace solver (Jacobi sweep)"; }
  unsigned group() const override { return 1; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kLow,
            .th_rbl_sensitive = true,
            .error_tolerance = Level::kHigh};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per segment: in-plane op (6 lines), z-1 single, z+1 single, compute,
    // store.
    constexpr unsigned kStepsPerSeg = 5;
    const std::uint64_t total = kSegsPerWarp * kStepsPerSeg;
    if (step >= total) return false;

    const std::uint64_t iter = step / kStepsPerSeg;
    const unsigned phase = step % kStepsPerSeg;
    const std::uint64_t seg = segment_of(warp, iter);
    const std::uint64_t base_cell = seg * 32;

    const unsigned x = static_cast<unsigned>(base_cell % kNx);
    const unsigned y = static_cast<unsigned>((base_cell / kNx) % kNy);
    const unsigned z =
        static_cast<unsigned>(base_cell / (static_cast<std::uint64_t>(kNx) * kNy));
    const unsigned ym = y > 0 ? y - 1 : 0;
    const unsigned yp = std::min(kNy - 1, y + 1);
    const unsigned zm = z > 0 ? z - 1 : 0;
    const unsigned zp = std::min(kNz - 1, z + 1);

    switch (phase) {
      case 0: {
        // In-plane fetch: centre row and both y-neighbour rows (2 lines
        // each), one multi-transaction op -> same-row lines merge at
        // baseline.
        op.kind = gpu::WarpOp::Kind::kLoad;
        op.approximable = true;
        op.num_addrs = 6;
        const Addr c = f32_line(kU, cell_index(x, y, z));
        const Addr m = f32_line(kU, cell_index(x, ym, z));
        const Addr p = f32_line(kU, cell_index(x, yp, z));
        op.addrs = {c, c + kLineBytes, m, m + kLineBytes, p, p + kLineBytes};
        return true;
      }
      case 1:  // z-1 plane: lone scattered read (the RBL(1) tail).
        op = gpu::WarpOp::load_line(f32_line(kU, cell_index(x, y, zm)), true);
        return true;
      case 2:  // z+1 plane.
        op = gpu::WarpOp::load_line(f32_line(kU, cell_index(x, y, zp)), true);
        return true;
      case 3:
        op = gpu::WarpOp::compute(kStencilCycles);
        return true;
      default:
        op = gpu::WarpOp::store_line(f32_line(kOut, base_cell));
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    for (unsigned z = 0; z < kNz; ++z)
      for (unsigned y = 0; y < kNy; ++y)
        for (unsigned x = 0; x < kNx; ++x) {
          const double v = 10.0 + 3.0 * std::sin(0.07 * x) * std::cos(0.05 * y) +
                           2.0 * std::sin(0.03 * z + 0.5);
          image.write_f32(f32_addr(kU, cell_index(x, y, z)), static_cast<float>(v));
        }
  }

  void compute_output(gpu::MemView& view) const override {
    const auto clamp = [](int v, int hi) { return std::max(0, std::min(hi - 1, v)); };
    for (unsigned z = 0; z < kNz; ++z)
      for (unsigned y = 0; y < kNy; ++y)
        for (unsigned x = 0; x < kNx; ++x) {
          const auto u = [&](int xi, int yi, int zi) {
            return static_cast<double>(view.read_f32(f32_addr(
                kU, cell_index(static_cast<unsigned>(clamp(xi, kNx)),
                               static_cast<unsigned>(clamp(yi, kNy)),
                               static_cast<unsigned>(clamp(zi, kNz))))));
          };
          const double next =
              (u(x - 1, y, z) + u(x + 1, y, z) + u(x, y - 1, z) + u(x, y + 1, z) +
               u(x, y, z - 1) + u(x, y, z + 1)) /
              6.0;
          view.write_f32(f32_addr(kOut, cell_index(x, y, z)), static_cast<float>(next));
        }
  }

  std::vector<AddrRange> output_ranges() const override { return {{kOut, kCells * 4}}; }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kU, kCells * 4}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_lps() { return std::make_unique<LpsWorkload>(); }

}  // namespace lazydram::workloads
