#include "workloads/workload.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace lazydram::workloads {

const char* level_name(Level level) {
  switch (level) {
    case Level::kLow: return "Low";
    case Level::kMedium: return "Medium";
    case Level::kHigh: return "High";
  }
  return "?";
}

double average_relative_error(const gpu::MemView& exact, const gpu::MemView& approx,
                              const std::vector<AddrRange>& ranges) {
  double error_sum = 0.0;
  std::uint64_t count = 0;
  for (const AddrRange& range : ranges) {
    LD_ASSERT_MSG(range.bytes % 4 == 0, "output ranges must be f32 arrays");
    for (Addr a = range.base; a < range.base + range.bytes; a += 4) {
      const float e = exact.read_f32(a);
      const float p = approx.read_f32(a);
      if (!std::isfinite(e) || !std::isfinite(p)) {
        error_sum += 1.0;  // Non-finite divergence counts as 100% error.
        ++count;
        continue;
      }
      const double denom = std::abs(static_cast<double>(e));
      const double diff = std::abs(static_cast<double>(p) - static_cast<double>(e));
      // Guard tiny denominators so near-zero outputs do not explode the
      // relative metric (standard practice in approximate-computing evals).
      error_sum += std::min(1.0, diff / std::max(denom, 1e-6));
      ++count;
    }
  }
  return count == 0 ? 0.0 : error_sum / static_cast<double>(count);
}

double Workload::application_error(const gpu::FunctionalMemory& fmem) const {
  // Exact pass: pristine image, no overlay.
  gpu::MemoryImage exact_img(fmem.image());
  gpu::MemView exact_view(exact_img, nullptr);
  compute_output(exact_view);

  // Approximate pass: every read consults the VP overlay first.
  gpu::MemoryImage approx_img(fmem.image());
  gpu::MemView approx_view(approx_img, &fmem.overlay());
  compute_output(approx_view);

  // Average relative error over all declared f32 outputs, reading each
  // output the way a consumer would (through the respective view).
  return average_relative_error(exact_view, approx_view, output_ranges());
}

bool Workload::is_approximable(Addr addr) const {
  for (const AddrRange& range : approximable_ranges())
    if (range.contains(addr)) return true;
  return false;
}

}  // namespace lazydram::workloads
