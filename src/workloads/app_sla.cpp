// SLA — scan (prefix sum) of large arrays (GPGPU-Sim benchmark suite).
//
// Table II classification: Group 4; LOW thrashing, High delay tolerance,
// Medium activation sensitivity, Low Th_RBL sensitivity, Low error
// tolerance.
//
// Model: a work-efficient block scan — each warp loads a 16-line block,
// runs an up-sweep/down-sweep compute phase, stores the scanned block, and
// finally streams the block-sums array. Pure wide sequential streaming
// means almost every activation serves many requests (Low thrashing); the
// remaining gains from delay come from fusing consecutive blocks' rows
// (Medium activation sensitivity). Prefix sums accumulate any perturbation
// across the whole array over hash-random data: Low error tolerance.
#include "workloads/apps.hpp"

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kWarps = 1280;
constexpr unsigned kBlockLines = 16;
constexpr unsigned kBlocksPerWarp = 4;

constexpr Addr kIn = MiB(16);
constexpr Addr kOut = MiB(64);
constexpr Addr kSums = MiB(112);
constexpr std::uint64_t kElems =
    static_cast<std::uint64_t>(kWarps) * kBlocksPerWarp * kBlockLines * kF32PerLine;

class SlaWorkload final : public Workload {
 public:
  std::string name() const override { return "SLA"; }
  std::string description() const override {
    return "Scan of large arrays (GPGPU-Sim suite)";
  }
  unsigned group() const override { return 4; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kLow,
            .delay_tolerance = Level::kHigh,
            .activation_sensitivity = Level::kMedium,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kLow};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per block: load tile, up-sweep, down-sweep, store tile; then one
    // block-sums pass (load + compute).
    constexpr unsigned kStepsPerBlock = 4;
    constexpr unsigned kTotal = kBlocksPerWarp * kStepsPerBlock + 2;
    if (step >= kTotal) return false;

    if (step >= kBlocksPerWarp * kStepsPerBlock) {
      if (step % 2 == 0) {
        op = gpu::WarpOp::load_line(kSums + static_cast<Addr>(warp / 32) * kLineBytes,
                                    /*approximable=*/false);
      } else {
        op = gpu::WarpOp::compute(30);
      }
      return true;
    }

    const unsigned blk = step / kStepsPerBlock;
    const Addr off =
        (static_cast<Addr>(warp) * kBlocksPerWarp + blk) * kBlockLines * kLineBytes;
    switch (step % kStepsPerBlock) {
      case 0:
        op = wide_load(kIn + off, kBlockLines, /*approximable=*/true);
        return true;
      case 1:  // Up-sweep.
        op = gpu::WarpOp::compute(60);
        return true;
      case 2:  // Down-sweep.
        op = gpu::WarpOp::compute(60);
        return true;
      default:
        op = wide_store(kOut + off, kBlockLines);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    fill_hash_random(image, kIn, kFuncElems, 0x51A, -0.5, 1.5);
  }

  void compute_output(gpu::MemView& view) const override {
    double running = 0.0;
    for (std::uint64_t i = 0; i < kFuncElems; ++i) {
      running += view.read_f32(f32_addr(kIn, i));
      view.write_f32(f32_addr(kOut, i), static_cast<float>(running));
    }
  }

  std::vector<AddrRange> output_ranges() const override {
    return {{kOut, kFuncElems * 4}};
  }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kIn, kElems * 4}};
  }

 private:
  static constexpr std::uint64_t kFuncElems = 1u << 19;  // 512K-element window.
};

}  // namespace

std::unique_ptr<Workload> make_sla() { return std::make_unique<SlaWorkload>(); }

}  // namespace lazydram::workloads
