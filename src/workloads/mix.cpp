#include "workloads/mix.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "workloads/registry.hpp"

namespace lazydram::workloads {

namespace {

/// splitmix64: deterministic, platform-independent hash mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

MixWorkload::MixWorkload(std::vector<MixTenant> tenants, std::uint64_t seed)
    : seed_(seed) {
  LD_ASSERT_MSG(!tenants.empty(), "a mix needs at least one tenant");
  tenants_.reserve(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    TenantState ts;
    ts.spec = std::move(tenants[i]);
    LD_ASSERT_MSG(!ts.spec.kernels.empty(), "a tenant needs at least one kernel");
    LD_ASSERT_MSG(ts.spec.repeat >= 1, "repeat must be >= 1");
    if (ts.spec.name.empty()) {
      for (const std::string& k : ts.spec.kernels) {
        if (!ts.spec.name.empty()) ts.spec.name += '+';
        ts.spec.name += k;
      }
    }
    ts.base = tenant_base(static_cast<TenantId>(i));
    ts.warp_base = total_warps_;
    ts.iter_ops_base = ts.spec.think > 0 ? 1 : 0;

    unsigned max_inner_warps = 0;
    for (const std::string& kernel : ts.spec.kernels) {
      std::unique_ptr<Workload> inner = make_workload(kernel);
      const unsigned inner_warps = inner->num_warps();
      if (inner_warps > max_inner_warps) max_inner_warps = inner_warps;

      // The tenant's window must contain the kernel's whole footprint.
      for (const AddrRange& r : inner->output_ranges())
        LD_ASSERT_MSG(r.base + r.bytes <= (Addr{1} << kWindowBits),
                      "kernel footprint exceeds the tenant address window");

      // Probe each inner warp's stream length once; op_at is deterministic
      // and side-effect free, so the probed length is exact.
      std::vector<unsigned> lens(inner_warps, 0);
      gpu::WarpOp op;
      for (unsigned w = 0; w < inner_warps; ++w) {
        unsigned n = 0;
        while (inner->op_at(w, n, op)) ++n;
        lens[w] = n;
      }
      ts.phase_len.push_back(std::move(lens));
      ts.inners.push_back(std::move(inner));
    }

    ts.warps = ts.spec.warps == 0 ? max_inner_warps : ts.spec.warps;
    LD_ASSERT_MSG(ts.warps > 0, "tenant resolved to zero warps");
    total_warps_ += ts.warps;
    tenants_.push_back(std::move(ts));
  }
}

std::string MixWorkload::name() const {
  std::string n = "mix[";
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (i > 0) n += ';';
    n += tenants_[i].spec.name;
  }
  return n + "]";
}

std::string MixWorkload::description() const {
  return "multi-tenant mix of " + std::to_string(tenants_.size()) + " client(s)";
}

TenantId MixWorkload::tenant_of_warp(unsigned warp) const {
  LD_ASSERT(warp < total_warps_);
  for (std::size_t i = tenants_.size(); i-- > 0;)
    if (warp >= tenants_[i].warp_base) return static_cast<TenantId>(i);
  return 0;
}

TenantId MixWorkload::tenant_of_addr(Addr addr) const {
  const Addr window = addr >> kWindowBits;
  const Addr last = static_cast<Addr>(tenants_.size() - 1);
  return static_cast<TenantId>(window < last ? window : last);
}

std::uint16_t MixWorkload::think_cycles(TenantId t, unsigned warp, unsigned iter) const {
  const MixTenant& spec = tenants_[t].spec;
  const std::uint64_t h =
      mix64(seed_ ^ (static_cast<std::uint64_t>(t) << 48) ^
            (static_cast<std::uint64_t>(warp) << 24) ^ iter);
  // Map to (0, 1]: never exactly 0, so log() is finite.
  const double u =
      (static_cast<double>(h >> 11) + 1.0) / 9007199254740993.0;  // 2^53 + 1
  const double gap = -static_cast<double>(spec.think) * std::log(u);
  if (gap < 1.0) return 1;
  if (gap >= 65535.0) return 65535;
  return static_cast<std::uint16_t>(gap);
}

unsigned MixWorkload::iter_len(const TenantState& ts, unsigned local) const {
  unsigned len = ts.iter_ops_base;
  for (const std::vector<unsigned>& lens : ts.phase_len)
    if (local < lens.size()) len += lens[local];
  return len;
}

bool MixWorkload::op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const {
  const TenantId t = tenant_of_warp(warp);
  const TenantState& ts = tenants_[t];
  const unsigned local = warp - ts.warp_base;

  const unsigned per_iter = iter_len(ts, local);
  if (per_iter == ts.iter_ops_base) return false;  // No kernel work for this warp.

  const unsigned iter = step / per_iter;
  if (iter >= ts.spec.repeat) return false;
  unsigned pos = step % per_iter;

  if (pos < ts.iter_ops_base) {
    // Arrival gap: exponential think time before this iteration's burst
    // (staggers the initial arrivals too).
    op = gpu::WarpOp::compute(think_cycles(t, local, iter));
    return true;
  }
  pos -= ts.iter_ops_base;

  for (std::size_t k = 0; k < ts.inners.size(); ++k) {
    if (local >= ts.phase_len[k].size()) continue;  // Kernel grid smaller than budget.
    const unsigned len = ts.phase_len[k][local];
    if (pos >= len) {
      pos -= len;
      continue;
    }
    const bool ok = ts.inners[k]->op_at(local, pos, op);
    LD_ASSERT_MSG(ok, "probed stream length disagrees with op_at");
    // Rebase the op into the tenant's address window; strip the
    // approximation annotation for precise-only tenants.
    if (ts.base != 0)
      for (unsigned a = 0; a < op.num_addrs; ++a) op.addrs[a] += ts.base;
    if (!ts.spec.approx) op.approximable = false;
    return true;
  }
  LD_ASSERT_MSG(false, "op index beyond the tenant's stream");
  return false;
}

void MixWorkload::init_memory(gpu::MemoryImage& image) const {
  for (const TenantState& ts : tenants_) {
    // Phases share the tenant's window; a later kernel's initialization wins
    // on overlap, mirroring phase order at runtime.
    for (const auto& inner : ts.inners) {
      gpu::MemoryImage scratch;
      inner->init_memory(scratch);
      image.blit_from(scratch, ts.base);
    }
  }
}

void MixWorkload::compute_output(gpu::MemView& view) const {
  // The functional dataflow runs once per kernel regardless of `repeat`:
  // iterations re-run the same op stream, so the app's outputs are those of
  // a single pass.
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    gpu::MemView biased = view.with_bias(tenants_[i].base);
    for (const auto& inner : tenants_[i].inners) inner->compute_output(biased);
  }
}

std::vector<AddrRange> MixWorkload::output_ranges() const {
  std::vector<AddrRange> out;
  for (const TenantState& ts : tenants_)
    for (const auto& inner : ts.inners)
      for (AddrRange r : inner->output_ranges()) {
        r.base += ts.base;
        out.push_back(r);
      }
  return out;
}

std::vector<AddrRange> MixWorkload::approximable_ranges() const {
  std::vector<AddrRange> out;
  for (const TenantState& ts : tenants_) {
    if (!ts.spec.approx) continue;  // Precise-only tenant: nothing annotated.
    for (const auto& inner : ts.inners)
      for (AddrRange r : inner->approximable_ranges()) {
        r.base += ts.base;
        out.push_back(r);
      }
  }
  return out;
}

std::vector<double> MixWorkload::tenant_application_errors(
    const gpu::FunctionalMemory& fmem) const {
  gpu::MemoryImage exact_img(fmem.image());
  gpu::MemView exact_view(exact_img, nullptr);
  compute_output(exact_view);

  gpu::MemoryImage approx_img(fmem.image());
  gpu::MemView approx_view(approx_img, &fmem.overlay());
  compute_output(approx_view);

  std::vector<double> errors;
  errors.reserve(tenants_.size());
  for (const TenantState& ts : tenants_) {
    std::vector<AddrRange> ranges;
    for (const auto& inner : ts.inners)
      for (AddrRange r : inner->output_ranges()) {
        r.base += ts.base;
        ranges.push_back(r);
      }
    errors.push_back(average_relative_error(exact_view, approx_view, ranges));
  }
  return errors;
}

double MixWorkload::tenant_application_error(TenantId t,
                                             const gpu::FunctionalMemory& fmem) const {
  return tenant_application_errors(fmem)[t];
}

}  // namespace lazydram::workloads
