// 3DCONV — 3D convolution (Polybench).
//
// Table II classification: Group 2; High thrashing, Medium delay tolerance,
// High activation sensitivity, Low Th_RBL sensitivity, Medium error
// tolerance.
//
// Model: a 3x3x3 convolution over a 3D volume. Warps sweep x-rows in plane
// order: the in-plane rows (y-1, y, y+1; six lines) come as one
// multi-transaction op, while the six z-neighbour rows of the two adjacent
// planes are separate two-line loads whose row mates are the *other warps*
// working on neighbouring rows of the same planes — skewed arrivals that
// delay consolidates (High activation sensitivity). Unlike LPS, warps are
// assigned plane-contiguously, so plane traffic is dense and nearly all
// activations sit in RBL(2-8) rows (Low Th_RBL sensitivity). A 27-point
// weighted average over moderately varying data puts the output error in
// the Medium band.
#include "workloads/apps.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kNx = 128, kNy = 96, kNz = 48;  // ~2.25MB volume.
constexpr Addr kV = MiB(16);
constexpr Addr kOut = MiB(64);
constexpr std::uint64_t kCells = static_cast<std::uint64_t>(kNx) * kNy * kNz;

constexpr unsigned kWarps = 1152;
constexpr std::uint64_t kRows = kCells / kNx;  // 4608 x-rows.
constexpr std::uint64_t kRowsPerWarp = kRows / kWarps;

constexpr std::uint64_t cell_index(unsigned x, unsigned y, unsigned z) {
  return (static_cast<std::uint64_t>(z) * kNy + y) * kNx + x;
}

class Conv3dWorkload final : public Workload {
 public:
  std::string name() const override { return "3DCONV"; }
  std::string description() const override { return "3D convolution (Polybench)"; }
  unsigned group() const override { return 2; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kHigh,
            .delay_tolerance = Level::kMedium,
            .activation_sensitivity = Level::kHigh,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kMedium};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per x-row: in-plane op, z-1 rows op, z+1 rows op, compute, store.
    constexpr unsigned kStepsPerRow = 5;
    const std::uint64_t total = kRowsPerWarp * kStepsPerRow;
    if (step >= total) return false;

    const std::uint64_t iter = step / kStepsPerRow;
    const unsigned phase = step % kStepsPerRow;
    // Plane-contiguous assignment: warp w owns rows [w*rpw, (w+1)*rpw).
    const std::uint64_t row = static_cast<std::uint64_t>(warp) * kRowsPerWarp + iter;
    const unsigned y = static_cast<unsigned>(row % kNy);
    const unsigned z = static_cast<unsigned>(row / kNy);
    const unsigned ym = y > 0 ? y - 1 : 0, yp = std::min(kNy - 1, y + 1);
    const unsigned zm = z > 0 ? z - 1 : 0, zp = std::min(kNz - 1, z + 1);

    // An x-row is kNx*4 = 512B = 4 lines; fetch the first 2 lines of each of
    // the three y-rows of plane `zz` as one 6-transaction op.
    const auto rows_op = [&](unsigned zz) {
      gpu::WarpOp o;
      o.kind = gpu::WarpOp::Kind::kLoad;
      o.approximable = true;
      o.num_addrs = 6;
      unsigned n = 0;
      for (unsigned yy : {ym, y, yp}) {
        const Addr base = f32_line(kV, cell_index(0, yy, zz));
        o.addrs[n++] = base;
        o.addrs[n++] = base + kLineBytes;
      }
      return o;
    };

    switch (phase) {
      case 0:  // In-plane: y-1, y, y+1 rows of plane z.
        op = rows_op(z);
        return true;
      case 1:  // The three rows of plane z-1.
        op = rows_op(zm);
        return true;
      case 2:  // The three rows of plane z+1.
        op = rows_op(zp);
        return true;
      case 3:
        op = gpu::WarpOp::compute(14);
        return true;
      default:
        op = wide_store(f32_line(kOut, cell_index(0, y, z)), 4);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    for (unsigned z = 0; z < kNz; ++z)
      for (unsigned y = 0; y < kNy; ++y)
        for (unsigned x = 0; x < kNx; ++x) {
          // Smooth base with per-cell ripple: Medium prediction error.
          const double v = 4.0 + 2.0 * std::sin(0.09 * x + 0.04 * z) +
                           0.8 * mix_unit(cell_index(x, y, z) * 0x9e37u);
          image.write_f32(f32_addr(kV, cell_index(x, y, z)), static_cast<float>(v));
        }
  }

  void compute_output(gpu::MemView& view) const override {
    const auto clamp = [](int v, int hi) { return std::max(0, std::min(hi - 1, v)); };
    for (unsigned z = 0; z < kNz; ++z)
      for (unsigned y = 0; y < kNy; ++y)
        for (unsigned x = 0; x < kNx; ++x) {
          double acc = 0.0;
          for (int dz = -1; dz <= 1; ++dz)
            for (int dy = -1; dy <= 1; ++dy)
              for (int dx = -1; dx <= 1; ++dx) {
                const double w =
                    1.0 / (1.0 + std::abs(dx) + std::abs(dy) + std::abs(dz));
                acc += w * view.read_f32(f32_addr(
                               kV, cell_index(static_cast<unsigned>(clamp(
                                                  static_cast<int>(x) + dx, kNx)),
                                              static_cast<unsigned>(clamp(
                                                  static_cast<int>(y) + dy, kNy)),
                                              static_cast<unsigned>(clamp(
                                                  static_cast<int>(z) + dz, kNz)))));
              }
          view.write_f32(f32_addr(kOut, cell_index(x, y, z)), static_cast<float>(acc / 27.0));
        }
  }

  std::vector<AddrRange> output_ranges() const override { return {{kOut, kCells * 4}}; }

  std::vector<AddrRange> approximable_ranges() const override {
    return {{kV, kCells * 4}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_3dconv() { return std::make_unique<Conv3dWorkload>(); }

}  // namespace lazydram::workloads
