// Workload (GPGPU application model) interface.
//
// Each of the paper's 20 applications (Table II) is modeled as:
//   * a timed half — per-warp op streams (op_at) that reproduce the app's
//     memory access pattern, arithmetic intensity and footprint, and thereby
//     its Table II/III feature classification, and
//   * a functional half — input initialization (init_memory), a dataflow
//     model (compute_output) and declared output ranges, from which the
//     application error under value approximation is measured exactly as the
//     paper defines it (average relative error of outputs).
//
// The `#pragma pred_var` annotations of Listing 1 become approximable
// address ranges; op streams tag loads from those ranges.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "gpu/functional_memory.hpp"
#include "gpu/warp.hpp"

namespace lazydram::workloads {

/// Table III intensity levels.
enum class Level : std::uint8_t { kLow, kMedium, kHigh };

const char* level_name(Level level);

/// The application's Table II classification (used by the characterization
/// bench to validate that the model reproduces the paper's feature vector).
struct FeatureTargets {
  Level thrashing = Level::kLow;            ///< % requests in RBL(1-8) rows.
  Level delay_tolerance = Level::kLow;      ///< Maximum tolerable delay band.
  Level activation_sensitivity = Level::kLow;  ///< Act. reduction at DMS(2048).
  bool th_rbl_sensitive = false;            ///< Gains from lowering Th_RBL.
  Level error_tolerance = Level::kLow;      ///< App error band at 10% coverage.
};

/// Half-open byte range [base, base + bytes).
struct AddrRange {
  Addr base = 0;
  std::uint64_t bytes = 0;
  bool contains(Addr a) const { return a >= base && a - base < bytes; }
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  /// Result-presentation group 1-4 (Section V).
  virtual unsigned group() const = 0;
  virtual FeatureTargets targets() const = 0;

  // --- Timed half ---
  virtual unsigned num_warps() const = 0;
  /// Produces warp `warp`'s op at position `step`; returns false when the
  /// warp's program has ended. Must be deterministic and side-effect free.
  virtual bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const = 0;

  // --- Tenancy (multi-stream front-end; see workloads::MixWorkload) ---
  /// Number of independent clients multiplexed by this workload. Plain
  /// single-application models keep the default of 1.
  virtual unsigned num_tenants() const { return 1; }
  /// Owning tenant of a warp id in [0, num_warps()).
  virtual TenantId tenant_of_warp(unsigned warp) const {
    (void)warp;
    return 0;
  }
  /// Display name of a tenant (mixes return the client's spec name).
  virtual std::string tenant_name(TenantId t) const {
    return "t" + std::to_string(t);
  }
  /// Owning tenant of a byte address (tenants occupy disjoint address
  /// windows, so ownership is derivable from the address alone — used to tag
  /// L2 writebacks that no longer carry an originating packet).
  virtual TenantId tenant_of_addr(Addr addr) const {
    (void)addr;
    return 0;
  }

  // --- Functional half ---
  virtual void init_memory(gpu::MemoryImage& image) const = 0;
  /// Executes the app's dataflow against `view` (reads consult the
  /// approximate overlay when present; writes land in the view's storage).
  virtual void compute_output(gpu::MemView& view) const = 0;
  /// f32 arrays whose values constitute the application output.
  virtual std::vector<AddrRange> output_ranges() const = 0;
  /// Annotated safe-to-approximate input regions (Listing 1).
  virtual std::vector<AddrRange> approximable_ranges() const = 0;

  /// Average relative error between the exact and approximate outputs
  /// (Section II-D). Default: elementwise mean over all output_ranges().
  virtual double application_error(const gpu::FunctionalMemory& fmem) const;

  /// True iff `addr` lies in an annotated approximable range.
  bool is_approximable(Addr addr) const;
};

/// Average relative error between two computed views over `ranges`
/// (Section II-D: elementwise mean of min(1, |approx - exact| / |exact|),
/// with non-finite divergence counted as 100%). Shared by the default
/// application_error and per-tenant error slices.
double average_relative_error(const gpu::MemView& exact, const gpu::MemView& approx,
                              const std::vector<AddrRange>& ranges);

}  // namespace lazydram::workloads
