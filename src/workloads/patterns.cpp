#include "workloads/patterns.hpp"

#include <cmath>

namespace lazydram::workloads {

void fill_smooth(gpu::MemoryImage& image, Addr base, std::uint64_t n, double amplitude,
                 double freq, double offset) {
  constexpr double kTwoPi = 6.283185307179586;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double phase = kTwoPi * freq * static_cast<double>(i) / static_cast<double>(n);
    image.write_f32(f32_addr(base, i),
                    static_cast<float>(offset + amplitude * std::sin(phase)));
  }
}

void fill_hash_random(gpu::MemoryImage& image, Addr base, std::uint64_t n,
                      std::uint64_t seed, double lo, double hi) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const double u = mix_unit(seed * 0x9e3779b97f4a7c15ULL + i);
    image.write_f32(f32_addr(base, i), static_cast<float>(lo + (hi - lo) * u));
  }
}

void fill_linear(gpu::MemoryImage& image, Addr base, std::uint64_t n, double start,
                 double slope) {
  for (std::uint64_t i = 0; i < n; ++i)
    image.write_f32(f32_addr(base, i),
                    static_cast<float>(start + slope * static_cast<double>(i)));
}

}  // namespace lazydram::workloads
