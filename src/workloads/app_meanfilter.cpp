// meanfilter — convolution filter for noise reduction (AxBench).
//
// Table II classification: Group 3; LOW thrashing, High delay tolerance,
// LOW activation sensitivity, Low Th_RBL sensitivity, High error tolerance.
//
// Model: a 3x3 box filter over a 512x512 image stored with the output buffer
// interleaved row by row (each 4KB slot holds an input row and its output
// row — the natural in/out pair allocation). Warps own contiguous row bands
// and fetch the three input rows of each output row as two 24-transaction
// spans: DRAM activations serve many requests each (Low thrashing) and
// arrive fully batched, leaving nothing for delay to consolidate (LOW
// activation sensitivity). Because every DRAM row also carries output-row
// writes, almost no row group is all-reads and the reachable AMS coverage
// stays far below 10% (Group 3). Long averaging bursts give High delay
// tolerance; a box filter over a smooth image is the friendliest case for
// value prediction (High error tolerance).
#include "workloads/apps.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "workloads/image.hpp"
#include "workloads/patterns.hpp"

namespace lazydram::workloads {
namespace {

constexpr unsigned kW = 512, kH = 512;
constexpr Addr kBuf = MiB(16);
constexpr std::uint64_t kSlot = 4096;  // Per row: 2KB input + 2KB output.

constexpr Addr img_row(unsigned y) { return kBuf + y * kSlot; }
constexpr Addr out_row(unsigned y) { return kBuf + y * kSlot + 2048; }
constexpr Addr img_px(unsigned x, unsigned y) { return img_row(y) + 4ull * x; }
constexpr Addr out_px(unsigned x, unsigned y) { return out_row(y) + 4ull * x; }

constexpr unsigned kWarps = 256;
constexpr unsigned kPasses = 2;
constexpr std::uint64_t kRowsPerWarp = kPasses * kH / kWarps;

class MeanFilterWorkload final : public Workload {
 public:
  std::string name() const override { return "meanfilter"; }
  std::string description() const override {
    return "Convolution filter for noise reduction (AxBench)";
  }
  unsigned group() const override { return 3; }

  FeatureTargets targets() const override {
    return {.thrashing = Level::kLow,
            .delay_tolerance = Level::kHigh,
            .activation_sensitivity = Level::kLow,
            .th_rbl_sensitive = false,
            .error_tolerance = Level::kHigh};
  }

  unsigned num_warps() const override { return kWarps; }

  bool op_at(unsigned warp, unsigned step, gpu::WarpOp& op) const override {
    // Per output row: two 24-line input spans, two averaging bursts, one
    // 16-line output store.
    constexpr unsigned kStepsPerRow = 5;
    const std::uint64_t total = kRowsPerWarp * kStepsPerRow;
    if (step >= total) return false;

    const std::uint64_t iter = step / kStepsPerRow;
    const unsigned phase = step % kStepsPerRow;
    const unsigned sy =
        static_cast<unsigned>((static_cast<std::uint64_t>(warp) * kRowsPerWarp + iter) % kH);
    const unsigned ym = sy > 0 ? sy - 1 : 0;
    const unsigned yp = std::min(kH - 1, sy + 1);

    switch (phase) {
      case 0:    // First halves of input rows y-1, y, y+1 (3 x 8 lines).
      case 1: {  // Second halves.
        op.kind = gpu::WarpOp::Kind::kLoad;
        op.approximable = true;
        op.num_addrs = 24;
        unsigned n = 0;
        for (const unsigned yy : {ym, sy, yp}) {
          const Addr half = img_row(yy) + phase * 8ull * kLineBytes;
          for (unsigned l = 0; l < 8; ++l) op.addrs[n++] = half + l * kLineBytes;
        }
        return true;
      }
      case 2:
      case 3:
        op = gpu::WarpOp::compute(200);
        return true;
      default:
        op = wide_store(out_row(sy), 16);
        return true;
    }
  }

  void init_memory(gpu::MemoryImage& image) const override {
    // A gentle image (few features): the box filter's High error tolerance.
    fill_test_image(image, kBuf, kW, kH, /*seed=*/0x3EA, /*features=*/4, kSlot);
  }

  void compute_output(gpu::MemView& view) const override {
    const auto clamp = [](int v, int hi) { return std::max(0, std::min(hi - 1, v)); };
    for (unsigned y = 0; y < kH; ++y)
      for (unsigned x = 0; x < kW; ++x) {
        double acc = 0.0;
        for (int dy = -1; dy <= 1; ++dy)
          for (int dx = -1; dx <= 1; ++dx)
            acc += view.read_f32(
                img_px(static_cast<unsigned>(clamp(static_cast<int>(x) + dx, kW)),
                       static_cast<unsigned>(clamp(static_cast<int>(y) + dy, kH))));
        view.write_f32(out_px(x, y), static_cast<float>(acc / 9.0));
      }
  }

  std::vector<AddrRange> output_ranges() const override {
    std::vector<AddrRange> out;
    out.reserve(kH);
    for (unsigned y = 0; y < kH; ++y) out.push_back({out_row(y), 2048});
    return out;
  }

  std::vector<AddrRange> approximable_ranges() const override {
    std::vector<AddrRange> in;
    in.reserve(kH);
    for (unsigned y = 0; y < kH; ++y) in.push_back({img_row(y), 2048});
    return in;
  }
};

}  // namespace

std::unique_ptr<Workload> make_meanfilter() {
  return std::make_unique<MeanFilterWorkload>();
}

}  // namespace lazydram::workloads
