#include "dram/address.hpp"

#include "common/assert.hpp"

namespace lazydram {

// Swizzle hashes: GPU memory controllers rotate channel/bank assignment by a
// hash of higher address bits so that power-of-two strides (matrix pitches,
// per-thread block offsets) do not resonate onto a single channel or bank
// (GPGPU-Sim ships the same style of address hashing). Both swizzles are
// *rotations*, so the mapping stays bijective and compose() can invert it.
namespace {

std::uint64_t swizzle_hash(std::uint64_t x) {
  x *= 0x9e3779b97f4a7c15ULL;
  return (x >> 32) ^ (x >> 51);
}

}  // namespace

AddressMapper::AddressMapper(const GpuConfig& cfg)
    : num_channels_(cfg.num_channels),
      banks_(cfg.banks_per_channel),
      groups_(cfg.bank_groups_per_channel),
      row_bytes_(cfg.row_bytes),
      interleave_(cfg.channel_interleave_bytes) {}

DramLocation AddressMapper::map(Addr addr) const {
  const Addr chunk = addr / interleave_;
  const Addr offset_in_chunk = addr % interleave_;
  const Addr super = chunk / num_channels_;  // Chunk group index.

  DramLocation loc;
  // Channel rotation within each group of num_channels_ consecutive chunks.
  loc.channel = static_cast<ChannelId>((chunk + swizzle_hash(super)) % num_channels_);

  const Addr local = super * interleave_ + offset_in_chunk;
  loc.col_byte = static_cast<std::uint32_t>(local % row_bytes_);
  const Addr bank_raw = (local / row_bytes_) % banks_;
  loc.row = local / (static_cast<Addr>(row_bytes_) * banks_);
  // Bank rotation keyed by the row index.
  loc.bank = static_cast<BankId>((bank_raw + swizzle_hash(loc.row)) % banks_);
  loc.bank_group = group_of(loc.bank);
  return loc;
}

Addr AddressMapper::compose(ChannelId channel, BankId bank, RowId row,
                            std::uint32_t col_byte) const {
  LD_ASSERT(channel < num_channels_);
  LD_ASSERT(bank < banks_);
  LD_ASSERT(col_byte < row_bytes_);

  const Addr bank_raw =
      (bank + banks_ - swizzle_hash(row) % banks_) % banks_;
  const Addr local =
      (row * banks_ + bank_raw) * static_cast<Addr>(row_bytes_) + col_byte;
  const Addr super = local / interleave_;
  const Addr offset = local % interleave_;
  const Addr chunk_in_group =
      (channel + num_channels_ - swizzle_hash(super) % num_channels_) % num_channels_;
  return (super * num_channels_ + chunk_in_group) * static_cast<Addr>(interleave_) +
         offset;
}

ChannelId AddressMapper::channel_of(Addr addr) const {
  const Addr chunk = addr / interleave_;
  return static_cast<ChannelId>((chunk + swizzle_hash(chunk / num_channels_)) %
                                num_channels_);
}

}  // namespace lazydram
