// One GDDR5 bank: open-row state machine plus the per-bank timing ledger.
//
// The ledger records, per command type, the earliest memory cycle at which
// that command may legally issue to this bank. Channel-scope constraints
// (tRRD across banks, tCCD within a bank group, data-bus occupancy) are
// enforced by DramChannel, not here.
#pragma once

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace lazydram::dram {

class Bank {
 public:
  explicit Bank(const DramTiming& timing) : t_(timing) {}

  bool row_open() const { return open_row_ != kInvalidRow; }
  RowId open_row() const { return open_row_; }

  // --- Legality (per-bank constraints only) ---
  bool can_activate(Cycle now) const { return !row_open() && now >= next_act_; }
  bool can_precharge(Cycle now) const { return row_open() && now >= next_pre_; }
  bool can_read(Cycle now) const { return row_open() && now >= next_rd_; }
  bool can_write(Cycle now) const { return row_open() && now >= next_wr_; }

  // --- Command execution. Preconditions: the matching can_*() holds. ---

  void activate(RowId row, Cycle now);

  /// Closes the open row. Returns the number of column accesses the closing
  /// activation served (its RBL) and whether it served only reads.
  struct ClosedRow {
    unsigned accesses = 0;
    bool read_only = true;
    RowId row = kInvalidRow;
  };
  ClosedRow precharge(Cycle now);

  /// Issues a RD; returns the cycle the last data beat leaves the pins.
  Cycle read(Cycle now);
  /// Issues a WR; returns the cycle the last data beat is written.
  Cycle write(Cycle now);

  /// Accesses served by the currently open row so far (0 if closed).
  unsigned open_row_accesses() const { return open_accesses_; }
  bool open_row_read_only() const { return open_read_only_; }

  // --- Ledger introspection (earliest per-bank legal cycle per command).
  //     Used by DramChannel::earliest_issue for the controller's retry
  //     memos; each value only ever moves forward as commands issue.
  Cycle next_activate_allowed() const { return next_act_; }
  Cycle next_precharge_allowed() const { return next_pre_; }
  Cycle next_read_allowed() const { return next_rd_; }
  Cycle next_write_allowed() const { return next_wr_; }

  /// End-of-simulation flush: returns the open row's tally as if precharged,
  /// without timing effects. No-op (returns accesses==0) if no row is open.
  ClosedRow flush();

 private:
  DramTiming t_;

  RowId open_row_ = kInvalidRow;
  unsigned open_accesses_ = 0;
  bool open_read_only_ = true;

  Cycle next_act_ = 0;
  Cycle next_pre_ = 0;
  Cycle next_rd_ = 0;
  Cycle next_wr_ = 0;
  Cycle last_act_ = 0;
};

}  // namespace lazydram::dram
