#include "dram/bank.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lazydram::dram {

void Bank::activate(RowId row, Cycle now) {
  LD_ASSERT_MSG(can_activate(now), "ACT issued while illegal");
  open_row_ = row;
  open_accesses_ = 0;
  open_read_only_ = true;
  last_act_ = now;
  next_rd_ = std::max(next_rd_, now + t_.tRCD);
  next_wr_ = std::max(next_wr_, now + t_.tRCD);
  next_pre_ = std::max(next_pre_, now + t_.tRAS);
  // tRC lower-bounds the next ACT regardless of when PRE lands.
  next_act_ = std::max(next_act_, now + t_.tRC);
}

Bank::ClosedRow Bank::precharge(Cycle now) {
  LD_ASSERT_MSG(can_precharge(now), "PRE issued while illegal");
  ClosedRow closed{open_accesses_, open_read_only_, open_row_};
  open_row_ = kInvalidRow;
  open_accesses_ = 0;
  open_read_only_ = true;
  next_act_ = std::max(next_act_, now + t_.tRP);
  return closed;
}

Cycle Bank::read(Cycle now) {
  LD_ASSERT_MSG(can_read(now), "RD issued while illegal");
  ++open_accesses_;
  const Cycle data_end = now + t_.tCL + t_.tBURST;
  next_rd_ = std::max(next_rd_, now + t_.tCCD);
  next_wr_ = std::max(next_wr_, now + t_.tCCD);
  // The row may not close until the read burst has drained.
  next_pre_ = std::max(next_pre_, now + t_.tBURST);
  return data_end;
}

Cycle Bank::write(Cycle now) {
  LD_ASSERT_MSG(can_write(now), "WR issued while illegal");
  ++open_accesses_;
  open_read_only_ = false;
  const Cycle data_end = now + t_.tWL + t_.tBURST;
  next_wr_ = std::max(next_wr_, now + t_.tCCD);
  // Write-to-read turnaround within the bank (tCDLR counts from last data in).
  next_rd_ = std::max(next_rd_, data_end + t_.tCDLR);
  // Write recovery before the row can be precharged.
  next_pre_ = std::max(next_pre_, data_end + t_.tWR);
  return data_end;
}

Bank::ClosedRow Bank::flush() {
  if (!row_open()) return {};
  ClosedRow closed{open_accesses_, open_read_only_, open_row_};
  open_row_ = kInvalidRow;
  open_accesses_ = 0;
  open_read_only_ = true;
  return closed;
}

}  // namespace lazydram::dram
