// Global-address -> DRAM-coordinate mapping.
//
// Table I: "global linear address space is interleaved among partitions in
// chunks of 256 bytes". Within a channel the local address is split
// [row | bank | column] so that a sequential stream walks a whole row before
// moving to the next bank, which is the open-row-friendly layout GPGPU-Sim
// uses by default.
#pragma once

#include "common/config.hpp"
#include "common/types.hpp"

namespace lazydram {

/// Physical coordinates of a byte address.
struct DramLocation {
  ChannelId channel = 0;
  BankId bank = 0;
  unsigned bank_group = 0;
  RowId row = 0;
  std::uint32_t col_byte = 0;  ///< Byte offset within the row.

  bool same_row(const DramLocation& o) const {
    return channel == o.channel && bank == o.bank && row == o.row;
  }
};

class AddressMapper {
 public:
  explicit AddressMapper(const GpuConfig& cfg);

  DramLocation map(Addr addr) const;

  /// Inverse of map(): builds the unique global byte address at the given
  /// coordinates. compose(map(a)) == line/byte-exact round trip (tested).
  Addr compose(ChannelId channel, BankId bank, RowId row, std::uint32_t col_byte) const;

  ChannelId channel_of(Addr addr) const;

  unsigned num_channels() const { return num_channels_; }
  unsigned banks_per_channel() const { return banks_; }
  unsigned row_bytes() const { return row_bytes_; }
  unsigned bank_groups() const { return groups_; }

  /// Bank group of a bank id (banks are group-interleaved: bank % groups).
  unsigned group_of(BankId bank) const { return bank % groups_; }

 private:
  unsigned num_channels_;
  unsigned banks_;
  unsigned groups_;
  unsigned row_bytes_;
  unsigned interleave_;
};

}  // namespace lazydram
