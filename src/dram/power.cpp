#include "dram/power.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace lazydram::dram {

namespace {
/// Relative tolerance of the accountant-vs-oracle reconciliation. The two
/// sides compute the same products in different association orders, so only
/// rounding separates them.
constexpr double kRelTol = 1e-9;

bool close_rel(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= kRelTol * scale;
}
}  // namespace

PowerAccountant::PowerAccountant(const EnergyParams& params, unsigned num_banks)
    : p_(params), banks_(num_banks) {
  LD_ASSERT(num_banks > 0);
}

void PowerAccountant::on_activate(BankId bank, Cycle now) {
  LD_ASSERT(bank < banks_.size());
  LD_ASSERT(!finalized_);
  BankState& b = banks_[bank];
  LD_ASSERT_MSG(!b.active, "ACT on a bank that already has an open row");
  LD_ASSERT(now >= b.since && now >= agg_since_);
  b.precharge_cycles += now - b.since;
  b.since = now;
  b.active = true;
  ++b.acts;
  ++chan_acts_;
  // Close the channel aggregate's open segment at `now`, then admit the bank.
  agg_active_cycles_ += static_cast<std::uint64_t>(active_banks_) * (now - agg_since_);
  agg_since_ = now;
  ++active_banks_;
}

void PowerAccountant::on_precharge(BankId bank, Cycle now) {
  LD_ASSERT(bank < banks_.size());
  LD_ASSERT(!finalized_);
  BankState& b = banks_[bank];
  LD_ASSERT_MSG(b.active, "PRE on a bank with no open row");
  LD_ASSERT(now >= b.since && now >= agg_since_);
  b.active_cycles += now - b.since;
  b.since = now;
  b.active = false;
  agg_active_cycles_ += static_cast<std::uint64_t>(active_banks_) * (now - agg_since_);
  agg_since_ = now;
  LD_ASSERT(active_banks_ > 0);
  --active_banks_;
}

void PowerAccountant::finalize(Cycle end) {
  LD_ASSERT_MSG(!finalized_, "PowerAccountant finalized twice");
  LD_ASSERT(end >= agg_since_);
  agg_active_cycles_ += static_cast<std::uint64_t>(active_banks_) * (end - agg_since_);
  agg_since_ = end;

  std::uint64_t active_sum = 0;
  for (BankState& b : banks_) {
    LD_ASSERT(end >= b.since);
    if (b.active)
      b.active_cycles += end - b.since;
    else
      b.precharge_cycles += end - b.since;
    b.since = end;
    // Residency identity: the two states partition the bank's elapsed
    // cycles exactly (integer identity, no tolerance).
    LD_ASSERT_MSG(b.active_cycles + b.precharge_cycles == end,
                  "bank residencies do not partition elapsed cycles");
    active_sum += b.active_cycles;
  }
  LD_ASSERT_MSG(active_sum == agg_active_cycles_,
                "channel active-cycle aggregate diverged from per-bank sums");

  end_ = end;
  finalized_ = true;
}

void PowerAccountant::verify_against(const EnergyMeter& meter) const {
  LD_ASSERT(finalized_);
  // Event counts must agree exactly — both sides count issued commands.
  LD_ASSERT_MSG(chan_acts_ == meter.activations(),
                "accountant ACT count disagrees with EnergyMeter");
  LD_ASSERT_MSG(chan_reads_ == meter.read_accesses(),
                "accountant RD count disagrees with EnergyMeter");
  LD_ASSERT_MSG(chan_writes_ == meter.write_accesses(),
                "accountant WR count disagrees with EnergyMeter");
  // Derived energies reconcile to 1e-9 relative (identical arithmetic, but
  // per-bank sums may round differently from the single channel product).
  const PowerBreakdown e = channel_energy(end_);
  LD_ASSERT_MSG(close_rel(e.row_nj, meter.row_energy_nj()),
                "accountant row energy diverged from EnergyMeter");
  LD_ASSERT_MSG(close_rel(e.access_nj, meter.access_energy_nj()),
                "accountant access energy diverged from EnergyMeter");
  PowerBreakdown bank_sum;
  for (unsigned b = 0; b < num_banks(); ++b) bank_sum += bank_energy(b, end_);
  LD_ASSERT_MSG(close_rel(bank_sum.total_nj(), e.total_nj()),
                "per-bank energies do not sum to the channel total");
}

std::uint64_t PowerAccountant::bank_active_cycles(BankId bank, Cycle now) const {
  LD_ASSERT(bank < banks_.size());
  const BankState& b = banks_[bank];
  LD_ASSERT(now >= b.since);
  return b.active_cycles + (b.active ? now - b.since : 0);
}

std::uint64_t PowerAccountant::bank_precharge_cycles(BankId bank, Cycle now) const {
  LD_ASSERT(bank < banks_.size());
  const BankState& b = banks_[bank];
  LD_ASSERT(now >= b.since);
  return b.precharge_cycles + (b.active ? 0 : now - b.since);
}

std::uint64_t PowerAccountant::channel_active_cycles(Cycle now) const {
  LD_ASSERT(now >= agg_since_);
  return agg_active_cycles_ +
         static_cast<std::uint64_t>(active_banks_) * (now - agg_since_);
}

PowerBreakdown PowerAccountant::bank_energy(BankId bank, Cycle now) const {
  const BankState& b = banks_[bank];
  PowerBreakdown e;
  e.row_nj = static_cast<double>(b.acts) * p_.row_energy_per_act_nj();
  e.access_nj = static_cast<double>(b.reads) * p_.rd_access_nj +
                static_cast<double>(b.writes) * p_.wr_access_nj;
  e.background_nj =
      static_cast<double>(bank_active_cycles(bank, now)) * p_.act_stby_nj_per_cycle +
      static_cast<double>(bank_precharge_cycles(bank, now)) * p_.pre_stby_nj_per_cycle;
  e.refresh_nj = static_cast<double>(refresh_events(now)) * p_.ref_per_bank_nj;
  return e;
}

PowerBreakdown PowerAccountant::channel_energy(Cycle now) const {
  PowerBreakdown e;
  e.row_nj = static_cast<double>(chan_acts_) * p_.row_energy_per_act_nj();
  e.access_nj = static_cast<double>(chan_reads_) * p_.rd_access_nj +
                static_cast<double>(chan_writes_) * p_.wr_access_nj;
  const std::uint64_t active = channel_active_cycles(now);
  const std::uint64_t total = static_cast<std::uint64_t>(banks_.size()) * now;
  LD_ASSERT(active <= total);
  e.background_nj = static_cast<double>(active) * p_.act_stby_nj_per_cycle +
                    static_cast<double>(total - active) * p_.pre_stby_nj_per_cycle;
  e.refresh_nj = static_cast<double>(refresh_events(now)) *
                 static_cast<double>(banks_.size()) * p_.ref_per_bank_nj;
  return e;
}

}  // namespace lazydram::dram
