#include "dram/channel.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lazydram::dram {

namespace {
/// Bus bubble inserted when consecutive bursts travel opposite directions.
constexpr Cycle kTurnaround = 2;
}  // namespace

DramChannel::DramChannel(const GpuConfig& cfg, ChannelId id)
    : t_(cfg.timing),
      groups_(cfg.bank_groups_per_channel),
      next_cas_in_group_(cfg.bank_groups_per_channel, 0),
      energy_(cfg.energy) {
  (void)id;
  if (cfg.power_accounting)
    power_ = std::make_unique<PowerAccountant>(cfg.energy, cfg.banks_per_channel);
  banks_.reserve(cfg.banks_per_channel);
  for (unsigned b = 0; b < cfg.banks_per_channel; ++b) banks_.emplace_back(t_);
}

bool DramChannel::bus_available(CommandKind kind, Cycle now) const {
  const Cycle data_start =
      now + (kind == CommandKind::kRead ? t_.tCL : t_.tWL);
  const bool is_write = kind == CommandKind::kWrite;
  const Cycle needed =
      bus_free_at_ + (is_write != last_burst_was_write_ ? kTurnaround : 0);
  return data_start >= needed;
}

bool DramChannel::can_issue(CommandKind kind, BankId bank, Cycle now) const {
  LD_ASSERT(bank < banks_.size());
  const Bank& b = banks_[bank];
  switch (kind) {
    case CommandKind::kActivate:
      if (t_.tFAW > 0 && acts_in_window_ >= 4 &&
          now < act_window_[act_window_pos_] + t_.tFAW)
        return false;  // Fifth ACT inside the rolling four-activate window.
      return b.can_activate(now) && now >= next_act_any_bank_;
    case CommandKind::kPrecharge:
      return b.can_precharge(now);
    case CommandKind::kRead:
      return b.can_read(now) && now >= next_cas_in_group_[bank % groups_] &&
             bus_available(kind, now);
    case CommandKind::kWrite:
      return b.can_write(now) && now >= next_cas_in_group_[bank % groups_] &&
             bus_available(kind, now);
  }
  return false;
}

Cycle DramChannel::earliest_issue(CommandKind kind, BankId bank) const {
  LD_ASSERT(bank < banks_.size());
  const Bank& b = banks_[bank];
  switch (kind) {
    case CommandKind::kActivate: {
      Cycle at = std::max(b.next_activate_allowed(), next_act_any_bank_);
      if (t_.tFAW > 0 && acts_in_window_ >= 4)
        at = std::max(at, act_window_[act_window_pos_] + t_.tFAW);
      return at;
    }
    case CommandKind::kPrecharge:
      return b.next_precharge_allowed();
    case CommandKind::kRead: {
      Cycle at = std::max(b.next_read_allowed(), next_cas_in_group_[bank % groups_]);
      if (bus_free_at_ > t_.tCL) at = std::max(at, bus_free_at_ - t_.tCL);
      return at;
    }
    case CommandKind::kWrite: {
      Cycle at = std::max(b.next_write_allowed(), next_cas_in_group_[bank % groups_]);
      if (bus_free_at_ > t_.tWL) at = std::max(at, bus_free_at_ - t_.tWL);
      return at;
    }
  }
  return 0;
}

Cycle DramChannel::issue(CommandKind kind, BankId bank, RowId row, Cycle now) {
  LD_ASSERT_MSG(can_issue(kind, bank, now), "channel command issued while illegal");
  Bank& b = banks_[bank];
  switch (kind) {
    case CommandKind::kActivate:
      b.activate(row, now);
      next_act_any_bank_ = std::max(next_act_any_bank_, now + t_.tRRD);
      if (t_.tFAW > 0) {
        act_window_[act_window_pos_] = now;
        act_window_pos_ = (act_window_pos_ + 1) % 4;
        if (acts_in_window_ < 4) ++acts_in_window_;
      }
      energy_.on_activation();
      if (power_ != nullptr) power_->on_activate(bank, now);
      return now;

    case CommandKind::kPrecharge: {
      const Bank::ClosedRow closed = b.precharge(now);
      // A row is only ever opened to serve at least one request, so a
      // zero-access close would indicate a controller bug.
      LD_ASSERT(closed.accesses > 0);
      rbl_all_.add(closed.accesses);
      if (closed.read_only) rbl_readonly_.add(closed.accesses);
      if (power_ != nullptr) power_->on_precharge(bank, now);
      return now;
    }

    case CommandKind::kRead: {
      const Cycle done = b.read(now);
      next_cas_in_group_[bank % groups_] = now + t_.tCCD;
      bus_free_at_ = done;
      last_burst_was_write_ = false;
      bus_busy_cycles_ += t_.tBURST;
      energy_.on_read_access();
      if (power_ != nullptr) power_->on_read(bank);
      return done;
    }

    case CommandKind::kWrite: {
      const Cycle done = b.write(now);
      next_cas_in_group_[bank % groups_] = now + t_.tCCD;
      bus_free_at_ = done;
      last_burst_was_write_ = true;
      bus_busy_cycles_ += t_.tBURST;
      energy_.on_write_access();
      if (power_ != nullptr) power_->on_write(bank);
      return done;
    }
  }
  LD_ASSERT_MSG(false, "unreachable");
  return now;
}

void DramChannel::finalize_power(Cycle end) {
  if (power_ == nullptr || power_->finalized()) return;
  power_->finalize(end);
  power_->verify_against(energy_);
}

void DramChannel::flush_open_rows() {
  for (Bank& b : banks_) {
    const Bank::ClosedRow closed = b.flush();
    if (closed.accesses == 0) continue;
    rbl_all_.add(closed.accesses);
    if (closed.read_only) rbl_readonly_.add(closed.accesses);
  }
}

}  // namespace lazydram::dram
