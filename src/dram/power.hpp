// State-based DRAM power accounting (DRAMPower/GPUWattch-style).
//
// Two accountants coexist, one checking the other:
//
//  * EnergyMeter — the original 3-counter event meter (activations, reads,
//    writes x nJ constants). Kept as the *oracle*: its arithmetic is trivial
//    enough to audit by eye, so the state machine below is reconciled
//    against it at finalize time.
//  * PowerAccountant — a per-bank state-residency machine fed the same
//    command stream the protocol checker observes (one on_* call per issued
//    ACT/PRE/RD/WR). It integrates
//      (a) per-command energies (row energy booked at ACT, access energy at
//          RD/WR — identical bookings to EnergyMeter),
//      (b) background power over exact per-bank state residencies: every
//          bank is either *active* (a row is open: active-standby power) or
//          *precharged* (precharge-standby power), and the two residencies
//          partition elapsed cycles — the energy analog of the lifecycle
//          collector's phase-partition identity, asserted at finalize,
//      (c) periodic refresh energy, modeled analytically from elapsed time
//          (one all-bank refresh burst every tREFI cycles). No REF command
//          exists in the timing model, so refresh is energy-only and can
//          never perturb simulated results.
//
// Observability discipline: the accountant is strictly passive. It mutates
// nothing the command engine reads, so enabling/disabling it is proven
// bit-identical on results (see PowerAccounting.OffIsBitIdentical).
//
// Complexity: O(1) per command, O(1) per channel-level query (a lazy
// channel aggregate tracks active bank-cycles incrementally), O(1) per
// per-bank query. Nothing here runs per tick.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace lazydram {

/// The original event-counting energy meter, now serving as the cross-check
/// oracle for PowerAccountant (see file comment).
class EnergyMeter {
 public:
  explicit EnergyMeter(const EnergyParams& params) : params_(params) {}

  void on_activation() { ++activations_; }
  void on_read_access() { ++reads_; }
  void on_write_access() { ++writes_; }

  std::uint64_t activations() const { return activations_; }
  std::uint64_t read_accesses() const { return reads_; }
  std::uint64_t write_accesses() const { return writes_; }

  double row_energy_nj() const {
    return static_cast<double>(activations_) * params_.row_energy_per_act_nj();
  }
  double access_energy_nj() const {
    return static_cast<double>(reads_) * params_.rd_access_nj +
           static_cast<double>(writes_) * params_.wr_access_nj;
  }
  double total_energy_nj() const { return row_energy_nj() + access_energy_nj(); }

  void reset() { activations_ = reads_ = writes_ = 0; }

 private:
  EnergyParams params_;
  std::uint64_t activations_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// Projects a row-energy reduction onto a memory technology's total
/// memory-system energy, given the technology's row-energy share (Section V,
/// "Effect on Memory Energy and Peak Bandwidth").
inline double project_memory_energy_reduction(double row_energy_reduction,
                                              double row_share) {
  return row_energy_reduction * row_share;
}

namespace dram {

/// Energy decomposed by physical source, in nanojoules. `row` and `access`
/// match EnergyMeter's definitions exactly; `background` and `refresh` are
/// the state-residency and periodic terms only the accountant models.
struct PowerBreakdown {
  double row_nj = 0.0;         ///< ACT + restore + PRE, once per activation.
  double access_nj = 0.0;      ///< Per 128B RD/WR column access + burst I/O.
  double background_nj = 0.0;  ///< Active- + precharge-standby over residencies.
  double refresh_nj = 0.0;     ///< Periodic refresh (analytic, every tREFI).

  double total_nj() const { return row_nj + access_nj + background_nj + refresh_nj; }

  PowerBreakdown& operator+=(const PowerBreakdown& o) {
    row_nj += o.row_nj;
    access_nj += o.access_nj;
    background_nj += o.background_nj;
    refresh_nj += o.refresh_nj;
    return *this;
  }
};

class PowerAccountant {
 public:
  PowerAccountant(const EnergyParams& params, unsigned num_banks);

  // --- Command taps (same stream ProtocolChecker::on_command observes) ---
  // `now` must be non-decreasing across calls (the command engine issues in
  // cycle order). ACT/PRE toggle the bank's residency state; RD/WR only book
  // access energy.
  void on_activate(BankId bank, Cycle now);
  void on_precharge(BankId bank, Cycle now);
  void on_read(BankId bank) {
    ++banks_[bank].reads;
    ++chan_reads_;
  }
  void on_write(BankId bank) {
    ++banks_[bank].writes;
    ++chan_writes_;
  }

  /// Ends the run at cycle `end` (one past the last simulated memory cycle):
  /// closes every open residency segment, then asserts the residency
  /// identity — per bank, active_cycles + precharge_cycles == end — and the
  /// channel aggregate's agreement with the per-bank sums. Idempotent calls
  /// are a bug (asserted).
  void finalize(Cycle end);
  bool finalized() const { return finalized_; }
  Cycle end_cycle() const { return end_; }

  /// Asserts (to 1e-9 relative) that the accountant's row/access energies and
  /// event counts reconcile with the EnergyMeter oracle fed by the same
  /// command stream. Called by DramChannel at finalize.
  void verify_against(const EnergyMeter& meter) const;

  // --- Residency queries, as of `now` (>= the last observed command) ---
  std::uint64_t bank_active_cycles(BankId bank, Cycle now) const;
  std::uint64_t bank_precharge_cycles(BankId bank, Cycle now) const;
  /// Channel total of bank_active_cycles, O(1) via the lazy aggregate.
  std::uint64_t channel_active_cycles(Cycle now) const;

  // --- Energy queries ---
  PowerBreakdown bank_energy(BankId bank, Cycle now) const;
  /// Channel totals, O(1): does NOT loop over banks.
  PowerBreakdown channel_energy(Cycle now) const;
  /// All-bank refresh bursts completed by `now` (0 when tREFI disabled).
  std::uint64_t refresh_events(Cycle now) const {
    return p_.trefi_cycles == 0 ? 0 : now / p_.trefi_cycles;
  }

  // Post-finalize conveniences for end-of-run stat gauges. Before finalize
  // they evaluate at the last observed state change (a valid lower bound).
  std::uint64_t channel_active_cycles() const {
    return channel_active_cycles(query_end());
  }
  PowerBreakdown bank_energy(BankId bank) const {
    return bank_energy(bank, query_end());
  }
  PowerBreakdown channel_energy() const { return channel_energy(query_end()); }

  unsigned num_banks() const { return static_cast<unsigned>(banks_.size()); }
  const EnergyParams& params() const { return p_; }

 private:
  struct BankState {
    bool active = false;  ///< A row is open (active-standby power applies).
    Cycle since = 0;      ///< Start of the current residency segment.
    std::uint64_t active_cycles = 0;     ///< Closed active residency.
    std::uint64_t precharge_cycles = 0;  ///< Closed precharge residency.
    std::uint64_t acts = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };

  Cycle query_end() const { return finalized_ ? end_ : agg_since_; }

  EnergyParams p_;
  std::vector<BankState> banks_;

  // Channel-level event totals (so channel_energy needs no bank loop).
  std::uint64_t chan_acts_ = 0;
  std::uint64_t chan_reads_ = 0;
  std::uint64_t chan_writes_ = 0;

  // Lazy channel aggregate of active bank-cycles: `agg_active_cycles_` is
  // exact as of `agg_since_`; between state changes, `active_banks_` banks
  // keep accruing, so the total at `now` is
  //   agg_active_cycles_ + active_banks_ * (now - agg_since_).
  std::uint64_t agg_active_cycles_ = 0;
  Cycle agg_since_ = 0;
  unsigned active_banks_ = 0;

  Cycle end_ = 0;
  bool finalized_ = false;
};

}  // namespace dram
}  // namespace lazydram
