#include "dram/energy.hpp"

// EnergyMeter is header-only today; this translation unit anchors the
// module so the build stays stable if out-of-line definitions are added.
namespace lazydram {}
