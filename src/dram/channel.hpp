// One GDDR5 channel: the banks plus every channel-scope constraint.
//
// Channel-scope rules enforced here on top of the per-bank ledgers:
//  * one command per channel per memory cycle (shared command bus),
//  * tRRD between ACTs to different banks,
//  * tFAW: at most four ACTs per rolling tFAW window (when configured),
//  * tCCD between column accesses within the same bank group,
//  * exclusive data-bus occupancy of tBURST cycles per column access, with a
//    2-cycle bubble when the bus reverses direction (RD<->WR turnaround).
//
// The channel also owns the measurement hooks the paper's analysis needs:
// activation counts, RBL histograms (all rows, and read-only rows for AMS's
// Fig. 6 analysis), served-request counts, energy, and data-bus busy cycles
// (the BWUTIL numerator used by Dyn-DMS).
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/address.hpp"
#include "dram/bank.hpp"
#include "dram/power.hpp"

namespace lazydram::dram {

enum class CommandKind { kActivate, kPrecharge, kRead, kWrite };

class DramChannel {
 public:
  DramChannel(const GpuConfig& cfg, ChannelId id);

  // --- Command legality & execution (now = memory-domain cycle) ---

  /// True if `kind` may issue to `bank` at `now` under bank + channel rules.
  /// The one-command-per-cycle rule is the caller's job (the controller
  /// issues at most one command per tick).
  bool can_issue(CommandKind kind, BankId bank, Cycle now) const;

  /// Lower bound on the earliest cycle `kind` could legally issue to `bank`
  /// given the *current* ledgers. Every timing gate only ratchets forward as
  /// later commands issue, so can_issue is guaranteed false strictly before
  /// the returned cycle — the controller skips blocked banks until then.
  /// (The RD<->WR turnaround bubble is deliberately excluded: it can only
  /// push the true earliest cycle later, keeping this a valid lower bound.)
  Cycle earliest_issue(CommandKind kind, BankId bank) const;

  /// Executes the command. For kRead/kWrite returns the cycle the data burst
  /// completes; for kActivate/kPrecharge returns `now`. `now` must be
  /// non-decreasing across calls (the controller issues in cycle order; the
  /// power accountant's channel aggregate relies on it).
  Cycle issue(CommandKind kind, BankId bank, RowId row, Cycle now);

  const Bank& bank(BankId b) const { return banks_[b]; }
  unsigned num_banks() const { return static_cast<unsigned>(banks_.size()); }

  /// Flushes all still-open rows into the RBL accounting (end of run).
  void flush_open_rows();

  /// Ends power accounting at cycle `end` (one past the last simulated
  /// memory cycle): closes residencies, asserts the residency-partition
  /// identity and reconciles the accountant against the EnergyMeter oracle.
  /// No-op when accounting is disabled. Call at most once, after
  /// flush_open_rows() (flushed rows close at `end`, not earlier — flush()
  /// issues no PRE).
  void finalize_power(Cycle end);

  // --- Measurement ---
  std::uint64_t activations() const { return energy_.activations(); }
  const Histogram& rbl_histogram() const { return rbl_all_; }
  const Histogram& rbl_readonly_histogram() const { return rbl_readonly_; }
  const EnergyMeter& energy() const { return energy_; }
  /// The state-residency accountant, or nullptr when GpuConfig::
  /// power_accounting is off.
  const PowerAccountant* power() const { return power_.get(); }
  std::uint64_t column_accesses() const {
    return energy_.read_accesses() + energy_.write_accesses();
  }
  /// Data-bus busy cycles since construction (BWUTIL numerator).
  std::uint64_t bus_busy_cycles() const { return bus_busy_cycles_; }

  /// The channel's timing parameters (read-only; fixed at construction).
  const DramTiming& timing() const { return t_; }

 private:
  bool bus_available(CommandKind kind, Cycle now) const;

  DramTiming t_;
  unsigned groups_;
  std::vector<Bank> banks_;

  Cycle next_act_any_bank_ = 0;          ///< tRRD gate.
  /// tFAW gate: cycles of the last four ACTs (rolling; unused when tFAW==0).
  Cycle act_window_[4] = {0, 0, 0, 0};
  unsigned act_window_pos_ = 0;
  unsigned acts_in_window_ = 0;
  std::vector<Cycle> next_cas_in_group_; ///< tCCD gate per bank group.
  Cycle bus_free_at_ = 0;                ///< First cycle the data bus is free.
  bool last_burst_was_write_ = false;

  EnergyMeter energy_;
  std::unique_ptr<PowerAccountant> power_;  ///< Null when accounting is off.
  Histogram rbl_all_{64};
  Histogram rbl_readonly_{64};
  std::uint64_t bus_busy_cycles_ = 0;
};

}  // namespace lazydram::dram
