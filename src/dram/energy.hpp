// Event-based DRAM energy accounting (GPUWattch-style).
//
// "Row energy" is the paper's reported quantity: the cost of activate +
// restore + precharge paid once per row activation (Section II-B). Access
// energy (per 128B RD/WR column access) is tracked separately so that total
// DRAM energy and the HBM1/HBM2 memory-system projections can be derived.
#pragma once

#include <cstdint>

#include "common/config.hpp"

namespace lazydram {

class EnergyMeter {
 public:
  explicit EnergyMeter(const EnergyParams& params) : params_(params) {}

  void on_activation() { ++activations_; }
  void on_read_access() { ++reads_; }
  void on_write_access() { ++writes_; }

  std::uint64_t activations() const { return activations_; }
  std::uint64_t read_accesses() const { return reads_; }
  std::uint64_t write_accesses() const { return writes_; }

  double row_energy_nj() const {
    return static_cast<double>(activations_) * params_.row_energy_per_act_nj();
  }
  double access_energy_nj() const {
    return static_cast<double>(reads_) * params_.rd_access_nj +
           static_cast<double>(writes_) * params_.wr_access_nj;
  }
  double total_energy_nj() const { return row_energy_nj() + access_energy_nj(); }

  void reset() { activations_ = reads_ = writes_ = 0; }

 private:
  EnergyParams params_;
  std::uint64_t activations_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// Projects a row-energy reduction onto a memory technology's total
/// memory-system energy, given the technology's row-energy share (Section V,
/// "Effect on Memory Energy and Peak Bandwidth").
inline double project_memory_energy_reduction(double row_energy_reduction,
                                              double row_share) {
  return row_energy_reduction * row_share;
}

}  // namespace lazydram
