#include "sim/simulator.hpp"

#include "common/assert.hpp"
#include "gpu/gpu_top.hpp"
#include "mem/fcfs.hpp"
#include "mem/frfcfs.hpp"

namespace lazydram::sim {

RunMetrics simulate(const workloads::Workload& workload, const RunConfig& config) {
  const GpuConfig& cfg = config.gpu;

  gpu::GpuTop::SchedulerFactory factory;
  std::string label = config.scheme_label;
  switch (config.policy) {
    case PolicyKind::kLazy:
      factory = [&](ChannelId) -> std::unique_ptr<Scheduler> {
        return std::make_unique<core::LazyScheduler>(cfg.scheme, config.spec,
                                                     cfg.banks_per_channel);
      };
      if (label.empty()) label = core::scheme_name(config.spec.kind);
      break;
    case PolicyKind::kFrFcfs:
      factory = [](ChannelId) -> std::unique_ptr<Scheduler> {
        return std::make_unique<FrFcfsScheduler>();
      };
      if (label.empty()) label = "FR-FCFS";
      break;
    case PolicyKind::kFcfs:
      factory = [](ChannelId) -> std::unique_ptr<Scheduler> {
        return std::make_unique<FcfsScheduler>();
      };
      if (label.empty()) label = "FCFS";
      break;
  }

  gpu::GpuTop top(cfg, workload, factory, config.row_policy);
  const bool finished = top.run(config.max_core_cycles);
  LD_ASSERT_MSG(finished, "simulation hit max_core_cycles before completing");
  return collect_metrics(top, workload, label, config.compute_error);
}

RunMetrics simulate_scheme(const workloads::Workload& workload, core::SchemeKind kind,
                           const GpuConfig& gpu) {
  RunConfig config;
  config.gpu = gpu;
  config.spec = core::make_scheme_spec(kind, gpu.scheme);
  return simulate(workload, config);
}

}  // namespace lazydram::sim
