#include "sim/simulator.hpp"

#include <chrono>
#include <cstdlib>

#include "check/context.hpp"
#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/scheduler_registry.hpp"
#include "gpu/gpu_top.hpp"
#include "sim/run_report.hpp"
#include "telemetry/chrome_trace.hpp"

namespace lazydram::sim {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

RunOutput simulate_full(const workloads::Workload& workload, const RunConfig& config) {
  log_level();  // Resolve LAZYDRAM_LOG up front so a typo in it warns even
                // if the run never logs.
  GpuConfig cfg = config.gpu;

  // A/B knob for the controller's schedulability fast paths: the diffcheck
  // equivalence matrix and perf triage compare LAZYDRAM_FAST=off runs
  // against the (default-on) optimized ones.
  if (const std::string fast = telemetry::env_string("LAZYDRAM_FAST"); !fast.empty()) {
    if (fast == "off" || fast == "0")
      cfg.fast_path = false;
    else if (fast == "on" || fast == "1")
      cfg.fast_path = true;
    else
      log_warn("LAZYDRAM_FAST='%s' not recognized (want on|off|1|0); ignored",
               fast.c_str());
  }

  // A/B knob for the state-based power accountant (default on). Strictly
  // passive — results are bit-identical either way; off removes the energy
  // breakdown from every output and the O(1)-per-command bookkeeping.
  if (const std::string pw = telemetry::env_string("LAZYDRAM_POWER"); !pw.empty()) {
    if (pw == "off" || pw == "0")
      cfg.power_accounting = false;
    else if (pw == "on" || pw == "1")
      cfg.power_accounting = true;
    else
      log_warn("LAZYDRAM_POWER='%s' not recognized (want on|off|1|0); ignored",
               pw.c_str());
  }

  // Sharded run loop: LAZYDRAM_SHARD=N partitions the memory controllers
  // over N worker lanes inside the event-wheel driver (0 = legacy loop,
  // 1 = event wheel on one thread). Results and trace output are
  // bit-identical for every value; an explicit RunConfig/GpuConfig setting
  // wins over the environment.
  if (cfg.shard_threads == 0) {
    if (const std::string sh = telemetry::env_string("LAZYDRAM_SHARD"); !sh.empty()) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(sh.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && v <= 64)
        cfg.shard_threads = static_cast<unsigned>(v);
      else
        log_warn("LAZYDRAM_SHARD='%s' not recognized (want an integer 0..64); ignored",
                 sh.c_str());
    }
  }

  // Self-observability knobs. The profiler arm switch is process-global and
  // sticky: a run that wants it only ever turns it ON (a concurrent sweep
  // sibling may still be profiling), so per-run A/B toggling is left to
  // harnesses that own the whole process (bench_micro --perf).
  if (!cfg.self_profile) {
    if (const std::string sp = telemetry::env_string("LAZYDRAM_SELFPROF"); !sp.empty()) {
      if (sp == "on" || sp == "1")
        cfg.self_profile = true;
      else if (sp != "off" && sp != "0")
        log_warn("LAZYDRAM_SELFPROF='%s' not recognized (want on|off|1|0); ignored",
                 sp.c_str());
    }
  }
  if (cfg.self_profile) telemetry::SelfProfiler::set_enabled(true);
  if (cfg.heartbeat_seconds <= 0.0) {
    if (const std::string hb = telemetry::env_string("LAZYDRAM_HEARTBEAT"); !hb.empty()) {
      char* end = nullptr;
      const double v = std::strtod(hb.c_str(), &end);
      if (end != nullptr && *end == '\0' && v > 0.0)
        cfg.heartbeat_seconds = v;
      else
        log_warn("LAZYDRAM_HEARTBEAT='%s' not recognized (want seconds > 0); ignored",
                 hb.c_str());
    }
  }

  // Resolve the scheduler policy, most explicit first: a non-default
  // RunConfig::policy (legacy PolicyKind), then a configured
  // GpuConfig::policy.name, then $LAZYDRAM_POLICY, else "lazy". All paths
  // construct via the SchedulerRegistry — the one construction seam the
  // golden-model diff harness shares (see src/core/scheduler_registry.hpp).
  switch (config.policy) {
    case PolicyKind::kLazy:
      break;  // Keep whatever cfg.policy.name says (usually empty = lazy).
    case PolicyKind::kFrFcfs:
      cfg.policy.name = "frfcfs";
      break;
    case PolicyKind::kFcfs:
      cfg.policy.name = "fcfs";
      break;
  }
  if (cfg.policy.name.empty()) {
    if (const std::string pol = telemetry::env_string("LAZYDRAM_POLICY"); !pol.empty()) {
      std::string error;
      if (!core::parse_policy_spec(pol, cfg, &error))
        log_warn("LAZYDRAM_POLICY='%s' rejected (%s); using the configured policy",
                 pol.c_str(), error.c_str());
    }
  }

  const gpu::GpuTop::SchedulerFactory factory =
      core::make_scheduler_factory(cfg, config.spec);
  std::string label = config.scheme_label;
  if (label.empty()) label = core::run_label(cfg, config.spec);

  // Resolve the observability configuration: explicit RunConfig paths win,
  // then the environment; window sampling is implied by either output.
  std::string trace_path = config.trace_path;
  if (trace_path.empty() && !config.ignore_env_outputs)
    trace_path = telemetry::env_string("LAZYDRAM_TRACE");
  std::string json_path = config.json_report_path;
  if (json_path.empty() && !config.ignore_env_outputs)
    json_path = telemetry::env_string("LAZYDRAM_JSON");
  std::string trace_format = config.trace_format;
  if (trace_format.empty()) trace_format = telemetry::env_string("LAZYDRAM_TRACE_FORMAT");
  if (trace_format.empty()) trace_format = "jsonl";
  std::uint64_t trace_sample = config.trace_sample;
  if (trace_sample == 0) {
    // Accept "N" or the documented "1/N" spelling.
    std::string s = telemetry::env_string("LAZYDRAM_TRACE_SAMPLE");
    if (s.rfind("1/", 0) == 0) s = s.substr(2);
    trace_sample = s.empty() ? 1 : std::strtoull(s.c_str(), nullptr, 10);
    if (trace_sample == 0) {
      log_warn("LAZYDRAM_TRACE_SAMPLE='%s' not a positive integer; using 1", s.c_str());
      trace_sample = 1;
    }
  }

  telemetry::Telemetry tele;
  if (!trace_path.empty()) {
    if (trace_format == "chrome") {
      tele.open_chrome_trace(trace_path, static_cast<double>(cfg.mem_clock_mhz) /
                                             static_cast<double>(cfg.core_clock_mhz));
    } else {
      if (trace_format != "jsonl")
        log_warn("LAZYDRAM_TRACE_FORMAT='%s' not recognized (want jsonl|chrome); "
                 "using jsonl",
                 trace_format.c_str());
      tele.open_jsonl_trace(trace_path);
    }
  }
  // Lifecycle collection rides every traced run (so the tracing-determinism
  // tests cover it) and can be requested alone via config.lifecycle.
  if (config.lifecycle || !trace_path.empty()) tele.enable_lifecycle(trace_sample);
  tele.set_window_sampling(config.window_sampling || !trace_path.empty() ||
                                !json_path.empty());

  // Crash flight recorder: on by default (recording is passive; a dump only
  // fires on a strict-checker throw or LD_ASSERT). An explicit RunConfig
  // depth wins, then $LAZYDRAM_FLIGHT; 0 disables.
  std::int64_t flight_depth = config.flight_depth;
  if (flight_depth < 0) {
    flight_depth = static_cast<std::int64_t>(telemetry::FlightRecorder::kDefaultDepth);
    if (const std::string fl = telemetry::env_string("LAZYDRAM_FLIGHT"); !fl.empty()) {
      char* end = nullptr;
      const long long v = std::strtoll(fl.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && v >= 0)
        flight_depth = static_cast<std::int64_t>(v);
      else
        log_warn("LAZYDRAM_FLIGHT='%s' not recognized (want an event depth >= 0); ignored",
                 fl.c_str());
    }
  }
  if (flight_depth > 0) tele.enable_flight(static_cast<std::size_t>(flight_depth));

  std::string check_text = config.check;
  if (check_text.empty()) check_text = telemetry::env_string("LAZYDRAM_CHECK");
  check::CheckConfig check_cfg;
  check_cfg.mode = check::parse_check_mode(check_text);
  if (config.check_age_bound != 0) check_cfg.starvation_bound = config.check_age_bound;
  check::CheckContext check_ctx(check_cfg);

  RunOutput out;
  telemetry::SelfZone setup_zone("sim.setup");
  const auto setup_start = std::chrono::steady_clock::now();
  gpu::GpuTop top(cfg, workload, factory, config.row_policy, &tele, &check_ctx);
  top.register_stats(tele.hub());
  out.telemetry.profile.setup_seconds = seconds_since(setup_start);
  setup_zone.close();

  const auto run_start = std::chrono::steady_clock::now();
  bool finished = false;
  {
    telemetry::SelfZone run_zone("sim.run");
    finished = top.run(config.max_core_cycles);
  }
  out.telemetry.profile.run_seconds = seconds_since(run_start);
  LD_ASSERT_MSG(finished, "simulation hit max_core_cycles before completing");

  const auto collect_start = std::chrono::steady_clock::now();
  {
    telemetry::SelfZone collect_zone("sim.collect");
    out.metrics =
        collect_metrics(top, workload, label, config.compute_error, &tele.hub());
  }
  out.telemetry.profile.collect_seconds = seconds_since(collect_start);
  out.telemetry.profile.core_cycles_per_second =
      out.telemetry.profile.run_seconds == 0.0
          ? 0.0
          : static_cast<double>(top.core_cycles()) / out.telemetry.profile.run_seconds;

  // Detach the window series and stat snapshot before `top` dies.
  out.telemetry.windows.reserve(top.num_channels());
  for (ChannelId ch = 0; ch < top.num_channels(); ++ch) {
    const telemetry::WindowSampler* sampler = top.controller(ch).sampler();
    out.telemetry.windows.push_back(sampler != nullptr ? sampler->samples()
                                                       : std::vector<telemetry::WindowSample>{});
  }
  out.telemetry.stats = tele.hub().snapshot();
  if (telemetry::LifecycleCollector* lc = tele.lifecycle()) {
    out.telemetry.lifecycle_enabled = true;
    out.telemetry.lifecycle = lc->summary();
  }

  // Detach the self-attribution before `top` dies: the run loop's wall-time
  // split (core-side vs memory-side vs barrier stall) plus the merged zone
  // tree from every thread that touched the profiler.
  if (cfg.self_profile) {
    const gpu::GpuTop::WheelSelfStats ws = top.self_stats();
    telemetry::SelfProfileReport& sp = out.telemetry.self_profile;
    sp.enabled = true;
    sp.run_wall_seconds = ws.run_wall_seconds;
    sp.serial_seconds = ws.serial_seconds;
    sp.mem_serial_seconds = ws.mem_serial_seconds;
    sp.mem_parallel_wall_seconds = ws.mem_parallel_wall_seconds;
    sp.pool_wall_seconds = ws.pool_wall_seconds;
    sp.barrier_stall_seconds = ws.barrier_stall_seconds;
    sp.serial_spans = ws.serial_spans;
    sp.parallel_epochs = ws.parallel_epochs;
    sp.step_samples = ws.step_samples;
    sp.sm_sample_seconds = ws.sm_sample_seconds;
    sp.icnt_sample_seconds = ws.icnt_sample_seconds;
    sp.partition_sample_seconds = ws.partition_sample_seconds;
    sp.lane_busy_seconds = ws.lane_busy_seconds;
    sp.lanes = ws.lanes;
    telemetry::SelfProfiler::Snapshot snap = telemetry::SelfProfiler::instance().snapshot();
    if (telemetry::ChromeTraceSink* chrome = tele.chrome_sink())
      chrome->write_self_profile(snap);
    sp.zones = std::move(snap.zones);
  }

  // Log-mode violations don't abort the run; make sure they can't scroll
  // away unnoticed either.
  if (check_ctx.total_violations() > 0)
    log_warn("protocol checker found %llu violation(s) in scheme '%s'",
             static_cast<unsigned long long>(check_ctx.total_violations()),
             label.c_str());

  if (!json_path.empty()) write_json_report(json_path, out.metrics, out.telemetry);
  return out;
}

RunMetrics simulate(const workloads::Workload& workload, const RunConfig& config) {
  return simulate_full(workload, config).metrics;
}

RunMetrics simulate_scheme(const workloads::Workload& workload, core::SchemeKind kind,
                           const GpuConfig& gpu) {
  RunConfig config;
  config.gpu = gpu;
  config.spec = core::make_scheme_spec(kind, gpu.scheme);
  return simulate(workload, config);
}

}  // namespace lazydram::sim
