// Run-level metrics: everything the paper's figures report, collected from a
// finished GpuTop.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "gpu/gpu_top.hpp"
#include "telemetry/hub.hpp"
#include "workloads/workload.hpp"

namespace lazydram::sim {

/// Per-tenant slice of a multi-tenant run. Counter fields sum the
/// controllers' per-tenant accounting (exact: tenant slices reconcile
/// against the aggregates); slowdown and fairness need alone-run baselines
/// and are filled by sim::run_multitenant, not collect_metrics.
struct TenantMetrics {
  TenantId id = 0;
  std::string name;
  std::uint64_t instructions = 0;
  Cycle finish_core_cycle = 0;  ///< Core cycle the tenant's last warp retired.
  std::uint64_t reads_received = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t drops = 0;
  double coverage = 0.0;  ///< drops / reads_received for this tenant.
  double avg_read_latency_mem_cycles = 0.0;
  Histogram read_latency_hist{4096};  ///< Merged over channels.
  std::uint64_t read_latency_p50 = 0;
  std::uint64_t read_latency_p95 = 0;
  std::uint64_t read_latency_p99 = 0;
  double app_error = 0.0;  ///< This tenant's outputs only.
  /// Shared-run finish / alone-run finish; 0 until run_multitenant fills it.
  double slowdown = 0.0;
};

struct RunMetrics {
  std::string workload;
  std::string scheme;
  bool finished = false;

  Cycle core_cycles = 0;
  Cycle mem_cycles = 0;
  /// Core cycle the last warp retired (core_cycles minus the memory drain
  /// tail). Slowdown baselines use this so shared-run per-tenant finishes and
  /// alone-run finishes measure the same thing.
  Cycle warps_finish_core_cycle = 0;
  std::uint64_t instructions = 0;
  double ipc = 0.0;

  // DRAM-side aggregates (summed over channels).
  std::uint64_t activations = 0;
  std::uint64_t dram_reads = 0;   ///< Column read accesses served.
  std::uint64_t dram_writes = 0;  ///< Column write accesses served.
  std::uint64_t drops = 0;        ///< AMS-dropped (VP-served) reads.
  std::uint64_t reads_received = 0;

  /// Avg-RBL = column accesses / activations (Section II-D; dropped requests
  /// never reach a bank and are excluded, as in Fig. 8's arithmetic).
  double avg_rbl = 0.0;

  // Energy breakdown (summed over channels). row/access come from the
  // EnergyMeter oracle; background/refresh exist only when the state-based
  // power accountant ran (GpuConfig::power_accounting) and are zero
  // otherwise, so total degrades to row + access.
  double row_energy_nj = 0.0;
  double access_energy_nj = 0.0;
  double background_energy_nj = 0.0;
  double refresh_energy_nj = 0.0;
  double total_energy_nj = 0.0;
  /// row / total — the *measured* row-energy share of this run (0 when the
  /// accountant is off). Replaces the analytic row-share constant in the
  /// measured savings tables.
  double measured_row_share = 0.0;
  /// Whole-DRAM average power in watts (total energy / wall-clock memory
  /// cycles at mem_clock_mhz); 0 when the accountant is off.
  double avg_power_w = 0.0;
  /// Per-bank total energy, summed over channels (bank b of every channel
  /// folds into entry b). Empty when the accountant is off.
  std::vector<double> bank_energy_nj;

  double coverage = 0.0;   ///< drops / global reads received.
  double app_error = 0.0;  ///< Average relative output error.

  double avg_delay = 0.0;   ///< Time-weighted DMS delay (0 without DMS).
  double avg_th_rbl = 0.0;  ///< Time-weighted Th_RBL (0 without AMS).
  double bwutil = 0.0;      ///< Data-bus busy cycles / memory cycles.

  double l2_hit_rate = 0.0;
  double avg_read_latency_mem_cycles = 0.0;

  /// Read-latency distribution (enqueue -> data return, memory cycles),
  /// merged over channels. The percentiles come from here; the mean stays
  /// the exact Summary-based average above.
  Histogram read_latency_hist{4096};
  std::uint64_t read_latency_p50 = 0;
  std::uint64_t read_latency_p95 = 0;
  std::uint64_t read_latency_p99 = 0;

  Histogram rbl_hist{64};           ///< Activation count per achieved RBL.
  Histogram rbl_readonly_hist{64};  ///< Same, rows that served only reads.

  /// Per-tenant slices; empty for single-tenant runs.
  std::vector<TenantMetrics> tenants;
  /// Jain fairness index over per-tenant slowdowns; 0 until run_multitenant
  /// fills the slowdowns (needs alone-run baselines).
  double jain_fairness = 0.0;

  /// Requests served by activations of RBL in [lo, hi] divided by all
  /// column accesses (Table III's "thrashing level" numerator uses [1, 8]).
  double request_share_with_rbl(std::uint64_t lo, std::uint64_t hi) const;
};

/// Gathers metrics from a finished run through the telemetry stat registry.
/// Pass `hub` when the caller already registered the GpuTop's stats (so one
/// registry serves metrics, reports and tests); with nullptr a local
/// registration is used. Application error is computed only when requested
/// AND at least one line was approximated (it requires two functional
/// executions of the workload).
RunMetrics collect_metrics(const gpu::GpuTop& gpu, const workloads::Workload& workload,
                           const std::string& scheme_name, bool compute_error,
                           const telemetry::TelemetryHub* hub = nullptr);

}  // namespace lazydram::sim
