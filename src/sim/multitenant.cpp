#include "sim/multitenant.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "sim/run_report.hpp"
#include "telemetry/json.hpp"

namespace lazydram::sim {

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0, sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sq);
}

MultitenantResult run_multitenant(const gpu::TenantSet& tenants,
                                  const RunConfig& config, unsigned jobs) {
  RunConfig shared_cfg = config;
  tenants.apply_qos(shared_cfg.gpu);

  MultitenantResult r;
  r.shared = simulate_full(tenants.workload(), shared_cfg);

  const unsigned n = tenants.size();
  if (n < 2) return r;  // Alone == shared; nothing to baseline against.

  // Alone-run baselines: the same machine config with the tenant as the only
  // client (window bias 0, global QoS budgets — a client alone is not capped
  // by its shared-run budget). Lanes take no observability outputs at all:
  // per-run file outputs stay with the shared run, and env-named files must
  // not be raced on by parallel lanes.
  RunConfig alone_cfg = config;
  alone_cfg.trace_path.clear();
  alone_cfg.json_report_path.clear();
  alone_cfg.ignore_env_outputs = true;
  alone_cfg.lifecycle = false;
  alone_cfg.window_sampling = false;
  alone_cfg.compute_error = false;  // Baselines only feed finish cycles.

  r.alone.resize(n);
  std::vector<std::exception_ptr> errors(n);
  std::atomic<unsigned> next{0};
  const auto worker = [&]() {
    for (unsigned t = next.fetch_add(1); t < n; t = next.fetch_add(1)) {
      try {
        const auto alone = tenants.alone_workload(static_cast<TenantId>(t));
        r.alone[t] = simulate(*alone, alone_cfg);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    }
  };

  const unsigned lanes = jobs == 0 ? 1 : (jobs < n ? jobs : n);
  if (lanes <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(lanes);
    for (unsigned i = 0; i < lanes; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  // Rethrow the lowest-tenant failure so the surfaced error is deterministic.
  for (unsigned t = 0; t < n; ++t)
    if (errors[t]) std::rethrow_exception(errors[t]);

  LD_ASSERT(r.shared.metrics.tenants.size() == n);
  std::vector<double> slowdowns;
  slowdowns.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    TenantMetrics& tm = r.shared.metrics.tenants[t];
    const Cycle alone_finish = r.alone[t].warps_finish_core_cycle;
    if (alone_finish > 0)
      tm.slowdown = static_cast<double>(tm.finish_core_cycle) /
                    static_cast<double>(alone_finish);
    slowdowns.push_back(tm.slowdown);
  }
  r.shared.metrics.jain_fairness = jain_index(slowdowns);
  return r;
}

void write_multitenant_report(std::FILE* out, const MultitenantResult& r) {
  telemetry::JsonWriter w(out);
  w.begin_object();
  write_metrics_section(w, r.shared.metrics);
  w.key("alone");
  w.begin_array();
  for (const RunMetrics& a : r.alone) {
    w.begin_object();
    w.field("workload", a.workload);
    w.field("core_cycles", a.core_cycles);
    w.field("warps_finish_core_cycle", a.warps_finish_core_cycle);
    w.field("instructions", a.instructions);
    w.field("ipc", a.ipc);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::fputc('\n', out);
}

bool write_multitenant_report(const std::string& path, const MultitenantResult& r) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    log_warn("cannot open multitenant report file '%s'; report skipped", path.c_str());
    return false;
  }
  write_multitenant_report(out, r);
  std::fclose(out);
  return true;
}

}  // namespace lazydram::sim
