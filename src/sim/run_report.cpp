#include "sim/run_report.hpp"

#include "common/log.hpp"
#include "telemetry/json.hpp"

namespace lazydram::sim {

void write_metrics_section(telemetry::JsonWriter& w, const RunMetrics& m) {
  w.key("metrics");
  w.begin_object();
  w.field("workload", m.workload);
  w.field("scheme", m.scheme);
  w.field("finished", m.finished);
  w.field("core_cycles", m.core_cycles);
  w.field("mem_cycles", m.mem_cycles);
  w.field("warps_finish_core_cycle", m.warps_finish_core_cycle);
  w.field("instructions", m.instructions);
  w.field("ipc", m.ipc);
  w.field("activations", m.activations);
  w.field("dram_reads", m.dram_reads);
  w.field("dram_writes", m.dram_writes);
  w.field("drops", m.drops);
  w.field("reads_received", m.reads_received);
  w.field("avg_rbl", m.avg_rbl);
  w.field("row_energy_nj", m.row_energy_nj);
  w.field("access_energy_nj", m.access_energy_nj);
  w.field("background_energy_nj", m.background_energy_nj);
  w.field("refresh_energy_nj", m.refresh_energy_nj);
  w.field("total_energy_nj", m.total_energy_nj);
  w.field("measured_row_share", m.measured_row_share);
  w.field("avg_power_w", m.avg_power_w);
  if (!m.bank_energy_nj.empty()) {
    w.key("bank_energy_nj");
    w.begin_array();
    for (const double e : m.bank_energy_nj) w.value(e);
    w.end_array();
  }
  w.field("coverage", m.coverage);
  w.field("app_error", m.app_error);
  w.field("avg_delay", m.avg_delay);
  w.field("avg_th_rbl", m.avg_th_rbl);
  w.field("bwutil", m.bwutil);
  w.field("l2_hit_rate", m.l2_hit_rate);
  w.field("avg_read_latency_mem_cycles", m.avg_read_latency_mem_cycles);
  w.field("read_latency_p50", m.read_latency_p50);
  w.field("read_latency_p95", m.read_latency_p95);
  w.field("read_latency_p99", m.read_latency_p99);
  w.field("rbl_p50", m.rbl_hist.percentile(0.50));
  w.field("rbl_p90", m.rbl_hist.percentile(0.90));
  w.field("rbl_p99", m.rbl_hist.percentile(0.99));
  if (!m.tenants.empty()) {
    w.key("tenants");
    w.begin_array();
    for (const TenantMetrics& t : m.tenants) {
      w.begin_object();
      w.field("id", static_cast<std::uint64_t>(t.id));
      w.field("name", t.name);
      w.field("instructions", t.instructions);
      w.field("finish_core_cycle", t.finish_core_cycle);
      w.field("reads_received", t.reads_received);
      w.field("reads_served", t.reads_served);
      w.field("drops", t.drops);
      w.field("coverage", t.coverage);
      w.field("avg_read_latency_mem_cycles", t.avg_read_latency_mem_cycles);
      w.field("read_latency_p50", t.read_latency_p50);
      w.field("read_latency_p95", t.read_latency_p95);
      w.field("read_latency_p99", t.read_latency_p99);
      w.field("app_error", t.app_error);
      w.field("slowdown", t.slowdown);
      w.end_object();
    }
    w.end_array();
    w.field("jain_fairness", m.jain_fairness);
  }
  w.end_object();
}

namespace {

void write_window(telemetry::JsonWriter& w, const telemetry::WindowSample& s) {
  w.begin_object();
  w.field("index", s.index);
  w.field("start", s.start_cycle);
  w.field("end", s.end_cycle);
  w.field("ticks", s.ticks);
  w.field("bus_busy", s.bus_busy_cycles);
  w.field("bwutil", s.bwutil);
  w.field("delay_sum", s.delay_sum);
  w.field("delay", s.avg_delay);
  w.field("th_rbl_sum", s.th_rbl_sum);
  w.field("th_rbl", s.avg_th_rbl);
  w.field("queue", s.queue_occupancy);
  w.field("act", s.activations);
  w.field("row_hits", s.row_hits);
  w.field("reads", s.column_reads);
  w.field("writes", s.column_writes);
  w.field("drops", s.drops);
  w.field("reads_received", s.reads_received);
  w.field("coverage", s.coverage);
  w.field("energy_nj", s.energy_nj);
  w.field("e_row", s.energy_row_nj);
  w.field("e_access", s.energy_access_nj);
  w.field("e_bg", s.energy_background_nj);
  w.field("e_ref", s.energy_refresh_nj);
  w.field("power_w", s.avg_power_w);
  if (!s.banks.empty()) {
    w.key("banks");
    w.begin_array();
    for (const telemetry::BankWindowSample& b : s.banks) {
      w.begin_object();
      w.field("act", b.activations);
      w.field("cols", b.column_accesses);
      w.field("row_hits", b.row_hits);
      w.field("drops", b.drops);
      w.field("stall", b.dms_stall_cycles);
      w.field("active", b.active_cycles);
      w.field("energy_nj", b.energy_nj);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void write_lifecycle_section(telemetry::JsonWriter& w,
                             const telemetry::LifecycleSummary& s) {
  w.key("lifecycle");
  w.begin_object();
  w.field("sample_every", s.sample_every);
  w.field("sampled", s.sampled);
  w.field("served", s.served);
  w.field("dropped", s.dropped);
  w.field("mshr_merges", s.mshr_merges);
  w.key("phases");
  w.begin_array();
  for (const auto& p : s.phases) {
    w.begin_object();
    w.field("phase", p.phase);
    w.field("count", p.count);
    w.field("mean", p.mean);
    w.field("p50", p.p50);
    w.field("p95", p.p95);
    w.field("p99", p.p99);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// The simulator's own wall-time attribution: where the host CPU time went
// (core-side vs memory-side vs barrier stall), per-lane utilization, the
// sampled step decomposition, and the merged SelfProfiler zone tree. Present
// only when GpuConfig::self_profile armed the profiler for this run.
void write_self_profile_section(telemetry::JsonWriter& w,
                                const telemetry::SelfProfileReport& sp) {
  w.key("self_profile");
  w.begin_object();
  w.field("run_wall_seconds", sp.run_wall_seconds);
  w.field("serial_seconds", sp.serial_seconds);
  w.field("mem_serial_seconds", sp.mem_serial_seconds);
  w.field("mem_parallel_wall_seconds", sp.mem_parallel_wall_seconds);
  w.field("pool_wall_seconds", sp.pool_wall_seconds);
  w.field("barrier_stall_seconds", sp.barrier_stall_seconds);
  w.field("serial_spans", sp.serial_spans);
  w.field("parallel_epochs", sp.parallel_epochs);
  w.field("lanes", static_cast<std::uint64_t>(sp.lanes));
  const double wall = sp.run_wall_seconds;
  w.field("core_side_share", wall > 0.0 ? sp.serial_seconds / wall : 0.0);
  w.field("mem_side_share",
          wall > 0.0 ? (sp.mem_serial_seconds + sp.mem_parallel_wall_seconds) / wall
                     : 0.0);
  const double lane_wall =
      sp.pool_wall_seconds * static_cast<double>(sp.lanes > 0 ? sp.lanes : 1);
  w.field("barrier_stall_share",
          lane_wall > 0.0 ? sp.barrier_stall_seconds / lane_wall : 0.0);
  w.key("step_shares");
  w.begin_object();
  w.field("samples", sp.step_samples);
  w.field("sm_seconds", sp.sm_sample_seconds);
  w.field("icnt_seconds", sp.icnt_sample_seconds);
  w.field("partition_seconds", sp.partition_sample_seconds);
  w.end_object();
  w.key("lanes_busy");
  w.begin_array();
  for (const double busy : sp.lane_busy_seconds) {
    w.begin_object();
    w.field("busy_seconds", busy);
    w.field("utilization",
            sp.pool_wall_seconds > 0.0 ? busy / sp.pool_wall_seconds : 0.0);
    w.end_object();
  }
  w.end_array();
  w.key("zones");
  w.begin_array();
  for (const telemetry::SelfZoneNode& z : sp.zones) {
    w.begin_object();
    w.field("name", z.name);
    w.field("depth", static_cast<std::uint64_t>(z.depth));
    w.field("count", z.count);
    w.field("inclusive_seconds", z.inclusive_seconds);
    w.field("exclusive_seconds", z.exclusive_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_windows_section(telemetry::JsonWriter& w,
                           const telemetry::RunTelemetry& telemetry) {
  w.key("windows");
  w.begin_array();
  for (const auto& channel_series : telemetry.windows) {
    w.begin_array();
    for (const telemetry::WindowSample& s : channel_series) write_window(w, s);
    w.end_array();
  }
  w.end_array();
}

void write_stats_section(telemetry::JsonWriter& w,
                         const telemetry::TelemetryHub::Snapshot& s) {
  w.key("stats");
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : s.counters) w.field(name.c_str(), value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : s.gauges) w.field(name.c_str(), value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, buckets] : s.histograms) {
    w.key(name.c_str());
    w.begin_array();
    for (const std::uint64_t count : buckets) w.value(count);
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

void write_json_report(std::FILE* out, const RunMetrics& metrics,
                       const telemetry::RunTelemetry& telemetry) {
  telemetry::JsonWriter w(out);
  w.begin_object();
  write_metrics_section(w, metrics);

  w.key("profile");
  w.begin_object();
  w.field("setup_seconds", telemetry.profile.setup_seconds);
  w.field("run_seconds", telemetry.profile.run_seconds);
  w.field("collect_seconds", telemetry.profile.collect_seconds);
  w.field("core_cycles_per_second", telemetry.profile.core_cycles_per_second);
  w.end_object();

  if (telemetry.self_profile.enabled)
    write_self_profile_section(w, telemetry.self_profile);

  write_windows_section(w, telemetry);
  if (telemetry.lifecycle_enabled) write_lifecycle_section(w, telemetry.lifecycle);
  write_stats_section(w, telemetry.stats);
  w.end_object();
  std::fputc('\n', out);
}

bool write_json_report(const std::string& path, const RunMetrics& metrics,
                       const telemetry::RunTelemetry& telemetry) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    log_warn("cannot open JSON report file '%s'; report skipped", path.c_str());
    return false;
  }
  write_json_report(out, metrics, telemetry);
  std::fclose(out);
  return true;
}

}  // namespace lazydram::sim
