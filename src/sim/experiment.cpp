#include "sim/experiment.hpp"

#include "common/log.hpp"
#include "workloads/registry.hpp"

namespace lazydram::sim {

ExperimentRunner::ExperimentRunner(GpuConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
}

std::string spec_key(const core::SchemeSpec& spec) {
  std::string key = core::scheme_name(spec.kind);
  if (spec.dms_enabled && !spec.dms_dynamic)
    key += "/d" + std::to_string(spec.static_delay);
  if (spec.ams_enabled && !spec.ams_dynamic)
    key += "/t" + std::to_string(spec.static_th_rbl);
  return key;
}

RunConfig ExperimentRunner::make_config(const core::SchemeSpec& spec,
                                        bool compute_error) const {
  RunConfig config;
  config.gpu = cfg_;
  config.spec = spec;
  config.compute_error = compute_error;
  config.check = check_;
  return config;
}

const RunMetrics& ExperimentRunner::run_keyed(const std::string& workload,
                                              const RunConfig& config,
                                              const std::string& key) {
  const std::string cache_key = workload + "|" + key;
  const auto it = cache_.find(cache_key);
  if (it != cache_.end()) return it->second;

  log_info("running %s", cache_key.c_str());
  const auto wl = workloads::make_workload(workload);
  RunMetrics metrics = simulate(*wl, config);
  return cache_.emplace(cache_key, std::move(metrics)).first->second;
}

const RunMetrics& ExperimentRunner::run(const std::string& workload,
                                        const core::SchemeSpec& spec,
                                        bool compute_error) {
  return run_keyed(workload, make_config(spec, compute_error),
                   spec_key(spec) + (compute_error ? "" : "/noerr"));
}

const RunMetrics& ExperimentRunner::run_scheme(const std::string& workload,
                                               core::SchemeKind kind,
                                               bool compute_error) {
  return run(workload, core::make_scheme_spec(kind, cfg_.scheme), compute_error);
}

const RunMetrics& ExperimentRunner::baseline(const std::string& workload) {
  return run_scheme(workload, core::SchemeKind::kBaseline, /*compute_error=*/false);
}

const RunMetrics& ExperimentRunner::run_custom(const std::string& workload,
                                               const RunConfig& config,
                                               const std::string& key) {
  return run_keyed(workload, config, key);
}

void ExperimentRunner::prefetch_custom(const std::string& workload,
                                       const RunConfig& config,
                                       const std::string& key) {
  const std::string cache_key = workload + "|" + key;
  if (cache_.count(cache_key) != 0 || !pending_keys_.insert(cache_key).second) return;
  pending_.push_back(SweepJob{workload, config, cache_key});
}

void ExperimentRunner::prefetch(const std::string& workload, const core::SchemeSpec& spec,
                                bool compute_error) {
  prefetch_custom(workload, make_config(spec, compute_error),
                  spec_key(spec) + (compute_error ? "" : "/noerr"));
}

void ExperimentRunner::prefetch_scheme(const std::string& workload, core::SchemeKind kind,
                                       bool compute_error) {
  prefetch(workload, core::make_scheme_spec(kind, cfg_.scheme), compute_error);
}

void ExperimentRunner::prefetch_baseline(const std::string& workload) {
  prefetch_scheme(workload, core::SchemeKind::kBaseline, /*compute_error=*/false);
}

std::size_t ExperimentRunner::flush() {
  if (pending_.empty()) return 0;
  std::vector<SweepJob> jobs;
  jobs.swap(pending_);
  pending_keys_.clear();

  std::vector<SweepResult> results = engine_.run(std::move(jobs));
  const std::size_t executed = results.size();
  for (SweepResult& r : results) {
    // Failed jobs stay uncached: the corresponding run_* call retries
    // serially and surfaces the error where the result is actually needed.
    if (r.ok) cache_.emplace(r.label, r.output.metrics);
    flushed_.push_back(std::move(r));
  }
  return executed;
}

bool ExperimentRunner::write_sweep_report(const std::string& path) const {
  if (path.empty()) return false;
  return sim::write_sweep_report(path, flushed_, engine_.profile());
}

}  // namespace lazydram::sim
