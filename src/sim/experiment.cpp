#include "sim/experiment.hpp"

#include "common/log.hpp"
#include "workloads/registry.hpp"

namespace lazydram::sim {

ExperimentRunner::ExperimentRunner(GpuConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
}

std::string spec_key(const core::SchemeSpec& spec) {
  std::string key = core::scheme_name(spec.kind);
  if (spec.dms_enabled && !spec.dms_dynamic)
    key += "/d" + std::to_string(spec.static_delay);
  if (spec.ams_enabled && !spec.ams_dynamic)
    key += "/t" + std::to_string(spec.static_th_rbl);
  return key;
}

const RunMetrics& ExperimentRunner::run_keyed(const std::string& workload,
                                              const RunConfig& config,
                                              const std::string& key) {
  const std::string cache_key = workload + "|" + key;
  const auto it = cache_.find(cache_key);
  if (it != cache_.end()) return it->second;

  log_info("running %s", cache_key.c_str());
  const auto wl = workloads::make_workload(workload);
  RunMetrics metrics = simulate(*wl, config);
  return cache_.emplace(cache_key, std::move(metrics)).first->second;
}

const RunMetrics& ExperimentRunner::run(const std::string& workload,
                                        const core::SchemeSpec& spec,
                                        bool compute_error) {
  RunConfig config;
  config.gpu = cfg_;
  config.spec = spec;
  config.compute_error = compute_error;
  return run_keyed(workload, config, spec_key(spec) + (compute_error ? "" : "/noerr"));
}

const RunMetrics& ExperimentRunner::run_scheme(const std::string& workload,
                                               core::SchemeKind kind,
                                               bool compute_error) {
  return run(workload, core::make_scheme_spec(kind, cfg_.scheme), compute_error);
}

const RunMetrics& ExperimentRunner::baseline(const std::string& workload) {
  return run_scheme(workload, core::SchemeKind::kBaseline, /*compute_error=*/false);
}

const RunMetrics& ExperimentRunner::run_custom(const std::string& workload,
                                               const RunConfig& config,
                                               const std::string& key) {
  return run_keyed(workload, config, key);
}

}  // namespace lazydram::sim
