// Deterministic parallel sweep engine. Every figure reproduction runs a grid
// of (workload, config) simulations that are fully independent — each job
// builds its own GpuTop and Telemetry — so the engine fans them out across a
// thread pool and returns the results in submission order. Guarantees:
//
//   * Determinism: RunMetrics / RunTelemetry of each job are bit-identical
//     to a serial run — a job never shares mutable state with another job,
//     and results are stored by submission index, so tables, CSV and JSON
//     reports built from a sweep are byte-identical whatever `jobs` is.
//   * Telemetry isolation: when $LAZYDRAM_TRACE / $LAZYDRAM_JSON ask for
//     per-run output files, each job writes to a path derived from its label
//     (trace.jsonl -> trace.<label>.jsonl) instead of racing on one file;
//     jobs sharing a label (or whose labels sanitize to the same file name)
//     additionally get their submission index spliced in, so no two jobs
//     ever write the same derived path.
//   * Fault isolation: an exception inside one job is captured into that
//     job's SweepResult; the remaining jobs still run.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace lazydram::sim {

/// One simulation of the sweep: a registered workload name, the full run
/// configuration, and a label unique within the sweep (used for progress
/// logs, derived telemetry paths and the merged report's section names).
struct SweepJob {
  std::string workload;
  RunConfig config;
  std::string label;
};

/// Outcome of one job. `output` is valid iff `ok`.
struct SweepResult {
  std::string workload;
  std::string label;
  RunOutput output;
  bool ok = false;
  std::string error;         ///< Exception text when !ok.
  double wall_seconds = 0.0; ///< Host time this job took on its worker.
};

/// Wall-clock accounting of a sweep: `serial_seconds` is what the same jobs
/// would have cost back-to-back (sum of per-job times), so
/// `serial_seconds / wall_seconds` is the realized parallel speedup.
struct SweepProfile {
  unsigned jobs = 1;             ///< Worker threads used.
  std::size_t jobs_submitted = 0;
  std::size_t jobs_failed = 0;
  double wall_seconds = 0.0;     ///< Whole-sweep host time.
  double serial_seconds = 0.0;   ///< Sum of per-job host times.
  double speedup() const {
    return wall_seconds > 0.0 ? serial_seconds / wall_seconds : 1.0;
  }
};

class SweepEngine {
 public:
  /// `jobs` worker threads; 0 resolves through default_jobs() ($LAZYDRAM_JOBS,
  /// falling back to std::thread::hardware_concurrency()).
  explicit SweepEngine(unsigned jobs = 0);

  unsigned jobs() const { return jobs_; }

  /// Re-targets the worker count for subsequent run() calls (0 resolves
  /// through default_jobs() again).
  void set_jobs(unsigned jobs);

  /// Checked mode: every job whose RunConfig leaves `check` empty runs with
  /// this protocol-checker mode ("off" | "log" | "strict"; "" defers to
  /// $LAZYDRAM_CHECK). A strict-mode violation fails only its own job — the
  /// fault-isolation boundary captures the ViolationError into that job's
  /// SweepResult and the rest of the sweep still runs.
  void set_check(const std::string& mode) { check_override_ = mode; }

  /// Runs every job (at most jobs() concurrently) and returns the results in
  /// submission order. Accumulates into profile() across calls.
  std::vector<SweepResult> run(std::vector<SweepJob> sweep_jobs);

  const SweepProfile& profile() const { return profile_; }

 private:
  unsigned jobs_;
  SweepProfile profile_;
  std::string check_override_;
};

/// $LAZYDRAM_JOBS if set to a positive integer, else hardware concurrency
/// (minimum 1). An unparsable value warns and falls through.
unsigned default_jobs();

/// `--jobs N` from argv, else default_jobs(). `--jobs` without a value (or a
/// non-positive one) warns and is ignored.
unsigned parse_jobs(int argc, char** argv);

/// `--check MODE` from argv, else "" (which defers to $LAZYDRAM_CHECK).
/// `--check` without a value warns and is ignored; the mode string itself is
/// validated later by check::parse_check_mode.
std::string parse_check(int argc, char** argv);

/// `--self-profile` from argv: arm the wall-clock self-profiler for every
/// run the bench launches (false when absent; $LAZYDRAM_SELFPROF can still
/// turn it on per-run).
bool parse_self_profile(int argc, char** argv);

/// `--heartbeat SECONDS` from argv, else 0 (off; $LAZYDRAM_HEARTBEAT can
/// still turn it on per-run). A missing or non-positive value warns and is
/// ignored.
double parse_heartbeat(int argc, char** argv);

/// `label` reduced to [A-Za-z0-9._-] (everything else becomes '_') so it is
/// safe inside a file name.
std::string sanitize_label(const std::string& label);

/// Splices the sanitized label into `base` before its extension:
/// ("runs/trace.jsonl", "SCP|Dyn-DMS") -> "runs/trace.SCP_Dyn-DMS.jsonl".
std::string derived_output_path(const std::string& base, const std::string& label);

/// Merged sweep-level report: one JSON document with a per-job section
/// (label, metrics, windows, stats — deterministic across `jobs` settings)
/// followed by the sweep's wall-clock profile (serial-vs-parallel speedup).
/// Returns false (after log_warn) when the file cannot be opened.
bool write_sweep_report(const std::string& path, const std::vector<SweepResult>& results,
                        const SweepProfile& profile);

}  // namespace lazydram::sim
