#include "sim/characterize.hpp"

#include "workloads/registry.hpp"

namespace lazydram::sim {

using workloads::Level;

Level classify_thrashing(double rbl18_share) {
  if (rbl18_share >= 0.10) return Level::kHigh;
  if (rbl18_share >= 0.03) return Level::kMedium;
  return Level::kLow;
}

Level classify_delay_tolerance(Cycle mtd) {
  if (mtd >= 1024) return Level::kHigh;
  if (mtd >= 256) return Level::kMedium;
  return Level::kLow;
}

Level classify_act_sensitivity(double reduction) {
  if (reduction >= 0.20) return Level::kHigh;
  if (reduction >= 0.10) return Level::kMedium;
  return Level::kLow;
}

bool classify_th_sensitivity(double extra_reduction) { return extra_reduction >= 0.05; }

Level classify_error_tolerance(double error) {
  if (error >= 0.20) return Level::kLow;
  if (error >= 0.05) return Level::kMedium;
  return Level::kHigh;
}

Characterization characterize(ExperimentRunner& runner, const std::string& workload) {
  Characterization c;
  c.name = workload;
  {
    const auto wl = workloads::make_workload(workload);
    c.group = wl->group();
    c.declared = wl->targets();
  }
  const SchemeParams& params = runner.config().scheme;

  const RunMetrics& base = runner.baseline(workload);
  c.rbl18_request_share = base.request_share_with_rbl(1, 8);
  c.thrashing = classify_thrashing(c.rbl18_request_share);

  // MTD: probe the Table III band edges (256, 1024) plus the 2048 max.
  const auto ipc_at = [&](Cycle delay) {
    const RunMetrics& m =
        runner.run(workload, core::make_static_dms_spec(delay, params), false);
    return m.ipc / base.ipc;
  };
  c.mtd = 0;
  for (const Cycle delay : {Cycle{256}, Cycle{1024}, Cycle{2048}}) {
    if (ipc_at(delay) >= 0.95)
      c.mtd = delay;
    else
      break;
  }
  c.delay_tolerance = classify_delay_tolerance(c.mtd);

  const RunMetrics& dms2048 =
      runner.run(workload, core::make_static_dms_spec(2048, params), false);
  c.act_reduction_2048 =
      1.0 - static_cast<double>(dms2048.activations) / static_cast<double>(base.activations);
  c.act_sensitivity = classify_act_sensitivity(c.act_reduction_2048);

  // Th_RBL sensitivity: extra activation reduction of AMS(2) over AMS(8).
  const RunMetrics& ams8 =
      runner.run(workload, core::make_static_ams_spec(8, params), /*compute_error=*/true);
  const RunMetrics& ams2 =
      runner.run(workload, core::make_static_ams_spec(2, params), false);
  c.th_extra_reduction =
      (static_cast<double>(ams8.activations) - static_cast<double>(ams2.activations)) /
      static_cast<double>(base.activations);
  c.th_rbl_sensitive = classify_th_sensitivity(c.th_extra_reduction);

  c.app_error = ams8.app_error;
  c.coverage = ams8.coverage;
  c.error_tolerance = classify_error_tolerance(c.app_error);
  return c;
}

void prefetch_characterization(ExperimentRunner& runner, const std::string& workload) {
  const SchemeParams& params = runner.config().scheme;
  runner.prefetch_baseline(workload);
  for (const Cycle delay : {Cycle{256}, Cycle{1024}, Cycle{2048}})
    runner.prefetch(workload, core::make_static_dms_spec(delay, params), false);
  runner.prefetch(workload, core::make_static_ams_spec(8, params), /*compute_error=*/true);
  runner.prefetch(workload, core::make_static_ams_spec(2, params), false);
}

std::vector<Characterization> characterize_all(ExperimentRunner& runner) {
  for (const std::string& name : workloads::all_workload_names())
    prefetch_characterization(runner, name);
  runner.flush();

  std::vector<Characterization> out;
  for (const std::string& name : workloads::all_workload_names())
    out.push_back(characterize(runner, name));
  return out;
}

}  // namespace lazydram::sim
