#include "sim/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "workloads/registry.hpp"

namespace lazydram::sim {

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(std::max(v, 1e-12));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double ratio(double value, double base) { return base == 0.0 ? 0.0 : value / base; }

void print_bench_header(const std::string& experiment, const std::string& paper_result) {
  log_level();  // Resolve LAZYDRAM_LOG up front so a typo in it warns even
                // if the run never logs.
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper reports: %s\n", paper_result.c_str());
  std::printf("==============================================================\n");
}

bool full_sweep_requested() {
  const char* v = std::getenv("LAZYDRAM_FULL");
  return v != nullptr && v[0] == '1';
}

std::vector<std::string> bench_workloads() {
  if (full_sweep_requested()) return workloads::all_workload_names();
  // Representative subset: every group, every feature level represented.
  return {"SCP", "LPS", "GEMM", "MVT", "RAY", "FWT", "3MM", "blackscholes"};
}

std::string json_output_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 >= argc) {
      log_warn("--json given without a path; ignoring");
      break;
    }
    return argv[i + 1];
  }
  const char* env = std::getenv("LAZYDRAM_JSON");
  return env == nullptr ? std::string{} : std::string{env};
}

}  // namespace lazydram::sim
