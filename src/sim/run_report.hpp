// Machine-readable run report: one JSON document per run with the
// end-of-run metrics, the full telemetry stat snapshot, the per-window time
// series, and the wall-clock profile. Bench binaries write this next to
// their human-readable tables (sim::json_output_path picks the path).
#pragma once

#include <cstdio>
#include <string>

#include "sim/metrics.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace lazydram::sim {

/// Writes `metrics` + `telemetry` as one JSON document to `path`. Returns
/// false (after log_warn) when the file cannot be opened.
bool write_json_report(const std::string& path, const RunMetrics& metrics,
                       const telemetry::RunTelemetry& telemetry);

/// Same, onto an already-open stream (exposed for multi-run bench reports).
void write_json_report(std::FILE* out, const RunMetrics& metrics,
                       const telemetry::RunTelemetry& telemetry);

// --- Section writers -------------------------------------------------------
// Building blocks of the run report, exposed so the sweep-level merged
// report (sim/sweep.hpp) emits byte-identical per-run sections. Each writes
// one key ("metrics" / "windows" / "stats") into the currently open object.

void write_metrics_section(telemetry::JsonWriter& w, const RunMetrics& metrics);
void write_windows_section(telemetry::JsonWriter& w,
                           const telemetry::RunTelemetry& telemetry);
void write_stats_section(telemetry::JsonWriter& w,
                         const telemetry::TelemetryHub::Snapshot& stats);

}  // namespace lazydram::sim
