// Multi-tenant experiment driver: one shared run of a TenantSet plus each
// tenant's alone-run baseline, combined into per-tenant slowdowns and a Jain
// fairness index.
//
// Slowdown_t = (core cycle tenant t's last warp retired in the shared run) /
// (core cycle the same client's last warp retired running alone on the same
// machine). Both ends use warp retirement — not whole-run core_cycles — so
// the memory drain tail after an unrelated tenant's last write never skews a
// tenant's slowdown.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "gpu/tenant.hpp"
#include "sim/simulator.hpp"

namespace lazydram::sim {

/// Jain fairness index (Σx)² / (N·Σx²) over per-tenant slowdowns: 1.0 means
/// every tenant suffers equally, 1/N means one tenant absorbs all the
/// interference. Empty or all-zero input returns 0.
double jain_index(const std::vector<double>& xs);

struct MultitenantResult {
  /// The shared run; metrics.tenants[].slowdown and metrics.jain_fairness
  /// are filled here (collect_metrics leaves them 0 — they need baselines).
  RunOutput shared;
  /// Per-tenant alone-run baselines, indexed by tenant id. Empty for a
  /// single-tenant set (slowdown is trivially 1).
  std::vector<RunMetrics> alone;
};

/// Runs the shared simulation (after installing the set's QoS budgets via
/// TenantSet::apply_qos) and then every tenant's alone-run baseline, up to
/// `jobs` baselines in parallel. Baseline results are stored by tenant index
/// and each lane suppresses env-named outputs, so the result is bit-identical
/// for any `jobs` value.
MultitenantResult run_multitenant(const gpu::TenantSet& tenants,
                                  const RunConfig& config, unsigned jobs = 1);

/// Writes the multi-tenant JSON report: the shared run's metrics section
/// (with per-tenant slices, slowdowns and the Jain index) plus an "alone"
/// baseline array. Contains no wall-clock fields, so serial and parallel
/// runs of the same config produce byte-identical output.
void write_multitenant_report(std::FILE* out, const MultitenantResult& r);
bool write_multitenant_report(const std::string& path, const MultitenantResult& r);

}  // namespace lazydram::sim
