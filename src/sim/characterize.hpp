// Table II / Table III reproduction: measure each application model's five
// features and classify them with the paper's thresholds.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "workloads/workload.hpp"

namespace lazydram::sim {

struct Characterization {
  std::string name;
  unsigned group = 0;

  double rbl18_request_share = 0.0;  ///< % requests in RBL(1-8) rows.
  workloads::Level thrashing = workloads::Level::kLow;

  Cycle mtd = 0;  ///< Largest tested delay keeping IPC >= 95% of baseline.
  workloads::Level delay_tolerance = workloads::Level::kLow;

  double act_reduction_2048 = 0.0;  ///< Activation reduction at DMS(2048).
  workloads::Level act_sensitivity = workloads::Level::kLow;

  double th_extra_reduction = 0.0;  ///< Extra act. reduction, best Th vs Th=8.
  bool th_rbl_sensitive = false;

  double app_error = 0.0;  ///< Error under Static-AMS at the coverage cap.
  double coverage = 0.0;   ///< Coverage actually reached by Static-AMS.
  workloads::Level error_tolerance = workloads::Level::kLow;

  workloads::FeatureTargets declared;  ///< The model's Table II targets.
};

// --- Table III threshold classifiers -------------------------------------

workloads::Level classify_thrashing(double rbl18_share);          // 3% / 10%
workloads::Level classify_delay_tolerance(Cycle mtd);             // 256 / 1024
workloads::Level classify_act_sensitivity(double reduction);      // 10% / 20%
bool classify_th_sensitivity(double extra_reduction);             // 5%
workloads::Level classify_error_tolerance(double error);          // 20% / 5%

/// Measures one workload (several cached simulations via `runner`).
Characterization characterize(ExperimentRunner& runner, const std::string& workload);

/// Queues every simulation characterize() may need into the runner's sweep
/// queue (call runner.flush() afterwards). The MTD probe is data-dependent —
/// serial runs skip DMS(1024) when DMS(256) already fails the 95% IPC bar —
/// so this prefetches the full probe grid; the extra run only costs compute,
/// never changes a result.
void prefetch_characterization(ExperimentRunner& runner, const std::string& workload);

/// Measures every registered workload in Table II order. Prefetches the
/// whole grid through the runner's sweep engine before measuring.
std::vector<Characterization> characterize_all(ExperimentRunner& runner);

}  // namespace lazydram::sim
