// Small reporting helpers shared by the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "sim/metrics.hpp"

namespace lazydram::sim {

/// Geometric mean (benches aggregate normalized ratios, where the geomean is
/// the meaningful average). Empty input yields 1.0.
double geomean(const std::vector<double>& values);

/// Arithmetic mean; empty input yields 0.0.
double mean(const std::vector<double>& values);

/// "value (vs base)" ratio; guards a zero base.
double ratio(double value, double base);

/// Standard bench header: prints the experiment id and what the paper
/// reported, so every bench's output is self-describing.
void print_bench_header(const std::string& experiment, const std::string& paper_result);

/// True when LAZYDRAM_FULL=1 is set: benches then sweep every registered
/// workload instead of the representative subset (slower, fuller figures).
bool full_sweep_requested();

/// The workloads a bench sweeps: all 20 under LAZYDRAM_FULL=1, otherwise a
/// representative subset spanning all four groups and feature levels.
std::vector<std::string> bench_workloads();

/// Where a bench should write its machine-readable JSON output: the value of
/// a `--json <path>` argument if present, else $LAZYDRAM_JSON, else "" (no
/// JSON output requested). A trailing `--json` with no path warns and is
/// ignored.
std::string json_output_path(int argc, char** argv);

}  // namespace lazydram::sim
