#include "sim/metrics.hpp"

#include "workloads/mix.hpp"

namespace lazydram::sim {

double RunMetrics::request_share_with_rbl(std::uint64_t lo, std::uint64_t hi) const {
  const std::uint64_t accesses = dram_reads + dram_writes;
  if (accesses == 0) return 0.0;
  std::uint64_t served = 0;
  for (std::uint64_t k = lo; k <= hi && k <= rbl_hist.max_key(); ++k)
    served += k * rbl_hist.at(k);
  return static_cast<double>(served) / static_cast<double>(accesses);
}

RunMetrics collect_metrics(const gpu::GpuTop& gpu, const workloads::Workload& workload,
                           const std::string& scheme_name, bool compute_error,
                           const telemetry::TelemetryHub* hub_in) {
  using telemetry::channel_stat;

  // All per-component values flow through the stat registry; callers that
  // already hold a populated hub (sim::simulate) pass it in, everyone else
  // gets a local registration. Counter sums are exact, so the result is
  // bit-identical either way.
  telemetry::TelemetryHub local;
  if (hub_in == nullptr) gpu.register_stats(local);
  const telemetry::TelemetryHub& hub = hub_in != nullptr ? *hub_in : local;

  RunMetrics m;
  m.workload = workload.name();
  m.scheme = scheme_name;
  m.finished = gpu.finished();
  m.core_cycles = hub.counter("gpu.core_cycles");
  m.mem_cycles = hub.counter("gpu.mem_cycles");
  m.instructions = hub.counter("gpu.instructions");
  m.ipc = hub.gauge("gpu.ipc");
  for (TenantId t = 0; t < gpu.num_tenants(); ++t)
    if (gpu.tenant_finish_cycle(t) > m.warps_finish_core_cycle)
      m.warps_finish_core_cycle = gpu.tenant_finish_cycle(t);

  std::uint64_t bus_busy = 0;
  double latency_weighted = 0.0;
  std::uint64_t latency_count = 0;
  std::uint64_t l2_hits = 0, l2_accesses = 0;
  double delay_weight = 0.0, th_weight = 0.0;
  unsigned lazy_channels = 0;

  for (ChannelId ch = 0; ch < gpu.num_channels(); ++ch) {
    m.activations += hub.counter(channel_stat("dram", ch, "activations"));
    m.dram_reads += hub.counter(channel_stat("dram", ch, "column_reads"));
    m.dram_writes += hub.counter(channel_stat("dram", ch, "column_writes"));
    m.drops += hub.counter(channel_stat("mem", ch, "reads_dropped"));
    m.reads_received += hub.counter(channel_stat("mem", ch, "reads_received"));
    m.row_energy_nj += hub.gauge(channel_stat("dram", ch, "row_energy_nj"));
    m.access_energy_nj += hub.gauge(channel_stat("dram", ch, "access_energy_nj"));
    bus_busy += hub.counter(channel_stat("dram", ch, "bus_busy_cycles"));

    const std::string bg_stat = channel_stat("dram", ch, "background_energy_nj");
    if (hub.has_gauge(bg_stat)) {
      m.background_energy_nj += hub.gauge(bg_stat);
      m.refresh_energy_nj += hub.gauge(channel_stat("dram", ch, "refresh_energy_nj"));
      // Per-bank energies fold across channels (bank b of every channel
      // into entry b), matching the per-bank window heatmap's axis.
      for (unsigned b = 0;; ++b) {
        const std::string bank_stat =
            channel_stat("dram", ch, "bank" + std::to_string(b) + ".energy_nj");
        if (!hub.has_gauge(bank_stat)) break;
        if (m.bank_energy_nj.size() <= b) m.bank_energy_nj.resize(b + 1, 0.0);
        m.bank_energy_nj[b] += hub.gauge(bank_stat);
      }
    }

    // Histogram::merge keeps the overflow bucket and the true-key weighted
    // sum exact; re-adding buckets through add() would fold overflowed
    // samples back in at the clamped key and skew the merged mean.
    m.rbl_hist.merge(hub.histogram(channel_stat("dram", ch, "rbl")));
    m.rbl_readonly_hist.merge(hub.histogram(channel_stat("dram", ch, "rbl_readonly")));

    const std::uint64_t lat_count =
        hub.counter(channel_stat("mem", ch, "read_latency_count"));
    latency_weighted += hub.gauge(channel_stat("mem", ch, "read_latency_mean")) *
                        static_cast<double>(lat_count);
    latency_count += lat_count;
    m.read_latency_hist.merge(hub.histogram(channel_stat("mem", ch, "read_latency")));

    l2_hits += hub.counter(channel_stat("cache.l2", ch, "hits"));
    l2_accesses += hub.counter(channel_stat("cache.l2", ch, "accesses"));

    const std::string avg_delay_stat = channel_stat("core", ch, "dms.avg_delay");
    if (hub.has_gauge(avg_delay_stat)) {
      delay_weight += hub.gauge(avg_delay_stat);
      th_weight += hub.gauge(channel_stat("core", ch, "ams.avg_th_rbl"));
      ++lazy_channels;
    }
  }

  m.total_energy_nj = m.row_energy_nj + m.access_energy_nj +
                      m.background_energy_nj + m.refresh_energy_nj;
  if (m.background_energy_nj > 0.0 && m.total_energy_nj > 0.0)
    m.measured_row_share = m.row_energy_nj / m.total_energy_nj;
  if (m.background_energy_nj > 0.0 && m.mem_cycles > 0)
    m.avg_power_w = m.total_energy_nj / static_cast<double>(m.mem_cycles) *
                    static_cast<double>(gpu.config().mem_clock_mhz) * 1e-3;
  const std::uint64_t accesses = m.dram_reads + m.dram_writes;
  m.avg_rbl = m.activations == 0
                  ? 0.0
                  : static_cast<double>(accesses) / static_cast<double>(m.activations);
  m.coverage = m.reads_received == 0
                   ? 0.0
                   : static_cast<double>(m.drops) / static_cast<double>(m.reads_received);
  // BWUTIL is per-channel utilization; the numerator sums over channels.
  m.bwutil = m.mem_cycles == 0 ? 0.0
                               : static_cast<double>(bus_busy) /
                                     (static_cast<double>(m.mem_cycles) * gpu.num_channels());
  m.avg_read_latency_mem_cycles =
      latency_count == 0 ? 0.0 : latency_weighted / static_cast<double>(latency_count);
  m.read_latency_p50 = m.read_latency_hist.percentile(0.50);
  m.read_latency_p95 = m.read_latency_hist.percentile(0.95);
  m.read_latency_p99 = m.read_latency_hist.percentile(0.99);
  m.l2_hit_rate =
      l2_accesses == 0 ? 0.0 : static_cast<double>(l2_hits) / static_cast<double>(l2_accesses);
  if (lazy_channels > 0) {
    m.avg_delay = delay_weight / lazy_channels;
    m.avg_th_rbl = th_weight / lazy_channels;
  }

  if (compute_error && !gpu.fmem().overlay().empty())
    m.app_error = workload.application_error(gpu.fmem());

  // Per-tenant slices (multi-tenant runs only). Counters come straight from
  // the controllers' per-tenant accounting; per-tenant latency histograms
  // merge over channels exactly like the aggregate above.
  if (gpu.num_tenants() > 1) {
    std::vector<double> tenant_errors;
    const auto* mix = dynamic_cast<const workloads::MixWorkload*>(&workload);
    if (compute_error && mix != nullptr && !gpu.fmem().overlay().empty())
      tenant_errors = mix->tenant_application_errors(gpu.fmem());

    for (TenantId t = 0; t < gpu.num_tenants(); ++t) {
      TenantMetrics tm;
      tm.id = t;
      tm.name = workload.tenant_name(t);
      tm.instructions = gpu.tenant_instructions(t);
      tm.finish_core_cycle = gpu.tenant_finish_cycle(t);
      for (ChannelId ch = 0; ch < gpu.num_channels(); ++ch) {
        const MemoryController& mc = gpu.controller(ch);
        if (t >= mc.num_tenants()) continue;
        tm.reads_received += mc.tenant_reads_received(t);
        tm.reads_served += mc.tenant_reads_served(t);
        tm.drops += mc.tenant_reads_dropped(t);
        tm.read_latency_hist.merge(mc.tenant_read_latency_hist(t));
      }
      tm.coverage = tm.reads_received == 0
                        ? 0.0
                        : static_cast<double>(tm.drops) /
                              static_cast<double>(tm.reads_received);
      tm.avg_read_latency_mem_cycles = tm.read_latency_hist.mean();
      tm.read_latency_p50 = tm.read_latency_hist.percentile(0.50);
      tm.read_latency_p95 = tm.read_latency_hist.percentile(0.95);
      tm.read_latency_p99 = tm.read_latency_hist.percentile(0.99);
      if (t < tenant_errors.size()) tm.app_error = tenant_errors[t];
      m.tenants.push_back(std::move(tm));
    }
  }
  return m;
}

}  // namespace lazydram::sim
