#include "sim/metrics.hpp"

namespace lazydram::sim {

double RunMetrics::request_share_with_rbl(std::uint64_t lo, std::uint64_t hi) const {
  const std::uint64_t accesses = dram_reads + dram_writes;
  if (accesses == 0) return 0.0;
  std::uint64_t served = 0;
  for (std::uint64_t k = lo; k <= hi && k <= rbl_hist.max_key(); ++k)
    served += k * rbl_hist.at(k);
  return static_cast<double>(served) / static_cast<double>(accesses);
}

RunMetrics collect_metrics(const gpu::GpuTop& gpu, const workloads::Workload& workload,
                           const std::string& scheme_name, bool compute_error) {
  RunMetrics m;
  m.workload = workload.name();
  m.scheme = scheme_name;
  m.finished = gpu.finished();
  m.core_cycles = gpu.core_cycles();
  m.mem_cycles = gpu.mem_cycles();
  m.instructions = gpu.instructions();
  m.ipc = gpu.ipc();

  std::uint64_t bus_busy = 0;
  double latency_weighted = 0.0;
  std::uint64_t latency_count = 0;
  std::uint64_t l2_hits = 0, l2_accesses = 0;
  double delay_weight = 0.0, th_weight = 0.0;
  unsigned lazy_channels = 0;

  for (ChannelId ch = 0; ch < gpu.num_channels(); ++ch) {
    const MemoryController& mc = gpu.controller(ch);
    const dram::DramChannel& dc = mc.channel();

    m.activations += dc.activations();
    m.dram_reads += dc.energy().read_accesses();
    m.dram_writes += dc.energy().write_accesses();
    m.drops += mc.reads_dropped();
    m.reads_received += mc.reads_received();
    m.row_energy_nj += dc.energy().row_energy_nj();
    m.access_energy_nj += dc.energy().access_energy_nj();
    bus_busy += dc.bus_busy_cycles();

    const Histogram& h = dc.rbl_histogram();
    for (std::uint64_t k = 0; k <= h.max_key(); ++k) m.rbl_hist.add(k, h.at(k));
    m.rbl_hist.add(h.max_key() + 1, h.overflow());
    const Histogram& hr = dc.rbl_readonly_histogram();
    for (std::uint64_t k = 0; k <= hr.max_key(); ++k) m.rbl_readonly_hist.add(k, hr.at(k));
    m.rbl_readonly_hist.add(hr.max_key() + 1, hr.overflow());

    latency_weighted += mc.read_latency().mean() * static_cast<double>(mc.read_latency().count());
    latency_count += mc.read_latency().count();

    l2_hits += gpu.l2(ch).hits();
    l2_accesses += gpu.l2(ch).accesses();

    if (const core::LazyScheduler* lazy = gpu.lazy(ch)) {
      delay_weight += lazy->average_delay();
      th_weight += lazy->average_th_rbl();
      ++lazy_channels;
    }
  }

  m.total_energy_nj = m.row_energy_nj + m.access_energy_nj;
  const std::uint64_t accesses = m.dram_reads + m.dram_writes;
  m.avg_rbl = m.activations == 0
                  ? 0.0
                  : static_cast<double>(accesses) / static_cast<double>(m.activations);
  m.coverage = m.reads_received == 0
                   ? 0.0
                   : static_cast<double>(m.drops) / static_cast<double>(m.reads_received);
  // BWUTIL is per-channel utilization; the numerator sums over channels.
  m.bwutil = m.mem_cycles == 0 ? 0.0
                               : static_cast<double>(bus_busy) /
                                     (static_cast<double>(m.mem_cycles) * gpu.num_channels());
  m.avg_read_latency_mem_cycles =
      latency_count == 0 ? 0.0 : latency_weighted / static_cast<double>(latency_count);
  m.l2_hit_rate =
      l2_accesses == 0 ? 0.0 : static_cast<double>(l2_hits) / static_cast<double>(l2_accesses);
  if (lazy_channels > 0) {
    m.avg_delay = delay_weight / lazy_channels;
    m.avg_th_rbl = th_weight / lazy_channels;
  }

  if (compute_error && !gpu.fmem().overlay().empty())
    m.app_error = workload.application_error(gpu.fmem());
  return m;
}

}  // namespace lazydram::sim
