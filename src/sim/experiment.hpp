// Memoizing experiment runner shared by the benches: each (workload, scheme,
// config-variant) simulation runs once per process and is cached, so a bench
// that prints several views of the same runs (e.g. Fig. 12a-d) pays for them
// once.
#pragma once

#include <map>
#include <string>

#include "common/config.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"

namespace lazydram::sim {

class ExperimentRunner {
 public:
  explicit ExperimentRunner(GpuConfig cfg = GpuConfig{});

  /// Runs `workload` under `spec` (cached). Application error is computed
  /// for AMS-bearing schemes unless `compute_error` is false.
  const RunMetrics& run(const std::string& workload, const core::SchemeSpec& spec,
                        bool compute_error = true);

  /// Runs one of the seven named paper schemes (cached).
  const RunMetrics& run_scheme(const std::string& workload, core::SchemeKind kind,
                               bool compute_error = true);

  /// Baseline FR-FCFS run (cached).
  const RunMetrics& baseline(const std::string& workload);

  /// Fully custom run; `key` must uniquely identify the configuration.
  const RunMetrics& run_custom(const std::string& workload, const RunConfig& config,
                               const std::string& key);

  const GpuConfig& config() const { return cfg_; }

  std::size_t runs_executed() const { return cache_.size(); }

 private:
  const RunMetrics& run_keyed(const std::string& workload, const RunConfig& config,
                              const std::string& key);

  GpuConfig cfg_;
  std::map<std::string, RunMetrics> cache_;
};

/// Cache key fragment describing a scheme spec (delay/threshold resolved).
std::string spec_key(const core::SchemeSpec& spec);

}  // namespace lazydram::sim
