// Memoizing experiment runner shared by the benches: each (workload, scheme,
// config-variant) simulation runs once per process and is cached, so a bench
// that prints several views of the same runs (e.g. Fig. 12a-d) pays for them
// once.
//
// Benches declare their whole grid up front with the prefetch_* mirrors of
// the run_* calls, then flush(): the pending jobs fan out across the
// SweepEngine's worker threads (--jobs / $LAZYDRAM_JOBS) and land in the
// cache, after which the run_* calls are pure lookups. Results are inserted
// in submission order and each job is fully isolated, so bench output is
// byte-identical whatever the job count; anything not prefetched simply
// falls back to running serially on first use.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace lazydram::sim {

class ExperimentRunner {
 public:
  explicit ExperimentRunner(GpuConfig cfg = GpuConfig{});

  /// Runs `workload` under `spec` (cached). Application error is computed
  /// for AMS-bearing schemes unless `compute_error` is false.
  const RunMetrics& run(const std::string& workload, const core::SchemeSpec& spec,
                        bool compute_error = true);

  /// Runs one of the seven named paper schemes (cached).
  const RunMetrics& run_scheme(const std::string& workload, core::SchemeKind kind,
                               bool compute_error = true);

  /// Baseline FR-FCFS run (cached).
  const RunMetrics& baseline(const std::string& workload);

  /// Fully custom run; `key` must uniquely identify the configuration.
  const RunMetrics& run_custom(const std::string& workload, const RunConfig& config,
                               const std::string& key);

  // --- Parallel prefetch ---------------------------------------------------

  /// Worker threads used by flush(). Defaults to default_jobs().
  void set_jobs(unsigned jobs) { engine_.set_jobs(jobs); }
  unsigned jobs() const { return engine_.jobs(); }

  /// Protocol-checker mode for every run this runner launches, serial or
  /// flushed ("off" | "log" | "strict"; "" defers to $LAZYDRAM_CHECK).
  void set_check(const std::string& mode) {
    check_ = mode;
    engine_.set_check(mode);
  }

  /// Arms the wall-clock self-profiler for every run this runner launches
  /// (--self-profile). The profiler is process-global and sticky once armed,
  /// so this only ever turns it on.
  void set_self_profile(bool on) {
    if (on) cfg_.self_profile = true;
  }

  /// Live run-health heartbeat period for every run (--heartbeat SECONDS);
  /// <= 0 leaves it off ($LAZYDRAM_HEARTBEAT can still enable it per-run).
  void set_heartbeat(double seconds) {
    if (seconds > 0.0) cfg_.heartbeat_seconds = seconds;
  }

  /// Queue the run_* counterpart's job for the next flush() (no-ops when the
  /// result is already cached or already queued).
  void prefetch(const std::string& workload, const core::SchemeSpec& spec,
                bool compute_error = true);
  void prefetch_scheme(const std::string& workload, core::SchemeKind kind,
                       bool compute_error = true);
  void prefetch_baseline(const std::string& workload);
  void prefetch_custom(const std::string& workload, const RunConfig& config,
                       const std::string& key);

  /// Runs every queued job across jobs() worker threads and caches the
  /// results in submission order. A failed job is logged and left uncached
  /// (its run_* call will retry serially and surface the error). Returns the
  /// number of jobs executed.
  std::size_t flush();

  /// Merged JSON report of every flushed job so far (per-job metrics /
  /// windows / stats plus the sweep's wall-clock profile); see
  /// sim::write_sweep_report. Empty `path` is a no-op returning false.
  bool write_sweep_report(const std::string& path) const;

  const SweepProfile& sweep_profile() const { return engine_.profile(); }

  const GpuConfig& config() const { return cfg_; }

  std::size_t runs_executed() const { return cache_.size(); }

 private:
  RunConfig make_config(const core::SchemeSpec& spec, bool compute_error) const;
  const RunMetrics& run_keyed(const std::string& workload, const RunConfig& config,
                              const std::string& key);

  GpuConfig cfg_;
  std::string check_;  ///< Checker mode stamped into every make_config().
  std::map<std::string, RunMetrics> cache_;

  SweepEngine engine_;
  std::vector<SweepJob> pending_;
  std::set<std::string> pending_keys_;
  std::vector<SweepResult> flushed_;  ///< For the merged sweep report.
};

/// Cache key fragment describing a scheme spec (delay/threshold resolved).
std::string spec_key(const core::SchemeSpec& spec);

}  // namespace lazydram::sim
