#include "sim/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "common/log.hpp"
#include "sim/run_report.hpp"
#include "telemetry/json.hpp"
#include "telemetry/selfprof.hpp"
#include "workloads/registry.hpp"

namespace lazydram::sim {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool known_workload(const std::string& name) {
  for (const std::string& n : workloads::all_workload_names())
    if (n == name) return true;
  return false;
}

/// Runs one job on the calling thread, capturing failures into the result.
SweepResult run_one(const SweepJob& job) {
  SweepResult r;
  r.workload = job.workload;
  r.label = job.label;
  const auto start = std::chrono::steady_clock::now();
  // Pre-check the name: make_workload treats an unknown workload as a fatal
  // invariant violation (LD_ASSERT), but in a sweep one bad job must not take
  // down the others.
  if (!known_workload(job.workload)) {
    r.error = "unknown workload: " + job.workload;
    r.wall_seconds = seconds_since(start);
    return r;
  }
  try {
    telemetry::SelfZone zone("sweep.job");
    const auto wl = workloads::make_workload(job.workload);
    r.output = simulate_full(*wl, job.config);
    r.ok = true;
  } catch (const std::exception& e) {
    r.error = e.what();
  } catch (...) {
    r.error = "unknown exception";
  }
  r.wall_seconds = seconds_since(start);
  return r;
}

}  // namespace

SweepEngine::SweepEngine(unsigned jobs) : jobs_(jobs == 0 ? default_jobs() : jobs) {
  profile_.jobs = jobs_;
}

void SweepEngine::set_jobs(unsigned jobs) {
  jobs_ = jobs == 0 ? default_jobs() : jobs;
  profile_.jobs = jobs_;
}

std::vector<SweepResult> SweepEngine::run(std::vector<SweepJob> sweep_jobs) {
  // Resolve env-driven telemetry paths once, up front: with several jobs in
  // flight a single $LAZYDRAM_TRACE / $LAZYDRAM_JSON file would be a write
  // race, so each job gets a path derived from its label instead. (This also
  // upgrades serial sweeps, where the runs used to overwrite one file.)
  const std::string env_trace = telemetry::env_string("LAZYDRAM_TRACE");
  const std::string env_json = telemetry::env_string("LAZYDRAM_JSON");
  // Resolve the checked mode up front too (set_check wins over the env), so
  // workers never touch the environment.
  const std::string check_mode =
      !check_override_.empty() ? check_override_
                               : telemetry::env_string("LAZYDRAM_CHECK");
  // Two jobs may carry the same label (callers build labels from workload x
  // scheme grids, and repeated jobs are legitimate); label-derived paths
  // would then silently overwrite each other. Disambiguate duplicates with
  // the submission index, which is unique and stable across `jobs` settings.
  std::map<std::string, unsigned> label_uses;
  for (const SweepJob& job : sweep_jobs) ++label_uses[sanitize_label(job.label)];
  for (std::size_t i = 0; i < sweep_jobs.size(); ++i) {
    SweepJob& job = sweep_jobs[i];
    std::string leaf = job.label;
    if (label_uses[sanitize_label(job.label)] > 1) leaf += "." + std::to_string(i);
    if (job.config.trace_path.empty() && !env_trace.empty())
      job.config.trace_path = derived_output_path(env_trace, leaf);
    if (job.config.json_report_path.empty() && !env_json.empty())
      job.config.json_report_path = derived_output_path(env_json, leaf);
    if (job.config.check.empty()) job.config.check = check_mode;
  }

  // Resolve the lazily-cached log level on this thread before any worker can
  // race on the first lookup.
  log_level();

  std::vector<SweepResult> results(sweep_jobs.size());
  const auto sweep_start = std::chrono::steady_clock::now();
  telemetry::SelfZone sweep_zone("sweep.run");

  // Sweep-level heartbeat ($LAZYDRAM_HEARTBEAT, also set per-run on the jobs
  // themselves by simulate_full): after each job completes, at most once per
  // period, report done/total and an ETA extrapolated from the mean job time.
  double heartbeat_seconds = 0.0;
  if (const std::string hb = telemetry::env_string("LAZYDRAM_HEARTBEAT"); !hb.empty()) {
    char* end = nullptr;
    const double v = std::strtod(hb.c_str(), &end);
    if (end != nullptr && *end == '\0' && v > 0.0) heartbeat_seconds = v;
    // An unparsable value is warned about by simulate_full; stay quiet here.
  }
  std::mutex hb_mu;
  auto hb_next = std::chrono::steady_clock::now() +
                 std::chrono::duration<double>(heartbeat_seconds);
  std::atomic<std::size_t> done{0};
  const auto maybe_beat = [&] {
    if (heartbeat_seconds <= 0.0) return;
    const std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(hb_mu);
    if (now < hb_next) return;
    hb_next = now + std::chrono::duration<double>(heartbeat_seconds);
    const double elapsed = seconds_since(sweep_start);
    const double eta =
        d > 0 ? elapsed * static_cast<double>(sweep_jobs.size() - d) /
                    static_cast<double>(d)
              : 0.0;
    log_status("hb sweep %zu/%zu jobs done, %.1fs elapsed, eta=%.0fs", d,
               sweep_jobs.size(), elapsed, eta);
  };

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, sweep_jobs.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < sweep_jobs.size(); ++i) {
      log_info("sweep [%zu/%zu] %s", i + 1, sweep_jobs.size(),
               sweep_jobs[i].label.c_str());
      results[i] = run_one(sweep_jobs[i]);
      maybe_beat();
    }
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= sweep_jobs.size()) return;
        log_info("sweep [%zu/%zu] %s", i + 1, sweep_jobs.size(),
                 sweep_jobs[i].label.c_str());
        results[i] = run_one(sweep_jobs[i]);
        maybe_beat();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  profile_.wall_seconds += seconds_since(sweep_start);
  profile_.jobs_submitted += results.size();
  for (const SweepResult& r : results) {
    profile_.serial_seconds += r.wall_seconds;
    if (!r.ok) {
      ++profile_.jobs_failed;
      log_warn("sweep job '%s' (%s) failed: %s", r.label.c_str(), r.workload.c_str(),
               r.error.c_str());
    }
  }
  return results;
}

unsigned default_jobs() {
  if (const char* env = std::getenv("LAZYDRAM_JOBS"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return static_cast<unsigned>(v);
    log_warn("ignoring LAZYDRAM_JOBS='%s' (want a positive integer)", env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned parse_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) continue;
    if (i + 1 >= argc) {
      log_warn("--jobs given without a value; ignoring");
      break;
    }
    char* end = nullptr;
    const long v = std::strtol(argv[i + 1], &end, 10);
    if (end == nullptr || *end != '\0' || v <= 0) {
      log_warn("ignoring --jobs '%s' (want a positive integer)", argv[i + 1]);
      break;
    }
    return static_cast<unsigned>(v);
  }
  return default_jobs();
}

std::string parse_check(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") != 0) continue;
    if (i + 1 >= argc) {
      log_warn("--check given without a value (want off|log|strict); ignoring");
      break;
    }
    return argv[i + 1];
  }
  return "";
}

bool parse_self_profile(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--self-profile") == 0) return true;
  return false;
}

double parse_heartbeat(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--heartbeat") != 0) continue;
    if (i + 1 >= argc) {
      log_warn("--heartbeat given without a value (want seconds > 0); ignoring");
      break;
    }
    char* end = nullptr;
    const double v = std::strtod(argv[i + 1], &end);
    if (end == nullptr || *end != '\0' || v <= 0.0) {
      log_warn("ignoring --heartbeat '%s' (want seconds > 0)", argv[i + 1]);
      break;
    }
    return v;
  }
  return 0.0;
}

std::string sanitize_label(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

std::string derived_output_path(const std::string& base, const std::string& label) {
  const std::string leaf = sanitize_label(label);
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + "." + leaf;
  return base.substr(0, dot) + "." + leaf + base.substr(dot);
}

bool write_sweep_report(const std::string& path, const std::vector<SweepResult>& results,
                        const SweepProfile& profile) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    log_warn("cannot open sweep report file '%s'; report skipped", path.c_str());
    return false;
  }
  telemetry::JsonWriter w(out);
  w.begin_object();

  // Per-job sections first: everything in here is deterministic, so two
  // sweeps of the same grid diff cleanly down to the trailing profile.
  w.key("runs");
  w.begin_array();
  for (const SweepResult& r : results) {
    w.begin_object();
    w.field("label", r.label);
    w.field("workload", r.workload);
    w.field("ok", r.ok);
    if (r.ok) {
      write_metrics_section(w, r.output.metrics);
      write_windows_section(w, r.output.telemetry);
      write_stats_section(w, r.output.telemetry.stats);
    } else {
      w.field("error", r.error);
    }
    w.end_object();
  }
  w.end_array();

  w.key("profile");
  w.begin_object();
  w.field("jobs", profile.jobs);
  w.field("jobs_submitted", static_cast<std::uint64_t>(profile.jobs_submitted));
  w.field("jobs_failed", static_cast<std::uint64_t>(profile.jobs_failed));
  w.field("wall_seconds", profile.wall_seconds);
  w.field("serial_seconds", profile.serial_seconds);
  w.field("speedup", profile.speedup());
  w.key("per_job_seconds");
  w.begin_array();
  for (const SweepResult& r : results) {
    w.begin_object();
    w.field("label", r.label);
    w.field("seconds", r.wall_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  std::fputc('\n', out);
  std::fclose(out);
  return true;
}

}  // namespace lazydram::sim
