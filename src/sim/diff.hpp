// Differential verification harness: runs a (workload, scheme) pair on the
// full optimized simulator with per-channel stream recording enabled, replays
// each channel's recording through the golden reference model
// (check::golden_replay), and diffs the two per-request timelines. Any
// difference — outcome (served vs dropped), CAS cycle, completion cycle, a
// request present on one side only — is a divergence; the harness reports the
// earliest ones with full context.
//
// tools/diffcheck wraps this in a CLI; test_check exercises it directly.
#pragma once

#include <string>
#include <vector>

#include "check/mode.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "core/scheme.hpp"

namespace lazydram::sim {

struct DiffDivergence {
  ChannelId channel = 0;
  RequestId id = 0;
  Cycle cycle = 0;      ///< Earliest cycle either side touched the request.
  std::string context;  ///< Multi-line human-readable description.
};

struct DiffResult {
  std::string workload;
  std::string scheme;
  std::uint64_t requests = 0;  ///< Requests compared across all channels.
  unsigned channels = 0;
  bool golden_completed = true;  ///< False if any channel's replay wedged.
  std::vector<DiffDivergence> divergences;  ///< Earliest first, capped.

  bool ok() const { return golden_completed && divergences.empty(); }
};

class DiffHarness {
 public:
  explicit DiffHarness(const GpuConfig& cfg = GpuConfig{}) : cfg_(cfg) {}

  /// Runs `workload_name` under `spec` (the policy configured in the
  /// GpuConfig — by default the lazy scheduler) and diffs the optimized
  /// timeline against the golden model. `mode` additionally arms the runtime
  /// protocol checker during the run.
  DiffResult run(const std::string& workload_name, const core::SchemeSpec& spec,
                 check::CheckMode mode = check::CheckMode::kLog);

  /// Runs `workload_name` under registry policy `policy_name` with the
  /// baseline scheme spec and diffs against the golden model. The golden
  /// model replays FR-FCFS arbitration, so only FR-FCFS-equivalent policies
  /// ("frfcfs", "lazy" with everything disabled) are expected to match; this
  /// is the diffcheck lane of the policy-arena CI job.
  DiffResult run_policy(const std::string& workload_name, const std::string& policy_name,
                        check::CheckMode mode = check::CheckMode::kLog);

  /// Formats the first divergence (or the wedge notice) as a readable block
  /// for CI artifacts; empty string when `result.ok()`.
  static std::string format_divergence(const DiffResult& result);

 private:
  DiffResult run_impl(const std::string& workload_name, const GpuConfig& cfg,
                      const core::SchemeSpec& spec, const std::string& label,
                      check::CheckMode mode);

  GpuConfig cfg_;
};

}  // namespace lazydram::sim
