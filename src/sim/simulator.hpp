// One-call simulation entry points: build a GPU around a workload and a
// scheduling scheme, run to completion, collect metrics — optionally with
// the full observability layer (event trace, windowed time series, stat
// snapshot, JSON run report) attached.
#pragma once

#include <string>

#include "common/config.hpp"
#include "core/scheme.hpp"
#include "mem/controller.hpp"
#include "sim/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/workload.hpp"

namespace lazydram::sim {

/// Which scheduler runs in each memory controller.
enum class PolicyKind {
  kLazy,    ///< core::LazyScheduler configured by a SchemeSpec (the default).
  kFrFcfs,  ///< Plain FR-FCFS (identical to kLazy with everything disabled).
  kFcfs,    ///< In-order FCFS (ablation baseline).
};

struct RunConfig {
  GpuConfig gpu{};                       ///< Table I defaults.
  core::SchemeSpec spec{};               ///< Used when policy == kLazy.
  PolicyKind policy = PolicyKind::kLazy;
  RowPolicy row_policy = RowPolicy::kOpenRow;
  bool compute_error = true;
  Cycle max_core_cycles = 200'000'000;
  std::string scheme_label;  ///< Defaults to the spec's scheme name.

  // --- Observability (all off by default; enabling any of it is guaranteed
  // not to change RunMetrics) ---
  std::string trace_path;   ///< Event/lifecycle trace; "" defers to $LAZYDRAM_TRACE.
  /// Trace file format: "jsonl" (default) or "chrome" (Perfetto-viewable
  /// Chrome Trace Event array); "" defers to $LAZYDRAM_TRACE_FORMAT.
  std::string trace_format;
  /// Lifecycle sampling: record 1 read request in N. 0 defers to
  /// $LAZYDRAM_TRACE_SAMPLE (accepted as "N" or "1/N"), default 1.
  std::uint64_t trace_sample = 0;
  /// Collect per-request lifecycles even without a trace file (summaries
  /// land in RunTelemetry / the JSON report). Implied by trace_path.
  bool lifecycle = false;
  std::string json_report_path;  ///< JSON run report; "" defers to $LAZYDRAM_JSON.
  bool window_sampling = false;  ///< Forced on when either path resolves non-empty.
  /// Suppress the $LAZYDRAM_TRACE/$LAZYDRAM_JSON fallbacks for this run.
  /// Fan-out drivers (run_multitenant baselines) set this so parallel lanes
  /// never race on one env-named output file.
  bool ignore_env_outputs = false;
  /// Crash flight recorder depth: last N telemetry events kept per channel
  /// for the dump a strict-checker throw or LD_ASSERT leaves behind
  /// ($LAZYDRAM_FLIGHT_DUMP, default lazydram_flight.json). -1 defers to
  /// $LAZYDRAM_FLIGHT (default: 64, i.e. always on); 0 disables. Recording
  /// is passive — no output exists unless a dump fires, and enabling it
  /// never changes results or trace bytes.
  std::int64_t flight_depth = -1;

  // --- Verification ---
  /// Protocol-checker mode: "off" | "log" | "strict"; "" defers to
  /// $LAZYDRAM_CHECK. In strict mode the first violation throws
  /// check::ViolationError.
  std::string check;
  /// Starvation bound for the checker (memory cycles); 0 keeps the default.
  Cycle check_age_bound = 0;
};

/// Runs `workload` under `config` to completion and returns the metrics.
/// Honors the telemetry settings (trace / JSON report / env overrides) but
/// discards the in-memory telemetry results.
RunMetrics simulate(const workloads::Workload& workload, const RunConfig& config);

/// simulate() plus the run's telemetry: per-channel window series, final
/// stat snapshot, wall-clock profile.
struct RunOutput {
  RunMetrics metrics;
  telemetry::RunTelemetry telemetry;
};
RunOutput simulate_full(const workloads::Workload& workload, const RunConfig& config);

/// Convenience: run one of the seven paper schemes with default config.
RunMetrics simulate_scheme(const workloads::Workload& workload, core::SchemeKind kind,
                           const GpuConfig& gpu = GpuConfig{});

}  // namespace lazydram::sim
