// One-call simulation entry points: build a GPU around a workload and a
// scheduling scheme, run to completion, collect metrics.
#pragma once

#include <string>

#include "common/config.hpp"
#include "core/scheme.hpp"
#include "mem/controller.hpp"
#include "sim/metrics.hpp"
#include "workloads/workload.hpp"

namespace lazydram::sim {

/// Which scheduler runs in each memory controller.
enum class PolicyKind {
  kLazy,    ///< core::LazyScheduler configured by a SchemeSpec (the default).
  kFrFcfs,  ///< Plain FR-FCFS (identical to kLazy with everything disabled).
  kFcfs,    ///< In-order FCFS (ablation baseline).
};

struct RunConfig {
  GpuConfig gpu{};                       ///< Table I defaults.
  core::SchemeSpec spec{};               ///< Used when policy == kLazy.
  PolicyKind policy = PolicyKind::kLazy;
  RowPolicy row_policy = RowPolicy::kOpenRow;
  bool compute_error = true;
  Cycle max_core_cycles = 200'000'000;
  std::string scheme_label;  ///< Defaults to the spec's scheme name.
};

/// Runs `workload` under `config` to completion and returns the metrics.
RunMetrics simulate(const workloads::Workload& workload, const RunConfig& config);

/// Convenience: run one of the seven paper schemes with default config.
RunMetrics simulate_scheme(const workloads::Workload& workload, core::SchemeKind kind,
                           const GpuConfig& gpu = GpuConfig{});

}  // namespace lazydram::sim
