#include "sim/diff.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "check/context.hpp"
#include "check/golden.hpp"
#include "common/assert.hpp"
#include "core/scheduler_registry.hpp"
#include "gpu/gpu_top.hpp"
#include "workloads/registry.hpp"

namespace lazydram::sim {

namespace {

constexpr std::size_t kMaxDivergences = 8;

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

struct Observed {
  bool dropped = false;
  Cycle cas_cycle = 0;
  Cycle done_cycle = 0;
  Cycle drop_cycle = 0;
};

std::string describe_arrival(const check::RecordedArrival& a) {
  return fmt("request %" PRIu64 " bank %u row %" PRIu64 " enqueued at %" PRIu64
             " (%s%s)",
             a.id, a.bank, a.row, a.enqueue_cycle, a.is_read ? "read" : "write",
             a.approximable ? ", approximable" : "");
}

std::string describe_observed(const Observed& o) {
  if (o.dropped) return fmt("dropped at cycle %" PRIu64, o.drop_cycle);
  return fmt("served: CAS at %" PRIu64 ", data done at %" PRIu64, o.cas_cycle,
             o.done_cycle);
}

std::string describe_golden(const check::GoldenEntry& g) {
  if (g.outcome == check::GoldenOutcome::kDropped)
    return fmt("dropped at cycle %" PRIu64, g.drop_cycle);
  return fmt("served: CAS at %" PRIu64 ", data done at %" PRIu64, g.cas_cycle,
             g.done_cycle);
}

}  // namespace

DiffResult DiffHarness::run(const std::string& workload_name,
                            const core::SchemeSpec& spec, check::CheckMode mode) {
  return run_impl(workload_name, cfg_, spec, core::run_label(cfg_, spec), mode);
}

DiffResult DiffHarness::run_policy(const std::string& workload_name,
                                   const std::string& policy_name,
                                   check::CheckMode mode) {
  GpuConfig cfg = cfg_;
  cfg.policy.name = policy_name;
  const core::SchemeSpec spec{};  // Baseline: DMS/AMS off.
  return run_impl(workload_name, cfg, spec, core::run_label(cfg, spec), mode);
}

DiffResult DiffHarness::run_impl(const std::string& workload_name, const GpuConfig& cfg,
                                 const core::SchemeSpec& spec, const std::string& label,
                                 check::CheckMode mode) {
  DiffResult result;
  result.workload = workload_name;
  result.scheme = label;
  result.channels = cfg.num_channels;

  const std::unique_ptr<workloads::Workload> wl =
      workloads::make_workload(workload_name);

  check::CheckConfig check_cfg;
  check_cfg.mode = mode;
  check_cfg.record = true;
  check::CheckContext ctx(check_cfg);

  // The one registry seam: the live run here constructs its scheduler the
  // exact same way simulate_full does, so the golden diff can never compare
  // a differently-configured policy than the simulator runs (the drift bug
  // the old hand-rolled factories allowed).
  const gpu::GpuTop::SchedulerFactory factory = core::make_scheduler_factory(cfg, spec);

  gpu::GpuTop top(cfg, *wl, factory, RowPolicy::kOpenRow, nullptr, &ctx);
  const bool finished = top.run();
  LD_ASSERT_MSG(finished, "diff run hit max_core_cycles before completing");

  for (ChannelId ch = 0; ch < cfg.num_channels; ++ch) {
    const check::ChannelRecorder* rec = ctx.recorder(ch);
    LD_ASSERT(rec != nullptr);
    const check::ChannelRecording& recording = rec->recording();
    result.requests += recording.arrivals.size();

    const check::GoldenTimeline golden = check::golden_replay(recording, cfg);
    if (!golden.completed) {
      result.golden_completed = false;
      result.divergences.push_back(DiffDivergence{
          ch, 0, recording.last_cycle,
          fmt("channel %u: golden replay did not drain (wedged past cycle "
              "%" PRIu64 ") — the streams no longer line up",
              ch, recording.last_cycle)});
      continue;
    }

    std::unordered_map<RequestId, Observed> observed;
    observed.reserve(recording.arrivals.size());
    for (const check::RecordedServe& s : recording.serves)
      observed[s.id] = Observed{false, s.cas_cycle, s.done_cycle, 0};
    for (const check::RecordedDrop& d : recording.drops)
      observed[d.id] = Observed{true, 0, 0, d.cycle};

    std::vector<DiffDivergence> channel_divs;
    for (const check::RecordedArrival& a : recording.arrivals) {
      const auto oit = observed.find(a.id);
      const auto git = golden.entries.find(a.id);
      const bool have_obs = oit != observed.end();
      const bool have_gold = git != golden.entries.end();

      std::string delta;
      Cycle at = a.enqueue_cycle;
      if (!have_obs && !have_gold) {
        delta = "neither side served or dropped it";
      } else if (!have_obs) {
        delta = fmt("golden %s, simulator never completed it",
                    describe_golden(git->second).c_str());
        at = git->second.outcome == check::GoldenOutcome::kDropped
                 ? git->second.drop_cycle
                 : git->second.cas_cycle;
      } else if (!have_gold) {
        delta = fmt("simulator %s, golden never completed it",
                    describe_observed(oit->second).c_str());
        at = oit->second.dropped ? oit->second.drop_cycle : oit->second.cas_cycle;
      } else {
        const Observed& o = oit->second;
        const check::GoldenEntry& g = git->second;
        const bool gold_dropped = g.outcome == check::GoldenOutcome::kDropped;
        if (o.dropped == gold_dropped &&
            (o.dropped ? o.drop_cycle == g.drop_cycle
                       : (o.cas_cycle == g.cas_cycle && o.done_cycle == g.done_cycle)))
          continue;  // Timelines agree.
        delta = fmt("simulator %s; golden %s", describe_observed(o).c_str(),
                    describe_golden(g).c_str());
        at = std::min(o.dropped ? o.drop_cycle : o.cas_cycle,
                      gold_dropped ? g.drop_cycle : g.cas_cycle);
      }
      channel_divs.push_back(
          DiffDivergence{ch, a.id, at, describe_arrival(a) + ": " + delta});
    }

    std::stable_sort(channel_divs.begin(), channel_divs.end(),
                     [](const DiffDivergence& x, const DiffDivergence& y) {
                       return x.cycle < y.cycle;
                     });
    for (DiffDivergence& d : channel_divs) {
      if (result.divergences.size() >= kMaxDivergences) break;
      result.divergences.push_back(std::move(d));
    }
  }

  std::stable_sort(result.divergences.begin(), result.divergences.end(),
                   [](const DiffDivergence& x, const DiffDivergence& y) {
                     return x.cycle < y.cycle;
                   });
  return result;
}

std::string DiffHarness::format_divergence(const DiffResult& result) {
  if (result.ok()) return "";
  std::string out = fmt("DIVERGENCE  workload=%s scheme=%s (%" PRIu64
                        " requests over %u channels, %zu divergence(s) shown)\n",
                        result.workload.c_str(), result.scheme.c_str(),
                        result.requests, result.channels,
                        result.divergences.size());
  for (const DiffDivergence& d : result.divergences) {
    out += fmt("  first at cycle %" PRIu64 " ch%u: %s\n", d.cycle, d.channel,
               d.context.c_str());
  }
  out +=
      "  triage: re-run with LAZYDRAM_CHECK=log for protocol violations, then "
      "LAZYDRAM_TRACE=<path> and grep the first divergent request id.\n";
  return out;
}

}  // namespace lazydram::sim
