// Plain FCFS scheduler — the classic in-order baseline used by the ablation
// benches to quantify how much of the baseline's row locality FR-FCFS's
// re-ordering already provides. Serves each bank's requests strictly in
// arrival order (no row-hit prioritization).
#pragma once

#include "mem/scheduler.hpp"

namespace lazydram {

class FcfsScheduler : public Scheduler {
 public:
  Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) override;

  /// Strict age order closes an open row even while hits for it pend.
  bool hit_first() const override { return false; }

  /// Stateless per tick: an idle channel never changes a future decision.
  Cycle next_tick_event(Cycle now) const override {
    (void)now;
    return kNeverCycle;
  }
};

}  // namespace lazydram
