#include "mem/pending_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lazydram {

void PendingQueue::push(MemRequest req) {
  LD_ASSERT_MSG(!full(), "push into full pending queue");
  LD_ASSERT_MSG(req.loc.bank < by_bank_.size(), "request bank out of range");
  LD_ASSERT_MSG(by_id_.count(req.id) == 0, "duplicate request id");
  entries_.push_back(std::move(req));
  const auto it = std::prev(entries_.end());
  by_id_.emplace(it->id, it);
  by_bank_[it->loc.bank].push_back(&*it);
}

const MemRequest* PendingQueue::oldest_for_row(BankId bank, RowId row) const {
  for (const MemRequest* r : by_bank_[bank])
    if (r->loc.row == row) return r;
  return nullptr;
}

const MemRequest* PendingQueue::oldest_for_bank(BankId bank) const {
  const auto& v = by_bank_[bank];
  return v.empty() ? nullptr : v.front();
}

unsigned PendingQueue::row_group_size(BankId bank, RowId row) const {
  unsigned n = 0;
  for (const MemRequest* r : by_bank_[bank])
    if (r->loc.row == row) ++n;
  return n;
}

bool PendingQueue::row_group_all_reads(BankId bank, RowId row) const {
  for (const MemRequest* r : by_bank_[bank])
    if (r->loc.row == row && !r->is_read()) return false;
  return true;
}

bool PendingQueue::row_group_all_approximable(BankId bank, RowId row) const {
  for (const MemRequest* r : by_bank_[bank])
    if (r->loc.row == row && !(r->is_read() && r->approximable)) return false;
  return true;
}

MemRequest PendingQueue::erase(RequestId id) {
  const auto it = by_id_.find(id);
  LD_ASSERT_MSG(it != by_id_.end(), "erase of unknown request id");
  const auto list_it = it->second;

  auto& bank_vec = by_bank_[list_it->loc.bank];
  const auto vec_it = std::find(bank_vec.begin(), bank_vec.end(), &*list_it);
  LD_ASSERT(vec_it != bank_vec.end());
  bank_vec.erase(vec_it);

  MemRequest out = std::move(*list_it);
  entries_.erase(list_it);
  by_id_.erase(it);
  return out;
}

const MemRequest* PendingQueue::find(RequestId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &*it->second;
}

}  // namespace lazydram
