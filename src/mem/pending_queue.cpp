#include "mem/pending_queue.hpp"

namespace lazydram {

namespace {

/// True for members that keep an all-approximable group droppable.
bool approximable_read(const MemRequest& req) {
  return req.is_read() && req.approximable;
}

}  // namespace

PendingQueue::PendingQueue(std::size_t capacity, unsigned num_banks)
    : capacity_(capacity), pool_(capacity), banks_(num_banks), group_pool_(capacity) {
  free_.reserve(capacity);
  group_free_.reserve(capacity);
  // Hand out pool slots front-to-back on first use (LIFO free list seeded in
  // reverse), purely so freshly-touched memory stays contiguous.
  for (std::size_t i = capacity; i > 0; --i) {
    free_.push_back(&pool_[i - 1]);
    group_free_.push_back(&group_pool_[i - 1]);
  }
  groups_.init(capacity);
  by_id_.init(capacity);
}

void PendingQueue::push(MemRequest req) {
  LD_ASSERT_MSG(!full(), "push into full pending queue");
  LD_ASSERT_MSG(req.loc.bank < banks_.size(), "request bank out of range");
  LD_ASSERT_MSG(req.loc.row < (RowId{1} << 32), "request row exceeds group key space");
  LD_ASSERT_MSG(by_id_.find(req.id) == nullptr, "duplicate request id");

  Node* n = free_.back();
  free_.pop_back();
  *n = Node{};
  n->req = std::move(req);

  // Global arrival list.
  n->prev = tail_;
  if (tail_ != nullptr)
    tail_->next = n;
  else
    head_ = n;
  tail_ = n;

  // Per-bank arrival list.
  BankIndex& b = banks_[n->req.loc.bank];
  n->bank_prev = b.tail;
  if (b.tail != nullptr)
    b.tail->bank_next = n;
  else
    b.head = n;
  b.tail = n;
  ++b.size;

  // Row group: find-or-create, append, bump aggregates.
  const std::uint64_t key = group_key(n->req.loc.bank, n->req.loc.row);
  RowGroup* g;
  if (RowGroup** found = groups_.find(key); found != nullptr) {
    g = *found;
  } else {
    g = group_free_.back();
    group_free_.pop_back();
    *g = RowGroup{};
    groups_.insert(key, g);
  }
  n->group = g;
  n->row_prev = g->tail;
  if (g->tail != nullptr)
    g->tail->row_next = n;
  else
    g->head = n;
  g->tail = n;
  ++g->size;
  if (!n->req.is_read()) ++g->writes;
  if (!approximable_read(n->req)) ++g->non_approx;

  by_id_.insert(n->req.id, n);
  ++size_;
}

MemRequest PendingQueue::erase(RequestId id) {
  Node** found = by_id_.find(id);
  LD_ASSERT_MSG(found != nullptr, "erase of unknown request id");
  Node* n = *found;

  // Global arrival list.
  if (n->prev != nullptr)
    n->prev->next = n->next;
  else
    head_ = n->next;
  if (n->next != nullptr)
    n->next->prev = n->prev;
  else
    tail_ = n->prev;

  // Per-bank arrival list.
  BankIndex& b = banks_[n->req.loc.bank];
  if (n->bank_prev != nullptr)
    n->bank_prev->bank_next = n->bank_next;
  else
    b.head = n->bank_next;
  if (n->bank_next != nullptr)
    n->bank_next->bank_prev = n->bank_prev;
  else
    b.tail = n->bank_prev;
  --b.size;

  // Row group: unlink, decay aggregates, retire the group when it empties.
  RowGroup& g = *n->group;
  if (n->row_prev != nullptr)
    n->row_prev->row_next = n->row_next;
  else
    g.head = n->row_next;
  if (n->row_next != nullptr)
    n->row_next->row_prev = n->row_prev;
  else
    g.tail = n->row_prev;
  --g.size;
  if (!n->req.is_read()) --g.writes;
  if (!approximable_read(n->req)) --g.non_approx;
  if (g.size == 0) {
    groups_.erase(group_key(n->req.loc.bank, n->req.loc.row));
    group_free_.push_back(&g);
  }

  MemRequest out = std::move(n->req);
  by_id_.erase(id);
  free_.push_back(n);
  --size_;
  return out;
}

const MemRequest* PendingQueue::find(RequestId id) const {
  const Node* const* found = by_id_.find(id);
  return found == nullptr ? nullptr : &(*found)->req;
}

}  // namespace lazydram
