// BLISS — the Blacklisting memory scheduler (Subramanian et al., adapted to
// the GPU setting as in the staged-scheduling literature): instead of ranking
// every requestor, track only which *warp group* (source SM) streamed the
// last `threshold` column accesses back-to-back and temporarily blacklist it.
// Non-blacklisted requestors win; within a priority class, row hits beat
// misses and age breaks ties. The blacklist is cleared wholesale every
// `clear_interval` memory cycles, so a hog loses at most one interval of
// priority.
//
// GPU adaptation notes: the interference domain is the SM (the closest
// analogue of the "application" in the single-GPU setting); writes are dirty
// L2 evictions carrying no SM and are exempt from blacklisting (served at
// normal priority, never counted toward a streak).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "mem/scheduler.hpp"

namespace lazydram {

class BlissScheduler : public Scheduler {
 public:
  BlissScheduler(const PolicyParams& p, unsigned num_sms);

  Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) override;
  void tick(Cycle now, std::uint64_t bus_busy_total) override;
  void on_serve(const MemRequest& req) override;
  void register_stats(telemetry::TelemetryHub& hub, const std::string& prefix) const override;

  /// Blacklist ranking deliberately closes rows that still hold pending hits
  /// from a blacklisted SM.
  bool hit_first() const override { return false; }

  /// A serve on any bank can blacklist an SM and reorder every other bank's
  /// candidates, so per-bank decide() memos are unsound for this policy.
  bool decide_memo_safe() const override { return false; }

  /// The only self-scheduled tick effect is the interval clear.
  Cycle next_tick_event(Cycle now) const override {
    return next_clear_ > now ? next_clear_ : now + 1;
  }

  /// Idle ticks strictly before next_clear_ are no-ops (tick returns
  /// immediately), so there is no per-tick state to reconstruct.
  void advance_idle(Cycle from, Cycle to) override {
    (void)from;
    (void)to;
  }

  bool blacklisted(SmId sm) const { return blacklist_[sm]; }
  std::uint64_t blacklist_events() const { return blacklist_events_; }
  std::uint64_t clear_events() const { return clear_events_; }

 private:
  unsigned threshold_;
  Cycle clear_interval_;

  std::vector<std::uint8_t> blacklist_;  ///< Indexed by SmId.
  SmId streak_sm_ = MemRequest::kNoSm;   ///< SM of the current serve streak.
  unsigned streak_ = 0;                  ///< Consecutive serves from streak_sm_.
  Cycle next_clear_ = 0;

  std::uint64_t blacklist_events_ = 0;  ///< SMs blacklisted (cumulative).
  std::uint64_t clear_events_ = 0;      ///< Interval clears (cumulative).
};

}  // namespace lazydram
