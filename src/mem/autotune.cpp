#include "mem/autotune.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "telemetry/hub.hpp"

namespace lazydram {

AutotuneScheduler::AutotuneScheduler(const PolicyParams& p)
    : min_delay_(p.tune_min_delay),
      max_delay_(p.tune_max_delay),
      base_step_(p.tune_step),
      window_(p.tune_window),
      tolerance_(p.tune_tolerance),
      delay_(p.tune_min_delay),
      step_(p.tune_step),
      window_end_(p.tune_window) {
  LD_ASSERT(min_delay_ <= max_delay_ && base_step_ > 0 && window_ > 0);
  LD_ASSERT(tolerance_ > 0.0 && tolerance_ <= 1.0);
}

Decision AutotuneScheduler::decide(const PendingQueue& queue, const BankView& bank,
                                   Cycle now) {
  // FR-FCFS hit path: hits are never gated (serving them costs no ACT, so
  // delaying them only loses bandwidth).
  if (bank.row_open) {
    if (const MemRequest* hit = queue.oldest_for_row(bank.bank, bank.open_row))
      return Decision::serve(hit->id);
  }
  const MemRequest* oldest = queue.oldest_for_bank(bank.bank);
  if (oldest == nullptr) return Decision::none();
  // Row miss: age-gate by the current delay. The horizon is sound because
  // the controller invalidates none_until memos whenever the probe's
  // dms_delay gauge (which fill_probe maps to delay_) changes.
  const Cycle ready = oldest->enqueue_cycle + delay_;
  if (now < ready) return Decision::gated(ready);
  return Decision::serve(oldest->id);
}

void AutotuneScheduler::tick(Cycle now, std::uint64_t bus_busy_total) {
  if (now < window_end_) return;
  const Cycle elapsed = now - window_start_cycle_;
  const double bw =
      elapsed == 0 ? 0.0
                   : static_cast<double>(bus_busy_total - window_start_busy_) /
                         static_cast<double>(elapsed);
  best_bw_ = std::max(best_bw_, bw);
  if (bw >= tolerance_ * best_bw_) {
    // Utilization held up: keep climbing, accelerating while it keeps
    // working (step doubles, capped at 8x the configured step).
    delay_ = std::min(max_delay_, delay_ + step_);
    step_ = std::min(step_ * 2, base_step_ * 8);
    ++accepts_;
  } else {
    // Paid too much bandwidth: retreat and probe more carefully.
    delay_ = delay_ >= min_delay_ + step_ ? delay_ - step_ : min_delay_;
    step_ = std::max<Cycle>(std::max<Cycle>(1, base_step_ / 8), step_ / 2);
    ++backoffs_;
  }
  window_start_cycle_ = now;
  window_start_busy_ = bus_busy_total;
  window_end_ = now + window_;
}

void AutotuneScheduler::fill_probe(telemetry::WindowProbe& probe) const {
  probe.dms_delay = delay_;
}

void AutotuneScheduler::register_stats(telemetry::TelemetryHub& hub,
                                       const std::string& prefix) const {
  hub.add_gauge(prefix + "autotune.delay", [this] { return static_cast<double>(delay_); });
  hub.add_counter(prefix + "autotune.accepts", [this] { return accepts_; });
  hub.add_counter(prefix + "autotune.backoffs", [this] { return backoffs_; });
}

}  // namespace lazydram
