#include "mem/frfcfs.hpp"

namespace lazydram {

Decision FrFcfsScheduler::decide(const PendingQueue& queue, const BankView& bank,
                                 Cycle now) {
  (void)now;
  if (bank.row_open) {
    if (const MemRequest* hit = queue.oldest_for_row(bank.bank, bank.open_row))
      return Decision::serve(hit->id);
  }
  if (const MemRequest* oldest = queue.oldest_for_bank(bank.bank))
    return Decision::serve(oldest->id);
  return Decision::none();
}

}  // namespace lazydram
