#include "mem/controller.hpp"

#include <algorithm>

#include "check/checker.hpp"
#include "check/recorder.hpp"
#include "common/assert.hpp"
#include "telemetry/lifecycle.hpp"
#include "telemetry/selfprof.hpp"

namespace lazydram {

using dram::CommandKind;

MemoryController::MemoryController(const GpuConfig& cfg, ChannelId id,
                                   const AddressMapper& mapper,
                                   std::unique_ptr<Scheduler> scheduler,
                                   RowPolicy row_policy)
    : id_(id),
      mapper_(mapper),
      row_policy_(row_policy),
      queue_(cfg.pending_queue_size, cfg.banks_per_channel),
      dram_(cfg, id),
      scheduler_(std::move(scheduler)),
      num_banks_(cfg.banks_per_channel),
      watts_per_nj_per_cycle_(static_cast<double>(cfg.mem_clock_mhz) * 1e-3),
      fast_path_(cfg.fast_path),
      bank_retry_at_(cfg.banks_per_channel, 0),
      bank_none_until_(cfg.banks_per_channel, 0),
      bank_acts_(cfg.banks_per_channel, 0),
      bank_cols_(cfg.banks_per_channel, 0),
      bank_drops_(cfg.banks_per_channel, 0) {
  LD_ASSERT(scheduler_ != nullptr);
  drops_possible_ = scheduler_->drops_possible();
  memo_safe_ = scheduler_->decide_memo_safe();
}

void MemoryController::enqueue(MemRequest req, Cycle now_mem) {
  LD_ASSERT_MSG(can_accept(), "enqueue into full pending queue");
  req.enqueue_cycle = now_mem;
  req.loc = mapper_.map(req.line_addr);
  LD_ASSERT_MSG(req.loc.channel == id_, "request routed to wrong channel");
  if (req.is_read()) {
    ++reads_received_;
    if (req.tenant < tenant_reads_received_.size()) ++tenant_reads_received_[req.tenant];
  } else {
    ++writes_received_;
  }
  scheduler_->on_enqueue(req);
  if (lifecycle_ != nullptr) lifecycle_->on_enqueue(req, id_, now_mem);
  if (checker_ != nullptr) checker_->on_enqueue(req, now_mem);
  if (recorder_ != nullptr) recorder_->on_enqueue(req);
  // An arrival can change the bank's decision; both memos are stale, and so
  // are the pass-level wakes aggregated from them.
  bank_retry_at_[req.loc.bank] = 0;
  bank_none_until_[req.loc.bank] = 0;
  cmd_wake_ = 0;
  drop_wake_ = 0;
  queue_.push(std::move(req));
}

void MemoryController::complete_bursts(Cycle now) {
  next_burst_done_ = kNeverCycle;
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->done > now) {
      if (it->done < next_burst_done_) next_burst_done_ = it->done;
      ++it;
      continue;
    }
    if (it->req.is_read()) {
      ++reads_served_;
      read_latency_.add(static_cast<double>(it->done - it->req.enqueue_cycle));
      read_latency_hist_.add(it->done - it->req.enqueue_cycle);
      if (it->req.tenant < tenant_reads_served_.size()) {
        const TenantId t = it->req.tenant;
        ++tenant_reads_served_[t];
        tenant_latency_sum_[t] += it->done - it->req.enqueue_cycle;
        tenant_latency_hist_[t].add(it->done - it->req.enqueue_cycle);
      }
      if (lifecycle_ != nullptr) lifecycle_->on_data_return(it->req.id, it->done);
      replies_.push_back(MemReply{it->req.id, it->req.line_addr, it->req.src_sm,
                                  /*approximate=*/false, it->done});
    } else {
      ++writes_served_;
    }
    it = inflight_.erase(it);
  }
}

bool MemoryController::advance_request(const MemRequest& req, Cycle now,
                                       Cycle* retry_at) {
  const BankId b = req.loc.bank;
  const dram::Bank& bank = dram_.bank(b);

  if (bank.row_open() && bank.open_row() == req.loc.row) {
    const CommandKind cas = req.is_read() ? CommandKind::kRead : CommandKind::kWrite;
    if (!dram_.can_issue(cas, b, now)) {
      if (retry_at != nullptr) *retry_at = dram_.earliest_issue(cas, b);
      return false;
    }
    const Cycle done = dram_.issue(cas, b, req.loc.row, now);
    ++bank_cols_[b];
    if (checker_ != nullptr) checker_->on_command(cas, b, req.loc.row, now, queue_);
    MemRequest popped = queue_.erase(req.id);
    scheduler_->on_serve(popped);
    if (lifecycle_ != nullptr && popped.is_read()) lifecycle_->on_cas(popped.id, now);
    if (recorder_ != nullptr) recorder_->on_serve(popped.id, now, done);
    inflight_.push_back(InFlight{std::move(popped), done});
    if (done < next_burst_done_) next_burst_done_ = done;
    return true;
  }

  if (bank.row_open()) {
    // Demand precharge: the scheduler chose a request for another row.
    // (Hit-first policies only reach here with no pending hits; plain FCFS
    // may legitimately close a row that still has younger hits pending.)
    if (!dram_.can_issue(CommandKind::kPrecharge, b, now)) {
      if (retry_at != nullptr)
        *retry_at = dram_.earliest_issue(CommandKind::kPrecharge, b);
      return false;
    }
    dram_.issue(CommandKind::kPrecharge, b, kInvalidRow, now);
    if (checker_ != nullptr)
      checker_->on_command(CommandKind::kPrecharge, b, kInvalidRow, now, queue_);
    return true;
  }

  if (!dram_.can_issue(CommandKind::kActivate, b, now)) {
    if (retry_at != nullptr)
      *retry_at = dram_.earliest_issue(CommandKind::kActivate, b);
    return false;
  }
  dram_.issue(CommandKind::kActivate, b, req.loc.row, now);
  ++bank_acts_[b];
  if (checker_ != nullptr)
    checker_->on_command(CommandKind::kActivate, b, req.loc.row, now, queue_);
  if (tracer_ != nullptr) tracer_->row_activate(now, id_, b, req.loc.row);
  return true;
}

bool MemoryController::try_closed_row_precharge(BankId b, Cycle now) {
  const dram::Bank& bank = dram_.bank(b);
  if (!bank.row_open() || bank.open_row_accesses() == 0) return false;
  if (queue_.oldest_for_row(b, bank.open_row()) != nullptr) return false;
  if (!dram_.can_issue(CommandKind::kPrecharge, b, now)) return false;
  dram_.issue(CommandKind::kPrecharge, b, kInvalidRow, now);
  if (checker_ != nullptr)
    checker_->on_command(CommandKind::kPrecharge, b, kInvalidRow, now, queue_);
  rr_bank_ = (b + 1) % num_banks_;
  return true;
}

void MemoryController::issue_one_command(Cycle now) {
  // Pass-level memo accounting: while the scan runs, record whether every
  // bank with work is blocked by a per-bank memo and, if so, the earliest
  // memo horizon. Until a command issues nothing moves the DRAM timing
  // gates, so a fully-blocked pass is provably a no-op until that horizon
  // and tick() skips it outright (cmd_wake_).
  bool all_blocked = true;
  Cycle min_wake = kNeverCycle;
  for (unsigned i = 0; i < num_banks_; ++i) {
    BankId b = rr_bank_ + i;
    if (b >= num_banks_) b -= num_banks_;

    // Schedulability skips: an empty bank can yield no request command, so
    // decide() is not consulted (policies return kNone without side effects
    // for empty banks). A draining bank is NOT skipped even when empty:
    // decide() retires exhausted drain state lazily, and deferring that
    // retirement to the next drop pass would let a same-row arrival join a
    // drain the unskipped path had already ended. A bank whose chosen
    // command failed legality is skipped until its retry memo expires: the
    // DRAM gates it is waiting on only move forward, so it provably cannot
    // issue before then, and the memo is invalidated whenever its pending
    // set changes. Only the closed-row ablation's idle precharge can still
    // apply here.
    if (fast_path_) {
      const bool empty = queue_.bank_size(b) == 0;
      if (empty && !scheduler_->bank_draining(b)) {
        if (row_policy_ == RowPolicy::kClosedRow && try_closed_row_precharge(b, now))
          return;
        continue;
      }
      // Memos are only honored under open-row policy: a skipped decide()
      // under the closed-row ablation could miss an idle precharge the
      // unskipped path would have issued. The bank unblocks when the later
      // of its two memos expires (each alone suffices to skip it).
      if (!empty && row_policy_ == RowPolicy::kOpenRow) {
        const Cycle memo = std::max(bank_retry_at_[b], bank_none_until_[b]);
        if (now < memo) {
          min_wake = std::min(min_wake, memo);
          continue;
        }
      }
    }

    const dram::Bank& bank = dram_.bank(b);
    const BankView view{b, bank.row_open(), bank.open_row()};

    const Decision d = scheduler_->decide(queue_, view, now);
    LD_ASSERT_MSG(d.action != Decision::Action::kNone || d.req_id == kInvalidRequest,
                  "kNone decision carries a request id (use none()/gated())");
    if (d.action == Decision::Action::kServe) {
      const MemRequest* req = queue_.find(d.req_id);
      LD_ASSERT_MSG(req != nullptr, "scheduler chose a request not in the queue");
      LD_ASSERT_MSG(req->loc.bank == b, "scheduler chose a request for another bank");
      // Activation commitment: policies with cross-bank ranking state (e.g. a
      // BLISS blacklist update landing between this bank's ACT and CAS) can
      // switch rows after an activation was already paid for. Closing a row
      // that never served an access wastes the ACT and trips the channel's
      // zero-access accounting invariant, so the engine first retires the
      // oldest pending request of the untouched open row; the policy's new
      // choice proceeds next cycle. Row-stable policies never take this path.
      if (bank.row_open() && bank.open_row_accesses() == 0 &&
          req->loc.row != bank.open_row()) {
        if (const MemRequest* sticky = queue_.oldest_for_row(b, bank.open_row()))
          req = sticky;
      }
      Cycle retry_at = 0;
      if (advance_request(*req, now, &retry_at)) {
        rr_bank_ = b + 1 == num_banks_ ? 0 : b + 1;
        return;
      }
      if (fast_path_ && memo_safe_ && retry_at > now) {
        bank_retry_at_[b] = retry_at;
        min_wake = std::min(min_wake, retry_at);
      } else {
        // No usable bound (e.g. a bus-turnaround bubble, which
        // earliest_issue() excludes): re-scan this bank every cycle.
        all_blocked = false;
      }
      continue;  // Command not legal this cycle; give other banks a chance.
    }

    if (fast_path_ && memo_safe_ && d.action == Decision::Action::kNone &&
        d.none_until > now) {
      bank_none_until_[b] = d.none_until;
      min_wake = std::min(min_wake, d.none_until);
    } else {
      // kDrop gates and horizon-free kNone (drain retirement just ran) must
      // keep re-deciding every cycle.
      all_blocked = false;
    }

    // A kDrop answer in the command pass is a gate: the bank issues nothing
    // this cycle (the drop itself, if any, already ran in the drop pass).
    // Recorded so golden replay skips the bank at exactly this point.
    if (d.action == Decision::Action::kDrop && recorder_ != nullptr)
      recorder_->on_drop_gate(b, now);

    // Closed-row ablation: precharge banks left open with no work for the
    // open row. (Under open-row policy rows stay open until a conflict.)
    if (row_policy_ == RowPolicy::kClosedRow && try_closed_row_precharge(b, now))
      return;
  }
  if (fast_path_ && row_policy_ == RowPolicy::kOpenRow && all_blocked &&
      min_wake != kNeverCycle && min_wake > now)
    cmd_wake_ = min_wake;
}

void MemoryController::tick(Cycle now_mem) {
  end_mem_ = now_mem + 1;
  // Nothing in `inflight_` can retire before the tracked minimum done-cycle,
  // so until then the completion scan is a provable no-op (ungated by
  // fast_path_: bit-exact by construction).
  if (next_burst_done_ <= now_mem) complete_bursts(now_mem);
  scheduler_->tick(now_mem, dram_.bus_busy_cycles());
  if (checker_ != nullptr) checker_->on_tick(queue_, now_mem);

  // Policy gauges (DMS delay, Th_RBL) only change inside the scheduler tick
  // above, so one fill_probe serves the recorder — which needs the delay
  // current *at decision time* — the end-of-cycle sampler below, and the
  // fast path's delay-change edge detection.
  telemetry::WindowProbe probe;
  if (fast_path_ || recorder_ != nullptr || sampler_ != nullptr)
    scheduler_->fill_probe(probe);
  if (recorder_ != nullptr) recorder_->on_delay(now_mem, probe.dms_delay);

  // The none_until horizons assumed a constant DMS delay; drop them all on
  // a delay change (rare: at most once per profiling window). The retry
  // memos must go too: a retry horizon bounds when the bank's *chosen*
  // command becomes legal, but a delay change can un-gate a different
  // request (e.g. a younger row hit) whose command is legal immediately —
  // the choice the memo froze is stale, not just its timing.
  if (fast_path_ && probe.dms_delay != last_dms_delay_) {
    last_dms_delay_ = probe.dms_delay;
    std::fill(bank_none_until_.begin(), bank_none_until_.end(), Cycle{0});
    std::fill(bank_retry_at_.begin(), bank_retry_at_.end(), Cycle{0});
    cmd_wake_ = 0;
    drop_wake_ = 0;
  }

  // Idle short-circuit: with no pending requests there is no request to
  // drop or advance, and under open-row policy no command to issue at all —
  // the whole per-bank machinery is skipped. The one empty-queue case with
  // drop-pass work is an active drain awaiting lazy retirement (the pass
  // must keep visiting that bank), hence draining(), not may_drop(): budget
  // headroom alone gives the pass nothing to visit.
  const bool idle_cycle = fast_path_ && queue_.empty() &&
                          !(drops_possible_ && scheduler_->draining()) &&
                          row_policy_ == RowPolicy::kOpenRow;
  if (!idle_cycle) {
    // At most one AMS drop per cycle ("dropped sequentially in the following
    // memory cycles", Section IV-C). Drops use the reply path, not the DRAM
    // command bus, so a drop and a DRAM command can share a cycle. The scan
    // starts past the bank that dropped last (like rr_bank_ in the command
    // pass) so concurrent drains on different banks interleave their drops
    // instead of the lowest-numbered bank always finishing first.
    //
    // drop_wake_: a completed scan in which every visited bank was (or just
    // became) age-gated proves the pass stays dropless until the earliest
    // gate horizon — no decide() can reach the AMS admission check before
    // then, so its time-varying state (coverage, Th_RBL, halted) cannot
    // matter. Never set while a drain is active (a draining bank decides
    // kDrop and clears the wake on execution) or after an early exit.
    if (drops_possible_ && now_mem >= drop_wake_) {
      bool all_gated = true;
      Cycle min_wake = kNeverCycle;
      bool dropped_one = false;
      unsigned i = 0;
      for (; scheduler_->may_drop() && i < num_banks_; ++i) {
        BankId b = drop_rr_bank_ + i;
        if (b >= num_banks_) b -= num_banks_;
        if (fast_path_ && queue_.bank_size(b) == 0 && !scheduler_->bank_draining(b))
          continue;  // Nothing to drop and no drain state to retire.
        if (fast_path_ && row_policy_ == RowPolicy::kOpenRow &&
            now_mem < bank_none_until_[b]) {
          min_wake = std::min(min_wake, bank_none_until_[b]);
          continue;  // Age-gated: decide() is provably still kNone.
        }
        const dram::Bank& bank = dram_.bank(b);
        const BankView view{b, bank.row_open(), bank.open_row()};
        const Decision d = scheduler_->decide(queue_, view, now_mem);
        LD_ASSERT_MSG(
            d.action != Decision::Action::kNone || d.req_id == kInvalidRequest,
            "kNone decision carries a request id (use none()/gated())");
        if (d.action != Decision::Action::kDrop) {
          if (fast_path_ && memo_safe_ && d.action == Decision::Action::kNone &&
              d.none_until > now_mem) {
            bank_none_until_[b] = d.none_until;
            min_wake = std::min(min_wake, d.none_until);
          } else {
            all_gated = false;  // kServe / drain retirement: re-decide next cycle.
          }
          continue;
        }
        if (checker_ != nullptr) {
          const MemRequest* victim = queue_.find(d.req_id);
          LD_ASSERT(victim != nullptr);
          checker_->on_drop(*victim, now_mem, queue_);
        }
        MemRequest dropped = queue_.erase(d.req_id);
        LD_ASSERT_MSG(dropped.is_read(), "AMS must only drop reads");
        // The drop can change this bank's decision; both memos and the
        // pass-level wakes aggregated from them are stale.
        bank_retry_at_[b] = 0;
        bank_none_until_[b] = 0;
        cmd_wake_ = 0;
        drop_wake_ = 0;
        ++reads_dropped_;
        ++bank_drops_[dropped.loc.bank];
        if (dropped.tenant < tenant_reads_dropped_.size())
          ++tenant_reads_dropped_[dropped.tenant];
        scheduler_->on_drop(dropped);
        // After on_drop so the scheduler's stall closeout reaches the
        // collector before the record finalizes.
        if (lifecycle_ != nullptr) lifecycle_->on_drop(dropped.id, now_mem);
        if (recorder_ != nullptr) recorder_->on_drop(dropped.id, now_mem);
        if (tracer_ != nullptr)
          tracer_->row_group_drop(now_mem, id_, dropped.loc.bank, dropped.loc.row,
                                  dropped.id);
        replies_.push_back(MemReply{dropped.id, dropped.line_addr, dropped.src_sm,
                                    /*approximate=*/true, now_mem});
        drop_rr_bank_ = b + 1 == num_banks_ ? 0 : b + 1;
        dropped_one = true;
        break;
      }
      if (fast_path_ && row_policy_ == RowPolicy::kOpenRow && !dropped_one &&
          i == num_banks_ && all_gated && min_wake != kNeverCycle)
        drop_wake_ = min_wake;
    }

    if (now_mem >= cmd_wake_) issue_one_command(now_mem);
  }

  // The sampler observes the cycle last, so its probe reflects everything
  // issued up to and including `now_mem`. Read-only: cannot perturb the run.
  if (sampler_ != nullptr) {
    fill_channel_counters(probe, now_mem);
    sampler_->tick(now_mem, probe);
  }
}

Cycle MemoryController::next_event(Cycle now) const {
  // Conservative bail-outs: without the fast-path invariants there are no
  // wake memos to reason from; the closed-row ablation issues idle
  // precharges from unmemoized banks; a stream recorder logs the DMS delay
  // every tick. In all three cases every cycle must run for real.
  if (!fast_path_ || row_policy_ != RowPolicy::kOpenRow || recorder_ != nullptr)
    return now + 1;

  Cycle ev = next_burst_done_;  // Completion scan has work at this cycle.
  ev = std::min(ev, scheduler_->next_tick_event(now));
  if (checker_ != nullptr) ev = std::min(ev, checker_->next_tick_event(queue_, now));
  if (sampler_ != nullptr) ev = std::min(ev, sampler_->next_boundary());

  const bool may_drop = drops_possible_ && scheduler_->may_drop();
  if (queue_.empty()) {
    // The idle short-circuit skips both passes — unless a drain awaiting
    // lazy retirement keeps the drop pass visiting its bank (every visit
    // mutates scheduler state, so those cycles are not no-ops). Budget
    // headroom alone (may_drop() on an empty queue) gives the pass nothing
    // to visit and stays skippable.
    if (drops_possible_ && scheduler_->draining()) return now + 1;
  } else {
    // The command pass is parked until cmd_wake_ (and the drop pass until
    // drop_wake_); a wake at or before `now` means the pass runs next cycle.
    ev = std::min(ev, cmd_wake_ > now ? cmd_wake_ : now + 1);
    if (may_drop) ev = std::min(ev, drop_wake_ > now ? drop_wake_ : now + 1);
  }
  return ev > now ? ev : now + 1;
}

Cycle MemoryController::next_cross_event(Cycle now) const {
  Cycle ev = kNeverCycle;
  if (!replies_.empty()) {
    const Cycle ready = replies_.front().ready_cycle;
    ev = std::min(ev, ready > now ? ready : now + 1);
  }
  // A read burst becomes a poppable reply exactly at its done cycle (write
  // completions are not observable, so this is conservative but sound).
  ev = std::min(ev, next_burst_done_);
  if (!queue_.empty()) {
    // No command can issue before max(now + 1, cmd_wake_), and a read CAS at
    // cycle c returns data no earlier than c + tCL + tBURST. Drops create a
    // same-cycle reply, so their bound is the drop pass wake itself.
    const DramTiming& t = dram_.timing();
    const Cycle cas = cmd_wake_ > now ? cmd_wake_ : now + 1;
    ev = std::min(ev, cas + t.tCL + t.tBURST);
    if (drops_possible_ && scheduler_->may_drop())
      ev = std::min(ev, drop_wake_ > now ? drop_wake_ : now + 1);
  }
  return ev > now ? ev : now + 1;
}

void MemoryController::advance_idle(Cycle from, Cycle to) {
  if (to <= from) return;
  // One past the last replayed cycle, same as tick(to) would leave it.
  end_mem_ = to + 1;
  scheduler_->advance_idle(from, to);
  if (sampler_ != nullptr) {
    // Only the gauge fields of intermediate probes are ever read (counters
    // are differenced at window closes, which never fall inside a skipped
    // span), and all gauges are constant across it.
    telemetry::WindowProbe probe;
    scheduler_->fill_probe(probe);
    probe.queue_size = queue_.size();
    sampler_->advance(to, to - from, probe);
  }
}

std::optional<MemReply> MemoryController::pop_reply(Cycle now_mem) {
  if (replies_.empty() || replies_.front().ready_cycle > now_mem) return std::nullopt;
  MemReply r = replies_.front();
  replies_.pop_front();
  return r;
}

void MemoryController::inject_command_for_test(dram::CommandKind kind, BankId bank,
                                               RowId row, Cycle now) {
  LD_ASSERT_MSG(checker_ != nullptr, "inject_command_for_test needs a checker");
  checker_->on_command(kind, bank, row, now, queue_);
}

void MemoryController::finalize() {
  LD_SELF_ZONE("mc.finalize");
  dram_.flush_open_rows();
  // The run ends one past the last ticked cycle — the same boundary the
  // sampler's flush closes its final window at (last_tick_ + 1).
  dram_.finalize_power(end_mem_);
  if (sampler_ != nullptr) sampler_->flush(telemetry_probe(end_mem_));
}

void MemoryController::enable_tenant_accounting(unsigned num_tenants) {
  tenant_reads_received_.assign(num_tenants, 0);
  tenant_reads_served_.assign(num_tenants, 0);
  tenant_reads_dropped_.assign(num_tenants, 0);
  tenant_latency_sum_.assign(num_tenants, 0);
  tenant_latency_hist_.assign(num_tenants, Histogram{4096});
  attach_tenant_probe();
}

void MemoryController::attach_tenant_probe() {
  // Per-tenant window columns need both features on; enable_tenant_accounting
  // and enable_window_sampling can arrive in either order.
  if (sampler_ == nullptr || tenant_reads_served_.empty()) return;
  sampler_->set_tenant_probe(
      num_tenants(), [this](std::vector<telemetry::TenantProbe>& out) {
        for (std::size_t t = 0; t < out.size(); ++t) {
          out[t].reads_received = tenant_reads_received_[t];
          out[t].reads_served = tenant_reads_served_[t];
          out[t].drops = tenant_reads_dropped_[t];
        }
      });
}

void MemoryController::enable_window_sampling(Cycle window, telemetry::Tracer* tracer) {
  sampler_ = std::make_unique<telemetry::WindowSampler>(id_, window, tracer);
  sampler_->set_power_scale(watts_per_nj_per_cycle_);
  scheduler_->enable_bank_stall_tracking();
  stall_scratch_.assign(num_banks_, 0);
  sampler_->set_bank_probe(
      num_banks_, [this](Cycle end, std::vector<telemetry::BankProbe>& out) {
        std::fill(stall_scratch_.begin(), stall_scratch_.end(), std::uint64_t{0});
        scheduler_->harvest_bank_stalls(end, stall_scratch_);
        const dram::PowerAccountant* pw = dram_.power();
        for (unsigned b = 0; b < num_banks_; ++b) {
          out[b].activations = bank_acts_[b];
          out[b].column_accesses = bank_cols_[b];
          out[b].drops = bank_drops_[b];
          out[b].stall_cycles = stall_scratch_[b];
          if (pw != nullptr) {
            out[b].active_cycles = pw->bank_active_cycles(b, end);
            out[b].energy_nj = pw->bank_energy(b, end).total_nj();
          }
        }
      });
  attach_tenant_probe();
}

void MemoryController::fill_channel_counters(telemetry::WindowProbe& p,
                                             Cycle now) const {
  p.bus_busy_cycles = dram_.bus_busy_cycles();
  p.activations = dram_.activations();
  p.column_reads = dram_.energy().read_accesses();
  p.column_writes = dram_.energy().write_accesses();
  p.reads_dropped = reads_dropped_;
  p.reads_received = reads_received_;
  if (const dram::PowerAccountant* pw = dram_.power()) {
    // O(1): channel_energy never loops over banks.
    const dram::PowerBreakdown e = pw->channel_energy(now);
    p.energy_row_nj = e.row_nj;
    p.energy_access_nj = e.access_nj;
    p.energy_background_nj = e.background_nj;
    p.energy_refresh_nj = e.refresh_nj;
    p.energy_nj = e.total_nj();
  } else {
    p.energy_row_nj = dram_.energy().row_energy_nj();
    p.energy_access_nj = dram_.energy().access_energy_nj();
    p.energy_nj = dram_.energy().total_energy_nj();
  }
  p.queue_size = queue_.size();
}

telemetry::WindowProbe MemoryController::telemetry_probe(Cycle now) const {
  telemetry::WindowProbe p;
  fill_channel_counters(p, now);
  scheduler_->fill_probe(p);
  return p;
}

}  // namespace lazydram
