#include "mem/controller.hpp"

#include <algorithm>

#include "check/checker.hpp"
#include "check/recorder.hpp"
#include "common/assert.hpp"

namespace lazydram {

using dram::CommandKind;

MemoryController::MemoryController(const GpuConfig& cfg, ChannelId id,
                                   const AddressMapper& mapper,
                                   std::unique_ptr<Scheduler> scheduler,
                                   RowPolicy row_policy)
    : id_(id),
      mapper_(mapper),
      row_policy_(row_policy),
      queue_(cfg.pending_queue_size, cfg.banks_per_channel),
      dram_(cfg, id),
      scheduler_(std::move(scheduler)),
      num_banks_(cfg.banks_per_channel) {
  LD_ASSERT(scheduler_ != nullptr);
}

void MemoryController::enqueue(MemRequest req, Cycle now_mem) {
  LD_ASSERT_MSG(can_accept(), "enqueue into full pending queue");
  req.enqueue_cycle = now_mem;
  req.loc = mapper_.map(req.line_addr);
  LD_ASSERT_MSG(req.loc.channel == id_, "request routed to wrong channel");
  if (req.is_read())
    ++reads_received_;
  else
    ++writes_received_;
  scheduler_->on_enqueue(req);
  if (checker_ != nullptr) checker_->on_enqueue(req, now_mem);
  if (recorder_ != nullptr) recorder_->on_enqueue(req);
  queue_.push(std::move(req));
}

void MemoryController::complete_bursts(Cycle now) {
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->done > now) {
      ++it;
      continue;
    }
    if (it->req.is_read()) {
      ++reads_served_;
      read_latency_.add(static_cast<double>(it->done - it->req.enqueue_cycle));
      replies_.push_back(MemReply{it->req.id, it->req.line_addr, it->req.src_sm,
                                  /*approximate=*/false, it->done});
    } else {
      ++writes_served_;
    }
    it = inflight_.erase(it);
  }
}

bool MemoryController::advance_request(const MemRequest& req, Cycle now) {
  const BankId b = req.loc.bank;
  const dram::Bank& bank = dram_.bank(b);

  if (bank.row_open() && bank.open_row() == req.loc.row) {
    const CommandKind cas = req.is_read() ? CommandKind::kRead : CommandKind::kWrite;
    if (!dram_.can_issue(cas, b, now)) return false;
    const Cycle done = dram_.issue(cas, b, req.loc.row, now);
    if (checker_ != nullptr) checker_->on_command(cas, b, req.loc.row, now, queue_);
    MemRequest popped = queue_.erase(req.id);
    scheduler_->on_serve(popped);
    if (recorder_ != nullptr) recorder_->on_serve(popped.id, now, done);
    inflight_.push_back(InFlight{std::move(popped), done});
    return true;
  }

  if (bank.row_open()) {
    // Demand precharge: the scheduler chose a request for another row.
    // (Hit-first policies only reach here with no pending hits; plain FCFS
    // may legitimately close a row that still has younger hits pending.)
    if (!dram_.can_issue(CommandKind::kPrecharge, b, now)) return false;
    dram_.issue(CommandKind::kPrecharge, b, kInvalidRow, now);
    if (checker_ != nullptr)
      checker_->on_command(CommandKind::kPrecharge, b, kInvalidRow, now, queue_);
    return true;
  }

  if (!dram_.can_issue(CommandKind::kActivate, b, now)) return false;
  dram_.issue(CommandKind::kActivate, b, req.loc.row, now);
  if (checker_ != nullptr)
    checker_->on_command(CommandKind::kActivate, b, req.loc.row, now, queue_);
  if (tracer_ != nullptr) tracer_->row_activate(now, id_, b, req.loc.row);
  return true;
}

void MemoryController::issue_one_command(Cycle now) {
  for (unsigned i = 0; i < num_banks_; ++i) {
    const BankId b = (rr_bank_ + i) % num_banks_;
    const dram::Bank& bank = dram_.bank(b);
    const BankView view{b, bank.row_open(), bank.open_row()};

    const Decision d = scheduler_->decide(queue_, view, now);
    if (d.action == Decision::Action::kServe) {
      const MemRequest* req = queue_.find(d.req_id);
      LD_ASSERT_MSG(req != nullptr, "scheduler chose a request not in the queue");
      LD_ASSERT_MSG(req->loc.bank == b, "scheduler chose a request for another bank");
      if (advance_request(*req, now)) {
        rr_bank_ = (b + 1) % num_banks_;
        return;
      }
      continue;  // Command not legal this cycle; give other banks a chance.
    }

    // A kDrop answer in the command pass is a gate: the bank issues nothing
    // this cycle (the drop itself, if any, already ran in the drop pass).
    // Recorded so golden replay skips the bank at exactly this point.
    if (d.action == Decision::Action::kDrop && recorder_ != nullptr)
      recorder_->on_drop_gate(b, now);

    // Closed-row ablation: precharge banks left open with no work for the
    // open row. (Under open-row policy rows stay open until a conflict.)
    if (row_policy_ == RowPolicy::kClosedRow && bank.row_open() &&
        bank.open_row_accesses() > 0 &&
        queue_.oldest_for_row(b, bank.open_row()) == nullptr &&
        dram_.can_issue(CommandKind::kPrecharge, b, now)) {
      dram_.issue(CommandKind::kPrecharge, b, kInvalidRow, now);
      if (checker_ != nullptr)
        checker_->on_command(CommandKind::kPrecharge, b, kInvalidRow, now, queue_);
      rr_bank_ = (b + 1) % num_banks_;
      return;
    }
  }
}

void MemoryController::tick(Cycle now_mem) {
  complete_bursts(now_mem);
  scheduler_->tick(now_mem, dram_.bus_busy_cycles());
  if (checker_ != nullptr) checker_->on_tick(queue_, now_mem);
  if (recorder_ != nullptr) {
    // The golden model re-derives DMS gating from the delay value that is
    // current *at decision time*, i.e. after the scheduler's tick above.
    telemetry::WindowProbe p;
    scheduler_->fill_probe(p);
    recorder_->on_delay(now_mem, p.dms_delay);
  }

  // At most one AMS drop per cycle ("dropped sequentially in the following
  // memory cycles", Section IV-C). Drops use the reply path, not the DRAM
  // command bus, so a drop and a DRAM command can share a cycle.
  for (unsigned i = 0; scheduler_->may_drop() && i < num_banks_; ++i) {
    const BankId b = static_cast<BankId>(i);
    const dram::Bank& bank = dram_.bank(b);
    const BankView view{b, bank.row_open(), bank.open_row()};
    const Decision d = scheduler_->decide(queue_, view, now_mem);
    if (d.action != Decision::Action::kDrop) continue;
    if (checker_ != nullptr) {
      const MemRequest* victim = queue_.find(d.req_id);
      LD_ASSERT(victim != nullptr);
      checker_->on_drop(*victim, now_mem, queue_);
    }
    MemRequest dropped = queue_.erase(d.req_id);
    LD_ASSERT_MSG(dropped.is_read(), "AMS must only drop reads");
    ++reads_dropped_;
    scheduler_->on_drop(dropped);
    if (recorder_ != nullptr) recorder_->on_drop(dropped.id, now_mem);
    if (tracer_ != nullptr)
      tracer_->row_group_drop(now_mem, id_, dropped.loc.bank, dropped.loc.row, dropped.id);
    replies_.push_back(MemReply{dropped.id, dropped.line_addr, dropped.src_sm,
                                /*approximate=*/true, now_mem});
    break;
  }

  issue_one_command(now_mem);

  // The sampler observes the cycle last, so its probe reflects everything
  // issued up to and including `now_mem`. Read-only: cannot perturb the run.
  if (sampler_ != nullptr) sampler_->tick(now_mem, telemetry_probe());
}

std::optional<MemReply> MemoryController::pop_reply(Cycle now_mem) {
  if (replies_.empty() || replies_.front().ready_cycle > now_mem) return std::nullopt;
  MemReply r = replies_.front();
  replies_.pop_front();
  return r;
}

void MemoryController::inject_command_for_test(dram::CommandKind kind, BankId bank,
                                               RowId row, Cycle now) {
  LD_ASSERT_MSG(checker_ != nullptr, "inject_command_for_test needs a checker");
  checker_->on_command(kind, bank, row, now, queue_);
}

void MemoryController::finalize() {
  dram_.flush_open_rows();
  if (sampler_ != nullptr) sampler_->flush(telemetry_probe());
}

void MemoryController::enable_window_sampling(Cycle window, telemetry::Tracer* tracer) {
  sampler_ = std::make_unique<telemetry::WindowSampler>(id_, window, tracer);
}

telemetry::WindowProbe MemoryController::telemetry_probe() const {
  telemetry::WindowProbe p;
  p.bus_busy_cycles = dram_.bus_busy_cycles();
  p.activations = dram_.activations();
  p.column_reads = dram_.energy().read_accesses();
  p.column_writes = dram_.energy().write_accesses();
  p.reads_dropped = reads_dropped_;
  p.reads_received = reads_received_;
  p.energy_nj = dram_.energy().total_energy_nj();
  p.queue_size = queue_.size();
  scheduler_->fill_probe(p);
  return p;
}

}  // namespace lazydram
