#include "mem/controller.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lazydram {

using dram::CommandKind;

MemoryController::MemoryController(const GpuConfig& cfg, ChannelId id,
                                   const AddressMapper& mapper,
                                   std::unique_ptr<Scheduler> scheduler,
                                   RowPolicy row_policy)
    : id_(id),
      mapper_(mapper),
      row_policy_(row_policy),
      queue_(cfg.pending_queue_size, cfg.banks_per_channel),
      dram_(cfg, id),
      scheduler_(std::move(scheduler)),
      num_banks_(cfg.banks_per_channel) {
  LD_ASSERT(scheduler_ != nullptr);
}

void MemoryController::enqueue(MemRequest req, Cycle now_mem) {
  LD_ASSERT_MSG(can_accept(), "enqueue into full pending queue");
  req.enqueue_cycle = now_mem;
  req.loc = mapper_.map(req.line_addr);
  LD_ASSERT_MSG(req.loc.channel == id_, "request routed to wrong channel");
  if (req.is_read())
    ++reads_received_;
  else
    ++writes_received_;
  scheduler_->on_enqueue(req);
  queue_.push(std::move(req));
}

void MemoryController::complete_bursts(Cycle now) {
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->done > now) {
      ++it;
      continue;
    }
    if (it->req.is_read()) {
      ++reads_served_;
      read_latency_.add(static_cast<double>(it->done - it->req.enqueue_cycle));
      replies_.push_back(MemReply{it->req.id, it->req.line_addr, it->req.src_sm,
                                  /*approximate=*/false, it->done});
    } else {
      ++writes_served_;
    }
    it = inflight_.erase(it);
  }
}

bool MemoryController::advance_request(const MemRequest& req, Cycle now) {
  const BankId b = req.loc.bank;
  const dram::Bank& bank = dram_.bank(b);

  if (bank.row_open() && bank.open_row() == req.loc.row) {
    const CommandKind cas = req.is_read() ? CommandKind::kRead : CommandKind::kWrite;
    if (!dram_.can_issue(cas, b, now)) return false;
    const Cycle done = dram_.issue(cas, b, req.loc.row, now);
    MemRequest popped = queue_.erase(req.id);
    scheduler_->on_serve(popped);
    inflight_.push_back(InFlight{std::move(popped), done});
    return true;
  }

  if (bank.row_open()) {
    // Demand precharge: the scheduler chose a request for another row.
    // (Hit-first policies only reach here with no pending hits; plain FCFS
    // may legitimately close a row that still has younger hits pending.)
    if (!dram_.can_issue(CommandKind::kPrecharge, b, now)) return false;
    dram_.issue(CommandKind::kPrecharge, b, kInvalidRow, now);
    return true;
  }

  if (!dram_.can_issue(CommandKind::kActivate, b, now)) return false;
  dram_.issue(CommandKind::kActivate, b, req.loc.row, now);
  if (tracer_ != nullptr) tracer_->row_activate(now, id_, b, req.loc.row);
  return true;
}

void MemoryController::issue_one_command(Cycle now) {
  for (unsigned i = 0; i < num_banks_; ++i) {
    const BankId b = (rr_bank_ + i) % num_banks_;
    const dram::Bank& bank = dram_.bank(b);
    const BankView view{b, bank.row_open(), bank.open_row()};

    const Decision d = scheduler_->decide(queue_, view, now);
    if (d.action == Decision::Action::kServe) {
      const MemRequest* req = queue_.find(d.req_id);
      LD_ASSERT_MSG(req != nullptr, "scheduler chose a request not in the queue");
      LD_ASSERT_MSG(req->loc.bank == b, "scheduler chose a request for another bank");
      if (advance_request(*req, now)) {
        rr_bank_ = (b + 1) % num_banks_;
        return;
      }
      continue;  // Command not legal this cycle; give other banks a chance.
    }

    // Closed-row ablation: precharge banks left open with no work for the
    // open row. (Under open-row policy rows stay open until a conflict.)
    if (row_policy_ == RowPolicy::kClosedRow && bank.row_open() &&
        bank.open_row_accesses() > 0 &&
        queue_.oldest_for_row(b, bank.open_row()) == nullptr &&
        dram_.can_issue(CommandKind::kPrecharge, b, now)) {
      dram_.issue(CommandKind::kPrecharge, b, kInvalidRow, now);
      rr_bank_ = (b + 1) % num_banks_;
      return;
    }
  }
}

void MemoryController::tick(Cycle now_mem) {
  complete_bursts(now_mem);
  scheduler_->tick(now_mem, dram_.bus_busy_cycles());

  // At most one AMS drop per cycle ("dropped sequentially in the following
  // memory cycles", Section IV-C). Drops use the reply path, not the DRAM
  // command bus, so a drop and a DRAM command can share a cycle.
  for (unsigned i = 0; scheduler_->may_drop() && i < num_banks_; ++i) {
    const BankId b = static_cast<BankId>(i);
    const dram::Bank& bank = dram_.bank(b);
    const BankView view{b, bank.row_open(), bank.open_row()};
    const Decision d = scheduler_->decide(queue_, view, now_mem);
    if (d.action != Decision::Action::kDrop) continue;
    MemRequest dropped = queue_.erase(d.req_id);
    LD_ASSERT_MSG(dropped.is_read(), "AMS must only drop reads");
    ++reads_dropped_;
    scheduler_->on_drop(dropped);
    if (tracer_ != nullptr)
      tracer_->row_group_drop(now_mem, id_, dropped.loc.bank, dropped.loc.row, dropped.id);
    replies_.push_back(MemReply{dropped.id, dropped.line_addr, dropped.src_sm,
                                /*approximate=*/true, now_mem});
    break;
  }

  issue_one_command(now_mem);

  // The sampler observes the cycle last, so its probe reflects everything
  // issued up to and including `now_mem`. Read-only: cannot perturb the run.
  if (sampler_ != nullptr) sampler_->tick(now_mem, telemetry_probe());
}

std::optional<MemReply> MemoryController::pop_reply(Cycle now_mem) {
  if (replies_.empty() || replies_.front().ready_cycle > now_mem) return std::nullopt;
  MemReply r = replies_.front();
  replies_.pop_front();
  return r;
}

void MemoryController::finalize() {
  dram_.flush_open_rows();
  if (sampler_ != nullptr) sampler_->flush(telemetry_probe());
}

void MemoryController::enable_window_sampling(Cycle window, telemetry::Tracer* tracer) {
  sampler_ = std::make_unique<telemetry::WindowSampler>(id_, window, tracer);
}

telemetry::WindowProbe MemoryController::telemetry_probe() const {
  telemetry::WindowProbe p;
  p.bus_busy_cycles = dram_.bus_busy_cycles();
  p.activations = dram_.activations();
  p.column_reads = dram_.energy().read_accesses();
  p.column_writes = dram_.energy().write_accesses();
  p.reads_dropped = reads_dropped_;
  p.reads_received = reads_received_;
  p.energy_nj = dram_.energy().total_energy_nj();
  p.queue_size = queue_.size();
  scheduler_->fill_probe(p);
  return p;
}

}  // namespace lazydram
