// Memory-scheduler policy interface.
//
// The MemoryController owns the command engine (PRE/ACT/RD/WR sequencing and
// timing legality); a Scheduler only answers the *policy* question: "which
// pending request should bank B work toward right now — or should one be
// dropped to the value predictor instead?". This split lets FR-FCFS, FCFS and
// the paper's lazy scheduler share one verified command engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/pending_queue.hpp"
#include "telemetry/window_sampler.hpp"

namespace lazydram {

namespace telemetry {
class TelemetryHub;
}

/// Snapshot of a bank's externally visible state.
struct BankView {
  BankId bank = 0;
  bool row_open = false;
  RowId open_row = kInvalidRow;
};

/// A scheduling decision for one bank at one memory cycle.
struct Decision {
  enum class Action : std::uint8_t {
    kNone,   ///< Nothing to do for this bank now (empty / gated by policy).
    kServe,  ///< Advance `req_id` toward service (PRE/ACT/RD/WR as needed).
    kDrop,   ///< Remove `req_id` from the queue; reply via the VP unit (AMS).
  };
  Action action = Action::kNone;
  /// Meaningful for kServe/kDrop only; kNone answers carry kInvalidRequest so
  /// an accidental dereference can never alias a live request (ids start at 1,
  /// but 0 was still a representable id — see the controller's LD_ASSERTs).
  RequestId req_id = kInvalidRequest;
  /// For kNone only: the policy guarantees the answer stays kNone until this
  /// cycle *provided* the bank's pending set and the policy's delay knobs do
  /// not change (the controller invalidates on either). 0 = no guarantee.
  Cycle none_until = 0;

  static Decision none() { return {}; }
  /// kNone with a stability horizon (see none_until).
  static Decision gated(Cycle until) { return {Action::kNone, kInvalidRequest, until}; }
  static Decision serve(RequestId id) { return {Action::kServe, id}; }
  static Decision drop(RequestId id) { return {Action::kDrop, id}; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Policy decision for `bank` at memory cycle `now`. Must be free of
  /// observable side effects: the controller may call it more than once per
  /// cycle per bank (once in the drop pass, once in the command pass) — and,
  /// symmetrically, may not call it at all for a bank with no pending work
  /// and no draining drop, so a policy must not rely on decide() running
  /// every cycle for every bank.
  virtual Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) = 0;

  /// Cheap pre-check: can this policy ever answer kDrop right now? The
  /// controller skips the per-bank drop pass entirely when false, keeping
  /// the non-AMS schemes on the fast path.
  virtual bool may_drop() const { return false; }

  /// Static capability: can this policy ever answer kDrop at all? Must be
  /// constant over the scheduler's lifetime (a configuration fact, not a
  /// state query — may_drop() answers the per-cycle question). The
  /// controller caches it once and never even polls may_drop() when false.
  virtual bool drops_possible() const { return false; }

  /// Row-hit-first capability: true iff the policy never issues a PRE on a
  /// bank that still holds pending row hits for the open row. The strict
  /// protocol checker enforces hit-first ordering only when this holds;
  /// policies that deliberately close rows with hits outstanding (FCFS's
  /// strict age order, BLISS's blacklist ranking, batch-cap RR's rotation)
  /// return false. Constant over the scheduler's lifetime.
  virtual bool hit_first() const { return true; }

  /// Memoization capability: true iff a decide(queue, bank, now) answer can
  /// only change when that bank's pending set changes, the policy's delay
  /// knobs change, or its none_until horizon expires. The controller's
  /// retry/none_until memo layer is sound exactly under that assumption;
  /// policies with cross-bank coupling (BLISS: a serve on bank A can
  /// blacklist an SM and reorder bank B's candidates) return false and run
  /// with memos disabled. Constant over the scheduler's lifetime.
  virtual bool decide_memo_safe() const { return true; }

  /// True iff an AMS row-group drop is draining on `bank`. The controller's
  /// drop pass must keep visiting a draining bank even when its pending
  /// queue ran dry, so the policy can retire the drain state; banks that are
  /// neither draining nor holding pending work are skipped.
  virtual bool bank_draining(BankId bank) const {
    (void)bank;
    return false;
  }

  /// True iff any bank has an active drain awaiting lazy retirement. This is
  /// the only condition under which the drop pass has work with an *empty*
  /// pending queue: may_drop() also answers true on mere budget headroom
  /// (coverage below cap), but with nothing queued and nothing draining the
  /// pass provably visits no bank and mutates nothing — the controller's
  /// idle short-circuit and next_event() horizon key off this instead.
  virtual bool draining() const { return false; }

  /// Called once per memory cycle before any decide(); `bus_busy_total` is
  /// the channel's cumulative data-bus busy cycle count (BWUTIL numerator).
  virtual void tick(Cycle now, std::uint64_t bus_busy_total) {
    (void)now;
    (void)bus_busy_total;
  }

  /// Earliest future memory cycle (> now) at which tick() has an observable
  /// effect *assuming the channel stays idle* (no enqueues, serves, drops or
  /// bus activity in between). The event-wheel main loop uses this to bulk-
  /// skip quiet spans: a policy whose tick mutates time-varying state (DMS /
  /// AMS window boundaries, a blacklist clearing interval) must return its
  /// next boundary; policies whose tick is a no-op (or whose per-tick state
  /// is reconstructed exactly by advance_idle) return kNeverCycle. The
  /// conservative default — "every cycle matters" — is always sound.
  virtual Cycle next_tick_event(Cycle now) const { return now + 1; }

  /// Replays the effect of tick() for the idle span (from, to] in one call:
  /// after advance_idle(from, to) the policy's observable state (probes,
  /// stats, subsequent decisions) must be bit-identical to having called
  /// tick(m, bus_busy) for every m in (from, to] with an unchanged channel.
  /// Only invoked when next_tick_event(from) > to, so no window boundary or
  /// other self-scheduled event falls inside the span. Stateless-per-tick
  /// policies need nothing.
  virtual void advance_idle(Cycle from, Cycle to) {
    (void)from;
    (void)to;
  }

  /// Notification: a request entered the pending queue.
  virtual void on_enqueue(const MemRequest& req) { (void)req; }

  /// Notification: a request left the queue because its column access issued.
  virtual void on_serve(const MemRequest& req) { (void)req; }

  /// Notification: a request left the queue because AMS dropped it.
  virtual void on_drop(const MemRequest& req) { (void)req; }

  /// Contributes policy-side gauges (DMS delay, Th_RBL, ...) to a windowed
  /// telemetry probe. Plain policies have nothing to add.
  virtual void fill_probe(telemetry::WindowProbe& probe) const { (void)probe; }

  /// Registers policy-owned stats (counters/gauges reading this scheduler's
  /// internal state) with the stat registry under `prefix` (e.g. "core.ch0.").
  /// Called once after construction; the scheduler must outlive the hub's
  /// snapshots. Stateless policies register nothing.
  virtual void register_stats(telemetry::TelemetryHub& hub, const std::string& prefix) const {
    (void)hub;
    (void)prefix;
  }

  /// Asks the policy to start accumulating per-bank observability counters
  /// (DMS stall cycles) for the windowed bank probe. Policies without
  /// bank-level state ignore it.
  virtual void enable_bank_stall_tracking() {}

  /// Adds the policy's cumulative per-bank DMS-stall cycles as of memory
  /// cycle `end` into `cum` (pre-zeroed, sized to the bank count). The
  /// default policy has no stalls and leaves the zeros. Observational only:
  /// implementations may rebase internal bookkeeping but must never let this
  /// affect scheduling decisions.
  virtual void harvest_bank_stalls(Cycle end, std::vector<std::uint64_t>& cum) {
    (void)end;
    (void)cum;
  }
};

}  // namespace lazydram
