// Memory-scheduler policy interface.
//
// The MemoryController owns the command engine (PRE/ACT/RD/WR sequencing and
// timing legality); a Scheduler only answers the *policy* question: "which
// pending request should bank B work toward right now — or should one be
// dropped to the value predictor instead?". This split lets FR-FCFS, FCFS and
// the paper's lazy scheduler share one verified command engine.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "mem/pending_queue.hpp"
#include "telemetry/window_sampler.hpp"

namespace lazydram {

/// Snapshot of a bank's externally visible state.
struct BankView {
  BankId bank = 0;
  bool row_open = false;
  RowId open_row = kInvalidRow;
};

/// A scheduling decision for one bank at one memory cycle.
struct Decision {
  enum class Action : std::uint8_t {
    kNone,   ///< Nothing to do for this bank now (empty / gated by policy).
    kServe,  ///< Advance `req_id` toward service (PRE/ACT/RD/WR as needed).
    kDrop,   ///< Remove `req_id` from the queue; reply via the VP unit (AMS).
  };
  Action action = Action::kNone;
  RequestId req_id = 0;

  static Decision none() { return {}; }
  static Decision serve(RequestId id) { return {Action::kServe, id}; }
  static Decision drop(RequestId id) { return {Action::kDrop, id}; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Policy decision for `bank` at memory cycle `now`. Must be free of
  /// observable side effects: the controller may call it more than once per
  /// cycle per bank (once in the drop pass, once in the command pass).
  virtual Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) = 0;

  /// Cheap pre-check: can this policy ever answer kDrop right now? The
  /// controller skips the per-bank drop pass entirely when false, keeping
  /// the non-AMS schemes on the fast path.
  virtual bool may_drop() const { return false; }

  /// Called once per memory cycle before any decide(); `bus_busy_total` is
  /// the channel's cumulative data-bus busy cycle count (BWUTIL numerator).
  virtual void tick(Cycle now, std::uint64_t bus_busy_total) {
    (void)now;
    (void)bus_busy_total;
  }

  /// Notification: a request entered the pending queue.
  virtual void on_enqueue(const MemRequest& req) { (void)req; }

  /// Notification: a request left the queue because its column access issued.
  virtual void on_serve(const MemRequest& req) { (void)req; }

  /// Notification: a request left the queue because AMS dropped it.
  virtual void on_drop(const MemRequest& req) { (void)req; }

  /// Contributes policy-side gauges (DMS delay, Th_RBL, ...) to a windowed
  /// telemetry probe. Plain policies have nothing to add.
  virtual void fill_probe(telemetry::WindowProbe& probe) const { (void)probe; }
};

}  // namespace lazydram
