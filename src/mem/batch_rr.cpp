#include "mem/batch_rr.hpp"

#include "common/assert.hpp"
#include "telemetry/hub.hpp"

namespace lazydram {

BatchRrScheduler::BatchRrScheduler(const PolicyParams& p, unsigned num_banks)
    : cap_(p.rr_cap), last_row_(num_banks, kInvalidRow), streak_(num_banks, 0) {
  LD_ASSERT(cap_ > 0);
}

const MemRequest* BatchRrScheduler::oldest_other_row(const PendingQueue& queue,
                                                     BankId bank, RowId avoid) {
  for (const MemRequest* req : queue.bank_requests(bank))
    if (req->loc.row != avoid) return req;
  return nullptr;
}

Decision BatchRrScheduler::decide(const PendingQueue& queue, const BankView& bank,
                                  Cycle now) {
  (void)now;
  const bool capped =
      streak_[bank.bank] >= cap_ && bank.row_open && bank.open_row == last_row_[bank.bank];
  if (bank.row_open && !capped) {
    if (const MemRequest* hit = queue.oldest_for_row(bank.bank, bank.open_row))
      return Decision::serve(hit->id);
  }
  if (capped) {
    // Rotate: oldest request of another row. When only the capped row pends,
    // the cap is waived — there is no competition to be fair to (and serving
    // the hit is the only livelock-free answer once the engine PREs/ACTs).
    if (const MemRequest* other = oldest_other_row(queue, bank.bank, bank.open_row))
      return Decision::serve(other->id);
    if (const MemRequest* hit = queue.oldest_for_row(bank.bank, bank.open_row))
      return Decision::serve(hit->id);
    return Decision::none();
  }
  if (!bank.row_open && streak_[bank.bank] >= cap_) {
    // The capped row was closed (by our own rotation PRE) but the streak has
    // not been broken by a serve yet. Steering back to last_row_ here would
    // re-ACT it, get capped again, PRE again — a PRE/ACT livelock with zero
    // column accesses. Keep steering away until another row's access lands.
    if (const MemRequest* other = oldest_other_row(queue, bank.bank, last_row_[bank.bank]))
      return Decision::serve(other->id);
  }
  if (const MemRequest* oldest = queue.oldest_for_bank(bank.bank))
    return Decision::serve(oldest->id);
  return Decision::none();
}

void BatchRrScheduler::on_serve(const MemRequest& req) {
  const BankId b = req.loc.bank;
  if (req.loc.row == last_row_[b]) {
    ++streak_[b];
  } else {
    if (streak_[b] >= cap_) ++rotations_;
    last_row_[b] = req.loc.row;
    streak_[b] = 1;
  }
}

void BatchRrScheduler::register_stats(telemetry::TelemetryHub& hub,
                                      const std::string& prefix) const {
  hub.add_counter(prefix + "batch_rr.rotations", [this] { return rotations_; });
}

}  // namespace lazydram
