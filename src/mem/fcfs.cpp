#include "mem/fcfs.hpp"

namespace lazydram {

Decision FcfsScheduler::decide(const PendingQueue& queue, const BankView& bank,
                               Cycle now) {
  (void)now;
  if (const MemRequest* oldest = queue.oldest_for_bank(bank.bank))
    return Decision::serve(oldest->id);
  return Decision::none();
}

}  // namespace lazydram
