#include "mem/bliss.hpp"

#include "common/assert.hpp"
#include "telemetry/hub.hpp"

namespace lazydram {

BlissScheduler::BlissScheduler(const PolicyParams& p, unsigned num_sms)
    : threshold_(p.bliss_threshold),
      clear_interval_(p.bliss_clear_interval),
      blacklist_(num_sms, 0),
      next_clear_(p.bliss_clear_interval) {
  LD_ASSERT(threshold_ > 0 && clear_interval_ > 0);
}

Decision BlissScheduler::decide(const PendingQueue& queue, const BankView& bank,
                                Cycle now) {
  (void)now;
  // Rank = blacklisted*2 + !row_hit, so non-blacklisted hits (0) beat
  // non-blacklisted misses (1) beat blacklisted hits (2) beat blacklisted
  // misses (3). The per-bank list is arrival-ordered, so the first request
  // seen at the best rank is also the oldest at that rank.
  const MemRequest* best = nullptr;
  unsigned best_rank = 4;
  for (const MemRequest* req : queue.bank_requests(bank.bank)) {
    const bool listed = req->src_sm != MemRequest::kNoSm && blacklist_[req->src_sm];
    const bool hit = bank.row_open && req->loc.row == bank.open_row;
    const unsigned rank = (listed ? 2u : 0u) + (hit ? 0u : 1u);
    if (rank < best_rank) {
      best = req;
      best_rank = rank;
      if (rank == 0) break;
    }
  }
  return best == nullptr ? Decision::none() : Decision::serve(best->id);
}

void BlissScheduler::tick(Cycle now, std::uint64_t bus_busy_total) {
  (void)bus_busy_total;
  if (now < next_clear_) return;
  bool any = false;
  for (std::uint8_t& b : blacklist_) {
    any |= b != 0;
    b = 0;
  }
  if (any) ++clear_events_;
  streak_sm_ = MemRequest::kNoSm;
  streak_ = 0;
  // Catch up past idle stretches without looping interval by interval.
  next_clear_ += ((now - next_clear_) / clear_interval_ + 1) * clear_interval_;
}

void BlissScheduler::on_serve(const MemRequest& req) {
  // Writes carry no SM: they neither extend nor break a streak (a dirty
  // eviction interleaved into an SM's stream should not launder its streak).
  if (req.src_sm == MemRequest::kNoSm) return;
  if (req.src_sm == streak_sm_) {
    if (++streak_ >= threshold_) {
      if (!blacklist_[streak_sm_]) {
        blacklist_[streak_sm_] = 1;
        ++blacklist_events_;
      }
      streak_ = 0;
    }
  } else {
    streak_sm_ = req.src_sm;
    streak_ = 1;
  }
}

void BlissScheduler::register_stats(telemetry::TelemetryHub& hub,
                                    const std::string& prefix) const {
  hub.add_counter(prefix + "bliss.blacklist_events", [this] { return blacklist_events_; });
  hub.add_counter(prefix + "bliss.clear_events", [this] { return clear_events_; });
  hub.add_gauge(prefix + "bliss.blacklisted_sms", [this] {
    double n = 0;
    for (std::uint8_t b : blacklist_) n += b != 0 ? 1.0 : 0.0;
    return n;
  });
}

}  // namespace lazydram
