// Per-channel memory controller: pending queue + command engine.
//
// Each memory cycle the controller
//   1. retires finished bursts into the reply queue,
//   2. lets the scheduler observe the cycle (profiling windows),
//   3. executes at most one AMS drop (requests removed without DRAM service),
//   4. issues at most one DRAM command (shared command bus), chosen by asking
//      the scheduler, bank by bank in round-robin order, which request to
//      advance, and stepping that request through PRE -> ACT -> RD/WR.
//
// Row policy is open-row by default (rows stay open until a conflicting
// request needs the bank); kClosedRow eagerly precharges idle banks and is
// used only by ablation benches.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/address.hpp"
#include "dram/channel.hpp"
#include "mem/pending_queue.hpp"
#include "mem/request.hpp"
#include "mem/scheduler.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/window_sampler.hpp"

namespace lazydram {

namespace check {
class ProtocolChecker;
class ChannelRecorder;
}  // namespace check

namespace telemetry {
class LifecycleCollector;
}  // namespace telemetry

enum class RowPolicy { kOpenRow, kClosedRow };

class MemoryController {
 public:
  MemoryController(const GpuConfig& cfg, ChannelId id, const AddressMapper& mapper,
                   std::unique_ptr<Scheduler> scheduler,
                   RowPolicy row_policy = RowPolicy::kOpenRow);

  /// True if the pending queue can take one more request.
  bool can_accept() const { return !queue_.full(); }

  /// Enqueues a request (stamps enqueue_cycle and DRAM coordinates).
  /// Precondition: can_accept().
  void enqueue(MemRequest req, Cycle now_mem);

  void tick(Cycle now_mem);

  // --- Event-wheel horizons (sharded/fast-forward main loop) ---

  /// Earliest future memory cycle (> now) at which tick() could have any
  /// observable effect, assuming nothing external touches the controller in
  /// between (no enqueue, no reply pop — both end a skip anyway). All ticks
  /// in (now, next_event(now)) are provable no-ops except for per-tick
  /// bookkeeping that advance_idle() replays exactly. Returns now + 1
  /// whenever no cheap proof applies (non-fast-path, closed-row ablation, an
  /// attached recorder, a pending drain, ...): the conservative answer is
  /// always sound, it just disables skipping.
  Cycle next_event(Cycle now) const;

  /// Earliest future memory cycle (> now) at which this channel could emit
  /// something the rest of the system can observe: a reply becoming
  /// poppable. Lower-bounds the data return of any not-yet-issued CAS by
  /// cmd_wake_ (no command can issue while the pass is parked) plus
  /// tCL + tBURST. The sharded main loop bounds its epoch length by the
  /// minimum of this over all channels, so no SM can miss a wakeup.
  Cycle next_cross_event(Cycle now) const;

  /// Replays the ticks of the idle span (from, to] in one call: `from` is
  /// the last actually-ticked cycle, and next_event(from) must be > to.
  /// Bit-identical to ticking every cycle of the span: the scheduler and
  /// window sampler bulk-replay their per-tick accumulators; everything else
  /// (completion scan, checker starvation scan, drop/command passes) is a
  /// proven no-op inside the span.
  void advance_idle(Cycle from, Cycle to);

  /// Pops the next ready reply, if any became ready at or before `now_mem`.
  std::optional<MemReply> pop_reply(Cycle now_mem);

  /// True once every enqueued request has been served or dropped and all
  /// replies have been drained.
  bool idle() const { return queue_.empty() && inflight_.empty() && replies_.empty(); }

  // --- Introspection for metrics, tests and benches ---
  ChannelId id() const { return id_; }
  const dram::DramChannel& channel() const { return dram_; }
  const PendingQueue& queue() const { return queue_; }
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }

  std::uint64_t reads_received() const { return reads_received_; }
  std::uint64_t writes_received() const { return writes_received_; }
  std::uint64_t reads_served() const { return reads_served_; }
  std::uint64_t writes_served() const { return writes_served_; }
  std::uint64_t reads_dropped() const { return reads_dropped_; }
  const Summary& read_latency() const { return read_latency_; }

  /// Read latency (enqueue -> data return, memory cycles) as a histogram;
  /// always on, feeds the run-level p50/p95/p99.
  const Histogram& read_latency_hist() const { return read_latency_hist_; }

  // --- Per-tenant accounting (active after enable_tenant_accounting) ---

  /// Sizes the per-tenant counters/latency histograms; requests then account
  /// under their MemRequest::tenant tag. Strictly observational.
  void enable_tenant_accounting(unsigned num_tenants);
  unsigned num_tenants() const { return static_cast<unsigned>(tenant_reads_served_.size()); }
  std::uint64_t tenant_reads_received(TenantId t) const { return tenant_reads_received_[t]; }
  std::uint64_t tenant_reads_served(TenantId t) const { return tenant_reads_served_[t]; }
  std::uint64_t tenant_reads_dropped(TenantId t) const { return tenant_reads_dropped_[t]; }
  /// Integer sum of (done - enqueue) over the tenant's served reads; with
  /// the histogram below it reconciles exactly against the aggregate.
  std::uint64_t tenant_read_latency_sum(TenantId t) const { return tenant_latency_sum_[t]; }
  const Histogram& tenant_read_latency_hist(TenantId t) const {
    return tenant_latency_hist_[t];
  }

  /// Ends the run: folds still-open rows into the RBL histograms and closes
  /// the sampler's final partial window.
  void finalize();

  // --- Telemetry (all optional; disabled costs one null check per tick) ---

  /// Routes row-activation and row-group-drop events through `tracer`
  /// (nullable to detach). Forwards to the window sampler when sampling is
  /// enabled, so a single call re-routes every controller-side event stream
  /// (the sharded loop swaps lane-local capture tracers in and out this way).
  void set_tracer(telemetry::Tracer* tracer) {
    tracer_ = tracer;
    if (sampler_ != nullptr) sampler_->set_tracer(tracer);
  }

  /// Starts per-window sampling of this channel (window in memory cycles).
  /// `tracer` may be null; samples are then only kept in memory. Windows
  /// carry per-bank columns (activations, column accesses, drops, DMS-stall
  /// cycles) harvested from the controller and the policy at window close.
  void enable_window_sampling(Cycle window, telemetry::Tracer* tracer);

  /// Attaches a request-lifecycle collector observing enqueue/CAS/data-
  /// return/drop boundaries (nullable to detach; never feeds back).
  void set_lifecycle(telemetry::LifecycleCollector* lifecycle) { lifecycle_ = lifecycle; }

  /// The window series recorded so far, or nullptr when sampling is off.
  const telemetry::WindowSampler* sampler() const { return sampler_.get(); }

  /// Snapshot of this channel's cumulative counters + policy gauges as of
  /// memory cycle `now` (only the power accountant's background-energy terms
  /// depend on it; pass the current cycle).
  telemetry::WindowProbe telemetry_probe(Cycle now) const;

  // --- Verification (optional observers; null costs one check per event) ---

  /// Attaches a protocol checker observing every enqueue/command/drop/tick
  /// (nullable to detach). The checker never feeds back into scheduling.
  void set_checker(check::ProtocolChecker* checker) { checker_ = checker; }

  /// Attaches a request-stream recorder for golden-model differential replay
  /// (nullable to detach).
  void set_recorder(check::ChannelRecorder* recorder) { recorder_ = recorder; }

  /// Test-only: feeds a command to the attached checker as if the engine had
  /// issued it, without touching the DRAM model. Lets tests prove that an
  /// illegal command is caught (there is no way to coax the real engine into
  /// issuing one).
  void inject_command_for_test(dram::CommandKind kind, BankId bank, RowId row,
                               Cycle now);

 private:
  struct InFlight {
    MemRequest req;
    Cycle done = 0;
  };

  /// Attempts one command step toward serving `req`; returns true if a DRAM
  /// command was issued this cycle. On failure, `retry_at` (if non-null)
  /// receives a lower bound on the cycle the blocked command could issue.
  bool advance_request(const MemRequest& req, Cycle now, Cycle* retry_at = nullptr);

  void complete_bursts(Cycle now);
  void issue_one_command(Cycle now);

  /// Closed-row ablation: precharges `b` if its open row has no pending work
  /// left; returns true if the precharge issued (consuming the command bus).
  bool try_closed_row_precharge(BankId b, Cycle now);

  /// Cumulative channel counters shared by telemetry_probe() and the
  /// once-per-tick probe in tick(). Policy gauges are filled separately.
  void fill_channel_counters(telemetry::WindowProbe& p, Cycle now) const;

  /// Wires the sampler's per-tenant columns once both window sampling and
  /// tenant accounting are enabled (call-order independent).
  void attach_tenant_probe();

  ChannelId id_;
  const AddressMapper& mapper_;
  RowPolicy row_policy_;

  PendingQueue queue_;
  dram::DramChannel dram_;
  std::unique_ptr<Scheduler> scheduler_;

  std::vector<InFlight> inflight_;
  std::deque<MemReply> replies_;

  unsigned rr_bank_ = 0;
  /// Start bank of the AMS drop pass, rotated past each drop so concurrent
  /// row-group drains on different banks interleave fairly.
  unsigned drop_rr_bank_ = 0;
  unsigned num_banks_;
  /// One past the last ticked memory cycle; the power accountant and the
  /// sampler's final window both close here at finalize().
  Cycle end_mem_ = 0;
  /// nJ-per-cycle -> watts conversion (mem_clock_mhz * 1e-3).
  double watts_per_nj_per_cycle_;
  /// Schedulability fast paths enabled (GpuConfig::fast_path).
  bool fast_path_;
  /// Cached Scheduler::drops_possible(): non-AMS schemes never run the drop
  /// pass, not even the may_drop() poll.
  bool drops_possible_;
  /// Cached Scheduler::decide_memo_safe(): policies with cross-bank coupling
  /// (BLISS) run with the per-bank retry/none_until memos disabled — only
  /// the unconditionally safe fast paths (empty-bank skip, idle
  /// short-circuit) remain for them.
  bool memo_safe_;
  /// Per-bank retry memo: the command pass skips a bank until this cycle
  /// after its chosen command failed legality (earliest_issue lower bound).
  /// Invalidated (set to 0) whenever the bank's pending set changes —
  /// enqueue or AMS drop — since that can change the scheduler's choice.
  std::vector<Cycle> bank_retry_at_;
  /// Per-bank decision-stability memo: the scheduler answered kNone with a
  /// Decision::none_until horizon (DMS age gate), so both passes skip the
  /// bank until then. Invalidated with bank_retry_at_, plus wholesale when
  /// the DMS delay changes (the horizon assumed it constant). Only honored
  /// under open-row policy, where a skipped decide() has no command to miss.
  std::vector<Cycle> bank_none_until_;
  /// DMS delay observed last tick (bank_none_until_ invalidation edge).
  Cycle last_dms_delay_ = 0;
  /// Whole-pass memos: when a full scan finds every non-empty bank blocked
  /// by a per-bank memo (and nothing issued/dropped), the pass itself is
  /// skipped until the earliest per-bank horizon. Invalidated together with
  /// the per-bank memos (enqueue, drop, DMS delay change); only ever set
  /// under open-row fast-path, so 0 elsewhere.
  Cycle cmd_wake_ = 0;
  Cycle drop_wake_ = 0;
  /// Earliest done-cycle among `inflight_` (kNeverCycle when empty); lets
  /// tick() skip the completion scan until a burst can actually retire.
  Cycle next_burst_done_ = kNeverCycle;

  std::uint64_t reads_received_ = 0;
  std::uint64_t writes_received_ = 0;
  std::uint64_t reads_served_ = 0;
  std::uint64_t writes_served_ = 0;
  std::uint64_t reads_dropped_ = 0;
  Summary read_latency_;
  Histogram read_latency_hist_{4096};

  /// Per-tenant slices of the read counters/latency above; all empty unless
  /// enable_tenant_accounting sized them. Sum over tenants == aggregate.
  std::vector<std::uint64_t> tenant_reads_received_;
  std::vector<std::uint64_t> tenant_reads_served_;
  std::vector<std::uint64_t> tenant_reads_dropped_;
  std::vector<std::uint64_t> tenant_latency_sum_;
  std::vector<Histogram> tenant_latency_hist_;

  /// Always-on per-bank cumulative command counters (one increment per
  /// issued ACT / column access / drop); the window sampler's bank probe
  /// differences them into per-window heatmap columns.
  std::vector<std::uint64_t> bank_acts_;
  std::vector<std::uint64_t> bank_cols_;
  std::vector<std::uint64_t> bank_drops_;
  std::vector<std::uint64_t> stall_scratch_;  ///< Bank-probe harvest buffer.

  telemetry::Tracer* tracer_ = nullptr;
  telemetry::LifecycleCollector* lifecycle_ = nullptr;  ///< Borrowed; null when off.
  std::unique_ptr<telemetry::WindowSampler> sampler_;

  check::ProtocolChecker* checker_ = nullptr;    ///< Borrowed; null when off.
  check::ChannelRecorder* recorder_ = nullptr;   ///< Borrowed; null when off.
};

}  // namespace lazydram
