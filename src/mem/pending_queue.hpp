// The FR-FCFS re-order pending queue (128 entries per MC in the baseline).
//
// Requests are kept in arrival order; all scheduler policies express their
// priority rules as scans over this order. The queue also answers the
// row-group questions the AMS unit asks ("how many pending requests share
// this row?", "are they all approximable global reads?").
//
// Schedulers consult the queue for every bank on every memory cycle, so the
// queue is built around incrementally maintained indices instead of scans:
//
//   * a fixed pool of nodes (capacity is fixed at construction) threaded by
//     three intrusive doubly-linked lists — global arrival order, per-bank
//     arrival order, and per-(bank, row) arrival order;
//   * a per-(bank, row) RowGroup carrying the aggregates every scheduler
//     query needs: the oldest member (list head), the group size, and
//     counters from which all-reads / all-approximable follow.
//
// Every policy query (oldest_for_bank, oldest_for_row, row_group_size,
// row_group_all_reads, row_group_all_approximable, bank_size) is O(1), and
// erase() unlinks the node from all three lists in O(1) — the node itself
// carries its positions, so nothing is searched.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "mem/request.hpp"

namespace lazydram {

class PendingQueue {
 private:
  struct RowGroup;

  /// Minimal open-addressed hash map (linear probing, backward-shift
  /// deletion) from a 64-bit key to a pointer. The queue's capacity is fixed
  /// at construction, so the table is sized once for a <= 50% load factor and
  /// never rehashes; lookups are one multiply plus a short contiguous probe —
  /// far cheaper than std::unordered_map at pending-queue scale (<= 128 live
  /// keys, millions of queries per simulated second).
  template <typename V>
  class ProbeMap {
   public:
    /// No valid key uses the all-ones pattern: request ids are small
    /// monotonic integers and group keys carry a bank index far below 2^32.
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    void init(std::size_t max_entries) {
      std::size_t cap = 16;
      while (cap < max_entries * 2) cap <<= 1;
      mask_ = cap - 1;
      keys_.assign(cap, kEmptyKey);
      vals_.assign(cap, V{});
    }

    V* find(std::uint64_t key) {
      for (std::size_t i = slot(key);; i = (i + 1) & mask_) {
        if (keys_[i] == key) return &vals_[i];
        if (keys_[i] == kEmptyKey) return nullptr;
      }
    }
    const V* find(std::uint64_t key) const {
      return const_cast<ProbeMap*>(this)->find(key);
    }

    /// Inserts `key` (must be absent) mapping to `val`.
    void insert(std::uint64_t key, V val) {
      LD_ASSERT_MSG(key != kEmptyKey, "ProbeMap key collides with the empty sentinel");
      std::size_t i = slot(key);
      while (keys_[i] != kEmptyKey) {
        LD_ASSERT_MSG(keys_[i] != key, "duplicate ProbeMap key");
        i = (i + 1) & mask_;
      }
      keys_[i] = key;
      vals_[i] = val;
    }

    /// Removes `key` (must be present), back-shifting the probe chain so
    /// future lookups never cross a tombstone.
    void erase(std::uint64_t key) {
      std::size_t i = slot(key);
      while (keys_[i] != key) {
        LD_ASSERT_MSG(keys_[i] != kEmptyKey, "erase of absent ProbeMap key");
        i = (i + 1) & mask_;
      }
      std::size_t j = i;
      for (;;) {
        j = (j + 1) & mask_;
        if (keys_[j] == kEmptyKey) break;
        const std::size_t ideal = slot(keys_[j]);
        // The entry at j may fill the hole at i iff its probe chain started
        // at or before i (cyclically): moving it cannot break its own chain.
        if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
          keys_[i] = keys_[j];
          vals_[i] = vals_[j];
          i = j;
        }
      }
      keys_[i] = kEmptyKey;
    }

   private:
    std::size_t slot(std::uint64_t key) const {
      return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) & mask_;
    }

    std::vector<std::uint64_t> keys_;
    std::vector<V> vals_;
    std::size_t mask_ = 0;
  };

  /// One pooled queue entry. The intrusive links are the entry's positions
  /// in the three lists; erase() follows them instead of searching.
  struct Node {
    MemRequest req;
    Node* prev = nullptr;       ///< Global arrival order.
    Node* next = nullptr;
    Node* bank_prev = nullptr;  ///< Arrival order within the bank.
    Node* bank_next = nullptr;
    Node* row_prev = nullptr;   ///< Arrival order within the (bank, row) group.
    Node* row_next = nullptr;
    RowGroup* group = nullptr;  ///< Owning row group (never null while queued).
  };

  /// Aggregates of one (bank, row) group, maintained incrementally on
  /// push/erase. The group exists only while it has members.
  struct RowGroup {
    Node* head = nullptr;  ///< Oldest member (arrival order).
    Node* tail = nullptr;
    unsigned size = 0;
    unsigned writes = 0;      ///< Members that are not reads.
    unsigned non_approx = 0;  ///< Members that are not approximable reads.
  };

  struct BankIndex {
    Node* head = nullptr;  ///< Oldest request of the bank.
    Node* tail = nullptr;
    unsigned size = 0;
  };

 public:
  PendingQueue(std::size_t capacity, unsigned num_banks);

  bool full() const { return size_ >= capacity_; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Appends a request. Precondition: !full().
  void push(MemRequest req);

  /// Oldest-first iteration (arrival order) over all banks.
  class const_iterator {
   public:
    using value_type = MemRequest;
    using reference = const MemRequest&;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    explicit const_iterator(const Node* n) : n_(n) {}
    reference operator*() const { return n_->req; }
    const MemRequest* operator->() const { return &n_->req; }
    const_iterator& operator++() {
      n_ = n_->next;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return n_ == o.n_; }
    bool operator!=(const const_iterator& o) const { return n_ != o.n_; }

   private:
    const Node* n_ = nullptr;
  };
  const_iterator begin() const { return const_iterator{head_}; }
  const_iterator end() const { return const_iterator{nullptr}; }

  /// Oldest pending request destined to (bank, row), i.e. a row-buffer hit
  /// candidate when `row` is the bank's open row.
  const MemRequest* oldest_for_row(BankId bank, RowId row) const {
    const RowGroup* g = find_group(bank, row);
    return g == nullptr ? nullptr : &g->head->req;
  }

  /// Oldest pending request destined to `bank` (any row).
  const MemRequest* oldest_for_bank(BankId bank) const {
    const Node* n = banks_[bank].head;
    return n == nullptr ? nullptr : &n->req;
  }

  /// Oldest request overall.
  const MemRequest* oldest() const { return head_ == nullptr ? nullptr : &head_->req; }

  /// Number of pending requests destined to `bank`. Schedulability pre-check:
  /// a bank with no pending requests has nothing to decide.
  unsigned bank_size(BankId bank) const { return banks_[bank].size; }

  /// Lightweight arrival-ordered view over one bank's pending requests
  /// (iterates the intrusive per-bank list; yields const MemRequest*).
  class BankRange {
   public:
    class iterator {
     public:
      using value_type = const MemRequest*;
      using difference_type = std::ptrdiff_t;

      iterator() = default;
      explicit iterator(const Node* n) : n_(n) {}
      const MemRequest* operator*() const { return &n_->req; }
      iterator& operator++() {
        n_ = n_->bank_next;
        return *this;
      }
      bool operator==(const iterator& o) const { return n_ == o.n_; }
      bool operator!=(const iterator& o) const { return n_ != o.n_; }

     private:
      const Node* n_ = nullptr;
    };
    iterator begin() const { return iterator{head_}; }
    iterator end() const { return iterator{nullptr}; }

   private:
    friend class PendingQueue;
    explicit BankRange(const Node* head) : head_(head) {}
    const Node* head_;
  };

  /// Arrival-ordered requests of one bank.
  BankRange bank_requests(BankId bank) const { return BankRange{banks_[bank].head}; }

  /// Number of pending requests destined to (bank, row) — the RBL this row's
  /// activation is expected to achieve from the queue's viewpoint.
  unsigned row_group_size(BankId bank, RowId row) const {
    const RowGroup* g = find_group(bank, row);
    return g == nullptr ? 0 : g->size;
  }

  /// True iff every pending request to (bank, row) is a global read
  /// (vacuously true for an empty group).
  bool row_group_all_reads(BankId bank, RowId row) const {
    const RowGroup* g = find_group(bank, row);
    return g == nullptr || g->writes == 0;
  }

  /// True iff every pending request to (bank, row) is an approximable read
  /// (vacuously true for an empty group).
  bool row_group_all_approximable(BankId bank, RowId row) const {
    const RowGroup* g = find_group(bank, row);
    return g == nullptr || g->non_approx == 0;
  }

  /// Removes the request with `id`; returns it. Aborts if absent.
  MemRequest erase(RequestId id);

  const MemRequest* find(RequestId id) const;

 private:
  /// Rows fit well below 2^32 in any modeled device (row index within a
  /// bank), so (bank, row) packs into one 64-bit group key.
  static std::uint64_t group_key(BankId bank, RowId row) {
    return (static_cast<std::uint64_t>(bank) << 32) | row;
  }
  const RowGroup* find_group(BankId bank, RowId row) const {
    const RowGroup* const* g = groups_.find(group_key(bank, row));
    return g == nullptr ? nullptr : *g;
  }

  std::size_t capacity_;
  std::size_t size_ = 0;

  std::vector<Node> pool_;    ///< Fixed storage; node addresses are stable.
  std::vector<Node*> free_;   ///< Unused pool slots.

  Node* head_ = nullptr;  ///< Oldest request overall.
  Node* tail_ = nullptr;

  std::vector<BankIndex> banks_;
  /// RowGroups live in a fixed pool (at most one per queued request), so the
  /// group pointers held by nodes stay stable across index mutations.
  std::vector<RowGroup> group_pool_;
  std::vector<RowGroup*> group_free_;
  ProbeMap<RowGroup*> groups_;  ///< (bank, row) -> live group.
  ProbeMap<Node*> by_id_;       ///< Request id -> node.
};

}  // namespace lazydram
