// The FR-FCFS re-order pending queue (128 entries per MC in the baseline).
//
// Requests are kept in arrival order; all scheduler policies express their
// priority rules as scans over this order. The queue also answers the
// row-group questions the AMS unit asks ("how many pending requests share
// this row?", "are they all approximable global reads?").
//
// Schedulers consult the queue for every bank on every memory cycle, so the
// queue keeps a per-bank arrival-ordered index: each policy question then
// touches only the (queue_size / num_banks) requests of one bank.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/request.hpp"

namespace lazydram {

class PendingQueue {
 public:
  PendingQueue(std::size_t capacity, unsigned num_banks)
      : capacity_(capacity), by_bank_(num_banks) {}

  bool full() const { return by_id_.size() >= capacity_; }
  bool empty() const { return by_id_.empty(); }
  std::size_t size() const { return by_id_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Appends a request. Precondition: !full().
  void push(MemRequest req);

  /// Oldest-first iteration (arrival order) over all banks.
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// Oldest pending request destined to (bank, row), i.e. a row-buffer hit
  /// candidate when `row` is the bank's open row.
  const MemRequest* oldest_for_row(BankId bank, RowId row) const;

  /// Oldest pending request destined to `bank` (any row).
  const MemRequest* oldest_for_bank(BankId bank) const;

  /// Oldest request overall.
  const MemRequest* oldest() const {
    return entries_.empty() ? nullptr : &entries_.front();
  }

  /// Arrival-ordered requests of one bank.
  const std::vector<const MemRequest*>& bank_requests(BankId bank) const {
    return by_bank_[bank];
  }

  /// Number of pending requests destined to (bank, row) — the RBL this row's
  /// activation is expected to achieve from the queue's viewpoint.
  unsigned row_group_size(BankId bank, RowId row) const;

  /// True iff every pending request to (bank, row) is a global read.
  bool row_group_all_reads(BankId bank, RowId row) const;

  /// True iff every pending request to (bank, row) is an approximable read.
  bool row_group_all_approximable(BankId bank, RowId row) const;

  /// Removes the request with `id`; returns it. Aborts if absent.
  MemRequest erase(RequestId id);

  const MemRequest* find(RequestId id) const;

 private:
  std::size_t capacity_;
  std::list<MemRequest> entries_;                      ///< Arrival order.
  std::vector<std::vector<const MemRequest*>> by_bank_;  ///< Arrival order per bank.
  std::unordered_map<RequestId, std::list<MemRequest>::iterator> by_id_;
};

}  // namespace lazydram
