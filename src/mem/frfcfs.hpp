// Baseline First-Row First-Come-First-Serve scheduler (Rixner et al.),
// Section II-C: row-buffer-hit requests first (oldest hit among them), else
// the oldest request destined to the bank.
#pragma once

#include "mem/scheduler.hpp"

namespace lazydram {

class FrFcfsScheduler : public Scheduler {
 public:
  Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) override;
};

}  // namespace lazydram
