// Baseline First-Row First-Come-First-Serve scheduler (Rixner et al.),
// Section II-C: row-buffer-hit requests first (oldest hit among them), else
// the oldest request destined to the bank.
#pragma once

#include "mem/scheduler.hpp"

namespace lazydram {

class FrFcfsScheduler : public Scheduler {
 public:
  Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) override;

  /// Stateless per tick: an idle channel never changes a future decision.
  Cycle next_tick_event(Cycle now) const override {
    (void)now;
    return kNeverCycle;
  }
};

}  // namespace lazydram
