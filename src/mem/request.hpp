// Memory request/reply types exchanged between the L2 slices and the
// memory controllers.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dram/address.hpp"

namespace lazydram {

enum class AccessKind : std::uint8_t { kRead, kWrite };

/// One 128B DRAM transaction pending at a memory controller.
struct MemRequest {
  RequestId id = 0;
  Addr line_addr = 0;  ///< 128B-aligned global address.
  AccessKind kind = AccessKind::kRead;

  /// True iff this is a global read into a programmer-annotated approximable
  /// region (the paper's `#pragma pred_var`); only such requests are AMS
  /// drop candidates.
  bool approximable = false;

  /// Reply routing: which SM/warp unblocks when this read completes.
  /// Writes (dirty L2 evictions) carry src_sm == kNoSm and need no reply.
  SmId src_sm = kNoSm;

  /// Owning tenant; 0 in single-tenant runs. Carried from the issuing warp
  /// through icnt/L2/MSHR so per-client QoS budgets and accounting can be
  /// applied at the controller.
  TenantId tenant = 0;

  /// Memory-domain cycle the request entered the pending queue. DMS ages
  /// requests against this stamp ("each request is assigned a time stamp
  /// when it enters the pending queue", Section IV-A).
  Cycle enqueue_cycle = 0;

  /// Pre-computed DRAM coordinates of line_addr.
  DramLocation loc{};

  static constexpr SmId kNoSm = ~SmId{0};

  bool is_read() const { return kind == AccessKind::kRead; }
};

/// Completion notice traveling back toward the cores.
struct MemReply {
  RequestId id = 0;
  Addr line_addr = 0;
  SmId src_sm = MemRequest::kNoSm;
  /// True if the value was synthesized by the VP unit (AMS drop) rather than
  /// read from the DRAM array.
  bool approximate = false;
  /// Memory-domain cycle the reply became available at the controller.
  Cycle ready_cycle = 0;
};

}  // namespace lazydram
