// Hill-climbing delay autotuner — a Dyn-DMS rival built on plain FR-FCFS.
// Row misses are age-gated by an online-searched delay: a miss may not be
// scheduled until `enqueue_cycle + delay`, buying time for same-row arrivals
// to coalesce (the DMS idea) — but instead of Dyn-DMS's profile/adjust state
// machine, the delay hill-climbs on measured bus utilization: every
// `tune_window` cycles the achieved BWUTIL is compared against the best seen;
// within tolerance the climb continues upward with a doubling step, otherwise
// it backs off with a halving step. Row hits are never gated.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "mem/scheduler.hpp"

namespace lazydram {

class AutotuneScheduler : public Scheduler {
 public:
  explicit AutotuneScheduler(const PolicyParams& p);

  Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) override;
  void tick(Cycle now, std::uint64_t bus_busy_total) override;
  void fill_probe(telemetry::WindowProbe& probe) const override;
  void register_stats(telemetry::TelemetryHub& hub, const std::string& prefix) const override;

  /// The only self-scheduled tick effect is the window-boundary adjustment.
  Cycle next_tick_event(Cycle now) const override {
    return window_end_ > now ? window_end_ : now + 1;
  }

  /// Idle ticks strictly before window_end_ return immediately; nothing to
  /// reconstruct.
  void advance_idle(Cycle from, Cycle to) override {
    (void)from;
    (void)to;
  }

  Cycle delay() const { return delay_; }
  std::uint64_t accepts() const { return accepts_; }
  std::uint64_t backoffs() const { return backoffs_; }

 private:
  Cycle min_delay_;
  Cycle max_delay_;
  Cycle base_step_;
  Cycle window_;
  double tolerance_;

  Cycle delay_;        ///< Current gating delay for row misses.
  Cycle step_;         ///< Adaptive hill-climb step.
  Cycle window_end_ = 0;
  Cycle window_start_cycle_ = 0;
  std::uint64_t window_start_busy_ = 0;
  double best_bw_ = 0.0;  ///< Best window BWUTIL observed so far.

  std::uint64_t accepts_ = 0;   ///< Windows that kept climbing (delay +=).
  std::uint64_t backoffs_ = 0;  ///< Windows that retreated (delay -=).
};

}  // namespace lazydram
