// Batch-cap round-robin scheduler: FR-FCFS's hit-first rule, but each bank
// may stream at most `cap` consecutive column accesses to one row before the
// policy rotates to the oldest request of a *different* pending row (the
// per-bank batch cap of GPGPU-Sim-style RR arbiters). Bounds the worst-case
// wait a row miss suffers behind a hot row while keeping most of the
// open-row locality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "mem/scheduler.hpp"

namespace lazydram {

class BatchRrScheduler : public Scheduler {
 public:
  BatchRrScheduler(const PolicyParams& p, unsigned num_banks);

  Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) override;
  void on_serve(const MemRequest& req) override;
  void register_stats(telemetry::TelemetryHub& hub, const std::string& prefix) const override;

  /// The rotation rule deliberately closes a capped row with hits pending.
  bool hit_first() const override { return false; }

  /// Batch state only moves on serves, never on idle ticks.
  Cycle next_tick_event(Cycle now) const override {
    (void)now;
    return kNeverCycle;
  }

  std::uint64_t rotations() const { return rotations_; }

 private:
  /// Oldest request for `bank` whose row differs from `avoid`; null when
  /// every pending request targets `avoid`.
  static const MemRequest* oldest_other_row(const PendingQueue& queue, BankId bank,
                                            RowId avoid);

  unsigned cap_;
  std::vector<RowId> last_row_;     ///< Per bank: row of the running batch.
  std::vector<unsigned> streak_;    ///< Per bank: consecutive serves to last_row_.
  std::uint64_t rotations_ = 0;     ///< Cap-forced row switches (cumulative).
};

}  // namespace lazydram
