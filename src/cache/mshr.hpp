// Miss Status Holding Registers: merge concurrent misses to the same line and
// remember who to wake when the refill (or VP prediction) arrives.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace lazydram::cache {

/// Opaque waiter handle; the owner decides its meaning (warp slot, request
/// id, ...).
using MshrToken = std::uint64_t;

class MshrTable {
 public:
  MshrTable(std::uint32_t entries, std::uint32_t max_merged_per_entry = 64)
      : max_entries_(entries), max_merged_(max_merged_per_entry) {}

  /// True if a miss on `line_addr` can currently be tracked (existing entry
  /// with merge room, or a free entry).
  bool can_allocate(Addr line_addr) const;

  /// Registers `token` as waiting on `line_addr`. Returns true if this is
  /// the *primary* miss (a new entry, i.e. a memory request must be sent);
  /// false if it merged into an existing entry.
  bool allocate(Addr line_addr, MshrToken token);

  bool has(Addr line_addr) const { return entries_.count(line_addr) != 0; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Fill arrived: removes the entry and returns all waiting tokens.
  std::vector<MshrToken> release(Addr line_addr);

 private:
  std::uint32_t max_entries_;
  std::uint32_t max_merged_;
  std::unordered_map<Addr, std::vector<MshrToken>> entries_;
};

}  // namespace lazydram::cache
