#include "cache/mshr.hpp"

#include "common/assert.hpp"

namespace lazydram::cache {

bool MshrTable::can_allocate(Addr line_addr) const {
  const auto it = entries_.find(line_addr);
  if (it != entries_.end()) return it->second.size() < max_merged_;
  return entries_.size() < max_entries_;
}

bool MshrTable::allocate(Addr line_addr, MshrToken token) {
  LD_ASSERT_MSG(can_allocate(line_addr), "MSHR allocate without capacity check");
  auto [it, inserted] = entries_.try_emplace(line_addr);
  it->second.push_back(token);
  return inserted;
}

std::vector<MshrToken> MshrTable::release(Addr line_addr) {
  const auto it = entries_.find(line_addr);
  LD_ASSERT_MSG(it != entries_.end(), "MSHR release of untracked line");
  std::vector<MshrToken> waiters = std::move(it->second);
  entries_.erase(it);
  return waiters;
}

}  // namespace lazydram::cache
