#include "cache/cache.hpp"

#include "common/assert.hpp"

namespace lazydram::cache {

Cache::Cache(const CacheGeometry& geo) : sets_(geo.num_sets()), ways_(geo.ways) {
  LD_ASSERT(sets_ > 0 && (sets_ & (sets_ - 1)) == 0);
  LD_ASSERT(ways_ > 0);
  lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

Cache::Line* Cache::find(Addr line_addr) {
  const std::uint32_t set = set_index(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].addr == line_addr) return &base[w];
  return nullptr;
}

const Cache::Line* Cache::find(Addr line_addr) const {
  return const_cast<Cache*>(this)->find(line_addr);
}

AccessResult Cache::access(Addr line_addr, bool is_write) {
  LD_ASSERT_MSG(line_addr % kLineBytes == 0, "cache access must be line-aligned");
  if (Line* line = find(line_addr)) {
    line->last_use = ++use_clock_;
    if (is_write) line->dirty = true;
    ++hits_;
    return {.hit = true};
  }
  ++misses_;
  return {.hit = false};
}

AccessResult Cache::fill(Addr line_addr, bool dirty, bool approximate) {
  LD_ASSERT_MSG(line_addr % kLineBytes == 0, "cache fill must be line-aligned");
  ++fills_;

  if (Line* line = find(line_addr)) {
    // Refill of a line that raced in earlier (e.g. merged misses): refresh.
    line->last_use = ++use_clock_;
    line->dirty = line->dirty || dirty;
    line->approximate = approximate;
    return {.hit = true};
  }

  const std::uint32_t set = set_index(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].last_use < victim->last_use) victim = &base[w];
  }

  AccessResult result;
  if (victim->valid && victim->dirty) {
    result.writeback = true;
    result.evicted_line = victim->addr;
  }
  victim->addr = line_addr;
  victim->valid = true;
  victim->dirty = dirty;
  victim->approximate = approximate;
  victim->last_use = ++use_clock_;
  return result;
}

bool Cache::invalidate(Addr line_addr) {
  if (Line* line = find(line_addr)) {
    line->valid = false;
    return line->dirty;
  }
  return false;
}

bool Cache::contains(Addr line_addr) const { return find(line_addr) != nullptr; }

bool Cache::line_is_approx(Addr line_addr) const {
  const Line* line = find(line_addr);
  return line != nullptr && line->approximate;
}

void Cache::lines_in_set(std::uint32_t set, std::vector<Addr>& out) const {
  LD_ASSERT(set < sets_);
  const Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w)
    if (base[w].valid) out.push_back(base[w].addr);
}

}  // namespace lazydram::cache
