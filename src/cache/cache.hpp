// Set-associative, write-back, LRU cache model used for the per-SM L1s and
// the per-partition L2 slices.
//
// The model is tag-only: functional data lives in gpu::FunctionalMemory, so
// lines track {address, valid, dirty, approximate} but carry no bytes. The
// `approximate` flag marks lines filled by the VP unit rather than by DRAM.
// The L2's tag arrays double as the VP unit's search structure, which is why
// the cache exposes set geometry and per-set line enumeration ("we take
// advantage of the existing associative search hardware", Section IV-D).
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace lazydram::cache {

/// Outcome of a lookup or fill.
struct AccessResult {
  bool hit = false;
  /// A dirty line was evicted by this fill and must be written back.
  bool writeback = false;
  Addr evicted_line = 0;
};

class Cache {
 public:
  explicit Cache(const CacheGeometry& geo);

  /// Looks up `line_addr` (must be 128B-aligned). On hit, updates LRU and,
  /// if `is_write`, marks the line dirty. Misses do NOT allocate — call
  /// fill() when the refill arrives (or immediately for 0-latency models).
  AccessResult access(Addr line_addr, bool is_write);

  /// Allocates `line_addr`, evicting the set's LRU victim if needed.
  /// `dirty` marks the new line dirty at once (write-allocate stores);
  /// `approximate` tags VP-synthesized fills.
  AccessResult fill(Addr line_addr, bool dirty, bool approximate);

  /// Invalidates `line_addr` if present; returns true if it was dirty.
  bool invalidate(Addr line_addr);

  bool contains(Addr line_addr) const;
  bool line_is_approx(Addr line_addr) const;

  // --- Geometry / VP-unit support ---
  std::uint32_t num_sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t set_index(Addr line_addr) const {
    return static_cast<std::uint32_t>((line_addr / kLineBytes) & (sets_ - 1));
  }
  /// Appends the addresses of all valid lines in `set` to `out`.
  void lines_in_set(std::uint32_t set, std::vector<Addr>& out) const;

  // --- Statistics ---
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  std::uint64_t fills() const { return fills_; }
  double hit_rate() const {
    return accesses() == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(accesses());
  }

 private:
  struct Line {
    Addr addr = 0;
    bool valid = false;
    bool dirty = false;
    bool approximate = false;
    std::uint64_t last_use = 0;
  };

  Line* find(Addr line_addr);
  const Line* find(Addr line_addr) const;

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<Line> lines_;  ///< sets_ x ways_, row-major by set.
  std::uint64_t use_clock_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t fills_ = 0;
};

}  // namespace lazydram::cache
