// Crossbar interconnect (Table I: one crossbar per direction between the 30
// SMs and the 6 memory partitions).
//
// Model: per-source FIFO input queues (head-of-line blocking, as in a real
// input-queued switch), one packet accepted per destination per core cycle
// with round-robin arbitration across sources, and a fixed traversal latency.
// The same class serves both directions (SM->MC requests, MC->SM replies).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "mem/request.hpp"

namespace lazydram::icnt {

/// One 128B-granularity message. Requests travel SM -> partition; replies
/// travel partition -> SM. Unused fields are zero for a given direction.
struct Packet {
  RequestId id = 0;
  Addr line_addr = 0;
  AccessKind kind = AccessKind::kRead;
  bool approximable = false;  ///< Request: annotated-approximable load.
  bool approximate = false;   ///< Reply: value was VP-synthesized.
  SmId src_sm = 0;            ///< Originating SM (for reply routing).
  TenantId tenant = 0;        ///< Owning client (0 in single-tenant runs).

  // Lifecycle-tracing stamps (core cycles; observational only, never
  // consulted by the switch or the receivers' logic).
  Cycle inject_cycle = 0;  ///< Request: when the SM pushed the primary load.
  Cycle eject_cycle = 0;   ///< Request: when the partition popped it.
  RequestId parent = 0;    ///< Reply: MemRequest id this packet answers.
};

class Crossbar {
 public:
  /// `output_queue_capacity` bounds the per-destination landing buffer: a
  /// destination stops granting new packets while its buffer is full, so
  /// backpressure propagates through the switch to the sources instead of
  /// packets piling up invisibly (credit-based flow control).
  Crossbar(unsigned num_sources, unsigned num_destinations, unsigned latency,
           std::size_t input_queue_capacity, std::size_t output_queue_capacity = 8);

  /// True if source `src` can inject one more packet this cycle.
  bool can_push(unsigned src) const;

  /// Injects a packet from `src` toward `dst`. Precondition: can_push(src).
  void push(unsigned src, unsigned dst, const Packet& packet);

  /// Advances one core cycle: each destination accepts at most one
  /// head-of-line packet (round-robin over sources); accepted packets become
  /// poppable `latency` cycles later.
  void tick(Cycle now);

  /// Next packet that has arrived at `dst` by `now`, if any.
  std::optional<Packet> pop(unsigned dst, Cycle now);

  /// True when no packet is anywhere in the switch.
  bool idle() const;

  std::uint64_t delivered() const { return delivered_; }

 private:
  struct InFlight {
    Packet packet;
    Cycle ready = 0;
  };
  struct InputEntry {
    Packet packet;
    unsigned dst = 0;
  };

  unsigned num_src_;
  unsigned num_dst_;
  unsigned latency_;
  std::size_t capacity_;
  std::size_t out_capacity_;

  std::vector<std::deque<InputEntry>> inputs_;   ///< Per source.
  std::vector<std::deque<InFlight>> outputs_;    ///< Per destination.
  std::vector<unsigned> rr_;                     ///< Per destination arbiter state.
  std::uint64_t delivered_ = 0;
  std::uint64_t queued_ = 0;  ///< Packets waiting in input queues (fast-exit).
};

}  // namespace lazydram::icnt
