#include "icnt/crossbar.hpp"

#include "common/assert.hpp"

namespace lazydram::icnt {

Crossbar::Crossbar(unsigned num_sources, unsigned num_destinations, unsigned latency,
                   std::size_t input_queue_capacity, std::size_t output_queue_capacity)
    : num_src_(num_sources),
      num_dst_(num_destinations),
      latency_(latency),
      capacity_(input_queue_capacity),
      out_capacity_(output_queue_capacity),
      inputs_(num_sources),
      outputs_(num_destinations),
      rr_(num_destinations, 0) {
  LD_ASSERT(num_sources > 0 && num_destinations > 0 && input_queue_capacity > 0);
  LD_ASSERT(output_queue_capacity > 0);
}

bool Crossbar::can_push(unsigned src) const {
  LD_ASSERT(src < num_src_);
  return inputs_[src].size() < capacity_;
}

void Crossbar::push(unsigned src, unsigned dst, const Packet& packet) {
  LD_ASSERT_MSG(can_push(src), "push into full crossbar input queue");
  LD_ASSERT(dst < num_dst_);
  inputs_[src].push_back(InputEntry{packet, dst});
  ++queued_;
}

void Crossbar::tick(Cycle now) {
  if (queued_ == 0) return;
  // Each destination grants at most one source per cycle, scanning sources
  // round-robin from its own pointer (iSLIP-style fairness).
  for (unsigned dst = 0; dst < num_dst_; ++dst) {
    if (outputs_[dst].size() >= out_capacity_) continue;  // No credit: stall.
    for (unsigned i = 0; i < num_src_; ++i) {
      const unsigned src = (rr_[dst] + i) % num_src_;
      auto& q = inputs_[src];
      if (q.empty() || q.front().dst != dst) continue;
      outputs_[dst].push_back(InFlight{q.front().packet, now + latency_});
      q.pop_front();
      --queued_;
      rr_[dst] = (src + 1) % num_src_;
      break;
    }
  }
}

std::optional<Packet> Crossbar::pop(unsigned dst, Cycle now) {
  LD_ASSERT(dst < num_dst_);
  auto& q = outputs_[dst];
  if (q.empty() || q.front().ready > now) return std::nullopt;
  Packet p = q.front().packet;
  q.pop_front();
  ++delivered_;
  return p;
}

bool Crossbar::idle() const {
  for (const auto& q : inputs_)
    if (!q.empty()) return false;
  for (const auto& q : outputs_)
    if (!q.empty()) return false;
  return true;
}

}  // namespace lazydram::icnt
