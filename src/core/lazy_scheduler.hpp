// The lazy memory scheduler (Section IV): FR-FCFS extended with the DMS and
// AMS units. With both units disabled it is bit-identical to the baseline
// FR-FCFS policy (verified by tests), so one scheduler class realizes all
// seven schemes of Fig. 12.
//
// Decision order per bank:
//   0. If an AMS row-group drop is draining for this bank, drop the group's
//      next request (one per cycle, bypassing age/coverage: the group was
//      admitted as a whole when its oldest member qualified).
//   1. Row-buffer hit candidates are served immediately — DMS never delays
//      hits ("each request that does not lead to a row hit is delayed").
//   2. Otherwise the bank's oldest request is the candidate; it may proceed
//      only once it has aged >= the DMS delay.
//   3. An aged candidate is offered to the AMS unit; if all drop criteria
//      hold, its whole pending row group starts draining to the VP unit.
//   4. Otherwise it is served (PRE/ACT as needed) per FR-FCFS.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/ams.hpp"
#include "core/dms.hpp"
#include "core/scheme.hpp"
#include "mem/scheduler.hpp"

namespace lazydram::telemetry {
class LifecycleCollector;
}

namespace lazydram::core {

class LazyScheduler : public Scheduler {
 public:
  LazyScheduler(const SchemeParams& params, const SchemeSpec& spec, unsigned num_banks);

  Decision decide(const PendingQueue& queue, const BankView& bank, Cycle now) override;
  void tick(Cycle now, std::uint64_t bus_busy_total) override;
  Cycle next_tick_event(Cycle now) const override;
  void advance_idle(Cycle from, Cycle to) override;
  bool may_drop() const override;
  bool drops_possible() const override { return spec_.ams_enabled; }
  bool bank_draining(BankId bank) const override { return draining_[bank] != kInvalidRow; }
  bool draining() const override { return draining_count_ > 0; }
  void on_enqueue(const MemRequest& req) override;
  void on_serve(const MemRequest& req) override;
  void on_drop(const MemRequest& req) override;

  /// L2 warm-up gate for the AMS unit (set by the owning memory partition).
  void set_ams_ready(bool ready);

  /// Partitions the error-tolerance budgets per tenant: each client's AMS
  /// coverage cap becomes its own budget (forwarded to the AmsUnit) and its
  /// DMS aging delay is clamped to qos[t].dms_delay_cap — a request's
  /// effective delay is min(global delay, its tenant's cap). Caps are static
  /// for a run, so the gated() horizon/memo contract is unchanged: the
  /// effective delay only moves when the global delay moves. An empty vector
  /// (the default) keeps the legacy global budgets bit-identically.
  void set_tenant_qos(const std::vector<TenantQos>& qos);

  /// Routes DMS-stall, delay-change and Th_RBL-change events through
  /// `tracer` (nullable to detach). Tracing never feeds back into
  /// scheduling decisions, so enabling it cannot perturb a run.
  void set_telemetry(telemetry::Tracer* tracer, ChannelId channel);

  /// Reports closed DMS age-gate intervals to the lifecycle collector
  /// (nullable to detach). Observational only, like set_telemetry.
  void set_lifecycle(telemetry::LifecycleCollector* lifecycle) { lifecycle_ = lifecycle; }

  void fill_probe(telemetry::WindowProbe& probe) const override;
  void register_stats(telemetry::TelemetryHub& hub, const std::string& prefix) const override;
  void enable_bank_stall_tracking() override { bank_stats_ = true; }
  void harvest_bank_stalls(Cycle end, std::vector<std::uint64_t>& cum) override;

  const SchemeSpec& spec() const { return spec_; }
  const DmsUnit& dms() const { return dms_; }
  const AmsUnit& ams() const { return ams_; }

  /// Time-weighted average DMS delay over the run (benches report this).
  double average_delay() const {
    return ticks_ == 0 ? 0.0 : delay_sum_ / static_cast<double>(ticks_);
  }
  /// Time-weighted average Th_RBL over the run.
  double average_th_rbl() const {
    return ticks_ == 0 ? 0.0 : th_rbl_sum_ / static_cast<double>(ticks_);
  }

 private:
  void trace_stall_begin(BankId bank, RequestId req, Cycle now, Cycle delay);
  void trace_stall_end(BankId bank, Cycle now);

  /// DMS delay applied to `tenant`'s requests: the global (possibly
  /// dynamic) delay clamped to the tenant's cap when tenancy is configured.
  Cycle effective_delay(TenantId tenant) const {
    const Cycle d = dms_.current_delay();
    if (tenant < delay_caps_.size() && delay_caps_[tenant] < d)
      return delay_caps_[tenant];
    return d;
  }

  /// True when any observability consumer (event tracer, lifecycle
  /// collector, per-bank window stats) wants stall intervals tracked.
  bool observing() const {
    return (tracer_ != nullptr && tracer_->enabled()) || lifecycle_ != nullptr ||
           bank_stats_;
  }

  SchemeSpec spec_;
  DmsUnit dms_;
  AmsUnit ams_;

  /// Per-tenant DMS delay caps (kNeverCycle = uncapped); empty unless
  /// set_tenant_qos configured tenancy.
  std::vector<Cycle> delay_caps_;

  /// Per-bank row currently being drained by an AMS group drop
  /// (kInvalidRow if none). Cleared lazily from decide(), which is
  /// idempotent and thus unobservable across repeated calls.
  mutable std::vector<RowId> draining_;
  mutable unsigned draining_count_ = 0;

  /// Bus cycles one 128B transaction occupies (tBURST); used to credit
  /// dropped requests in the Dyn-DMS BWUTIL comparison.
  static constexpr std::uint64_t kBurstCyclesPerDrop = 4;

  std::uint64_t ticks_ = 0;
  double delay_sum_ = 0.0;
  double th_rbl_sum_ = 0.0;

  telemetry::Tracer* tracer_ = nullptr;
  ChannelId channel_ = 0;
  telemetry::LifecycleCollector* lifecycle_ = nullptr;
  bool bank_stats_ = false;
  /// No-stall sentinel for `stalled_` (same all-ones pattern as the global
  /// invalid-request sentinel).
  static constexpr RequestId kNoStall = kInvalidRequest;
  /// Per-bank id of the currently age-gated request (kNoStall if none), for
  /// stall begin/end events. Tracking the id — not just a flag — lets
  /// on_serve/on_drop close a stall whose request leaves the queue without a
  /// further decide() on its bank. Only touched when observing(); never
  /// consulted for decisions.
  std::vector<RequestId> stalled_;
  /// Cycle the open stall of each bank began (lifecycle gate intervals).
  std::vector<Cycle> stall_begin_;
  /// Start of the open stall's not-yet-accounted tail. Identical to
  /// stall_begin_ except after harvest_bank_stalls() rebases it at a window
  /// boundary, so bank_stall_cycles_ telescopes across windows while the
  /// lifecycle interval keeps its true begin.
  std::vector<Cycle> stall_accounted_;
  /// Cumulative per-bank DMS-stall cycles (the windowed bank probe).
  std::vector<std::uint64_t> bank_stall_cycles_;
  /// Cycle of the most recent tick(); timestamps stall-end events emitted
  /// from on_serve/on_drop, which carry no cycle of their own.
  Cycle trace_now_ = 0;
};

}  // namespace lazydram::core
