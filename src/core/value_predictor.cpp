#include "core/value_predictor.hpp"

#include <cstdlib>

#include "common/assert.hpp"

namespace lazydram::core {

ValuePredictor::ValuePredictor(const cache::Cache& l2, const LineReader& reader,
                               unsigned set_radius, PredictorKind kind)
    : l2_(l2), reader_(reader), set_radius_(set_radius), kind_(kind) {}

ValuePredictor::Prediction ValuePredictor::predict(Addr line_addr) {
  ++predictions_;
  Prediction p;

  if (kind_ == PredictorKind::kZeroFill) {
    ++zero_fills_;
    return p;  // data is zero-initialized.
  }

  const std::uint32_t home = l2_.set_index(line_addr);
  const std::uint32_t sets = l2_.num_sets();

  scratch_.clear();
  for (int d = -static_cast<int>(set_radius_); d <= static_cast<int>(set_radius_); ++d) {
    // Set indices wrap: with power-of-two sets, the neighbouring-set walk is
    // a ring (matches an index decrement/increment in hardware).
    const std::uint32_t set =
        static_cast<std::uint32_t>((static_cast<int>(home) + d + static_cast<int>(sets))) %
        sets;
    l2_.lines_in_set(set, scratch_);
  }

  bool found = false;
  Addr best = 0;
  std::uint64_t best_dist = ~std::uint64_t{0};
  for (const Addr a : scratch_) {
    if (a == line_addr) continue;  // The dropped line itself is not cached.
    const std::uint64_t dist = a > line_addr ? a - line_addr : line_addr - a;
    if (!found || dist < best_dist || (dist == best_dist && a < best)) {
      found = true;
      best = a;
      best_dist = dist;
    }
  }

  if (!found) {
    ++zero_fills_;
    return p;  // Cold nearby sets: zero line.
  }

  p.donor_found = true;
  p.donor_addr = best;
  reader_.read_line(best, p.data.data());
  return p;
}

}  // namespace lazydram::core
