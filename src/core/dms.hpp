// Delayed Memory Scheduling unit (Section IV-B).
//
// Static-DMS holds a fixed delay. Dyn-DMS runs the paper's profiling loop on
// 4096-memory-cycle windows:
//   1. SAMPLING  - one window at delay 0 (AMS halted) to record the baseline
//                  bandwidth utilization (BWUTIL);
//   2. SEARCHING - starting from 128 cycles (or the previously recorded
//                  delay after a restart), step the delay by +/-128 per
//                  window while the window's BWUTIL stays >= 95% of the
//                  sampled baseline; on an upward step that violates the
//                  threshold, fall back to the last passing value;
//   3. HOLDING   - keep the settled delay.
// The whole process restarts every 32 windows to track phase changes,
// seeded with the settled delay.
//
// The paper specifies the upward search; stepping *down* when the seeded
// starting value itself violates the threshold is our completion of the
// spec (required for the mechanism to recover after a phase change).
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"
#include "telemetry/trace.hpp"

namespace lazydram::core {

class DmsUnit {
 public:
  /// `dynamic` selects Dyn-DMS; otherwise the unit holds `static_delay`.
  DmsUnit(const SchemeParams& params, bool dynamic, Cycle static_delay);

  /// Once per memory cycle. `bus_busy_total` is the channel's cumulative
  /// data-bus busy cycles (the BWUTIL numerator); the unit differences it
  /// across window boundaries.
  void tick(Cycle now_mem, std::uint64_t bus_busy_total);

  /// True iff a request enqueued at `enqueue_cycle` has aged enough to be
  /// allowed to open a new row at `now` (row hits are never gated; callers
  /// apply this only to row-miss candidates).
  bool allows(Cycle enqueue_cycle, Cycle now) const {
    return now - enqueue_cycle >= current_delay_;
  }

  Cycle current_delay() const { return current_delay_; }

  /// True while Dyn-DMS samples the baseline BWUTIL; a co-running AMS unit
  /// must halt during this window (Section IV-B).
  bool sampling() const {
    return dynamic_ && (phase_ == Phase::kSampling || phase_ == Phase::kWarmup);
  }

  // Introspection for tests/benches.
  double last_baseline_bwutil() const { return baseline_bwutil_; }
  double last_window_bwutil() const { return last_window_bwutil_; }
  Cycle window_start() const { return window_start_; }

  /// First cycle at which tick() can have an effect: the next profile-window
  /// boundary (grid-aligned), or kNeverCycle for the static unit whose tick
  /// is a no-op. Idle ticks strictly before this are provably no-ops, which
  /// is what lets the event-wheel main loop skip them wholesale.
  Cycle next_boundary() const {
    return dynamic_ ? window_start_ + params_.profile_window : kNeverCycle;
  }

  /// Emits kDmsDelayChange events through `tracer` (nullable to detach).
  void set_telemetry(telemetry::Tracer* tracer, ChannelId channel) {
    tracer_ = tracer;
    channel_ = channel;
  }

 private:
  enum class Phase { kWarmup, kSampling, kSearching, kHolding };
  enum class Direction { kUp, kDown };

  void on_window_end(double window_bwutil);

  SchemeParams params_;
  bool dynamic_;

  Cycle current_delay_ = 0;
  Phase phase_ = Phase::kSampling;
  Direction direction_ = Direction::kUp;

  double baseline_bwutil_ = 0.0;
  double last_window_bwutil_ = 0.0;
  Cycle last_good_delay_ = 0;     ///< Last delay meeting the threshold this search.
  bool saw_good_delay_ = false;
  Cycle recorded_delay_ = 0;      ///< Settled value; seeds the next restart.

  Cycle window_start_ = 0;
  std::uint64_t busy_at_window_start_ = 0;
  unsigned windows_since_restart_ = 0;

  telemetry::Tracer* tracer_ = nullptr;
  ChannelId channel_ = 0;
};

}  // namespace lazydram::core
