// The scheduler-policy registry: the single construction path for every
// Scheduler in the codebase. Policies are registered by name with a factory
// taking a PolicyRequest (full GpuConfig + SchemeSpec + channel); the
// simulator, the diff harness, benches and tests all resolve policies here,
// so a policy configured one way cannot silently be constructed another way
// elsewhere (the bug class behind the old hand-rolled switch statements in
// simulator.cpp / diff.cpp).
//
// Built-in policies (registered on first use):
//   "lazy"     — the paper's DMS/AMS scheduler, configured by the SchemeSpec
//                (the default; covers all seven Fig. 12 schemes)
//   "frfcfs"   — baseline FR-FCFS
//   "fcfs"     — strict arrival order
//   "bliss"    — blacklisting fairness scheduler (PolicyParams::bliss_*)
//   "batch-rr" — batch-capped round-robin (PolicyParams::rr_cap)
//   "autotune" — hill-climbing delay autotuner (PolicyParams::tune_*)
//
// External code may register additional policies with register_policy()
// (see examples/custom_scheduler.cpp); names are unique, registration of a
// duplicate name aborts.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/scheme.hpp"
#include "mem/scheduler.hpp"

namespace lazydram::core {

/// Everything a policy factory may draw on. Copied into the per-run factory
/// closure, so the referenced config cannot dangle.
struct PolicyRequest {
  GpuConfig cfg{};
  SchemeSpec spec{};
  ChannelId channel = 0;
};

class SchedulerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scheduler>(const PolicyRequest&)>;

  /// The process-wide registry, with the built-ins already registered.
  static SchedulerRegistry& instance();

  /// Registers a policy. `name` is the config/env/CLI handle (lowercase,
  /// unique — duplicates abort); `label` is the human-readable run label
  /// reports use; `description` is one line for --list style output.
  void register_policy(std::string name, std::string label, std::string description,
                       Factory factory);

  bool known(const std::string& name) const;
  std::vector<std::string> names() const;
  std::string label(const std::string& name) const;
  std::string description(const std::string& name) const;

  /// Constructs policy `name` for `req`. Aborts on unknown names — callers
  /// gate on known() when the name came from user input.
  std::unique_ptr<Scheduler> make(const std::string& name, const PolicyRequest& req) const;

 private:
  SchedulerRegistry() = default;

  struct Entry {
    std::string label;
    std::string description;
    Factory factory;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Resolves the effective policy name: cfg.policy.name, defaulting to "lazy"
/// when empty.
std::string policy_name(const GpuConfig& cfg);

/// The run label for the configured policy: "lazy" runs are labeled by their
/// scheme (e.g. "Dyn-DMS+Dyn-AMS") so existing reports keep their names;
/// other policies use their registry label.
std::string run_label(const GpuConfig& cfg, const SchemeSpec& spec);

/// Parses a policy spec "name[:key=value,...]" (the $LAZYDRAM_POLICY and
/// bench --policy grammar) into cfg.policy. Keys: bliss → threshold,
/// interval; batch-rr → cap; autotune → min, max, step, window, tol.
/// Returns false (and sets *error, if non-null) on unknown names/keys or
/// unparsable values, leaving cfg untouched.
bool parse_policy_spec(const std::string& text, GpuConfig& cfg, std::string* error = nullptr);

/// Per-channel factory for the policy configured in `cfg` (captures cfg and
/// spec by value). This is the object GpuTop construction takes.
std::function<std::unique_ptr<Scheduler>(ChannelId)> make_scheduler_factory(
    const GpuConfig& cfg, const SchemeSpec& spec);

/// One-off construction (tests, benches driving a single controller).
std::unique_ptr<Scheduler> make_scheduler(const GpuConfig& cfg, const SchemeSpec& spec,
                                          ChannelId channel = 0);

}  // namespace lazydram::core
