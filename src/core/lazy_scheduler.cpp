#include "core/lazy_scheduler.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/lifecycle.hpp"

namespace lazydram::core {

LazyScheduler::LazyScheduler(const SchemeParams& params, const SchemeSpec& spec,
                             unsigned num_banks)
    : spec_(spec),
      dms_(params, spec.dms_dynamic, spec.dms_enabled ? spec.static_delay : 0),
      ams_(params, spec.ams_dynamic, spec.static_th_rbl),
      draining_(num_banks, kInvalidRow),
      stalled_(num_banks, kNoStall),
      stall_begin_(num_banks, 0),
      stall_accounted_(num_banks, 0),
      bank_stall_cycles_(num_banks, 0) {}

Decision LazyScheduler::decide(const PendingQueue& queue, const BankView& bank,
                               Cycle now) {
  // 0. Drain an in-progress AMS row-group drop. A non-approximable request
  //    arriving for the row mid-drain — a write OR a precise read — ends the
  //    drain: the row will be activated for it anyway, so the remaining
  //    reads are served normally. (Requiring only "all reads" here would
  //    hand a precise read a predicted value; the protocol checker flags
  //    that as kDropNotApproximable.)
  if (draining_[bank.bank] != kInvalidRow) {
    const RowId row = draining_[bank.bank];
    const MemRequest* r = queue.oldest_for_row(bank.bank, row);
    if (r != nullptr && queue.row_group_all_approximable(bank.bank, row))
      return Decision::drop(r->id);
    draining_[bank.bank] = kInvalidRow;
    LD_ASSERT(draining_count_ > 0);
    --draining_count_;
  }

  // 1. Row-buffer hits are served immediately (never delayed). The
  //    delay-all ablation gates them like misses, and a gated hit is a DMS
  //    stall like any other — it must show up in the stall trace.
  if (bank.row_open) {
    if (const MemRequest* hit = queue.oldest_for_row(bank.bank, bank.open_row)) {
      const Cycle hit_delay = effective_delay(hit->tenant);
      if (!spec_.dms_delay_row_hits || !spec_.dms_enabled ||
          now - hit->enqueue_cycle >= hit_delay) {
        // Close the stall only if it belongs to this hit: a different
        // stalled request (the bank's gated miss candidate) stays gated
        // while hits stream past it, so its interval must stay open.
        if (stalled_[bank.bank] == hit->id) trace_stall_end(bank.bank, now);
        return Decision::serve(hit->id);
      }
      trace_stall_begin(bank.bank, hit->id, now, hit_delay);
      // The gate flips exactly at enqueue + delay; until then (and absent
      // queue/delay changes) this answer cannot change.
      return Decision::gated(hit->enqueue_cycle + hit_delay);
    }
  }

  // 2. Oldest request for this bank is the row-miss candidate.
  const MemRequest* cand = queue.oldest_for_bank(bank.bank);
  if (cand == nullptr) {
    trace_stall_end(bank.bank, now);
    return Decision::none();
  }

  const Cycle cand_delay = effective_delay(cand->tenant);
  if (spec_.dms_enabled && now - cand->enqueue_cycle < cand_delay) {
    trace_stall_begin(bank.bank, cand->id, now, cand_delay);
    // Age gate: kNone is stable until the candidate reaches enqueue + delay.
    return Decision::gated(cand->enqueue_cycle + cand_delay);
  }
  trace_stall_end(bank.bank, now);

  // 3. AMS drop decision (criteria 1, 3, 4; criterion 2 was the age gate).
  if (spec_.ams_enabled && ams_.should_drop(queue, *cand)) return Decision::drop(cand->id);

  // 4. FR-FCFS service.
  return Decision::serve(cand->id);
}

void LazyScheduler::tick(Cycle now, std::uint64_t bus_busy_total) {
  // Credit AMS-dropped requests with the bus cycles they would have used:
  // otherwise the drop-induced traffic reduction reads as a delay-induced
  // BWUTIL loss and Dyn-DMS (whose baseline is sampled with AMS halted)
  // would collapse the delay to zero whenever both schemes co-run.
  const std::uint64_t adjusted =
      bus_busy_total + ams_.reads_dropped() * kBurstCyclesPerDrop;
  if (spec_.dms_enabled) dms_.tick(now, adjusted);
  if (spec_.ams_enabled) ams_.tick(now, spec_.dms_enabled && dms_.sampling());
  trace_now_ = now;
  ++ticks_;
  delay_sum_ += static_cast<double>(spec_.dms_enabled ? dms_.current_delay() : 0);
  th_rbl_sum_ += static_cast<double>(spec_.ams_enabled ? ams_.th_rbl() : 0);
}

Cycle LazyScheduler::next_tick_event(Cycle now) const {
  // The per-tick accumulators (ticks_, delay_sum_, th_rbl_sum_, trace_now_)
  // are reconstructed exactly by advance_idle, so the only events that force
  // a real tick are the units' adaptation boundaries. The AMS halt latch is
  // safe to skip between boundaries: `halted` is derived from dms_.sampling(),
  // which only changes at a DMS boundary — itself an event returned here.
  Cycle ev = kNeverCycle;
  if (spec_.dms_enabled) ev = std::min(ev, dms_.next_boundary());
  if (spec_.ams_enabled) ev = std::min(ev, ams_.next_boundary());
  return ev > now ? ev : now + 1;
}

void LazyScheduler::advance_idle(Cycle from, Cycle to) {
  // Bit-exact replay of (to - from) idle ticks: the delay and Th_RBL are
  // constant across the span (no unit boundary inside it, by contract), and
  // the sums stay integer-valued doubles, so bulk addition is exact.
  const std::uint64_t n = to - from;
  ticks_ += n;
  delay_sum_ += static_cast<double>(spec_.dms_enabled ? dms_.current_delay() : 0) *
                static_cast<double>(n);
  th_rbl_sum_ += static_cast<double>(spec_.ams_enabled ? ams_.th_rbl() : 0) *
                 static_cast<double>(n);
  trace_now_ = to;
}

bool LazyScheduler::may_drop() const {
  if (!spec_.ams_enabled) return false;
  return draining_count_ > 0 || ams_.may_drop();
}

void LazyScheduler::on_enqueue(const MemRequest& req) {
  if (req.is_read()) ams_.on_read_received(req.tenant);
}

void LazyScheduler::on_serve(const MemRequest& req) {
  // A stalled request can be served without another decide() on its bank
  // (e.g. it becomes a row hit after a drain re-opens its row); close the
  // stall here so the trace never leaks an open interval.
  if (stalled_[req.loc.bank] == req.id) trace_stall_end(req.loc.bank, trace_now_);
}

void LazyScheduler::on_drop(const MemRequest& req) {
  // The drain branch of decide() drops without touching the stall state, so
  // a stalled request swallowed by a row-group drop is closed out here.
  if (stalled_[req.loc.bank] == req.id) trace_stall_end(req.loc.bank, trace_now_);
  ams_.on_drop(req.tenant);
  if (draining_[req.loc.bank] == kInvalidRow) {
    draining_[req.loc.bank] = req.loc.row;
    ++draining_count_;
  }
  LD_ASSERT_MSG(draining_[req.loc.bank] == req.loc.row,
                "a bank can only drain one row group at a time");
}

void LazyScheduler::set_ams_ready(bool ready) { ams_.set_ready(ready); }

void LazyScheduler::set_tenant_qos(const std::vector<TenantQos>& qos) {
  ams_.set_tenant_qos(qos);
  delay_caps_.clear();
  for (const TenantQos& q : qos) delay_caps_.push_back(q.dms_delay_cap);
}

void LazyScheduler::set_telemetry(telemetry::Tracer* tracer, ChannelId channel) {
  tracer_ = tracer;
  channel_ = channel;
  dms_.set_telemetry(tracer, channel);
  ams_.set_telemetry(tracer, channel);
}

void LazyScheduler::trace_stall_begin(BankId bank, RequestId req, Cycle now, Cycle delay) {
  if (!observing() || stalled_[bank] == req) return;
  // The bank's gated candidate can switch identity while the old one is
  // still queued (a gated row hit overtakes a gated miss candidate, or —
  // with per-tenant delay caps — tenants with different effective delays
  // alternate). Close the previous request's interval at `now` before
  // opening the new one, so stall_begin_/stall_accounted_ always describe
  // the request in stalled_; silently keeping the old interval open would
  // attribute the new request's gated cycles to the old id.
  if (stalled_[bank] != kNoStall) trace_stall_end(bank, now);
  stalled_[bank] = req;
  stall_begin_[bank] = now;
  stall_accounted_[bank] = now;
  if (tracer_ != nullptr && tracer_->enabled())
    tracer_->dms_stall_begin(now, channel_, bank, req, delay);
}

void LazyScheduler::trace_stall_end(BankId bank, Cycle now) {
  if (stalled_[bank] == kNoStall) return;
  const RequestId req = stalled_[bank];
  stalled_[bank] = kNoStall;
  bank_stall_cycles_[bank] += now - stall_accounted_[bank];
  if (tracer_ != nullptr && tracer_->enabled()) tracer_->dms_stall_end(now, channel_, bank);
  if (lifecycle_ != nullptr && now > stall_begin_[bank])
    lifecycle_->on_gate_end(req, stall_begin_[bank], now);
}

void LazyScheduler::harvest_bank_stalls(Cycle end, std::vector<std::uint64_t>& cum) {
  // Rebase open stalls so the per-window deltas telescope: the accounted
  // tail moves to `end` here, while stall_begin_ (the lifecycle interval's
  // true start) is untouched. Observational bookkeeping only.
  for (BankId b = 0; b < stalled_.size(); ++b) {
    if (stalled_[b] != kNoStall && end > stall_accounted_[b]) {
      bank_stall_cycles_[b] += end - stall_accounted_[b];
      stall_accounted_[b] = end;
    }
    cum[b] += bank_stall_cycles_[b];
  }
}

void LazyScheduler::fill_probe(telemetry::WindowProbe& probe) const {
  probe.dms_delay = spec_.dms_enabled ? dms_.current_delay() : 0;
  probe.th_rbl = spec_.ams_enabled ? ams_.th_rbl() : 0;
}

void LazyScheduler::register_stats(telemetry::TelemetryHub& hub,
                                   const std::string& prefix) const {
  hub.add_gauge(prefix + "dms.delay",
                [this] { return static_cast<double>(dms_.current_delay()); });
  hub.add_gauge(prefix + "dms.avg_delay", [this] { return average_delay(); });
  hub.add_gauge(prefix + "ams.th_rbl",
                [this] { return static_cast<double>(ams_.th_rbl()); });
  hub.add_gauge(prefix + "ams.avg_th_rbl", [this] { return average_th_rbl(); });
  hub.add_gauge(prefix + "ams.coverage", [this] { return ams_.coverage(); });
  hub.add_counter(prefix + "ams.reads_dropped", [this] { return ams_.reads_dropped(); });
}

}  // namespace lazydram::core
