#include "core/dms.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace lazydram::core {

DmsUnit::DmsUnit(const SchemeParams& params, bool dynamic, Cycle static_delay)
    : params_(params), dynamic_(dynamic) {
  if (dynamic_) {
    current_delay_ = 0;
    // One warm-up window first: the application's cold-start burst (L2
    // warm-up, pipeline fill) is not representative of steady-state BWUTIL
    // and must not become the baseline sample.
    phase_ = Phase::kWarmup;
    recorded_delay_ = params_.static_delay;  // First search starts at 128.
  } else {
    current_delay_ = static_delay;
    phase_ = Phase::kHolding;
  }
}

void DmsUnit::tick(Cycle now_mem, std::uint64_t bus_busy_total) {
  if (!dynamic_) return;

  if (now_mem - window_start_ < params_.profile_window) return;

  // Window boundary: evaluate BWUTIL of the elapsed window. Advance the
  // window start by whole profile_window multiples — not to now_mem — so a
  // boundary observed late (the unit not being ticked on the exact cycle)
  // cannot drift the schedule off the profile-window grid that
  // telemetry::WindowSampler and Dyn-AMS share.
  const std::uint64_t busy = bus_busy_total - busy_at_window_start_;
  const double bwutil =
      static_cast<double>(busy) / static_cast<double>(params_.profile_window);
  window_start_ +=
      params_.profile_window * ((now_mem - window_start_) / params_.profile_window);
  busy_at_window_start_ = bus_busy_total;
  last_window_bwutil_ = bwutil;
  const Cycle delay_before = current_delay_;
  on_window_end(bwutil);
  if (tracer_ != nullptr && current_delay_ != delay_before)
    tracer_->dms_delay_change(now_mem, channel_, delay_before, current_delay_, bwutil);
}

void DmsUnit::on_window_end(double window_bwutil) {
  ++windows_since_restart_;
  log_debug("dms window=%u phase=%d delay=%llu bwutil=%.3f baseline=%.3f",
            windows_since_restart_, static_cast<int>(phase_),
            static_cast<unsigned long long>(current_delay_), window_bwutil,
            baseline_bwutil_);

  // Restart every N windows to track application phase changes, seeding the
  // search with the settled delay (Section IV-B). A restart can land in the
  // middle of kSearching, before the search committed its result; the best
  // delay seen so far is still the freshest settled value, so record it —
  // otherwise the next search would reseed from the stale pre-search
  // recorded_delay_.
  if (windows_since_restart_ >= params_.windows_per_restart) {
    if (phase_ == Phase::kSearching && saw_good_delay_)
      recorded_delay_ = last_good_delay_;
    windows_since_restart_ = 0;
    phase_ = Phase::kSampling;
    current_delay_ = 0;
    saw_good_delay_ = false;
    return;
  }

  switch (phase_) {
    case Phase::kWarmup:
      phase_ = Phase::kSampling;
      break;

    case Phase::kSampling: {
      baseline_bwutil_ = window_bwutil;
      phase_ = Phase::kSearching;
      direction_ = Direction::kUp;
      saw_good_delay_ = false;
      current_delay_ = std::clamp(recorded_delay_, params_.min_delay, params_.max_delay);
      if (current_delay_ == 0) current_delay_ = params_.delay_step;
      break;
    }

    case Phase::kSearching: {
      const bool ok = window_bwutil >= params_.bwutil_threshold * baseline_bwutil_;
      if (direction_ == Direction::kUp) {
        if (ok) {
          last_good_delay_ = current_delay_;
          saw_good_delay_ = true;
          if (current_delay_ >= params_.max_delay) {
            recorded_delay_ = current_delay_;
            phase_ = Phase::kHolding;
          } else {
            current_delay_ = std::min<Cycle>(current_delay_ + params_.delay_step,
                                             params_.max_delay);
          }
        } else if (saw_good_delay_) {
          // "Set the delay to be the last value that leads to a BWUTIL more
          // than 95% of the baseline."
          current_delay_ = last_good_delay_;
          recorded_delay_ = current_delay_;
          phase_ = Phase::kHolding;
        } else {
          // Seeded starting value already violates: search downward.
          direction_ = Direction::kDown;
          if (current_delay_ <= params_.delay_step) {
            current_delay_ = params_.min_delay;
            recorded_delay_ = current_delay_;
            phase_ = Phase::kHolding;
          } else {
            current_delay_ -= params_.delay_step;
          }
        }
      } else {  // Direction::kDown
        if (ok || current_delay_ == params_.min_delay) {
          recorded_delay_ = current_delay_;
          phase_ = Phase::kHolding;
        } else if (current_delay_ <= params_.delay_step) {
          current_delay_ = params_.min_delay;
        } else {
          current_delay_ -= params_.delay_step;
        }
      }
      break;
    }

    case Phase::kHolding:
      break;
  }
}

}  // namespace lazydram::core
