// The seven scheduling schemes evaluated in the paper (Section V, Fig. 12):
// Baseline FR-FCFS, Static/Dyn DMS, Static/Dyn AMS, and the static and
// dynamic combinations.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace lazydram::core {

enum class SchemeKind {
  kBaseline,
  kStaticDms,
  kDynDms,
  kStaticAms,
  kDynAms,
  kStaticCombo,  ///< Static-DMS + Static-AMS.
  kDynCombo,     ///< Dyn-DMS + Dyn-AMS.
};

/// Resolved knobs for one scheme instance.
struct SchemeSpec {
  SchemeKind kind = SchemeKind::kBaseline;
  bool dms_enabled = false;
  bool dms_dynamic = false;
  Cycle static_delay = 0;  ///< Used when dms_enabled && !dms_dynamic.
  bool ams_enabled = false;
  bool ams_dynamic = false;
  unsigned static_th_rbl = 8;  ///< Used when ams_enabled && !ams_dynamic.

  /// Ablation only: age-gate row-buffer *hits* too (the paper's DMS never
  /// delays hits; this knob quantifies why that design choice matters).
  bool dms_delay_row_hits = false;
};

const char* scheme_name(SchemeKind kind);

/// Builds the spec for `kind` from the configured scheme parameters.
SchemeSpec make_scheme_spec(SchemeKind kind, const SchemeParams& params);

/// Convenience: custom DMS(X) spec (used by the delay-sweep benches).
SchemeSpec make_static_dms_spec(Cycle delay, const SchemeParams& params);

/// Convenience: custom AMS(Th_RBL) spec (used by the Th_RBL sweep benches).
SchemeSpec make_static_ams_spec(unsigned th_rbl, const SchemeParams& params);

/// Convenience: custom DMS(X)+AMS(Th) combination.
SchemeSpec make_combo_spec(Cycle delay, unsigned th_rbl, const SchemeParams& params);

/// All seven paper schemes in Fig. 12 presentation order.
std::vector<SchemeKind> all_schemes();

}  // namespace lazydram::core
