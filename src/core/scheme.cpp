#include "core/scheme.hpp"

#include "common/assert.hpp"

namespace lazydram::core {

const char* scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kBaseline: return "Baseline";
    case SchemeKind::kStaticDms: return "Static-DMS";
    case SchemeKind::kDynDms: return "Dyn-DMS";
    case SchemeKind::kStaticAms: return "Static-AMS";
    case SchemeKind::kDynAms: return "Dyn-AMS";
    case SchemeKind::kStaticCombo: return "Static-DMS+AMS";
    case SchemeKind::kDynCombo: return "Dyn-DMS+AMS";
  }
  LD_ASSERT_MSG(false, "unknown scheme");
  return "?";
}

SchemeSpec make_scheme_spec(SchemeKind kind, const SchemeParams& params) {
  SchemeSpec spec;
  spec.kind = kind;
  spec.static_delay = params.static_delay;
  spec.static_th_rbl = params.static_th_rbl;
  switch (kind) {
    case SchemeKind::kBaseline:
      break;
    case SchemeKind::kStaticDms:
      spec.dms_enabled = true;
      break;
    case SchemeKind::kDynDms:
      spec.dms_enabled = true;
      spec.dms_dynamic = true;
      break;
    case SchemeKind::kStaticAms:
      spec.ams_enabled = true;
      break;
    case SchemeKind::kDynAms:
      spec.ams_enabled = true;
      spec.ams_dynamic = true;
      break;
    case SchemeKind::kStaticCombo:
      spec.dms_enabled = true;
      spec.ams_enabled = true;
      break;
    case SchemeKind::kDynCombo:
      spec.dms_enabled = true;
      spec.dms_dynamic = true;
      spec.ams_enabled = true;
      spec.ams_dynamic = true;
      break;
  }
  return spec;
}

SchemeSpec make_static_dms_spec(Cycle delay, const SchemeParams& params) {
  SchemeSpec spec = make_scheme_spec(SchemeKind::kStaticDms, params);
  spec.static_delay = delay;
  return spec;
}

SchemeSpec make_static_ams_spec(unsigned th_rbl, const SchemeParams& params) {
  SchemeSpec spec = make_scheme_spec(SchemeKind::kStaticAms, params);
  spec.static_th_rbl = th_rbl;
  return spec;
}

SchemeSpec make_combo_spec(Cycle delay, unsigned th_rbl, const SchemeParams& params) {
  SchemeSpec spec = make_scheme_spec(SchemeKind::kStaticCombo, params);
  spec.static_delay = delay;
  spec.static_th_rbl = th_rbl;
  return spec;
}

std::vector<SchemeKind> all_schemes() {
  return {SchemeKind::kBaseline,  SchemeKind::kStaticDms,   SchemeKind::kDynDms,
          SchemeKind::kStaticAms, SchemeKind::kDynAms,      SchemeKind::kStaticCombo,
          SchemeKind::kDynCombo};
}

}  // namespace lazydram::core
