// Approximate Memory Scheduling unit (Section IV-C).
//
// Decides whether the current row-miss candidate should be *dropped* (served
// by the value predictor) instead of opening its DRAM row. All four paper
// criteria are checked, in order:
//   1. the candidate is an annotated-approximable global read,
//   2. the DMS delay criterion is satisfied (checked by the LazyScheduler
//      before consulting this unit),
//   3. cumulative prediction coverage (drops / global reads received) is
//      below the user-defined cap (10%),
//   4. the candidate's pending row group is entirely approximable global
//      reads and its size (the RBL its activation would achieve) is <=
//      Th_RBL.
//
// Dyn-AMS modulates Th_RBL per 4096-cycle window: if the window's measured
// coverage reaches the target it lowers Th_RBL by 1 (more selective, down to
// 1); otherwise it raises it by 1 (more permissive, up to 8).
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/pending_queue.hpp"
#include "telemetry/trace.hpp"

namespace lazydram::core {

class AmsUnit {
 public:
  AmsUnit(const SchemeParams& params, bool dynamic, unsigned static_th_rbl);

  /// Once per memory cycle. `halted` is true while a co-running Dyn-DMS
  /// samples its baseline (AMS is temporarily suspended, Section IV-B).
  void tick(Cycle now_mem, bool halted);

  /// External readiness gate: the L2 slice must be warmed up before the VP
  /// unit can predict ("AMS is initially disabled until the cache is ready",
  /// Section IV-D).
  void set_ready(bool ready) { ready_ = ready; }
  bool ready() const { return ready_; }

  /// Partitions the coverage cap per client: tenant t's approximable reads
  /// may only be dropped while t's own coverage (t's drops / t's global
  /// reads) stays below t's cap. Entries with a negative cap inherit the
  /// global SchemeParams::coverage_cap. An empty vector (the default)
  /// restores the legacy single global budget, arithmetically bit-identical
  /// to pre-tenancy behavior.
  void set_tenant_qos(const std::vector<TenantQos>& qos);

  /// Criteria 1, 3, 4 on the candidate (criterion 2, DMS delay, is the
  /// caller's responsibility). Side-effect free.
  bool should_drop(const PendingQueue& queue, const MemRequest& candidate) const;

  /// True iff a drop answer is possible at all right now (fast pre-check).
  /// The global cap remains necessary for every drop even with per-tenant
  /// budgets, so this stays a sound over-approximation under tenancy.
  bool may_drop() const { return ready_ && !halted_ && coverage() < params_.coverage_cap; }

  // --- Accounting hooks (called by the LazyScheduler notifications) ---
  void on_read_received(TenantId tenant = 0);
  void on_drop(TenantId tenant = 0);

  /// Cumulative coverage: dropped reads / global reads received.
  double coverage() const {
    return reads_received_ == 0
               ? 0.0
               : static_cast<double>(reads_dropped_) / static_cast<double>(reads_received_);
  }

  /// Tenant t's own cumulative coverage (0 when per-tenant budgets are off).
  double tenant_coverage(TenantId tenant) const {
    if (tenant >= tenant_reads_.size() || tenant_reads_[tenant] == 0) return 0.0;
    return static_cast<double>(tenant_drops_[tenant]) /
           static_cast<double>(tenant_reads_[tenant]);
  }
  /// Tenant t's resolved coverage cap (the global cap when budgets are off
  /// or the entry inherits).
  double tenant_cap(TenantId tenant) const {
    return tenant < tenant_caps_.size() ? tenant_caps_[tenant] : params_.coverage_cap;
  }
  std::uint64_t tenant_reads_received(TenantId tenant) const {
    return tenant < tenant_reads_.size() ? tenant_reads_[tenant] : 0;
  }
  std::uint64_t tenant_reads_dropped(TenantId tenant) const {
    return tenant < tenant_drops_.size() ? tenant_drops_[tenant] : 0;
  }

  unsigned th_rbl() const { return th_rbl_; }
  bool halted() const { return halted_; }

  /// First cycle at which tick() can have an effect beyond latching `halted`
  /// (which callers skipping ticks must prove constant): the next adaptation
  /// boundary, or kNeverCycle for the static unit. Unlike the DMS grid, a
  /// Dyn-AMS boundary always mutates state (window_start_ resets to the
  /// observation cycle even for an empty window), so it must be a real tick.
  Cycle next_boundary() const {
    return dynamic_ ? window_start_ + params_.profile_window : kNeverCycle;
  }
  std::uint64_t reads_received() const { return reads_received_; }
  std::uint64_t reads_dropped() const { return reads_dropped_; }

  /// Emits kAmsThresholdChange events through `tracer` (nullable to detach).
  void set_telemetry(telemetry::Tracer* tracer, ChannelId channel) {
    tracer_ = tracer;
    channel_ = channel;
  }

 private:
  SchemeParams params_;
  bool dynamic_;
  unsigned th_rbl_;
  bool ready_ = false;
  bool halted_ = false;

  std::uint64_t reads_received_ = 0;
  std::uint64_t reads_dropped_ = 0;

  // Per-tenant budgets; all empty unless set_tenant_qos configured them.
  std::vector<double> tenant_caps_;         ///< Resolved caps (inherit applied).
  std::vector<std::uint64_t> tenant_reads_;
  std::vector<std::uint64_t> tenant_drops_;

  // Dyn-AMS per-window sampling.
  Cycle window_start_ = 0;
  std::uint64_t window_reads_ = 0;
  std::uint64_t window_drops_ = 0;

  telemetry::Tracer* tracer_ = nullptr;
  ChannelId channel_ = 0;
};

}  // namespace lazydram::core
