// Value Prediction unit (Section IV-D).
//
// Approximates the value of a dropped 128B read using the intuition that
// nearby addresses store similar values: search the L2 slice's sets within
// +/- `set_radius` of the dropped line's home set and copy the valid line
// whose base address is numerically nearest. Before the L2 is warm (or if
// the nearby sets are empty) the prediction falls back to a zero line.
//
// The unit only consults the L2 *tag* arrays to choose a donor address; the
// donor's bytes are then read through a LineReader (the functional memory
// image), which is exactly the data the cache would hold.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "common/types.hpp"

namespace lazydram::core {

/// Read access to the simulated data image (implemented by
/// gpu::FunctionalMemory; kept abstract so core/ does not depend on gpu/).
class LineReader {
 public:
  virtual ~LineReader() = default;
  virtual void read_line(Addr line_addr, std::uint8_t out[kLineBytes]) const = 0;
};

enum class PredictorKind {
  kNearestLine,  ///< The paper's VP design.
  kZeroFill,     ///< Ablation: always predict a zero line.
};

class ValuePredictor {
 public:
  ValuePredictor(const cache::Cache& l2, const LineReader& reader, unsigned set_radius,
                 PredictorKind kind = PredictorKind::kNearestLine);

  struct Prediction {
    std::array<std::uint8_t, kLineBytes> data{};
    bool donor_found = false;
    Addr donor_addr = 0;
  };

  /// Synthesizes a value for the dropped line at `line_addr`.
  Prediction predict(Addr line_addr);

  std::uint64_t predictions() const { return predictions_; }
  std::uint64_t zero_fills() const { return zero_fills_; }

 private:
  const cache::Cache& l2_;
  const LineReader& reader_;
  unsigned set_radius_;
  PredictorKind kind_;

  std::vector<Addr> scratch_;
  std::uint64_t predictions_ = 0;
  std::uint64_t zero_fills_ = 0;
};

}  // namespace lazydram::core
