#include "core/scheduler_registry.hpp"

#include <cstdlib>

#include "common/assert.hpp"
#include "core/lazy_scheduler.hpp"
#include "mem/autotune.hpp"
#include "mem/batch_rr.hpp"
#include "mem/bliss.hpp"
#include "mem/fcfs.hpp"
#include "mem/frfcfs.hpp"

namespace lazydram::core {

namespace {

/// Explicit registration instead of static-initializer tricks: the library
/// is linked statically, where unreferenced translation units (and their
/// registrar objects) are silently dropped.
void register_builtins(SchedulerRegistry& r) {
  r.register_policy("lazy", "lazy", "DMS/AMS lazy scheduler (paper, Section IV); scheme via SchemeSpec",
                    [](const PolicyRequest& req) -> std::unique_ptr<Scheduler> {
                      return std::make_unique<LazyScheduler>(req.cfg.scheme, req.spec,
                                                             req.cfg.banks_per_channel);
                    });
  r.register_policy("frfcfs", "FR-FCFS", "baseline first-ready FCFS (Rixner)",
                    [](const PolicyRequest&) -> std::unique_ptr<Scheduler> {
                      return std::make_unique<FrFcfsScheduler>();
                    });
  r.register_policy("fcfs", "FCFS", "strict arrival order, no row-hit priority",
                    [](const PolicyRequest&) -> std::unique_ptr<Scheduler> {
                      return std::make_unique<FcfsScheduler>();
                    });
  r.register_policy("bliss", "BLISS",
                    "blacklisting fairness scheduler (keys: threshold, interval)",
                    [](const PolicyRequest& req) -> std::unique_ptr<Scheduler> {
                      return std::make_unique<BlissScheduler>(req.cfg.policy,
                                                              req.cfg.num_sms);
                    });
  r.register_policy("batch-rr", "Batch-RR",
                    "batch-capped round-robin (key: cap)",
                    [](const PolicyRequest& req) -> std::unique_ptr<Scheduler> {
                      return std::make_unique<BatchRrScheduler>(req.cfg.policy,
                                                                req.cfg.banks_per_channel);
                    });
  r.register_policy("autotune", "Autotune-DMS",
                    "hill-climbing delay autotuner (keys: min, max, step, window, tol)",
                    [](const PolicyRequest& req) -> std::unique_ptr<Scheduler> {
                      return std::make_unique<AutotuneScheduler>(req.cfg.policy);
                    });
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry* reg = [] {
    auto* r = new SchedulerRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

void SchedulerRegistry::register_policy(std::string name, std::string label,
                                        std::string description, Factory factory) {
  LD_ASSERT_MSG(!name.empty() && factory != nullptr, "bad policy registration");
  std::lock_guard<std::mutex> lock(mu_);
  const bool inserted =
      entries_
          .emplace(std::move(name), Entry{std::move(label), std::move(description),
                                          std::move(factory)})
          .second;
  LD_ASSERT_MSG(inserted, "duplicate scheduler policy name");
}

bool SchedulerRegistry::known(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) != 0;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::string SchedulerRegistry::label(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  LD_ASSERT_MSG(it != entries_.end(), "unknown scheduler policy");
  return it->second.label;
}

std::string SchedulerRegistry::description(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  LD_ASSERT_MSG(it != entries_.end(), "unknown scheduler policy");
  return it->second.description;
}

std::unique_ptr<Scheduler> SchedulerRegistry::make(const std::string& name,
                                                   const PolicyRequest& req) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    LD_ASSERT_MSG(it != entries_.end(), "unknown scheduler policy");
    factory = it->second.factory;
  }
  std::unique_ptr<Scheduler> sched = factory(req);
  LD_ASSERT_MSG(sched != nullptr, "scheduler policy factory returned null");
  return sched;
}

std::string policy_name(const GpuConfig& cfg) {
  return cfg.policy.name.empty() ? "lazy" : cfg.policy.name;
}

std::string run_label(const GpuConfig& cfg, const SchemeSpec& spec) {
  const std::string name = policy_name(cfg);
  if (name == "lazy") return scheme_name(spec.kind);
  return SchedulerRegistry::instance().label(name);
}

namespace {

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

bool parse_policy_spec(const std::string& text, GpuConfig& cfg, std::string* error) {
  const std::size_t colon = text.find(':');
  const std::string name = text.substr(0, colon);
  if (name.empty()) return fail(error, "empty policy name");
  if (!SchedulerRegistry::instance().known(name))
    return fail(error, "unknown policy '" + name + "'");

  PolicyParams p = cfg.policy;
  p.name = name;
  std::string rest = colon == std::string::npos ? "" : text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string kv = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0)
      return fail(error, "expected key=value, got '" + kv + "'");
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    std::uint64_t u = 0;
    double d = 0.0;

    if (name == "bliss" && key == "threshold" && parse_u64(val, u) && u > 0)
      p.bliss_threshold = static_cast<unsigned>(u);
    else if (name == "bliss" && key == "interval" && parse_u64(val, u) && u > 0)
      p.bliss_clear_interval = u;
    else if (name == "batch-rr" && key == "cap" && parse_u64(val, u) && u > 0)
      p.rr_cap = static_cast<unsigned>(u);
    else if (name == "autotune" && key == "min" && parse_u64(val, u))
      p.tune_min_delay = u;
    else if (name == "autotune" && key == "max" && parse_u64(val, u))
      p.tune_max_delay = u;
    else if (name == "autotune" && key == "step" && parse_u64(val, u) && u > 0)
      p.tune_step = u;
    else if (name == "autotune" && key == "window" && parse_u64(val, u) && u > 0)
      p.tune_window = u;
    else if (name == "autotune" && key == "tol" && parse_double(val, d) && d > 0.0 &&
             d <= 1.0)
      p.tune_tolerance = d;
    else
      return fail(error, "bad key/value '" + kv + "' for policy '" + name + "'");
  }
  if (p.tune_min_delay > p.tune_max_delay)
    return fail(error, "autotune min exceeds max");

  cfg.policy = p;
  return true;
}

std::function<std::unique_ptr<Scheduler>(ChannelId)> make_scheduler_factory(
    const GpuConfig& cfg, const SchemeSpec& spec) {
  const std::string name = policy_name(cfg);
  LD_ASSERT_MSG(SchedulerRegistry::instance().known(name),
                "unknown scheduler policy in GpuConfig");
  PolicyRequest req{cfg, spec, 0};
  return [req, name](ChannelId channel) mutable -> std::unique_ptr<Scheduler> {
    req.channel = channel;
    return SchedulerRegistry::instance().make(name, req);
  };
}

std::unique_ptr<Scheduler> make_scheduler(const GpuConfig& cfg, const SchemeSpec& spec,
                                          ChannelId channel) {
  return make_scheduler_factory(cfg, spec)(channel);
}

}  // namespace lazydram::core
