#include "core/ams.hpp"

#include "common/assert.hpp"

namespace lazydram::core {

AmsUnit::AmsUnit(const SchemeParams& params, bool dynamic, unsigned static_th_rbl)
    : params_(params), dynamic_(dynamic), th_rbl_(static_th_rbl) {
  LD_ASSERT(th_rbl_ >= params_.min_th_rbl && th_rbl_ <= params_.max_th_rbl);
  if (dynamic_) th_rbl_ = params_.max_th_rbl;  // Dyn-AMS starts at 8.
}

void AmsUnit::tick(Cycle now_mem, bool halted) {
  halted_ = halted;
  if (!dynamic_) return;
  if (now_mem - window_start_ < params_.profile_window) return;

  // Window boundary: adapt Th_RBL from the window's measured coverage.
  if (window_reads_ > 0) {
    const double window_coverage =
        static_cast<double>(window_drops_) / static_cast<double>(window_reads_);
    const unsigned th_before = th_rbl_;
    // The cumulative cap gates drops at exactly the target, so a window that
    // "achieves the user-defined coverage" sits marginally below it; the 5%
    // slack keeps the comparison from sticking at that boundary.
    if (window_coverage >= 0.95 * params_.coverage_cap) {
      if (th_rbl_ > params_.min_th_rbl) --th_rbl_;
    } else {
      if (th_rbl_ < params_.max_th_rbl) ++th_rbl_;
    }
    if (tracer_ != nullptr && th_rbl_ != th_before)
      tracer_->ams_threshold_change(now_mem, channel_, th_before, th_rbl_, window_coverage);
  }
  window_start_ = now_mem;
  window_reads_ = 0;
  window_drops_ = 0;
}

void AmsUnit::set_tenant_qos(const std::vector<TenantQos>& qos) {
  tenant_caps_.clear();
  tenant_reads_.assign(qos.size(), 0);
  tenant_drops_.assign(qos.size(), 0);
  for (const TenantQos& q : qos)
    tenant_caps_.push_back(q.coverage_cap < 0.0 ? params_.coverage_cap : q.coverage_cap);
}

bool AmsUnit::should_drop(const PendingQueue& queue, const MemRequest& candidate) const {
  if (!ready_ || halted_) return false;

  // Criterion 1: annotated-approximable global read.
  if (!candidate.is_read() || !candidate.approximable) return false;

  // Criterion 3: cumulative coverage below the user cap — the global cap
  // first, then the owning tenant's own budget when tenancy is configured.
  if (coverage() >= params_.coverage_cap) return false;
  if (!tenant_caps_.empty() && candidate.tenant < tenant_caps_.size() &&
      tenant_coverage(candidate.tenant) >= tenant_caps_[candidate.tenant])
    return false;

  // Criterion 4: the whole pending row group must be approximable reads
  // (never drop a row that pending writes will touch) and its observed RBL
  // must not exceed Th_RBL.
  const BankId bank = candidate.loc.bank;
  const RowId row = candidate.loc.row;
  if (!queue.row_group_all_approximable(bank, row)) return false;
  // Boundary audited: the paper drops when the observed RBL is <= Th_RBL
  // ("rows with a low access count"), so exact equality DOES drop — the
  // refusal is strictly `>`. Pinned by AmsUnit.DropsAtExactThRblBoundary.
  if (queue.row_group_size(bank, row) > th_rbl_) return false;

  return true;
}

void AmsUnit::on_read_received(TenantId tenant) {
  ++reads_received_;
  ++window_reads_;
  if (tenant < tenant_reads_.size()) ++tenant_reads_[tenant];
}

void AmsUnit::on_drop(TenantId tenant) {
  ++reads_dropped_;
  ++window_drops_;
  if (tenant < tenant_drops_.size()) ++tenant_drops_[tenant];
}

}  // namespace lazydram::core
