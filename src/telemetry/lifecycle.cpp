#include "telemetry/lifecycle.hpp"

#include <utility>

#include "common/assert.hpp"

namespace lazydram::telemetry {

const char* req_phase_name(ReqPhase phase) {
  switch (phase) {
    case ReqPhase::kIcntRequest: return "icnt_request";
    case ReqPhase::kPartitionWait: return "partition_wait";
    case ReqPhase::kQueueWait: return "queue_wait";
    case ReqPhase::kDmsGated: return "dms_gated";
    case ReqPhase::kService: return "service";
    case ReqPhase::kReplyReturn: return "reply_return";
    case ReqPhase::kDropWait: return "drop_wait";
    case ReqPhase::kDropGated: return "drop_gated";
    case ReqPhase::kVpServe: return "vp_serve";
  }
  LD_ASSERT_MSG(false, "unreachable");
  return "?";
}

LifecycleCollector::LifecycleCollector(Tracer* tracer, std::uint64_t sample_every)
    : tracer_(tracer), sample_every_(sample_every == 0 ? 1 : sample_every) {}

void LifecycleCollector::on_request_created(RequestId id, Addr line, Cycle inject_core,
                                            Cycle eject_core, Cycle now_core) {
  if (seq_++ % sample_every_ != 0) return;
  RequestLifecycle rec;
  rec.id = id;
  rec.line_addr = line;
  rec.inject_core = inject_core;
  rec.eject_core = eject_core;
  rec.enqueue_core = now_core;
  live_.emplace(id, std::move(rec));
  by_line_[line] = id;
}

void LifecycleCollector::on_mshr_merge(Addr line) {
  const auto it = by_line_.find(line);
  if (it == by_line_.end()) return;
  const auto rec = live_.find(it->second);
  if (rec != live_.end()) ++rec->second.mshr_merges;
}

void LifecycleCollector::on_reply_pop(RequestId id, Cycle now_core) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  it->second.reply_core = now_core;
  by_line_.erase(it->second.line_addr);
}

void LifecycleCollector::on_warp_wakeup(RequestId id, Cycle now_core) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  RequestLifecycle& rec = it->second;
  if (rec.wakeup_core != 0) return;  // Only the first reply packet wakes the warp.
  rec.wakeup_core = now_core;
  if (external_) {
    finalize(rec);
    live_.erase(it);
  }
}

void LifecycleCollector::on_enqueue(const MemRequest& req, ChannelId channel, Cycle now_mem) {
  if (!req.is_read()) return;
  if (external_) {
    const auto it = live_.find(req.id);
    if (it == live_.end()) return;
    it->second.channel = channel;
    it->second.bank = static_cast<std::int32_t>(req.loc.bank);
    it->second.tenant = req.tenant;
    it->second.enqueue_mem = now_mem;
    return;
  }
  if (seq_++ % sample_every_ != 0) return;
  RequestLifecycle rec;
  rec.id = req.id;
  rec.line_addr = req.line_addr;
  rec.channel = channel;
  rec.bank = static_cast<std::int32_t>(req.loc.bank);
  rec.tenant = req.tenant;
  rec.enqueue_mem = now_mem;
  live_.emplace(req.id, std::move(rec));
}

void LifecycleCollector::on_gate_end(RequestId id, Cycle begin_mem, Cycle end_mem) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  it->second.gates.push_back({begin_mem, end_mem});
  it->second.gated_cycles += end_mem - begin_mem;
}

void LifecycleCollector::on_cas(RequestId id, Cycle now_mem) {
  const auto it = live_.find(id);
  if (it != live_.end()) it->second.cas_mem = now_mem;
}

void LifecycleCollector::on_data_return(RequestId id, Cycle done_mem) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  RequestLifecycle& rec = it->second;
  rec.done_mem = done_mem;
  if (!external_) {
    finalize(rec);
    live_.erase(it);
  }
}

void LifecycleCollector::on_drop(RequestId id, Cycle now_mem) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  RequestLifecycle& rec = it->second;
  rec.dropped = true;
  rec.drop_mem = now_mem;
  if (!external_) {
    finalize(rec);
    live_.erase(it);
  }
}

void LifecycleCollector::finalize(RequestLifecycle& rec) {
  const auto hist = [this](ReqPhase p) -> Histogram& {
    return phase_hist_[static_cast<unsigned>(p)];
  };
  // Core-domain phases exist only when every bounding stamp was recorded
  // (standalone controller runs leave them zero).
  if (rec.inject_core != 0 && rec.eject_core != 0)
    hist(ReqPhase::kIcntRequest).add(rec.eject_core - rec.inject_core);
  if (rec.eject_core != 0 && rec.enqueue_core != 0)
    hist(ReqPhase::kPartitionWait).add(rec.enqueue_core - rec.eject_core);
  if (rec.reply_core != 0 && rec.wakeup_core != 0)
    hist(ReqPhase::kReplyReturn).add(rec.wakeup_core - rec.reply_core);

  if (rec.dropped) {
    ++dropped_;
    hist(ReqPhase::kDropWait).add(rec.drop_mem - rec.enqueue_mem - rec.gated_cycles);
    hist(ReqPhase::kDropGated).add(rec.gated_cycles);
    hist(ReqPhase::kVpServe).add(0);  // VP synthesis is instantaneous at drop.
  } else {
    ++served_;
    hist(ReqPhase::kQueueWait).add(rec.cas_mem - rec.enqueue_mem - rec.gated_cycles);
    hist(ReqPhase::kDmsGated).add(rec.gated_cycles);
    hist(ReqPhase::kService).add(rec.done_mem - rec.cas_mem);
  }
  mshr_merges_ += rec.mshr_merges;

  if (tracer_ != nullptr) tracer_->emit_lifecycle(rec);
  if (retain_) completed_.push_back(rec);
}

LifecycleSummary LifecycleCollector::summary() const {
  LifecycleSummary s;
  s.sample_every = sample_every_;
  s.sampled = sampled();
  s.served = served_;
  s.dropped = dropped_;
  s.mshr_merges = mshr_merges_;
  s.phases.reserve(kNumReqPhases);
  for (unsigned i = 0; i < kNumReqPhases; ++i) {
    const Histogram& h = phase_hist_[i];
    LifecycleSummary::PhaseStats ps;
    ps.phase = req_phase_name(static_cast<ReqPhase>(i));
    ps.count = h.total();
    ps.mean = h.mean();
    ps.p50 = h.percentile(0.50);
    ps.p95 = h.percentile(0.95);
    ps.p99 = h.percentile(0.99);
    s.phases.push_back(ps);
  }
  return s;
}

}  // namespace lazydram::telemetry
