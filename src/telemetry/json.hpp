// Minimal streaming JSON writer used by the JSONL trace sink and the run
// report. No external dependencies: the simulator only ever *writes* JSON,
// and only over flat numeric/string payloads, so a comma-tracking stack is
// all that is needed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace lazydram::telemetry {

/// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string json_escape(const std::string& s);

/// Streaming writer over an open FILE*. The caller owns the file. Keys are
/// only legal inside objects; values are only legal inside arrays or after a
/// key. Misuse trips an assert in debug builds; output stays well-formed as
/// long as begin/end calls balance.
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(const char* name);

  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);  ///< Non-finite doubles are emitted as null.
  void value(bool v);
  void value(const char* v);
  void value(const std::string& v) { value(v.c_str()); }

  /// key + value in one call.
  template <typename T>
  void field(const char* name, const T& v) {
    key(name);
    value(v);
  }

 private:
  void pre_value();  ///< Emits a separating comma when needed.

  std::FILE* out_;
  /// One frame per open container: true once the first element was written.
  std::vector<bool> wrote_element_;
  bool after_key_ = false;
};

}  // namespace lazydram::telemetry
