// Per-channel windowed telemetry sampler, aligned to the same
// profile-window arithmetic the Dyn-DMS/Dyn-AMS controllers use (a window
// closes at the first tick with now - window_start >= window). The sampler
// is pull-based: once per memory cycle the owner hands it a WindowProbe of
// cumulative channel counters plus instantaneous gauges; the sampler
// differences the counters across window boundaries.
//
// Two invariants make the recorded series audit the end-of-run aggregates:
//   * sum over windows of every delta counter (bus_busy_cycles, activations,
//     drops, ...) telescopes to the run total, because flush() closes the
//     final partial window against the final cumulative probe;
//   * delay_sum/th_rbl_sum accumulate the same per-tick samples the
//     LazyScheduler averages, so sum(delay_sum)/sum(ticks) reproduces
//     average_delay() exactly.
#pragma once

#include <functional>
#include <vector>

#include "telemetry/trace.hpp"

namespace lazydram::telemetry {

/// Snapshot of one channel handed to the sampler each memory cycle.
/// Counter fields are cumulative since the start of the run; gauge fields
/// are the value at this cycle.
struct WindowProbe {
  // Cumulative counters.
  std::uint64_t bus_busy_cycles = 0;
  std::uint64_t activations = 0;
  std::uint64_t column_reads = 0;
  std::uint64_t column_writes = 0;
  std::uint64_t reads_dropped = 0;
  std::uint64_t reads_received = 0;
  /// Total DRAM energy. With the power accountant on this is the full
  /// state-based total (row + access + background + refresh) and the four
  /// component fields below decompose it; with accounting off it degrades
  /// to the EnergyMeter's row + access and the background/refresh
  /// components stay zero.
  double energy_nj = 0.0;
  double energy_row_nj = 0.0;
  double energy_access_nj = 0.0;
  double energy_background_nj = 0.0;
  double energy_refresh_nj = 0.0;

  // Instantaneous gauges.
  std::uint64_t queue_size = 0;
  Cycle dms_delay = 0;
  unsigned th_rbl = 0;
};

/// Per-bank cumulative counters collected by the bank probe (same
/// differencing discipline as WindowProbe, but pulled only at window close
/// so the per-tick path stays allocation-free).
struct BankProbe {
  std::uint64_t activations = 0;
  std::uint64_t column_accesses = 0;
  std::uint64_t drops = 0;
  std::uint64_t stall_cycles = 0;  ///< DMS age-gate cycles accumulated by the bank.
  std::uint64_t active_cycles = 0; ///< Cycles with a row open (power accountant).
  double energy_nj = 0.0;          ///< Total bank energy, all components.
};

/// Per-tenant cumulative counters collected by the tenant probe (same
/// differencing discipline as BankProbe; pulled only at window close).
struct TenantProbe {
  std::uint64_t reads_received = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t drops = 0;
};

class WindowSampler {
 public:
  /// Fills `out` (pre-sized to the bank count) with cumulative per-bank
  /// counters as of memory cycle `end`.
  using BankProbeFn = std::function<void(Cycle end, std::vector<BankProbe>& out)>;
  /// Fills `out` (pre-sized to the tenant count) with cumulative per-tenant
  /// counters.
  using TenantProbeFn = std::function<void(std::vector<TenantProbe>& out)>;

  /// `tracer` may be null (samples are then only kept in memory).
  WindowSampler(ChannelId channel, Cycle window, Tracer* tracer)
      : channel_(channel), window_(window), tracer_(tracer) {}

  /// Attaches per-bank columns: each closed window additionally carries a
  /// BankWindowSample per bank, differenced from `fn`'s cumulative counters.
  /// The probe runs only at window close, never per tick.
  void set_bank_probe(unsigned num_banks, BankProbeFn fn);

  /// Attaches per-tenant columns: each closed window additionally carries a
  /// TenantWindowSample per tenant (multi-tenant runs only).
  void set_tenant_probe(unsigned num_tenants, TenantProbeFn fn);

  /// Conversion factor from nJ-per-cycle to watts (mem_clock_mhz * 1e-3);
  /// closed windows then carry avg_power_w = energy_nj / ticks * scale.
  /// Unset (0) leaves avg_power_w at zero.
  void set_power_scale(double watts_per_nj_per_cycle) {
    power_scale_ = watts_per_nj_per_cycle;
  }

  /// Once per memory cycle, after the channel finished its work for `now`.
  void tick(Cycle now, const WindowProbe& probe);

  /// Bulk-replays `n` consecutive idle ticks ending at cycle `to`, all of
  /// which carry the same gauge values (`probe.dms_delay` / `th_rbl` /
  /// `queue_size` constant across the span — the event-wheel only skips
  /// spans where that provably holds) and none of which lands on or past the
  /// next window boundary (see next_boundary). Bit-identical to calling
  /// tick() n times: the counter fields of intermediate probes are never
  /// read (only the probe at a window close is), and the per-tick gauge sums
  /// are integer, so bulk addition is exact.
  void advance(Cycle to, std::uint64_t n, const WindowProbe& probe);

  /// First cycle whose tick may close a window: the end of the current
  /// profile-window grid slot. Conservative when the open window has no
  /// ticks yet (the close would actually wait one more tick) — a real tick
  /// executed at the boundary is always sound, just not always needed.
  Cycle next_boundary() const { return window_start_ + window_; }

  /// Re-routes closed windows through `tracer` (nullable to detach). The
  /// sharded main loop swaps in a lane-local capture tracer around parallel
  /// epochs and restores the real one at the barrier.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Closes the final partial window (if any ticks are pending) against the
  /// final cumulative counters. Call once at end of run.
  void flush(const WindowProbe& probe);

  const std::vector<WindowSample>& samples() const { return samples_; }
  Cycle window() const { return window_; }

 private:
  void close_window(Cycle end, const WindowProbe& probe);

  ChannelId channel_;
  Cycle window_;
  Tracer* tracer_;
  double power_scale_ = 0.0;  ///< nJ/cycle -> W; see set_power_scale.

  std::vector<WindowSample> samples_;

  BankProbeFn bank_probe_;
  std::vector<BankProbe> bank_scratch_;  ///< Cumulative counters at window close.
  std::vector<BankProbe> bank_base_;     ///< Cumulative counters at the last boundary.

  TenantProbeFn tenant_probe_;
  std::vector<TenantProbe> tenant_scratch_;
  std::vector<TenantProbe> tenant_base_;

  Cycle window_start_ = 0;
  Cycle last_tick_ = 0;
  WindowProbe at_window_start_{};  ///< Cumulative counters at the last boundary.

  // Per-tick accumulators for the open window.
  std::uint64_t ticks_ = 0;
  std::uint64_t delay_sum_ = 0;
  std::uint64_t th_rbl_sum_ = 0;
  std::uint64_t queue_sum_ = 0;
};

}  // namespace lazydram::telemetry
