// Self-observability: an always-on crash flight recorder.
//
// Keeps the last K typed telemetry events per channel in fixed-size rings,
// independent of whether a trace sink is attached (the Tracer feeds every
// emitted event here when a recorder is installed — see Tracer::set_flight).
// The rings are strictly passive: nothing is written anywhere until a dump
// fires. Dumps fire when
//   * the strict protocol checker is about to throw ViolationError
//     (check/checker.cpp), or
//   * an LD_ASSERT fails (via the hook in common/assert.hpp, installed by
//     the first FlightRecorder constructed).
// A dump writes one JSON file (path from $LAZYDRAM_FLIGHT_DUMP, default
// ./lazydram_flight.json) with every armed recorder's events merged in
// (cycle, channel) order, plus a short stderr summary, so a crashed run
// leaves forensics behind instead of discarding its recent history.
//
// Threading: channels are lane-disjoint in sharded runs, so record() is
// race-free without locks — each ring is only ever written by the lane that
// owns its channel (or by the main thread during serial spans and capture
// drains). Rings are pre-sized to kMaxChannels at construction so no
// reallocation can race; events on higher channel ids are dropped. During
// parallel epochs GpuTop defers dumps (set_deferred) because an in-lane dump
// would read sibling rings mid-write; the deterministic rethrow point after
// the capture drain re-issues the dump with the rings quiesced.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace lazydram::telemetry {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultDepth = 64;
  static constexpr unsigned kMaxChannels = 64;

  /// `depth` = events retained per channel; 0 makes the recorder inert.
  explicit FlightRecorder(std::size_t depth = kDefaultDepth);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event to its channel's ring (overwriting the oldest once
  /// full). Safe to call concurrently from lanes owning disjoint channels.
  void record(const TraceEvent& event);

  std::size_t depth() const { return depth_; }
  /// Total events ever recorded across all channels (not just retained).
  std::uint64_t recorded() const;

  /// Retained events merged across channels, ordered by (cycle, channel)
  /// with per-channel arrival order preserved as the tiebreak.
  std::vector<TraceEvent> ordered_events() const;

  /// Writes this recorder's dump object ({"reason","detail","events":[...]})
  /// to `out`. Used by dump_all and directly testable.
  void dump(std::FILE* out, const char* reason, const std::string& detail) const;

  /// Dumps every live recorder to the flight-dump JSON file and prints a
  /// stderr summary. No-op when no recorder is armed or dumps are deferred.
  static void dump_all(const char* reason, const std::string& detail);

  /// Defers/releases dump_all. GpuTop sets this around parallel epochs so a
  /// strict violation inside a worker lane cannot dump while sibling lanes
  /// are still writing their rings; the violation is re-dumped after the
  /// deterministic capture drain.
  static void set_deferred(bool deferred);

  /// Resolved dump path: $LAZYDRAM_FLIGHT_DUMP or "lazydram_flight.json".
  static std::string dump_path();

 private:
  struct Ring {
    std::vector<TraceEvent> buf;   // grows to depth_, then wraps
    std::uint64_t total = 0;       // events ever recorded on this channel
  };

  std::size_t depth_;
  std::vector<Ring> rings_;  // index = channel, fixed size kMaxChannels
};

}  // namespace lazydram::telemetry
