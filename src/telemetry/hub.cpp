#include "telemetry/hub.hpp"

#include "common/assert.hpp"

namespace lazydram::telemetry {

void TelemetryHub::add_counter(const std::string& name, CounterFn fn) {
  LD_ASSERT_MSG(counters_.count(name) == 0, "duplicate counter registration");
  counters_.emplace(name, std::move(fn));
}

void TelemetryHub::add_gauge(const std::string& name, GaugeFn fn) {
  LD_ASSERT_MSG(gauges_.count(name) == 0, "duplicate gauge registration");
  gauges_.emplace(name, std::move(fn));
}

void TelemetryHub::add_histogram(const std::string& name, const Histogram* hist) {
  LD_ASSERT(hist != nullptr);
  LD_ASSERT_MSG(histograms_.count(name) == 0, "duplicate histogram registration");
  histograms_.emplace(name, hist);
}

std::uint64_t TelemetryHub::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  LD_ASSERT_MSG(it != counters_.end(), name.c_str());
  return it->second();
}

double TelemetryHub::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  LD_ASSERT_MSG(it != gauges_.end(), name.c_str());
  return it->second();
}

const Histogram& TelemetryHub::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  LD_ASSERT_MSG(it != histograms_.end(), name.c_str());
  return *it->second;
}

std::uint64_t TelemetryHub::sum_counters(const std::string& prefix,
                                         const std::string& suffix) const {
  std::uint64_t sum = 0;
  for (const auto& [name, fn] : counters_) {
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) continue;
    sum += fn();
  }
  return sum;
}

TelemetryHub::Snapshot TelemetryHub::snapshot() const {
  Snapshot s;
  for (const auto& [name, fn] : counters_) s.counters.emplace(name, fn());
  for (const auto& [name, fn] : gauges_) s.gauges.emplace(name, fn());
  for (const auto& [name, hist] : histograms_) {
    std::vector<std::uint64_t> buckets(hist->bucket_count());
    for (std::uint64_t k = 0; k < buckets.size(); ++k) buckets[k] = hist->at(k);
    s.histograms.emplace(name, std::move(buckets));
  }
  return s;
}

std::string channel_stat(const std::string& prefix, unsigned channel,
                         const std::string& name) {
  return prefix + ".ch" + std::to_string(channel) + "." + name;
}

}  // namespace lazydram::telemetry
