// Request-lifecycle collector: stamps every sampled memory read request at
// each pipeline boundary (SM issue -> icnt inject/eject -> L2 miss -> pending
// queue -> DMS gate intervals -> CAS -> data return -> warp wakeup; AMS drops
// get a VP-served terminal phase) and accumulates per-phase latency
// histograms. Finished lifecycles are forwarded to the run's TraceSink
// (JSONL "req" lines, Chrome async spans).
//
// Discipline matches the rest of the telemetry layer: components hold a
// nullable LifecycleCollector* and a disabled collector costs one pointer
// compare per hook site; nothing here ever feeds back into simulation state
// (RunMetrics are bit-identical with the collector on or off).
//
// Two wiring modes:
//  * External creation (GpuTop): on_request_created() opens a record when an
//    L2 miss allocates the request — the 1/N sampling decision is made here —
//    and on_warp_wakeup() closes it. Controller hooks only fill in records
//    that already exist.
//  * Standalone (benches / unit tests driving a MemoryController directly):
//    on_enqueue() opens the record (sampling there) and on_data_return /
//    on_drop closes it; core-domain stamps stay zero.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/request.hpp"
#include "telemetry/trace.hpp"

namespace lazydram::telemetry {

/// The per-phase latency attribution. Memory-domain phases (queue_wait,
/// dms_gated, service, drop_wait, drop_gated, vp_serve) are in memory
/// cycles; core-domain phases (icnt_request, partition_wait, reply_return)
/// are in core cycles.
enum class ReqPhase : std::uint8_t {
  kIcntRequest,    ///< Crossbar inject -> partition eject (core cycles).
  kPartitionWait,  ///< Eject -> pending-queue enqueue, incl. input backlog (core).
  kQueueWait,      ///< Enqueue -> CAS minus gated cycles (mem; served reads).
  kDmsGated,       ///< Total DMS age-gated cycles (mem; served reads).
  kService,        ///< CAS -> data-burst completion (mem; served reads).
  kReplyReturn,    ///< Reply pop -> first packet reaching the SM (core).
  kDropWait,       ///< Enqueue -> AMS drop minus gated cycles (mem; drops).
  kDropGated,      ///< Total gated cycles of a dropped read (mem).
  kVpServe,        ///< Zero-width VP-served terminal phase (mem; drops).
};
constexpr unsigned kNumReqPhases = 9;

/// Short stable phase name ("queue_wait", ...) used in JSON and tables.
const char* req_phase_name(ReqPhase phase);

/// Detached per-phase summary of one run (JSON report / RunTelemetry).
struct LifecycleSummary {
  std::uint64_t sample_every = 1;
  std::uint64_t sampled = 0;  ///< Lifecycles completed (served + dropped).
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  std::uint64_t mshr_merges = 0;  ///< Packets merged into sampled requests.

  struct PhaseStats {
    const char* phase = "";
    std::uint64_t count = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  };
  std::vector<PhaseStats> phases;  ///< Indexed by ReqPhase, all 9 present.
};

class LifecycleCollector {
 public:
  /// `tracer` (nullable) receives each finished lifecycle; `sample_every`
  /// keeps 1 request in N (N >= 1; the first of every stride is kept, so
  /// N = 1 records every read request).
  explicit LifecycleCollector(Tracer* tracer, std::uint64_t sample_every = 1);
  virtual ~LifecycleCollector() = default;

  /// Switches to external-creation mode (GpuTop owns record creation and the
  /// warp-wakeup close; see file comment). Call before the first request.
  void set_external_creation(bool external) { external_ = external; }

  /// Keep finished records in memory (tests audit span nesting). Off by
  /// default: a full-rate run would otherwise retain every request.
  void set_retain(bool retain) { retain_ = retain; }

  // --- GpuTop-side hooks (core clock domain) ---

  /// An L2 read miss allocated a MemRequest (external mode opens the record
  /// here; this is also where the sampling decision is made).
  void on_request_created(RequestId id, Addr line, Cycle inject_core,
                          Cycle eject_core, Cycle now_core);
  /// A later packet for the same line merged into the L2 MSHR entry.
  void on_mshr_merge(Addr line);
  /// The partition popped this request's DRAM/VP reply.
  void on_reply_pop(RequestId id, Cycle now_core);
  /// The first reply packet reached the source SM; closes the record in
  /// external mode.
  void on_warp_wakeup(RequestId id, Cycle now_core);

  // --- Controller/scheduler-side hooks (memory clock domain) ---

  /// The request entered the pending queue (standalone mode opens and
  /// samples here). Only reads are recorded; callers may pass writes.
  void on_enqueue(const MemRequest& req, ChannelId channel, Cycle now_mem);
  // The four hooks below are the only ones fired from inside a memory
  // controller's tick() — they are virtual so the sharded GpuTop can swap in
  // a per-lane buffering subclass during a parallel epoch and replay the
  // calls in deterministic (cycle, channel) order at the barrier. In GpuTop
  // mode none of them opens or closes a record (creation and the warp-wakeup
  // close are core-domain, i.e. serial-side), so buffered replay before the
  // next core step is state-identical to inline delivery.
  /// One DMS age-gate interval [begin, end) of this request closed.
  virtual void on_gate_end(RequestId id, Cycle begin_mem, Cycle end_mem);
  /// The request's RD command issued.
  virtual void on_cas(RequestId id, Cycle now_mem);
  /// The request's data burst completed; closes the record in standalone mode.
  virtual void on_data_return(RequestId id, Cycle done_mem);
  /// AMS dropped the request; closes the record in standalone mode.
  virtual void on_drop(RequestId id, Cycle now_mem);

  // --- Results ---

  std::uint64_t sample_every() const { return sample_every_; }
  std::uint64_t sampled() const { return served_ + dropped_; }
  std::uint64_t served() const { return served_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t mshr_merges() const { return mshr_merges_; }

  const Histogram& phase_histogram(ReqPhase phase) const {
    return phase_hist_[static_cast<unsigned>(phase)];
  }

  /// Finished records retained under set_retain(true).
  const std::vector<RequestLifecycle>& completed() const { return completed_; }

  /// Records still open (all requests should close by the end of a run).
  std::size_t live() const { return live_.size(); }

  LifecycleSummary summary() const;

 private:
  void finalize(RequestLifecycle& rec);

  Tracer* tracer_;
  std::uint64_t sample_every_;
  bool external_ = false;
  bool retain_ = false;

  std::uint64_t seq_ = 0;  ///< Read requests seen (sampling stride counter).
  std::uint64_t served_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t mshr_merges_ = 0;

  std::unordered_map<RequestId, RequestLifecycle> live_;
  std::unordered_map<Addr, RequestId> by_line_;  ///< MSHR-merge lookup.
  std::vector<RequestLifecycle> completed_;

  /// Latency caps chosen so DMS-delayed tails (delays up to a few thousand
  /// cycles) stay in-range; overflowed samples keep their exact mean (the
  /// histogram's weighted sum uses the true key).
  Histogram phase_hist_[kNumReqPhases]{
      Histogram{4096}, Histogram{4096}, Histogram{4096},
      Histogram{4096}, Histogram{4096}, Histogram{4096},
      Histogram{4096}, Histogram{4096}, Histogram{4096}};
};

}  // namespace lazydram::telemetry
