// Self-observability: a wall-clock zone profiler for the simulator itself
// (where does *host* time go — not simulated time, which the tracer covers).
//
// Design constraints, in order:
//  * Strictly passive: arming the profiler must never change simulation
//    results or trace/report bytes (FlightRecorder.OnIsBitIdentical pins it).
//  * Cheap enough to leave compiled in: a disabled zone is one relaxed
//    atomic load; an enabled zone is two steady_clock reads plus a short
//    child-list walk in a per-thread tree. Hot per-cycle loops do NOT get
//    zones — GpuTop attributes them with span-boundary clock reads and a
//    1-in-64 sampled step decomposition instead (see WheelSelfStats).
//  * Thread-aware: every thread (sweep workers, shard lanes) aggregates into
//    its own tree; snapshot() merges by zone-name path.
//
// Each thread also keeps a bounded begin/end event timeline so the self-time
// can be exported as its own Perfetto process (ChromeTraceSink::
// write_self_profile). When the buffer fills, whole zone pairs are dropped
// (an unrecorded enter suppresses its matching exit), so the exported stream
// always nests.
//
// Compile-out: building with -DLAZYDRAM_NO_SELFPROF turns LD_SELF_ZONE into
// a no-op statement; the library still links (snapshot returns empty).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lazydram::telemetry {

/// Process-wide arm switch, read by SelfZone at construction. Extern rather
/// than a function-local static so the disabled fast path is a single load.
extern std::atomic<bool> g_selfprof_enabled;

/// One node of the merged zone tree, in preorder (depth gives nesting).
struct SelfZoneNode {
  std::string name;
  unsigned depth = 0;
  std::uint64_t count = 0;
  double inclusive_seconds = 0.0;  ///< Total time inside the zone.
  double exclusive_seconds = 0.0;  ///< inclusive minus child-zone time.
};

/// One begin/end record of a thread timeline. `name` is the zone's literal
/// on begin, nullptr on end.
struct SelfEvent {
  std::uint64_t ns = 0;  ///< Nanoseconds since the profiler epoch.
  const char* name = nullptr;
};

/// One thread's bounded event timeline (for the Perfetto self-time process).
struct SelfThreadTimeline {
  unsigned index = 0;            ///< Registration order (0 = first user).
  std::vector<SelfEvent> events;
  std::uint64_t dropped_zones = 0;  ///< Zone pairs lost to the buffer cap.
};

class SelfProfiler {
 public:
  struct Snapshot {
    std::vector<SelfZoneNode> zones;          ///< Merged across threads.
    std::vector<SelfThreadTimeline> timelines;
  };

  static SelfProfiler& instance();

  static bool enabled() { return g_selfprof_enabled.load(std::memory_order_relaxed); }
  /// Arms/disarms zone recording process-wide. Enabling is what
  /// RunConfig/GpuConfig::self_profile and $LAZYDRAM_SELFPROF resolve to;
  /// simulate_full only ever turns it ON (a sweep sibling may still be
  /// running), so A/B harnesses (bench_micro --perf) toggle it directly.
  static void set_enabled(bool on) {
    g_selfprof_enabled.store(on, std::memory_order_relaxed);
  }

  /// Opens/closes a zone on the calling thread. `name` must be a literal (or
  /// otherwise outlive the profiler); zones must strictly nest per thread.
  /// Callers normally use SelfZone / LD_SELF_ZONE instead.
  static void enter(const char* name);
  static void exit();

  /// Merged view of every thread's tree and timeline. Intended for quiescent
  /// points (end of a run); concurrently open zones contribute their counts
  /// but not their still-accumulating time.
  Snapshot snapshot() const;

  /// Zeroes all counters/timelines (keeps thread registrations). Only call
  /// with no zones open on other threads — the A/B perf harness uses it
  /// between lanes.
  void reset();

  /// Nanoseconds since the profiler epoch (process start of first use).
  std::uint64_t now_ns() const;

 private:
  SelfProfiler();
  struct ThreadState;
  static ThreadState& state();

  friend struct SelfProfilerAccess;
};

/// RAII zone. Captures the enabled flag at entry so a mid-zone toggle can
/// never unbalance the per-thread stack.
class SelfZone {
 public:
  explicit SelfZone(const char* name)
      : active_(SelfProfiler::enabled()) {
    if (active_) SelfProfiler::enter(name);
  }
  ~SelfZone() { close(); }

  SelfZone(const SelfZone&) = delete;
  SelfZone& operator=(const SelfZone&) = delete;

  /// Ends the zone early (idempotent) — for phases that don't align with a
  /// C++ scope (e.g. setup ending where the object must stay alive).
  void close() {
    if (active_) {
      SelfProfiler::exit();
      active_ = false;
    }
  }

 private:
  bool active_;
};

}  // namespace lazydram::telemetry

#if defined(LAZYDRAM_NO_SELFPROF)
#define LD_SELF_ZONE(name) \
  do {                     \
  } while (0)
#else
#define LD_SELF_ZONE_CAT2(a, b) a##b
#define LD_SELF_ZONE_CAT(a, b) LD_SELF_ZONE_CAT2(a, b)
#define LD_SELF_ZONE(name) \
  ::lazydram::telemetry::SelfZone LD_SELF_ZONE_CAT(ld_self_zone_, __LINE__)(name)
#endif
