// Per-run telemetry context: one Tracer (with optional owned JSONL sink),
// one TelemetryHub, and the window-sampling switch. sim::simulate builds one
// of these from RunConfig + environment (LAZYDRAM_TRACE / LAZYDRAM_JSON) and
// threads it through GpuTop; benches that drive a MemoryController directly
// can build their own.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "telemetry/flight.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/lifecycle.hpp"
#include "telemetry/selfprof.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/window_sampler.hpp"

namespace lazydram::telemetry {

class ChromeTraceSink;

/// Wall-clock profile of one simulated run (host-side observability: how
/// fast the simulator itself is going).
struct RunProfile {
  double setup_seconds = 0.0;    ///< GpuTop construction (incl. memory init).
  double run_seconds = 0.0;      ///< The cycle loop.
  double collect_seconds = 0.0;  ///< Metric collection + error computation.
  double core_cycles_per_second = 0.0;
};

class Telemetry {
 public:
  Telemetry() = default;

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Attaches a JSONL file sink at `path`. On open failure a warning is
  /// logged and the tracer stays disabled; returns whether the sink opened.
  bool open_jsonl_trace(const std::string& path);

  /// Attaches a Chrome Trace Event Format sink at `path` (Perfetto /
  /// chrome://tracing). `core_to_mem` converts core-cycle stamps onto the
  /// memory-cycle trace axis (mem_clock_mhz / core_clock_mhz). Returns
  /// whether the sink opened.
  bool open_chrome_trace(const std::string& path, double core_to_mem = 1.0);

  /// Creates the request-lifecycle collector (sampling 1 request in
  /// `sample_every`). Call before wiring components; idempotent only in the
  /// sense that the last call wins.
  void enable_lifecycle(std::uint64_t sample_every = 1);

  /// The lifecycle collector, or nullptr when not enabled.
  LifecycleCollector* lifecycle() { return lifecycle_.get(); }

  /// Creates the crash flight recorder (last `depth` events per channel) and
  /// wires it into the tracer. Recording is passive — nothing is written
  /// unless a strict-checker throw or LD_ASSERT triggers a dump.
  void enable_flight(std::size_t depth = FlightRecorder::kDefaultDepth);

  /// The flight recorder, or nullptr when not enabled.
  FlightRecorder* flight() { return flight_.get(); }

  /// The owned sink as a ChromeTraceSink, or nullptr when the trace format
  /// is JSONL / no sink is attached — for post-run extras like the
  /// self-profile process, which only the Chrome format carries.
  ChromeTraceSink* chrome_sink();

  Tracer& tracer() { return tracer_; }
  TelemetryHub& hub() { return hub_; }
  const TelemetryHub& hub() const { return hub_; }

  void set_window_sampling(bool on) { window_sampling_ = on; }
  bool window_sampling() const { return window_sampling_; }

 private:
  Tracer tracer_;
  TelemetryHub hub_;
  std::unique_ptr<TraceSink> owned_sink_;
  std::unique_ptr<LifecycleCollector> lifecycle_;
  std::unique_ptr<FlightRecorder> flight_;
  bool window_sampling_ = false;
};

/// Wall-clock self-attribution of one run (telemetry/selfprof + GpuTop's
/// WheelSelfStats, flattened to plain values so sim-layer consumers don't
/// depend on gpu headers). Populated only when GpuConfig::self_profile is
/// set; rendered as the run report's "self_profile" section.
struct SelfProfileReport {
  bool enabled = false;
  std::vector<SelfZoneNode> zones;  ///< Merged zone tree, preorder.
  double run_wall_seconds = 0.0;
  double serial_seconds = 0.0;            ///< SM/core-side (non-mem-span) wall.
  double mem_serial_seconds = 0.0;        ///< Memory spans on the caller.
  double mem_parallel_wall_seconds = 0.0; ///< Memory epochs on the lane pool.
  double pool_wall_seconds = 0.0;
  double barrier_stall_seconds = 0.0;
  std::uint64_t serial_spans = 0;
  std::uint64_t parallel_epochs = 0;
  std::uint64_t step_samples = 0;
  double sm_sample_seconds = 0.0;
  double icnt_sample_seconds = 0.0;
  double partition_sample_seconds = 0.0;
  std::vector<double> lane_busy_seconds;
  unsigned lanes = 1;
};

/// Everything a run's telemetry produced, detached from the simulator
/// objects so it can outlive them: per-channel window series, the final stat
/// snapshot, and the wall-clock profile.
struct RunTelemetry {
  std::vector<std::vector<WindowSample>> windows;  ///< Indexed by channel.
  TelemetryHub::Snapshot stats;
  RunProfile profile;
  bool lifecycle_enabled = false;
  LifecycleSummary lifecycle;  ///< Valid iff lifecycle_enabled.
  SelfProfileReport self_profile;
};

/// Value of env var `name`, or "" if unset.
std::string env_string(const char* name);

}  // namespace lazydram::telemetry
