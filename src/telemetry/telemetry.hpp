// Per-run telemetry context: one Tracer (with optional owned JSONL sink),
// one TelemetryHub, and the window-sampling switch. sim::simulate builds one
// of these from RunConfig + environment (LAZYDRAM_TRACE / LAZYDRAM_JSON) and
// threads it through GpuTop; benches that drive a MemoryController directly
// can build their own.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "telemetry/hub.hpp"
#include "telemetry/lifecycle.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/window_sampler.hpp"

namespace lazydram::telemetry {

/// Wall-clock profile of one simulated run (host-side observability: how
/// fast the simulator itself is going).
struct RunProfile {
  double setup_seconds = 0.0;    ///< GpuTop construction (incl. memory init).
  double run_seconds = 0.0;      ///< The cycle loop.
  double collect_seconds = 0.0;  ///< Metric collection + error computation.
  double core_cycles_per_second = 0.0;
};

class Telemetry {
 public:
  Telemetry() = default;

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Attaches a JSONL file sink at `path`. On open failure a warning is
  /// logged and the tracer stays disabled; returns whether the sink opened.
  bool open_jsonl_trace(const std::string& path);

  /// Attaches a Chrome Trace Event Format sink at `path` (Perfetto /
  /// chrome://tracing). `core_to_mem` converts core-cycle stamps onto the
  /// memory-cycle trace axis (mem_clock_mhz / core_clock_mhz). Returns
  /// whether the sink opened.
  bool open_chrome_trace(const std::string& path, double core_to_mem = 1.0);

  /// Creates the request-lifecycle collector (sampling 1 request in
  /// `sample_every`). Call before wiring components; idempotent only in the
  /// sense that the last call wins.
  void enable_lifecycle(std::uint64_t sample_every = 1);

  /// The lifecycle collector, or nullptr when not enabled.
  LifecycleCollector* lifecycle() { return lifecycle_.get(); }

  Tracer& tracer() { return tracer_; }
  TelemetryHub& hub() { return hub_; }
  const TelemetryHub& hub() const { return hub_; }

  void set_window_sampling(bool on) { window_sampling_ = on; }
  bool window_sampling() const { return window_sampling_; }

 private:
  Tracer tracer_;
  TelemetryHub hub_;
  std::unique_ptr<TraceSink> owned_sink_;
  std::unique_ptr<LifecycleCollector> lifecycle_;
  bool window_sampling_ = false;
};

/// Everything a run's telemetry produced, detached from the simulator
/// objects so it can outlive them: per-channel window series, the final stat
/// snapshot, and the wall-clock profile.
struct RunTelemetry {
  std::vector<std::vector<WindowSample>> windows;  ///< Indexed by channel.
  TelemetryHub::Snapshot stats;
  RunProfile profile;
  bool lifecycle_enabled = false;
  LifecycleSummary lifecycle;  ///< Valid iff lifecycle_enabled.
};

/// Value of env var `name`, or "" if unset.
std::string env_string(const char* name);

}  // namespace lazydram::telemetry
