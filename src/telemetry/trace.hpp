// Event tracing for the lazy memory scheduler (the observability layer's
// "flight recorder"). Components emit typed events through a Tracer; a
// pluggable TraceSink decides what happens to them. The default sink is
// null: a disabled Tracer costs one pointer compare per emission site, so
// tracing can stay compiled into the hot path.
//
// Event taxonomy (each stamped with memory cycle + channel, bank where
// meaningful):
//   kRowActivate        - the controller issued an ACT (row opens).
//   kRowGroupDrop       - AMS removed one read of a draining row group.
//   kVpPrediction       - the VP unit synthesized a line for a dropped read.
//   kDmsStallBegin/End  - a bank's row-miss candidate became / stopped being
//                         age-gated by the DMS delay.
//   kDmsDelayChange     - Dyn-DMS moved the delay at a window boundary.
//   kAmsThresholdChange - Dyn-AMS moved Th_RBL at a window boundary.
//   kCheckViolation     - the protocol checker flagged a violation (the
//                         numeric code is check::ViolationKind).
//   (WindowSample records from the windowed sampler share the same sinks.)
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lazydram::telemetry {

enum class EventKind : std::uint8_t {
  kRowActivate,
  kRowGroupDrop,
  kVpPrediction,
  kDmsStallBegin,
  kDmsStallEnd,
  kDmsDelayChange,
  kAmsThresholdChange,
  kCheckViolation,
};

/// Short stable name used as the JSONL "type" field.
const char* event_kind_name(EventKind kind);

/// One traced event. The generic payload fields a/b/f are interpreted per
/// kind (see the emit helpers on Tracer for the exact meaning).
struct TraceEvent {
  EventKind kind = EventKind::kRowActivate;
  Cycle cycle = 0;            ///< Memory-domain cycle.
  ChannelId channel = 0;
  std::int32_t bank = -1;     ///< -1 when the event has no bank scope.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double f = 0.0;
};

/// One DMS age-gate interval of a request, in memory cycles. [begin, end):
/// the request was the bank's gated candidate from `begin` until the decide
/// (or serve/drop closeout) at `end`.
struct GateInterval {
  Cycle begin = 0;
  Cycle end = 0;
};

/// End-to-end lifecycle of one sampled memory read request: every pipeline
/// boundary it crossed, in its clock domain. Core-domain stamps are zero for
/// requests driven straight into a MemoryController (bench harnesses, unit
/// tests) and for phases a request never reached. Memory-domain stamps are
/// always present once the request was enqueued.
///
/// Served reads partition exactly: (cas - enqueue - gated) + gated +
/// (done - cas) == done - enqueue, the controller's read-latency sample.
/// AMS-dropped reads end at `drop_mem` with a zero-width VP-served terminal
/// phase instead of bank service.
struct RequestLifecycle {
  RequestId id = 0;
  Addr line_addr = 0;
  ChannelId channel = 0;
  std::int32_t bank = -1;
  TenantId tenant = 0;         ///< Owning client (0 in single-tenant runs).
  bool dropped = false;        ///< AMS drop (VP-served) instead of DRAM service.
  std::uint32_t mshr_merges = 0;  ///< L2-MSHR packets merged beyond the primary.

  // Core-domain stamps (0 = never reached / standalone controller mode).
  Cycle inject_core = 0;   ///< SM pushed the primary packet into the crossbar.
  Cycle eject_core = 0;    ///< Partition popped the packet from the crossbar.
  Cycle enqueue_core = 0;  ///< L2 miss allocated; request created.
  Cycle reply_core = 0;    ///< Partition popped the DRAM/VP reply.
  Cycle wakeup_core = 0;   ///< First reply packet reached the source SM.

  // Memory-domain stamps.
  Cycle enqueue_mem = 0;  ///< Entered the controller's pending queue.
  Cycle cas_mem = 0;      ///< RD issued (served requests only).
  Cycle done_mem = 0;     ///< Data burst completed (served requests only).
  Cycle drop_mem = 0;     ///< AMS removed the request (dropped only).
  Cycle gated_cycles = 0; ///< Total DMS age-gated cycles (sum over `gates`).
  std::vector<GateInterval> gates;  ///< Individual gate intervals, in order.
};

/// Per-bank slice of one profiling window (delta counters; see
/// WindowSampler::set_bank_probe). Renders scheduler fairness — bank-level
/// activation/hit balance, the drop round-robin, DMS stall skew — as a
/// heatmap over (window, bank).
struct BankWindowSample {
  std::uint64_t activations = 0;
  std::uint64_t column_accesses = 0;
  std::uint64_t row_hits = 0;  ///< column_accesses beyond each activation's first.
  std::uint64_t drops = 0;
  std::uint64_t dms_stall_cycles = 0;  ///< Cycles the bank's candidate sat age-gated.
  std::uint64_t active_cycles = 0;  ///< Cycles a row was open (power accountant).
  double energy_nj = 0.0;           ///< Total bank energy this window, all components.
};

/// Per-tenant slice of one profiling window (delta counters; see
/// WindowSampler::set_tenant_probe). Renders each client's share of a
/// channel's traffic and drop budget over time.
struct TenantWindowSample {
  std::uint64_t reads_received = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t drops = 0;
};

/// One closed profiling window of a channel (see WindowSampler). Counters
/// are deltas over the window; *_sum fields are per-tick accumulations whose
/// grand totals reproduce the end-of-run time-weighted averages exactly.
struct WindowSample {
  ChannelId channel = 0;
  std::uint64_t index = 0;     ///< Window ordinal within the channel.
  Cycle start_cycle = 0;       ///< First memory cycle of the window.
  Cycle end_cycle = 0;         ///< One past the last memory cycle.
  std::uint64_t ticks = 0;     ///< Memory cycles observed (== window size except the final partial window).

  std::uint64_t bus_busy_cycles = 0;  ///< Data-bus busy cycles this window.
  double bwutil = 0.0;                ///< bus_busy_cycles / ticks.

  std::uint64_t delay_sum = 0;  ///< Sum of the active DMS delay over ticks.
  double avg_delay = 0.0;
  std::uint64_t th_rbl_sum = 0; ///< Sum of the active Th_RBL over ticks.
  double avg_th_rbl = 0.0;

  double queue_occupancy = 0.0; ///< Mean pending-queue size over the window.

  std::uint64_t activations = 0;
  std::uint64_t row_hits = 0;   ///< Column accesses beyond each row's first.
  std::uint64_t column_reads = 0;
  std::uint64_t column_writes = 0;
  std::uint64_t drops = 0;
  std::uint64_t reads_received = 0;
  double coverage = 0.0;        ///< drops / reads_received within the window.

  /// Total DRAM energy spent this window. With the power accountant on this
  /// is the state-based total and the four components below decompose it;
  /// with accounting off it is row + access and background/refresh are zero.
  double energy_nj = 0.0;
  double energy_row_nj = 0.0;
  double energy_access_nj = 0.0;
  double energy_background_nj = 0.0;
  double energy_refresh_nj = 0.0;
  double avg_power_w = 0.0;  ///< energy_nj / ticks, converted to watts.

  /// Per-bank columns; empty unless a bank probe was attached to the sampler.
  std::vector<BankWindowSample> banks;
  /// Per-tenant columns; empty unless a tenant probe was attached.
  std::vector<TenantWindowSample> tenants;
};

/// Receives traced events. Implementations must not mutate simulator state.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void on_window(const WindowSample& window) = 0;
  /// A sampled request completed its lifecycle (served, or dropped to the
  /// VP). Default ignores it so event-only sinks need no change.
  virtual void on_lifecycle(const RequestLifecycle& request) { (void)request; }
};

/// Appends one JSON object per event/window to a file (JSON Lines). On open
/// failure the sink reports !ok(); callers should warn and fall back to no
/// tracing rather than abort the run.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  bool ok() const { return out_ != nullptr; }
  const std::string& path() const { return path_; }

  void on_event(const TraceEvent& event) override;
  void on_window(const WindowSample& window) override;
  void on_lifecycle(const RequestLifecycle& request) override;

 private:
  std::string path_;
  std::FILE* out_ = nullptr;
};

class FlightRecorder;

/// The emission facade held by instrumented components. With neither a sink
/// nor a flight recorder attached every emit helper is a single branch; no
/// event is constructed.
class Tracer {
 public:
  void set_sink(TraceSink* sink) { sink_ = sink; }
  /// enabled() deliberately ignores the flight recorder: it gates the
  /// expensive trace machinery (capture-tracer installation in sharded runs,
  /// sink construction), while flight-only recording stays on the cheap
  /// direct path — lanes write disjoint per-channel rings race-free.
  bool enabled() const { return sink_ != nullptr; }

  /// Attaches the crash flight recorder. Events delivered through emit()
  /// are mirrored into its per-channel rings; windows/lifecycles are not
  /// (the rings hold discrete protocol events, the crash-relevant context).
  void set_flight(FlightRecorder* flight) { flight_ = flight; }
  FlightRecorder* flight() const { return flight_; }

  void emit(const TraceEvent& event);  // out-of-line: needs FlightRecorder

  void emit_window(const WindowSample& window) {
    if (sink_ != nullptr) sink_->on_window(window);
  }
  void emit_lifecycle(const RequestLifecycle& request) {
    if (sink_ != nullptr) sink_->on_lifecycle(request);
  }

  // --- Typed emit helpers (document the a/b/f payload per kind) ---

  void row_activate(Cycle cycle, ChannelId ch, BankId bank, RowId row) {
    if (sink_ == nullptr && flight_ == nullptr) return;
    emit({EventKind::kRowActivate, cycle, ch, static_cast<std::int32_t>(bank), row, 0, 0.0});
  }

  void row_group_drop(Cycle cycle, ChannelId ch, BankId bank, RowId row, RequestId req) {
    if (sink_ == nullptr && flight_ == nullptr) return;
    emit({EventKind::kRowGroupDrop, cycle, ch, static_cast<std::int32_t>(bank), row, req, 0.0});
  }

  void vp_prediction(Cycle cycle, ChannelId ch, Addr line, bool donor_found, Addr donor) {
    if (sink_ == nullptr && flight_ == nullptr) return;
    emit({EventKind::kVpPrediction, cycle, ch, -1, line, donor, donor_found ? 1.0 : 0.0});
  }

  void dms_stall_begin(Cycle cycle, ChannelId ch, BankId bank, RequestId req, Cycle delay) {
    if (sink_ == nullptr && flight_ == nullptr) return;
    emit({EventKind::kDmsStallBegin, cycle, ch, static_cast<std::int32_t>(bank), req, delay, 0.0});
  }

  void dms_stall_end(Cycle cycle, ChannelId ch, BankId bank) {
    if (sink_ == nullptr && flight_ == nullptr) return;
    emit({EventKind::kDmsStallEnd, cycle, ch, static_cast<std::int32_t>(bank), 0, 0, 0.0});
  }

  void dms_delay_change(Cycle cycle, ChannelId ch, Cycle from, Cycle to, double window_bwutil) {
    if (sink_ == nullptr && flight_ == nullptr) return;
    emit({EventKind::kDmsDelayChange, cycle, ch, -1, to, from, window_bwutil});
  }

  void ams_threshold_change(Cycle cycle, ChannelId ch, unsigned from, unsigned to,
                            double window_coverage) {
    if (sink_ == nullptr && flight_ == nullptr) return;
    emit({EventKind::kAmsThresholdChange, cycle, ch, -1, to, from, window_coverage});
  }

  void check_violation(Cycle cycle, ChannelId ch, std::int32_t bank, unsigned code) {
    if (sink_ == nullptr && flight_ == nullptr) return;
    emit({EventKind::kCheckViolation, cycle, ch, bank, code, 0, 0.0});
  }

 private:
  TraceSink* sink_ = nullptr;
  FlightRecorder* flight_ = nullptr;
};

}  // namespace lazydram::telemetry
